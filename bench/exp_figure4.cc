/**
 * @file
 * Figure 4 of the paper: prediction success for Add/Subtract
 * instructions.
 */

#include "category_figure.hh"

int
main(int argc, char **argv)
{
    return vp::bench::runCategoryFigure(
            4, vp::isa::Category::AddSub,
            "add/subtract is the most stride-predictable category; "
            "stride clearly beats\nlast value here (the predictor "
            "operation matches the instruction), and fcm\nbeats "
            "both.", argc, argv);
}
