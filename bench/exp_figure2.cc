/**
 * @file
 * Figure 2 of the paper: computational vs context based prediction
 * on a period-4 repeated stride sequence (1 2 3 4 1 2 3 4 ...).
 *
 * Paper result: the stride predictor learns after 2 values but keeps
 * repeating the same mistake at each wrap (LD 75% at p=4); the
 * order-2 fcm needs period+order = 6 values and then never misses.
 */

#include <cstdio>

#include "core/fcm.hh"
#include "core/learning.hh"
#include "core/stride.hh"
#include "exp/suite.hh"
#include "synth/sequences.hh"

using namespace vp;
using namespace vp::core;
using namespace vp::synth;

namespace {

void
printTrace(const char *label, const std::vector<uint64_t> &seq,
           const LearningResult &result)
{
    std::printf("%-24s", label);
    for (size_t i = 0; i < seq.size(); ++i) {
        const auto &p = result.predictionAt[i];
        if (!p.valid)
            std::printf("  .");
        else
            std::printf(" %2llu",
                        static_cast<unsigned long long>(p.value));
    }
    std::printf("\n%-24s", "");
    for (size_t i = 0; i < seq.size(); ++i)
        std::printf("  %c", result.correctAt[i] ? '=' : 'x');
    std::printf("\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    // Synthetic sequences are already instant; --dry-run is accepted
    // for uniformity with the other bench smoke targets.
    if (!exp::BenchArgs::parse(argc, argv).ok)
        return 2;
    const size_t period = 4;
    const auto seq = repeatedStrideSeq(1, 1, period, 16);

    StridePredictor stride;
    FcmConfig fc;
    fc.order = 2;
    fc.blending = FcmBlending::None;
    FcmPredictor fcm(fc);

    const auto r_stride = analyzeLearning(stride, seq);
    const auto r_fcm = analyzeLearning(fcm, seq);

    std::printf("Figure 2: Computational vs Context Based Prediction\n");
    std::printf("repeated stride, period = %zu\n\n", period);

    std::printf("%-24s", "value sequence");
    for (uint64_t v : seq)
        std::printf(" %2llu", static_cast<unsigned long long>(v));
    std::printf("\n\n");

    printTrace("stride (2-delta)", seq, r_stride);
    std::printf("\n");
    printTrace("context (fcm order 2)", seq, r_fcm);

    std::printf("\nmeasured: stride LT=%lld LD=%.0f%%  (paper: 2, "
                "75%%)\n",
                static_cast<long long>(r_stride.learningTime),
                100.0 * r_stride.learningDegree);
    std::printf("measured: fcm    LT=%lld LD=%.0f%%  (paper: "
                "period+order=6, 100%%)\n",
                static_cast<long long>(r_fcm.learningTime),
                100.0 * r_fcm.learningDegree);
    std::printf("('.' = no prediction, '=' correct, 'x' wrong; "
                "steady state: stride repeats\n"
                " the same mistake at each wrap, the context "
                "predictor never misses.)\n");
    return 0;
}
