/**
 * @file
 * Ablation (Section 2.1): hysteresis policies for the last-value and
 * stride predictors.
 *
 * The paper's main experiments use always-update last value and
 * two-delta stride; this bench quantifies what the other policies it
 * describes (saturating counters, change-after-consecutive, naive
 * stride) would have done on the same workloads.
 */

#include <cstdio>

#include "exp/suite.hh"
#include "sim/table.hh"

using namespace vp;

int
main(int argc, char **argv)
{
    const auto args = exp::BenchArgs::parse(argc, argv);
    if (!args.ok)
        return 2;
    exp::SuiteOptions options;
    options.predictors = {"l", "l-sat", "l-consec", "s", "s-sat", "s2"};

    args.apply(options);
    const auto runs = exp::runSuite(options);

    std::printf("Ablation: hysteresis policies of the computational "
                "predictors (%% correct)\n\n");

    sim::TextTable table;
    table.row().cell("benchmark");
    for (const auto &spec : options.predictors)
        table.cell(spec);
    table.rule();
    for (const auto &run : runs) {
        table.row().cell(run.name);
        for (size_t i = 0; i < options.predictors.size(); ++i)
            table.cell(run.accuracyPct(i), 1);
    }
    table.rule();
    table.row().cell("mean");
    for (size_t i = 0; i < options.predictors.size(); ++i)
        table.cell(exp::meanAccuracyPct(runs, i), 1);
    std::printf("%s\n", table.render().c_str());

    const double s = exp::meanAccuracyPct(runs, 3);
    const double s_sat = exp::meanAccuracyPct(runs, 4);
    const double s2 = exp::meanAccuracyPct(runs, 5);
    std::printf("expectations: two-delta (s2) >= saturating >= naive "
                "stride on repeated\nstride sequences (one vs two "
                "misses per period): s=%.1f s-sat=%.1f s2=%.1f %s\n",
                s, s_sat, s2,
                (s2 + 0.5 >= s_sat && s_sat + 0.5 >= s)
                        ? "(ok)" : "(CHECK)");
    return 0;
}
