/**
 * @file
 * vpd load generator — the headline bench of the network subsystem.
 *
 * Records the seven workload traces once, then replays them against an
 * in-process VpdServer as N concurrent loopback clients: every
 * (client, workload) pair is its own tenant, so each tenant's stream
 * is one complete workload trace delivered in order via BATCH frames.
 * That makes the correctness bar exact: after the run, every tenant's
 * server-side statistics must be byte-identical to a serial
 * single-bank replay of the same trace (exit 1 on any mismatch).
 *
 * Reports predictions/sec and per-frame RTT percentiles (p50/p99/p999)
 * per engine x client-count cell, in the same JSON artifact shape as
 * BENCH_campaign.json (context block with date, scale and
 * hardware_concurrency, then rows). The committed repo-root
 * BENCH_vpd.json is a snapshot of this program's output.
 *
 * Usage: vpd_loadgen [--scale N] [--clients LIST] [--batch N]
 *                    [--spec S] [--engine thread|epoll|both]
 *                    [--out FILE]
 *   --scale N      workload scale percent (default 5, the smoke scale)
 *   --clients L    comma list of client counts (default "1,4")
 *   --batch N      events per BATCH frame (default 512)
 *   --spec S       predictor spec per bank (default fcm3@1024/4096x4)
 *   --engine E     which server engine(s) to bench (default both)
 *   --out FILE     write JSON there instead of BENCH_vpd.json
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exp/suite.hh"
#include "net/client.hh"
#include "net/server.hh"
#include "sim/driver.hh"
#include "vm/machine.hh"
#include "workloads/workload.hh"

using namespace vp;
using Clock = std::chrono::steady_clock;

namespace {

struct Trace
{
    std::string workload;
    std::vector<vm::TraceEvent> events;
    net::TenantStats reference;     ///< serial single-bank replay
};

/** Record one workload and compute its serial-replay reference. */
Trace
recordTrace(const workloads::WorkloadInfo &info,
            const workloads::WorkloadConfig &config,
            const std::string &spec)
{
    Trace trace;
    trace.workload = info.name;

    vm::RecordingSink recording;
    vm::Machine machine;
    machine.setSink(&recording);
    machine.run(info.build(config));
    trace.events = std::move(recording.events);

    sim::PredictorBank bank;
    bank.add(exp::makePredictor(spec));
    sim::replayTrace(trace.events, bank);
    trace.reference = net::TenantStats::from(bank.member(0).stats);
    return trace;
}

double
percentileUs(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const size_t rank = static_cast<size_t>(
            p * static_cast<double>(sorted.size() - 1) / 100.0 + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
}

struct CellResult
{
    std::string engine;
    unsigned clients = 0;
    size_t tenants = 0;
    uint64_t events = 0;
    uint64_t frames = 0;
    double wallMs = 0.0;
    double predictionsPerSec = 0.0;
    double p50Us = 0.0, p99Us = 0.0, p999Us = 0.0;
    bool identical = false;
};

/**
 * One bench cell: a fresh server, @p clients worker threads each
 * replaying every trace as its own tenant, then the per-tenant
 * identity check against the serial references.
 */
CellResult
runCell(const std::vector<Trace> &traces, const std::string &spec,
        net::Engine engine, unsigned clients, size_t batch)
{
    net::VpdServerConfig config;
    config.banks.spec = spec;
    config.engine = engine;
    net::VpdServer server(config);
    server.start();

    std::vector<std::vector<double>> rttUs(clients);
    std::vector<std::thread> workers;
    std::mutex failMutex;
    std::string failure;

    const auto start = Clock::now();
    for (unsigned c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
            try {
                auto client = net::VpdClient::connectTcp(server.port());
                auto &samples = rttUs[c];
                for (size_t w = 0; w < traces.size(); ++w) {
                    const uint64_t tenant = c * traces.size() + w;
                    const auto &events = traces[w].events;
                    for (size_t i = 0; i < events.size(); i += batch) {
                        const size_t n =
                                std::min(batch, events.size() - i);
                        const auto t0 = Clock::now();
                        const auto reply = client.batch(
                                tenant,
                                vm::TraceSpan(events.data() + i, n));
                        samples.push_back(
                                std::chrono::duration<double,
                                                      std::micro>(
                                        Clock::now() - t0)
                                        .count());
                        if (reply.count != n)
                            throw std::runtime_error(
                                    "short batch reply");
                    }
                }
            } catch (const std::exception &error) {
                const std::lock_guard<std::mutex> lock(failMutex);
                failure = error.what();
            }
        });
    }
    for (auto &worker : workers)
        worker.join();
    const double wallMs =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      start)
                    .count();

    if (!failure.empty()) {
        server.stop();
        std::fprintf(stderr, "loadgen worker failed: %s\n",
                     failure.c_str());
        std::exit(1);
    }

    CellResult cell;
    cell.engine = net::engineName(engine);
    cell.clients = clients;
    cell.tenants = clients * traces.size();
    cell.wallMs = wallMs;

    std::vector<double> merged;
    for (const auto &samples : rttUs)
        merged.insert(merged.end(), samples.begin(), samples.end());
    std::sort(merged.begin(), merged.end());
    cell.frames = merged.size();
    cell.p50Us = percentileUs(merged, 50.0);
    cell.p99Us = percentileUs(merged, 99.0);
    cell.p999Us = percentileUs(merged, 99.9);

    for (const auto &trace : traces)
        cell.events += trace.events.size() * clients;
    cell.predictionsPerSec =
            static_cast<double>(cell.events) / (wallMs / 1e3);

    // Identity: every tenant's server-side statistics must equal the
    // serial single-bank replay of the same workload trace.
    cell.identical = true;
    auto checker = net::VpdClient::connectTcp(server.port());
    for (unsigned c = 0; c < clients && cell.identical; ++c) {
        for (size_t w = 0; w < traces.size(); ++w) {
            const uint64_t tenant = c * traces.size() + w;
            const auto stats = checker.tenantStats(tenant);
            if (!stats.has_value() ||
                !(*stats == traces[w].reference)) {
                std::fprintf(stderr,
                             "IDENTITY MISMATCH: engine=%s clients=%u "
                             "tenant=%llu workload=%s\n",
                             cell.engine.c_str(), clients,
                             static_cast<unsigned long long>(tenant),
                             traces[w].workload.c_str());
                cell.identical = false;
                break;
            }
        }
    }
    server.stop();
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    workloads::WorkloadConfig config;
    config.scale = 5;
    std::string out = "BENCH_vpd.json";
    std::string spec = "fcm3@1024/4096x4";
    std::string clientsArg = "1,4";
    std::string engineArg = "both";
    size_t batch = 512;

    for (int i = 1; i < argc; ++i) {
        const auto arg = [&](const char *name) {
            return std::strcmp(argv[i], name) == 0 && i + 1 < argc;
        };
        if (arg("--scale")) {
            config.scale = std::atoi(argv[++i]);
        } else if (arg("--clients")) {
            clientsArg = argv[++i];
        } else if (arg("--batch")) {
            batch = static_cast<size_t>(std::atol(argv[++i]));
        } else if (arg("--spec")) {
            spec = argv[++i];
        } else if (arg("--engine")) {
            engineArg = argv[++i];
        } else if (arg("--out")) {
            out = argv[++i];
        } else {
            std::fprintf(
                    stderr,
                    "usage: vpd_loadgen [--scale N] [--clients LIST] "
                    "[--batch N] [--spec S] "
                    "[--engine thread|epoll|both] [--out FILE]\n");
            return 2;
        }
    }
    if (batch == 0)
        batch = 512;

    std::vector<unsigned> clientCounts;
    for (size_t at = 0; at < clientsArg.size();) {
        const size_t comma = clientsArg.find(',', at);
        const std::string tok = clientsArg.substr(
                at, comma == std::string::npos ? std::string::npos
                                               : comma - at);
        const int n = std::atoi(tok.c_str());
        if (n > 0)
            clientCounts.push_back(static_cast<unsigned>(n));
        if (comma == std::string::npos)
            break;
        at = comma + 1;
    }
    if (clientCounts.empty())
        clientCounts = {1, 4};

    std::vector<net::Engine> engines;
    if (engineArg == "thread" || engineArg == "both")
        engines.push_back(net::Engine::Thread);
    if (engineArg == "epoll" || engineArg == "both")
        engines.push_back(net::Engine::Epoll);
    if (engines.empty()) {
        std::fprintf(stderr, "unknown --engine %s\n",
                     engineArg.c_str());
        return 2;
    }

    std::vector<Trace> traces;
    uint64_t totalEvents = 0;
    for (const auto &info : workloads::allWorkloads()) {
        traces.push_back(recordTrace(info, config, spec));
        totalEvents += traces.back().events.size();
        std::fprintf(stderr, "%-9s %8zu events\n",
                     traces.back().workload.c_str(),
                     traces.back().events.size());
    }

    std::vector<CellResult> cells;
    bool allIdentical = true;
    for (const auto engine : engines) {
        for (const unsigned clients : clientCounts) {
            cells.push_back(
                    runCell(traces, spec, engine, clients, batch));
            const auto &cell = cells.back();
            allIdentical = allIdentical && cell.identical;
            std::fprintf(stderr,
                         "%-6s clients=%u: %9.0f pred/s  "
                         "p50 %.0fus p99 %.0fus p99.9 %.0fus  "
                         "identity %s\n",
                         cell.engine.c_str(), cell.clients,
                         cell.predictionsPerSec, cell.p50Us,
                         cell.p99Us, cell.p999Us,
                         cell.identical ? "ok" : "FAILED");
        }
    }

    std::ofstream json(out);
    if (!json) {
        std::fprintf(stderr, "cannot open %s\n", out.c_str());
        return 1;
    }
    char date[64] = "";
    const std::time_t now = std::time(nullptr);
    std::strftime(date, sizeof(date), "%FT%T%z", std::localtime(&now));

    json << "{\n  \"context\": {\n"
         << "    \"date\": \"" << date << "\",\n"
         << "    \"scale\": " << config.scale << ",\n"
         << "    \"hardware_concurrency\": "
         << std::thread::hardware_concurrency() << ",\n"
         << "    \"spec\": \"" << spec << "\",\n"
         << "    \"batch_events\": " << batch << ",\n"
         << "    \"workloads\": " << traces.size() << ",\n"
         << "    \"events_per_tenant_set\": " << totalEvents << "\n"
         << "  },\n  \"runs\": [\n";
    for (size_t i = 0; i < cells.size(); ++i) {
        const auto &cell = cells[i];
        json << "    {\"engine\": \"" << cell.engine
             << "\", \"clients\": " << cell.clients
             << ", \"tenants\": " << cell.tenants
             << ", \"events\": " << cell.events
             << ", \"frames\": " << cell.frames
             << ", \"wall_ms\": " << cell.wallMs
             << ", \"predictions_per_sec\": " << cell.predictionsPerSec
             << ", \"p50_us\": " << cell.p50Us
             << ", \"p99_us\": " << cell.p99Us
             << ", \"p999_us\": " << cell.p999Us
             << ", \"stats_identical_to_serial\": "
             << (cell.identical ? "true" : "false") << "}"
             << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::fprintf(stderr, "wrote %s\n", out.c_str());
    return allIdentical ? 0 : 1;
}
