/**
 * @file
 * The one experiment driver: every table, figure and extension study
 * of the reproduction runs through the registry in src/exp/experiments
 * (`vpexp --list` enumerates them). See exp/vpexp.hh for the CLI.
 */

#include "exp/vpexp.hh"

int
main(int argc, char **argv)
{
    return vp::exp::vpexpMain(argc, argv);
}
