/**
 * @file
 * Figure 10 of the paper: values and instruction behavior — the
 * number of unique values generated per static instruction, as a
 * distribution over static instructions (left half) and weighted by
 * dynamic execution (right half), overall and per category.
 *
 * Paper result: >=50% of statics generate one value; ~90% generate
 * fewer than 64; >90% of dynamic instructions come from statics with
 * at most 4096 unique values. (The static distribution shifts for
 * the proxies, which lack SPEC's cold code; see EXPERIMENTS.md.)
 */

#include <cstdio>

#include "exp/suite.hh"
#include "sim/table.hh"

using namespace vp;

int
main(int argc, char **argv)
{
    const auto args = exp::BenchArgs::parse(argc, argv);
    if (!args.ok)
        return 2;
    exp::SuiteOptions options;
    options.predictors = {"l"};
    options.values = true;

    args.apply(options);
    const auto runs = exp::runSuite(options);

    // The paper aggregates over the whole suite; average the
    // per-benchmark distributions (arithmetic mean, as everywhere).
    auto averaged = [&](std::optional<isa::Category> cat) {
        core::ValueProfiler::Distribution mean{};
        for (const auto &run : runs) {
            const auto dist = run.values->distribution(cat);
            for (int i = 0; i < core::ValueProfiler::numBuckets; ++i) {
                mean.staticShare[i] += dist.staticShare[i] /
                        runs.size();
                mean.dynamicShare[i] += dist.dynamicShare[i] /
                        runs.size();
            }
        }
        return mean;
    };

    std::printf("Figure 10: Values and Instruction Behavior\n"
                "cells: %% of static (s.) / dynamic (d.) instructions "
                "whose static generates <= N unique values\n\n");

    sim::TextTable table;
    table.row().cell("values");
    table.cell("s.All");
    for (const auto cat : exp::reportedCategories())
        table.cell("s." + std::string(isa::categoryName(cat)));
    table.cell("d.All");
    for (const auto cat : exp::reportedCategories())
        table.cell("d." + std::string(isa::categoryName(cat)));
    table.rule();

    const auto all = averaged(std::nullopt);
    std::vector<core::ValueProfiler::Distribution> per_cat;
    for (const auto cat : exp::reportedCategories())
        per_cat.push_back(averaged(cat));

    for (int bucket = 0; bucket < core::ValueProfiler::numBuckets;
         ++bucket) {
        table.row().cell(core::ValueProfiler::bucketLabel(bucket));
        table.cell(100.0 * all.staticShare[bucket], 1);
        for (const auto &dist : per_cat)
            table.cell(100.0 * dist.staticShare[bucket], 1);
        table.cell(100.0 * all.dynamicShare[bucket], 1);
        for (const auto &dist : per_cat)
            table.cell(100.0 * dist.dynamicShare[bucket], 1);
    }
    std::printf("%s\n", table.render().c_str());

    // The bullet list from Section 4.3.
    double s1 = 0, s64 = 0, d64 = 0, d4096 = 0;
    for (const auto &run : runs) {
        s1 += 100.0 * run.values->staticFractionAtMost(1) /
                runs.size();
        s64 += 100.0 * run.values->staticFractionAtMost(64) /
                runs.size();
        d64 += 100.0 * run.values->dynamicFractionAtMost(64) /
                runs.size();
        d4096 += 100.0 * run.values->dynamicFractionAtMost(4096) /
                runs.size();
    }
    std::printf("Section 4.3 bullets, measured vs paper:\n");
    std::printf("  statics generating one value:   %5.1f%%  "
                "(paper >50%%; proxies lack cold code)\n", s1);
    std::printf("  statics generating <64 values:  %5.1f%%  "
                "(paper ~90%%)\n", s64);
    std::printf("  dynamics from statics <64:      %5.1f%%  "
                "(paper >50%%)\n", d64);
    std::printf("  dynamics from statics <=4096:   %5.1f%%  "
                "(paper >90%%)\n", d4096);
    return 0;
}
