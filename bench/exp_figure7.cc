/**
 * @file
 * Figure 7 of the paper: prediction success for shift instructions.
 */

#include "category_figure.hh"

int
main(int argc, char **argv)
{
    return vp::bench::runCategoryFigure(
            7, vp::isa::Category::Shift,
            "shifts are the most difficult category to predict "
            "correctly; the stride\noperation does not match the "
            "shift functionality, so stride sits close to\nlast "
            "value (Section 4.1 suggests per-type computational "
            "predictors).", argc, argv);
}
