/**
 * @file
 * Table 4 of the paper: static count of predicted instructions by
 * instruction type, per benchmark.
 *
 * Absolute counts are incomparable (SPEC binaries have tens of
 * thousands of statics; the proxies have the hot kernels only), so
 * the shape check is the *ranking*: AddSub and Loads dominate the
 * static mix, as in the paper.
 */

#include <cstdio>

#include "exp/suite.hh"
#include "sim/table.hh"

using namespace vp;

int
main(int argc, char **argv)
{
    const auto args = exp::BenchArgs::parse(argc, argv);
    if (!args.ok)
        return 2;
    exp::SuiteOptions options;
    options.predictors = {"l"};

    args.apply(options);
    const auto runs = exp::runSuite(options);

    std::printf("Table 4: Predicted Instructions - Static Count\n\n");

    sim::TextTable table;
    table.row().cell("Type");
    for (const auto &run : runs)
        table.cell(run.name);
    table.rule();

    for (int c = 0; c < isa::numPredictedCategories; ++c) {
        const auto cat = static_cast<isa::Category>(c);
        table.row().cell(std::string(isa::categoryName(cat)));
        for (const auto &run : runs) {
            table.cell(static_cast<uint64_t>(
                    run.staticByCategory[c]));
        }
    }
    table.rule();
    table.row().cell("total");
    for (const auto &run : runs)
        table.cell(static_cast<uint64_t>(run.staticPredicted));

    std::printf("%s\n", table.render().c_str());

    std::printf("shape check (paper: AddSub + Loads are the two "
                "largest static categories):\n");
    for (const auto &run : runs) {
        const auto addsub =
                run.staticByCategory[int(isa::Category::AddSub)];
        const auto loads =
                run.staticByCategory[int(isa::Category::Loads)];
        size_t others = 0;
        for (int c = 2; c < isa::numPredictedCategories; ++c)
            others = std::max(others, run.staticByCategory[c]);
        std::printf("  %-9s AddSub=%zu Loads=%zu max(other)=%zu %s\n",
                    run.name.c_str(), addsub, loads, others,
                    (addsub + loads) > 2 * others ? "ok" : "CHECK");
    }
    return 0;
}
