/**
 * @file
 * Shared implementation for Figures 4-7: per-category prediction
 * success of l / s2 / fcm1-3 for every benchmark.
 */

#ifndef VP_BENCH_CATEGORY_FIGURE_HH
#define VP_BENCH_CATEGORY_FIGURE_HH

#include <cstdio>

#include "exp/suite.hh"
#include "sim/table.hh"

namespace vp::bench {

/**
 * Run the canonical suite and print the accuracy table restricted to
 * @p cat (the body of Figures 4-7).
 */
inline int
runCategoryFigure(int figure_number, isa::Category cat,
                  const char *paper_note, int argc, char **argv)
{
    const auto args = exp::BenchArgs::parse(argc, argv);
    if (!args.ok)
        return 2;
    exp::SuiteOptions options;
    options.predictors = {"l", "s2", "fcm1", "fcm2", "fcm3"};

    args.apply(options);
    const auto runs = exp::runSuite(options);
    const auto cat_name = std::string(isa::categoryName(cat));

    std::printf("Figure %d: Prediction Success for %s Instructions "
                "(%% of predictions)\n\n",
                figure_number, cat_name.c_str());

    sim::TextTable table;
    table.row().cell("benchmark");
    for (const auto &spec : options.predictors)
        table.cell(spec);
    table.cell("dyn share%");
    table.rule();

    for (const auto &run : runs) {
        table.row().cell(run.name);
        for (size_t i = 0; i < options.predictors.size(); ++i)
            table.cell(run.accuracyPct(i, cat), 1);
        table.cell(100.0 * run.exec.categoryShare(cat), 1);
    }
    table.rule();
    table.row().cell("mean");
    for (size_t i = 0; i < options.predictors.size(); ++i)
        table.cell(exp::meanAccuracyPct(runs, i, cat), 1);
    table.cell("");

    std::printf("%s\n", table.render().c_str());
    std::printf("paper: %s\n", paper_note);
    return 0;
}

} // namespace vp::bench

#endif // VP_BENCH_CATEGORY_FIGURE_HH
