/**
 * @file
 * Tables 2 and 3 of the paper: benchmark characteristics (dynamic
 * instruction counts and the fraction eligible for prediction) and
 * the instruction category definitions.
 *
 * Paper result (Table 2): predicted fractions range 62%-84%.
 */

#include <cstdio>

#include "exp/paper_data.hh"
#include "exp/suite.hh"
#include "sim/table.hh"

using namespace vp;

int
main(int argc, char **argv)
{
    const auto args = exp::BenchArgs::parse(argc, argv);
    if (!args.ok)
        return 2;
    exp::SuiteOptions options;
    options.predictors = {"l"};     // counts only; one cheap predictor

    args.apply(options);
    const auto runs = exp::runSuite(options);

    std::printf("Table 3: Instruction Categories\n\n");
    sim::TextTable cats;
    cats.row().cell("Instruction Types").cell("Code").rule();
    cats.row().cell("Addition, Subtraction").cell("AddSub");
    cats.row().cell("Loads").cell("Loads");
    cats.row().cell("And, Or, Xor, Nor, Not").cell("Logic");
    cats.row().cell("Shifts").cell("Shift");
    cats.row().cell("Compare and Set").cell("Set");
    cats.row().cell("Multiply and Divide").cell("MultDiv");
    cats.row().cell("Load immediate").cell("Lui");
    cats.row().cell("Min/Max/Abs/Neg/Mov, Other").cell("Other");
    std::printf("%s\n", cats.render().c_str());

    std::printf("Table 2: Benchmark Characteristics\n\n");
    sim::TextTable table;
    table.row().cell("benchmark").cell("dyn instr (k)")
         .cell("predicted (k)").cell("predicted %")
         .cell("| paper %").rule();

    for (const auto &run : runs) {
        table.row().cell(run.name);
        table.cell(static_cast<uint64_t>(run.exec.retired / 1000));
        table.cell(static_cast<uint64_t>(run.exec.predicted / 1000));
        table.cell(100.0 * run.exec.predictedFraction(), 1);
        table.cell(exp::paper::table2PredictedPct(run.name), 0);
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("shape check: paper predicted fractions span 62%%-84%%\n");
    for (const auto &run : runs) {
        const double pct = 100.0 * run.exec.predictedFraction();
        if (pct < 55.0 || pct > 92.0) {
            std::printf("  WARNING: %s predicted%% = %.1f outside a "
                        "plausible band\n", run.name.c_str(), pct);
        }
    }
    return 0;
}
