/**
 * @file
 * `vpd` — the prediction server binary.
 *
 * Serves the vpd wire protocol (src/net/protocol.hh) against a
 * ShardedBankMap of per-(tenant, pc-group) predictor banks.
 *
 * Usage: vpd [options]
 *   --spec S            predictor spec per bank (default fcm3@1024/4096x4)
 *   --stripes N         lock stripes (default 64, rounded to pow2)
 *   --pc-group-bits B   pc bits per bank (default 64 = 1 bank/tenant)
 *   --engine E          thread | epoll (default thread)
 *   --loops N           epoll event loops (default 1)
 *   --port P            TCP port on 127.0.0.1 (default 0 = ephemeral)
 *   --unix PATH         listen on a Unix socket instead of TCP
 *   --stats HOST:PORT   connect to a running server, print its STATS
 *                       snapshot (rendered obs::Registry), exit
 *   --stats-unix PATH   same over a Unix socket
 *   --smoke             start a loopback server, run one client
 *                       exchange against it, print the STATS
 *                       snapshot, exit 0 (the ctest smoke mode)
 *
 * Without --stats/--smoke the server runs until SIGINT/SIGTERM, then
 * stops gracefully (in-flight requests drain).
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exp/suite.hh"
#include "net/client.hh"
#include "net/server.hh"

using namespace vp;

namespace {

int
usage()
{
    std::fprintf(
            stderr,
            "usage: vpd [--spec S] [--stripes N] [--pc-group-bits B]\n"
            "           [--engine thread|epoll] [--loops N]\n"
            "           [--port P | --unix PATH]\n"
            "           [--stats HOST:PORT | --stats-unix PATH]\n"
            "           [--smoke]\n");
    return 2;
}

/** One tiny client exchange proving the server serves (--smoke). */
int
smokeExchange(net::VpdServer &server)
{
    auto client = net::VpdClient::connectTcp(server.port());
    std::vector<vm::TraceEvent> events;
    for (uint64_t i = 0; i < 256; ++i) {
        vm::TraceEvent event;
        event.pc = 64 + 8 * (i % 4);
        event.op = isa::Opcode::Add;
        event.cat = isa::Category::AddSub;
        event.value = 100 + i;      // stride stream: learnable
        events.push_back(event);
    }
    const auto reply = client.batch(
            7, vm::TraceSpan(events.data(), events.size()));
    if (reply.count != events.size()) {
        std::fprintf(stderr, "smoke: bad batch reply count %u\n",
                     reply.count);
        return 1;
    }
    const auto pred = client.predict(7, 64);
    if (!pred.valid) {
        std::fprintf(stderr,
                     "smoke: predictor did not learn the stream\n");
        return 1;
    }
    const auto stats = client.tenantStats(7);
    if (!stats.has_value() || stats->total != events.size()) {
        std::fprintf(stderr, "smoke: bad tenant stats\n");
        return 1;
    }
    std::fputs(client.stats().c_str(), stdout);
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    net::VpdServerConfig config;
    config.banks.spec = "fcm3@1024/4096x4";
    bool smoke = false;
    std::string stats_tcp, stats_unix;

    for (int i = 1; i < argc; ++i) {
        const auto arg = [&](const char *name) {
            return std::strcmp(argv[i], name) == 0 && i + 1 < argc;
        };
        if (arg("--spec")) {
            config.banks.spec = argv[++i];
        } else if (arg("--stripes")) {
            config.banks.stripes =
                    static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg("--pc-group-bits")) {
            config.banks.pcGroupBits =
                    static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg("--engine")) {
            const std::string engine = argv[++i];
            if (engine == "thread") {
                config.engine = net::Engine::Thread;
            } else if (engine == "epoll") {
                config.engine = net::Engine::Epoll;
            } else {
                return usage();
            }
        } else if (arg("--loops")) {
            config.epollLoops =
                    static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg("--port")) {
            config.port = static_cast<uint16_t>(std::atoi(argv[++i]));
        } else if (arg("--unix")) {
            config.unixPath = argv[++i];
        } else if (arg("--stats")) {
            stats_tcp = argv[++i];
        } else if (arg("--stats-unix")) {
            stats_unix = argv[++i];
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else {
            return usage();
        }
    }

    try {
        if (!stats_tcp.empty() || !stats_unix.empty()) {
            net::VpdClient client;
            if (!stats_unix.empty()) {
                client = net::VpdClient::connectUnix(stats_unix);
            } else {
                const auto colon = stats_tcp.rfind(':');
                if (colon == std::string::npos)
                    return usage();
                client = net::VpdClient::connectTcp(
                        static_cast<uint16_t>(std::atoi(
                                stats_tcp.c_str() + colon + 1)));
            }
            std::fputs(client.stats().c_str(), stdout);
            return 0;
        }

        // Validate the spec before binding anything.
        exp::makePredictor(config.banks.spec);

        net::VpdServer server(config);
        server.start();

        if (smoke) {
            const int rc = smokeExchange(server);
            server.stop();
            return rc;
        }

        if (config.unixPath.empty()) {
            std::fprintf(stderr,
                         "vpd: listening on 127.0.0.1:%u "
                         "(engine=%s, spec=%s, stripes=%u)\n",
                         server.port(),
                         net::engineName(config.engine),
                         config.banks.spec.c_str(),
                         server.banks().stripes());
        } else {
            std::fprintf(stderr,
                         "vpd: listening on %s (engine=%s, spec=%s)\n",
                         config.unixPath.c_str(),
                         net::engineName(config.engine),
                         config.banks.spec.c_str());
        }

        sigset_t set;
        sigemptyset(&set);
        sigaddset(&set, SIGINT);
        sigaddset(&set, SIGTERM);
        pthread_sigmask(SIG_BLOCK, &set, nullptr);
        int sig = 0;
        sigwait(&set, &sig);
        std::fprintf(stderr, "vpd: signal %d, stopping\n", sig);
        server.stop();
        return 0;
    } catch (const std::exception &error) {
        std::fprintf(stderr, "vpd: %s\n", error.what());
        return 1;
    }
}
