/**
 * @file
 * Capacity sweep: accuracy of the bounded (finite-table) predictors
 * as the entry budget grows from 256 entries to the unbounded
 * idealisation of the paper.
 *
 * The paper (Section 5) deliberately leaves finite-resource
 * implementations as future work; this experiment measures how fast
 * the realistic set-associative tables converge to the idealised
 * numbers. Expected shape: accuracy increases monotonically-ish with
 * capacity and the largest budget matches the unbounded predictor to
 * within 0.1 percentage points (asserted in
 * tests/bounded_equivalence_test.cc).
 */

#include <cstdio>

#include "exp/capacity.hh"
#include "sim/table.hh"

using namespace vp;

int
main(int argc, char **argv)
{
    const auto args = exp::BenchArgs::parse(argc, argv);
    if (!args.ok)
        return 2;
    exp::SuiteOptions options;
    args.apply(options);

    const auto sweep = exp::runCapacitySweep(options);
    const auto &families = exp::capacityFamilies();
    const auto &points = exp::capacitySweepPoints();

    std::printf("Capacity sweep: bounded predictor accuracy (%%) per "
                "total entry budget\n"
                "(16-way LRU; fcm splits its budget 1:3 between VHT "
                "and VPT, 4 followers per entry)\n\n");

    for (const auto &run : sweep.runs) {
        std::printf("%s\n", run.name.c_str());
        sim::TextTable table;
        auto &header = table.row().cell("entries");
        for (const auto &family : families)
            header.cell(family);
        table.rule();
        for (size_t p = 0; p < points.size(); ++p) {
            auto &row = table.row().cell(
                    static_cast<uint64_t>(points[p]));
            for (size_t f = 0; f < families.size(); ++f)
                row.cell(run.accuracyPct(
                                 exp::CapacitySweep::specIndex(f, p)),
                         2);
        }
        auto &last = table.row().cell("unbounded");
        for (size_t f = 0; f < families.size(); ++f)
            last.cell(run.accuracyPct(
                              exp::CapacitySweep::unboundedIndex(f)),
                      2);
        std::printf("%s\n", table.render().c_str());
    }

    std::printf("Suite mean (paper averaging rule)\n");
    sim::TextTable mean;
    auto &header = mean.row().cell("entries");
    for (const auto &family : families)
        header.cell(family);
    mean.rule();
    for (size_t p = 0; p < points.size(); ++p) {
        auto &row = mean.row().cell(static_cast<uint64_t>(points[p]));
        for (size_t f = 0; f < families.size(); ++f)
            row.cell(exp::meanAccuracyPct(
                             sweep.runs,
                             exp::CapacitySweep::specIndex(f, p)),
                     2);
    }
    auto &last = mean.row().cell("unbounded");
    for (size_t f = 0; f < families.size(); ++f)
        last.cell(exp::meanAccuracyPct(
                          sweep.runs,
                          exp::CapacitySweep::unboundedIndex(f)),
                  2);
    std::printf("%s\n", mean.render().c_str());

    std::printf("shape check: largest budget within 0.1pp of "
                "unbounded per workload\n");
    bool converged = true;
    for (const auto &run : sweep.runs) {
        for (size_t f = 0; f < families.size(); ++f) {
            const double bounded = run.accuracyPct(
                    exp::CapacitySweep::specIndex(f,
                                                  points.size() - 1));
            const double unbounded = run.accuracyPct(
                    exp::CapacitySweep::unboundedIndex(f));
            const double gap = unbounded - bounded;
            if (gap > 0.1 || gap < -0.1) {
                std::printf("  WARNING: %s/%s gap %.3fpp at %zu "
                            "entries\n",
                            run.name.c_str(), families[f].c_str(), gap,
                            points.back());
                converged = false;
            }
        }
    }
    if (converged)
        std::printf("  all families converged\n");
    return 0;
}
