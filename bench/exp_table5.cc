/**
 * @file
 * Table 5 of the paper: dynamic percentage of predicted instructions
 * by instruction type, per benchmark, printed beside the paper's
 * exact values.
 *
 * Shape checks: AddSub and Loads carry the majority of dynamic
 * predictions everywhere; perl/xlisp are the most load-heavy;
 * compress/ijpeg are shift-heavy; MultDiv is small except ijpeg.
 */

#include <cstdio>

#include "exp/paper_data.hh"
#include "exp/suite.hh"
#include "sim/table.hh"

using namespace vp;

int
main(int argc, char **argv)
{
    const auto args = exp::BenchArgs::parse(argc, argv);
    if (!args.ok)
        return 2;
    exp::SuiteOptions options;
    options.predictors = {"l"};

    args.apply(options);
    const auto runs = exp::runSuite(options);

    std::printf("Table 5: Predicted Instructions - Dynamic (%%)\n"
                "each cell: measured (paper)\n\n");

    sim::TextTable table;
    table.row().cell("Type");
    for (const auto &run : runs)
        table.cell(run.name);
    table.rule();

    for (int c = 0; c < isa::numPredictedCategories; ++c) {
        const auto cat = static_cast<isa::Category>(c);
        const std::string cat_name(isa::categoryName(cat));
        table.row().cell(cat_name);
        for (const auto &run : runs) {
            char cell[64];
            const double measured =
                    100.0 * run.exec.categoryShare(cat);
            const double paper = exp::paper::table5DynamicPct(
                    run.name, cat_name);
            if (paper > 0)
                std::snprintf(cell, sizeof(cell), "%.1f (%.1f)",
                              measured, paper);
            else
                std::snprintf(cell, sizeof(cell), "%.1f", measured);
            table.cell(cell);
        }
    }

    std::printf("%s\n", table.render().c_str());

    std::printf("shape checks:\n");
    for (const auto &run : runs) {
        const double addsub =
                100.0 * run.exec.categoryShare(isa::Category::AddSub);
        const double loads =
                100.0 * run.exec.categoryShare(isa::Category::Loads);
        std::printf("  %-9s AddSub+Loads = %.1f%% of predictions %s\n",
                    run.name.c_str(), addsub + loads,
                    addsub + loads > 50 ? "(majority, ok)" : "(CHECK)");
    }
    return 0;
}
