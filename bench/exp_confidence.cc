/**
 * @file
 * Confidence sweep: what a saturating-counter gate buys each predictor
 * family once mispredictions cost recovery (the Section 4 speculation
 * question the paper leaves open).
 *
 * For every family (l, s2, fcm1-3, hybrid) and every counter width x
 * threshold grid point the report shows the gated triple — coverage,
 * accuracy when predicted, and the speculation-profit proxy
 * correct - cost x incorrect per eligible event — against the ungated
 * baseline. Expected shape: within one width, raising the threshold
 * trades coverage down for accuracy-when-predicted up (asserted in
 * tests/confidence_test.cc), and at cost >= 1 some gated fcm3 point
 * beats ungated fcm3 on profit.
 */

#include <cstdio>

#include "exp/confidence.hh"
#include "sim/table.hh"

using namespace vp;

namespace {

std::string
pointLabel(const exp::ConfidencePoint &point)
{
    return "c" + std::to_string(point.width) + "t" +
           std::to_string(point.threshold);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto args = exp::BenchArgs::parse(argc, argv);
    if (!args.ok)
        return 2;
    exp::SuiteOptions options;
    args.apply(options);

    const auto sweep = exp::runConfidenceSweep(options);
    const auto &families = exp::confidenceFamilies();
    const auto &points = exp::confidenceSweepPoints();

    std::printf("Confidence sweep: gating predictions on per-PC "
                "saturating counters\n"
                "(cWtT = width W bits, predict at counter >= T, reset "
                "on miss; cov = %%\n"
                "of eligible events predicted, acc = %% correct of "
                "those)\n\n");

    for (const auto &run : sweep.runs) {
        std::printf("%s\n", run.name.c_str());
        sim::TextTable table;
        auto &header = table.row().cell("gate");
        for (const auto &family : families) {
            header.cell(family + " cov");
            header.cell("acc");
        }
        table.rule();
        auto &ungated = table.row().cell("none");
        for (size_t f = 0; f < families.size(); ++f) {
            const auto &stats =
                    run.predictors
                            .at(exp::ConfidenceSweep::ungatedIndex(f))
                            .second;
            ungated.cell(100.0 * stats.coverage(), 1);
            ungated.cell(100.0 * stats.accuracyWhenPredicted(), 1);
        }
        for (size_t p = 0; p < points.size(); ++p) {
            auto &row = table.row().cell(pointLabel(points[p]));
            for (size_t f = 0; f < families.size(); ++f) {
                const auto &stats =
                        run.predictors
                                .at(exp::ConfidenceSweep::specIndex(f, p))
                                .second;
                row.cell(100.0 * stats.coverage(), 1);
                row.cell(100.0 * stats.accuracyWhenPredicted(), 1);
            }
        }
        std::printf("%s\n", table.render().c_str());
    }

    std::printf("Suite mean (paper averaging rule)\n");
    sim::TextTable mean;
    auto &header = mean.row().cell("gate");
    for (const auto &family : families) {
        header.cell(family + " cov");
        header.cell("acc");
    }
    mean.rule();
    auto &ungated = mean.row().cell("none");
    for (size_t f = 0; f < families.size(); ++f) {
        const size_t index = exp::ConfidenceSweep::ungatedIndex(f);
        ungated.cell(exp::meanCoveragePct(sweep.runs, index), 1);
        ungated.cell(exp::meanAccuracyWhenPredictedPct(sweep.runs,
                                                       index),
                     1);
    }
    for (size_t p = 0; p < points.size(); ++p) {
        auto &row = mean.row().cell(pointLabel(points[p]));
        for (size_t f = 0; f < families.size(); ++f) {
            const size_t index = exp::ConfidenceSweep::specIndex(f, p);
            row.cell(exp::meanCoveragePct(sweep.runs, index), 1);
            row.cell(exp::meanAccuracyWhenPredictedPct(sweep.runs,
                                                       index),
                     1);
        }
    }
    std::printf("%s\n", mean.render().c_str());

    for (const double cost : exp::speculationCosts()) {
        std::printf("Suite-mean profit per eligible event at "
                    "misprediction cost %.0f\n",
                    cost);
        sim::TextTable profit;
        auto &phead = profit.row().cell("gate");
        for (const auto &family : families)
            phead.cell(family);
        profit.rule();
        auto &pu = profit.row().cell("none");
        for (size_t f = 0; f < families.size(); ++f) {
            pu.cell(exp::meanProfit(
                            sweep.runs,
                            exp::ConfidenceSweep::ungatedIndex(f), cost),
                    3);
        }
        for (size_t p = 0; p < points.size(); ++p) {
            auto &row = profit.row().cell(pointLabel(points[p]));
            for (size_t f = 0; f < families.size(); ++f) {
                row.cell(exp::meanProfit(
                                 sweep.runs,
                                 exp::ConfidenceSweep::specIndex(f, p),
                                 cost),
                         3);
            }
        }
        std::printf("%s\n", profit.render().c_str());
    }

    std::printf("shape check: a gated fcm3 point beats ungated fcm3 "
                "on profit at every cost >= 1\n");
    size_t fcm3 = 0;
    for (size_t f = 0; f < families.size(); ++f) {
        if (families[f] == "fcm3")
            fcm3 = f;
    }
    bool all_beat = true;
    for (const double cost : exp::speculationCosts()) {
        const double base = exp::meanProfit(
                sweep.runs, exp::ConfidenceSweep::ungatedIndex(fcm3),
                cost);
        double best = base;
        std::string best_label = "none";
        for (size_t p = 0; p < points.size(); ++p) {
            const double gated = exp::meanProfit(
                    sweep.runs,
                    exp::ConfidenceSweep::specIndex(fcm3, p), cost);
            if (gated > best) {
                best = gated;
                best_label = pointLabel(points[p]);
            }
        }
        std::printf("  cost %.0f: ungated %.3f, best %s %.3f\n", cost,
                    base, best_label.c_str(), best);
        if (best_label == "none")
            all_beat = false;
    }
    std::printf(all_beat ? "  gating pays at every cost\n"
                         : "  WARNING: gating never beat ungated fcm3\n");
    return 0;
}
