/**
 * @file
 * Ablation (Section 2.2): fcm design choices — blending with lazy
 * exclusion (the paper's configuration) vs full blending vs no
 * blending, and exact counts vs small saturating counters with
 * halving.
 */

#include <cstdio>

#include "exp/suite.hh"
#include "sim/table.hh"

using namespace vp;

int
main(int argc, char **argv)
{
    const auto args = exp::BenchArgs::parse(argc, argv);
    if (!args.ok)
        return 2;
    exp::SuiteOptions options;
    options.predictors = {"fcm3", "fcm3-full", "fcm3-pure", "fcm3-sat"};

    args.apply(options);
    const auto runs = exp::runSuite(options);

    std::printf("Ablation: fcm blending and counter policies "
                "(order 3, %% correct)\n"
                "fcm3 = lazy exclusion + exact counts (the paper's "
                "configuration)\n\n");

    sim::TextTable table;
    table.row().cell("benchmark").cell("lazy").cell("full")
         .cell("no-blend").cell("small-ctr").rule();
    for (const auto &run : runs) {
        table.row().cell(run.name);
        for (size_t i = 0; i < options.predictors.size(); ++i)
            table.cell(run.accuracyPct(i), 1);
    }
    table.rule();
    table.row().cell("mean");
    for (size_t i = 0; i < options.predictors.size(); ++i)
        table.cell(exp::meanAccuracyPct(runs, i), 1);
    std::printf("%s\n", table.render().c_str());

    const double lazy = exp::meanAccuracyPct(runs, 0);
    const double pure = exp::meanAccuracyPct(runs, 2);
    std::printf("expectations: blending >> no blending (order-3 "
                "contexts alone leave cold-start\nholes): lazy=%.1f "
                "no-blend=%.1f %s; small counters track exact counts "
                "closely\n(recency weighting rarely hurts).\n",
                lazy, pure, lazy > pure ? "(ok)" : "(CHECK)");
    return 0;
}
