/**
 * @file
 * Table 7 of the paper: sensitivity of gcc's order-2 fcm accuracy to
 * compilation flags (input file fixed).
 *
 * Paper result: accuracy varies little (75.3%-78.6%) while the
 * prediction count varies by >4x between -O0 and the ref flags.
 */

#include <algorithm>
#include <cstdio>

#include "exp/paper_data.hh"
#include "exp/suite.hh"
#include "sim/table.hh"

using namespace vp;

int
main(int argc, char **argv)
{
    const auto args = exp::BenchArgs::parse(argc, argv);
    if (!args.ok)
        return 2;
    const char *flag_sets[] = {"none", "O1", "O2", "ref"};

    std::printf("Table 7: Sensitivity of 126.gcc to Input Flags "
                "(input gcc.i, order-2 fcm)\n\n");

    sim::TextTable table;
    table.row().cell("flags").cell("predictions (k)")
         .cell("correct %").cell("| paper %").rule();

    std::vector<double> accuracies;
    std::vector<uint64_t> counts;
    for (const char *flags : flag_sets) {
        exp::SuiteOptions options;
        options.predictors = {"fcm2"};
        options.benchmarks = {"gcc"};
        options.config.flags = flags;
        args.apply(options);
        const auto runs = exp::runSuite(options);
        const auto &run = runs.front();
        accuracies.push_back(run.accuracyPct(0));
        counts.push_back(run.exec.predicted);
        table.row().cell(flags);
        table.cell(static_cast<uint64_t>(run.exec.predicted / 1000));
        table.cell(run.accuracyPct(0), 1);
        table.cell(exp::paper::table7Accuracy(flags), 1);
    }
    std::printf("%s\n", table.render().c_str());

    const auto [lo, hi] =
            std::minmax_element(accuracies.begin(), accuracies.end());
    std::printf("accuracy spread: %.1f points (paper: 3.3) — %s\n",
                *hi - *lo,
                *hi - *lo < 8.0 ? "small variation, as in the paper"
                                : "CHECK: larger than expected");
    std::printf("work ratio none/ref: %.2fx (paper: runs differ "
                "while accuracy barely moves)\n",
                static_cast<double>(counts.front()) / counts.back());
    return 0;
}
