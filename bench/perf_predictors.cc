/**
 * @file
 * Microbenchmarks (google-benchmark): predictor lookup/update
 * throughput and table growth on representative value streams.
 *
 * The paper ignores predictor cost by design; these numbers put the
 * "context prediction is the more expensive approach" remark of
 * Section 4.2 on an engineering footing for this implementation.
 */

#include <string_view>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/bounded.hh"
#include "core/fcm.hh"
#include "core/hybrid.hh"
#include "core/last_value.hh"
#include "core/stride.hh"
#include "exp/suite.hh"
#include "synth/sequences.hh"

using namespace vp;
using namespace vp::core;
using namespace vp::synth;

namespace {

/** Mixed stream over many PCs: constants, strides, repeated RNS. */
std::vector<std::pair<uint64_t, uint64_t>>
mixedStream(size_t events)
{
    std::vector<std::pair<uint64_t, uint64_t>> stream;
    stream.reserve(events);
    const auto constants = constantSeq(42, events / 4 + 1);
    const auto strides = strideSeq(0, 8, events / 4 + 1);
    const auto rns = repeatedNonStrideSeq(3, 7, events / 4 + 1);
    const auto ns = nonStrideSeq(5, events / 4 + 1);
    for (size_t i = 0; stream.size() < events; ++i) {
        stream.emplace_back(0, constants[i]);
        stream.emplace_back(1, strides[i]);
        stream.emplace_back(2, rns[i]);
        stream.emplace_back(3, ns[i]);
    }
    stream.resize(events);
    return stream;
}

template <typename MakePred>
void
runPredictor(benchmark::State &state, MakePred make)
{
    const auto stream = mixedStream(4096);
    auto pred = make();
    size_t i = 0;
    for (auto _ : state) {
        const auto &[pc, value] = stream[i];
        benchmark::DoNotOptimize(pred->predict(pc));
        pred->update(pc, value);
        i = (i + 1) % stream.size();
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["table_entries"] =
            static_cast<double>(pred->tableEntries());
}

void
BM_LastValue(benchmark::State &state)
{
    runPredictor(state,
                 [] { return std::make_unique<LastValuePredictor>(); });
}

void
BM_StrideTwoDelta(benchmark::State &state)
{
    runPredictor(state,
                 [] { return std::make_unique<StridePredictor>(); });
}

void
BM_Fcm(benchmark::State &state)
{
    const int order = static_cast<int>(state.range(0));
    runPredictor(state, [order] {
        FcmConfig config;
        config.order = order;
        return std::make_unique<FcmPredictor>(config);
    });
    state.SetLabel("order " + std::to_string(order));
}

void
BM_Hybrid(benchmark::State &state)
{
    runPredictor(state,
                 [] { return std::make_unique<HybridPredictor>(); });
}

/**
 * Stream spread over many static PCs (per-PC stride sequences), the
 * regime where table organisation dominates: the unbounded predictors
 * chase unordered_map nodes, the bounded ones probe a flat
 * set-associative array.
 */
std::vector<std::pair<uint64_t, uint64_t>>
manyPcStream(size_t events, size_t pcs)
{
    std::vector<std::pair<uint64_t, uint64_t>> stream;
    stream.reserve(events);
    std::vector<uint64_t> occurrences(pcs, 0);
    for (size_t i = 0; i < events; ++i) {
        const uint64_t pc = (i * 17) % pcs;
        const uint64_t stride = pc % 7 + 1;
        stream.emplace_back(pc, pc * 1000 + occurrences[pc]++ * stride);
    }
    return stream;
}

template <typename MakePred>
void
runPredictorManyPc(benchmark::State &state, MakePred make)
{
    const auto stream = manyPcStream(1 << 16, 4096);
    auto pred = make();
    size_t i = 0;
    for (auto _ : state) {
        const auto &[pc, value] = stream[i];
        benchmark::DoNotOptimize(pred->predict(pc));
        pred->update(pc, value);
        i = (i + 1) % stream.size();
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["table_entries"] =
            static_cast<double>(pred->tableEntries());
}

/**
 * Bounded vs unbounded hot path, same stream: the per-event cost
 * comparison backing the "flat arrays beat node-based maps" claim in
 * the README's capacity-sweep section.
 */
void
BM_LastValueManyPc(benchmark::State &state)
{
    runPredictorManyPc(
            state, [] { return std::make_unique<LastValuePredictor>(); });
}

void
BM_BoundedLastValueManyPc(benchmark::State &state)
{
    runPredictorManyPc(state, [] {
        return vp::exp::makePredictor("l@8192x4");
    });
}

void
BM_StrideManyPc(benchmark::State &state)
{
    runPredictorManyPc(
            state, [] { return std::make_unique<StridePredictor>(); });
}

void
BM_BoundedStrideManyPc(benchmark::State &state)
{
    runPredictorManyPc(state, [] {
        return vp::exp::makePredictor("s2@8192x4");
    });
}

void
BM_FcmManyPc(benchmark::State &state)
{
    runPredictorManyPc(state, [] {
        FcmConfig config;
        config.order = 3;
        return std::make_unique<FcmPredictor>(config);
    });
}

void
BM_BoundedFcmManyPc(benchmark::State &state)
{
    runPredictorManyPc(state, [] {
        return vp::exp::makePredictor("fcm3@8192/65536x4");
    });
}

/** Table growth: unique-context footprint on a non-repeating stream. */
void
BM_FcmTableGrowth(benchmark::State &state)
{
    const auto values = nonStrideSeq(11, 4096);
    for (auto _ : state) {
        FcmConfig config;
        config.order = 3;
        FcmPredictor pred(config);
        for (auto v : values)
            pred.update(0, v);
        benchmark::DoNotOptimize(pred.tableEntries());
    }
}

BENCHMARK(BM_LastValue);
BENCHMARK(BM_StrideTwoDelta);
BENCHMARK(BM_Fcm)->Arg(1)->Arg(2)->Arg(3)->Arg(8);
BENCHMARK(BM_Hybrid);
BENCHMARK(BM_LastValueManyPc);
BENCHMARK(BM_BoundedLastValueManyPc);
BENCHMARK(BM_StrideManyPc);
BENCHMARK(BM_BoundedStrideManyPc);
BENCHMARK(BM_FcmManyPc);
BENCHMARK(BM_BoundedFcmManyPc);
BENCHMARK(BM_FcmTableGrowth)->Unit(benchmark::kMillisecond);

} // anonymous namespace

/**
 * BENCHMARK_MAIN plus a `--json` alias for
 * `--benchmark_format=json`, so the perf trajectory has a
 * machine-readable mode to match `vpexp --format json`:
 *   perf_predictors --json > perf.json
 */
int
main(int argc, char **argv)
{
    std::vector<char *> args;
    static char json_flag[] = "--benchmark_format=json";
    for (int i = 0; i < argc; ++i) {
        if (i > 0 && std::string_view(argv[i]) == "--json")
            args.push_back(json_flag);
        else
            args.push_back(argv[i]);
    }
    int count = static_cast<int>(args.size());
    benchmark::Initialize(&count, args.data());
    if (benchmark::ReportUnrecognizedArguments(count, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
