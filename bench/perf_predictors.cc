/**
 * @file
 * Microbenchmarks (google-benchmark): predictor lookup/update
 * throughput and table growth on representative value streams.
 *
 * The paper ignores predictor cost by design; these numbers put the
 * "context prediction is the more expensive approach" remark of
 * Section 4.2 on an engineering footing for this implementation.
 */

#include <benchmark/benchmark.h>

#include "core/fcm.hh"
#include "core/hybrid.hh"
#include "core/last_value.hh"
#include "core/stride.hh"
#include "synth/sequences.hh"

using namespace vp;
using namespace vp::core;
using namespace vp::synth;

namespace {

/** Mixed stream over many PCs: constants, strides, repeated RNS. */
std::vector<std::pair<uint64_t, uint64_t>>
mixedStream(size_t events)
{
    std::vector<std::pair<uint64_t, uint64_t>> stream;
    stream.reserve(events);
    const auto constants = constantSeq(42, events / 4 + 1);
    const auto strides = strideSeq(0, 8, events / 4 + 1);
    const auto rns = repeatedNonStrideSeq(3, 7, events / 4 + 1);
    const auto ns = nonStrideSeq(5, events / 4 + 1);
    for (size_t i = 0; stream.size() < events; ++i) {
        stream.emplace_back(0, constants[i]);
        stream.emplace_back(1, strides[i]);
        stream.emplace_back(2, rns[i]);
        stream.emplace_back(3, ns[i]);
    }
    stream.resize(events);
    return stream;
}

template <typename MakePred>
void
runPredictor(benchmark::State &state, MakePred make)
{
    const auto stream = mixedStream(4096);
    auto pred = make();
    size_t i = 0;
    for (auto _ : state) {
        const auto &[pc, value] = stream[i];
        benchmark::DoNotOptimize(pred->predict(pc));
        pred->update(pc, value);
        i = (i + 1) % stream.size();
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["table_entries"] =
            static_cast<double>(pred->tableEntries());
}

void
BM_LastValue(benchmark::State &state)
{
    runPredictor(state,
                 [] { return std::make_unique<LastValuePredictor>(); });
}

void
BM_StrideTwoDelta(benchmark::State &state)
{
    runPredictor(state,
                 [] { return std::make_unique<StridePredictor>(); });
}

void
BM_Fcm(benchmark::State &state)
{
    const int order = static_cast<int>(state.range(0));
    runPredictor(state, [order] {
        FcmConfig config;
        config.order = order;
        return std::make_unique<FcmPredictor>(config);
    });
    state.SetLabel("order " + std::to_string(order));
}

void
BM_Hybrid(benchmark::State &state)
{
    runPredictor(state,
                 [] { return std::make_unique<HybridPredictor>(); });
}

/** Table growth: unique-context footprint on a non-repeating stream. */
void
BM_FcmTableGrowth(benchmark::State &state)
{
    const auto values = nonStrideSeq(11, 4096);
    for (auto _ : state) {
        FcmConfig config;
        config.order = 3;
        FcmPredictor pred(config);
        for (auto v : values)
            pred.update(0, v);
        benchmark::DoNotOptimize(pred.tableEntries());
    }
}

BENCHMARK(BM_LastValue);
BENCHMARK(BM_StrideTwoDelta);
BENCHMARK(BM_Fcm)->Arg(1)->Arg(2)->Arg(3)->Arg(8);
BENCHMARK(BM_Hybrid);
BENCHMARK(BM_FcmTableGrowth)->Unit(benchmark::kMillisecond);

} // anonymous namespace

BENCHMARK_MAIN();
