/**
 * @file
 * Microbenchmarks (google-benchmark): predictor lookup/update
 * throughput and table growth on representative value streams.
 *
 * The paper ignores predictor cost by design; these numbers put the
 * "context prediction is the more expensive approach" remark of
 * Section 4.2 on an engineering footing for this implementation.
 */

#include <chrono>
#include <string_view>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/bounded.hh"
#include "core/fcm.hh"
#include "core/hybrid.hh"
#include "core/last_value.hh"
#include "core/stride.hh"
#include "exp/suite.hh"
#include "sim/driver.hh"
#include "synth/sequences.hh"
#include "vm/trace.hh"

using namespace vp;
using namespace vp::core;
using namespace vp::synth;

namespace {

/** Mixed stream over many PCs: constants, strides, repeated RNS. */
std::vector<std::pair<uint64_t, uint64_t>>
mixedStream(size_t events)
{
    std::vector<std::pair<uint64_t, uint64_t>> stream;
    stream.reserve(events);
    const auto constants = constantSeq(42, events / 4 + 1);
    const auto strides = strideSeq(0, 8, events / 4 + 1);
    const auto rns = repeatedNonStrideSeq(3, 7, events / 4 + 1);
    const auto ns = nonStrideSeq(5, events / 4 + 1);
    for (size_t i = 0; stream.size() < events; ++i) {
        stream.emplace_back(0, constants[i]);
        stream.emplace_back(1, strides[i]);
        stream.emplace_back(2, rns[i]);
        stream.emplace_back(3, ns[i]);
    }
    stream.resize(events);
    return stream;
}

template <typename MakePred>
void
runPredictor(benchmark::State &state, MakePred make)
{
    const auto stream = mixedStream(4096);
    auto pred = make();
    size_t i = 0;
    for (auto _ : state) {
        const auto &[pc, value] = stream[i];
        benchmark::DoNotOptimize(pred->predict(pc));
        pred->update(pc, value);
        i = (i + 1) % stream.size();
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["table_entries"] =
            static_cast<double>(pred->tableEntries());
}

void
BM_LastValue(benchmark::State &state)
{
    runPredictor(state,
                 [] { return std::make_unique<LastValuePredictor>(); });
}

void
BM_StrideTwoDelta(benchmark::State &state)
{
    runPredictor(state,
                 [] { return std::make_unique<StridePredictor>(); });
}

void
BM_Fcm(benchmark::State &state)
{
    const int order = static_cast<int>(state.range(0));
    runPredictor(state, [order] {
        FcmConfig config;
        config.order = order;
        return std::make_unique<FcmPredictor>(config);
    });
    state.SetLabel("order " + std::to_string(order));
}

void
BM_Hybrid(benchmark::State &state)
{
    runPredictor(state,
                 [] { return std::make_unique<HybridPredictor>(); });
}

/**
 * Stream spread over many static PCs (per-PC stride sequences), the
 * regime where table organisation dominates: the unbounded predictors
 * chase unordered_map nodes, the bounded ones probe a flat
 * set-associative array.
 */
std::vector<std::pair<uint64_t, uint64_t>>
manyPcStream(size_t events, size_t pcs)
{
    std::vector<std::pair<uint64_t, uint64_t>> stream;
    stream.reserve(events);
    std::vector<uint64_t> occurrences(pcs, 0);
    for (size_t i = 0; i < events; ++i) {
        const uint64_t pc = (i * 17) % pcs;
        const uint64_t stride = pc % 7 + 1;
        stream.emplace_back(pc, pc * 1000 + occurrences[pc]++ * stride);
    }
    return stream;
}

template <typename MakePred>
void
runPredictorManyPc(benchmark::State &state, MakePred make)
{
    const auto stream = manyPcStream(1 << 16, 4096);
    auto pred = make();
    size_t i = 0;
    for (auto _ : state) {
        const auto &[pc, value] = stream[i];
        benchmark::DoNotOptimize(pred->predict(pc));
        pred->update(pc, value);
        i = (i + 1) % stream.size();
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["table_entries"] =
            static_cast<double>(pred->tableEntries());
}

/**
 * Bounded vs unbounded hot path, same stream: the per-event cost
 * comparison backing the "flat arrays beat node-based maps" claim in
 * the README's capacity-sweep section.
 */
void
BM_LastValueManyPc(benchmark::State &state)
{
    runPredictorManyPc(
            state, [] { return std::make_unique<LastValuePredictor>(); });
}

void
BM_BoundedLastValueManyPc(benchmark::State &state)
{
    runPredictorManyPc(state, [] {
        return vp::exp::makePredictor("l@8192x4");
    });
}

void
BM_StrideManyPc(benchmark::State &state)
{
    runPredictorManyPc(
            state, [] { return std::make_unique<StridePredictor>(); });
}

void
BM_BoundedStrideManyPc(benchmark::State &state)
{
    runPredictorManyPc(state, [] {
        return vp::exp::makePredictor("s2@8192x4");
    });
}

void
BM_FcmManyPc(benchmark::State &state)
{
    runPredictorManyPc(state, [] {
        FcmConfig config;
        config.order = 3;
        return std::make_unique<FcmPredictor>(config);
    });
}

void
BM_BoundedFcmManyPc(benchmark::State &state)
{
    runPredictorManyPc(state, [] {
        return vp::exp::makePredictor("fcm3@8192/65536x4");
    });
}

/**
 * Batched vs scalar replay through the full PredictorBank, the path
 * every experiment cell takes. The stream mirrors the value locality
 * real traces have (the paper's premise): many static PCs, each
 * producing a constant, a short repeating stride phase, or a repeated
 * non-stride cycle, so the predictors *learn* and the per-event cost
 * is table probing rather than cold-miss allocation. Enough distinct
 * (PC, context) pairs that the 1M-entry budgets below spread their
 * probes past the cache hierarchy — the regime the batched hot path
 * (one virtual dispatch per block, one table probe per event, set
 * prefetching) is built for. The ratio of each pair is the
 * BENCH_hotpath.json headline.
 */
std::vector<vm::TraceEvent>
makeReplayStream(size_t events, uint64_t pcs)
{
    std::vector<vm::TraceEvent> out;
    out.reserve(events);
    std::vector<uint64_t> occurrences(pcs, 0);
    for (size_t i = 0; i < events; ++i) {
        // Scrambled visit order (pcs is a power of two, the multiplier
        // is odd, so this is a bijection): successive events touch
        // unrelated PCs, the way a large program's interleaved
        // control flow does, rather than marching an arithmetic stride
        // the hardware prefetcher could lock onto.
        const uint64_t pc = (((i * 17) % pcs) * 2654435761u) & (pcs - 1);
        const uint64_t n = occurrences[pc]++;
        uint64_t value = 0;
        switch (pc % 3) {
          case 0:       // constant
            value = pc * 1000;
            break;
          case 1:       // stride phase repeating every 8
            value = pc * 1000 + (n % 8) * (pc % 7 + 1);
            break;
          default:      // repeated non-stride cycle of 4
            value = pc * 1000 + ((n % 4) * 2654435761u) % 1000;
            break;
        }
        out.push_back(vm::TraceEvent{pc, isa::Opcode{},
                                     isa::Category::AddSub, value});
    }
    return out;
}

/** Stream for the unbounded pairs: modest PC count so the node-based
 *  tables stay within a sane memory footprint. */
const std::vector<vm::TraceEvent> &
replayStream()
{
    static const std::vector<vm::TraceEvent> cached =
            makeReplayStream(1 << 18, 1 << 13);
    return cached;
}

/**
 * Stream for the 1M-entry bounded pairs: the same PC mix but with an
 * instruction working set (64K static PCs, 64 occurrences each) that
 * genuinely exercises a 1M-entry budget — the live sets spread across
 * tens of MB of table, far past L2, while the distinct (PC, context)
 * population still fits the VPT geometries below, so the cost stays
 * probing rather than eviction churn. The scrambled visit order
 * defeats stride prediction, so the scalar protocol serialises a
 * chain of last-level cache accesses per event (VHT, then the
 * context's VPT set) while the batched path's set prefetching and
 * two-stage pipeline overlap them across events.
 */
const std::vector<vm::TraceEvent> &
replayStreamLarge()
{
    static const std::vector<vm::TraceEvent> cached =
            makeReplayStream(1 << 22, 1 << 16);
    return cached;
}

/**
 * Manual timing: the replay itself is the measured quantity;
 * constructing the bank (for the 1M-entry geometries that is tens of
 * MB of table allocation) and tearing it down are not.
 */
void
runReplay(benchmark::State &state, const char *spec, bool batched,
          bool large)
{
    using Clock = std::chrono::steady_clock;
    const auto &events = large ? replayStreamLarge() : replayStream();
    for (auto _ : state) {
        sim::PredictorBank bank;
        bank.add(vp::exp::makePredictor(spec));
        const auto start = Clock::now();
        if (batched) {
            // Same block granularity as the streaming replay path
            // (vm::ReaderBatchSource's default).
            sim::replayTraceBatched(events, bank, 4096);
        } else {
            sim::replayTrace(events, bank);
        }
        state.SetIterationTime(
                std::chrono::duration<double>(Clock::now() - start)
                        .count());
        benchmark::DoNotOptimize(bank.member(0).stats.correct());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(events.size()));
    state.SetLabel(spec);
}

void
BM_ReplayScalar(benchmark::State &state, const char *spec, bool large)
{
    runReplay(state, spec, false, large);
}

void
BM_ReplayBatched(benchmark::State &state, const char *spec, bool large)
{
    runReplay(state, spec, true, large);
}

/** The 1M-entry budgets of the acceptance bar: lv/stride spend the
 *  whole budget on one table, fcm splits 1:3 VHT:VPT, the hybrid
 *  splits across stride + fcm + chooser. */
constexpr const char *kBoundedLv = "l@1048576x4";
constexpr const char *kBoundedStride = "s2@1048576x4";
constexpr const char *kBoundedFcm = "fcm3@262144/786432x4";
constexpr const char *kBoundedHybrid =
        "hybrid(s2@131072x4,fcm3@131072/655360x4;ch@131072x4)";

/** Table growth: unique-context footprint on a non-repeating stream. */
void
BM_FcmTableGrowth(benchmark::State &state)
{
    const auto values = nonStrideSeq(11, 4096);
    for (auto _ : state) {
        FcmConfig config;
        config.order = 3;
        FcmPredictor pred(config);
        for (auto v : values)
            pred.update(0, v);
        benchmark::DoNotOptimize(pred.tableEntries());
    }
}

BENCHMARK(BM_LastValue);
BENCHMARK(BM_StrideTwoDelta);
BENCHMARK(BM_Fcm)->Arg(1)->Arg(2)->Arg(3)->Arg(8);
BENCHMARK(BM_Hybrid);
BENCHMARK(BM_LastValueManyPc);
BENCHMARK(BM_BoundedLastValueManyPc);
BENCHMARK(BM_StrideManyPc);
BENCHMARK(BM_BoundedStrideManyPc);
BENCHMARK(BM_FcmManyPc);
BENCHMARK(BM_BoundedFcmManyPc);
BENCHMARK(BM_FcmTableGrowth)->Unit(benchmark::kMillisecond);

#define VP_REPLAY_PAIR(name, spec, large)                              \
    BENCHMARK_CAPTURE(BM_ReplayScalar, name, spec, large)              \
            ->Unit(benchmark::kMillisecond)                            \
            ->UseManualTime();                                         \
    BENCHMARK_CAPTURE(BM_ReplayBatched, name, spec, large)             \
            ->Unit(benchmark::kMillisecond)                            \
            ->UseManualTime()

VP_REPLAY_PAIR(l, "l", false);
VP_REPLAY_PAIR(s2, "s2", false);
VP_REPLAY_PAIR(fcm3, "fcm3", false);
VP_REPLAY_PAIR(hybrid, "hybrid", false);
VP_REPLAY_PAIR(l_1M, kBoundedLv, true);
VP_REPLAY_PAIR(s2_1M, kBoundedStride, true);
VP_REPLAY_PAIR(fcm3_1M, kBoundedFcm, true);
VP_REPLAY_PAIR(hybrid_1M, kBoundedHybrid, true);

#undef VP_REPLAY_PAIR

} // anonymous namespace

/**
 * BENCHMARK_MAIN plus a `--json` alias for
 * `--benchmark_format=json`, so the perf trajectory has a
 * machine-readable mode to match `vpexp --format json`:
 *   perf_predictors --json > perf.json
 */
int
main(int argc, char **argv)
{
    std::vector<char *> args;
    static char json_flag[] = "--benchmark_format=json";
    for (int i = 0; i < argc; ++i) {
        if (i > 0 && std::string_view(argv[i]) == "--json")
            args.push_back(json_flag);
        else
            args.push_back(argv[i]);
    }
    int count = static_cast<int>(args.size());
    benchmark::Initialize(&count, args.data());
    if (benchmark::ReportUnrecognizedArguments(count, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
