/**
 * @file
 * Campaign-scale trace bench, machine-readable: (1) VPT1 vs VPT2
 * on-disk size for every workload trace — the compression claim of
 * the blocked deflate format — and (2) serial vs region-parallel
 * replay of the longest trace: wall clock, speedup, and the merged
 * accuracy drift per predictor at the default warm-up window.
 *
 * No google-benchmark dependency: plain timing loops writing one JSON
 * document, the same artifact shape CI uploads for the hot-path bench
 * (BENCH_hotpath.json). The committed repo-root BENCH_campaign.json
 * is a snapshot of this program's output.
 *
 * Usage: trace_campaign_bench [--scale N] [--out FILE]
 *   --scale N    workload scale percent (default 5, the smoke scale)
 *   --out FILE   write JSON there instead of BENCH_campaign.json
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/experiment.hh"
#include "exp/suite.hh"
#include "vm/machine.hh"
#include "vm/trace_file.hh"
#include "workloads/workload.hh"

using namespace vp;
using Clock = std::chrono::steady_clock;

namespace {

double
elapsedMs(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
            .count();
}

struct SizeRow
{
    std::string workload;
    uint64_t events = 0;
    size_t vpt1Bytes = 0;
    size_t vpt2Bytes = 0;
};

/** Record one workload's trace and serialize it in both formats. */
SizeRow
measureSizes(const workloads::WorkloadInfo &info,
             const workloads::WorkloadConfig &config)
{
    vm::RecordingSink recording;
    vm::Machine machine;
    machine.setSink(&recording);
    machine.run(info.build(config));

    SizeRow row;
    row.workload = info.name;
    row.events = recording.events.size();

    std::ostringstream v1(std::ios::binary);
    vm::TraceWriter w1(v1);
    for (const auto &event : recording.events)
        w1.onValue(event);
    w1.finish();
    row.vpt1Bytes = v1.str().size();

    std::ostringstream v2(std::ios::binary);
    vm::Vpt2Writer w2(v2);
    for (const auto &event : recording.events)
        w2.onValue(event);
    w2.finish();
    row.vpt2Bytes = v2.str().size();
    return row;
}

struct RegionRow
{
    unsigned regions = 1;
    unsigned jobs = 1;
    double wallMs = 0.0;
    double speedup = 1.0;
    double maxDriftPp = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    std::string out = "BENCH_campaign.json";
    workloads::WorkloadConfig config;
    config.scale = 5;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--scale") && i + 1 < argc) {
            config.scale = std::atoi(argv[++i]);
        } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: trace_campaign_bench [--scale N] "
                         "[--out FILE]\n");
            return 2;
        }
    }

    // ---- format sizes, all seven workloads -------------------------
    std::vector<SizeRow> sizes;
    std::string longest;
    uint64_t longest_events = 0;
    for (const auto &info : workloads::allWorkloads()) {
        sizes.push_back(measureSizes(info, config));
        std::fprintf(stderr, "%-9s %8llu events  vpt1 %8zu  vpt2 %8zu "
                             "(%.2fx)\n",
                     sizes.back().workload.c_str(),
                     static_cast<unsigned long long>(sizes.back().events),
                     sizes.back().vpt1Bytes, sizes.back().vpt2Bytes,
                     static_cast<double>(sizes.back().vpt1Bytes) /
                             sizes.back().vpt2Bytes);
        if (sizes.back().events > longest_events) {
            longest_events = sizes.back().events;
            longest = sizes.back().workload;
        }
    }

    // ---- serial vs region-parallel replay of the longest trace -----
    const std::string cache_dir =
            (std::filesystem::temp_directory_path() /
             "vp-campaign-bench")
                    .string();
    std::filesystem::remove_all(cache_dir);

    exp::SuiteOptions options;
    options.predictors = {"l", "s2", "fcm3"};
    options.config = config;
    options.traceReplay = true;
    options.traceCacheDir = cache_dir;

    // Warm the trace cache so every timed run below replays only.
    const auto serial_reference = exp::runBenchmark(longest, options);

    const auto serial_start = Clock::now();
    const auto serial_run = exp::runBenchmark(longest, options);
    const double serial_ms = elapsedMs(serial_start);

    std::vector<RegionRow> region_rows;
    for (const unsigned regions : {2u, 4u, 8u}) {
        exp::ExperimentConfig cell_config;
        cell_config.traceCacheDir = cache_dir;
        cell_config.regions = regions;

        exp::SuiteOptions cell = options;
        cell.benchmarks = {longest};

        exp::CellScheduler scheduler(cell_config, regions);
        const auto start = Clock::now();
        const auto runs = scheduler.suite(cell);
        RegionRow row;
        row.regions = regions;
        row.jobs = regions;
        row.wallMs = elapsedMs(start);
        row.speedup = serial_ms / row.wallMs;
        for (size_t p = 0; p < serial_run.predictors.size(); ++p) {
            const double drift =
                    std::fabs(serial_run.accuracyPct(p) -
                              runs.front().accuracyPct(p));
            row.maxDriftPp = std::max(row.maxDriftPp, drift);
        }
        region_rows.push_back(row);
        std::fprintf(stderr,
                     "regions %u: %.1f ms (serial %.1f ms, %.2fx), "
                     "max drift %.4fpp\n",
                     regions, row.wallMs, serial_ms, row.speedup,
                     row.maxDriftPp);
    }
    std::filesystem::remove_all(cache_dir);

    // ---- JSON artifact ---------------------------------------------
    std::ofstream json(out);
    if (!json) {
        std::fprintf(stderr, "cannot open %s\n", out.c_str());
        return 1;
    }
    char date[64] = "";
    const std::time_t now = std::time(nullptr);
    std::strftime(date, sizeof(date), "%FT%T%z", std::localtime(&now));

    json << "{\n  \"context\": {\n"
         << "    \"date\": \"" << date << "\",\n"
         << "    \"scale\": " << config.scale << ",\n"
         << "    \"hardware_concurrency\": "
         << std::thread::hardware_concurrency() << ",\n"
         << "    \"zlib\": " << (vm::traceFileZlibAvailable() ? "true"
                                                              : "false")
         << "\n  },\n  \"traces\": [\n";
    for (size_t i = 0; i < sizes.size(); ++i) {
        const auto &row = sizes[i];
        json << "    {\"workload\": \"" << row.workload
             << "\", \"events\": " << row.events
             << ", \"vpt1_bytes\": " << row.vpt1Bytes
             << ", \"vpt2_bytes\": " << row.vpt2Bytes
             << ", \"vpt1_over_vpt2\": "
             << static_cast<double>(row.vpt1Bytes) / row.vpt2Bytes
             << "}" << (i + 1 < sizes.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"region_replay\": {\n"
         << "    \"workload\": \"" << longest << "\",\n"
         << "    \"events\": " << longest_events << ",\n"
         << "    \"predictors\": [\"l\", \"s2\", \"fcm3\"],\n"
         << "    \"warmup_events\": " << exp::defaultWarmupEvents
         << ",\n"
         << "    \"serial_wall_ms\": " << serial_ms << ",\n"
         << "    \"note\": \"wall clock on hardware_concurrency "
            "cores; each region also replays its warm-up window, so "
            "speedup needs cores and traces much longer than "
            "warmup_events\",\n"
         << "    \"cells\": [\n";
    for (size_t i = 0; i < region_rows.size(); ++i) {
        const auto &row = region_rows[i];
        json << "      {\"regions\": " << row.regions
             << ", \"jobs\": " << row.jobs
             << ", \"wall_ms\": " << row.wallMs
             << ", \"speedup_vs_serial\": " << row.speedup
             << ", \"max_drift_pp\": " << row.maxDriftPp << "}"
             << (i + 1 < region_rows.size() ? "," : "") << "\n";
    }
    json << "    ]\n  }\n}\n";
    std::fprintf(stderr, "wrote %s\n", out.c_str());
    return 0;
}
