/**
 * @file
 * Figure 11 of the paper: sensitivity of gcc's fcm accuracy to the
 * predictor order, orders 1 through 8.
 *
 * Paper result: accuracy rises from ~71.5% (order 1) to ~83% (order
 * 8) with clearly diminishing returns — roughly, each additional
 * context value halves the gain.
 */

#include <cstdio>

#include "exp/paper_data.hh"
#include "exp/suite.hh"
#include "sim/table.hh"

using namespace vp;

int
main(int argc, char **argv)
{
    const auto args = exp::BenchArgs::parse(argc, argv);
    if (!args.ok)
        return 2;
    std::printf("Figure 11: Sensitivity of 126.gcc to the FCM Order "
                "(input gcc.i)\n\n");

    sim::TextTable table;
    table.row().cell("order").cell("accuracy %").cell("gain")
         .cell("| paper %").rule();

    // One suite run per order; a slightly reduced scale keeps the
    // order-8 exact tables affordable while using the same input.
    double previous = 0.0;
    std::vector<double> gains;
    for (int order = 1; order <= 8; ++order) {
        exp::SuiteOptions options;
        options.predictors = {"fcm" + std::to_string(order)};
        options.benchmarks = {"gcc"};
        options.config.scale = 60;
        args.apply(options);
        const auto runs = exp::runSuite(options);
        const double acc = runs.front().accuracyPct(0);

        table.row().cell(order);
        table.cell(acc, 1);
        if (order == 1)
            table.cell("");
        else {
            table.cell(acc - previous, 2);
            gains.push_back(acc - previous);
        }
        table.cell(exp::paper::figure11Accuracy(order), 1);
        previous = acc;
    }
    std::printf("%s\n", table.render().c_str());

    // Diminishing-returns check: later gains smaller than early ones.
    const double early = gains.front();
    const double late = gains.back();
    std::printf("gain order1->2: %.2f, order7->8: %.2f — %s\n", early,
                late,
                late < early
                        ? "diminishing returns, as in the paper"
                        : "CHECK: no diminishing returns");
    return 0;
}
