/**
 * @file
 * Figure 5 of the paper: prediction success for load instructions.
 */

#include "category_figure.hh"

int
main(int argc, char **argv)
{
    return vp::bench::runCategoryFigure(
            5, vp::isa::Category::Loads,
            "loads are harder than add/subtract for every predictor; "
            "stride gains over\nlast value are small because loaded "
            "values rarely stride.", argc, argv);
}
