/**
 * @file
 * Table 1 of the paper: learning time (LT) and learning degree (LD)
 * of the last value / stride / fcm models on the Section 1.1
 * sequence classes (C, S, NS, RS, RNS).
 *
 * Paper values: last value works only for C (LT 1, LD 100); stride
 * learns C and S in <=2 values and gets (p-1)/p on RS; a pure
 * order-o fcm learns any repeating sequence after one period plus
 * its order, at LD 100. LT conventions are measured as "values
 * observed before the first correct prediction".
 */

#include <cstdio>

#include "core/fcm.hh"
#include "core/last_value.hh"
#include "core/learning.hh"
#include "core/stride.hh"
#include "exp/suite.hh"
#include "sim/table.hh"
#include "synth/sequences.hh"

using namespace vp;
using namespace vp::core;
using namespace vp::synth;

namespace {

constexpr int fcmOrder = 2;
constexpr size_t period = 6;

struct SequenceCase
{
    const char *name;
    std::vector<uint64_t> values;
};

std::vector<SequenceCase>
sequenceCases()
{
    return {
        {"C", constantSeq(5, 600)},
        {"S", strideSeq(1, 1, 600)},
        {"NS", nonStrideSeq(42, 600)},
        {"RS", repeatedStrideSeq(1, 1, period, 600)},
        {"RNS", repeatedNonStrideSeq(7, period, 600)},
    };
}

std::string
fmtLt(int64_t lt)
{
    return lt < 0 ? "-" : std::to_string(lt);
}

std::string
fmtLd(int64_t lt, double ld)
{
    if (lt < 0)
        return "-";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", 100.0 * ld);
    return buf;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    // Synthetic sequences are already instant; --dry-run is accepted
    // for uniformity with the other bench smoke targets.
    if (!exp::BenchArgs::parse(argc, argv).ok)
        return 2;
    std::printf("Table 1: Behavior of Prediction Models for Different "
                "Value Sequences\n");
    std::printf("(last value; two-delta stride; pure order-%d fcm; "
                "repeating period p = %zu)\n\n", fcmOrder, period);

    sim::TextTable table;
    table.row().cell("sequence")
         .cell("LV LT").cell("LV LD%")
         .cell("S2 LT").cell("S2 LD%")
         .cell("FCM LT").cell("FCM LD%")
         .cell("| paper (LV/S2/FCM)")
         .rule();

    const char *paper_rows[] = {
        "1,100 / 1,100 / o,100",
        "- / 2,100 / -",
        "- / - / -",
        "- / 2,(p-1)/p / p+o,100",
        "- / - / p+o,100",
    };

    int row_index = 0;
    for (const auto &seq_case : sequenceCases()) {
        LastValuePredictor lv;
        StridePredictor s2;
        FcmConfig fc;
        fc.order = fcmOrder;
        fc.blending = core::FcmBlending::None;
        FcmPredictor fcm(fc);

        const auto r_lv = analyzeLearning(lv, seq_case.values);
        const auto r_s2 = analyzeLearning(s2, seq_case.values);
        const auto r_fcm = analyzeLearning(fcm, seq_case.values);

        table.row().cell(seq_case.name);
        table.cell(fmtLt(r_lv.learningTime));
        table.cell(fmtLd(r_lv.learningTime, r_lv.learningDegree));
        table.cell(fmtLt(r_s2.learningTime));
        table.cell(fmtLd(r_s2.learningTime, r_s2.learningDegree));
        table.cell(fmtLt(r_fcm.learningTime));
        table.cell(fmtLd(r_fcm.learningTime, r_fcm.learningDegree));
        table.cell(paper_rows[row_index++]);
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("notes: LT counts values observed before the first "
                "correct prediction;\n"
                "LD is %% correct after it. Low-LD rows correspond to "
                "the paper's '-' cells\n"
                "(predictor unsuited to the sequence). Expected here: "
                "RS stride LD = %.0f%%,\n"
                "fcm LT on RS/RNS = p+o = %zu.\n",
                100.0 * (period - 1) / period, period + fcmOrder);
    return 0;
}
