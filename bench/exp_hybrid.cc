/**
 * @file
 * Extension study: the hybrid stride+fcm predictor Section 4.2 of
 * the paper argues for ("use a stride predictor for most predictions,
 * and use fcm prediction to get the remaining 20%").
 *
 * Compares the chooser hybrid against its components and against the
 * oracle (union of correct sets, from the overlap tracker) that
 * upper-bounds any chooser.
 */

#include <cstdio>

#include "exp/suite.hh"
#include "sim/table.hh"

using namespace vp;

int
main(int argc, char **argv)
{
    const auto args = exp::BenchArgs::parse(argc, argv);
    if (!args.ok)
        return 2;
    exp::SuiteOptions options;
    options.predictors = {"s2", "fcm3", "hybrid"};
    options.overlap = 2;            // s2 | fcm3 union = oracle

    args.apply(options);
    const auto runs = exp::runSuite(options);

    std::printf("Extension (Section 4.2): hybrid stride+fcm with a "
                "PC-indexed chooser\n\n");

    sim::TextTable table;
    table.row().cell("benchmark").cell("s2").cell("fcm3")
         .cell("hybrid").cell("oracle").cell("hybrid-fcm3").rule();

    double mean_h = 0, mean_f = 0, mean_o = 0;
    for (const auto &run : runs) {
        const double s2 = run.accuracyPct(0);
        const double fcm3 = run.accuracyPct(1);
        const double hybrid = run.accuracyPct(2);
        const double oracle = 100.0 * run.overlap->unionFraction(0b11);
        mean_h += hybrid / runs.size();
        mean_f += fcm3 / runs.size();
        mean_o += oracle / runs.size();
        table.row().cell(run.name);
        table.cell(s2, 1);
        table.cell(fcm3, 1);
        table.cell(hybrid, 1);
        table.cell(oracle, 1);
        table.cell(hybrid - fcm3, 1);
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("mean: hybrid %.1f%% vs fcm3 %.1f%% vs oracle %.1f%%\n",
                mean_h, mean_f, mean_o);
    std::printf("shape: the chooser hybrid should recover most of "
                "the oracle gap over fcm3\nby delegating "
                "stride-friendly statics (fresh strides) to s2.\n");
    return 0;
}
