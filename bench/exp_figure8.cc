/**
 * @file
 * Figure 8 of the paper: contribution of the different predictors —
 * which subsets of {last value, stride, fcm3} predict each dynamic
 * instruction correctly, overall and per category.
 *
 * Paper result: ~18% predicted by none (np), ~40% by all three
 * (lsf), >20% only by fcm (f), and stride/last-value capture <5%
 * that fcm misses — the case for a hybrid with fcm in it.
 */

#include <cstdio>

#include "exp/paper_data.hh"
#include "exp/suite.hh"
#include "sim/table.hh"

using namespace vp;

namespace {

const char *bucketNames[8] = {"np", "l", "s", "ls", "f", "lf", "sf",
                              "lsf"};

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto args = exp::BenchArgs::parse(argc, argv);
    if (!args.ok)
        return 2;
    exp::SuiteOptions options;
    options.predictors = {"l", "s2", "fcm3"};
    options.overlap = 3;

    args.apply(options);
    const auto runs = exp::runSuite(options);

    core::OverlapTracker all(3);
    for (const auto &run : runs)
        all.merge(*run.overlap);

    std::printf("Figure 8: Contribution of different Predictors "
                "(%% of predictions)\n"
                "subset letters: l = last value, s = stride s2, "
                "f = fcm3; np = none correct\n\n");

    sim::TextTable table;
    table.row().cell("subset").cell("All");
    for (const auto cat : exp::reportedCategories())
        table.cell(std::string(isa::categoryName(cat)));
    table.rule();
    for (int mask = 0; mask < 8; ++mask) {
        table.row().cell(bucketNames[mask]);
        const double overall =
                100.0 * all.fraction(static_cast<uint32_t>(mask));
        table.cell(overall, 1);
        for (const auto cat : exp::reportedCategories()) {
            table.cell(100.0 * all.fraction(
                               cat, static_cast<uint32_t>(mask)),
                       1);
        }
    }
    std::printf("%s\n", table.render().c_str());

    const double np = 100.0 * all.fraction(0b000);
    const double lsf = 100.0 * all.fraction(0b111);
    const double f_only = 100.0 * all.fraction(0b100);
    const double not_f_comp = 100.0 * (all.fraction(0b001) +
                                       all.fraction(0b010) +
                                       all.fraction(0b011));
    const double l_only = 100.0 * all.fraction(0b001);

    std::printf("summary vs paper:\n");
    std::printf("  np     = %5.1f%%  (paper ~%.0f%%)\n", np,
                exp::paper::Figure8::np);
    std::printf("  lsf    = %5.1f%%  (paper ~%.0f%%)\n", lsf,
                exp::paper::Figure8::lsf);
    std::printf("  f only = %5.1f%%  (paper >%.0f%%)\n", f_only,
                exp::paper::Figure8::fOnly);
    std::printf("  l/s/ls = %5.1f%%  (paper <5%%: computational "
                "predictors add little beyond fcm)\n", not_f_comp);
    std::printf("  l only = %5.1f%%  (paper: last value adds "
                "almost nothing)\n", l_only);
    std::printf("  oracle union(l,s,f) accuracy = %.1f%%\n",
                100.0 * all.unionFraction(0b111));
    return 0;
}
