/**
 * @file
 * Figure 9 of the paper: cumulative improvement of fcm over stride
 * versus the percentage of static instructions, overall and per
 * category.
 *
 * Paper result: about 20% of static instructions account for about
 * 97% of fcm's total improvement over stride — the basis for the
 * hybrid-with-chooser proposal.
 */

#include <cstdio>

#include "exp/suite.hh"
#include "sim/table.hh"

using namespace vp;

namespace {

double
curveValueAt(const std::vector<core::ImprovementTracker::CurvePoint>
                     &curve,
             double static_pct)
{
    double best = 0.0;
    for (const auto &point : curve) {
        if (point.staticPct <= static_pct)
            best = point.improvementPct;
        else
            break;
    }
    return best;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto args = exp::BenchArgs::parse(argc, argv);
    if (!args.ok)
        return 2;
    exp::SuiteOptions options;
    options.predictors = {"s2", "fcm3"};
    options.improvementA = 1;       // fcm3 ...
    options.improvementB = 0;       // ... over s2

    args.apply(options);
    const auto runs = exp::runSuite(options);

    // Merge the per-benchmark improvement profiles by sampling each
    // benchmark's curve (the paper plots per-benchmark-average lines
    // per category; we show the suite-wide view plus per benchmark).
    std::printf("Figure 9: Cumulative Improvement of FCM over Stride\n"
                "rows: %% of static instructions (sorted by "
                "improvement); cells: %% of total improvement\n\n");

    sim::TextTable table;
    table.row().cell("% statics");
    for (const auto &run : runs)
        table.cell(run.name);
    table.rule();

    for (double x : {5.0, 10.0, 15.0, 20.0, 30.0, 40.0, 60.0, 100.0}) {
        char label[16];
        std::snprintf(label, sizeof(label), "%.0f", x);
        table.row().cell(label);
        for (const auto &run : runs) {
            const auto curve = run.improvement->curve();
            table.cell(curveValueAt(curve, x), 1);
        }
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("statics needed for 90%% / 97%% of the improvement "
                "(paper: ~20%% of statics -> ~97%%):\n");
    for (const auto &run : runs) {
        std::printf("  %-9s %5.1f%% / %5.1f%%\n", run.name.c_str(),
                    run.improvement->staticPctForImprovement(0.90),
                    run.improvement->staticPctForImprovement(0.97));
    }
    return 0;
}
