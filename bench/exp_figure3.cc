/**
 * @file
 * Figure 3 of the paper: overall prediction success of last value (l),
 * two-delta stride (s2) and fcm orders 1-3, per benchmark.
 *
 * Paper result (MICRO-30, 1997, Figure 3): l averages ~40%
 * (23%-61%), s2 ~56% (38%-80%), fcm3 ~78% (56%->90%), with
 * l < s2 < fcm1 < fcm2 < fcm3 throughout and diminishing gains per
 * added order.
 */

#include <cstdio>

#include "exp/paper_data.hh"
#include "exp/suite.hh"
#include "sim/table.hh"

using namespace vp;

int
main(int argc, char **argv)
{
    const auto args = exp::BenchArgs::parse(argc, argv);
    if (!args.ok)
        return 2;
    exp::SuiteOptions options;
    options.predictors = {"l", "s2", "fcm1", "fcm2", "fcm3"};

    args.apply(options);
    const auto runs = exp::runSuite(options);

    std::printf("Figure 3: Prediction Success for All Instructions "
                "(%% of predictions)\n\n");

    sim::TextTable table;
    table.row().cell("benchmark");
    for (const auto &spec : options.predictors)
        table.cell(spec);
    table.cell("| paper fcm3");
    table.rule();

    for (const auto &run : runs) {
        table.row().cell(run.name);
        for (size_t i = 0; i < options.predictors.size(); ++i)
            table.cell(run.accuracyPct(i), 1);
        table.cell(exp::paper::figure3Fcm3(run.name), 0);
    }
    table.rule();
    table.row().cell("mean");
    for (size_t i = 0; i < options.predictors.size(); ++i)
        table.cell(exp::meanAccuracyPct(runs, i), 1);
    table.cell(exp::paper::figure3Fcm3("mean"), 0);

    std::printf("%s\n", table.render().c_str());

    std::printf("shape checks (paper: l < s2 < fcm1 < fcm2 < fcm3):\n");
    bool ordered = true;
    for (const auto &run : runs) {
        for (size_t i = 1; i < options.predictors.size(); ++i) {
            if (run.accuracyPct(i) + 1e-9 < run.accuracyPct(i - 1)) {
                std::printf("  ORDER VIOLATION in %s: %s (%.1f) < %s "
                            "(%.1f)\n",
                            run.name.c_str(),
                            options.predictors[i].c_str(),
                            run.accuracyPct(i),
                            options.predictors[i - 1].c_str(),
                            run.accuracyPct(i - 1));
                ordered = false;
            }
        }
    }
    if (ordered)
        std::printf("  predictor ordering holds for every benchmark\n");
    std::printf("  fcm3 - s2 mean gap: %.1f points (paper: ~22)\n",
                exp::meanAccuracyPct(runs, 4) -
                        exp::meanAccuracyPct(runs, 1));
    return 0;
}
