/**
 * @file
 * Figure 6 of the paper: prediction success for logic instructions.
 */

#include "category_figure.hh"

int
main(int argc, char **argv)
{
    return vp::bench::runCategoryFigure(
            6, vp::isa::Category::Logic,
            "logical instructions are very predictable, especially "
            "by fcm (flag-like\nvalues recur in patterns); stride "
            "adds little over last value.", argc, argv);
}
