/**
 * @file
 * Table 6 of the paper: sensitivity of gcc's order-2 fcm accuracy to
 * different input files.
 *
 * Paper result: correct predictions vary only a little (76.0%-78.6%)
 * across five .i files whose sizes differ by 3.5x.
 */

#include <algorithm>
#include <cstdio>

#include "exp/paper_data.hh"
#include "exp/suite.hh"
#include "sim/table.hh"

using namespace vp;

int
main(int argc, char **argv)
{
    const auto args = exp::BenchArgs::parse(argc, argv);
    if (!args.ok)
        return 2;
    const char *inputs[] = {"jump.i", "emit-rtl.i", "gcc.i", "recog.i",
                            "stmt.i"};

    std::printf("Table 6: Sensitivity of 126.gcc to Different Input "
                "Files (order-2 fcm)\n\n");

    sim::TextTable table;
    table.row().cell("file").cell("predictions (k)")
         .cell("correct %").cell("| paper %").rule();

    std::vector<double> accuracies;
    for (const char *input : inputs) {
        exp::SuiteOptions options;
        options.predictors = {"fcm2"};
        options.benchmarks = {"gcc"};
        options.config.input = input;
        args.apply(options);
        const auto runs = exp::runSuite(options);
        const auto &run = runs.front();
        accuracies.push_back(run.accuracyPct(0));
        table.row().cell(input);
        table.cell(static_cast<uint64_t>(run.exec.predicted / 1000));
        table.cell(run.accuracyPct(0), 1);
        table.cell(exp::paper::table6Accuracy(input), 1);
    }
    std::printf("%s\n", table.render().c_str());

    const auto [lo, hi] =
            std::minmax_element(accuracies.begin(), accuracies.end());
    std::printf("spread: %.1f points (paper: 2.6 points) — %s\n",
                *hi - *lo,
                *hi - *lo < 8.0 ? "small variation, as in the paper"
                                : "CHECK: larger than expected");
    return 0;
}
