/**
 * @file
 * Tests for the seven mini-benchmarks: clean termination, semantic
 * results (e.g. N-queens solution counts), determinism, category
 * mixes, and input/flag sensitivity plumbing.
 */

#include <gtest/gtest.h>

#include "sim/driver.hh"
#include "vm/machine.hh"
#include "workloads/inputs.hh"
#include "workloads/layout.hh"
#include "workloads/workload.hh"

namespace {

using namespace vp;
using workloads::WorkloadConfig;

WorkloadConfig
tiny()
{
    WorkloadConfig config;
    config.scale = 10;
    return config;
}

/** Run and return (machine for memory inspection, result). */
struct Ran
{
    vm::Machine machine;
    vm::RunResult result;
    isa::Program prog;

    Ran(const std::string &name, const WorkloadConfig &config)
        : prog(workloads::findWorkload(name).build(config))
    {
        result = machine.run(prog);
    }

    int64_t
    resultWord(int index) const
    {
        const auto addr = prog.dataSymbols.at("result");
        return static_cast<int64_t>(
                machine.memory().read(addr + 8 * index, 8));
    }
};

TEST(WorkloadRegistry, HasTheSevenSpec95IntBenchmarks)
{
    const auto &all = workloads::allWorkloads();
    ASSERT_EQ(all.size(), 7u);
    EXPECT_EQ(all[0].name, "compress");
    EXPECT_EQ(all[1].name, "gcc");
    EXPECT_EQ(all[2].name, "go");
    EXPECT_EQ(all[3].name, "ijpeg");
    EXPECT_EQ(all[4].name, "m88ksim");
    EXPECT_EQ(all[5].name, "perl");
    EXPECT_EQ(all[6].name, "xlisp");
    EXPECT_THROW(workloads::findWorkload("nope"), std::out_of_range);
}

class EveryWorkload : public ::testing::TestWithParam<const char *>
{
};

TEST_P(EveryWorkload, HaltsCleanlyAtTinyScale)
{
    Ran run(GetParam(), tiny());
    EXPECT_TRUE(run.result.ok()) << run.result.diagnostic;
    EXPECT_GT(run.result.stats.predicted, 100u);
}

TEST_P(EveryWorkload, IsDeterministic)
{
    Ran a(GetParam(), tiny());
    Ran b(GetParam(), tiny());
    EXPECT_EQ(a.result.stats.retired, b.result.stats.retired);
    EXPECT_EQ(a.resultWord(0), b.resultWord(0));
}

TEST_P(EveryWorkload, PredictedFractionIsInThePaperBand)
{
    // Table 2 reports 62%-84%; allow slack at tiny scale.
    Ran run(GetParam(), tiny());
    const double f = run.result.stats.predictedFraction();
    EXPECT_GT(f, 0.5) << GetParam();
    EXPECT_LT(f, 0.92) << GetParam();
}

TEST_P(EveryWorkload, ProgramValidates)
{
    const auto prog =
            workloads::findWorkload(GetParam()).build(tiny());
    EXPECT_EQ(prog.validate(), "");
    EXPECT_GT(prog.countPredictedStatic(), 10u);
    EXPECT_TRUE(prog.dataSymbols.count("result"));
}

INSTANTIATE_TEST_SUITE_P(
        Suite, EveryWorkload,
        ::testing::Values("compress", "gcc", "go", "ijpeg", "m88ksim",
                          "perl", "xlisp"));

// ------------------------------------------------- semantic checks

TEST(Xlisp, CountsQueensSolutionsCorrectly)
{
    // Boards 5/6/7 have 10/4/40 solutions; 3 repetitions at default
    // scale => 3 * 54 = 162.
    WorkloadConfig config;        // default scale
    Ran run("xlisp", config);
    ASSERT_TRUE(run.result.ok());
    EXPECT_EQ(run.resultWord(0), 3 * (10 + 4 + 40));
    EXPECT_GT(run.resultWord(1), 0);    // nodes visited
}

TEST(Compress, ProducesCompressedOutput)
{
    Ran run("compress", tiny());
    ASSERT_TRUE(run.result.ok());
    const int64_t codes = run.resultWord(0);
    EXPECT_GT(codes, 0);
    // LZW on skewed text must compress: fewer codes than bytes.
    EXPECT_LT(codes, 3 * 1100 + 10);    // 3 passes over 1.1k @ 10%
    EXPECT_EQ(run.resultWord(1), 3);    // passes completed
}

TEST(M88ksim, RetiresGuestInstructions)
{
    Ran run("m88ksim", tiny());
    ASSERT_TRUE(run.result.ok());
    EXPECT_GT(run.resultWord(0), 500);  // guest instructions retired
}

TEST(Perl, ScoresWordsAndCountsHits)
{
    Ran run("perl", tiny());
    ASSERT_TRUE(run.result.ok());
    EXPECT_GT(run.resultWord(1), 0);    // hit count
    EXPECT_NE(run.resultWord(0), 0);    // total score moved
}

TEST(Gcc, FoldsStatements)
{
    Ran run("gcc", tiny());
    ASSERT_TRUE(run.result.ok());
    EXPECT_EQ(run.resultWord(1), 90);   // statements at scale 10
}

TEST(Ijpeg, EmitsRleSymbols)
{
    Ran run("ijpeg", tiny());
    ASSERT_TRUE(run.result.ok());
    EXPECT_GT(run.resultWord(0), 50);   // (run,value) pairs
}

TEST(Go, ComputesABoardScore)
{
    Ran run("go", tiny());
    ASSERT_TRUE(run.result.ok());
    EXPECT_NE(run.resultWord(0), 0);
}

// ------------------------------------------------- sensitivity

TEST(Gcc, DifferentInputsChangeWorkAmount)
{
    WorkloadConfig small = tiny();
    small.input = "jump.i";
    WorkloadConfig big = tiny();
    big.input = "stmt.i";
    Ran a("gcc", small);
    Ran c("gcc", big);
    ASSERT_TRUE(a.result.ok());
    ASSERT_TRUE(c.result.ok());
    // stmt.i is the largest input file, as in Table 6.
    EXPECT_GT(c.result.stats.predicted,
              2 * a.result.stats.predicted);
}

TEST(Gcc, FlagsChangeCodeGeneration)
{
    WorkloadConfig none = tiny();
    none.flags = "none";
    WorkloadConfig ref = tiny();
    const auto prog_none =
            workloads::findWorkload("gcc").build(none);
    const auto prog_ref = workloads::findWorkload("gcc").build(ref);
    // -O0-style spills make the unoptimized build bigger and slower.
    EXPECT_GT(prog_none.size(), prog_ref.size());
    Ran a("gcc", none);
    Ran b("gcc", ref);
    EXPECT_GT(a.result.stats.retired, b.result.stats.retired);
}

TEST(Workloads, InputNameChangesSeedDeterministically)
{
    EXPECT_EQ(workloads::inputSeed("gcc", "a"),
              workloads::inputSeed("gcc", "a"));
    EXPECT_NE(workloads::inputSeed("gcc", "a"),
              workloads::inputSeed("gcc", "b"));
    EXPECT_NE(workloads::inputSeed("gcc", "a"),
              workloads::inputSeed("perl", "a"));
}

TEST(CodegenOptions, FlagLaddersMatchDocumentation)
{
    const auto none = workloads::CodegenOptions::fromFlags("none");
    EXPECT_FALSE(none.registerCache);
    EXPECT_FALSE(none.tableDispatch);
    EXPECT_FALSE(none.strengthReduce);
    const auto o1 = workloads::CodegenOptions::fromFlags("O1");
    EXPECT_TRUE(o1.registerCache);
    EXPECT_FALSE(o1.tableDispatch);
    const auto o2 = workloads::CodegenOptions::fromFlags("O2");
    EXPECT_TRUE(o2.tableDispatch);
    EXPECT_FALSE(o2.unroll);
    const auto ref = workloads::CodegenOptions::fromFlags("ref");
    EXPECT_TRUE(ref.unroll);
    EXPECT_TRUE(ref.strengthReduce);
}

// ------------------------------------------------- input makers

TEST(Inputs, TextIsPrintableAndSkewed)
{
    const auto text = workloads::makeText(1, 5000);
    ASSERT_EQ(text.size(), 5000u);
    for (uint8_t c : text) {
        EXPECT_TRUE((c >= 'a' && c <= 'z') || c == ' ' || c == '\n')
                << int(c);
    }
}

TEST(Inputs, ExpressionsAreNulTerminatedStatements)
{
    const auto src = workloads::makeExpressions(2, 50);
    EXPECT_EQ(src.back(), '\0');
    size_t semis = 0;
    for (uint8_t c : src)
        semis += c == ';';
    EXPECT_EQ(semis, 50u);
}

TEST(Inputs, BoardHasOnlyValidCells)
{
    const auto board = workloads::makeBoard(3, 19, 120);
    ASSERT_EQ(board.size(), 19u * 19u);
    int stones = 0;
    for (uint8_t c : board) {
        EXPECT_LE(c, 2);
        stones += c != 0;
    }
    EXPECT_GT(stones, 60);
}

TEST(Inputs, WordsAreUniqueLowercase)
{
    const auto words = workloads::makeWords(4, 200);
    ASSERT_EQ(words.size(), 200u);
    std::set<std::string> set(words.begin(), words.end());
    EXPECT_EQ(set.size(), 200u);
    for (const auto &w : words) {
        EXPECT_GE(w.size(), 2u);
        EXPECT_LE(w.size(), 9u);
        for (char c : w)
            EXPECT_TRUE(c >= 'a' && c <= 'z');
    }
}

TEST(Inputs, ImageHasFullSizeAndVariation)
{
    const auto img = workloads::makeImage(5, 64, 48);
    ASSERT_EQ(img.size(), 64u * 48u);
    std::set<uint8_t> distinct(img.begin(), img.end());
    EXPECT_GT(distinct.size(), 16u);
}

TEST(Inputs, GuestProgramVariantsDiffer)
{
    const auto ref = workloads::makeGuestProgram("ref");
    const auto small = workloads::makeGuestProgram("small");
    const auto xl = workloads::makeGuestProgram("xl");
    EXPECT_FALSE(ref.empty());
    EXPECT_NE(ref, small);
    EXPECT_NE(ref, xl);
}

} // anonymous namespace
