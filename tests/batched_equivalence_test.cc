/**
 * @file
 * Batched-vs-scalar replay equivalence over every workload trace.
 *
 * The batched hot path (PredictorBank::onBatch, the per-family
 * trainBatch loops) promises *bit-identical* observable behaviour to
 * the per-event predict-then-update protocol: the same
 * PredictionStats, the same overlap/improvement/value-profile tracker
 * state, the same table occupancy, evictions and touch-side aliasing
 * counters — for every predictor family, bounded and unbounded, gated
 * and ungated, hybrids with bounded choosers, at every batch size.
 * The only sanctioned divergence is the aliasedPeeks() diagnostic,
 * which counts probes the batch path legitimately elides.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/bounded.hh"
#include "core/improvement.hh"
#include "core/overlap.hh"
#include "core/value_profile.hh"
#include "exp/suite.hh"
#include "sim/driver.hh"
#include "vm/machine.hh"
#include "workloads/workload.hh"

namespace {

using namespace vp;
using namespace vp::core;

/** The batch geometries the equivalence claim is swept over: single
 *  event, an odd size straddling word boundaries, the replay default,
 *  and one larger than every smoke trace. */
constexpr size_t kBatchSizes[] = {1, 7, 64, 4096};

struct WorkloadTrace
{
    std::string name;
    std::vector<vm::TraceEvent> events;
};

/** Smoke-scale traces, recorded once and replayed into every config. */
const std::vector<WorkloadTrace> &
traces()
{
    static const std::vector<WorkloadTrace> cached = [] {
        workloads::WorkloadConfig config;
        config.scale = 5;
        std::vector<WorkloadTrace> out;
        for (const auto &info : workloads::allWorkloads()) {
            WorkloadTrace trace;
            trace.name = info.name;
            vm::RecordingSink sink;
            vm::Machine machine;
            machine.setSink(&sink);
            EXPECT_TRUE(machine.run(info.build(config)).ok())
                    << info.name;
            trace.events = std::move(sink.events);
            out.push_back(std::move(trace));
        }
        return out;
    }();
    return cached;
}

void
expectIdenticalStats(const PredictionStats &batched,
                     const PredictionStats &scalar)
{
    EXPECT_EQ(batched.total(), scalar.total());
    EXPECT_EQ(batched.predicted(), scalar.predicted());
    EXPECT_EQ(batched.correct(), scalar.correct());
    for (int c = 0; c < isa::numCategories; ++c) {
        const auto cat = static_cast<isa::Category>(c);
        EXPECT_EQ(batched.total(cat), scalar.total(cat))
                << "category " << c;
        EXPECT_EQ(batched.predicted(cat), scalar.predicted(cat))
                << "category " << c;
        EXPECT_EQ(batched.correct(cat), scalar.correct(cat))
                << "category " << c;
    }
}

/**
 * Every spec family and decoration the grammar can express, at table
 * sizes small enough that the smoke traces force real evictions and
 * partial-tag aliasing on the bounded ones.
 */
const std::vector<std::string> &
specsUnderTest()
{
    static const std::vector<std::string> specs = {
        // Unbounded families.
        "l", "l-sat", "s2", "s-sat", "fcm1", "fcm3", "fcm2-pure",
        "fcm2-full",
        // Bounded, across associativity / replacement / partial tags.
        "l@64x2", "l@32x4r", "s2@64x4f", "s2@32xfa", "l@64x2%8",
        "fcm2@64/256x4", "fcm2@32/128x2%10",
        // Confidence-gated, unbounded and bounded inners.
        "fcm3:c2t2", "l@64x2:c1t1d",
        // Hybrids: legacy unbounded, fully bounded with a bounded
        // chooser, and a gated hybrid.
        "hybrid",
        "hybrid(s2@64x2,fcm2@64/256x4;ch@64x2)",
        "hybrid(s2,fcm2):c2t3",
    };
    return specs;
}

TEST(BatchedEquivalence, EveryFamilyMatchesScalarAtEveryBatchSize)
{
    for (const auto &trace : traces()) {
        SCOPED_TRACE(trace.name);

        for (const auto &spec : specsUnderTest()) {
            SCOPED_TRACE(spec);

            sim::PredictorBank scalar;
            scalar.add(exp::makePredictor(spec));
            sim::replayTrace(trace.events, scalar);

            for (const size_t batch : kBatchSizes) {
                SCOPED_TRACE("batch " + std::to_string(batch));

                sim::PredictorBank batched;
                batched.add(exp::makePredictor(spec));
                sim::replayTraceBatched(trace.events, batched, batch);

                expectIdenticalStats(batched.member(0).stats,
                                     scalar.member(0).stats);
                EXPECT_EQ(batched.member(0).predictor->tableEntries(),
                          scalar.member(0).predictor->tableEntries());
            }
        }
    }
}

/** Build the Figure 8/9/10 bank: {l, s2, fcm3} with every tracker. */
sim::PredictorBank
makeTrackedBank()
{
    sim::PredictorBank bank;
    bank.add(exp::makePredictor("l"));
    bank.add(exp::makePredictor("s2"));
    bank.add(exp::makePredictor("fcm3"));
    bank.trackOverlap(3);
    bank.trackImprovement(2, 1);        // fcm vs stride, Figure 9
    bank.trackValues();
    return bank;
}

TEST(BatchedEquivalence, TrackersMatchScalarBitForBit)
{
    for (const auto &trace : traces()) {
        SCOPED_TRACE(trace.name);

        auto scalar = makeTrackedBank();
        sim::replayTrace(trace.events, scalar);

        for (const size_t batch : kBatchSizes) {
            SCOPED_TRACE("batch " + std::to_string(batch));

            auto batched = makeTrackedBank();
            sim::replayTraceBatched(trace.events, batched, batch);

            // Figure 8: every overlap bucket, overall and per category.
            ASSERT_NE(batched.overlap(), nullptr);
            EXPECT_EQ(batched.overlap()->total(),
                      scalar.overlap()->total());
            for (uint32_t mask = 0; mask < 8; ++mask) {
                EXPECT_EQ(batched.overlap()->bucket(mask),
                          scalar.overlap()->bucket(mask))
                        << "mask " << mask;
                for (int c = 0; c < isa::numCategories; ++c) {
                    const auto cat = static_cast<isa::Category>(c);
                    EXPECT_EQ(batched.overlap()->bucket(cat, mask),
                              scalar.overlap()->bucket(cat, mask))
                            << "mask " << mask << " category " << c;
                }
            }

            // Figure 9: identical per-PC cells give an identical curve.
            ASSERT_NE(batched.improvement(), nullptr);
            EXPECT_EQ(batched.improvement()->staticCount(),
                      scalar.improvement()->staticCount());
            const auto curve_b = batched.improvement()->curve();
            const auto curve_s = scalar.improvement()->curve();
            ASSERT_EQ(curve_b.size(), curve_s.size());
            for (size_t i = 0; i < curve_b.size(); ++i) {
                EXPECT_EQ(curve_b[i].staticPct, curve_s[i].staticPct);
                EXPECT_EQ(curve_b[i].improvementPct,
                          curve_s[i].improvementPct);
            }

            // Figure 10: identical unique-value distributions.
            ASSERT_NE(batched.values(), nullptr);
            EXPECT_EQ(batched.values()->staticCount(),
                      scalar.values()->staticCount());
            const auto dist_b = batched.values()->distribution();
            const auto dist_s = scalar.values()->distribution();
            for (int b = 0; b < ValueProfiler::numBuckets; ++b) {
                EXPECT_EQ(dist_b.staticShare[b], dist_s.staticShare[b])
                        << "bucket " << b;
                EXPECT_EQ(dist_b.dynamicShare[b], dist_s.dynamicShare[b])
                        << "bucket " << b;
            }
        }
    }
}

/**
 * The bounded tables' replacement and touch-side aliasing behaviour
 * is part of the observable contract: evictions, aliased touches and
 * the constructive/destructive classification must all match.
 * (aliasedPeeks is deliberately *not* compared: the batch path elides
 * the duplicate probes that counter diagnoses.)
 */
TEST(BatchedEquivalence, BoundedCountersMatchScalar)
{
    BoundedTableConfig tiny;
    tiny.entries = 32;
    tiny.ways = 2;
    tiny.tagBits = 8;       // force partial-tag aliasing

    BoundedFcmConfig fcm_config;
    fcm_config.fcm.order = 2;
    fcm_config.vht = tiny;
    fcm_config.vpt = {.entries = 128, .ways = 2, .tagBits = 10};

    for (const auto &trace : traces()) {
        SCOPED_TRACE(trace.name);

        sim::PredictorBank scalar;
        auto lv_s = std::make_unique<BoundedLastValuePredictor>(
                LvConfig{}, tiny);
        auto fcm_s = std::make_unique<BoundedFcmPredictor>(fcm_config);
        const auto *lv_sp = lv_s.get();
        const auto *fcm_sp = fcm_s.get();
        scalar.add(std::move(lv_s));
        scalar.add(std::move(fcm_s));
        sim::replayTrace(trace.events, scalar);

        for (const size_t batch : kBatchSizes) {
            SCOPED_TRACE("batch " + std::to_string(batch));

            sim::PredictorBank batched;
            auto lv_b = std::make_unique<BoundedLastValuePredictor>(
                    LvConfig{}, tiny);
            auto fcm_b = std::make_unique<BoundedFcmPredictor>(
                    fcm_config);
            const auto *lv_bp = lv_b.get();
            const auto *fcm_bp = fcm_b.get();
            batched.add(std::move(lv_b));
            batched.add(std::move(fcm_b));
            sim::replayTraceBatched(trace.events, batched, batch);

            EXPECT_EQ(lv_bp->evictions(), lv_sp->evictions());
            EXPECT_EQ(lv_bp->table().aliasedTouches(),
                      lv_sp->table().aliasedTouches());
            EXPECT_EQ(lv_bp->table().aliasConstructive(),
                      lv_sp->table().aliasConstructive());
            EXPECT_EQ(lv_bp->table().aliasDestructive(),
                      lv_sp->table().aliasDestructive());

            EXPECT_EQ(fcm_bp->vhtEvictions(), fcm_sp->vhtEvictions());
            EXPECT_EQ(fcm_bp->vptEvictions(), fcm_sp->vptEvictions());
            EXPECT_EQ(fcm_bp->vptAliasedTouches(),
                      fcm_sp->vptAliasedTouches());
            EXPECT_EQ(fcm_bp->vptAliasConstructive(),
                      fcm_sp->vptAliasConstructive());
            EXPECT_EQ(fcm_bp->vptAliasDestructive(),
                      fcm_sp->vptAliasDestructive());

            expectIdenticalStats(batched.member(0).stats,
                                 scalar.member(0).stats);
            expectIdenticalStats(batched.member(1).stats,
                                 scalar.member(1).stats);
        }
    }
}

/** The default onBatch loops onValue: a sink without a batch override
 *  sees batched input with scalar semantics. */
TEST(BatchedEquivalence, DefaultOnBatchForwardsToOnValue)
{
    const auto &trace = traces().front();
    vm::RecordingSink scalar;
    for (const auto &event : trace.events)
        scalar.onValue(event);

    vm::RecordingSink batched;
    vm::VectorBatchSource source(trace.events, 7);
    for (;;) {
        const vm::TraceSpan span = source.nextBatch();
        if (span.empty())
            break;
        batched.onBatch(span);
    }

    ASSERT_EQ(batched.events.size(), scalar.events.size());
    for (size_t i = 0; i < batched.events.size(); ++i) {
        EXPECT_EQ(batched.events[i].pc, scalar.events[i].pc);
        EXPECT_EQ(batched.events[i].value, scalar.events[i].value);
    }
}

} // namespace
