/**
 * @file
 * Tests for region-parallel trace replay: the region planner, the
 * TraceRegionReader warm-up protocol, the bounded-drift pin of the
 * tentpole (regions vs serial within 0.1pp at the default warm-up),
 * byte-identity when the warm-up covers the whole prefix, and the
 * CellScheduler's region fan-out.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>

#include "exp/experiment.hh"
#include "exp/suite.hh"
#include "sim/driver.hh"
#include "synth/sequences.hh"
#include "vm/trace_file.hh"

namespace {

using namespace vp;
using namespace vp::exp;
using vm::TraceEvent;

std::vector<TraceEvent>
sampleEvents(size_t n)
{
    synth::Rng rng(7);
    std::vector<TraceEvent> events;
    for (size_t i = 0; i < n; ++i) {
        TraceEvent event{};
        event.op = (i % 2 == 0) ? isa::Opcode::Add : isa::Opcode::Ld;
        event.cat = isa::opcodeCategory(event.op);
        event.pc = rng.range(200);
        event.value = rng.next() >> rng.range(40);
        events.push_back(event);
    }
    return events;
}

std::string
serializeVpt2(const std::vector<TraceEvent> &events, size_t blockEvents)
{
    std::stringstream buf(std::ios::in | std::ios::out |
                          std::ios::binary);
    vm::Vpt2Writer writer(buf, blockEvents);
    for (const auto &event : events)
        writer.onValue(event);
    writer.finish();
    return buf.str();
}

TEST(RegionPlan, PartitionsExactlyWithBalancedSizes)
{
    for (const uint64_t events : {0ull, 1ull, 6ull, 7ull, 100ull,
                                  99999ull}) {
        for (const unsigned regions : {1u, 2u, 4u, 7u, 13u}) {
            SCOPED_TRACE(testing::Message() << events << " events, "
                                            << regions << " regions");
            const auto plan = planTraceRegions(events, regions);
            ASSERT_EQ(plan.size(), regions);
            uint64_t covered = 0;
            uint64_t min_size = UINT64_MAX, max_size = 0;
            for (size_t r = 0; r < plan.size(); ++r) {
                EXPECT_EQ(plan[r].begin, covered);
                EXPECT_LE(plan[r].begin, plan[r].end);
                const uint64_t size = plan[r].end - plan[r].begin;
                min_size = std::min(min_size, size);
                max_size = std::max(max_size, size);
                covered = plan[r].end;
            }
            EXPECT_EQ(covered, events);
            EXPECT_LE(max_size - min_size, 1u);
        }
    }
}

TEST(RegionReader, ServesWarmupThenRegionWithoutStraddling)
{
    const auto events = sampleEvents(1000);
    const auto data = serializeVpt2(events, 64);
    std::stringstream buf(data, std::ios::in | std::ios::binary);
    vm::Vpt2Reader cursor(buf);

    const uint64_t begin = 500, end = 800, warmup = 200;
    vm::TraceRegionReader region(cursor, begin, end, warmup, 128);
    EXPECT_EQ(region.warmupBegin(), begin - warmup);

    uint64_t pos = begin - warmup;
    uint64_t counted = 0;
    for (;;) {
        const vm::TraceSpan span = region.nextBatch();
        if (span.empty())
            break;
        // A span never straddles the warm-up/region boundary.
        const bool warm = pos < begin;
        EXPECT_EQ(region.lastSpanWarmup(), warm);
        if (warm)
            EXPECT_LE(pos + span.size(), begin);
        else
            counted += span.size();
        for (const auto &event : span) {
            EXPECT_EQ(event.pc, events[pos].pc);
            EXPECT_EQ(event.value, events[pos].value);
            ++pos;
        }
    }
    EXPECT_EQ(pos, end);
    EXPECT_EQ(counted, end - begin);
}

TEST(RegionReader, ClampsWarmupToAvailablePrefix)
{
    const auto events = sampleEvents(300);
    const auto data = serializeVpt2(events, 32);
    std::stringstream buf(data, std::ios::in | std::ios::binary);
    vm::Vpt2Reader cursor(buf);

    // More warm-up than there are preceding events: start at 0.
    vm::TraceRegionReader region(cursor, 100, 200, 100000);
    EXPECT_EQ(region.warmupBegin(), 0u);

    std::stringstream buf2(data, std::ios::in | std::ios::binary);
    vm::Vpt2Reader cursor2(buf2);
    EXPECT_THROW(vm::TraceRegionReader(cursor2, 200, 301, 0),
                 vm::TraceFileError);
    EXPECT_THROW(vm::TraceRegionReader(cursor2, 250, 200, 0),
                 vm::TraceFileError);
}

TEST(RegionReader, WorksOnForwardOnlyVpt1Cursors)
{
    // A VPT1 cursor can only skip forward; regions still replay.
    const auto events = sampleEvents(400);
    std::stringstream buf(std::ios::in | std::ios::out |
                          std::ios::binary);
    vm::TraceWriter writer(buf);
    for (const auto &event : events)
        writer.onValue(event);
    writer.finish();
    buf.seekg(0);

    vm::TraceReader cursor(buf);
    vm::TraceRegionReader region(cursor, 150, 300, 50);
    uint64_t pos = 100;
    for (;;) {
        const vm::TraceSpan span = region.nextBatch();
        if (span.empty())
            break;
        for (const auto &event : span) {
            EXPECT_EQ(event.pc, events[pos].pc);
            ++pos;
        }
    }
    EXPECT_EQ(pos, 300u);
}

// ------------------------------------------- suite-level properties

SuiteOptions
regionOptions(unsigned regions, uint64_t warmup)
{
    SuiteOptions options;
    options.predictors = {"l", "s2", "fcm3"};
    options.config.scale = dryRunScale;
    options.traceReplay = true;
    options.regions = regions;
    options.warmupEvents = warmup;
    return options;
}

void
expectIdenticalStats(const BenchmarkRun &a, const BenchmarkRun &b)
{
    ASSERT_EQ(a.predictors.size(), b.predictors.size());
    for (size_t p = 0; p < a.predictors.size(); ++p) {
        const auto &sa = a.predictors[p].second;
        const auto &sb = b.predictors[p].second;
        EXPECT_EQ(sa.total(), sb.total());
        EXPECT_EQ(sa.predicted(), sb.predicted());
        EXPECT_EQ(sa.correct(), sb.correct());
        for (int c = 0; c < isa::numCategories; ++c) {
            const auto cat = static_cast<isa::Category>(c);
            EXPECT_EQ(sa.total(cat), sb.total(cat));
            EXPECT_EQ(sa.predicted(cat), sb.predicted(cat));
            EXPECT_EQ(sa.correct(cat), sb.correct(cat));
        }
    }
}

TEST(RegionReplay, FullPrefixWarmupIsByteIdenticalToSerial)
{
    // With the warm-up window covering everything before each region,
    // every region sees exactly the serial predictor state at its
    // begin: the merged result must equal serial replay bit for bit.
    const std::string dir =
            (std::filesystem::temp_directory_path() / "vp-region-ident")
                    .string();
    std::filesystem::remove_all(dir);

    auto serial = regionOptions(1, 0);
    serial.traceCacheDir = dir;
    const auto reference = runBenchmark("compress", serial);

    auto split = regionOptions(4, UINT64_MAX);
    split.traceCacheDir = dir;
    const auto merged = runBenchmark("compress", split);

    expectIdenticalStats(reference, merged);
    EXPECT_EQ(reference.exec.retired, merged.exec.retired);
    EXPECT_EQ(reference.exec.predicted, merged.exec.predicted);
    std::filesystem::remove_all(dir);
}

TEST(RegionReplay, TotalsPartitionExactlyAtAnyWarmup)
{
    // total/catTotal count every region event exactly once no matter
    // the warm-up (only predicted/correct can drift): the partition
    // invariant that makes merged coverage denominators exact.
    const std::string dir =
            (std::filesystem::temp_directory_path() / "vp-region-part")
                    .string();
    std::filesystem::remove_all(dir);

    auto serial = regionOptions(1, 0);
    serial.traceCacheDir = dir;
    const auto reference = runBenchmark("xlisp", serial);

    auto split = regionOptions(5, 1024);    // deliberately tiny warmup
    split.traceCacheDir = dir;
    const auto merged = runBenchmark("xlisp", split);

    for (size_t p = 0; p < reference.predictors.size(); ++p) {
        EXPECT_EQ(reference.predictors[p].second.total(),
                  merged.predictors[p].second.total());
        for (int c = 0; c < isa::numCategories; ++c) {
            const auto cat = static_cast<isa::Category>(c);
            EXPECT_EQ(reference.predictors[p].second.total(cat),
                      merged.predictors[p].second.total(cat)) << c;
        }
    }
    std::filesystem::remove_all(dir);
}

TEST(RegionReplay, DefaultWarmupDriftStaysUnderTenthOfAPoint)
{
    // The tentpole's acceptance pin: W >= 4 regions at the default
    // warm-up merge to within 0.1pp accuracy of serial replay. xlisp
    // at smoke scale is the longest workload trace (~184k events), so
    // its last region genuinely starts mid-trace with a partial
    // warm-up rather than a full prefix.
    const std::string dir =
            (std::filesystem::temp_directory_path() / "vp-region-drift")
                    .string();
    std::filesystem::remove_all(dir);

    auto serial = regionOptions(1, 0);
    serial.traceCacheDir = dir;
    const auto reference = runBenchmark("xlisp", serial);

    auto split = regionOptions(4, defaultWarmupEvents);
    split.traceCacheDir = dir;
    const auto merged = runBenchmark("xlisp", split);

    for (size_t p = 0; p < reference.predictors.size(); ++p) {
        const double drift_pp =
                std::fabs(reference.accuracyPct(p) -
                          merged.accuracyPct(p));
        EXPECT_LE(drift_pp, 0.1)
                << reference.predictors[p].first << " drifted "
                << drift_pp << "pp";
    }
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------- scheduler fan-out

TEST(RegionScheduler, NormalizationAdoptsAndGatesRegions)
{
    ExperimentConfig config;
    config.regions = 4;
    config.warmupEvents = 9999;

    SuiteOptions plain;
    const auto cell = normalizeCellOptions(plain, config);
    EXPECT_EQ(cell.regions, 4u);
    EXPECT_EQ(cell.warmupEvents, 9999u);

    // Tracker cells fall back to one whole-trace replay (per-static
    // tracker state does not merge), with the warm-up canonicalised
    // so equal work still shares a dedup key.
    SuiteOptions tracked;
    tracked.values = true;
    const auto serial = normalizeCellOptions(tracked, config);
    EXPECT_EQ(serial.regions, 1u);
    EXPECT_EQ(serial.warmupEvents, defaultWarmupEvents);

    SuiteOptions own;
    own.regions = 2;
    own.warmupEvents = 5;
    const auto kept = normalizeCellOptions(own, config);
    EXPECT_EQ(kept.regions, 2u);
    EXPECT_EQ(kept.warmupEvents, 5u);
}

TEST(RegionScheduler, FanOutMatchesSerialRegionMergeAtAnyJobCount)
{
    // The scheduler's W-tasks-plus-last-finisher-merges fan-out must
    // reproduce runBenchmark's serial region loop exactly, whether
    // the pool has 1 worker (no deadlock: no task waits on another)
    // or many.
    ExperimentConfig config;
    config.dryRun = true;
    config.regions = 4;

    SuiteOptions options;
    options.predictors = {"l", "s2", "fcm3"};
    options.benchmarks = {"compress", "xlisp"};

    const auto reference_options = normalizeCellOptions(options, config);
    std::vector<BenchmarkRun> reference;
    for (const auto &name : reference_options.benchmarks)
        reference.push_back(runBenchmark(name, reference_options));

    for (const unsigned jobs : {1u, 4u}) {
        SCOPED_TRACE(testing::Message() << jobs << " jobs");
        CellScheduler scheduler(config, jobs);
        const auto runs = scheduler.suite(options);
        ASSERT_EQ(runs.size(), reference.size());
        for (size_t i = 0; i < runs.size(); ++i) {
            EXPECT_EQ(runs[i].name, reference[i].name);
            expectIdenticalStats(runs[i], reference[i]);
        }

        const auto records = scheduler.records();
        ASSERT_EQ(records.size(), 2u);
        for (const auto &record : records) {
            EXPECT_TRUE(record.done);
            EXPECT_EQ(record.regions, 4u);
            EXPECT_GT(record.events, 0u);
        }
    }
}

TEST(RegionScheduler, RegionCellErrorsPropagateToWaiters)
{
    ExperimentConfig config;
    config.dryRun = true;
    config.regions = 4;
    CellScheduler scheduler(config, 2);

    SuiteOptions options;
    options.predictors = {"l"};
    options.benchmarks = {"no-such-workload"};
    EXPECT_THROW(scheduler.suite(options), std::exception);
}

} // anonymous namespace
