/**
 * @file
 * Performance regression guard for the batched replay hot path.
 *
 * The batched path exists to be faster than the per-event protocol;
 * this guard fails the build if it ever *regresses* past it. The bar
 * is deliberately loose — batched must stay within 1.25x of scalar
 * ns/event at smoke scale, best of three runs each — because unit
 * tests run under sanitizers and coverage instrumentation too, where
 * absolute speedups compress. BENCH_hotpath.json (bench/
 * perf_predictors) carries the real before/after numbers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "exp/suite.hh"
#include "obs/instrumentation.hh"
#include "sim/driver.hh"
#include "vm/machine.hh"
#include "workloads/workload.hh"

namespace {

using namespace vp;
using Clock = std::chrono::steady_clock;

sim::PredictorBank
makeBank()
{
    sim::PredictorBank bank;
    bank.add(exp::makePredictor("l"));
    bank.add(exp::makePredictor("s2"));
    bank.add(exp::makePredictor("fcm3"));
    return bank;
}

/** Best-of-@p runs wall time of @p body, in seconds. */
template <typename Body>
double
bestOf(int runs, Body &&body)
{
    double best = 1e300;
    for (int r = 0; r < runs; ++r) {
        const auto start = Clock::now();
        body();
        const double s =
                std::chrono::duration<double>(Clock::now() - start)
                        .count();
        best = std::min(best, s);
    }
    return best;
}

TEST(HotpathGuard, BatchedReplayDoesNotRegressPastScalar)
{
    // One combined smoke-scale trace: enough events for a stable
    // timing without making the unit shard slow.
    workloads::WorkloadConfig config;
    config.scale = 5;
    std::vector<vm::TraceEvent> events;
    for (const auto &info : workloads::allWorkloads()) {
        vm::RecordingSink sink;
        vm::Machine machine;
        machine.setSink(&sink);
        ASSERT_TRUE(machine.run(info.build(config)).ok()) << info.name;
        events.insert(events.end(), sink.events.begin(),
                      sink.events.end());
    }
    ASSERT_FALSE(events.empty());

    // Warm-up pass keeps first-touch page faults out of both timings.
    {
        auto bank = makeBank();
        sim::replayTrace(events, bank);
    }

    const double scalar = bestOf(3, [&] {
        auto bank = makeBank();
        sim::replayTrace(events, bank);
    });
    const double batched = bestOf(3, [&] {
        auto bank = makeBank();
        sim::replayTraceBatched(events, bank);
    });

    const double ns_per_event = 1e9 / static_cast<double>(events.size());
    EXPECT_LE(batched, scalar * 1.25)
            << "batched replay regressed past the scalar path: "
            << batched * ns_per_event << " ns/event batched vs "
            << scalar * ns_per_event << " ns/event scalar over "
            << events.size() << " events";
}

TEST(HotpathGuard, InstrumentationStaysOffTheHotPath)
{
    // The observability contract: counters are pulled at cell
    // boundaries, never pushed per event, so an instrumented replay
    // must produce byte-identical statistics and stay within a loose
    // wall-clock bar of the uninstrumented one (per-span counter work
    // only — a handful of map lookups per ~4K-event batch).
    workloads::WorkloadConfig config;
    config.scale = 5;
    std::vector<vm::TraceEvent> events;
    for (const auto &info : workloads::allWorkloads()) {
        vm::RecordingSink sink;
        vm::Machine machine;
        machine.setSink(&sink);
        ASSERT_TRUE(machine.run(info.build(config)).ok()) << info.name;
        events.insert(events.end(), sink.events.begin(),
                      sink.events.end());
    }
    ASSERT_FALSE(events.empty());

    {   // Warm-up pass (first-touch page faults).
        auto bank = makeBank();
        vm::VectorBatchSource source(events);
        sim::replayTrace(source, bank);
    }

    std::vector<core::PredictionStats> statsOff, statsOn;
    const double off = bestOf(3, [&] {
        auto bank = makeBank();
        vm::VectorBatchSource source(events);
        sim::replayTrace(source, bank);
        statsOff.clear();
        for (size_t m = 0; m < bank.size(); ++m)
            statsOff.push_back(bank.member(m).stats);
    });
    obs::Registry registry;
    obs::Instrumentation instr(&registry);
    const double on = bestOf(3, [&] {
        auto bank = makeBank();
        vm::VectorBatchSource source(events);
        sim::replayTrace(source, bank, &instr);
        statsOn.clear();
        for (size_t m = 0; m < bank.size(); ++m)
            statsOn.push_back(bank.member(m).stats);
    });

    ASSERT_EQ(statsOff.size(), statsOn.size());
    for (size_t m = 0; m < statsOff.size(); ++m) {
        EXPECT_EQ(statsOff[m].total(), statsOn[m].total());
        EXPECT_EQ(statsOff[m].predicted(), statsOn[m].predicted());
        EXPECT_EQ(statsOff[m].correct(), statsOn[m].correct());
    }

    // The counters themselves must be exact, not just cheap.
    const obs::Snapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counter("replay.events"),
              3 * static_cast<uint64_t>(events.size()));

    const double ns_per_event = 1e9 / static_cast<double>(events.size());
    EXPECT_LE(on, off * 1.25)
            << "instrumented replay regressed past instrumented-off: "
            << on * ns_per_event << " ns/event on vs "
            << off * ns_per_event << " ns/event off over "
            << events.size() << " events";
}

} // namespace
