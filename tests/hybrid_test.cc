/**
 * @file
 * Tests for the hybrid stride+fcm predictor (the Section 4.2
 * extension study).
 */

#include <gtest/gtest.h>

#include "core/hybrid.hh"
#include "core/learning.hh"
#include "synth/sequences.hh"

namespace {

using namespace vp;
using namespace vp::core;
using namespace vp::synth;

TEST(Hybrid, TracksStrideOnFreshStrides)
{
    // FCM cannot predict a fresh stride; the chooser must migrate to
    // the stride component and the hybrid then performs like s2.
    HybridPredictor hybrid;
    StridePredictor stride;
    const auto seq = strideSeq(5, 3, 300);
    const auto h = analyzeLearning(hybrid, seq);
    const auto s = analyzeLearning(stride, seq);
    EXPECT_GT(h.accuracy, s.accuracy - 0.05);
}

TEST(Hybrid, TracksFcmOnRepeatedNonStrides)
{
    HybridPredictor hybrid;
    FcmConfig fc;
    fc.order = 3;
    FcmPredictor fcm(fc);
    const auto seq = repeatedNonStrideSeq(9, 6, 400);
    const auto h = analyzeLearning(hybrid, seq);
    const auto f = analyzeLearning(fcm, seq);
    EXPECT_GT(h.accuracy, f.accuracy - 0.05);
}

TEST(Hybrid, BeatsBothComponentsOnAMixedWorkload)
{
    // Alternate phases favouring each component. The chooser is
    // per-PC, so give each phase its own PC, as distinct static
    // instructions would have.
    HybridPredictor hybrid;
    StridePredictor stride;
    FcmConfig fc;
    fc.order = 3;
    FcmPredictor fcm(fc);

    auto run = [](ValuePredictor &pred) {
        uint64_t correct = 0, total = 0;
        const auto strides = strideSeq(0, 7, 400);
        const auto rns = repeatedNonStrideSeq(4, 5, 400);
        for (size_t i = 0; i < strides.size(); ++i) {
            for (uint64_t pc : {0, 1}) {
                const uint64_t actual =
                        pc == 0 ? strides[i] : rns[i];
                const auto p = pred.predict(pc);
                correct += p.valid && p.value == actual;
                ++total;
                pred.update(pc, actual);
            }
        }
        return static_cast<double>(correct) / total;
    };

    const double h = run(hybrid);
    const double s = run(stride);
    const double f = run(fcm);
    EXPECT_GT(h, s);
    EXPECT_GT(h, f);
    EXPECT_GT(h, 0.9);
}

TEST(Hybrid, FallsBackWhenPreferredComponentDeclines)
{
    HybridPredictor hybrid;
    hybrid.update(0, 10);
    // Only one value seen: fcm's order-0 can predict, stride predicts
    // last value; either way a valid prediction must come out.
    EXPECT_TRUE(hybrid.predict(0).valid);
}

TEST(Hybrid, ReportsChoiceFractionAndEntries)
{
    HybridPredictor hybrid;
    for (uint64_t v : {1u, 2u, 3u, 4u, 5u})
        hybrid.update(0, v);
    EXPECT_GT(hybrid.tableEntries(), 0u);
    EXPECT_GE(hybrid.fcmChoiceFraction(), 0.0);
    EXPECT_LE(hybrid.fcmChoiceFraction(), 1.0);
    hybrid.reset();
    EXPECT_EQ(hybrid.tableEntries(), 0u);
    EXPECT_DOUBLE_EQ(hybrid.fcmChoiceFraction(), 0.0);
}

TEST(Hybrid, NameListsComponents)
{
    EXPECT_EQ(HybridPredictor().name(), "hyb(s2+fcm3)");
}

} // anonymous namespace
