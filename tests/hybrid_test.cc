/**
 * @file
 * Tests for the hybrid stride+fcm predictor (the Section 4.2
 * extension study).
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/bounded.hh"
#include "core/hybrid.hh"
#include "core/learning.hh"
#include "synth/sequences.hh"

namespace {

using namespace vp;
using namespace vp::core;
using namespace vp::synth;

TEST(Hybrid, TracksStrideOnFreshStrides)
{
    // FCM cannot predict a fresh stride; the chooser must migrate to
    // the stride component and the hybrid then performs like s2.
    HybridPredictor hybrid;
    StridePredictor stride;
    const auto seq = strideSeq(5, 3, 300);
    const auto h = analyzeLearning(hybrid, seq);
    const auto s = analyzeLearning(stride, seq);
    EXPECT_GT(h.accuracy, s.accuracy - 0.05);
}

TEST(Hybrid, TracksFcmOnRepeatedNonStrides)
{
    HybridPredictor hybrid;
    FcmConfig fc;
    fc.order = 3;
    FcmPredictor fcm(fc);
    const auto seq = repeatedNonStrideSeq(9, 6, 400);
    const auto h = analyzeLearning(hybrid, seq);
    const auto f = analyzeLearning(fcm, seq);
    EXPECT_GT(h.accuracy, f.accuracy - 0.05);
}

TEST(Hybrid, BeatsBothComponentsOnAMixedWorkload)
{
    // Alternate phases favouring each component. The chooser is
    // per-PC, so give each phase its own PC, as distinct static
    // instructions would have.
    HybridPredictor hybrid;
    StridePredictor stride;
    FcmConfig fc;
    fc.order = 3;
    FcmPredictor fcm(fc);

    auto run = [](ValuePredictor &pred) {
        uint64_t correct = 0, total = 0;
        const auto strides = strideSeq(0, 7, 400);
        const auto rns = repeatedNonStrideSeq(4, 5, 400);
        for (size_t i = 0; i < strides.size(); ++i) {
            for (uint64_t pc : {0, 1}) {
                const uint64_t actual =
                        pc == 0 ? strides[i] : rns[i];
                const auto p = pred.predict(pc);
                correct += p.valid && p.value == actual;
                ++total;
                pred.update(pc, actual);
            }
        }
        return static_cast<double>(correct) / total;
    };

    const double h = run(hybrid);
    const double s = run(stride);
    const double f = run(fcm);
    EXPECT_GT(h, s);
    EXPECT_GT(h, f);
    EXPECT_GT(h, 0.9);
}

TEST(Hybrid, FallsBackWhenPreferredComponentDeclines)
{
    HybridPredictor hybrid;
    hybrid.update(0, 10);
    // Only one value seen: fcm's order-0 can predict, stride predicts
    // last value; either way a valid prediction must come out.
    EXPECT_TRUE(hybrid.predict(0).valid);
}

TEST(Hybrid, ReportsChoiceFractionAndEntries)
{
    HybridPredictor hybrid;
    for (uint64_t v : {1u, 2u, 3u, 4u, 5u})
        hybrid.update(0, v);
    EXPECT_GT(hybrid.tableEntries(), 0u);
    EXPECT_GE(hybrid.fcmChoiceFraction(), 0.0);
    EXPECT_LE(hybrid.fcmChoiceFraction(), 1.0);
    hybrid.reset();
    EXPECT_EQ(hybrid.tableEntries(), 0u);
    EXPECT_DOUBLE_EQ(hybrid.fcmChoiceFraction(), 0.0);
}

TEST(Hybrid, NameListsComponents)
{
    EXPECT_EQ(HybridPredictor().name(), "hyb(s2+fcm3)");
}

// ------------------------------------------- composed hybrids (§4.3)

/** A small bounded-component hybrid with a bounded chooser. */
std::unique_ptr<HybridPredictor>
smallComposedHybrid()
{
    BoundedTableConfig stride_table;
    stride_table.entries = 64;
    BoundedFcmConfig fcm;
    fcm.fcm.order = 3;
    fcm.vht = BoundedTableConfig{.entries = 64};
    fcm.vpt = BoundedTableConfig{.entries = 256};
    fcm.maxFollowers = 4;
    HybridChooser chooser;
    chooser.table = BoundedTableConfig{.entries = 32};
    return std::make_unique<HybridPredictor>(
            std::make_unique<BoundedStridePredictor>(StrideConfig{},
                                                     stride_table),
            std::make_unique<BoundedFcmPredictor>(fcm), chooser);
}

/**
 * The §4.3 cost-accounting contract: tableEntries() reports chooser
 * plus *both* components — a budget comparison that dropped any of
 * the three would be dishonest. Verified against reference components
 * trained with the identical update stream.
 */
TEST(Hybrid, TableEntriesCountsChooserAndBothComponents)
{
    const auto hybrid = smallComposedHybrid();

    BoundedTableConfig stride_table;
    stride_table.entries = 64;
    BoundedStridePredictor stride_ref(StrideConfig{}, stride_table);
    BoundedFcmConfig fcm;
    fcm.fcm.order = 3;
    fcm.vht = BoundedTableConfig{.entries = 64};
    fcm.vpt = BoundedTableConfig{.entries = 256};
    fcm.maxFollowers = 4;
    BoundedFcmPredictor fcm_ref(fcm);

    for (uint64_t i = 0; i < 200; ++i) {
        const uint64_t pc = i % 16;
        const uint64_t value = (i / 16) * (pc + 1);
        hybrid->update(pc, value);
        stride_ref.update(pc, value);
        fcm_ref.update(pc, value);
    }

    EXPECT_EQ(hybrid->chooserEntries(), 16u);
    EXPECT_EQ(hybrid->tableEntries(),
              stride_ref.tableEntries() + fcm_ref.tableEntries() +
                      hybrid->chooserEntries());

    hybrid->reset();
    EXPECT_EQ(hybrid->tableEntries(), 0u);
    EXPECT_EQ(hybrid->chooserEntries(), 0u);
}

/** The unbounded hybrid reports the same sum (map chooser). */
TEST(Hybrid, UnboundedTableEntriesCountAllThreeTables)
{
    HybridPredictor hybrid;
    StridePredictor stride_ref;
    FcmConfig fc;
    fc.order = 3;
    FcmPredictor fcm_ref(fc);

    for (uint64_t i = 0; i < 100; ++i) {
        const uint64_t pc = i % 8;
        hybrid.update(pc, i);
        stride_ref.update(pc, i);
        fcm_ref.update(pc, i);
    }
    EXPECT_EQ(hybrid.chooserEntries(), 8u);
    EXPECT_EQ(hybrid.tableEntries(),
              stride_ref.tableEntries() + fcm_ref.tableEntries() + 8u);
}

/**
 * Tag width changes per-entry tag *bits*, never the entry count: a
 * tagged table under an alias-free key stream reports exactly the
 * same tableEntries as its full-key twin, so §4.3 budget comparisons
 * across tag widths stay apples-to-apples.
 */
TEST(Hybrid, TagWidthDoesNotChangeEntryAccounting)
{
    BoundedTableConfig full;
    full.entries = 256;
    BoundedTableConfig tagged = full;
    tagged.tagBits = 8;

    BoundedStridePredictor a(StrideConfig{}, full);
    BoundedStridePredictor b(StrideConfig{}, tagged);
    for (uint64_t pc = 0; pc < 40; ++pc) {    // distinct low-8-bit tags
        a.update(pc, pc * 3);
        b.update(pc, pc * 3);
    }
    EXPECT_EQ(b.table().aliasedTouches(), 0u);
    EXPECT_EQ(a.tableEntries(), b.tableEntries());
    EXPECT_EQ(a.table().capacity(), b.table().capacity());
}

TEST(Hybrid, BoundedChooserEvictionForgetsTheLearnedChoice)
{
    // One-entry chooser: PC 1 trains toward stride (fcm never sees a
    // stride sequence early), then PC 2 touching the chooser evicts
    // PC 1's counter; ample components keep their state.
    HybridChooser chooser;
    chooser.table = BoundedTableConfig{.entries = 1, .ways = 1};
    HybridPredictor hybrid(std::make_unique<StridePredictor>(),
                           std::make_unique<FcmPredictor>(),
                           chooser);
    for (uint64_t i = 0; i < 50; ++i)
        hybrid.update(1, 100 + 7 * i);
    hybrid.update(2, 5);
    // No crash, and the chooser holds exactly its one-entry budget.
    EXPECT_EQ(hybrid.chooserEntries(), 1u);
    EXPECT_TRUE(hybrid.predict(1).valid);
}

TEST(Hybrid, ComposedNameListsComponentsAndChooser)
{
    HybridChooser chooser;
    chooser.table = BoundedTableConfig{.entries = 512};
    const HybridPredictor hybrid(std::make_unique<StridePredictor>(),
                                 std::make_unique<FcmPredictor>(),
                                 chooser);
    EXPECT_EQ(hybrid.name(), "hyb(s2+fcm3;ch@512x4)");
}

} // anonymous namespace
