/**
 * @file
 * Confidence-estimation subsystem tests:
 *
 *  - counter boundaries: width 1 is predict-after-one-hit, a
 *    threshold above the saturation ceiling never predicts (and the
 *    stats report coverage 0 without dividing by zero), saturation
 *    never wraps, and the resetting vs decrementing miss penalties
 *    diverge on a crafted alternating-hit trace;
 *  - composition: the gate wraps bounded specs, round-trips through
 *    the spec grammar, and a threshold-0 gate is observationally
 *    identical to the ungated predictor (bounded or not);
 *  - the coverage/accuracy monotone trade-off over the sweep grid on
 *    every workload, and the profit case for gating fcm3 — the
 *    vpexp-confidence acceptance bars, asserted rather than printed.
 */

#include <gtest/gtest.h>

#include "core/bounded.hh"
#include "core/confidence.hh"
#include "core/last_value.hh"
#include "exp/confidence.hh"
#include "exp/suite.hh"
#include "sim/driver.hh"
#include "vm/machine.hh"
#include "workloads/workload.hh"

namespace {

using namespace vp;
using namespace vp::core;

/** A crafted single-PC trace with the given value sequence. */
std::vector<vm::TraceEvent>
traceOf(std::initializer_list<uint64_t> values)
{
    std::vector<vm::TraceEvent> events;
    for (const uint64_t value : values) {
        events.push_back({0x40, isa::Opcode::Add, isa::Category::AddSub,
                          value});
    }
    return events;
}

/** One workload's smoke-scale trace, recorded once. */
const std::vector<vm::TraceEvent> &
compressTrace()
{
    static const std::vector<vm::TraceEvent> cached = [] {
        workloads::WorkloadConfig config;
        config.scale = 5;
        const auto prog =
                workloads::findWorkload("compress").build(config);
        vm::RecordingSink sink;
        vm::Machine machine;
        machine.setSink(&sink);
        EXPECT_TRUE(machine.run(prog).ok());
        return sink.events;
    }();
    return cached;
}

PredictionStats
runOver(PredictorPtr pred, const std::vector<vm::TraceEvent> &events)
{
    sim::PredictorBank bank;
    bank.add(std::move(pred));
    sim::replayTrace(events, bank);
    return bank.member(0).stats;
}

/** Every counter PredictionStats holds, including the gated triple. */
void
expectIdenticalStats(const PredictionStats &a, const PredictionStats &b)
{
    EXPECT_EQ(a.total(), b.total());
    EXPECT_EQ(a.predicted(), b.predicted());
    EXPECT_EQ(a.correct(), b.correct());
    for (int c = 0; c < isa::numCategories; ++c) {
        const auto cat = static_cast<isa::Category>(c);
        EXPECT_EQ(a.total(cat), b.total(cat)) << "category " << c;
        EXPECT_EQ(a.predicted(cat), b.predicted(cat)) << "category " << c;
        EXPECT_EQ(a.correct(cat), b.correct(cat)) << "category " << c;
    }
}

// ------------------------------------------------- counter boundaries

TEST(Confidence, WidthOneIsPredictAfterOneHit)
{
    ConfidenceConfig config;
    config.width = 1;               // saturates at 1
    config.threshold = 1;
    ConfidencePredictor pred(std::make_unique<LastValuePredictor>(),
                             config);

    // Cold: the inner predictor declines, the counter is 0.
    EXPECT_FALSE(pred.predict(0x40).valid);
    pred.update(0x40, 42);          // inner was cold: miss, counter 0

    // The inner table now knows 42 but the gate has seen no hit yet.
    EXPECT_FALSE(pred.predict(0x40).valid);
    EXPECT_EQ(pred.counter(0x40), 0);
    pred.update(0x40, 42);          // inner hit: counter -> 1

    // One demonstrated hit opens the gate.
    EXPECT_TRUE(pred.predict(0x40).valid);
    EXPECT_EQ(pred.predict(0x40).value, 42u);
    EXPECT_EQ(pred.counter(0x40), 1);

    // A miss closes it again immediately (reset penalty).
    pred.update(0x40, 7);
    EXPECT_FALSE(pred.predict(0x40).valid);
    EXPECT_EQ(pred.counter(0x40), 0);
}

TEST(Confidence, ThresholdAboveCeilingNeverPredictsAndStatsStayFinite)
{
    ConfidenceConfig config;
    config.width = 2;               // saturates at 3
    config.threshold = 4;           // unreachable
    const auto stats = runOver(
            std::make_unique<ConfidencePredictor>(
                    std::make_unique<LastValuePredictor>(), config),
            compressTrace());

    EXPECT_EQ(stats.total(), compressTrace().size());
    EXPECT_EQ(stats.predicted(), 0u);
    EXPECT_EQ(stats.correct(), 0u);
    EXPECT_DOUBLE_EQ(stats.coverage(), 0.0);
    EXPECT_DOUBLE_EQ(stats.accuracyWhenPredicted(), 0.0);
    EXPECT_DOUBLE_EQ(stats.accuracy(), 0.0);
    EXPECT_DOUBLE_EQ(stats.profit(8.0), 0.0);
}

TEST(Confidence, SaturationNeverWraps)
{
    for (const ConfidencePenalty penalty :
         {ConfidencePenalty::Reset, ConfidencePenalty::Decrement}) {
        ConfidenceConfig config;
        config.width = 2;           // saturates at 3
        config.threshold = 2;
        config.penalty = penalty;
        ConfidencePredictor pred(std::make_unique<LastValuePredictor>(),
                                 config);

        for (int i = 0; i < 100; ++i) {
            pred.update(0x40, 42);
            EXPECT_LE(pred.counter(0x40), config.maxCount());
        }
        EXPECT_EQ(pred.counter(0x40), 3);

        // One miss: reset drops to 0, decrement to 2 — never below 0
        // even when misses keep coming.
        pred.update(0x40, 7);
        EXPECT_EQ(pred.counter(0x40),
                  penalty == ConfidencePenalty::Reset ? 0 : 2);
        for (int i = 0; i < 10; ++i)
            pred.update(0x40, 1000 + static_cast<uint64_t>(i));
        EXPECT_GE(pred.counter(0x40), 0);
    }
}

TEST(Confidence, ResetAndDecrementDivergeOnAlternatingHits)
{
    // Last value over 1,1,1,2,2,2,3,3,3,... alternates two hits with
    // one miss. With width 2 / threshold 2, the resetting estimator
    // re-earns trust from zero after every value change and reaches
    // the threshold exactly when the next change (a miss) is due; the
    // decrementing estimator only dips to 1 and keeps the gate open
    // through the steady state.
    std::vector<uint64_t> values;
    for (uint64_t v = 1; v <= 40; ++v) {
        for (int repeat = 0; repeat < 3; ++repeat)
            values.push_back(v);
    }
    std::vector<vm::TraceEvent> events;
    for (const uint64_t value : values) {
        events.push_back({0x40, isa::Opcode::Add, isa::Category::AddSub,
                          value});
    }

    ConfidenceConfig config;
    config.width = 2;
    config.threshold = 2;
    config.penalty = ConfidencePenalty::Reset;
    const auto reset = runOver(
            std::make_unique<ConfidencePredictor>(
                    std::make_unique<LastValuePredictor>(), config),
            events);
    config.penalty = ConfidencePenalty::Decrement;
    const auto decrement = runOver(
            std::make_unique<ConfidencePredictor>(
                    std::make_unique<LastValuePredictor>(), config),
            events);

    EXPECT_EQ(reset.total(), decrement.total());

    // Resetting: the counter hits 2 exactly on the events where the
    // value changes — it predicts only the misses.
    EXPECT_GT(reset.predicted(), 0u);
    EXPECT_EQ(reset.correct(), 0u);

    // Decrementing: the gate stays open through the 2-hit/1-miss
    // cycle, so it predicts far more often and is right on the hits.
    EXPECT_GT(decrement.predicted(), reset.predicted());
    EXPECT_GT(decrement.correct(), 0u);
    EXPECT_GT(decrement.accuracyWhenPredicted(),
              reset.accuracyWhenPredicted());
}

// ---------------------------------------------- grammar & composition

TEST(ConfidenceSpecs, NamesRoundTripThroughTheGrammar)
{
    for (const char *spec :
         {"l:c2t3", "s2:c1t1", "fcm3:c3t6", "l@1024x4:c2t3",
          "s2@256x2r:c2t2", "fcm3@256/1024x4:c3t6",
          "fcm3@256/1024x4f:c4t9d", "l:c2t3d", "l:c2t0"}) {
        EXPECT_EQ(exp::makePredictor(spec)->name(), spec) << spec;
    }

    // The explicit "r" (reset) spelling is accepted and canonicalises
    // away, like the bounded grammar's -sat: reset is the default.
    EXPECT_EQ(exp::makePredictor("fcm3@256/1024x4:c3t6r")->name(),
              "fcm3@256/1024x4:c3t6");
    // The hybrid names its components, gated or not.
    EXPECT_EQ(exp::makePredictor("hybrid:c1t1")->name(),
              "hyb(s2+fcm3):c1t1");
}

TEST(ConfidenceSpecs, RejectsMalformedSuffixes)
{
    for (const char *spec :
         {"l:", "l:c", "l:c2", "l:t3", "l:c2t", "l:ct3", "l:c0t1",
          "l:c17t1", "l:c2t3x", "l:c2x3", "l:c2t3:c2t3", ":c2t3",
          "l:c99999999999t1", "l:c2t99999999999"}) {
        EXPECT_THROW(exp::makePredictor(spec), std::invalid_argument)
                << spec;
    }
}

TEST(ConfidenceSpecs, ThresholdZeroEqualsUngatedPredictor)
{
    // The acceptance bar: a threshold-0 gate is observationally
    // identical to the plain predictor — bounded, unbounded, hybrid.
    for (const char *base :
         {"l", "s2", "fcm2", "hybrid", "l@64x2", "s2@64x2f",
          "fcm2@64/256x4"}) {
        SCOPED_TRACE(base);
        const auto plain =
                runOver(exp::makePredictor(base), compressTrace());
        const auto gated = runOver(
                exp::makePredictor(std::string(base) + ":c3t0"),
                compressTrace());
        expectIdenticalStats(gated, plain);
    }
}

TEST(ConfidenceSpecs, GatedStarvedBoundedTablesNeverCrash)
{
    for (const char *spec :
         {"l@16x1:c2t2", "s2@16x16:c1t1", "fcm3@16/16x4:c3t7",
          "fcm2@16/16x4f:c2t2d"}) {
        SCOPED_TRACE(spec);
        const auto stats =
                runOver(exp::makePredictor(spec), compressTrace());
        EXPECT_EQ(stats.total(), compressTrace().size());
        EXPECT_LE(stats.predicted(), stats.total());
        EXPECT_LE(stats.correct(), stats.predicted());
    }
}

// --------------------------- sweep acceptance (vpexp confidence)

/** The sweep over all seven workloads at smoke scale, run once. */
const exp::ConfidenceSweep &
sweep()
{
    static const exp::ConfidenceSweep cached = [] {
        exp::SuiteOptions options;
        options.config.scale = 5;
        return exp::runConfidenceSweep(options);
    }();
    return cached;
}

TEST(ConfidenceSweep, TradeOffIsMonotoneOnEveryWorkload)
{
    const auto &families = exp::confidenceFamilies();
    const auto &points = exp::confidenceSweepPoints();

    for (const auto &run : sweep().runs) {
        SCOPED_TRACE(run.name);
        for (size_t f = 0; f < families.size(); ++f) {
            SCOPED_TRACE(families[f]);
            for (size_t p = 0; p < points.size(); ++p) {
                // Compare consecutive thresholds of the same width;
                // threshold 1 tightens the ungated (threshold-0)
                // column.
                const bool first_of_width =
                        points[p].threshold == 1;
                const auto &tight =
                        run.predictors
                                .at(exp::ConfidenceSweep::specIndex(f, p))
                                .second;
                const auto &loose =
                        first_of_width
                                ? run.predictors
                                          .at(exp::ConfidenceSweep::
                                                      ungatedIndex(f))
                                          .second
                                : run.predictors
                                          .at(exp::ConfidenceSweep::
                                                      specIndex(f, p - 1))
                                          .second;
                SCOPED_TRACE("c" + std::to_string(points[p].width) +
                             "t" + std::to_string(points[p].threshold));

                // Raising the threshold never raises coverage. This
                // is structural, so it is asserted over the *whole*
                // grid: the counter stream does not depend on the
                // threshold, hence the predicted sets are nested.
                EXPECT_LE(tight.predicted(), loose.predicted());

                // ...and never lowers accuracy-when-predicted: the
                // events a tighter gate drops are the low-confidence
                // ones. This direction is statistical, so it is
                // asserted over the coarse part of the grid
                // (thresholds <= 3, where every workload has signal):
                // beyond that, smoke-scale traces sit on accuracy
                // plateaus where single-digit event shifts produce
                // sub-0.1pp jitter (ijpeg's l family stalls at ~92%
                // from c3t3 on). Vacuous once nothing is predicted.
                // Compared as exact cross-multiplied integers so
                // equal ratios with different denominators cannot
                // flake on floating-point rounding.
                if (points[p].threshold <= 3 && tight.predicted() > 0) {
                    EXPECT_GE(tight.correct() * loose.predicted(),
                              loose.correct() * tight.predicted());
                }
            }
        }
    }
}

TEST(ConfidenceSweep, GatingFcm3BeatsUngatedOnProfitAtCostOneAndUp)
{
    const auto &families = exp::confidenceFamilies();
    const auto &points = exp::confidenceSweepPoints();
    size_t fcm3 = families.size();
    for (size_t f = 0; f < families.size(); ++f) {
        if (families[f] == "fcm3")
            fcm3 = f;
    }
    ASSERT_LT(fcm3, families.size());

    for (const double cost : exp::speculationCosts()) {
        SCOPED_TRACE(cost);
        ASSERT_GE(cost, 1.0);
        const double ungated = exp::meanProfit(
                sweep().runs, exp::ConfidenceSweep::ungatedIndex(fcm3),
                cost);
        double best = ungated;
        for (size_t p = 0; p < points.size(); ++p) {
            best = std::max(best,
                            exp::meanProfit(
                                    sweep().runs,
                                    exp::ConfidenceSweep::specIndex(fcm3,
                                                                    p),
                                    cost));
        }
        EXPECT_GT(best, ungated);
    }
}

} // anonymous namespace
