/**
 * @file
 * End-to-end tests for the vpd server, parameterized over both
 * connection engines (thread-per-connection and epoll): request
 * round trips, concurrent-client byte-identity against serial
 * replay, the STATS surface, typed protocol errors over the wire,
 * client disconnect mid-frame, graceful stop with in-flight
 * requests, and Unix-socket transport.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "exp/suite.hh"
#include "net/client.hh"
#include "net/server.hh"
#include "sim/driver.hh"
#include "synth/sequences.hh"

namespace {

using namespace vp;
using vm::TraceEvent;

std::vector<TraceEvent>
sampleStream(size_t n, uint64_t seed)
{
    synth::Rng rng(seed);
    std::vector<TraceEvent> events;
    uint64_t counter = seed;
    for (size_t i = 0; i < n; ++i) {
        TraceEvent event{};
        event.op = (i % 2 == 0) ? isa::Opcode::Add : isa::Opcode::Ld;
        event.cat = isa::opcodeCategory(event.op);
        event.pc = 8 * rng.range(48);
        event.value = (rng.range(2) == 0) ? (counter += 8)
                                          : event.pc * 5;
        events.push_back(event);
    }
    return events;
}

net::TenantStats
serialReference(const std::vector<TraceEvent> &events,
                const std::string &spec)
{
    sim::PredictorBank bank;
    bank.add(exp::makePredictor(spec));
    sim::replayTrace(events, bank);
    return net::TenantStats::from(bank.member(0).stats);
}

class VpdServerTest : public ::testing::TestWithParam<net::Engine>
{
  protected:
    net::VpdServerConfig
    baseConfig() const
    {
        net::VpdServerConfig config;
        config.banks.spec = "fcm3";
        config.engine = GetParam();
        config.epollLoops = 2;
        return config;
    }
};

TEST_P(VpdServerTest, RoundTrips)
{
    net::VpdServer server(baseConfig());
    server.start();
    auto client = net::VpdClient::connectTcp(server.port());

    // Unseen tenant: no stats, predictions invalid.
    EXPECT_FALSE(client.tenantStats(1).has_value());

    // TRAIN runs the full protocol event by event.
    const auto events = sampleStream(600, 3);
    uint64_t predicted = 0, correct = 0;
    for (const auto &event : events) {
        const auto reply = client.train(1, event);
        predicted += reply.predicted;
        correct += reply.correct;
    }
    const auto reference = serialReference(events, "fcm3");
    const auto stats = client.tenantStats(1);
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(*stats, reference);
    EXPECT_EQ(predicted, reference.predicted);
    EXPECT_EQ(correct, reference.correct);

    // PREDICT answers from the trained bank without grading stats.
    (void)client.predict(1, events.back().pc);
    EXPECT_EQ(*client.tenantStats(1), reference);

    server.stop();
}

TEST_P(VpdServerTest, BatchMatchesSerialReplay)
{
    net::VpdServer server(baseConfig());
    server.start();
    auto client = net::VpdClient::connectTcp(server.port());

    const auto events = sampleStream(5000, 5);
    uint64_t predicted = 0, correct = 0;
    for (size_t i = 0; i < events.size(); i += 512) {
        const size_t n = std::min<size_t>(512, events.size() - i);
        const auto reply = client.batch(
                7, vm::TraceSpan(events.data() + i, n));
        EXPECT_EQ(reply.count, n);
        predicted += reply.predicted;
        correct += reply.correct;
    }
    const auto reference = serialReference(events, "fcm3");
    EXPECT_EQ(*client.tenantStats(7), reference);
    EXPECT_EQ(predicted, reference.predicted);
    EXPECT_EQ(correct, reference.correct);
    server.stop();
}

TEST_P(VpdServerTest, ConcurrentClientsByteIdentical)
{
    // The acceptance bar: >= 4 concurrent clients, each replaying its
    // own stream as its own tenant; server-side per-tenant statistics
    // must equal the serial single-bank replay exactly.
    constexpr unsigned kClients = 5;
    net::VpdServer server(baseConfig());
    server.start();

    std::vector<std::vector<TraceEvent>> streams;
    for (unsigned c = 0; c < kClients; ++c)
        streams.push_back(sampleStream(4000, 50 + c));

    std::vector<std::thread> workers;
    std::atomic<int> failures{0};
    for (unsigned c = 0; c < kClients; ++c) {
        workers.emplace_back([&, c] {
            try {
                auto client =
                        net::VpdClient::connectTcp(server.port());
                const auto &events = streams[c];
                for (size_t i = 0; i < events.size(); i += 256) {
                    const size_t n =
                            std::min<size_t>(256, events.size() - i);
                    client.batch(c, vm::TraceSpan(events.data() + i,
                                                  n));
                }
            } catch (...) {
                ++failures;
            }
        });
    }
    for (auto &worker : workers)
        worker.join();
    EXPECT_EQ(failures.load(), 0);

    auto checker = net::VpdClient::connectTcp(server.port());
    for (unsigned c = 0; c < kClients; ++c) {
        const auto stats = checker.tenantStats(c);
        ASSERT_TRUE(stats.has_value()) << "tenant " << c;
        EXPECT_EQ(*stats, serialReference(streams[c], "fcm3"))
                << "tenant " << c;
    }
    server.stop();
}

TEST_P(VpdServerTest, StatsSurface)
{
    net::VpdServer server(baseConfig());
    server.start();
    auto client = net::VpdClient::connectTcp(server.port());

    const auto events = sampleStream(256, 9);
    client.batch(1, vm::TraceSpan(events.data(), events.size()));
    (void)client.predict(1, events[0].pc);

    const std::string text = client.stats();
    EXPECT_NE(text.find("net.connections 1"), std::string::npos)
            << text;
    EXPECT_NE(text.find("net.frames.batch 1"), std::string::npos);
    EXPECT_NE(text.find("net.frames.predict 1"), std::string::npos);
    EXPECT_NE(text.find("net.batch_events 256"), std::string::npos);
    EXPECT_NE(text.find("net.protocol_errors 0"), std::string::npos);
    EXPECT_NE(text.find("net.bytes_in"), std::string::npos);
    EXPECT_NE(text.find("net.bytes_out"), std::string::npos);
    EXPECT_NE(text.find("pool.acquires"), std::string::npos);
    EXPECT_NE(text.find("shard.banks 1"), std::string::npos);
    EXPECT_NE(text.find("shard.contentions"), std::string::npos);

    // The same numbers through the in-process snapshot API.
    const auto snapshot = server.statsSnapshot();
    EXPECT_EQ(snapshot.counter("net.batch_events"), 256u);
    EXPECT_EQ(snapshot.counter("net.frames.batch"), 1u);
    server.stop();
}

TEST_P(VpdServerTest, UnknownOpcodeAnswersTypedErrorAndServerSurvives)
{
    net::VpdServer server(baseConfig());
    server.start();
    {
        auto client = net::VpdClient::connectTcp(server.port());
        std::vector<uint8_t> bad;
        net::putU32(bad, 1);
        net::putU8(bad, 0x42);      // not an opcode
        client.sendRaw(bad.data(), bad.size());
        const auto reply = client.readFrame();
        ASSERT_TRUE(reply.has_value());
        EXPECT_EQ(reply->op, net::Op::Error);
        const auto error = net::decodeErrorReply(
                std::span<const uint8_t>(reply->payload));
        EXPECT_EQ(error.code, net::ProtoError::UnknownOpcode);
        // The server closes the broken connection.
        EXPECT_FALSE(client.readFrame().has_value());
    }
    {
        // Zero length prefix: BadLength.
        auto client = net::VpdClient::connectTcp(server.port());
        const uint8_t zero[4] = {0, 0, 0, 0};
        client.sendRaw(zero, sizeof(zero));
        const auto reply = client.readFrame();
        ASSERT_TRUE(reply.has_value());
        EXPECT_EQ(net::decodeErrorReply(
                          std::span<const uint8_t>(reply->payload))
                          .code,
                  net::ProtoError::BadLength);
    }
    {
        // Oversized length prefix: Oversized.
        auto client = net::VpdClient::connectTcp(server.port());
        std::vector<uint8_t> huge;
        net::putU32(huge, net::kMaxFrameLength + 1);
        client.sendRaw(huge.data(), huge.size());
        const auto reply = client.readFrame();
        ASSERT_TRUE(reply.has_value());
        EXPECT_EQ(net::decodeErrorReply(
                          std::span<const uint8_t>(reply->payload))
                          .code,
                  net::ProtoError::Oversized);
    }
    {
        // Truncated payload inside a well-framed message: Truncated,
        // surfaced through the client as a typed ProtocolError.
        auto client = net::VpdClient::connectTcp(server.port());
        std::vector<uint8_t> bad;
        net::putU32(bad, 1 + 8);    // PREDICT needs 16 payload bytes
        net::putU8(bad, static_cast<uint8_t>(net::Op::Predict));
        net::putU64(bad, 1);
        client.sendRaw(bad.data(), bad.size());
        const auto reply = client.readFrame();
        ASSERT_TRUE(reply.has_value());
        EXPECT_EQ(net::decodeErrorReply(
                          std::span<const uint8_t>(reply->payload))
                          .code,
                  net::ProtoError::Truncated);
    }

    // After all that abuse the server still serves new clients.
    auto client = net::VpdClient::connectTcp(server.port());
    const auto events = sampleStream(64, 2);
    const auto reply =
            client.batch(3, vm::TraceSpan(events.data(), events.size()));
    EXPECT_EQ(reply.count, events.size());
    const auto snapshot = server.statsSnapshot();
    EXPECT_EQ(snapshot.counter("net.protocol_errors"), 4u);
    server.stop();
}

TEST_P(VpdServerTest, ClientDisconnectMidFrameIsHarmless)
{
    net::VpdServer server(baseConfig());
    server.start();
    {
        auto client = net::VpdClient::connectTcp(server.port());
        // Announce a 1000-byte frame, send only a sliver, vanish.
        std::vector<uint8_t> partial;
        net::putU32(partial, 1000);
        net::putU8(partial, static_cast<uint8_t>(net::Op::Batch));
        net::putU64(partial, 1);
        client.sendRaw(partial.data(), partial.size());
        client.close();
    }
    // The server shrugs it off and keeps serving.
    auto client = net::VpdClient::connectTcp(server.port());
    const auto events = sampleStream(128, 7);
    EXPECT_EQ(client.batch(1, vm::TraceSpan(events.data(),
                                            events.size()))
                      .count,
              events.size());
    server.stop();
}

TEST_P(VpdServerTest, StopWithInFlightRequestsDoesNotHang)
{
    net::VpdServer server(baseConfig());
    server.start();

    constexpr unsigned kClients = 4;
    std::atomic<bool> stopSending{false};
    std::atomic<uint64_t> completed{0};
    std::vector<std::thread> workers;
    for (unsigned c = 0; c < kClients; ++c) {
        workers.emplace_back([&, c] {
            try {
                auto client =
                        net::VpdClient::connectTcp(server.port());
                const auto events = sampleStream(512, 80 + c);
                while (!stopSending.load()) {
                    client.batch(c, vm::TraceSpan(events.data(),
                                                  events.size()));
                    ++completed;
                }
            } catch (...) {
                // Expected once the server stops under our feet.
            }
        });
    }
    // Let traffic build, then stop with requests in flight.
    while (completed.load() < 8)
        std::this_thread::yield();
    server.stop();
    stopSending.store(true);
    for (auto &worker : workers)
        worker.join();
    EXPECT_GE(completed.load(), 8u);
    // Idempotent.
    server.stop();
}

TEST_P(VpdServerTest, UnixSocketTransport)
{
    const std::string path =
            (std::filesystem::temp_directory_path() /
             (std::string("vpd-test-") +
              net::engineName(GetParam()) + ".sock"))
                    .string();
    std::filesystem::remove(path);

    auto config = baseConfig();
    config.unixPath = path;
    net::VpdServer server(config);
    server.start();

    auto client = net::VpdClient::connectUnix(path);
    const auto events = sampleStream(2000, 15);
    for (size_t i = 0; i < events.size(); i += 256) {
        const size_t n = std::min<size_t>(256, events.size() - i);
        client.batch(4, vm::TraceSpan(events.data() + i, n));
    }
    EXPECT_EQ(*client.tenantStats(4), serialReference(events, "fcm3"));
    server.stop();
    std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(Engines, VpdServerTest,
                         ::testing::Values(net::Engine::Thread,
                                           net::Engine::Epoll),
                         [](const auto &info) {
                             return std::string(
                                     net::engineName(info.param));
                         });

} // namespace
