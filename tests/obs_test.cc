/**
 * @file
 * Tests for the observability subsystem (src/obs/): registry merge
 * exactness under concurrent producer threads, the log2 histogram's
 * boundary buckets, gauge high-water semantics, snapshot merging, and
 * the Chrome trace-event log's JSON shape and RAII span behavior.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/instrumentation.hh"
#include "obs/registry.hh"
#include "obs/trace_log.hh"

namespace {

using namespace vp;

/** Balanced-brace / balanced-bracket check outside JSON strings. */
void
expectStructurallyValidJson(const std::string &text)
{
    int braces = 0, brackets = 0;
    bool in_string = false, escaped = false;
    for (const char c : text) {
        if (escaped) {
            escaped = false;
            continue;
        }
        if (c == '\\') {
            escaped = true;
        } else if (c == '"') {
            in_string = !in_string;
        } else if (!in_string) {
            braces += c == '{' ? 1 : c == '}' ? -1 : 0;
            brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
            EXPECT_GE(braces, 0);
            EXPECT_GE(brackets, 0);
        }
    }
    EXPECT_FALSE(in_string);
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

TEST(Registry, CountersMergeExactlyAcrossConcurrentThreads)
{
    // The cell-scheduler contract: N producer threads sharing one
    // registry and emitting the *same* names must sum exactly once
    // they have been joined. Deterministic for every worker count.
    for (unsigned threads = 1; threads <= 8; ++threads) {
        obs::Registry registry;
        constexpr uint64_t perThread = 10000;
        std::vector<std::thread> workers;
        for (unsigned t = 0; t < threads; ++t) {
            workers.emplace_back([&registry, t] {
                auto &shard = registry.local();
                for (uint64_t i = 0; i < perThread; ++i) {
                    shard.add("shared.counter", 1);
                    shard.add("shared.bytes", 3);
                    shard.record("shared.hist", i % 17);
                }
                shard.gauge("shared.peak", 100 + t);
            });
        }
        for (auto &worker : workers)
            worker.join();

        const obs::Snapshot snap = registry.snapshot();
        EXPECT_EQ(snap.counter("shared.counter"), perThread * threads);
        EXPECT_EQ(snap.counter("shared.bytes"), 3 * perThread * threads);
        ASSERT_EQ(snap.histograms.count("shared.hist"), 1u);
        EXPECT_EQ(snap.histograms.at("shared.hist").count,
                  perThread * threads);
        ASSERT_EQ(snap.gauges.count("shared.peak"), 1u);
        EXPECT_EQ(snap.gauges.at("shared.peak"), 100 + threads - 1)
                << "gauges keep the maximum across shards";
    }
}

TEST(Registry, AbsentCounterReadsAsZero)
{
    obs::Registry registry;
    EXPECT_EQ(registry.snapshot().counter("never.emitted"), 0u);
}

TEST(Registry, TwoRegistriesOnOneThreadStayIndependent)
{
    // Registry::local() caches shards per (thread, registry id); two
    // registries touched from the same thread must not cross-talk.
    obs::Registry a, b;
    a.add("x", 1);
    b.add("x", 2);
    a.add("x", 4);
    EXPECT_EQ(a.snapshot().counter("x"), 5u);
    EXPECT_EQ(b.snapshot().counter("x"), 2u);
}

TEST(Histogram, BoundaryValuesLandInDistinctBuckets)
{
    // Bucket = bit width: 0 -> bucket 0, 1 -> bucket 1, UINT64_MAX ->
    // bucket 64. All three must be representable and distinct.
    EXPECT_EQ(obs::Histogram::bucketOf(0), 0);
    EXPECT_EQ(obs::Histogram::bucketOf(1), 1);
    EXPECT_EQ(obs::Histogram::bucketOf(2), 2);
    EXPECT_EQ(obs::Histogram::bucketOf(3), 2);
    EXPECT_EQ(obs::Histogram::bucketOf(4), 3);
    EXPECT_EQ(obs::Histogram::bucketOf(UINT64_MAX), 64);
    EXPECT_EQ(obs::Histogram::bucketLow(0), 0u);
    EXPECT_EQ(obs::Histogram::bucketLow(1), 1u);
    EXPECT_EQ(obs::Histogram::bucketLow(64), uint64_t{1} << 63);

    obs::Histogram hist;
    hist.record(0);
    hist.record(1);
    hist.record(UINT64_MAX);
    EXPECT_EQ(hist.count, 3u);
    EXPECT_EQ(hist.min, 0u);
    EXPECT_EQ(hist.max, UINT64_MAX);
    EXPECT_EQ(hist.buckets[0], 1u);
    EXPECT_EQ(hist.buckets[1], 1u);
    EXPECT_EQ(hist.buckets[64], 1u);
}

TEST(Histogram, WeightedRecordMatchesRepeatedRecord)
{
    obs::Histogram repeated, weighted;
    for (int i = 0; i < 37; ++i)
        repeated.record(5);
    repeated.record(900);
    weighted.record(5, 37);
    weighted.record(900, 1);
    weighted.record(123, 0);        // weight 0: a no-op, not a sample
    EXPECT_EQ(weighted.count, repeated.count);
    EXPECT_EQ(weighted.sum, repeated.sum);
    EXPECT_EQ(weighted.min, repeated.min);
    EXPECT_EQ(weighted.max, repeated.max);
    EXPECT_EQ(weighted.buckets, repeated.buckets);
    EXPECT_DOUBLE_EQ(weighted.mean(), repeated.mean());
}

TEST(Snapshot, MergeSumsCountersAndKeepsGaugeMaxima)
{
    obs::Snapshot a, b;
    a.counters["n"] = 3;
    b.counters["n"] = 4;
    a.gauges["peak"] = 10;
    b.gauges["peak"] = 7;
    b.gauges["only_b"] = 2;
    a.histograms["h"].record(1);
    b.histograms["h"].record(16);
    a.merge(b);
    EXPECT_EQ(a.counters["n"], 7u);
    EXPECT_EQ(a.gauges["peak"], 10u);
    EXPECT_EQ(a.gauges["only_b"], 2u);
    EXPECT_EQ(a.histograms["h"].count, 2u);
    EXPECT_EQ(a.histograms["h"].max, 16u);
    EXPECT_FALSE(a.empty());
    EXPECT_TRUE(obs::Snapshot{}.empty());
}

TEST(TraceLog, RendersLoadableTraceEventJson)
{
    obs::TraceLog log;
    {
        auto span = obs::TraceLog::span(&log, "cell gcc", "cell");
        span.arg("events", "4096");
    }
    log.complete("record xlisp", "trace-cache",
                 obs::TraceLog::Clock::now(),
                 obs::TraceLog::Clock::now());
    EXPECT_EQ(log.eventCount(), 2u);

    const std::string json = log.render();
    expectStructurallyValidJson(json);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"cell gcc\""), std::string::npos);
    EXPECT_NE(json.find("\"events\": \"4096\""), std::string::npos);
    // Lane metadata so the viewer names worker threads.
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);

    std::ostringstream out;
    log.write(out);
    EXPECT_EQ(out.str(), json);
}

TEST(TraceLog, NullLogYieldsInertSpans)
{
    auto span = obs::TraceLog::span(nullptr, "ignored", "ignored");
    span.arg("k", "v");
    span.close();       // must be safe repeatedly on an inert span
    span.close();
}

TEST(TraceLog, MoveAssignClosesTheCurrentSpanFirst)
{
    // The warmup -> region transition in replayTraceRegion reassigns
    // the live span; the assignment must record the old one.
    obs::TraceLog log;
    {
        auto span = obs::TraceLog::span(&log, "warmup", "replay");
        span = obs::TraceLog::span(&log, "region", "replay");
        EXPECT_EQ(log.eventCount(), 1u) << "warmup closed by assignment";
    }
    EXPECT_EQ(log.eventCount(), 2u);
    const std::string json = log.render();
    EXPECT_NE(json.find("\"warmup\""), std::string::npos);
    EXPECT_NE(json.find("\"region\""), std::string::npos);
}

TEST(Instrumentation, NullHandleHelpersAreNoOps)
{
    obs::add(nullptr, "x");
    obs::gauge(nullptr, "x", 1);
    obs::record(nullptr, "x", 1);
    auto span = obs::span(nullptr, "x", "y");

    // A handle with a registry but no trace log still counts.
    obs::Registry registry;
    obs::Instrumentation instr(&registry);
    obs::add(&instr, "counted", 2);
    auto inert = obs::span(&instr, "x", "y");
    EXPECT_EQ(registry.snapshot().counter("counted"), 2u);
}

} // namespace
