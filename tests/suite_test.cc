/**
 * @file
 * Tests for the experiment harness: predictor spec parsing, suite
 * running, and averaging.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include <unistd.h>

#include "exp/suite.hh"

namespace {

using namespace vp;
using namespace vp::exp;

TEST(MakePredictor, ParsesEverySpec)
{
    for (const char *spec :
         {"l", "l-sat", "l-consec", "s", "s-sat", "s2", "fcm0", "fcm1",
          "fcm3", "fcm8", "fcm2-full", "fcm2-pure", "fcm2-sat",
          "hybrid"}) {
        const auto pred = makePredictor(spec);
        ASSERT_NE(pred, nullptr) << spec;
        // Round trip through name() for the canonical specs (the
        // hybrid names its components; counter width is not a model).
        const std::string s(spec);
        if (s.find("sat") == std::string::npos && s != "hybrid") {
            EXPECT_EQ(pred->name(), spec);
        }
    }
    EXPECT_EQ(makePredictor("hybrid")->name(), "hyb(s2+fcm3)");
    // fcmK-sat keeps the plain name (counter width is not a model).
    EXPECT_EQ(makePredictor("fcm2-sat")->name(), "fcm2");
}

TEST(MakePredictor, RejectsUnknownSpecs)
{
    EXPECT_THROW(makePredictor("bogus"), std::invalid_argument);
    EXPECT_THROW(makePredictor("fcmx"), std::invalid_argument);
    EXPECT_THROW(makePredictor("fcm2-weird"), std::invalid_argument);
    EXPECT_THROW(makePredictor(""), std::invalid_argument);
}

TEST(Suite, RunsASubsetWithTrackers)
{
    SuiteOptions options;
    options.predictors = {"l", "s2", "fcm2"};
    options.benchmarks = {"compress", "xlisp"};
    options.config.scale = 5;
    options.overlap = 3;
    options.improvementA = 2;       // fcm2 over s2
    options.improvementB = 1;
    options.values = true;

    const auto runs = runSuite(options);
    ASSERT_EQ(runs.size(), 2u);
    for (const auto &run : runs) {
        SCOPED_TRACE(run.name);
        ASSERT_EQ(run.predictors.size(), 3u);
        EXPECT_EQ(run.predictors[0].first, "l");
        EXPECT_GT(run.predictors[0].second.total(), 0u);
        ASSERT_TRUE(run.overlap.has_value());
        EXPECT_EQ(run.overlap->total(),
                  run.predictors[0].second.total());
        ASSERT_TRUE(run.improvement.has_value());
        ASSERT_TRUE(run.values.has_value());
        EXPECT_GT(run.staticPredicted, 0u);
    }
}

TEST(Suite, AccuracyPctAndMean)
{
    SuiteOptions options;
    options.predictors = {"l", "s2"};
    options.benchmarks = {"m88ksim", "go"};
    options.config.scale = 5;
    const auto runs = runSuite(options);
    ASSERT_EQ(runs.size(), 2u);

    const double mean_l = meanAccuracyPct(runs, 0);
    EXPECT_NEAR(mean_l,
                (runs[0].accuracyPct(0) + runs[1].accuracyPct(0)) / 2,
                1e-9);
    for (const auto &run : runs) {
        EXPECT_GE(run.accuracyPct(1), 0.0);
        EXPECT_LE(run.accuracyPct(1), 100.0);
    }
}

TEST(Suite, EmptyBenchmarksMeansAllSeven)
{
    SuiteOptions options;
    options.predictors = {"l"};
    options.config.scale = 3;
    const auto runs = runSuite(options);
    EXPECT_EQ(runs.size(), 7u);
}

/** Full integer-count equality; doubles derive from these counts. */
void
expectIdenticalRuns(const std::vector<BenchmarkRun> &a,
                    const std::vector<BenchmarkRun> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(a[i].name);
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].exec.retired, b[i].exec.retired);
        EXPECT_EQ(a[i].exec.predicted, b[i].exec.predicted);
        EXPECT_EQ(a[i].exec.byCategory, b[i].exec.byCategory);
        EXPECT_EQ(a[i].staticPredicted, b[i].staticPredicted);
        EXPECT_EQ(a[i].staticByCategory, b[i].staticByCategory);
        ASSERT_EQ(a[i].predictors.size(), b[i].predictors.size());
        for (size_t p = 0; p < a[i].predictors.size(); ++p) {
            SCOPED_TRACE(a[i].predictors[p].first);
            const auto &sa = a[i].predictors[p].second;
            const auto &sb = b[i].predictors[p].second;
            EXPECT_EQ(a[i].predictors[p].first, b[i].predictors[p].first);
            EXPECT_EQ(sa.total(), sb.total());
            EXPECT_EQ(sa.predicted(), sb.predicted());
            EXPECT_EQ(sa.correct(), sb.correct());
            for (int c = 0; c < isa::numCategories; ++c) {
                const auto cat = static_cast<isa::Category>(c);
                EXPECT_EQ(sa.total(cat), sb.total(cat));
                EXPECT_EQ(sa.predicted(cat), sb.predicted(cat));
                EXPECT_EQ(sa.correct(cat), sb.correct(cat));
            }
        }
    }
}

TEST(Suite, ParallelMatchesSerialInPaperOrder)
{
    using Clock = std::chrono::steady_clock;

    SuiteOptions options;
    options.predictors = {"l", "s2", "fcm2"};
    options.config.scale = 20;

    options.parallelism = 1;
    const auto serial_start = Clock::now();
    const auto serial = runSuite(options);
    const auto serial_ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      serial_start)
                    .count();

    options.parallelism = 7;        // one worker per benchmark, even
                                    // on a single-core host, so the
                                    // pool path is always exercised
    const auto parallel_start = Clock::now();
    const auto parallel = runSuite(options);
    const auto parallel_ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      parallel_start)
                    .count();

    // Paper order, regardless of which worker finished first.
    ASSERT_EQ(parallel.size(), 7u);
    size_t i = 0;
    for (const auto &info : workloads::allWorkloads())
        EXPECT_EQ(parallel[i++].name, info.name);

    expectIdenticalRuns(serial, parallel);

    // The timed check of the parallel suite: recorded, not asserted —
    // under `ctest -j` the other test binaries saturate the cores, so
    // a wall-clock assertion would flake on loaded or small hosts.
    // On an idle multi-core host the log shows parallel < serial.
    RecordProperty("serial_ms", static_cast<int>(serial_ms));
    RecordProperty("parallel_ms", static_cast<int>(parallel_ms));
    std::printf("[ suite    ] serial %.0f ms, parallel %.0f ms "
                "(%u hardware threads)\n",
                serial_ms, parallel_ms,
                std::thread::hardware_concurrency());
}

/**
 * The record-once/replay-many path: byte-identical stats to live VM
 * execution for all seven workloads, and the warm pass skips the VM
 * entirely (the wall-clock win is recorded in the timing log).
 */
TEST(Suite, TraceReplayMatchesLiveVmByteForByte)
{
    using Clock = std::chrono::steady_clock;
    namespace fs = std::filesystem;

    const fs::path cache =
            fs::temp_directory_path() /
            ("vp-suite-test-traces-" + std::to_string(::getpid()));
    fs::remove_all(cache);

    SuiteOptions options;
    options.predictors = {"l", "s2", "fcm2", "hybrid", "fcm2:c2t2"};
    options.config.scale = 5;

    const auto live_start = Clock::now();
    const auto live = runSuite(options);
    const auto live_ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      live_start)
                    .count();

    options.traceReplay = true;
    options.traceCacheDir = cache.string();
    const auto cold_start = Clock::now();
    const auto cold = runSuite(options);    // records, then replays
    const auto cold_ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      cold_start)
                    .count();
    const auto warm_start = Clock::now();
    const auto warm = runSuite(options);    // replays the cache only
    const auto warm_ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      warm_start)
                    .count();

    ASSERT_EQ(live.size(), 7u);
    expectIdenticalRuns(live, cold);
    expectIdenticalRuns(live, warm);

    // All seven traces (plus sidecars) landed in the cache dir.
    size_t files = 0;
    for (const auto &entry : fs::directory_iterator(cache))
        files += entry.is_regular_file() ? 1 : 0;
    EXPECT_EQ(files, 14u);

    // Timing is recorded, not asserted (loaded CI hosts): on an idle
    // host the warm pass shows the VM-execution win.
    RecordProperty("live_ms", static_cast<int>(live_ms));
    RecordProperty("cold_replay_ms", static_cast<int>(cold_ms));
    RecordProperty("warm_replay_ms", static_cast<int>(warm_ms));
    std::printf("[ suite    ] live %.0f ms, cold replay %.0f ms, "
                "warm replay %.0f ms\n",
                live_ms, cold_ms, warm_ms);

    fs::remove_all(cache);
}

TEST(Suite, ParallelPropagatesWorkloadErrors)
{
    SuiteOptions options;
    options.predictors = {"l"};
    options.benchmarks = {"compress", "no-such-workload", "xlisp"};
    options.config.scale = 5;
    EXPECT_THROW(runSuite(options), std::out_of_range);
}

TEST(Suite, ReportedCategoriesMatchTheFigures)
{
    const auto &cats = reportedCategories();
    ASSERT_EQ(cats.size(), 5u);
    EXPECT_EQ(cats[0], isa::Category::AddSub);
    EXPECT_EQ(cats[1], isa::Category::Loads);
    EXPECT_EQ(cats[4], isa::Category::Set);
}

} // anonymous namespace
