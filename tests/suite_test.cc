/**
 * @file
 * Tests for the experiment harness: predictor spec parsing, suite
 * running, and averaging.
 */

#include <gtest/gtest.h>

#include "exp/suite.hh"

namespace {

using namespace vp;
using namespace vp::exp;

TEST(MakePredictor, ParsesEverySpec)
{
    for (const char *spec :
         {"l", "l-sat", "l-consec", "s", "s-sat", "s2", "fcm0", "fcm1",
          "fcm3", "fcm8", "fcm2-full", "fcm2-pure", "fcm2-sat",
          "hybrid"}) {
        const auto pred = makePredictor(spec);
        ASSERT_NE(pred, nullptr) << spec;
        // Round trip through name() for the canonical specs (the
        // hybrid names its components; counter width is not a model).
        const std::string s(spec);
        if (s.find("sat") == std::string::npos && s != "hybrid") {
            EXPECT_EQ(pred->name(), spec);
        }
    }
    EXPECT_EQ(makePredictor("hybrid")->name(), "hyb(s2+fcm3)");
    // fcmK-sat keeps the plain name (counter width is not a model).
    EXPECT_EQ(makePredictor("fcm2-sat")->name(), "fcm2");
}

TEST(MakePredictor, RejectsUnknownSpecs)
{
    EXPECT_THROW(makePredictor("bogus"), std::invalid_argument);
    EXPECT_THROW(makePredictor("fcmx"), std::invalid_argument);
    EXPECT_THROW(makePredictor("fcm2-weird"), std::invalid_argument);
    EXPECT_THROW(makePredictor(""), std::invalid_argument);
}

TEST(Suite, RunsASubsetWithTrackers)
{
    SuiteOptions options;
    options.predictors = {"l", "s2", "fcm2"};
    options.benchmarks = {"compress", "xlisp"};
    options.config.scale = 5;
    options.overlap = 3;
    options.improvementA = 2;       // fcm2 over s2
    options.improvementB = 1;
    options.values = true;

    const auto runs = runSuite(options);
    ASSERT_EQ(runs.size(), 2u);
    for (const auto &run : runs) {
        SCOPED_TRACE(run.name);
        ASSERT_EQ(run.predictors.size(), 3u);
        EXPECT_EQ(run.predictors[0].first, "l");
        EXPECT_GT(run.predictors[0].second.total(), 0u);
        ASSERT_TRUE(run.overlap.has_value());
        EXPECT_EQ(run.overlap->total(),
                  run.predictors[0].second.total());
        ASSERT_TRUE(run.improvement.has_value());
        ASSERT_TRUE(run.values.has_value());
        EXPECT_GT(run.staticPredicted, 0u);
    }
}

TEST(Suite, AccuracyPctAndMean)
{
    SuiteOptions options;
    options.predictors = {"l", "s2"};
    options.benchmarks = {"m88ksim", "go"};
    options.config.scale = 5;
    const auto runs = runSuite(options);
    ASSERT_EQ(runs.size(), 2u);

    const double mean_l = meanAccuracyPct(runs, 0);
    EXPECT_NEAR(mean_l,
                (runs[0].accuracyPct(0) + runs[1].accuracyPct(0)) / 2,
                1e-9);
    for (const auto &run : runs) {
        EXPECT_GE(run.accuracyPct(1), 0.0);
        EXPECT_LE(run.accuracyPct(1), 100.0);
    }
}

TEST(Suite, EmptyBenchmarksMeansAllSeven)
{
    SuiteOptions options;
    options.predictors = {"l"};
    options.config.scale = 3;
    const auto runs = runSuite(options);
    EXPECT_EQ(runs.size(), 7u);
}

TEST(Suite, ReportedCategoriesMatchTheFigures)
{
    const auto &cats = reportedCategories();
    ASSERT_EQ(cats.size(), 5u);
    EXPECT_EQ(cats[0], isa::Category::AddSub);
    EXPECT_EQ(cats[1], isa::Category::Loads);
    EXPECT_EQ(cats[4], isa::Category::Set);
}

} // anonymous namespace
