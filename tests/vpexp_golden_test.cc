/**
 * @file
 * Golden pins for the experiment registry: every legacy experiment
 * must produce numerically identical results through the new vpexp
 * path, and one small experiment's CSV is pinned byte-for-byte.
 *
 * Regenerating the CSV golden after an intentional change:
 *   build/bench/vpexp table1 --out /tmp/g --format csv
 *   cp /tmp/g/table1.learning.csv tests/golden/table1.learning.csv
 * (table1 runs on synthetic sequences, so the file is independent of
 * workload scale and host.)
 *
 * The spec-name golden (spec_names.txt) pins the canonical spelling
 * of every predictor spec any registered experiment banks, so
 * accidental grammar drift — a suffix rendered differently, a default
 * silently changed — fails here before it silently re-keys the cell
 * scheduler's dedup. Regenerate after an intentional grammar change
 * (rewrites tests/golden/spec_names.txt in place, then re-run):
 *   VP_PRINT_GOLDEN=1 build/tests/vpexp_golden_test \
 *     --gtest_filter='*SpecNames*'
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "exp/experiment.hh"
#include "exp/report.hh"
#include "exp/spec.hh"
#include "exp/suite.hh"

namespace {

using namespace vp;
using namespace vp::exp;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Run one registered experiment on a fresh dry-run scheduler. */
Report
runExperiment(const std::string &name, const ExperimentConfig &config)
{
    const Experiment *experiment = registry().find(name);
    if (experiment == nullptr)
        throw std::runtime_error("no experiment " + name);
    CellScheduler scheduler(config);
    ExperimentContext ctx(config, scheduler);
    experiment->run(ctx);
    return std::move(ctx.report());
}

TEST(VpexpGolden, Table1CsvMatchesGoldenFile)
{
    const Report report = runExperiment("table1", {});
    ASSERT_EQ(report.tables().size(), 1u);
    const auto &table = report.tables().front();
    EXPECT_EQ(table.id(), "learning");

    const std::string golden =
            slurp(std::string(VP_GOLDEN_DIR) + "/table1.learning.csv");
    ASSERT_FALSE(golden.empty())
            << "missing golden file under " << VP_GOLDEN_DIR;
    EXPECT_EQ(report_writer::renderCsv(table), golden)
            << "table1 output drifted; see the regeneration recipe in "
               "this file's header";
}

/** Format a double exactly as ReportTable::cell(double, 1) renders. */
std::string
fmt1(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f", value);
    return buf;
}

/**
 * The numbers-identical pin: figure3 through the registry equals the
 * legacy computation path — a direct exp::runSuite over the same
 * predictors with live VM execution, exactly what
 * bench/exp_figure3.cc did before the refactor. One representative
 * per shape; every other suite experiment shares runBenchmark with
 * this path by construction (and the registry smoke test runs them
 * all).
 */
TEST(VpexpGolden, Figure3MatchesLegacyRunSuitePath)
{
    ExperimentConfig config;
    config.dryRun = true;
    const Report report = runExperiment("figure3", config);
    ASSERT_EQ(report.tables().size(), 1u);
    const auto &table = report.tables().front();

    // The legacy path: serial runSuite, live VM, no trace replay.
    SuiteOptions options;
    options.predictors = {"l", "s2", "fcm1", "fcm2", "fcm3"};
    options.config.scale = dryRunScale;
    options.parallelism = 1;
    const auto runs = runSuite(options);

    // Rows: header, then one per benchmark, then the mean row.
    const auto &rows = table.rows();
    ASSERT_EQ(rows.size(), runs.size() + 2);
    for (size_t i = 0; i < runs.size(); ++i) {
        const auto &row = rows[i + 1];
        ASSERT_EQ(row.size(), 7u);
        EXPECT_EQ(row[0].text, runs[i].name);
        for (size_t p = 0; p < options.predictors.size(); ++p) {
            EXPECT_EQ(row[p + 1].text, fmt1(runs[i].accuracyPct(p)))
                    << runs[i].name << " " << options.predictors[p];
        }
    }
    const auto &mean_row = rows.back();
    for (size_t p = 0; p < options.predictors.size(); ++p) {
        EXPECT_EQ(mean_row[p + 1].text,
                  fmt1(meanAccuracyPct(runs, p)));
    }
}

/**
 * Every spec the 24-experiment registry banks is already canonical
 * (its canonical name is byte-identical to the spelling the
 * experiment uses — the compatibility bar the PredictorSpec redesign
 * had to clear), and the full sorted set matches the golden file.
 */
TEST(VpexpGolden, RegistrySpecNamesAreCanonicalAndMatchGoldenFile)
{
    ExperimentConfig config;
    config.dryRun = true;
    std::set<std::string> specs;
    for (const auto &experiment : registry().all()) {
        if (!experiment.grid)
            continue;
        for (const auto &suite : experiment.grid(config)) {
            for (const auto &spec : suite.predictors)
                specs.insert(spec);
        }
    }
    ASSERT_GT(specs.size(), 100u);

    std::ostringstream rendered;
    for (const auto &spec : specs) {
        const std::string canonical = parseSpec(spec).canonicalName();
        EXPECT_EQ(canonical, spec)
                << "a registry spec stopped being canonical";
        rendered << canonical << '\n';
    }

    if (std::getenv("VP_PRINT_GOLDEN") != nullptr) {
        std::ofstream out(std::string(VP_GOLDEN_DIR) +
                          "/spec_names.txt");
        out << rendered.str();
        ASSERT_TRUE(out.good());
        GTEST_SKIP() << "rewrote spec_names.txt; re-run without "
                        "VP_PRINT_GOLDEN";
    }

    const std::string golden =
            slurp(std::string(VP_GOLDEN_DIR) + "/spec_names.txt");
    ASSERT_FALSE(golden.empty())
            << "missing golden file under " << VP_GOLDEN_DIR;
    EXPECT_EQ(rendered.str(), golden)
            << "registry spec set or grammar drifted; see the "
               "regeneration recipe in this file's header";
}

/** Same pin for the counting shape (tables 2/4/5): exact integers. */
TEST(VpexpGolden, Table2MatchesLegacyRunSuitePath)
{
    ExperimentConfig config;
    config.dryRun = true;
    const Report report = runExperiment("table2", config);
    ASSERT_EQ(report.tables().size(), 2u);
    const auto &table = report.tables()[1];   // characteristics
    EXPECT_EQ(table.id(), "characteristics");

    SuiteOptions options;
    options.predictors = {"l"};
    options.config.scale = dryRunScale;
    options.parallelism = 1;
    const auto runs = runSuite(options);

    const auto &rows = table.rows();
    ASSERT_EQ(rows.size(), runs.size() + 1);
    for (size_t i = 0; i < runs.size(); ++i) {
        const auto &row = rows[i + 1];
        EXPECT_EQ(row[0].text, runs[i].name);
        EXPECT_EQ(row[1].text,
                  std::to_string(runs[i].exec.retired / 1000));
        EXPECT_EQ(row[2].text,
                  std::to_string(runs[i].exec.predicted / 1000));
        EXPECT_EQ(row[3].text,
                  fmt1(100.0 * runs[i].exec.predictedFraction()));
    }
}

} // anonymous namespace
