/**
 * @file
 * Unit tests for the VM: instruction semantics, trace emission,
 * execution statistics, faults and limits.
 */

#include <gtest/gtest.h>

#include "masm/builder.hh"
#include "synth/sequences.hh"
#include "vm/machine.hh"

namespace {

using namespace vp;
using namespace vp::masm;
using namespace vp::masm::reg;
using vm::ExitReason;

/** Run a builder-made program and return the machine for inspection. */
struct RunHelper
{
    vm::Machine machine;
    vm::RecordingSink trace;
    vm::RunResult result;

    explicit RunHelper(const isa::Program &prog,
                       vm::MachineConfig config = {})
        : machine(config)
    {
        machine.setSink(&trace);
        result = machine.run(prog);
    }
};

/** Build a program computing `op(a, b)` into t2 and halting. */
isa::Program
binop(void (ProgramBuilder::*emit)(int, int, int), int64_t lhs,
      int64_t rhs)
{
    ProgramBuilder b("binop");
    b.li(t0, lhs);
    b.li(t1, rhs);
    (b.*emit)(3 /* t2 */, t0, t1);
    b.halt();
    return b.build();
}

int64_t
evalBinop(void (ProgramBuilder::*emit)(int, int, int), int64_t a,
          int64_t b)
{
    RunHelper run(binop(emit, a, b));
    EXPECT_TRUE(run.result.ok());
    return run.machine.reg(t2);
}

TEST(VmArithmetic, BasicOps)
{
    EXPECT_EQ(evalBinop(&ProgramBuilder::add, 2, 3), 5);
    EXPECT_EQ(evalBinop(&ProgramBuilder::sub, 2, 3), -1);
    EXPECT_EQ(evalBinop(&ProgramBuilder::mul, -4, 6), -24);
    EXPECT_EQ(evalBinop(&ProgramBuilder::div, 7, 2), 3);
    EXPECT_EQ(evalBinop(&ProgramBuilder::div, -7, 2), -3);
    EXPECT_EQ(evalBinop(&ProgramBuilder::rem, 7, 2), 1);
    EXPECT_EQ(evalBinop(&ProgramBuilder::rem, -7, 2), -1);
}

TEST(VmArithmetic, DivisionEdgeCases)
{
    // Division by zero is defined, not faulting (see machine.hh).
    EXPECT_EQ(evalBinop(&ProgramBuilder::div, 42, 0), 0);
    EXPECT_EQ(evalBinop(&ProgramBuilder::rem, 42, 0), 42);
    const int64_t min = std::numeric_limits<int64_t>::min();
    EXPECT_EQ(evalBinop(&ProgramBuilder::div, min, -1), min);
    EXPECT_EQ(evalBinop(&ProgramBuilder::rem, min, -1), 0);
}

TEST(VmArithmetic, AddWrapsModulo64)
{
    const int64_t max = std::numeric_limits<int64_t>::max();
    EXPECT_EQ(evalBinop(&ProgramBuilder::add, max, 1),
              std::numeric_limits<int64_t>::min());
}

TEST(VmArithmetic, MulhComputesHighHalf)
{
    EXPECT_EQ(evalBinop(&ProgramBuilder::mulh, int64_t(1) << 40,
                        int64_t(1) << 40),
              int64_t(1) << 16);
    EXPECT_EQ(evalBinop(&ProgramBuilder::mulh, -1, 1), -1);
}

TEST(VmLogic, Operations)
{
    EXPECT_EQ(evalBinop(&ProgramBuilder::and_, 0b1100, 0b1010), 0b1000);
    EXPECT_EQ(evalBinop(&ProgramBuilder::or_, 0b1100, 0b1010), 0b1110);
    EXPECT_EQ(evalBinop(&ProgramBuilder::xor_, 0b1100, 0b1010), 0b0110);
    EXPECT_EQ(evalBinop(&ProgramBuilder::nor, 0, 0), -1);
}

TEST(VmShift, AmountsAreMaskedTo6Bits)
{
    EXPECT_EQ(evalBinop(&ProgramBuilder::sll, 1, 65), 2);
    EXPECT_EQ(evalBinop(&ProgramBuilder::srl, -1, 60), 15);
    EXPECT_EQ(evalBinop(&ProgramBuilder::sra, -16, 2), -4);
}

TEST(VmSet, Comparisons)
{
    EXPECT_EQ(evalBinop(&ProgramBuilder::slt, -1, 0), 1);
    EXPECT_EQ(evalBinop(&ProgramBuilder::sltu, -1, 0), 0); // unsigned
    EXPECT_EQ(evalBinop(&ProgramBuilder::seq, 5, 5), 1);
    EXPECT_EQ(evalBinop(&ProgramBuilder::sne, 5, 5), 0);
    EXPECT_EQ(evalBinop(&ProgramBuilder::min, 3, -7), -7);
    EXPECT_EQ(evalBinop(&ProgramBuilder::max, 3, -7), 3);
}

TEST(VmRegisters, R0IsHardwiredToZero)
{
    ProgramBuilder b("r0");
    b.addi(0, 0, 42);               // attempt to write r0
    b.addi(t0, 0, 1);               // t0 = r0 + 1
    b.halt();
    RunHelper run(b.build());
    ASSERT_TRUE(run.result.ok());
    EXPECT_EQ(run.machine.reg(0), 0);
    EXPECT_EQ(run.machine.reg(t0), 1);
}

TEST(VmMemory, LoadStoreWidthsAndSignExtension)
{
    ProgramBuilder b("mem");
    const auto buf = b.allocData(64, 8);
    b.la(t0, buf);
    b.li(t1, -2);                   // 0xfffffffffffffffe
    b.sd(t1, 0, t0);
    b.ld(t2, 0, t0);                // full 64-bit
    b.lw(t3, 0, t0);                // 32-bit sign extended
    b.lh(t4, 0, t0);                // 16-bit sign extended
    b.lb(t5, 0, t0);                // 8-bit sign extended
    b.lbu(t6, 0, t0);               // 8-bit zero extended
    b.li(t1, 0x1234);
    b.sh(t1, 8, t0);
    b.lh(t7, 8, t0);
    b.li(t1, 0xab);
    b.sb(t1, 16, t0);
    b.lbu(t8, 16, t0);
    b.halt();

    RunHelper run(b.build());
    ASSERT_TRUE(run.result.ok());
    EXPECT_EQ(run.machine.reg(t2), -2);
    EXPECT_EQ(run.machine.reg(t3), -2);
    EXPECT_EQ(run.machine.reg(t4), -2);
    EXPECT_EQ(run.machine.reg(t5), -2);
    EXPECT_EQ(run.machine.reg(t6), 0xfe);
    EXPECT_EQ(run.machine.reg(t7), 0x1234);
    EXPECT_EQ(run.machine.reg(t8), 0xab);
}

TEST(VmMemory, DataImageIsLoadedAtDataBase)
{
    ProgramBuilder b("img");
    const auto addr = b.addWords({111, 222});
    b.la(t0, addr);
    b.ld(t1, 0, t0);
    b.ld(t2, 8, t0);
    b.halt();
    RunHelper run(b.build());
    ASSERT_TRUE(run.result.ok());
    EXPECT_EQ(run.machine.reg(t1), 111);
    EXPECT_EQ(run.machine.reg(t2), 222);
}

TEST(VmMemory, OutOfRangeAccessFaults)
{
    ProgramBuilder b("fault");
    b.li(t0, 1 << 30);              // way past default memory
    b.ld(t1, 0, t0);
    b.halt();
    vm::MachineConfig config;
    config.memBytes = 1 << 20;
    RunHelper run(b.build(), config);
    EXPECT_EQ(run.result.reason, ExitReason::MemoryFault);
    EXPECT_FALSE(run.result.diagnostic.empty());
}

TEST(VmControl, LoopAndBranches)
{
    ProgramBuilder b("loop");
    const auto loop = b.newLabel();
    b.li(t0, 10);
    b.li(t1, 0);
    b.bind(loop);
    b.add(t1, t1, t0);
    b.addi(t0, t0, -1);
    b.bnez(t0, loop);
    b.halt();
    RunHelper run(b.build());
    ASSERT_TRUE(run.result.ok());
    EXPECT_EQ(run.machine.reg(t1), 55);
}

TEST(VmControl, CallAndReturn)
{
    ProgramBuilder b("call");
    const auto fn = b.newLabel();
    const auto over = b.newLabel();
    b.li(a0, 20);
    b.call(fn);
    b.mov(t0, v0);
    b.halt();
    b.j(over);                      // unreachable guard
    b.bind(fn);
    b.slli(v0, a0, 1);
    b.ret();
    b.bind(over);
    b.halt();
    RunHelper run(b.build());
    ASSERT_TRUE(run.result.ok());
    EXPECT_EQ(run.machine.reg(t0), 40);
}

TEST(VmControl, StackPushPop)
{
    ProgramBuilder b("stack");
    b.li(t0, 123);
    b.li(t1, 456);
    b.push(t0);
    b.push(t1);
    b.pop(t2);
    b.pop(t3);
    b.halt();
    RunHelper run(b.build());
    ASSERT_TRUE(run.result.ok());
    EXPECT_EQ(run.machine.reg(t2), 456);
    EXPECT_EQ(run.machine.reg(t3), 123);
}

TEST(VmControl, InstructionLimitStopsRunawayPrograms)
{
    ProgramBuilder b("spin");
    const auto loop = b.newLabel();
    b.bind(loop);
    b.addi(t0, t0, 1);
    b.j(loop);
    b.halt();
    vm::MachineConfig config;
    config.maxInstructions = 1000;
    RunHelper run(b.build(), config);
    EXPECT_EQ(run.result.reason, ExitReason::InstrLimit);
    EXPECT_LE(run.result.stats.retired, 1001u);
}

TEST(VmControl, FallingOffCodeIsBadPC)
{
    ProgramBuilder b("nohalt");
    b.addi(t0, t0, 1);
    RunHelper run(b.build());
    EXPECT_EQ(run.result.reason, ExitReason::BadPC);
}

// ------------------------------------------------------- tracing

TEST(VmTrace, EmitsOnlyPredictedCategoriesWithValues)
{
    ProgramBuilder b("trace");
    const auto buf = b.allocData(16, 8);
    b.li(t0, 7);                    // AddSub (li of small value)
    b.slli(t1, t0, 2);              // Shift: 28
    b.la(t2, buf);
    b.sd(t1, 0, t2);                // Store: NOT traced
    b.ld(t3, 0, t2);                // Loads: 28
    b.nop();                        // System: NOT traced
    b.halt();
    RunHelper run(b.build());
    ASSERT_TRUE(run.result.ok());

    ASSERT_EQ(run.trace.events.size(), 4u);
    EXPECT_EQ(run.trace.events[0].cat, isa::Category::AddSub);
    EXPECT_EQ(run.trace.events[0].value, 7u);
    EXPECT_EQ(run.trace.events[1].cat, isa::Category::Shift);
    EXPECT_EQ(run.trace.events[1].value, 28u);
    EXPECT_EQ(run.trace.events[2].cat, isa::Category::AddSub); // la
    EXPECT_EQ(run.trace.events[3].cat, isa::Category::Loads);
    EXPECT_EQ(run.trace.events[3].value, 28u);
}

TEST(VmTrace, JalLinkWriteIsNotTraced)
{
    ProgramBuilder b("jal");
    const auto fn = b.newLabel();
    b.call(fn);
    b.halt();
    b.bind(fn);
    b.ret();
    RunHelper run(b.build());
    ASSERT_TRUE(run.result.ok());
    EXPECT_TRUE(run.trace.events.empty());
}

TEST(VmTrace, WritesToR0AreNotTraced)
{
    ProgramBuilder b("r0trace");
    b.addi(0, 0, 5);
    b.halt();
    RunHelper run(b.build());
    ASSERT_TRUE(run.result.ok());
    EXPECT_TRUE(run.trace.events.empty());
    EXPECT_EQ(run.result.stats.predicted, 0u);
}

TEST(VmTrace, PcInEventsMatchesStaticInstruction)
{
    ProgramBuilder b("pcs");
    b.li(t0, 1);                    // pc 0
    b.li(t1, 2);                    // pc 1
    b.halt();
    RunHelper run(b.build());
    ASSERT_EQ(run.trace.events.size(), 2u);
    EXPECT_EQ(run.trace.events[0].pc, 0u);
    EXPECT_EQ(run.trace.events[1].pc, 1u);
}

TEST(VmStats, CategoryCountsAndPredictedFraction)
{
    ProgramBuilder b("stats");
    const auto buf = b.allocData(16, 8);
    b.li(t0, 3);                    // AddSub
    b.la(t1, buf);                  // AddSub
    b.sd(t0, 0, t1);                // Store
    b.ld(t2, 0, t1);                // Loads
    b.halt();                       // System
    RunHelper run(b.build());
    ASSERT_TRUE(run.result.ok());
    const auto &stats = run.result.stats;
    EXPECT_EQ(stats.retired, 5u);
    EXPECT_EQ(stats.predicted, 3u);
    EXPECT_EQ(stats.byCategory[int(isa::Category::AddSub)], 2u);
    EXPECT_EQ(stats.byCategory[int(isa::Category::Store)], 1u);
    EXPECT_EQ(stats.byCategory[int(isa::Category::Loads)], 1u);
    EXPECT_EQ(stats.byCategory[int(isa::Category::System)], 1u);
    EXPECT_DOUBLE_EQ(stats.predictedFraction(), 0.6);
}

TEST(VmStats, FanoutSinkDuplicatesEvents)
{
    vm::RecordingSink a, c;
    vm::FanoutSink fan;
    fan.add(&a);
    fan.add(&c);
    fan.onValue(vm::TraceEvent{1, isa::Opcode::Add,
                               isa::Category::AddSub, 9});
    EXPECT_EQ(a.events.size(), 1u);
    EXPECT_EQ(c.events.size(), 1u);
}

/** Property sweep: VM binary ops agree with host-side semantics. */
class VmArithFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(VmArithFuzz, MatchesHostSemantics)
{
    vp::synth::Rng rng(GetParam());
    for (int n = 0; n < 40; ++n) {
        const auto a = static_cast<int64_t>(rng.next());
        const auto c = static_cast<int64_t>(rng.next());
        EXPECT_EQ(evalBinop(&ProgramBuilder::add, a, c),
                  static_cast<int64_t>(static_cast<uint64_t>(a) +
                                       static_cast<uint64_t>(c)));
        EXPECT_EQ(evalBinop(&ProgramBuilder::xor_, a, c), a ^ c);
        EXPECT_EQ(evalBinop(&ProgramBuilder::sltu, a, c),
                  static_cast<uint64_t>(a) < static_cast<uint64_t>(c)
                          ? 1 : 0);
        EXPECT_EQ(evalBinop(&ProgramBuilder::srl, a, c & 63),
                  static_cast<int64_t>(static_cast<uint64_t>(a) >>
                                       (c & 63)));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmArithFuzz,
                         ::testing::Values(11, 22, 33));

} // anonymous namespace
