/**
 * @file
 * Build-level smoke test: every workload builds, validates, runs to a
 * clean halt, and produces a non-trivial prediction trace.
 */

#include <gtest/gtest.h>

#include "exp/suite.hh"

namespace {

using namespace vp;

TEST(Smoke, AllWorkloadsRunAndPredict)
{
    exp::SuiteOptions options;
    options.predictors = {"l"};
    options.config.scale = 5;       // tiny inputs: this is a smoke test

    const auto runs = exp::runSuite(options);
    ASSERT_EQ(runs.size(), 7u);
    for (const auto &run : runs) {
        SCOPED_TRACE(run.name);
        EXPECT_GT(run.exec.retired, 1000u);
        EXPECT_GT(run.exec.predicted, 500u);
        EXPECT_GT(run.exec.predictedFraction(), 0.4);
        EXPECT_LT(run.exec.predictedFraction(), 0.95);
        EXPECT_GT(run.staticPredicted, 20u);
    }
}

} // anonymous namespace
