/**
 * @file
 * Tests for the sharded multi-tenant bank map: per-tenant statistics
 * byte-identical to a serial single-bank replay, under one thread and
 * under 1..8 concurrent client threads; pc-group splitting identity
 * for per-PC predictor families; contention accounting. The TSAN CI
 * configuration re-runs the concurrent cases under ThreadSanitizer.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "exp/suite.hh"
#include "net/protocol.hh"
#include "net/sharded_bank.hh"
#include "obs/registry.hh"
#include "sim/driver.hh"
#include "synth/sequences.hh"

namespace {

using namespace vp;
using vm::TraceEvent;

/** A value stream with real structure (strides, repeats, noise). */
std::vector<TraceEvent>
sampleStream(size_t n, uint64_t seed)
{
    synth::Rng rng(seed);
    std::vector<TraceEvent> events;
    uint64_t counter = seed * 17;
    for (size_t i = 0; i < n; ++i) {
        TraceEvent event{};
        event.op = (i % 3 == 0) ? isa::Opcode::Add
                 : (i % 3 == 1) ? isa::Opcode::Ld
                                : isa::Opcode::Slli;
        event.cat = isa::opcodeCategory(event.op);
        event.pc = 8 * rng.range(64);
        switch (rng.range(3)) {
        case 0:
            event.value = counter += 4;     // stride
            break;
        case 1:
            event.value = event.pc * 3;     // last-value repeat
            break;
        default:
            event.value = rng.next();       // noise
            break;
        }
        events.push_back(event);
    }
    return events;
}

/** Serial single-bank replay reference for @p events. */
net::TenantStats
serialReference(const std::vector<TraceEvent> &events,
                const std::string &spec)
{
    sim::PredictorBank bank;
    bank.add(exp::makePredictor(spec));
    sim::replayTrace(events, bank);
    return net::TenantStats::from(bank.member(0).stats);
}

net::TenantStats
mapTenantStats(const net::ShardedBankMap &map, uint64_t tenant)
{
    const auto stats = map.tenantStats(tenant);
    EXPECT_TRUE(stats.has_value());
    return stats.has_value() ? net::TenantStats::from(*stats)
                             : net::TenantStats{};
}

TEST(ShardedBank, SingleTenantMatchesSerialReplayScalar)
{
    const auto events = sampleStream(4000, 11);
    for (const std::string spec : {"l", "s2", "fcm3"}) {
        SCOPED_TRACE(spec);
        net::ShardedBankConfig config;
        config.spec = spec;
        net::ShardedBankMap map(config);
        for (const auto &event : events)
            map.applyOne(5, event);
        EXPECT_EQ(mapTenantStats(map, 5),
                  serialReference(events, spec));
    }
}

TEST(ShardedBank, SingleTenantMatchesSerialReplayBatched)
{
    const auto events = sampleStream(4000, 12);
    for (const std::string spec :
         {"l", "s2", "fcm3", "fcm3@1024/4096x4"}) {
        SCOPED_TRACE(spec);
        net::ShardedBankConfig config;
        config.spec = spec;
        net::ShardedBankMap map(config);
        net::ShardedBankMap::BatchOutcome total;
        for (size_t i = 0; i < events.size(); i += 256) {
            const size_t n = std::min<size_t>(256, events.size() - i);
            const auto outcome = map.applyBatch(
                    9, vm::TraceSpan(events.data() + i, n));
            total.events += outcome.events;
            total.predicted += outcome.predicted;
            total.correct += outcome.correct;
        }
        const auto reference = serialReference(events, spec);
        EXPECT_EQ(mapTenantStats(map, 9), reference);
        // The per-frame outcome deltas must add up to the same totals.
        EXPECT_EQ(total.events, reference.total);
        EXPECT_EQ(total.predicted, reference.predicted);
        EXPECT_EQ(total.correct, reference.correct);
    }
}

TEST(ShardedBank, ScalarAndBatchedAgree)
{
    const auto events = sampleStream(3000, 13);
    net::ShardedBankConfig config;
    config.spec = "fcm3";
    net::ShardedBankMap scalar(config), batched(config);
    uint64_t scalarPredicted = 0, scalarCorrect = 0;
    for (const auto &event : events) {
        const auto outcome = scalar.applyOne(1, event);
        scalarPredicted += outcome.predicted;
        scalarCorrect += outcome.correct;
    }
    const auto outcome = batched.applyBatch(
            1, vm::TraceSpan(events.data(), events.size()));
    EXPECT_EQ(mapTenantStats(scalar, 1), mapTenantStats(batched, 1));
    EXPECT_EQ(outcome.predicted, scalarPredicted);
    EXPECT_EQ(outcome.correct, scalarCorrect);
}

TEST(ShardedBank, ConcurrentTenantsAreByteIdentical)
{
    // 1..8 client threads, each training its own tenant concurrently;
    // every tenant's statistics must match its serial reference
    // exactly — banks never bleed into each other across stripes.
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE(threads);
        net::ShardedBankConfig config;
        config.spec = "fcm3";
        config.stripes = 4;     // force key collisions per stripe
        net::ShardedBankMap map(config);

        std::vector<std::vector<TraceEvent>> streams;
        for (unsigned t = 0; t < threads; ++t)
            streams.push_back(sampleStream(3000, 100 + t));

        std::vector<std::thread> workers;
        for (unsigned t = 0; t < threads; ++t) {
            workers.emplace_back([&, t] {
                const auto &events = streams[t];
                for (size_t i = 0; i < events.size(); i += 128) {
                    const size_t n =
                            std::min<size_t>(128, events.size() - i);
                    map.applyBatch(t, vm::TraceSpan(events.data() + i,
                                                    n));
                }
            });
        }
        for (auto &worker : workers)
            worker.join();

        for (unsigned t = 0; t < threads; ++t) {
            EXPECT_EQ(mapTenantStats(map, t),
                      serialReference(streams[t], "fcm3"))
                    << "tenant " << t;
        }
        EXPECT_EQ(map.bankCount(), threads);
    }
}

TEST(ShardedBank, MixedScalarBatchConcurrent)
{
    // Half the threads drive the scalar path, half the batched path,
    // all against distinct tenants on few stripes.
    constexpr unsigned kThreads = 6;
    net::ShardedBankConfig config;
    config.spec = "s2";
    config.stripes = 2;
    net::ShardedBankMap map(config);

    std::vector<std::vector<TraceEvent>> streams;
    for (unsigned t = 0; t < kThreads; ++t)
        streams.push_back(sampleStream(2000, 300 + t));

    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            const auto &events = streams[t];
            if (t % 2 == 0) {
                for (const auto &event : events)
                    map.applyOne(t, event);
            } else {
                map.applyBatch(t, vm::TraceSpan(events.data(),
                                                events.size()));
            }
        });
    }
    for (auto &worker : workers)
        worker.join();

    for (unsigned t = 0; t < kThreads; ++t) {
        EXPECT_EQ(mapTenantStats(map, t),
                  serialReference(streams[t], "s2"))
                << "tenant " << t;
    }
}

TEST(ShardedBank, PcGroupSplitIdenticalForPerPcFamilies)
{
    // Splitting a tenant's PC space across banks keeps statistics
    // identical for per-PC families (each PC's table entry is
    // independent): run with groups of 2^6 PC bytes vs one bank.
    const auto events = sampleStream(4000, 21);
    for (const std::string spec : {"l", "s2"}) {
        SCOPED_TRACE(spec);
        net::ShardedBankConfig split;
        split.spec = spec;
        split.pcGroupBits = 6;      // pc in [0, 8*64): several groups
        net::ShardedBankMap map(split);
        for (size_t i = 0; i < events.size(); i += 64) {
            const size_t n = std::min<size_t>(64, events.size() - i);
            map.applyBatch(3, vm::TraceSpan(events.data() + i, n));
        }
        EXPECT_GT(map.bankCount(), 1u);
        EXPECT_EQ(mapTenantStats(map, 3),
                  serialReference(events, spec));
    }
}

TEST(ShardedBank, PredictDoesNotGradeStats)
{
    const auto events = sampleStream(500, 31);
    net::ShardedBankConfig config;
    config.spec = "l";
    net::ShardedBankMap map(config);
    map.applyBatch(2, vm::TraceSpan(events.data(), events.size()));
    const auto before = mapTenantStats(map, 2);
    for (int i = 0; i < 100; ++i)
        (void)map.predict(2, events[static_cast<size_t>(i) %
                                    events.size()]
                                     .pc);
    EXPECT_EQ(mapTenantStats(map, 2), before);
    EXPECT_FALSE(map.tenantStats(999).has_value());
}

TEST(ShardedBank, StripesRoundUpToPowerOfTwo)
{
    net::ShardedBankConfig config;
    config.spec = "l";
    config.stripes = 5;
    net::ShardedBankMap map(config);
    EXPECT_EQ(map.stripes(), 8u);

    config.stripes = 0;
    net::ShardedBankMap one(config);
    EXPECT_EQ(one.stripes(), 1u);
}

TEST(ShardedBank, RejectsBadSpecEagerly)
{
    net::ShardedBankConfig config;
    config.spec = "definitely-not-a-predictor";
    EXPECT_THROW(net::ShardedBankMap{config}, std::exception);
}

TEST(ShardedBank, CollectExportsShardMetrics)
{
    net::ShardedBankConfig config;
    config.spec = "l";
    config.stripes = 8;
    net::ShardedBankMap map(config);
    const auto events = sampleStream(200, 41);
    map.applyBatch(1, vm::TraceSpan(events.data(), events.size()));
    map.applyBatch(2, vm::TraceSpan(events.data(), events.size()));

    obs::Registry registry;
    map.collect(registry);
    const auto snapshot = registry.snapshot();
    ASSERT_TRUE(snapshot.gauges.count("shard.banks"));
    EXPECT_EQ(snapshot.gauges.at("shard.banks"), 2u);
    ASSERT_TRUE(snapshot.gauges.count("shard.stripes"));
    EXPECT_EQ(snapshot.gauges.at("shard.stripes"), 8u);
    EXPECT_TRUE(snapshot.counters.count("shard.contentions"));
}

} // namespace
