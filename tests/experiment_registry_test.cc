/**
 * @file
 * Tests for the experiment registry (exp/experiment.hh): the
 * unique-name invariant, the presence of every legacy experiment, and
 * the guarantee that every registered experiment completes under
 * --dry-run with an honest grid declaration and a non-empty report.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/experiment.hh"

namespace {

using namespace vp;
using namespace vp::exp;

/** The 21 converted legacy binaries plus the registry-born studies
 *  (replacement, and the spec-grammar pair hybrid_split/aliasing). */
const std::vector<std::string> &
expectedNames()
{
    static const std::vector<std::string> names = {
        "table1",   "figure2",  "figure3",  "figure4",
        "figure5",  "figure6",  "figure7",  "figure8",
        "figure9",  "figure10", "figure11", "table2",
        "table4",   "table5",   "table6",   "table7",
        "hybrid",   "ablation_blending",    "ablation_hysteresis",
        "capacity", "confidence",           "replacement",
        "hybrid_split",         "aliasing",
    };
    return names;
}

TEST(Registry, EveryLegacyExperimentIsRegistered)
{
    const auto &reg = registry();
    EXPECT_EQ(reg.size(), expectedNames().size());
    for (const auto &name : expectedNames()) {
        EXPECT_NE(reg.find(name), nullptr)
                << "missing experiment: " << name;
    }
}

TEST(Registry, FindUnknownReturnsNull)
{
    EXPECT_EQ(registry().find("nope"), nullptr);
    EXPECT_EQ(registry().find(""), nullptr);
}

TEST(Registry, TitlesAndDescriptionsAreNonEmpty)
{
    for (const auto &experiment : registry().all()) {
        EXPECT_FALSE(experiment.title.empty()) << experiment.name;
        EXPECT_FALSE(experiment.description.empty())
                << experiment.name;
    }
}

TEST(Registry, RejectsDuplicateNames)
{
    ExperimentRegistry local;
    local.add(Experiment{"one", "t", "d", nullptr,
                         [](ExperimentContext &) {}});
    EXPECT_THROW(local.add(Experiment{"one", "t2", "d2", nullptr,
                                      [](ExperimentContext &) {}}),
                 std::invalid_argument);
}

TEST(Registry, RejectsEmptyNameAndMissingHook)
{
    ExperimentRegistry local;
    EXPECT_THROW(local.add(Experiment{"", "t", "d", nullptr,
                                      [](ExperimentContext &) {}}),
                 std::invalid_argument);
    EXPECT_THROW(local.add(Experiment{"named", "t", "d", nullptr,
                                      nullptr}),
                 std::invalid_argument);
}

/**
 * The registry-wide smoke pin: every experiment dry-runs to a
 * non-empty report, and its declarative grid is honest — after
 * prefetching the grid, running the hook must not create any unique
 * cell the grid did not declare (the property the driver's
 * prefetch-then-run scheduling relies on for full cell parallelism).
 *
 * One scheduler is shared across all experiments, exactly like a
 * `vpexp --all --dry-run` invocation, so the test also exercises
 * cross-experiment cell dedup at full registry scale.
 */
TEST(Registry, EveryExperimentDryRunsWithAnHonestGrid)
{
    ExperimentConfig config;
    config.dryRun = true;
    CellScheduler scheduler(config, 0);

    for (const auto &experiment : registry().all()) {
        if (experiment.grid) {
            for (const auto &suite : experiment.grid(config))
                scheduler.prefetch(suite);
        }
        const size_t declared = scheduler.uniqueCells();

        ExperimentContext ctx(config, scheduler);
        ASSERT_NO_THROW(experiment.run(ctx)) << experiment.name;
        EXPECT_FALSE(ctx.report().empty()) << experiment.name;

        EXPECT_EQ(scheduler.uniqueCells(), declared)
                << experiment.name
                << " ran cells its grid did not declare";
    }

    // The registry-wide run must actually share work: far fewer
    // unique cells than requests (figures 3-7 share one bank, tables
    // 2/4/5 another, capacity/replacement share each workload trace).
    EXPECT_LT(scheduler.uniqueCells(), scheduler.requestedCells() / 2);
}

} // anonymous namespace
