/**
 * @file
 * Property tests for the typed PredictorSpec model (exp/spec.hh):
 *
 *  - parse -> canonical -> parse is the identity over a generated
 *    grid of all families x budgets x ways x victim policies x tag
 *    widths x confidence suffixes (and hybrid compositions thereof),
 *    every generated spec already being its own canonical form;
 *  - canonicalName is idempotent and build() accepts every canonical
 *    spec;
 *  - malformed specs throw std::invalid_argument naming the offending
 *    position and token;
 *  - the grammar help text exists and names its own productions.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/spec.hh"

namespace {

using namespace vp;
using namespace vp::exp;

/** One bounded-suffix shape, spelled for lv/stride and for fcm. */
struct BudgetCase
{
    const char *plain;      ///< lv/stride suffix ("" = unbounded)
    const char *fcm;        ///< fcm suffix with the VHT/VPT split
};

const std::vector<BudgetCase> &
budgetCases()
{
    static const std::vector<BudgetCase> cases = {
        {"", ""},
        {"@256x4", "@64/256x4"},
        {"@1024x16", "@256/1024x16"},
        {"@64xfa", "@64/256xfa"},
        {"@512x8r", "@128/512x8r"},
        {"@256x2f", "@64/256x2f"},
    };
    return cases;
}

const std::vector<std::string> &
tagSuffixes()
{
    static const std::vector<std::string> tags = {"", "%8", "%13"};
    return tags;
}

const std::vector<std::string> &
confidenceSuffixes()
{
    static const std::vector<std::string> suffixes = {
        "", ":c2t2", ":c3t5d", ":c1t1", ":c4t0",
    };
    return suffixes;
}

/** Every simple (non-hybrid) canonical spec of the grid. */
std::vector<std::string>
simpleSpecGrid()
{
    static const std::vector<std::string> families = {
        "l",    "l-sat",     "l-consec",  "s",        "s-sat", "s2",
        "fcm1", "fcm3",      "fcm2-pure", "fcm4-full", "fcm2-sat",
    };
    std::vector<std::string> specs;
    for (const auto &family : families) {
        const bool fcm = family.rfind("fcm", 0) == 0;
        for (const auto &budget : budgetCases()) {
            const std::string suffix = fcm ? budget.fcm : budget.plain;
            for (const auto &tag : tagSuffixes()) {
                if (suffix.empty() && !tag.empty())
                    continue;       // tags only exist on tables
                for (const auto &conf : confidenceSuffixes())
                    specs.push_back(family + suffix + tag + conf);
            }
        }
    }
    return specs;
}

void
expectRoundTrip(const std::string &spec)
{
    SCOPED_TRACE(spec);
    const PredictorSpec parsed = parseSpec(spec);
    const std::string canonical = parsed.canonicalName();

    // The grid generates canonical spellings only, so the canonical
    // name must be byte-identical to the input...
    EXPECT_EQ(canonical, spec);
    // ...and the round trip must reproduce the exact AST.
    EXPECT_EQ(parseSpec(canonical), parsed);
    EXPECT_EQ(parseSpec(canonical).canonicalName(), canonical);
}

TEST(SpecRoundTrip, SimpleSpecsAcrossTheWholeGrid)
{
    const auto specs = simpleSpecGrid();
    ASSERT_GT(specs.size(), 400u);
    for (const auto &spec : specs)
        expectRoundTrip(spec);
}

TEST(SpecRoundTrip, HybridCompositionsAcrossTheGrid)
{
    const std::vector<std::string> components = {
        "s2", "s-sat", "s2@256x2", "l@512x4%8", "fcm3",
        "fcm3@256/1024x4", "fcm2-pure@64/256x2r:c2t2",
    };
    const std::vector<std::string> choosers = {
        "", ";ch@512x4", ";ch@256x4f%6", ";ch@64xfa",
    };
    for (const auto &a : components) {
        for (const auto &b : components) {
            for (const auto &chooser : choosers) {
                // The one non-canonical spelling in the grid: the
                // default composition collapses to bare "hybrid"
                // (asserted separately below).
                if (a == "s2" && b == "fcm3" && chooser.empty())
                    continue;
                for (const char *conf : {"", ":c2t3"}) {
                    expectRoundTrip("hybrid(" + a + "," + b + chooser +
                                    ")" + conf);
                }
            }
        }
    }
}

TEST(SpecRoundTrip, BareHybridIsTheCanonicalFormOfItsExpansion)
{
    // "hybrid" expands to the default s2 + fcm3 composition, so the
    // spelled-out form canonicalises back to the short one...
    EXPECT_EQ(parseSpec("hybrid(s2,fcm3)").canonicalName(), "hybrid");
    EXPECT_EQ(parseSpec("hybrid").canonicalName(), "hybrid");
    EXPECT_EQ(parseSpec("hybrid(s2,fcm3)"), parseSpec("hybrid"));
    // ...but any deviation (components, chooser geometry) keeps the
    // explicit spelling.
    EXPECT_EQ(parseSpec("hybrid(s2,fcm2)").canonicalName(),
              "hybrid(s2,fcm2)");
    EXPECT_EQ(parseSpec("hybrid(s2,fcm3;ch@512x4)").canonicalName(),
              "hybrid(s2,fcm3;ch@512x4)");
}

TEST(SpecRoundTrip, NonCanonicalSpellingsCanonicalise)
{
    // Defaults made explicit, and the reset penalty, canonicalise
    // away; the AST is unchanged.
    for (const auto &[spelled, canonical] :
         std::vector<std::pair<std::string, std::string>>{
                 {"l@256", "l@256x4"},
                 {"fcm3@256/1024", "fcm3@256/1024x4"},
                 {"l:c2t3r", "l:c2t3"},
                 {"fcm3@256/1024x4:c3t6r", "fcm3@256/1024x4:c3t6"},
                 {"hybrid(s2@256,fcm3)", "hybrid(s2@256x4,fcm3)"},
         }) {
        SCOPED_TRACE(spelled);
        EXPECT_EQ(parseSpec(spelled).canonicalName(), canonical);
        EXPECT_EQ(parseSpec(spelled), parseSpec(canonical));
    }
}

TEST(SpecBuild, EveryCanonicalSpecBuildsAPredictor)
{
    for (const auto &spec : simpleSpecGrid()) {
        SCOPED_TRACE(spec);
        ASSERT_NE(parseSpec(spec).build(), nullptr);
    }
    ASSERT_NE(parseSpec("hybrid(s2@256x2,fcm3@256/1024x4;ch@512x4)")
                      .build(),
              nullptr);
}

TEST(SpecBuild, TagWidthShowsUpInPredictorNames)
{
    EXPECT_EQ(parseSpec("l@1024x4%8").build()->name(), "l@1024x4%8");
    EXPECT_EQ(parseSpec("s2@256x2r%12").build()->name(), "s2@256x2r%12");
    EXPECT_EQ(parseSpec("fcm3@256/1024x4%8").build()->name(),
              "fcm3@256/1024x4%8");
    EXPECT_EQ(
            parseSpec("hybrid(s2@256x2,fcm3@256/1024x4;ch@512x4%6)")
                    .build()
                    ->name(),
            "hyb(s2@256x2+fcm3@256/1024x4;ch@512x4%6)");
}

/** Malformed spec -> the diagnostic names position and token. */
struct BadCase
{
    const char *spec;
    std::vector<const char *> expected;     ///< message substrings
};

TEST(SpecDiagnostics, MalformedSpecsNameThePositionAndToken)
{
    const std::vector<BadCase> cases = {
        {"", {"unknown predictor spec", "position 0", "end of spec"}},
        {"bogus", {"unknown predictor spec", "position 0", "\"bogus\""}},
        {"l@abc", {"bad entry count", "position 2", "\"abc\""}},
        {"l@", {"bad entry count", "position 2", "end of spec"}},
        {"l@256x4q",
         {"unexpected trailing characters", "position 7", "\"q\""}},
        {"l%8", {"unexpected trailing characters", "position 1"}},
        {"l@256x0", {"ways must be positive", "position 6"}},
        {"l@256x4%0", {"tag width must be in [1, 63]", "position 8"}},
        {"l@256x4%64", {"tag width must be in [1, 63]", "position 8"}},
        {"l@256x4%", {"bad tag width", "position 8"}},
        {"l@256/512x4",
         {"vht/vpt split only applies to fcm", "position 5"}},
        {"fcm3@256x4",
         {"bounded fcm needs <vht>/<vpt> entry counts", "position 4"}},
        {"fcmx", {"bad fcm order", "position 3"}},
        {"fcm2-weird", {"unknown fcm variant", "position 5"}},
        {"fcm99999999999999999999", {"fcm order overflows",
                                     "position 3"}},
        {"hybrid@256x4",
         {"hybrid takes component budgets", "position 6"}},
        {"hybrid(s2", {"expected ',' between hybrid components",
                       "position 9"}},
        {"hybrid(s2,fcm3",
         {"unterminated hybrid composition", "position 14"}},
        {"hybrid(s2,fcm3;x@4)",
         {"expected chooser \"ch@<geometry>\"", "position 15"}},
        {"hybrid(hybrid,l)",
         {"hybrid components must be simple predictors", "position 7"}},
        {"hybrid(s2,fcm3)x", {"unexpected trailing characters",
                              "position 15"}},
        {"s2@256x2:c2",
         {"expected 't<threshold>'", "position 11"}},
        {"l:c0t1", {"confidence width must be in [1, 16]",
                    "position 3"}},
        {"l:c2t99999999999999999999",
         {"confidence threshold overflows", "position 5"}},
    };
    for (const auto &bad : cases) {
        SCOPED_TRACE(bad.spec);
        try {
            parseSpec(bad.spec);
            FAIL() << "accepted malformed spec";
        } catch (const std::invalid_argument &error) {
            const std::string what = error.what();
            for (const char *expected : bad.expected) {
                EXPECT_NE(what.find(expected), std::string::npos)
                        << "diagnostic \"" << what
                        << "\" is missing \"" << expected << '"';
            }
        }
    }
}

TEST(SpecDiagnostics, GeometryLegalityIsABuildTimeError)
{
    // The grammar accepts these shapes; the table constructors reject
    // the geometry (same invalid_argument contract as before).
    for (const char *spec :
         {"s2@0x4", "s2@256x3", "fcm3@256/0x4", "l@64x128"}) {
        SCOPED_TRACE(spec);
        EXPECT_NO_THROW(parseSpec(spec));
        EXPECT_THROW(parseSpec(spec).build(), std::invalid_argument);
    }
}

TEST(SpecHelp, GrammarHelpIsTheSingleSourceOfTruth)
{
    const std::string help = specGrammarHelp();
    // The productions every surface (vpexp --spec-help, vpsim list)
    // prints: families, budgets, tags, compositions, confidence.
    for (const char *token :
         {"hybrid(", ";ch@", "%", ":c", "\"fa\"", "spec", "geometry",
          "confidence", "l@1024x4%8"}) {
        EXPECT_NE(help.find(token), std::string::npos) << token;
    }
}

} // anonymous namespace
