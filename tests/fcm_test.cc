/**
 * @file
 * Unit and property tests for the finite context method predictor —
 * Section 2.2 of the paper: exact contexts, blending with lazy
 * exclusion, learning times (Table 1 / Figure 2), and the counter
 * variants.
 */

#include <gtest/gtest.h>

#include "core/fcm.hh"
#include "core/learning.hh"
#include "synth/sequences.hh"

namespace {

using namespace vp;
using namespace vp::core;
using namespace vp::synth;

FcmPredictor
makeFcm(int order, FcmBlending blending = FcmBlending::LazyExclusion,
        uint32_t counter_max = 0)
{
    FcmConfig config;
    config.order = order;
    config.blending = blending;
    config.counterMax = counter_max;
    return FcmPredictor(config);
}

TEST(Fcm, ColdEntryDeclines)
{
    auto pred = makeFcm(2);
    EXPECT_FALSE(pred.predict(0).valid);
}

TEST(Fcm, BlendedPredictsFromOrderZeroAfterOneValue)
{
    auto pred = makeFcm(3);
    pred.update(0, 5);
    const auto p = pred.predict(0);
    ASSERT_TRUE(p.valid);           // order-0 fallback
    EXPECT_EQ(p.value, 5u);
}

TEST(Fcm, PureOrderKDeclinesUntilFullContext)
{
    auto pred = makeFcm(2, FcmBlending::None);
    pred.update(0, 5);
    EXPECT_FALSE(pred.predict(0).valid);
    pred.update(0, 5);
    // Context (5,5) exists but no follower recorded yet.
    EXPECT_FALSE(pred.predict(0).valid);
    pred.update(0, 5);
    // Context (5,5) -> 5 has been seen once.
    const auto p = pred.predict(0);
    ASSERT_TRUE(p.valid);
    EXPECT_EQ(p.value, 5u);
}

TEST(Fcm, LearnsFigure2ExactTrace)
{
    // Figure 2 of the paper: repeated stride 1 2 3 4, order-2 fcm.
    // Learn time = period + order = 6; 100% thereafter.
    auto pred = makeFcm(2, FcmBlending::None);
    const auto seq = repeatedStrideSeq(1, 1, 4, 24);
    const auto result = analyzeLearning(pred, seq);
    EXPECT_EQ(result.learningTime, 6);
    EXPECT_DOUBLE_EQ(result.learningDegree, 1.0);
}

TEST(Fcm, MostFrequentFollowerWins)
{
    auto pred = makeFcm(1);
    // Context (7) followed by 8 twice, by 9 once.
    for (uint64_t follower : {8u, 9u, 8u}) {
        pred.update(0, 7);
        pred.update(0, follower);
    }
    pred.update(0, 7);
    const auto p = pred.predict(0);
    ASSERT_TRUE(p.valid);
    EXPECT_EQ(p.value, 8u);
}

TEST(Fcm, TieBreaksTowardMostRecent)
{
    auto pred = makeFcm(1);
    pred.update(0, 7);
    pred.update(0, 8);      // (7)->8
    pred.update(0, 7);
    pred.update(0, 9);      // (7)->9, both counts now 1
    pred.update(0, 7);
    const auto p = pred.predict(0);
    ASSERT_TRUE(p.valid);
    EXPECT_EQ(p.value, 9u);         // most recently observed
}

TEST(Fcm, LongestMatchingContextSuppliesPrediction)
{
    auto pred = makeFcm(2);
    // Train: 1,2 -> 3 and separately 9,2 -> 4.
    for (uint64_t v : {1u, 2u, 3u, 9u, 2u, 4u})
        pred.update(0, v);
    // History is now (2,4); extend so history becomes (9,2): feed 9, 2.
    pred.update(0, 9);
    pred.update(0, 2);
    const auto p = pred.predict(0);
    ASSERT_TRUE(p.valid);
    EXPECT_EQ(p.value, 4u);         // order-2 match beats order-1 (2)->3/4 tie
}

TEST(Fcm, NoAliasingBetweenPcs)
{
    auto pred = makeFcm(2);
    for (uint64_t v : {1u, 2u, 3u, 1u, 2u})
        pred.update(7, v);
    // Same history at a different PC must not predict.
    pred.update(8, 1);
    pred.update(8, 2);
    EXPECT_EQ(pred.predict(7).value, 3u);
    const auto other = pred.predict(8);
    // PC 8 falls back to order-0/1 within its own table only.
    ASSERT_TRUE(other.valid);
    EXPECT_NE(other.value, 3u);
}

TEST(Fcm, RepeatedNonStrideIsLearnedPerfectly)
{
    // Table 1: RNS is where fcm shines and stride fails.
    auto pred = makeFcm(3);
    const auto seq = repeatedNonStrideSeq(17, 5, 100);
    const auto result = analyzeLearning(pred, seq);
    ASSERT_GE(result.learningTime, 0);
    // Steady state: perfect from one full period + order onward.
    for (size_t i = 10; i < seq.size(); ++i)
        EXPECT_TRUE(result.correctAt[i]) << "index " << i;
}

TEST(Fcm, CannotPredictFreshStrides)
{
    // Table 1: "S" row has no fcm entry — contexts never repeat.
    auto pred = makeFcm(3);
    const auto result = analyzeLearning(pred, strideSeq(0, 1, 200));
    EXPECT_LT(result.accuracy, 0.02);
}

TEST(Fcm, CannotPredictNonStride)
{
    auto pred = makeFcm(2);
    const auto result = analyzeLearning(pred, nonStrideSeq(23, 300));
    EXPECT_LT(result.accuracy, 0.02);
}

TEST(Fcm, ResetDropsEverything)
{
    auto pred = makeFcm(2);
    for (uint64_t v : {1u, 2u, 3u, 1u, 2u})
        pred.update(0, v);
    EXPECT_GT(pred.tableEntries(), 0u);
    pred.reset();
    EXPECT_EQ(pred.tableEntries(), 0u);
    EXPECT_FALSE(pred.predict(0).valid);
}

TEST(Fcm, NamesEncodeOrderAndVariant)
{
    EXPECT_EQ(makeFcm(3).name(), "fcm3");
    EXPECT_EQ(makeFcm(1, FcmBlending::Full).name(), "fcm1-full");
    EXPECT_EQ(makeFcm(2, FcmBlending::None).name(), "fcm2-pure");
}

TEST(Fcm, RejectsNegativeOrder)
{
    FcmConfig config;
    config.order = -1;
    EXPECT_THROW(FcmPredictor{config}, std::invalid_argument);
}

TEST(Fcm, OrderZeroIsFrequencyTable)
{
    auto pred = makeFcm(0);
    for (uint64_t v : {4u, 4u, 9u})
        pred.update(0, v);
    EXPECT_EQ(pred.predict(0).value, 4u);   // count 2 beats count 1
}

TEST(Fcm, SmallCountersHalveAndFavorRecency)
{
    // counterMax = 4: after saturation, counts rescale so newer
    // behaviour can take over faster than exact counting allows.
    auto exact = makeFcm(0);
    auto small = makeFcm(0, FcmBlending::LazyExclusion, 4);
    for (int i = 0; i < 100; ++i) {
        exact.update(0, 1);
        small.update(0, 1);
    }
    for (int i = 0; i < 6; ++i) {
        exact.update(0, 2);
        small.update(0, 2);
    }
    EXPECT_EQ(exact.predict(0).value, 1u);  // 100 vs 6
    EXPECT_EQ(small.predict(0).value, 2u);  // rescaled away
}

TEST(Fcm, CounterCeilingSaturatesAtTheCeilingExactly)
{
    // End-to-end through update()/predict(): with counterMax = 4 a
    // count must be able to sit AT 4 (the way a saturating hardware
    // counter of ceiling 4 would); halving happens only when a count
    // would exceed the ceiling. The pre-fix code halved on *reaching*
    // it, so counts never passed counterMax/2 - an off-by-one that
    // made challengers overtake the established value twice as fast.
    auto pred = makeFcm(0, FcmBlending::LazyExclusion, 4);
    for (int i = 0; i < 4; ++i)
        pred.update(0, 7);          // count(7) saturates at 4
    for (int i = 0; i < 3; ++i)
        pred.update(0, 9);          // count(9) = 3: not yet enough
    EXPECT_EQ(pred.predict(0).value, 7u);
    pred.update(0, 9);              // count(9) = 4: tie, 9 more recent
    EXPECT_EQ(pred.predict(0).value, 9u);
}

TEST(Fcm, CounterCeilingRescalesWhenExceeded)
{
    // Push count(7) past the ceiling: 5th sighting bumps to 5 > 4,
    // everything halves (7 -> 2, the lone 9 -> 0 and is pruned), so
    // two fresh sightings of 9 suffice to take over afterwards.
    auto pred = makeFcm(0, FcmBlending::LazyExclusion, 4);
    for (int i = 0; i < 4; ++i)
        pred.update(0, 7);
    pred.update(0, 9);              // count(9) = 1
    pred.update(0, 7);              // 5 > 4: halve -> 7:2, 9 pruned
    pred.update(0, 9);
    EXPECT_EQ(pred.predict(0).value, 7u);   // 2 vs 1
    pred.update(0, 9);
    EXPECT_EQ(pred.predict(0).value, 9u);   // 2 vs 2, 9 more recent
}

TEST(Fcm, CounterCeilingOfOneKeepsPredicting)
{
    // The degenerate 1-bit ceiling: every second sighting rescales,
    // but the just-bumped follower always survives the pruning, so
    // the predictor degrades to most-recent-follower instead of
    // going permanently silent (which the pre-fix halving did: the
    // bumped cell itself halved to zero and was erased).
    auto pred = makeFcm(0, FcmBlending::LazyExclusion, 1);
    pred.update(0, 5);
    ASSERT_TRUE(pred.predict(0).valid);
    EXPECT_EQ(pred.predict(0).value, 5u);
    pred.update(0, 5);              // bump to 2 > 1: halves back to 1
    ASSERT_TRUE(pred.predict(0).valid);
    EXPECT_EQ(pred.predict(0).value, 5u);
    pred.update(0, 8);
    ASSERT_TRUE(pred.predict(0).valid);
    EXPECT_EQ(pred.predict(0).value, 8u);   // tie at 1, 8 more recent
}

TEST(Fcm, LazyExclusionTrainsOnlyMatchedOrderAndAbove)
{
    // After 1,2,3,1,2 the order-2 context (1,2) matched for the
    // prediction of the next value; updating with 9 must train
    // orders 2..k but NOT order 0/1 under lazy exclusion.
    auto lazy = makeFcm(2, FcmBlending::LazyExclusion);
    for (uint64_t v : {1u, 2u, 3u, 1u, 2u})
        lazy.update(0, v);
    lazy.update(0, 9);      // matched order was 2
    // Order-1 context (9) has never been trained with a follower, and
    // order-1 (2)->9 must NOT exist; verify via a probe history.
    // Feed 5, 2: history (5,2); order-2 (5,2) unknown; order-1 (2)
    // should still say 3 (trained before lazy exclusion kicked in).
    lazy.update(0, 5);
    lazy.update(0, 2);
    const auto p = lazy.predict(0);
    ASSERT_TRUE(p.valid);
    EXPECT_EQ(p.value, 3u);
}

TEST(Fcm, FullBlendingTrainsAllOrders)
{
    auto full = makeFcm(2, FcmBlending::Full);
    for (uint64_t v : {1u, 2u, 3u, 1u, 2u})
        full.update(0, v);
    full.update(0, 9);      // trains (1,2)->9, (2)->9, ()->9
    full.update(0, 5);
    full.update(0, 2);
    const auto p = full.predict(0);
    ASSERT_TRUE(p.valid);
    // Order-1 (2) now has followers 3(x1), 9(x1): tie -> recent -> 9.
    EXPECT_EQ(p.value, 9u);
}

/**
 * Table 1 property sweep: an order-o pure fcm on a repeating
 * sequence of period p learns in p+o values and is perfect after.
 */
class FcmLearningSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(FcmLearningSweep, LearnTimeIsPeriodPlusOrder)
{
    const auto [order, period] = GetParam();
    // The formula holds for order >= period too (these cases used to
    // be skipped): the sequence's p values are distinct, so an
    // order-o context is determined by the phase alone — even when it
    // spans whole periods — and the first repeated context appears at
    // index p+o exactly as in the order < period case.
    auto pred = makeFcm(order, FcmBlending::None);
    const auto seq = repeatedNonStrideSeq(
            uint64_t(order) * 31 + period, period,
            static_cast<size_t>(period) * 20);
    const auto result = analyzeLearning(pred, seq);
    EXPECT_EQ(result.learningTime, period + order);
    EXPECT_DOUBLE_EQ(result.learningDegree, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
        OrderPeriod, FcmLearningSweep,
        ::testing::Combine(::testing::Values(1, 2, 3, 4),
                           ::testing::Values(2, 3, 4, 5, 8, 13)));

/** Composed sequences: phase changes are re-learned. */
TEST(Fcm, RelearnsAfterPhaseChange)
{
    auto pred = makeFcm(2);
    const auto phase1 = repeatedNonStrideSeq(5, 4, 60);
    const auto phase2 = repeatedNonStrideSeq(99, 6, 90);
    const auto seq = concatSeq({phase1, phase2});
    const auto result = analyzeLearning(pred, seq);
    // Perfect at the end of phase 1 and at the end of phase 2.
    for (size_t i = 30; i < 60; ++i)
        EXPECT_TRUE(result.correctAt[i]) << i;
    for (size_t i = seq.size() - 30; i < seq.size(); ++i)
        EXPECT_TRUE(result.correctAt[i]) << i;
}

TEST(Fcm, InterleavedConstantsFormAPattern)
{
    // a,b,a,b,... is RNS with period 2: order >= 2 nails it.
    auto pred = makeFcm(2);
    const auto seq = interleaveSeq(
            {constantSeq(10, 50), constantSeq(77, 50)});
    const auto result = analyzeLearning(pred, seq);
    for (size_t i = 8; i < seq.size(); ++i)
        EXPECT_TRUE(result.correctAt[i]) << i;
}

} // anonymous namespace
