/**
 * @file
 * Tests for the simulation driver: the predict-then-update protocol,
 * the optional trackers, and error handling.
 */

#include <gtest/gtest.h>

#include "core/fcm.hh"
#include "core/last_value.hh"
#include "core/stride.hh"
#include "masm/builder.hh"
#include "sim/driver.hh"
#include "sim/table.hh"

namespace {

using namespace vp;
using namespace vp::masm;
using namespace vp::masm::reg;

/** A program producing a known constant sequence at one PC. */
isa::Program
constantLoop(int iterations)
{
    ProgramBuilder b("constloop");
    const auto loop = b.newLabel();
    b.li(t0, iterations);
    b.bind(loop);
    b.li(t1, 77);                   // the measured instruction
    b.addi(t0, t0, -1);
    b.bnez(t0, loop);
    b.halt();
    return b.build();
}

TEST(Driver, EvaluatesPredictorsAgainstTrace)
{
    sim::PredictorBank bank;
    bank.add(std::make_unique<core::LastValuePredictor>());

    const auto outcome = sim::runProgram(constantLoop(50), bank);
    EXPECT_EQ(outcome.workload, "constloop");
    EXPECT_TRUE(outcome.vmResult.ok());

    const auto &stats = bank.member(0).stats;
    // Events: li t0 (once), then per iteration li 77 + addi. The
    // constant li is right except its first execution; the counter
    // addi never repeats so last-value always misses it.
    EXPECT_EQ(stats.total(), 1u + 50u * 2u);
    EXPECT_EQ(stats.correct(), 49u);
}

TEST(Driver, ColdPredictionsCountAsIncorrect)
{
    sim::PredictorBank bank;
    bank.add(std::make_unique<core::LastValuePredictor>());
    const auto outcome = sim::runProgram(constantLoop(1), bank);
    (void)outcome;
    // 3 events, all first-time: everything incorrect.
    EXPECT_EQ(bank.member(0).stats.correct(), 0u);
}

TEST(Driver, OverlapTracksJointCorrectness)
{
    sim::PredictorBank bank;
    bank.add(std::make_unique<core::LastValuePredictor>());
    bank.add(std::make_unique<core::StridePredictor>());
    bank.trackOverlap(2);

    sim::runProgram(constantLoop(20), bank);
    const auto *overlap = bank.overlap();
    ASSERT_NE(overlap, nullptr);
    EXPECT_EQ(overlap->total(), bank.member(0).stats.total());
    // On the constant PC both are right; on the countdown only the
    // stride predictor is: bucket 0b10 must be populated.
    EXPECT_GT(overlap->bucket(0b11), 0u);
    EXPECT_GT(overlap->bucket(0b10), 0u);
    EXPECT_EQ(overlap->bucket(0b01), 0u);
}

TEST(Driver, ImprovementComparesTwoMembers)
{
    sim::PredictorBank bank;
    const auto s2 = bank.add(std::make_unique<core::StridePredictor>());
    const auto lv =
            bank.add(std::make_unique<core::LastValuePredictor>());
    bank.trackImprovement(s2, lv);      // stride over last-value
    sim::runProgram(constantLoop(30), bank);
    const auto *improvement = bank.improvement();
    ASSERT_NE(improvement, nullptr);
    // The countdown PC is where stride beats last value.
    EXPECT_GE(improvement->staticCount(), 2u);
    const auto curve = improvement->curve();
    EXPECT_NEAR(curve.back().improvementPct, 100.0, 1e-9);
}

TEST(Driver, ValueProfilerSeesUniqueValues)
{
    sim::PredictorBank bank;
    bank.add(std::make_unique<core::LastValuePredictor>());
    bank.trackValues();
    sim::runProgram(constantLoop(10), bank);
    const auto *values = bank.values();
    ASSERT_NE(values, nullptr);
    // The li-77 PC has exactly one unique value.
    EXPECT_GT(values->staticFractionAtMost(1), 0.0);
}

TEST(Driver, IndexOfFindsMembersByName)
{
    sim::PredictorBank bank;
    bank.add(std::make_unique<core::LastValuePredictor>());
    bank.add(std::make_unique<core::StridePredictor>());
    EXPECT_EQ(bank.indexOf("l"), 0);
    EXPECT_EQ(bank.indexOf("s2"), 1);
    EXPECT_EQ(bank.indexOf("nope"), -1);
}

TEST(Driver, RejectsBadTrackerConfiguration)
{
    sim::PredictorBank bank;
    bank.add(std::make_unique<core::LastValuePredictor>());
    EXPECT_THROW(bank.trackOverlap(2), std::invalid_argument);
    EXPECT_THROW(bank.trackOverlap(0), std::invalid_argument);
    EXPECT_THROW(bank.trackImprovement(0, 5), std::invalid_argument);
}

TEST(Driver, ThrowsOnNonHaltingProgram)
{
    ProgramBuilder b("bad");
    b.addi(t0, t0, 1);              // falls off the end
    sim::PredictorBank bank;
    bank.add(std::make_unique<core::LastValuePredictor>());
    EXPECT_THROW(sim::runProgram(b.build(), bank), std::runtime_error);
}

// ------------------------------------------------------ TextTable

TEST(TextTable, AlignsColumnsAndRules)
{
    sim::TextTable table;
    table.row().cell("name").cell("value").rule();
    table.row().cell("x").cell(uint64_t(1234));
    table.row().cell("longer").cell(3.14159, 2);
    const auto text = table.render();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("1234"), std::string::npos);
    EXPECT_NE(text.find("3.14"), std::string::npos);
    EXPECT_NE(text.find("----"), std::string::npos);
    // Numeric cells right-align: "  1234" ends its column.
    EXPECT_NE(text.find("  1234"), std::string::npos);
}

TEST(TextTable, NegativeAndSignedCells)
{
    sim::TextTable table;
    table.row().cell(int64_t(-5)).cell(-2.5, 1);
    const auto text = table.render();
    EXPECT_NE(text.find("-5"), std::string::npos);
    EXPECT_NE(text.find("-2.5"), std::string::npos);
}

} // anonymous namespace
