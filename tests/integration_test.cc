/**
 * @file
 * Integration tests: the paper's headline qualitative results must
 * hold end-to-end (at reduced scale so the suite stays fast).
 *
 * These encode the "shape checks" from EXPERIMENTS.md:
 *   - l < s2 < fcm3 per benchmark (Figure 3);
 *   - context prediction captures values the computational
 *     predictors miss, and l adds almost nothing (Figure 8);
 *   - a minority of static instructions carries most of the fcm
 *     improvement (Figure 9);
 *   - most static instructions generate few unique values
 *     (Figure 10).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "exp/suite.hh"

namespace {

using namespace vp;
using namespace vp::exp;

class IntegrationSuite : public ::testing::Test
{
  protected:
    static const std::vector<BenchmarkRun> &
    runs()
    {
        static const std::vector<BenchmarkRun> cached = [] {
            SuiteOptions options;
            options.predictors = {"l", "s2", "fcm3"};
            options.config.scale = 30;
            options.overlap = 3;
            options.improvementA = 2;
            options.improvementB = 1;
            options.values = true;
            return runSuite(options);
        }();
        return cached;
    }
};

TEST_F(IntegrationSuite, PredictorOrderingHoldsPerBenchmark)
{
    for (const auto &run : runs()) {
        SCOPED_TRACE(run.name);
        const double l = run.accuracyPct(0);
        const double s2 = run.accuracyPct(1);
        const double fcm3 = run.accuracyPct(2);
        EXPECT_LT(l, s2);
        EXPECT_LT(s2, fcm3);
    }
}

TEST_F(IntegrationSuite, ValuesAreHighlyPredictable)
{
    // "Simulations ... show that data values can be highly
    // predictable": fcm3 well above half overall.
    EXPECT_GT(meanAccuracyPct(runs(), 2), 60.0);
    // And the fcm advantage over stride is large (paper: ~20 pts).
    EXPECT_GT(meanAccuracyPct(runs(), 2) - meanAccuracyPct(runs(), 1),
              8.0);
}

TEST_F(IntegrationSuite, M88ksimMostPredictableGoNearLeast)
{
    std::vector<std::pair<double, std::string>> ranked;
    for (const auto &run : runs())
        ranked.emplace_back(run.accuracyPct(2), run.name);
    std::sort(ranked.begin(), ranked.end());

    // Paper Figure 3: m88ksim on top; go at the bottom. At the
    // reduced integration scale go must still sit in the bottom two.
    EXPECT_EQ(ranked.back().second, "m88ksim");
    EXPECT_TRUE(ranked[0].second == "go" || ranked[1].second == "go")
            << ranked[0].second << ", " << ranked[1].second;
}

TEST_F(IntegrationSuite, Figure8SliceShapes)
{
    // Aggregate overlap over all benchmarks.
    core::OverlapTracker all(3);
    for (const auto &run : runs())
        all.merge(*run.overlap);

    const double np = all.fraction(0b000);
    const double lsf = all.fraction(0b111);
    double f_only = all.fraction(0b100);
    // l-or-s-only without f: buckets 001, 010, 011.
    const double ls_not_f = all.fraction(0b001) + all.fraction(0b010) +
            all.fraction(0b011);

    // Paper: np ~18%, lsf ~40%, f-only >20%, non-f-computational <5%
    // of predictions. Generous bands: the shape, not the digits.
    EXPECT_LT(np, 0.45);
    EXPECT_GT(lsf, 0.15);
    EXPECT_GT(f_only, 0.08);
    EXPECT_GT(f_only, ls_not_f / 2);
    // Last value adds almost nothing beyond stride+fcm.
    const double l_only = all.fraction(0b001);
    EXPECT_LT(l_only, 0.02);
}

TEST_F(IntegrationSuite, Figure9ConcentrationOfImprovement)
{
    // Paper: ~20% of statics give ~97% of fcm-over-stride gains.
    for (const auto &run : runs()) {
        SCOPED_TRACE(run.name);
        const double pct =
                run.improvement->staticPctForImprovement(0.9);
        EXPECT_LT(pct, 60.0);
    }
}

TEST_F(IntegrationSuite, Figure10FewUniqueValues)
{
    for (const auto &run : runs()) {
        SCOPED_TRACE(run.name);
        // Paper: >=50% of statics generate one value; >=90% fewer
        // than 64. Bands are loosened: the proxies have only the hot
        // kernels, while SPEC binaries carry large amounts of cold
        // code whose statics produce a single value (EXPERIMENTS.md
        // discusses this shift).
        EXPECT_GT(run.values->staticFractionAtMost(1), 0.08);
        EXPECT_GT(run.values->staticFractionAtMost(64), 0.45);
        EXPECT_GT(run.values->dynamicFractionAtMost(4096), 0.75);
    }
}

TEST_F(IntegrationSuite, PredictedFractionsInBand)
{
    for (const auto &run : runs()) {
        SCOPED_TRACE(run.name);
        const double pct = 100.0 * run.exec.predictedFraction();
        EXPECT_GT(pct, 55.0);
        EXPECT_LT(pct, 92.0);
    }
}

} // anonymous namespace
