// vplint fixture: per-event virtual dispatch through a predictor
// pointer inside a hot-loop body. `tools/vplint` on this file must
// exit nonzero with [hotpath-virtual] violations — the batched
// replay contract says hot bodies dispatch at batch granularity
// (->evalBatch / ->trainBatch), never per event.

#include <cstdint>
#include <cstddef>

namespace fixture {

struct Inner
{
    virtual ~Inner() = default;
    virtual uint64_t predict(uint64_t pc) = 0;
    virtual void update(uint64_t pc, uint64_t value) = 0;
};

class Wrapper
{
  public:
    explicit Wrapper(Inner *inner) : inner_(inner) {}

    void
    evalBatch(const uint64_t *pcs, const uint64_t *values, size_t n,
              uint64_t *valid, uint64_t *correct)
    {
        (void)valid;
        (void)correct;
        for (size_t i = 0; i < n; ++i) {
            last_ = inner_->predict(pcs[i]);
            inner_->update(pcs[i], values[i]);
        }
    }

  private:
    Inner *inner_;
    uint64_t last_ = 0;
};

} // namespace fixture
