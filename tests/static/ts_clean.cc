// Positive thread-safety fixture: the sanctioned idioms from
// util/mutex.hh — scoped locking, adopt-lock after a manual acquire,
// condition-variable predicate loops written manually in the
// annotated scope, and a VP_REQUIRES helper. Must compile CLEAN
// under `clang++ -Wthread-safety -Werror`; a warning here means the
// wrapper annotations regressed and every converted call site in
// src/ is about to go red.

#include "util/mutex.hh"

#include <mutex>

namespace {

class Queue
{
  public:
    void
    push(int value)
    {
        const vp::util::MutexLock lock(mutex_);
        items_[slotLocked()] = value;
        ++count_;
        ready_.notify_one();
    }

    int
    pop()
    {
        const vp::util::MutexLock lock(mutex_);
        while (count_ == 0)
            ready_.wait(mutex_);
        --count_;
        return items_[slotLocked()];
    }

    /** Adopt-lock after a manual acquire (the lockStripe shape). */
    int
    peekContended()
    {
        if (!mutex_.try_lock())
            mutex_.lock();
        const vp::util::MutexLock lock(mutex_, std::adopt_lock);
        return count_ == 0 ? 0 : items_[(count_ - 1) % kSlots];
    }

  private:
    static constexpr unsigned kSlots = 8;

    /** Caller-holds helper (the laneForThisThread shape). */
    unsigned
    slotLocked() const VP_REQUIRES(mutex_)
    {
        return count_ % kSlots;
    }

    mutable vp::util::Mutex mutex_;
    vp::util::CondVar ready_;
    unsigned count_ VP_GUARDED_BY(mutex_) = 0;
    int items_[kSlots] VP_GUARDED_BY(mutex_) = {};
};

} // anonymous namespace

int
main()
{
    Queue queue;
    queue.push(1);
    if (queue.peekContended() != 1)
        return 1;
    return queue.pop() == 1 ? 0 : 1;
}
