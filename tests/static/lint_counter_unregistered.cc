// vplint fixture: emitting a counter whose dotted name is not
// documented in the README counter table. `tools/vplint` on this
// file must exit nonzero with a [counter-registry] violation.

#include <cstdint>
#include <string>

namespace fixture {

struct Registry
{
    void add(const std::string &name, uint64_t delta);
};

inline void
emit(Registry &registry)
{
    // Not in README.md and not covered by any `family.*` entry.
    registry.add("bogus.unregistered_counter", 1);
}

} // namespace fixture
