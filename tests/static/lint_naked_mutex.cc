// vplint fixture: naked std::mutex / std::lock_guard outside
// src/util/. `tools/vplint` on this file must exit nonzero with
// [mutex-discipline] violations — every lock outside util/ goes
// through the annotated util::Mutex wrappers so -Wthread-safety can
// see it.

#include <mutex>

namespace fixture {

class Counter
{
  public:
    void
    increment()
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++value_;
    }

  private:
    std::mutex mutex_;
    long value_ = 0;
};

} // namespace fixture
