// vplint fixture: heap allocation inside a hot-loop body.
// `tools/vplint tests/static/lint_hotpath_alloc.cc` must exit
// nonzero with a [hotpath-alloc] violation (wired into ctest with
// WILL_FAIL, label `static`).

#include <cstdint>
#include <cstddef>
#include <memory>

namespace fixture {

struct Node
{
    uint64_t value;
};

class Predictor
{
  public:
    void
    trainBatch(const uint64_t *pcs, const uint64_t *values, size_t n,
               uint64_t *valid, uint64_t *correct)
    {
        (void)valid;
        (void)correct;
        for (size_t i = 0; i < n; ++i) {
            // Per-event allocation: exactly what the rule forbids.
            auto node = std::make_unique<Node>();
            node->value = pcs[i] ^ values[i];
            last_ = node->value;
        }
    }

  private:
    uint64_t last_ = 0;
};

} // namespace fixture
