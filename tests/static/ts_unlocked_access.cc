// Negative thread-safety fixture: reading and writing a
// VP_GUARDED_BY member without holding its mutex. Must FAIL to
// compile under `clang++ -Wthread-safety -Werror` — the ctest entry
// (label `static`, WILL_FAIL) pins that the annotations in
// util/mutex.hh actually bite. Compiles silently under gcc, where
// the macros are no-ops; the test is only registered for Clang.

#include "util/mutex.hh"

namespace {

class Account
{
  public:
    void
    depositLocked(int amount)
    {
        const vp::util::MutexLock lock(mutex_);
        balance_ += amount;
    }

    int
    balanceRace() const
    {
        return balance_;    // guarded read, no lock: -Wthread-safety
    }

  private:
    mutable vp::util::Mutex mutex_;
    int balance_ VP_GUARDED_BY(mutex_) = 0;
};

} // anonymous namespace

int
main()
{
    Account account;
    account.depositLocked(1);
    return account.balanceRace();
}
