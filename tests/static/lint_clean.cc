// vplint fixture: the sanctioned shapes of everything the other
// fixtures violate. `tools/vplint` on this file must exit 0 —
// a false positive here means the linter regressed.

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

#include "util/mutex.hh"

namespace fixture {

struct Inner
{
    virtual ~Inner() = default;
    virtual void evalBatch(const uint64_t *pcs, const uint64_t *values,
                           size_t n, uint64_t *valid,
                           uint64_t *correct) = 0;
};

struct Registry
{
    void add(const std::string &name, uint64_t delta);
};

class Clean
{
  public:
    explicit Clean(Inner *inner) : inner_(inner) {}

    void
    evalBatch(const uint64_t *pcs, const uint64_t *values, size_t n,
              uint64_t *valid, uint64_t *correct)
    {
        // Amortised growth is allowed; dispatch is batch-granular.
        scratch_.resize(n);
        inner_->evalBatch(pcs, values, n, valid, correct);
    }

    void
    emit(Registry &registry)
    {
        // Documented in the README table (exact name + family glob).
        registry.add("replay.events", 1);
        registry.add("net.frames", 1);
    }

    void
    touch()
    {
        const vp::util::MutexLock lock(mutex_);
        ++touches_;
    }

  private:
    Inner *inner_;
    std::vector<uint64_t> scratch_;
    mutable vp::util::Mutex mutex_;
    uint64_t touches_ VP_GUARDED_BY(mutex_) = 0;
};

} // namespace fixture
