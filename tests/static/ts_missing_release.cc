// Negative thread-safety fixture: a path that acquires a mutex and
// returns without releasing it. Must FAIL to compile under
// `clang++ -Wthread-safety -Werror` (expected-warning: mutex is
// still held at the end of function). See ts_unlocked_access.cc for
// how the fixtures are wired into ctest.

#include "util/mutex.hh"

namespace {

vp::util::Mutex g_mutex;
int g_value VP_GUARDED_BY(g_mutex) = 0;

int
takeAndLeak(bool flag)
{
    g_mutex.lock();
    if (flag)
        return 0;       // early return with g_mutex held: warning
    const int value = g_value;
    g_mutex.unlock();
    return value;
}

} // anonymous namespace

int
main()
{
    return takeAndLeak(false);
}
