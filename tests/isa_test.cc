/**
 * @file
 * Unit tests for the ISA module: opcode metadata, binary encoding,
 * program validation, and the disassembler.
 */

#include <gtest/gtest.h>

#include "isa/disasm.hh"
#include "isa/encoding.hh"
#include "isa/program.hh"
#include "synth/sequences.hh"

namespace {

using namespace vp::isa;

TEST(OpcodeMeta, EveryOpcodeHasANonEmptyUniqueName)
{
    std::set<std::string_view> names;
    for (int i = 0; i < numOpcodes; ++i) {
        const auto op = static_cast<Opcode>(i);
        EXPECT_FALSE(opcodeName(op).empty());
        EXPECT_TRUE(names.insert(opcodeName(op)).second)
                << "duplicate mnemonic " << opcodeName(op);
    }
}

TEST(OpcodeMeta, NameRoundTrips)
{
    for (int i = 0; i < numOpcodes; ++i) {
        const auto op = static_cast<Opcode>(i);
        const auto parsed = opcodeFromName(opcodeName(op));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, op);
    }
    EXPECT_FALSE(opcodeFromName("bogus").has_value());
    EXPECT_FALSE(opcodeFromName("").has_value());
}

TEST(OpcodeMeta, CategoryNamesRoundTrip)
{
    for (int i = 0; i < numCategories; ++i) {
        const auto cat = static_cast<Category>(i);
        const auto parsed = categoryFromName(categoryName(cat));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, cat);
    }
    EXPECT_FALSE(categoryFromName("Bogus").has_value());
}

TEST(OpcodeMeta, PredictedCategoriesMatchPaperTable3)
{
    // The paper's Table 3 defines eight predicted categories; stores,
    // branches, jumps and system ops are excluded (Section 3).
    EXPECT_TRUE(isPredictedCategory(Category::AddSub));
    EXPECT_TRUE(isPredictedCategory(Category::Loads));
    EXPECT_TRUE(isPredictedCategory(Category::Logic));
    EXPECT_TRUE(isPredictedCategory(Category::Shift));
    EXPECT_TRUE(isPredictedCategory(Category::Set));
    EXPECT_TRUE(isPredictedCategory(Category::MultDiv));
    EXPECT_TRUE(isPredictedCategory(Category::Lui));
    EXPECT_TRUE(isPredictedCategory(Category::Other));
    EXPECT_FALSE(isPredictedCategory(Category::Store));
    EXPECT_FALSE(isPredictedCategory(Category::Branch));
    EXPECT_FALSE(isPredictedCategory(Category::Jump));
    EXPECT_FALSE(isPredictedCategory(Category::System));
}

TEST(OpcodeMeta, JumpsWriteRegistersButAreNotPredicted)
{
    EXPECT_TRUE(opcodeWritesReg(Opcode::Jal));
    EXPECT_TRUE(opcodeWritesReg(Opcode::Jalr));
    EXPECT_FALSE(opcodePredicted(Opcode::Jal));
    EXPECT_FALSE(opcodePredicted(Opcode::Jalr));
}

TEST(OpcodeMeta, StoresAndBranchesDoNotWrite)
{
    for (auto op : {Opcode::Sd, Opcode::Sw, Opcode::Sh, Opcode::Sb,
                    Opcode::Beq, Opcode::Bne, Opcode::Blt, Opcode::Bge,
                    Opcode::Bltu, Opcode::Bgeu, Opcode::Beqz,
                    Opcode::Bnez, Opcode::J, Opcode::Jr, Opcode::Nop,
                    Opcode::Halt}) {
        EXPECT_FALSE(opcodeWritesReg(op)) << opcodeName(op);
        EXPECT_FALSE(opcodePredicted(op)) << opcodeName(op);
    }
}

TEST(OpcodeMeta, CategorySpotChecks)
{
    EXPECT_EQ(opcodeCategory(Opcode::Add), Category::AddSub);
    EXPECT_EQ(opcodeCategory(Opcode::Ld), Category::Loads);
    EXPECT_EQ(opcodeCategory(Opcode::Nor), Category::Logic);
    EXPECT_EQ(opcodeCategory(Opcode::Srai), Category::Shift);
    EXPECT_EQ(opcodeCategory(Opcode::Sltu), Category::Set);
    EXPECT_EQ(opcodeCategory(Opcode::Rem), Category::MultDiv);
    EXPECT_EQ(opcodeCategory(Opcode::Lui), Category::Lui);
    EXPECT_EQ(opcodeCategory(Opcode::Abs), Category::Other);
    EXPECT_EQ(opcodeCategory(Opcode::Sb), Category::Store);
    EXPECT_EQ(opcodeCategory(Opcode::Beqz), Category::Branch);
    EXPECT_EQ(opcodeCategory(Opcode::Jalr), Category::Jump);
    EXPECT_EQ(opcodeCategory(Opcode::Halt), Category::System);
}

// ------------------------------------------------------- encoding

TEST(Encoding, RoundTripsAllOpcodesWithExtremeFields)
{
    for (int i = 0; i < numOpcodes; ++i) {
        for (int32_t imm : {0, 1, -1, 42, -65536,
                            std::numeric_limits<int32_t>::max(),
                            std::numeric_limits<int32_t>::min()}) {
            const Instr instr(static_cast<Opcode>(i), 31, 0, 17, imm);
            const auto decoded = decode(encode(instr));
            ASSERT_TRUE(decoded.has_value());
            EXPECT_EQ(*decoded, instr);
        }
    }
}

TEST(Encoding, RejectsBadOpcodeField)
{
    const uint64_t bad = 0xff;      // opcode byte out of range
    EXPECT_FALSE(decode(bad).has_value());
}

TEST(Encoding, RejectsBadRegisterFields)
{
    Instr instr = makeR(Opcode::Add, 1, 2, 3);
    uint64_t word = encode(instr);
    word |= uint64_t(200) << 8;     // rd = 200
    EXPECT_FALSE(decode(word).has_value());
}

class EncodingFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(EncodingFuzz, RandomInstructionsRoundTripThroughWords)
{
    vp::synth::Rng rng(GetParam());
    for (int n = 0; n < 200; ++n) {
        Instr instr;
        instr.op = static_cast<Opcode>(rng.range(numOpcodes));
        instr.rd = static_cast<uint8_t>(rng.range(numRegs));
        instr.rs1 = static_cast<uint8_t>(rng.range(numRegs));
        instr.rs2 = static_cast<uint8_t>(rng.range(numRegs));
        instr.imm = static_cast<int32_t>(rng.next());
        const auto decoded = decode(encode(instr));
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(*decoded, instr);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingFuzz,
                         ::testing::Values(1, 7, 42, 1234, 99999));

TEST(Encoding, WholeSectionRoundTrip)
{
    std::vector<Instr> code = {
        makeI(Opcode::Addi, 1, 0, 5),
        makeR(Opcode::Add, 2, 1, 1),
        makeJ(Opcode::Halt, 0),
    };
    const auto words = encodeAll(code);
    const auto back = decodeAll(words);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, code);

    auto corrupted = words;
    corrupted[1] = 0xfe;            // invalid opcode
    EXPECT_FALSE(decodeAll(corrupted).has_value());
}

// ------------------------------------------------------- program

TEST(Program, ValidateAcceptsGoodProgram)
{
    Program prog;
    prog.code = {
        makeI(Opcode::Addi, 1, 0, 3),
        makeB(Opcode::Bnez, 1, 0, 0),
        makeJ(Opcode::Halt, 0),
    };
    EXPECT_EQ(prog.validate(), "");
}

TEST(Program, ValidateRejectsBranchOutOfRange)
{
    Program prog;
    prog.code = {
        makeB(Opcode::Beq, 1, 2, 7),
        makeJ(Opcode::Halt, 0),
    };
    EXPECT_NE(prog.validate(), "");
}

TEST(Program, StaticCountsByCategory)
{
    Program prog;
    prog.code = {
        makeI(Opcode::Addi, 1, 0, 3),
        makeR(Opcode::Add, 2, 1, 1),
        makeMem(Opcode::Ld, 3, 1, 0),
        makeMem(Opcode::Sd, 3, 1, 0),
        makeJ(Opcode::Halt, 0),
    };
    EXPECT_EQ(prog.countPredictedStatic(), 3u);
    EXPECT_EQ(prog.countPredictedStatic(Category::AddSub), 2u);
    EXPECT_EQ(prog.countPredictedStatic(Category::Loads), 1u);
    EXPECT_EQ(prog.countPredictedStatic(Category::Store), 0u);
}

// ------------------------------------------------------- disasm

TEST(Disasm, FormatsRepresentativeInstructions)
{
    EXPECT_EQ(disassemble(makeR(Opcode::Add, 1, 2, 3)),
              "add r1, r2, r3");
    EXPECT_EQ(disassemble(makeI(Opcode::Addi, 5, 5, -4)),
              "addi r5, r5, -4");
    EXPECT_EQ(disassemble(makeMem(Opcode::Ld, 7, 30, 16)),
              "ld r7, 16(r30)");
    EXPECT_EQ(disassemble(makeMem(Opcode::Sw, 7, 30, -8)),
              "sw r7, -8(r30)");
    EXPECT_EQ(disassemble(makeB(Opcode::Beq, 1, 2, 14)),
              "beq r1, r2, 14");
    EXPECT_EQ(disassemble(makeU(Opcode::Lui, 9, 100)), "lui r9, 100");
    EXPECT_EQ(disassemble(makeJ(Opcode::J, 3)), "j 3");
    EXPECT_EQ(disassemble(Instr(Opcode::Halt, 0, 0, 0, 0)), "halt");
}

TEST(Disasm, ProgramListingIncludesLabelsAndPcs)
{
    Program prog;
    prog.code = {
        makeI(Opcode::Addi, 1, 0, 3),
        makeJ(Opcode::Halt, 0),
    };
    prog.codeSymbols["main"] = 0;
    const auto text = disassemble(prog);
    EXPECT_NE(text.find("main:"), std::string::npos);
    EXPECT_NE(text.find("0:"), std::string::npos);
    EXPECT_NE(text.find("halt"), std::string::npos);
}

} // anonymous namespace
