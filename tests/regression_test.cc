/**
 * @file
 * Regression pins and cross-module round trips:
 *  - the exact Figure 2 prediction streams;
 *  - disassembler output re-assembles to the identical program;
 *  - binary-encoded programs execute identically to the originals;
 *  - indirect calls via jalr;
 *  - reference-value tables stay self-consistent.
 */

#include <gtest/gtest.h>

#include "core/fcm.hh"
#include "core/learning.hh"
#include "core/stride.hh"
#include "exp/paper_data.hh"
#include "isa/disasm.hh"
#include "isa/encoding.hh"
#include "masm/assembler.hh"
#include "masm/builder.hh"
#include "synth/sequences.hh"
#include "vm/machine.hh"
#include "workloads/workload.hh"

namespace {

using namespace vp;
using namespace vp::masm;
using namespace vp::masm::reg;

// ----------------------------------------------- Figure 2 pinning

TEST(Figure2Pin, StridePredictionStreamMatchesThePaper)
{
    // Paper Figure 2, stride predictor on 1 2 3 4 repeating:
    // steady-state predictions "5 2 3 4" (same mistake each wrap).
    core::StridePredictor stride;
    const auto seq = synth::repeatedStrideSeq(1, 1, 4, 16);
    const auto result = core::analyzeLearning(stride, seq);

    // From index 4 on, predictions follow the published stream.
    const uint64_t expected[] = {5, 2, 3, 4};
    for (size_t i = 4; i < seq.size(); ++i) {
        ASSERT_TRUE(result.predictionAt[i].valid);
        EXPECT_EQ(result.predictionAt[i].value, expected[(i - 4) % 4])
                << "index " << i;
    }
}

TEST(Figure2Pin, FcmPredictionStreamMatchesThePaper)
{
    // Paper Figure 2, order-2 fcm: no prediction for 6 values, then
    // the exact repeating sequence with no mistakes.
    core::FcmConfig config;
    config.order = 2;
    config.blending = core::FcmBlending::None;
    core::FcmPredictor fcm(config);
    const auto seq = synth::repeatedStrideSeq(1, 1, 4, 16);
    const auto result = core::analyzeLearning(fcm, seq);

    for (size_t i = 0; i < 6; ++i)
        EXPECT_FALSE(result.predictionAt[i].valid) << i;
    for (size_t i = 6; i < seq.size(); ++i) {
        ASSERT_TRUE(result.predictionAt[i].valid);
        EXPECT_EQ(result.predictionAt[i].value, seq[i]) << i;
    }
}

// --------------------------------------------- cross-module trips

TEST(RoundTrip, DisassembledWorkloadReassemblesIdentically)
{
    workloads::WorkloadConfig config;
    config.scale = 5;
    for (const char *name : {"compress", "go", "m88ksim"}) {
        SCOPED_TRACE(name);
        const auto prog = workloads::findWorkload(name).build(config);

        // Disassemble instruction by instruction into a text program
        // (labels become absolute targets, which the grammar allows
        // only via numeric immediates - so go through .text directly).
        std::string source = ".text\n";
        for (const auto &instr : prog.code)
            source += isa::disassemble(instr) + "\n";

        // Branch/jump operands print as bare numbers; the assembler
        // expects labels there, so compare via encoding round trip
        // instead for control transfers and via re-assembly for the
        // rest. The encoding round trip covers every instruction:
        const auto words = isa::encodeAll(prog.code);
        const auto back = isa::decodeAll(words);
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, prog.code);
    }
}

TEST(RoundTrip, EncodedProgramExecutesIdentically)
{
    workloads::WorkloadConfig config;
    config.scale = 5;
    const auto prog = workloads::findWorkload("perl").build(config);

    // Round trip the code section through its binary form.
    auto decoded = isa::decodeAll(isa::encodeAll(prog.code));
    ASSERT_TRUE(decoded.has_value());
    isa::Program copy = prog;
    copy.code = std::move(*decoded);

    vm::RecordingSink trace_a, trace_b;
    vm::Machine machine_a, machine_b;
    machine_a.setSink(&trace_a);
    machine_b.setSink(&trace_b);
    ASSERT_TRUE(machine_a.run(prog).ok());
    ASSERT_TRUE(machine_b.run(copy).ok());

    ASSERT_EQ(trace_a.events.size(), trace_b.events.size());
    for (size_t i = 0; i < trace_a.events.size(); ++i) {
        EXPECT_EQ(trace_a.events[i].pc, trace_b.events[i].pc);
        EXPECT_EQ(trace_a.events[i].value, trace_b.events[i].value);
    }
}

TEST(RoundTrip, AssemblerAndBuilderProduceTheSameProgram)
{
    ProgramBuilder b("twin");
    const auto loop = b.newLabel();
    b.li(t0, 5);
    b.bind(loop);
    b.addi(t1, t1, 2);
    b.addi(t0, t0, -1);
    b.bnez(t0, loop);
    b.halt();
    const auto built = b.build();

    const auto assembled = masm::assemble("twin", R"(
        li   t0, 5
loop:   addi t1, t1, 2
        addi t0, t0, -1
        bnez t0, loop
        halt
    )");
    EXPECT_EQ(built.code, assembled.code);
}

// ------------------------------------------------- VM control flow

TEST(VmIndirect, JalrCallsThroughARegister)
{
    ProgramBuilder b("jalr");
    const auto fn = b.newLabel();
    const auto after = b.newLabel();
    b.li(t0, 5);                    // pc 0: patched below
    b.jalr(ra, t0);                 // indirect call
    b.mov(t2, v0);
    b.halt();
    b.nop();                        // padding so fn sits at pc 5...
    b.bind(fn);
    b.li(v0, 321);
    b.ret();
    b.bind(after);
    const auto prog_template = b.build();

    // Recompute the function entry and patch the li operand, because
    // hand-counting pcs is fragile: find the li 321 instruction.
    isa::Program prog = prog_template;
    int64_t entry = -1;
    for (size_t pc = 0; pc < prog.code.size(); ++pc) {
        if (prog.code[pc].op == isa::Opcode::Addi &&
            prog.code[pc].imm == 321) {
            entry = static_cast<int64_t>(pc);
            break;
        }
    }
    ASSERT_GE(entry, 0);
    prog.code[0].imm = static_cast<int32_t>(entry);

    vm::Machine machine;
    const auto result = machine.run(prog);
    ASSERT_TRUE(result.ok()) << result.diagnostic;
    EXPECT_EQ(machine.reg(t2), 321);
}

TEST(VmIndirect, JrReturnsThroughAnyRegister)
{
    // pc 0: li (one addi), pc 1: jr, pc 2: skipped, pc 3: target.
    const auto prog = masm::assemble("jr", R"(
        li   t5, 3
        jr   t5
        li   t0, 1          # skipped
        li   t0, 2          # jump target
        halt
    )");
    vm::Machine machine;
    const auto result = machine.run(prog);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(machine.reg(t0), 2);
}

// ------------------------------------------------ reference tables

TEST(PaperData, ReferenceTablesAreSelfConsistent)
{
    // Figure 3 fcm3 references: between 50 and 95, m88ksim highest.
    double best = 0;
    std::string best_name;
    for (const char *b : {"compress", "gcc", "go", "ijpeg", "m88ksim",
                          "perl", "xlisp"}) {
        const double v = vp::exp::paper::figure3Fcm3(b);
        EXPECT_GT(v, 50);
        EXPECT_LT(v, 95);
        if (v > best) {
            best = v;
            best_name = b;
        }
    }
    EXPECT_EQ(best_name, "m88ksim");

    // Table 5 rows sum to < 100% (MultDiv/Lui/Other omitted).
    for (const char *b : {"compress", "gcc", "go", "ijpeg", "m88ksim",
                          "perl", "xlisp"}) {
        double sum = 0;
        for (const char *t :
             {"AddSub", "Loads", "Logic", "Shift", "Set"})
            sum += vp::exp::paper::table5DynamicPct(b, t);
        EXPECT_GT(sum, 70) << b;
        EXPECT_LT(sum, 100) << b;
    }

    // Figure 11 is monotonically increasing with diminishing gains.
    double prev = 0, prev_gain = 100;
    for (int order = 1; order <= 8; ++order) {
        const double v = vp::exp::paper::figure11Accuracy(order);
        EXPECT_GT(v, prev);
        if (order > 1) {
            EXPECT_LE(v - prev, prev_gain + 1e-9);
            prev_gain = v - prev;
        }
        prev = v;
    }
}

} // anonymous namespace
