/**
 * @file
 * Tests for the vpexp driver CLI (exp/vpexp.hh): exit codes, --list
 * output, format/output-directory handling, and the shape of the
 * machine-readable results.
 *
 * The driver runs in-process (vpexpMain), so these tests pin the
 * exact contract the ctest bench_smoke.vpexp_* shards and CI rely on.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/experiment.hh"
#include "exp/spec.hh"
#include "exp/vpexp.hh"

namespace {

using namespace vp;
namespace fs = std::filesystem;

int
runDriver(const std::vector<std::string> &args, std::string *out = nullptr)
{
    std::vector<std::string> full = {"vpexp"};
    full.insert(full.end(), args.begin(), args.end());
    std::vector<const char *> argv;
    for (const auto &arg : full)
        argv.push_back(arg.c_str());

    testing::internal::CaptureStdout();
    const int rc = exp::vpexpMain(static_cast<int>(argv.size()),
                                  argv.data());
    const std::string captured = testing::internal::GetCapturedStdout();
    if (out)
        *out = captured;
    return rc;
}

/** A per-test scratch directory under the system temp dir. */
class ScratchDir
{
  public:
    ScratchDir()
    {
        std::string templ =
                (fs::temp_directory_path() / "vpexp-test-XXXXXX")
                        .string();
        if (::mkdtemp(templ.data()) == nullptr)
            throw std::runtime_error("mkdtemp failed");
        path_ = templ;
    }

    ~ScratchDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }

    const fs::path &path() const { return path_; }

  private:
    fs::path path_;
};

std::string
slurp(const fs::path &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Braces/brackets balance and strings terminate outside strings. */
void
expectStructurallyValidJson(const std::string &text)
{
    int braces = 0, brackets = 0;
    bool in_string = false, escaped = false;
    for (const char c : text) {
        if (escaped) {
            escaped = false;
            continue;
        }
        if (c == '\\') {
            escaped = true;
        } else if (c == '"') {
            in_string = !in_string;
        } else if (!in_string) {
            braces += c == '{' ? 1 : c == '}' ? -1 : 0;
            brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
            ASSERT_GE(braces, 0);
            ASSERT_GE(brackets, 0);
        }
    }
    EXPECT_FALSE(in_string);
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

TEST(VpexpCli, ListShowsEveryRegisteredExperiment)
{
    std::string out;
    EXPECT_EQ(runDriver({"--list"}, &out), 0);
    for (const auto &experiment : exp::registry().all()) {
        EXPECT_NE(out.find(experiment.name), std::string::npos)
                << experiment.name;
        EXPECT_NE(out.find(experiment.description), std::string::npos)
                << experiment.name;
    }
}

TEST(VpexpCli, UsageErrorsExitTwo)
{
    EXPECT_EQ(runDriver({}), 2);                       // nothing to run
    EXPECT_EQ(runDriver({"no-such-experiment"}), 2);
    EXPECT_EQ(runDriver({"table1", "--format", "yaml"}), 2);
    EXPECT_EQ(runDriver({"table1", "--format", "csv"}), 2);  // no --out
    EXPECT_EQ(runDriver({"table1", "--jobs", "banana"}), 2);
    EXPECT_EQ(runDriver({"table1", "--jobs", "1O"}), 2);   // trailing junk
    EXPECT_EQ(runDriver({"table1", "--jobs", "-2"}), 2);
    EXPECT_EQ(runDriver({"table1", "--bogus-flag"}), 2);
    EXPECT_EQ(runDriver({"--jobs"}), 2);               // missing value
    EXPECT_EQ(runDriver({"table1", "--regions", "banana"}), 2);
    EXPECT_EQ(runDriver({"table1", "--regions", "0"}), 2);
    EXPECT_EQ(runDriver({"table1", "--regions", "2x"}), 2);
    EXPECT_EQ(runDriver({"--regions"}), 2);            // missing value
    EXPECT_EQ(runDriver({"table1", "--warmup", "soon"}), 2);
    EXPECT_EQ(runDriver({"table1", "--warmup", "-1"}), 2);
    EXPECT_EQ(runDriver({"--warmup"}), 2);             // missing value
    EXPECT_EQ(runDriver({"table1", "--window", "never"}), 2);
    EXPECT_EQ(runDriver({"table1", "--window", "0"}), 2);
    EXPECT_EQ(runDriver({"table1", "--window", "-4"}), 2);
    EXPECT_EQ(runDriver({"--window"}), 2);             // missing value
    EXPECT_EQ(runDriver({"--trace-json"}), 2);         // missing value
}

TEST(VpexpCli, HelpExitsZero)
{
    std::string out;
    EXPECT_EQ(runDriver({"--help"}, &out), 0);
    EXPECT_NE(out.find("usage: vpexp"), std::string::npos);
    EXPECT_NE(out.find("--spec-help"), std::string::npos);
}

TEST(VpexpCli, SpecHelpPrintsTheGrammar)
{
    std::string out;
    EXPECT_EQ(runDriver({"--spec-help"}, &out), 0);
    // The one grammar source of truth (exp::specGrammarHelp).
    EXPECT_EQ(out, exp::specGrammarHelp());
    EXPECT_NE(out.find("hybrid("), std::string::npos);
    EXPECT_NE(out.find(";ch@"), std::string::npos);
}

TEST(VpexpCli, RunsANamedExperimentAndPrintsItsTitle)
{
    std::string out;
    EXPECT_EQ(runDriver({"table1"}, &out), 0);
    EXPECT_NE(out.find("Table 1: Behavior of Prediction Models"),
              std::string::npos);
    EXPECT_NE(out.find("sequence"), std::string::npos);
    // The run summary names the cell/dedup accounting.
    EXPECT_NE(out.find("unique cell"), std::string::npos);
}

TEST(VpexpCli, DuplicateNamesRunOnce)
{
    std::string out;
    EXPECT_EQ(runDriver({"table1", "table1"}, &out), 0);
    EXPECT_NE(out.find("1 experiment,"), std::string::npos);
}

TEST(VpexpCli, JsonFormatPrintsMachineReadableResults)
{
    std::string out;
    EXPECT_EQ(runDriver({"table1", "figure2", "--format", "json"},
                        &out),
              0);
    EXPECT_EQ(out.rfind('{', 0), 0u) << "JSON must start the output";
    EXPECT_NE(out.find("\"schema\": \"vpexp-results-v1\""),
              std::string::npos);
    EXPECT_NE(out.find("\"name\": \"table1\""), std::string::npos);
    EXPECT_NE(out.find("\"name\": \"figure2\""), std::string::npos);
    // No run summary in pure-json mode (report text and titles
    // legitimately appear *inside* the JSON strings).
    EXPECT_EQ(out.find("vpexp: "), std::string::npos);

    // Structural sanity: braces and brackets balance.
    expectStructurallyValidJson(out);
}

TEST(VpexpCli, OutDirectoryGetsTextCsvAndResultsJson)
{
    const ScratchDir scratch;
    std::string out;
    EXPECT_EQ(runDriver({"table1", "--out",
                         scratch.path().string()},
                        &out),
              0);
    EXPECT_TRUE(fs::exists(scratch.path() / "table1.txt"));
    EXPECT_TRUE(fs::exists(scratch.path() / "table1.learning.csv"));
    EXPECT_TRUE(fs::exists(scratch.path() / "BENCH_results.json"));

    const auto text = slurp(scratch.path() / "table1.txt");
    EXPECT_NE(text.find("Table 1: Behavior"), std::string::npos);
    const auto csv = slurp(scratch.path() / "table1.learning.csv");
    EXPECT_EQ(csv.rfind("sequence,", 0), 0u)
            << "CSV starts with the header row";
    const auto json = slurp(scratch.path() / "BENCH_results.json");
    EXPECT_NE(json.find("\"schema\": \"vpexp-results-v1\""),
              std::string::npos);
}

TEST(VpexpCli, FormatTableOnlyWritesNoCsvOrJson)
{
    const ScratchDir scratch;
    EXPECT_EQ(runDriver({"figure2", "--out", scratch.path().string(),
                         "--format", "table"}),
              0);
    EXPECT_TRUE(fs::exists(scratch.path() / "figure2.txt"));
    EXPECT_FALSE(fs::exists(scratch.path() / "BENCH_results.json"));
}

TEST(VpexpCli, DryRunSmokesASuiteExperimentQuickly)
{
    const ScratchDir scratch;
    std::string out;
    EXPECT_EQ(runDriver({"figure5", "--dry-run", "--jobs", "2",
                         "--out", scratch.path().string(),
                         "--format", "json"},
                        &out),
              0);
    const auto json = slurp(scratch.path() / "BENCH_results.json");
    EXPECT_NE(json.find("\"dryRun\": true"), std::string::npos);
    EXPECT_NE(json.find("\"workload\": \"compress\""),
              std::string::npos);
    EXPECT_NE(json.find("\"spec\": \"fcm3\""), std::string::npos);
    EXPECT_NE(json.find("\"coverage\": "), std::string::npos);
    EXPECT_NE(json.find("\"profitAtCost4\": "), std::string::npos);
}

TEST(VpexpCli, RegionFlagsReachTheResultsJson)
{
    const ScratchDir scratch;
    EXPECT_EQ(runDriver({"figure3", "--dry-run", "--regions", "4",
                         "--warmup", "4096", "--out",
                         scratch.path().string(), "--format", "json"}),
              0);
    const auto json = slurp(scratch.path() / "BENCH_results.json");
    EXPECT_NE(json.find("\"regions\": 4"), std::string::npos);
    EXPECT_NE(json.find("\"warmupEvents\": 4096"), std::string::npos);
}

TEST(VpexpCli, RegionRunMatchesSerialRun)
{
    // The driver's region fan-out must not change the numbers: the
    // same experiment with --regions 1 and --regions 3 (full-prefix
    // warm-up) emits identical per-cell statistics.
    const ScratchDir serial_dir, region_dir;
    EXPECT_EQ(runDriver({"figure3", "--dry-run", "--out",
                         serial_dir.path().string(), "--format",
                         "json"}),
              0);
    EXPECT_EQ(runDriver({"figure3", "--dry-run", "--regions", "3",
                         "--warmup", "99999999", "--out",
                         region_dir.path().string(), "--format",
                         "json"}),
              0);
    auto strip = [](std::string text) {
        // Drop the volatile fields (wall clock, the region count and
        // warm-up themselves); everything left must match exactly.
        for (const std::string_view key :
             {"\"wallMs\":", "\"queuedMs\":", "\"nsPerEvent\":",
              "\"regions\":", "\"warmupEvents\":"}) {
            for (size_t at = text.find(key); at != std::string::npos;
                 at = text.find(key, at)) {
                const size_t end = text.find_first_of(",}\n", at);
                text.erase(at, end - at);
            }
        }
        // The counters block is telemetry about *how* the cell ran
        // (warm-up replays, trace I/O, cache hits), which region
        // fan-out legitimately changes; erase the balanced object.
        const std::string_view key = "\"counters\": {";
        for (size_t at = text.find(key); at != std::string::npos;
             at = text.find(key, at)) {
            size_t end = at + key.size();
            int depth = 1;
            while (end < text.size() && depth > 0) {
                depth += text[end] == '{' ? 1 : text[end] == '}' ? -1 : 0;
                ++end;
            }
            text.erase(at, end - at);
        }
        return text;
    };
    EXPECT_EQ(strip(slurp(serial_dir.path() / "BENCH_results.json")),
              strip(slurp(region_dir.path() / "BENCH_results.json")));
}

TEST(VpexpCli, ResultsJsonCarriesPerCellCounters)
{
    const ScratchDir scratch;
    EXPECT_EQ(runDriver({"figure5", "--dry-run", "--out",
                         scratch.path().string(), "--format", "json"}),
              0);
    const auto json = slurp(scratch.path() / "BENCH_results.json");
    expectStructurallyValidJson(json);
    EXPECT_NE(json.find("\"counters\": {"), std::string::npos);
    EXPECT_NE(json.find("\"replay.events\""), std::string::npos);
    EXPECT_NE(json.find("\"trace.io.blocks\""), std::string::npos);
    EXPECT_NE(json.find("\"replay.batch_fill\""), std::string::npos);
    EXPECT_NE(json.find("\"queuedMs\""), std::string::npos);
}

TEST(VpexpCli, WindowFlagEmitsSeriesAndCsv)
{
    const ScratchDir scratch;
    EXPECT_EQ(runDriver({"figure5", "--dry-run", "--window", "8192",
                         "--out", scratch.path().string(), "--format",
                         "json"}),
              0);
    const auto json = slurp(scratch.path() / "BENCH_results.json");
    expectStructurallyValidJson(json);
    EXPECT_NE(json.find("\"windowEvents\": 8192"), std::string::npos);
    EXPECT_NE(json.find("\"windows\": {"), std::string::npos);
    EXPECT_NE(json.find("\"endEvent\": 8192"), std::string::npos);

    const auto csv = slurp(scratch.path() / "windows.csv");
    EXPECT_EQ(csv.rfind("cell,workload,spec,endEvent,eligible,"
                        "predicted,correct\n",
                        0),
              0u);
    EXPECT_NE(csv.find(",compress,"), std::string::npos);
    EXPECT_NE(csv.find(",8192,"), std::string::npos);
}

TEST(VpexpCli, TraceJsonWritesALoadableTimeline)
{
    const ScratchDir scratch;
    const auto trace_path = scratch.path() / "timeline.json";
    EXPECT_EQ(runDriver({"figure5", "--dry-run", "--trace-json",
                         trace_path.string()}),
              0);
    ASSERT_TRUE(fs::exists(trace_path));
    const auto json = slurp(trace_path);
    expectStructurallyValidJson(json);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    // The layers all reported in: scheduler cells, suite replays,
    // trace-cache recordings, report generation.
    EXPECT_NE(json.find("\"cell compress\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"replay\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"trace-cache\""), std::string::npos);
    EXPECT_NE(json.find("\"report figure5\""), std::string::npos);
}

TEST(VpexpCli, StatsFlagPrintsTheCounterTables)
{
    std::string out;
    EXPECT_EQ(runDriver({"figure5", "--dry-run", "--stats"}, &out), 0);
    EXPECT_NE(out.find("instrumentation counters"), std::string::npos);
    EXPECT_NE(out.find("replay.events"), std::string::npos);
    EXPECT_NE(out.find("replay.batch_fill"), std::string::npos);
}

} // anonymous namespace
