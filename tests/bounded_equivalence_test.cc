/**
 * @file
 * Bounded-vs-unbounded equivalence properties over every workload
 * trace:
 *
 *  - a bounded predictor whose tables are fully associative and large
 *    enough to never evict produces *identical* per-category stats to
 *    its unbounded counterpart (the bounded machinery adds capacity
 *    pressure and nothing else);
 *  - starved configurations (tiny tables, every associativity and
 *    replacement policy) never crash and never beat the unbounded
 *    idealisation overall;
 *  - the capacity sweep's largest budget matches the unbounded
 *    accuracy within 0.1 percentage points per workload and family
 *    (the vpexp-capacity acceptance bar);
 *  - the bounded spec grammar round-trips through predictor names.
 */

#include <gtest/gtest.h>

#include "core/bounded.hh"
#include "core/fcm.hh"
#include "core/hybrid.hh"
#include "core/last_value.hh"
#include "core/stride.hh"
#include "exp/capacity.hh"
#include "exp/suite.hh"
#include "sim/driver.hh"
#include "vm/machine.hh"
#include "workloads/workload.hh"

namespace {

using namespace vp;
using namespace vp::core;

struct WorkloadTrace
{
    std::string name;
    std::vector<vm::TraceEvent> events;
    size_t staticCount = 0;
};

/** Smoke-scale traces, recorded once and replayed into every config. */
const std::vector<WorkloadTrace> &
traces()
{
    static const std::vector<WorkloadTrace> cached = [] {
        workloads::WorkloadConfig config;
        config.scale = 5;
        std::vector<WorkloadTrace> out;
        for (const auto &info : workloads::allWorkloads()) {
            WorkloadTrace trace;
            trace.name = info.name;
            const auto prog = info.build(config);
            trace.staticCount = prog.countPredictedStatic();
            vm::RecordingSink sink;
            vm::Machine machine;
            machine.setSink(&sink);
            EXPECT_TRUE(machine.run(prog).ok()) << info.name;
            trace.events = std::move(sink.events);
            out.push_back(std::move(trace));
        }
        return out;
    }();
    return cached;
}

/**
 * The paper's predict-then-update protocol over a recorded trace,
 * through the same PredictorBank path the experiment suite uses.
 */
PredictionStats
runOver(PredictorPtr pred, const std::vector<vm::TraceEvent> &events)
{
    sim::PredictorBank bank;
    bank.add(std::move(pred));
    sim::replayTrace(events, bank);
    return bank.member(0).stats;
}

/** Every counter the stats object holds, not just the accuracy. */
void
expectIdenticalStats(const PredictionStats &bounded,
                     const PredictionStats &unbounded)
{
    EXPECT_EQ(bounded.total(), unbounded.total());
    EXPECT_EQ(bounded.correct(), unbounded.correct());
    for (int c = 0; c < isa::numCategories; ++c) {
        const auto cat = static_cast<isa::Category>(c);
        EXPECT_EQ(bounded.total(cat), unbounded.total(cat))
                << "category " << c;
        EXPECT_EQ(bounded.correct(cat), unbounded.correct(cat))
                << "category " << c;
    }
}

/** Fully associative, never evicts: the idealised geometry. */
BoundedTableConfig
ampleTable(size_t entries)
{
    BoundedTableConfig config;
    config.entries = entries;
    config.ways = 0;
    return config;
}

TEST(BoundedEquivalence, LastValueMatchesUnboundedExactly)
{
    for (const auto &trace : traces()) {
        SCOPED_TRACE(trace.name);
        for (const LvPolicy policy :
             {LvPolicy::AlwaysUpdate, LvPolicy::SaturatingCounter,
              LvPolicy::Consecutive}) {
            LvConfig config;
            config.policy = policy;
            const auto a = runOver(
                    std::make_unique<LastValuePredictor>(config),
                    trace.events);
            const auto b = runOver(
                    std::make_unique<BoundedLastValuePredictor>(
                            config, ampleTable(trace.staticCount)),
                    trace.events);
            expectIdenticalStats(b, a);
        }
    }
}

TEST(BoundedEquivalence, StrideMatchesUnboundedExactly)
{
    for (const auto &trace : traces()) {
        SCOPED_TRACE(trace.name);
        for (const StridePolicy policy :
             {StridePolicy::Simple, StridePolicy::SaturatingCounter,
              StridePolicy::TwoDelta}) {
            StrideConfig config;
            config.policy = policy;
            const auto a = runOver(
                    std::make_unique<StridePredictor>(config),
                    trace.events);
            const auto b = runOver(
                    std::make_unique<BoundedStridePredictor>(
                            config, ampleTable(trace.staticCount)),
                    trace.events);
            expectIdenticalStats(b, a);
        }
    }
}

TEST(BoundedEquivalence, FcmMatchesUnboundedExactly)
{
    for (const auto &trace : traces()) {
        SCOPED_TRACE(trace.name);
        for (const FcmBlending blending :
             {FcmBlending::LazyExclusion, FcmBlending::Full,
              FcmBlending::None}) {
            FcmConfig fcm;
            fcm.order = 3;
            fcm.blending = blending;

            // Size the VPT off the unbounded context footprint: its
            // tableEntries() is exactly the number of distinct
            // (pc, order, context) tuples the bounded VPT will key.
            sim::PredictorBank bank;
            bank.add(std::make_unique<FcmPredictor>(fcm));
            sim::replayTrace(trace.events, bank);
            const auto a = bank.member(0).stats;
            const size_t contexts =
                    bank.member(0).predictor->tableEntries();

            BoundedFcmConfig config;
            config.fcm = fcm;
            config.vht = ampleTable(trace.staticCount);
            config.vpt = ampleTable(contexts + 1);
            config.maxFollowers = 0;
            const auto b = runOver(
                    std::make_unique<BoundedFcmPredictor>(config),
                    trace.events);
            expectIdenticalStats(b, a);
        }
    }
}

TEST(BoundedEquivalence, StarvedTablesNeverCrashAndNeverWin)
{
    struct Geometry
    {
        size_t entries;
        size_t ways;
        Replacement replacement;
    };
    const Geometry geometries[] = {
        {16, 1, Replacement::Lru},
        {16, 16, Replacement::Lru},
        {64, 4, Replacement::Lru},
        {64, 4, Replacement::Random},
        {64, 4, Replacement::Fifo},
        {32, 0, Replacement::Lru},
        {32, 0, Replacement::Fifo},
    };

    for (const auto &trace : traces()) {
        SCOPED_TRACE(trace.name);

        FcmConfig fcm3;
        fcm3.order = 3;
        const double lv_acc =
                runOver(std::make_unique<LastValuePredictor>(),
                        trace.events)
                        .accuracy();
        const double stride_acc =
                runOver(std::make_unique<StridePredictor>(),
                        trace.events)
                        .accuracy();
        const double fcm_acc =
                runOver(std::make_unique<FcmPredictor>(fcm3),
                        trace.events)
                        .accuracy();

        for (const auto &geometry : geometries) {
            SCOPED_TRACE(std::to_string(geometry.entries) + "x" +
                         std::to_string(geometry.ways));
            BoundedTableConfig table;
            table.entries = geometry.entries;
            table.ways = geometry.ways;
            table.replacement = geometry.replacement;

            const auto lv_stats = runOver(
                    std::make_unique<BoundedLastValuePredictor>(
                            LvConfig{}, table),
                    trace.events);
            EXPECT_EQ(lv_stats.total(), trace.events.size());
            EXPECT_LE(lv_stats.accuracy(), lv_acc);

            const auto stride_stats = runOver(
                    std::make_unique<BoundedStridePredictor>(
                            StrideConfig{}, table),
                    trace.events);
            EXPECT_LE(stride_stats.accuracy(), stride_acc);

            BoundedFcmConfig bounded_fcm;
            bounded_fcm.fcm = fcm3;
            bounded_fcm.vht = table;
            bounded_fcm.vpt = table;
            bounded_fcm.maxFollowers = 4;
            const auto fcm_stats = runOver(
                    std::make_unique<BoundedFcmPredictor>(bounded_fcm),
                    trace.events);
            EXPECT_LE(fcm_stats.accuracy(), fcm_acc);
        }
    }
}

/**
 * FIFO evicts by insertion order, not recency: re-touching an entry
 * saves it from LRU but not from FIFO.
 */
TEST(BoundedEquivalence, FifoEvictsOldestInsertionNotLeastRecent)
{
    for (const Replacement policy :
         {Replacement::Lru, Replacement::Fifo}) {
        SCOPED_TRACE(policy == Replacement::Lru ? "lru" : "fifo");
        BoundedTableConfig table;
        table.entries = 2;
        table.ways = 2;             // one set: pure victim-choice test
        table.replacement = policy;
        BoundedLastValuePredictor pred(LvConfig{}, table);

        pred.update(1, 10);         // insert A
        pred.update(2, 20);         // insert B
        pred.update(1, 11);         // touch A: most recent, oldest
        pred.update(3, 30);         // full set: LRU evicts B, FIFO A

        if (policy == Replacement::Lru) {
            EXPECT_TRUE(pred.predict(1).valid);
            EXPECT_EQ(pred.predict(1).value, 11u);
            EXPECT_FALSE(pred.predict(2).valid);
        } else {
            EXPECT_FALSE(pred.predict(1).valid);
            EXPECT_TRUE(pred.predict(2).valid);
            EXPECT_EQ(pred.predict(2).value, 20u);
        }
        EXPECT_TRUE(pred.predict(3).valid);
        EXPECT_EQ(pred.evictions(), 1u);
    }
}

/** An ample-capacity bounded hybrid: fully associative components
 *  and chooser sized to never evict, unbounded followers. */
std::unique_ptr<HybridPredictor>
ampleBoundedHybrid(const WorkloadTrace &trace, size_t fcm_contexts)
{
    BoundedFcmConfig fcm;
    fcm.fcm.order = 3;
    fcm.vht = ampleTable(trace.staticCount);
    fcm.vpt = ampleTable(fcm_contexts + 1);
    fcm.maxFollowers = 0;
    HybridChooser chooser;
    chooser.table = ampleTable(trace.staticCount);
    return std::make_unique<HybridPredictor>(
            std::make_unique<BoundedStridePredictor>(
                    StrideConfig{}, ampleTable(trace.staticCount)),
            std::make_unique<BoundedFcmPredictor>(fcm), chooser);
}

/**
 * The composed-hybrid equivalence: a bounded hybrid whose chooser and
 * both components have ample capacity is byte-identical to the
 * unbounded `hybrid` — composition adds capacity pressure and
 * nothing else.
 */
TEST(BoundedEquivalence, ComposedHybridMatchesUnboundedExactly)
{
    for (const auto &trace : traces()) {
        SCOPED_TRACE(trace.name);

        // Size the VPT off the unbounded fcm3 context footprint, as
        // the fcm equivalence test does.
        FcmConfig fcm3;
        fcm3.order = 3;
        sim::PredictorBank bank;
        bank.add(std::make_unique<FcmPredictor>(fcm3));
        sim::replayTrace(trace.events, bank);
        const size_t contexts = bank.member(0).predictor->tableEntries();

        const auto unbounded = runOver(
                std::make_unique<HybridPredictor>(), trace.events);
        const auto bounded = runOver(
                ampleBoundedHybrid(trace, contexts), trace.events);
        expectIdenticalStats(bounded, unbounded);
    }
}

/**
 * Starved chooser geometries: components at ample capacity, chooser
 * tiny. Misrouting loses accuracy but never crashes and never beats
 * the unbounded hybrid (an evicted chooser counter restarts from the
 * init bias — it can only forget which component to trust).
 */
TEST(BoundedEquivalence, StarvedChoosersNeverCrashAndNeverWin)
{
    const BoundedTableConfig chooser_geometries[] = {
        {.entries = 2, .ways = 1},
        {.entries = 4, .ways = 4},
        {.entries = 16, .ways = 4,
         .replacement = Replacement::Fifo},
        {.entries = 16, .ways = 4,
         .replacement = Replacement::Random},
        {.entries = 8, .ways = 0},
        {.entries = 64, .ways = 4, .tagBits = 4},
    };

    for (const auto &trace : traces()) {
        SCOPED_TRACE(trace.name);

        FcmConfig fcm3;
        fcm3.order = 3;
        const auto unbounded = runOver(
                std::make_unique<HybridPredictor>(), trace.events);

        for (const auto &geometry : chooser_geometries) {
            SCOPED_TRACE(std::to_string(geometry.entries) + "x" +
                         std::to_string(geometry.ways) + "%" +
                         std::to_string(geometry.tagBits));
            HybridChooser chooser;
            chooser.table = geometry;
            auto hybrid = std::make_unique<HybridPredictor>(
                    std::make_unique<BoundedStridePredictor>(
                            StrideConfig{},
                            ampleTable(trace.staticCount)),
                    std::make_unique<FcmPredictor>(fcm3), chooser);
            const auto stats = runOver(std::move(hybrid), trace.events);
            EXPECT_EQ(stats.total(), trace.events.size());
            EXPECT_LE(stats.accuracy(), unbounded.accuracy());
        }
    }
}

/**
 * A tag wide enough to cover every live key bit is lossless: PCs are
 * far below 2^48, so a 48-bit partial tag can never alias and the
 * stats are byte-identical to the full-key table.
 */
TEST(BoundedEquivalence, CoveringTagWidthIsLossless)
{
    BoundedTableConfig full;
    full.entries = 1024;
    full.ways = 4;
    BoundedTableConfig tagged = full;
    tagged.tagBits = 48;

    for (const auto &trace : traces()) {
        SCOPED_TRACE(trace.name);
        expectIdenticalStats(
                runOver(std::make_unique<BoundedLastValuePredictor>(
                                LvConfig{}, tagged),
                        trace.events),
                runOver(std::make_unique<BoundedLastValuePredictor>(
                                LvConfig{}, full),
                        trace.events));
        expectIdenticalStats(
                runOver(std::make_unique<BoundedStridePredictor>(
                                StrideConfig{}, tagged),
                        trace.events),
                runOver(std::make_unique<BoundedStridePredictor>(
                                StrideConfig{}, full),
                        trace.events));
    }
}

/**
 * The aliasing counters, on a crafted collision: PCs 0x10, 0x20 and
 * 0x30 share the low-4-bit tag 0, so a 1-entry table with 4-bit tags
 * treats them as one entry — hits on a foreign entry count as
 * aliased, and the update classifies the foreign prediction as
 * constructive (it happened to be right) or destructive.
 */
TEST(BoundedEquivalence, AliasCountersClassifyCollisions)
{
    BoundedTableConfig table;
    table.entries = 1;
    table.ways = 1;
    table.tagBits = 4;
    BoundedLastValuePredictor pred(LvConfig{}, table);

    pred.update(0x10, 7);               // owner: 0x10
    EXPECT_EQ(pred.table().aliasedTouches(), 0u);

    // 0x20 aliases: served 0x10's value, and it happens to be right.
    EXPECT_TRUE(pred.predict(0x20).valid);
    EXPECT_EQ(pred.predict(0x20).value, 7u);
    pred.update(0x20, 7);
    EXPECT_EQ(pred.table().aliasedTouches(), 1u);
    EXPECT_EQ(pred.table().aliasConstructive(), 1u);
    EXPECT_EQ(pred.table().aliasDestructive(), 0u);
    EXPECT_GE(pred.table().aliasedPeeks(), 2u);

    // 0x30 aliases destructively: the foreign value is wrong.
    pred.update(0x30, 9);
    EXPECT_EQ(pred.table().aliasedTouches(), 2u);
    EXPECT_EQ(pred.table().aliasConstructive(), 1u);
    EXPECT_EQ(pred.table().aliasDestructive(), 1u);

    // The re-bound owner predicts its own value; no new alias.
    EXPECT_EQ(pred.predict(0x30).value, 9u);
    pred.update(0x30, 9);
    EXPECT_EQ(pred.table().aliasedTouches(), 2u);

    // Aliasing never inflates the entry count: one slot, whatever
    // the tag width claims (the §4.3 accounting honesty).
    EXPECT_EQ(pred.tableEntries(), 1u);

    pred.reset();
    EXPECT_EQ(pred.table().aliasedTouches(), 0u);
    EXPECT_EQ(pred.table().aliasConstructive(), 0u);
}

/**
 * The fcm VPT's alias counters stay consistent under forced
 * collisions: a one-entry VPT with 1-bit tags makes distinct context
 * hashes alias whenever their low bits agree (guaranteed among the
 * six (pc, order) contexts by pigeonhole), and every aliased touch is
 * classified as exactly one of constructive or destructive.
 */
TEST(BoundedEquivalence, FcmVptAliasCountersStayConsistent)
{
    BoundedFcmConfig config;
    config.fcm.order = 1;
    config.vht = {.entries = 8, .ways = 0};
    config.vpt = {.entries = 1, .ways = 1, .tagBits = 1};
    config.maxFollowers = 4;
    BoundedFcmPredictor pred(config);

    for (int round = 0; round < 32; ++round) {
        for (const uint64_t pc : {1u, 2u, 3u})
            pred.update(pc, pc == 3 ? 9 : 7);
    }
    EXPECT_GT(pred.vptAliasedTouches(), 0u);
    EXPECT_EQ(pred.vptAliasedTouches(),
              pred.vptAliasConstructive() + pred.vptAliasDestructive());

    pred.reset();
    EXPECT_EQ(pred.vptAliasedTouches(), 0u);
    EXPECT_EQ(pred.vptAliasConstructive() + pred.vptAliasDestructive(),
              0u);
}

/** The vpexp-capacity acceptance bar, asserted rather than printed. */
TEST(CapacitySweep, LargestBudgetConvergesToUnbounded)
{
    exp::SuiteOptions options;
    options.config.scale = 5;
    const auto sweep = exp::runCapacitySweep(options);
    const auto &families = exp::capacityFamilies();
    const size_t largest = exp::capacitySweepPoints().size() - 1;

    ASSERT_EQ(sweep.runs.size(), workloads::allWorkloads().size());
    for (const auto &run : sweep.runs) {
        SCOPED_TRACE(run.name);
        for (size_t f = 0; f < families.size(); ++f) {
            SCOPED_TRACE(families[f]);
            const double bounded = run.accuracyPct(
                    exp::CapacitySweep::specIndex(f, largest));
            const double unbounded = run.accuracyPct(
                    exp::CapacitySweep::unboundedIndex(f));
            EXPECT_NEAR(bounded, unbounded, 0.1);
        }
    }
}

TEST(BoundedSpecs, NamesRoundTripThroughTheGrammar)
{
    for (const char *spec :
         {"l@1024x4", "l-sat@1024x4", "l-consec@256x2", "s@512x4",
          "s2@256x2r", "s2@256x2f", "s2@64xfa", "fcm3@256/1024x4",
          "fcm2-pure@64/256x4", "fcm1-full@64/256x2r",
          "fcm3@256/1024x4f"}) {
        EXPECT_EQ(exp::makePredictor(spec)->name(), spec);
    }

    // The -sat suffix canonicalises away, matching the unbounded
    // convention ("counter width is not a model"): fcmK-sat and fcmK
    // share a name, bounded or not.
    EXPECT_EQ(exp::makePredictor("fcm2-sat@64/256x4")->name(),
              "fcm2@64/256x4");
}

TEST(BoundedSpecs, RejectsMalformedBudgets)
{
    for (const char *spec :
         {"l@", "l@abc", "l@256/1024x4", "s2@0x4", "s2@256x3",
          "fcm3@256x4", "fcm3@256/0x4", "hybrid@256x4", "l@256x4q",
          "l@256x0", "l@99999999999999999999x4", "fcm99999999999999",
          "fcm99999999999999@64/256x4"}) {
        EXPECT_THROW(exp::makePredictor(spec), std::invalid_argument)
                << spec;
    }
}

} // anonymous namespace
