/**
 * @file
 * Unit tests for the statistics layer: accuracy accounting, overlap
 * buckets (Figure 8), improvement curves (Figure 9), value profiles
 * (Figure 10) and the learning analyzer.
 */

#include <gtest/gtest.h>

#include "core/improvement.hh"
#include "core/last_value.hh"
#include "core/learning.hh"
#include "core/overlap.hh"
#include "core/stats.hh"
#include "core/value_profile.hh"

namespace {

using namespace vp;
using namespace vp::core;
using isa::Category;

TEST(PredictionStats, OverallAndPerCategory)
{
    PredictionStats stats;
    stats.record(Category::AddSub, true, true);
    stats.record(Category::AddSub, true, false);
    stats.record(Category::Loads, true, true);
    EXPECT_EQ(stats.total(), 3u);
    EXPECT_EQ(stats.correct(), 2u);
    EXPECT_DOUBLE_EQ(stats.accuracy(), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(stats.accuracy(Category::AddSub), 0.5);
    EXPECT_DOUBLE_EQ(stats.accuracy(Category::Loads), 1.0);
    EXPECT_DOUBLE_EQ(stats.accuracy(Category::Shift), 0.0);
}

TEST(PredictionStats, MergeAddsCounts)
{
    PredictionStats a, b;
    a.record(Category::Set, true, true);
    b.record(Category::Set, true, false);
    b.record(Category::Lui, true, true);
    a.merge(b);
    EXPECT_EQ(a.total(), 3u);
    EXPECT_EQ(a.correct(), 2u);
    EXPECT_EQ(a.total(Category::Set), 2u);
}

TEST(PredictionStats, EmptyAccuracyIsZeroNotNan)
{
    PredictionStats stats;
    EXPECT_DOUBLE_EQ(stats.accuracy(), 0.0);
    EXPECT_DOUBLE_EQ(stats.coverage(), 0.0);
    EXPECT_DOUBLE_EQ(stats.accuracyWhenPredicted(), 0.0);
    EXPECT_DOUBLE_EQ(stats.profit(4.0), 0.0);
}

TEST(PredictionStats, GatedTripleSeparatesDeclinesFromMisses)
{
    // 4 eligible events: correct, acted-on miss, decline, correct.
    PredictionStats stats;
    stats.record(Category::AddSub, true, true);
    stats.record(Category::AddSub, true, false);
    stats.record(Category::Loads, false, false);
    stats.record(Category::Loads, true, true);

    EXPECT_EQ(stats.total(), 4u);
    EXPECT_EQ(stats.predicted(), 3u);
    EXPECT_EQ(stats.correct(), 2u);
    EXPECT_DOUBLE_EQ(stats.coverage(), 3.0 / 4.0);
    EXPECT_DOUBLE_EQ(stats.accuracyWhenPredicted(), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(stats.accuracy(), 2.0 / 4.0);

    // Per category: Loads declined once, predicted once, both right
    // when acted on.
    EXPECT_EQ(stats.predicted(Category::Loads), 1u);
    EXPECT_DOUBLE_EQ(stats.coverage(Category::Loads), 0.5);
    EXPECT_DOUBLE_EQ(stats.accuracyWhenPredicted(Category::Loads), 1.0);

    // Profit: 2 correct - cost x 1 acted-on miss, per eligible event.
    EXPECT_DOUBLE_EQ(stats.profit(0.0), 2.0 / 4.0);
    EXPECT_DOUBLE_EQ(stats.profit(1.0), 1.0 / 4.0);
    EXPECT_DOUBLE_EQ(stats.profit(4.0), -2.0 / 4.0);
}

TEST(PredictionStats, MergeAddsPredictedCounts)
{
    PredictionStats a, b;
    a.record(Category::Set, true, false);
    b.record(Category::Set, false, false);
    a.merge(b);
    EXPECT_EQ(a.total(), 2u);
    EXPECT_EQ(a.predicted(), 1u);
    EXPECT_EQ(a.predicted(Category::Set), 1u);
}

// -------------------------------------------------------- overlap

TEST(Overlap, BucketsMatchFigure8Semantics)
{
    OverlapTracker tracker(3);      // l, s, f
    tracker.record(Category::AddSub, 0b000);    // np
    tracker.record(Category::AddSub, 0b111);    // lsf
    tracker.record(Category::AddSub, 0b100);    // f only
    tracker.record(Category::Loads, 0b011);     // ls
    EXPECT_EQ(tracker.total(), 4u);
    EXPECT_DOUBLE_EQ(tracker.fraction(0b000), 0.25);
    EXPECT_DOUBLE_EQ(tracker.fraction(0b111), 0.25);
    EXPECT_DOUBLE_EQ(tracker.fraction(0b100), 0.25);
    EXPECT_DOUBLE_EQ(tracker.fraction(Category::Loads, 0b011), 1.0);
}

TEST(Overlap, UnionFractionIsOracleAccuracy)
{
    OverlapTracker tracker(2);
    tracker.record(Category::AddSub, 0b00);
    tracker.record(Category::AddSub, 0b01);
    tracker.record(Category::AddSub, 0b10);
    tracker.record(Category::AddSub, 0b11);
    // Either predictor correct in 3 of 4 events.
    EXPECT_DOUBLE_EQ(tracker.unionFraction(0b11), 0.75);
    EXPECT_DOUBLE_EQ(tracker.unionFraction(0b01), 0.5);
}

TEST(Overlap, MergeAccumulates)
{
    OverlapTracker a(2), b(2);
    a.record(Category::AddSub, 0b01);
    b.record(Category::AddSub, 0b01);
    b.record(Category::Loads, 0b10);
    a.merge(b);
    EXPECT_EQ(a.total(), 3u);
    EXPECT_EQ(a.bucket(0b01), 2u);
    EXPECT_EQ(a.bucket(Category::Loads, 0b10), 1u);
}

// ---------------------------------------------------- improvement

TEST(Improvement, CurveConcentratesOnImprovingStatics)
{
    ImprovementTracker tracker;
    // PC 1: A wins 90 times more than B; PCs 2..11: A wins once.
    for (int i = 0; i < 90; ++i)
        tracker.record(1, Category::AddSub, true, false);
    for (uint64_t pc = 2; pc <= 11; ++pc) {
        tracker.record(pc, Category::AddSub, true, false);
        tracker.record(pc, Category::AddSub, true, true);
    }
    const auto curve = tracker.curve();
    ASSERT_GT(curve.size(), 2u);
    // First static (1/11 = 9.1% of statics) carries 90% improvement.
    EXPECT_NEAR(curve[1].staticPct, 100.0 / 11, 1e-9);
    EXPECT_NEAR(curve[1].improvementPct, 90.0, 1e-9);
    EXPECT_NEAR(curve.back().improvementPct, 100.0, 1e-9);
    EXPECT_LE(tracker.staticPctForImprovement(0.9),
              100.0 / 11 + 1e-9);
}

TEST(Improvement, NegativeDeltasFlattenTheTail)
{
    ImprovementTracker tracker;
    tracker.record(1, Category::AddSub, true, false);   // +1
    tracker.record(2, Category::AddSub, false, true);   // -1
    const auto curve = tracker.curve();
    // Total improvement = 1; the tail dips to 0 after the -1 PC.
    EXPECT_NEAR(curve[1].improvementPct, 100.0, 1e-9);
    EXPECT_NEAR(curve[2].improvementPct, 0.0, 1e-9);
}

TEST(Improvement, CategoryFilter)
{
    ImprovementTracker tracker;
    tracker.record(1, Category::AddSub, true, false);
    tracker.record(2, Category::Loads, true, false);
    EXPECT_EQ(tracker.curve(Category::AddSub).size(), 2u);
    EXPECT_EQ(tracker.curve().size(), 3u);
}

// -------------------------------------------------- value profile

TEST(ValueProfile, BucketBoundariesMatchFigure10)
{
    EXPECT_EQ(ValueProfiler::bucketFor(1), 0);
    EXPECT_EQ(ValueProfiler::bucketFor(2), 1);
    EXPECT_EQ(ValueProfiler::bucketFor(4), 1);
    EXPECT_EQ(ValueProfiler::bucketFor(5), 2);
    EXPECT_EQ(ValueProfiler::bucketFor(64), 3);
    EXPECT_EQ(ValueProfiler::bucketFor(65536), 8);
    EXPECT_EQ(ValueProfiler::bucketFor(65537), 9);
    EXPECT_EQ(ValueProfiler::bucketLabel(0), "1");
    EXPECT_EQ(ValueProfiler::bucketLabel(9), ">65536");
}

TEST(ValueProfile, StaticAndDynamicShares)
{
    ValueProfiler profiler;
    // PC 1: one unique value, 9 dynamic events.
    for (int i = 0; i < 9; ++i)
        profiler.record(1, Category::AddSub, 42);
    // PC 2: three unique values, 3 dynamic events.
    profiler.record(2, Category::Loads, 1);
    profiler.record(2, Category::Loads, 2);
    profiler.record(2, Category::Loads, 3);

    const auto dist = profiler.distribution();
    EXPECT_DOUBLE_EQ(dist.staticShare[0], 0.5);     // bucket "1"
    EXPECT_DOUBLE_EQ(dist.staticShare[1], 0.5);     // bucket "4"
    EXPECT_DOUBLE_EQ(dist.dynamicShare[0], 0.75);
    EXPECT_DOUBLE_EQ(dist.dynamicShare[1], 0.25);

    EXPECT_DOUBLE_EQ(profiler.staticFractionAtMost(1), 0.5);
    EXPECT_DOUBLE_EQ(profiler.dynamicFractionAtMost(64), 1.0);
}

TEST(ValueProfile, CategoryFilter)
{
    ValueProfiler profiler;
    profiler.record(1, Category::AddSub, 1);
    profiler.record(2, Category::Shift, 1);
    profiler.record(2, Category::Shift, 2);
    const auto shift = profiler.distribution(Category::Shift);
    EXPECT_DOUBLE_EQ(shift.staticShare[1], 1.0);    // 2 values
    EXPECT_DOUBLE_EQ(shift.staticShare[0], 0.0);
}

// ------------------------------------------------------- learning

TEST(Learning, MeasuresLtAndLd)
{
    LastValuePredictor pred;
    // 5 5 9 9 9: first correct prediction at index 1 (LT=1);
    // predictions after: idx2 wrong, idx3 wrong? (last=9 after idx2
    // update) -> idx3 correct, idx4 correct => LD = 2/3.
    const auto result =
            analyzeLearning(pred, {5, 5, 9, 9, 9});
    EXPECT_EQ(result.learningTime, 1);
    EXPECT_NEAR(result.learningDegree, 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(result.accuracy, 3.0 / 5.0, 1e-12);
    ASSERT_EQ(result.correctAt.size(), 5u);
    EXPECT_FALSE(result.correctAt[0]);
    EXPECT_TRUE(result.correctAt[1]);
    EXPECT_FALSE(result.correctAt[2]);
    EXPECT_TRUE(result.correctAt[3]);
}

TEST(Learning, NeverCorrectGivesMinusOne)
{
    LastValuePredictor pred;
    const auto result = analyzeLearning(pred, {1, 2, 3, 4});
    EXPECT_EQ(result.learningTime, -1);
    EXPECT_DOUBLE_EQ(result.accuracy, 0.0);
    EXPECT_DOUBLE_EQ(result.learningDegree, 0.0);
}

TEST(Learning, EmptySequenceIsSafe)
{
    LastValuePredictor pred;
    const auto result = analyzeLearning(pred, {});
    EXPECT_EQ(result.learningTime, -1);
    EXPECT_DOUBLE_EQ(result.accuracy, 0.0);
}

} // anonymous namespace
