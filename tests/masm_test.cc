/**
 * @file
 * Unit tests for the program builder and the text assembler.
 */

#include <gtest/gtest.h>

#include "masm/assembler.hh"
#include "masm/builder.hh"
#include "synth/sequences.hh"
#include "vm/machine.hh"

namespace {

using namespace vp;
using namespace vp::masm;
using namespace vp::masm::reg;

int64_t
runAndRead(const isa::Program &prog, int reg_index)
{
    vm::Machine machine;
    const auto result = machine.run(prog);
    EXPECT_TRUE(result.ok()) << result.diagnostic;
    return machine.reg(reg_index);
}

// ------------------------------------------------------- builder

TEST(Builder, ForwardAndBackwardLabels)
{
    ProgramBuilder b("labels");
    const auto fwd = b.newLabel();
    const auto back = b.here();
    b.li(t0, 1);
    b.j(fwd);
    b.li(t0, 99);                   // skipped
    b.bind(fwd);
    b.halt();
    const auto prog = b.build();
    EXPECT_EQ(runAndRead(prog, t0), 1);
    (void)back;
}

TEST(Builder, UnboundLabelThrows)
{
    ProgramBuilder b("unbound");
    const auto label = b.newLabel();
    b.j(label);
    b.halt();
    EXPECT_THROW(b.build(), std::logic_error);
}

TEST(Builder, DoubleBindThrows)
{
    ProgramBuilder b("dbl");
    const auto label = b.here();
    EXPECT_THROW(b.bind(label), std::logic_error);
}

TEST(Builder, DataAllocationAlignsAndNames)
{
    ProgramBuilder b("data");
    const auto a = b.addBytes({1, 2, 3}, 1);
    const auto w = b.addWords({42});
    b.nameData("tbl", w);
    b.halt();
    const auto prog = b.build();
    EXPECT_EQ(a, isa::defaultDataBase);
    EXPECT_EQ(w % 8, 0u);
    EXPECT_EQ(prog.dataSymbols.at("tbl"), w);
    // The word 42 is at offset w - dataBase, little endian.
    EXPECT_EQ(prog.data[w - isa::defaultDataBase], 42);
}

class BuilderLiSweep : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(BuilderLiSweep, LiMaterializesExactValue)
{
    ProgramBuilder b("li");
    b.li(t0, GetParam());
    b.halt();
    EXPECT_EQ(runAndRead(b.build(), t0), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
        Constants, BuilderLiSweep,
        ::testing::Values(0, 1, -1, 42, -65536, 0x7fffffffLL,
                          -0x80000000LL, 0x80000000LL, 0x123456789LL,
                          -0x123456789abcLL,
                          std::numeric_limits<int64_t>::max(),
                          std::numeric_limits<int64_t>::min(),
                          0x5a5a5a5a5a5a5a5aLL));

TEST(Builder, ValidateRunsOnBuild)
{
    // Branch targets are patched, so build() output always validates.
    ProgramBuilder b("ok");
    const auto l = b.newLabel();
    b.li(t0, 2);
    b.bind(l);
    b.addi(t0, t0, -1);
    b.bnez(t0, l);
    b.halt();
    EXPECT_EQ(b.build().validate(), "");
}

// ------------------------------------------------------- assembler

TEST(Assembler, EndToEndProgram)
{
    const std::string src = R"(
        .data
tbl:    .word 5, 7
msg:    .asciiz "hi"
        .text
main:   la   t0, tbl
        ld   t1, 0(t0)
        ld   t2, 8(t0)
        add  t3, t1, t2     # 12
loop:   addi t3, t3, -1
        bnez t3, loop
        halt
    )";
    const auto prog = masm::assemble("demo", src);
    EXPECT_EQ(prog.name, "demo");
    EXPECT_TRUE(prog.codeSymbols.count("main"));
    EXPECT_TRUE(prog.codeSymbols.count("loop"));
    EXPECT_TRUE(prog.dataSymbols.count("tbl"));

    vm::Machine machine;
    const auto result = machine.run(prog);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(machine.reg(t3), 0);
    EXPECT_EQ(machine.reg(t1), 5);
    EXPECT_EQ(machine.reg(t2), 7);
}

TEST(Assembler, RegisterAliasesAndNumbers)
{
    const auto prog = masm::assemble("regs", R"(
        addi r5, zero, 1
        addi sp, sp, -16
        mov  a0, t4
        halt
    )");
    EXPECT_EQ(prog.code[0].rd, 5);
    EXPECT_EQ(prog.code[1].rd, isa::stackReg);
    EXPECT_EQ(prog.code[2].rd, a0);
    EXPECT_EQ(prog.code[2].rs1, t4);
}

TEST(Assembler, NumberFormats)
{
    const auto prog = masm::assemble("nums", R"(
        li t0, 0x10
        li t1, -42
        li t2, 'a'
        li t3, '\n'
        halt
    )");
    vm::Machine machine;
    ASSERT_TRUE(machine.run(prog).ok());
    EXPECT_EQ(machine.reg(t0), 16);
    EXPECT_EQ(machine.reg(t1), -42);
    EXPECT_EQ(machine.reg(t2), 'a');
    EXPECT_EQ(machine.reg(t3), '\n');
}

TEST(Assembler, PseudoOpsExpand)
{
    const auto prog = masm::assemble("pseudo", R"(
        li   t0, 5
        push t0
        pop  t1
        inc  t1
        dec  t1
        call fn
        halt
fn:     ret
    )");
    vm::Machine machine;
    ASSERT_TRUE(machine.run(prog).ok());
    EXPECT_EQ(machine.reg(t1), 5);
}

TEST(Assembler, DirectivesBuildDataImage)
{
    const auto prog = masm::assemble("dirs", R"(
        .data
        .align 8
a:      .byte 1, 2, 3
        .align 8
b:      .space 16
c:      .word 9
        .text
        halt
    )");
    const auto a_addr = prog.dataSymbols.at("a");
    const auto b_addr = prog.dataSymbols.at("b");
    const auto c_addr = prog.dataSymbols.at("c");
    EXPECT_EQ(a_addr % 8, 0u);
    EXPECT_EQ(b_addr % 8, 0u);
    EXPECT_EQ(c_addr, b_addr + 16);
    EXPECT_EQ(prog.data[a_addr - isa::defaultDataBase + 1], 2);
    EXPECT_EQ(prog.data[c_addr - isa::defaultDataBase], 9);
}

TEST(Assembler, StringEscapes)
{
    const auto prog = masm::assemble("str", R"(
        .data
s:      .ascii "a\tb\nc\\d\"e"
        .text
        halt
    )");
    const auto s = prog.dataSymbols.at("s") - isa::defaultDataBase;
    const std::string text(prog.data.begin() + s, prog.data.end());
    EXPECT_EQ(text, "a\tb\nc\\d\"e");
}

TEST(Assembler, CommentsAndBlankLines)
{
    const auto prog = masm::assemble("comments", R"(
        # full line comment
        li t0, 1    ; trailing comment
        ; another
        halt
    )");
    EXPECT_EQ(prog.code.size(), 2u);
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    try {
        masm::assemble("bad", "li t0, 1\nbogus t1, t2\n");
        FAIL() << "expected AsmError";
    } catch (const masm::AsmError &err) {
        EXPECT_EQ(err.line, 2);
        EXPECT_NE(std::string(err.what()).find("bogus"),
                  std::string::npos);
    }
}

TEST(Assembler, RejectsUnknownRegister)
{
    EXPECT_THROW(masm::assemble("r", "addi r99, r0, 1\nhalt\n"),
                 masm::AsmError);
    EXPECT_THROW(masm::assemble("r", "addi rx, r0, 1\nhalt\n"),
                 masm::AsmError);
}

TEST(Assembler, RejectsWrongOperandCount)
{
    EXPECT_THROW(masm::assemble("ops", "add t0, t1\nhalt\n"),
                 masm::AsmError);
}

TEST(Assembler, RejectsUnknownDataSymbol)
{
    EXPECT_THROW(masm::assemble("sym", "la t0, nothere\nhalt\n"),
                 masm::AsmError);
}

TEST(Assembler, RejectsInstructionInDataSection)
{
    EXPECT_THROW(masm::assemble("sec", ".data\naddi t0, t0, 1\n"),
                 masm::AsmError);
}

TEST(Assembler, RejectsUnboundForwardLabel)
{
    EXPECT_THROW(masm::assemble("fwd", "j nowhere\nhalt\n"),
                 masm::AsmError);
}

TEST(Assembler, MemOperandForms)
{
    const auto prog = masm::assemble("mem", R"(
        .data
buf:    .space 32
        .text
        la  t0, buf
        li  t1, 77
        sd  t1, 8(t0)
        ld  t2, 8(t0)
        ld  t3, buf(zero)
        halt
    )");
    vm::Machine machine;
    ASSERT_TRUE(machine.run(prog).ok());
    EXPECT_EQ(machine.reg(t2), 77);
}

TEST(Assembler, BranchVariants)
{
    const auto prog = masm::assemble("br", R"(
        li t0, 3
        li t1, 5
        blt t0, t1, less
        li t2, 0
        halt
less:   li t2, 1
        bgeu t1, t0, done
        li t2, 2
done:   halt
    )");
    vm::Machine machine;
    ASSERT_TRUE(machine.run(prog).ok());
    EXPECT_EQ(machine.reg(t2), 1);
}

} // anonymous namespace
