/**
 * @file
 * Golden-trace regression pins: a checksum (event count + FNV-1a over
 * every TraceEvent tuple) per workload at smoke scale.
 *
 * Every paper table and figure in bench/ is a function of these seven
 * value traces. Any VM, workload or ISA change that perturbs them —
 * intentionally or not — must fail here loudly instead of silently
 * shifting every reproduced number.
 *
 * Regenerating after an INTENTIONAL trace change:
 *
 *   VP_PRINT_GOLDEN=1 ./tests/golden_trace_test
 *
 * prints the replacement rows for the table below (the test then
 * reports itself as skipped); paste them in and re-run. Mention the
 * perturbation in the commit message — it moves every experiment.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "vm/machine.hh"
#include "vm/trace.hh"
#include "workloads/workload.hh"

namespace {

using namespace vp;

/** FNV-1a over the little-endian bytes of each (pc, op, value). */
uint64_t
traceChecksum(const std::vector<vm::TraceEvent> &events)
{
    uint64_t hash = 1469598103934665603ull;
    const auto fold_byte = [&hash](uint8_t byte) {
        hash ^= byte;
        hash *= 1099511628211ull;
    };
    const auto fold_u64 = [&fold_byte](uint64_t v) {
        for (int i = 0; i < 8; ++i)
            fold_byte(static_cast<uint8_t>(v >> (8 * i)));
    };
    for (const auto &event : events) {
        fold_u64(event.pc);
        fold_byte(static_cast<uint8_t>(event.op));
        fold_u64(event.value);
    }
    return hash;
}

struct Golden
{
    const char *name;
    uint64_t count;
    uint64_t checksum;
};

/** Pinned at workload scale 5 (the smoke/test scale). */
constexpr Golden golden[] = {
    {"compress", 86383ull, 0x165d886e7918bc76ull},
    {"gcc", 27887ull, 0x04a6885fcd2b8643ull},
    {"go", 20748ull, 0x14af3569a8c849bcull},
    {"ijpeg", 23953ull, 0xf2ec23bb5fba7b0aull},
    {"m88ksim", 36184ull, 0xee6cf1297065e242ull},
    {"perl", 62028ull, 0x1a88f21cfebcc5a7ull},
    {"xlisp", 183852ull, 0x4b07126817a21e78ull},
};

TEST(GoldenTrace, WorkloadTracesAreBitStable)
{
    const bool print =
            std::getenv("VP_PRINT_GOLDEN") != nullptr;

    workloads::WorkloadConfig config;
    config.scale = 5;

    ASSERT_EQ(std::size(golden), workloads::allWorkloads().size());
    for (const auto &info : workloads::allWorkloads()) {
        SCOPED_TRACE(info.name);
        vm::RecordingSink sink;
        vm::Machine machine;
        machine.setSink(&sink);
        ASSERT_TRUE(machine.run(info.build(config)).ok());
        const uint64_t checksum = traceChecksum(sink.events);

        if (print) {
            std::printf("    {\"%s\", %zuull, 0x%016llxull},\n",
                        info.name.c_str(), sink.events.size(),
                        static_cast<unsigned long long>(checksum));
            continue;
        }

        const Golden *pin = nullptr;
        for (const auto &row : golden) {
            if (info.name == row.name)
                pin = &row;
        }
        ASSERT_NE(pin, nullptr);
        EXPECT_EQ(sink.events.size(), pin->count)
                << "trace length changed: every bench table shifts";
        EXPECT_EQ(checksum, pin->checksum)
                << "trace content changed: every bench table shifts";
    }
    if (print)
        GTEST_SKIP() << "printed fresh golden rows, nothing asserted";
}

} // anonymous namespace
