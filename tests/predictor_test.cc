/**
 * @file
 * Unit and property tests for the computational predictors (last
 * value and stride) — Section 2.1 of the paper, including the
 * hysteresis variants and the Table 1 learning behaviours.
 */

#include <gtest/gtest.h>

#include "core/last_value.hh"
#include "core/learning.hh"
#include "core/stride.hh"
#include "synth/sequences.hh"

namespace {

using namespace vp;
using namespace vp::core;
using namespace vp::synth;

// ------------------------------------------------------ last value

TEST(LastValue, DeclinesOnColdEntryThenPredictsLastValue)
{
    LastValuePredictor pred;
    EXPECT_FALSE(pred.predict(10).valid);
    pred.update(10, 7);
    const auto p = pred.predict(10);
    ASSERT_TRUE(p.valid);
    EXPECT_EQ(p.value, 7u);
    pred.update(10, 9);
    EXPECT_EQ(pred.predict(10).value, 9u);
}

TEST(LastValue, EntriesArePerPcWithNoAliasing)
{
    LastValuePredictor pred;
    pred.update(1, 100);
    pred.update(2, 200);
    EXPECT_EQ(pred.predict(1).value, 100u);
    EXPECT_EQ(pred.predict(2).value, 200u);
    EXPECT_FALSE(pred.predict(3).valid);
    EXPECT_EQ(pred.tableEntries(), 2u);
}

TEST(LastValue, ResetDropsAllState)
{
    LastValuePredictor pred;
    pred.update(1, 5);
    pred.reset();
    EXPECT_FALSE(pred.predict(1).valid);
    EXPECT_EQ(pred.tableEntries(), 0u);
}

TEST(LastValue, PerfectOnConstantSequences)
{
    LastValuePredictor pred;
    const auto result =
            analyzeLearning(pred, constantSeq(5, 100));
    EXPECT_EQ(result.learningTime, 1);      // Table 1: LT = 1
    EXPECT_DOUBLE_EQ(result.learningDegree, 1.0);
}

TEST(LastValue, UselessOnStrideSequences)
{
    LastValuePredictor pred;
    const auto result =
            analyzeLearning(pred, strideSeq(0, 3, 100));
    EXPECT_EQ(result.learningTime, -1);     // Table 1: "-"
    EXPECT_DOUBLE_EQ(result.accuracy, 0.0);
}

TEST(LastValueHysteresis, SaturatingCounterResistsOneOffNoise)
{
    LvConfig config;
    config.policy = LvPolicy::SaturatingCounter;
    config.counterMax = 3;
    config.counterThreshold = 1;
    LastValuePredictor pred(config);

    // Establish 7 with confidence.
    for (int i = 0; i < 4; ++i)
        pred.update(0, 7);
    // A single glitch must not displace the stored value...
    pred.update(0, 99);
    EXPECT_EQ(pred.predict(0).value, 7u);
    // ...but persistent new behaviour eventually does.
    for (int i = 0; i < 6; ++i)
        pred.update(0, 99);
    EXPECT_EQ(pred.predict(0).value, 99u);
}

TEST(LastValueHysteresis, ConsecutivePolicyNeedsARun)
{
    LvConfig config;
    config.policy = LvPolicy::Consecutive;
    config.consecutiveRequired = 2;
    LastValuePredictor pred(config);

    pred.update(0, 7);
    // Alternating values never appear twice in a row: stays at 7.
    pred.update(0, 8);
    pred.update(0, 9);
    pred.update(0, 8);
    pred.update(0, 9);
    EXPECT_EQ(pred.predict(0).value, 7u);
    // Two consecutive 4s switch the prediction.
    pred.update(0, 4);
    pred.update(0, 4);
    EXPECT_EQ(pred.predict(0).value, 4u);
}

TEST(LastValueHysteresis, NamesDistinguishVariants)
{
    LvConfig sat;
    sat.policy = LvPolicy::SaturatingCounter;
    LvConfig con;
    con.policy = LvPolicy::Consecutive;
    EXPECT_EQ(LastValuePredictor().name(), "l");
    EXPECT_EQ(LastValuePredictor(sat).name(), "l-sat");
    EXPECT_EQ(LastValuePredictor(con).name(), "l-consec");
}

// --------------------------------------------------------- stride

TEST(Stride, TwoDeltaLearnsAStrideInTwoValues)
{
    StridePredictor pred;       // two-delta by default
    const auto result = analyzeLearning(pred, strideSeq(10, 4, 100));
    EXPECT_EQ(result.learningTime, 2);      // Table 1: LT = 2
    EXPECT_DOUBLE_EQ(result.learningDegree, 1.0);   // LD = 100%
}

TEST(Stride, ConstantIsZeroStride)
{
    StridePredictor pred;
    const auto result = analyzeLearning(pred, constantSeq(42, 50));
    EXPECT_EQ(result.learningTime, 1);
    EXPECT_DOUBLE_EQ(result.learningDegree, 1.0);
}

TEST(Stride, NegativeAndLargeStrides)
{
    for (int64_t delta : {-1, -1000, 123456789}) {
        StridePredictor pred;
        const auto result =
                analyzeLearning(pred, strideSeq(1'000'000, delta, 60));
        EXPECT_EQ(result.learningTime, 2) << delta;
        EXPECT_DOUBLE_EQ(result.learningDegree, 1.0) << delta;
    }
}

TEST(Stride, HopelessOnNonStride)
{
    StridePredictor pred;
    const auto result = analyzeLearning(pred, nonStrideSeq(3, 300));
    EXPECT_LT(result.accuracy, 0.02);
}

TEST(Stride, WrapsModulo64BitCleanly)
{
    StridePredictor pred;
    const uint64_t near_max = std::numeric_limits<uint64_t>::max() - 1;
    pred.update(0, near_max);
    pred.update(0, near_max + 1);       // wraps to 0... delta 1
    const auto p = pred.predict(0);
    ASSERT_TRUE(p.valid);
    EXPECT_EQ(p.value, 0u);             // max + 1 == 0 mod 2^64
}

/**
 * Table 1 property: on a repeated stride sequence of period p, the
 * two-delta predictor settles at exactly one misprediction per
 * period: LD = (p-1)/p.
 */
class StrideRepeatedSweep
    : public ::testing::TestWithParam<std::tuple<int, int64_t>>
{
};

TEST_P(StrideRepeatedSweep, OneMispredictionPerPeriod)
{
    const auto [period, delta] = GetParam();
    StridePredictor pred;
    const size_t reps = 40;
    const auto seq = repeatedStrideSeq(100, delta,
                                       static_cast<size_t>(period),
                                       period * reps);
    const auto result = analyzeLearning(pred, seq);

    // Steady state after the first two periods: check the tail.
    size_t wrong = 0, total = 0;
    for (size_t i = 2 * period; i < seq.size(); ++i) {
        ++total;
        if (!result.correctAt[i])
            ++wrong;
    }
    // Exactly one miss per period (the wrap), as in Figure 2.
    EXPECT_EQ(wrong, total / period);
}

INSTANTIATE_TEST_SUITE_P(
        Periods, StrideRepeatedSweep,
        ::testing::Combine(::testing::Values(2, 3, 4, 7, 16),
                           ::testing::Values(int64_t(1), int64_t(-3),
                                             int64_t(1000))));

TEST(StrideSimple, RecomputesEveryUpdateAndMissesTwicePerPeriod)
{
    StrideConfig config;
    config.policy = StridePolicy::Simple;
    StridePredictor pred(config);
    const int period = 5;
    const auto seq = repeatedStrideSeq(0, 1, period, period * 30);
    const auto result = analyzeLearning(pred, seq);

    size_t wrong = 0, total = 0;
    for (size_t i = 2 * period; i < seq.size(); ++i) {
        ++total;
        if (!result.correctAt[i])
            ++wrong;
    }
    // The naive stride predictor re-learns after each wrap: two
    // misses per period (Section 2.1's motivation for hysteresis).
    EXPECT_EQ(wrong, 2 * total / period);
}

TEST(StrideSaturating, AlsoSettlesAtOneMissPerPeriod)
{
    StrideConfig config;
    config.policy = StridePolicy::SaturatingCounter;
    StridePredictor pred(config);
    const int period = 6;
    const auto seq = repeatedStrideSeq(0, 2, period, period * 30);
    const auto result = analyzeLearning(pred, seq);

    size_t wrong = 0, total = 0;
    for (size_t i = 4 * period; i < seq.size(); ++i) {
        ++total;
        if (!result.correctAt[i])
            ++wrong;
    }
    EXPECT_EQ(wrong, total / period);
}

TEST(Stride, NamesDistinguishVariants)
{
    StrideConfig simple;
    simple.policy = StridePolicy::Simple;
    StrideConfig sat;
    sat.policy = StridePolicy::SaturatingCounter;
    EXPECT_EQ(StridePredictor().name(), "s2");
    EXPECT_EQ(StridePredictor(simple).name(), "s");
    EXPECT_EQ(StridePredictor(sat).name(), "s-sat");
}

TEST(Stride, PredictIsConst)
{
    // predict() must not change what the next predict() returns.
    StridePredictor pred;
    pred.update(0, 10);
    pred.update(0, 20);
    const auto first = pred.predict(0);
    const auto second = pred.predict(0);
    EXPECT_EQ(first.value, second.value);
    EXPECT_EQ(first.valid, second.valid);
}

} // anonymous namespace
