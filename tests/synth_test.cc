/**
 * @file
 * Tests for the synthetic sequence generators (Section 1.1 classes).
 */

#include <gtest/gtest.h>

#include "synth/sequences.hh"

namespace {

using namespace vp::synth;

TEST(Sequences, ConstantIsConstant)
{
    const auto seq = constantSeq(9, 50);
    ASSERT_EQ(seq.size(), 50u);
    for (auto v : seq)
        EXPECT_EQ(v, 9u);
}

TEST(Sequences, StrideHasConstantDelta)
{
    const auto seq = strideSeq(100, -7, 40);
    ASSERT_EQ(seq.size(), 40u);
    for (size_t i = 1; i < seq.size(); ++i)
        EXPECT_EQ(seq[i] - seq[i - 1], static_cast<uint64_t>(-7));
}

TEST(Sequences, NonStrideHasNoConstantDeltaRun)
{
    const auto seq = nonStrideSeq(1234, 500);
    ASSERT_EQ(seq.size(), 500u);
    for (size_t i = 2; i < seq.size(); ++i) {
        EXPECT_FALSE(seq[i] - seq[i - 1] == seq[i - 1] - seq[i - 2])
                << "stride run at " << i;
    }
    for (size_t i = 1; i < seq.size(); ++i)
        EXPECT_NE(seq[i], seq[i - 1]);
}

TEST(Sequences, NonStrideIsDeterministicPerSeed)
{
    EXPECT_EQ(nonStrideSeq(5, 100), nonStrideSeq(5, 100));
    EXPECT_NE(nonStrideSeq(5, 100), nonStrideSeq(6, 100));
}

TEST(Sequences, RepeatedStridePeriodicity)
{
    const size_t period = 6;
    const auto seq = repeatedStrideSeq(1, 2, period, 60);
    for (size_t i = period; i < seq.size(); ++i)
        EXPECT_EQ(seq[i], seq[i - period]);
    // Within a period the delta is constant.
    for (size_t i = 1; i < period; ++i)
        EXPECT_EQ(seq[i] - seq[i - 1], 2u);
}

TEST(Sequences, RepeatedNonStridePeriodicity)
{
    const size_t period = 9;
    const auto seq = repeatedNonStrideSeq(7, period, 90);
    for (size_t i = period; i < seq.size(); ++i)
        EXPECT_EQ(seq[i], seq[i - period]);
}

TEST(Sequences, RepeatPatternHandlesEdgeCases)
{
    EXPECT_TRUE(repeatPattern({}, 10).empty());
    const auto seq = repeatPattern({1, 2}, 5);
    EXPECT_EQ(seq, (std::vector<uint64_t>{1, 2, 1, 2, 1}));
}

TEST(Sequences, ConcatAndInterleave)
{
    const auto cat = concatSeq({{1, 2}, {3}, {}, {4, 5}});
    EXPECT_EQ(cat, (std::vector<uint64_t>{1, 2, 3, 4, 5}));

    const auto inter = interleaveSeq({{1, 3, 5}, {2, 4}});
    EXPECT_EQ(inter, (std::vector<uint64_t>{1, 2, 3, 4, 5}));
    EXPECT_TRUE(interleaveSeq({}).empty());
}

TEST(Sequences, ClassNames)
{
    EXPECT_EQ(seqClassName(SeqClass::Constant), "C");
    EXPECT_EQ(seqClassName(SeqClass::Stride), "S");
    EXPECT_EQ(seqClassName(SeqClass::NonStride), "NS");
    EXPECT_EQ(seqClassName(SeqClass::RepeatedStride), "RS");
    EXPECT_EQ(seqClassName(SeqClass::RepeatedNonStride), "RNS");
}

TEST(Rng, DeterministicAndRangeBounded)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    Rng c(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(c.range(10), 10u);
        const auto v = c.between(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, ZeroSeedIsRemapped)
{
    Rng zero(0);
    EXPECT_NE(zero.next(), 0u);
}

} // anonymous namespace
