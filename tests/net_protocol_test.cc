/**
 * @file
 * Tests for the vpd wire protocol: encode/decode round trips, the
 * incremental frame decoder under arbitrary chunking, typed errors
 * for malformed length prefixes and opcodes, and a truncation fuzz
 * (cut the byte stream at every offset) mirroring trace_file_test.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/protocol.hh"
#include "synth/sequences.hh"

namespace {

using namespace vp;
using namespace vp::net;
using vm::TraceEvent;

std::vector<TraceEvent>
sampleEvents(size_t n, uint64_t seed = 7)
{
    synth::Rng rng(seed);
    std::vector<TraceEvent> events;
    for (size_t i = 0; i < n; ++i) {
        TraceEvent event{};
        event.op = (i % 3 == 0) ? isa::Opcode::Add
                 : (i % 3 == 1) ? isa::Opcode::Ld
                                : isa::Opcode::Slli;
        event.cat = isa::opcodeCategory(event.op);
        event.pc = rng.next() >> rng.range(64);
        event.value = rng.next() >> rng.range(64);
        events.push_back(event);
    }
    return events;
}

/** A frame with its payload copied out of the decoder. */
struct OwnedFrame
{
    Op op;
    std::vector<uint8_t> payload;
};

/** Feed @p bytes to a decoder in chunks of @p chunk, collect frames. */
std::vector<OwnedFrame>
decodeAll(const std::vector<uint8_t> &bytes, size_t chunk)
{
    FrameDecoder decoder;
    std::vector<OwnedFrame> frames;
    for (size_t at = 0; at < bytes.size(); at += chunk) {
        decoder.feed(bytes.data() + at,
                     std::min(chunk, bytes.size() - at));
        while (auto frame = decoder.next()) {
            OwnedFrame raw;
            raw.op = frame->op;
            raw.payload.assign(frame->payload.begin(),
                               frame->payload.end());
            frames.push_back(std::move(raw));
        }
    }
    return frames;
}

TEST(NetProtocol, PredictRoundTrip)
{
    std::vector<uint8_t> out;
    encodePredict(out, 0xfeedfacecafebeefull, 0x1234567890abcdefull);

    FrameDecoder decoder;
    decoder.feed(out.data(), out.size());
    const auto frame = decoder.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->op, Op::Predict);
    const auto req = decodePredict(frame->payload);
    EXPECT_EQ(req.tenant, 0xfeedfacecafebeefull);
    EXPECT_EQ(req.pc, 0x1234567890abcdefull);
    EXPECT_FALSE(decoder.next().has_value());
    EXPECT_EQ(decoder.pendingBytes(), 0u);
}

TEST(NetProtocol, TrainRoundTrip)
{
    const auto events = sampleEvents(1);
    std::vector<uint8_t> out;
    encodeTrain(out, 42, events[0]);

    FrameDecoder decoder;
    decoder.feed(out.data(), out.size());
    const auto frame = decoder.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->op, Op::Train);
    const auto req = decodeTrain(frame->payload);
    EXPECT_EQ(req.tenant, 42u);
    EXPECT_EQ(req.event.pc, events[0].pc);
    EXPECT_EQ(req.event.value, events[0].value);
    EXPECT_EQ(req.event.op, events[0].op);
    EXPECT_EQ(req.event.cat, events[0].cat);
}

TEST(NetProtocol, BatchRoundTrip)
{
    const auto events = sampleEvents(257);
    std::vector<uint8_t> out;
    encodeBatch(out, 9, vm::TraceSpan(events.data(), events.size()));

    FrameDecoder decoder;
    decoder.feed(out.data(), out.size());
    const auto frame = decoder.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->op, Op::Batch);
    std::vector<TraceEvent> decoded;
    EXPECT_EQ(decodeBatch(frame->payload, decoded), 9u);
    ASSERT_EQ(decoded.size(), events.size());
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(decoded[i].pc, events[i].pc);
        EXPECT_EQ(decoded[i].value, events[i].value);
        EXPECT_EQ(decoded[i].op, events[i].op);
        EXPECT_EQ(decoded[i].cat, events[i].cat);
    }
}

TEST(NetProtocol, ReplyRoundTrips)
{
    {
        std::vector<uint8_t> out;
        encodePredictReply(out, true, 0xdeadbeefull);
        FrameDecoder decoder;
        decoder.feed(out.data(), out.size());
        const auto frame = decoder.next();
        ASSERT_TRUE(frame.has_value());
        EXPECT_EQ(frame->op, Op::RPredict);
        const auto reply = decodePredictReply(frame->payload);
        EXPECT_TRUE(reply.valid);
        EXPECT_EQ(reply.value, 0xdeadbeefull);
    }
    {
        std::vector<uint8_t> out;
        encodeTrainReply(out, true, false);
        FrameDecoder decoder;
        decoder.feed(out.data(), out.size());
        const auto reply = decodeTrainReply(decoder.next()->payload);
        EXPECT_TRUE(reply.predicted);
        EXPECT_FALSE(reply.correct);
    }
    {
        std::vector<uint8_t> out;
        encodeBatchReply(out, 1000, 700, 400);
        FrameDecoder decoder;
        decoder.feed(out.data(), out.size());
        const auto reply = decodeBatchReply(decoder.next()->payload);
        EXPECT_EQ(reply.count, 1000u);
        EXPECT_EQ(reply.predicted, 700u);
        EXPECT_EQ(reply.correct, 400u);
    }
    {
        std::vector<uint8_t> out;
        encodeStatsReply(out, "net.frames 3\n");
        FrameDecoder decoder;
        decoder.feed(out.data(), out.size());
        EXPECT_EQ(decodeStatsReply(decoder.next()->payload),
                  "net.frames 3\n");
    }
    {
        std::vector<uint8_t> out;
        encodeError(out, ProtoError::UnknownOpcode, "opcode 0x42");
        FrameDecoder decoder;
        decoder.feed(out.data(), out.size());
        const auto frame = decoder.next();
        ASSERT_TRUE(frame.has_value());
        EXPECT_EQ(frame->op, Op::Error);
        const auto reply = decodeErrorReply(frame->payload);
        EXPECT_EQ(reply.code, ProtoError::UnknownOpcode);
        EXPECT_EQ(reply.message, "opcode 0x42");
    }
}

TEST(NetProtocol, TenantStatsReplyRoundTrip)
{
    TenantStats stats;
    stats.total = 1000;
    stats.predicted = 700;
    stats.correct = 650;
    for (size_t i = 0; i < isa::numCategories; ++i) {
        stats.catTotal[i] = 10 * i;
        stats.catPredicted[i] = 7 * i;
        stats.catCorrect[i] = 6 * i;
    }
    std::vector<uint8_t> out;
    encodeTenantStatsReply(out, stats);

    FrameDecoder decoder;
    decoder.feed(out.data(), out.size());
    const auto frame = decoder.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->op, Op::RTenantStats);
    const auto reply = decodeTenantStatsReply(frame->payload);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(*reply, stats);

    // Unknown tenant: known=0, no body.
    std::vector<uint8_t> none;
    encodeTenantStatsReply(none, std::nullopt);
    FrameDecoder decoder2;
    decoder2.feed(none.data(), none.size());
    EXPECT_FALSE(decodeTenantStatsReply(decoder2.next()->payload)
                         .has_value());
}

TEST(NetProtocol, DecoderHandlesArbitraryChunking)
{
    const auto events = sampleEvents(100);
    std::vector<uint8_t> stream;
    encodePredict(stream, 1, 2);
    encodeBatch(stream, 3, vm::TraceSpan(events.data(), events.size()));
    encodeStats(stream);
    encodeTenantStats(stream, 4);
    encodeTrain(stream, 5, events[0]);

    for (const size_t chunk : {1ul, 2ul, 3ul, 7ul, 64ul, stream.size()}) {
        SCOPED_TRACE(chunk);
        const auto frames = decodeAll(stream, chunk);
        ASSERT_EQ(frames.size(), 5u);
        EXPECT_EQ(frames[0].op, Op::Predict);
        EXPECT_EQ(frames[1].op, Op::Batch);
        EXPECT_EQ(frames[2].op, Op::Stats);
        EXPECT_EQ(frames[3].op, Op::TenantStats);
        EXPECT_EQ(frames[4].op, Op::Train);
        std::vector<TraceEvent> decoded;
        decodeBatch(std::span<const uint8_t>(frames[1].payload),
                    decoded);
        EXPECT_EQ(decoded.size(), events.size());
    }
}

TEST(NetProtocol, ZeroLengthPrefixIsBadLength)
{
    const uint8_t zero[4] = {0, 0, 0, 0};
    FrameDecoder decoder;
    decoder.feed(zero, sizeof(zero));
    try {
        (void)decoder.next();
        FAIL() << "expected ProtocolError";
    } catch (const ProtocolError &error) {
        EXPECT_EQ(error.code, ProtoError::BadLength);
    }
}

TEST(NetProtocol, OversizedLengthPrefixIsOversized)
{
    // Length prefix above the frame ceiling: must throw before any
    // attempt to buffer the announced payload.
    std::vector<uint8_t> out;
    putU32(out, kMaxFrameLength + 1);
    FrameDecoder decoder;
    decoder.feed(out.data(), out.size());
    try {
        (void)decoder.next();
        FAIL() << "expected ProtocolError";
    } catch (const ProtocolError &error) {
        EXPECT_EQ(error.code, ProtoError::Oversized);
    }

    // A configurable smaller ceiling applies the same way.
    FrameDecoder small(64);
    std::vector<uint8_t> big;
    putU32(big, 65);
    small.feed(big.data(), big.size());
    EXPECT_THROW((void)small.next(), ProtocolError);
}

TEST(NetProtocol, UnknownOpcodeDetection)
{
    EXPECT_TRUE(isRequestOp(static_cast<uint8_t>(Op::Predict)));
    EXPECT_TRUE(isRequestOp(static_cast<uint8_t>(Op::Batch)));
    EXPECT_TRUE(isRequestOp(static_cast<uint8_t>(Op::Stats)));
    EXPECT_FALSE(isRequestOp(0x00));
    EXPECT_FALSE(isRequestOp(0x42));
    EXPECT_FALSE(isRequestOp(static_cast<uint8_t>(Op::RPredict)));
    EXPECT_FALSE(isRequestOp(static_cast<uint8_t>(Op::Error)));
}

TEST(NetProtocol, BatchCountPayloadMismatchIsTruncated)
{
    const auto events = sampleEvents(4);
    std::vector<uint8_t> out;
    encodeBatch(out, 1, vm::TraceSpan(events.data(), events.size()));

    // Inflate the count without growing the payload.
    // Payload layout after the 5-byte header: u64 tenant | u32 count.
    out[4 + 1 + 8] = 5;
    FrameDecoder decoder;
    decoder.feed(out.data(), out.size());
    const auto frame = decoder.next();
    ASSERT_TRUE(frame.has_value());
    std::vector<TraceEvent> decoded;
    try {
        decodeBatch(frame->payload, decoded);
        FAIL() << "expected ProtocolError";
    } catch (const ProtocolError &error) {
        EXPECT_EQ(error.code, ProtoError::Truncated);
    }
}

TEST(NetProtocol, BadOpcodeOrCategoryByteIsBadValue)
{
    const auto events = sampleEvents(1);
    std::vector<uint8_t> out;
    encodeTrain(out, 1, events[0]);
    // Last byte of the TRAIN payload is the category.
    out[out.size() - 1] = 0xff;
    FrameDecoder decoder;
    decoder.feed(out.data(), out.size());
    try {
        (void)decodeTrain(decoder.next()->payload);
        FAIL() << "expected ProtocolError";
    } catch (const ProtocolError &error) {
        EXPECT_EQ(error.code, ProtoError::BadValue);
    }
}

TEST(NetProtocol, TrailingGarbageAfterPayloadIsTruncatedError)
{
    std::vector<uint8_t> out;
    encodePredict(out, 1, 2);
    // Grow the frame by one byte: length says 18, payload is 17 + junk.
    out.push_back(0x5a);
    out[0] = 18;        // u32 LE length: opcode + 16 payload + 1 junk
    FrameDecoder decoder;
    decoder.feed(out.data(), out.size());
    const auto frame = decoder.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_THROW((void)decodePredict(frame->payload), ProtocolError);
}

TEST(NetProtocolFuzz, TruncationAtEveryByteNeverFabricatesFrames)
{
    // Mirror of Vpt2Fuzz.TruncationAtEveryByte: cut a five-frame
    // stream at every byte offset. Complete frames before the cut
    // must decode exactly; the cut frame must never surface, neither
    // as a frame nor as decoded junk — only as "need more bytes".
    const auto events = sampleEvents(37, 2027);
    std::vector<uint8_t> stream;
    std::vector<size_t> boundaries;     // frame end offsets
    encodePredict(stream, 1, 2);
    boundaries.push_back(stream.size());
    encodeTrain(stream, 1, events[0]);
    boundaries.push_back(stream.size());
    encodeBatch(stream, 1, vm::TraceSpan(events.data(), events.size()));
    boundaries.push_back(stream.size());
    encodeStats(stream);
    boundaries.push_back(stream.size());
    encodeTenantStats(stream, 1);
    boundaries.push_back(stream.size());

    for (size_t cut = 0; cut <= stream.size(); ++cut) {
        SCOPED_TRACE(cut);
        const size_t expectFrames =
                static_cast<size_t>(std::count_if(
                        boundaries.begin(), boundaries.end(),
                        [cut](size_t end) { return end <= cut; }));

        FrameDecoder decoder;
        decoder.feed(stream.data(), cut);
        size_t got = 0;
        while (true) {
            const auto frame = decoder.next();
            if (!frame.has_value())
                break;
            ++got;
            // Every surfaced frame must decode cleanly per opcode.
            std::vector<TraceEvent> scratch;
            switch (frame->op) {
            case Op::Predict:
                (void)decodePredict(frame->payload);
                break;
            case Op::Train:
                (void)decodeTrain(frame->payload);
                break;
            case Op::Batch:
                (void)decodeBatch(frame->payload, scratch);
                break;
            case Op::Stats:
                EXPECT_TRUE(frame->payload.empty());
                break;
            case Op::TenantStats:
                (void)decodeTenantStatsRequest(frame->payload);
                break;
            default:
                FAIL() << "fabricated opcode";
            }
        }
        EXPECT_EQ(got, expectFrames);
        // The remainder is buffered, never silently dropped.
        EXPECT_EQ(decoder.pendingBytes(),
                  cut - (expectFrames == 0
                                 ? 0
                                 : boundaries[expectFrames - 1]));
    }
}

TEST(NetProtocolFuzz, PayloadTruncationAtEveryByteThrowsTyped)
{
    // Reframe a valid BATCH payload at every shorter length: the
    // decoder delivers the frame (framing is self-consistent), but
    // the payload decoder must throw a typed ProtocolError — never
    // crash, never fabricate events.
    const auto events = sampleEvents(5);
    std::vector<uint8_t> full;
    encodeBatch(full, 6, vm::TraceSpan(events.data(), events.size()));
    const std::vector<uint8_t> payload(full.begin() + 5, full.end());

    for (size_t cut = 0; cut < payload.size(); ++cut) {
        SCOPED_TRACE(cut);
        std::vector<uint8_t> frame;
        putU32(frame, static_cast<uint32_t>(1 + cut));
        putU8(frame, static_cast<uint8_t>(Op::Batch));
        frame.insert(frame.end(), payload.begin(),
                     payload.begin() + static_cast<long>(cut));

        FrameDecoder decoder;
        decoder.feed(frame.data(), frame.size());
        const auto got = decoder.next();
        ASSERT_TRUE(got.has_value());
        std::vector<TraceEvent> decoded;
        try {
            decodeBatch(got->payload, decoded);
            FAIL() << "expected ProtocolError at cut " << cut;
        } catch (const ProtocolError &error) {
            EXPECT_EQ(error.code, ProtoError::Truncated);
        }
    }
}

TEST(NetProtocol, DecoderBufferReuseAcrossFrames)
{
    // Steady-state: many frames through one decoder, buffer reclaimed
    // at the end (the pooling hook the server connections use).
    const auto events = sampleEvents(16);
    FrameDecoder decoder;
    for (int round = 0; round < 100; ++round) {
        std::vector<uint8_t> out;
        encodeBatch(out, static_cast<uint64_t>(round),
                    vm::TraceSpan(events.data(), events.size()));
        decoder.feed(out.data(), out.size());
        const auto frame = decoder.next();
        ASSERT_TRUE(frame.has_value());
        std::vector<TraceEvent> decoded;
        EXPECT_EQ(decodeBatch(frame->payload, decoded),
                  static_cast<uint64_t>(round));
    }
    EXPECT_FALSE(decoder.next().has_value());
    auto buffer = decoder.takeBuffer();
    EXPECT_GT(buffer.capacity(), 0u);
}

} // namespace
