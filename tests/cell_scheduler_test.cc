/**
 * @file
 * Tests for the cell-level scheduler (exp/experiment.hh): dedup of
 * identical (workload, predictor-bank) cells across experiments,
 * byte-identical results regardless of worker count, error
 * propagation, and the wall-clock bar against the legacy
 * one-runSuite-per-binary layout.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>

#include "exp/experiment.hh"
#include "obs/instrumentation.hh"

namespace {

using namespace vp;
using namespace vp::exp;

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
            .count();
}

SuiteOptions
smokeOptions()
{
    SuiteOptions options;
    options.predictors = {"l", "s2", "fcm1", "fcm2", "fcm3"};
    options.config.scale = dryRunScale;
    return options;
}

void
expectIdenticalRuns(const std::vector<BenchmarkRun> &a,
                    const std::vector<BenchmarkRun> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].exec.retired, b[i].exec.retired);
        EXPECT_EQ(a[i].exec.predicted, b[i].exec.predicted);
        ASSERT_EQ(a[i].predictors.size(), b[i].predictors.size());
        for (size_t p = 0; p < a[i].predictors.size(); ++p) {
            EXPECT_EQ(a[i].predictors[p].first,
                      b[i].predictors[p].first);
            const auto &sa = a[i].predictors[p].second;
            const auto &sb = b[i].predictors[p].second;
            EXPECT_EQ(sa.total(), sb.total());
            EXPECT_EQ(sa.predicted(), sb.predicted());
            EXPECT_EQ(sa.correct(), sb.correct());
            for (int c = 0; c < isa::numCategories; ++c) {
                const auto cat = static_cast<isa::Category>(c);
                EXPECT_EQ(sa.total(cat), sb.total(cat));
                EXPECT_EQ(sa.predicted(cat), sb.predicted(cat));
                EXPECT_EQ(sa.correct(cat), sb.correct(cat));
            }
        }
    }
}

TEST(CellScheduler, DedupsIdenticalSuitesAcrossExperiments)
{
    ExperimentConfig config;
    CellScheduler scheduler(config);

    // Two "experiments" requesting the same bank over the full suite
    // (as figures 3 through 7 do): seven unique cells, not fourteen.
    const auto first = scheduler.suite(smokeOptions());
    const auto second = scheduler.suite(smokeOptions());
    EXPECT_EQ(scheduler.uniqueCells(), 7u);
    EXPECT_EQ(scheduler.requestedCells(), 14u);
    expectIdenticalRuns(first, second);
}

TEST(CellScheduler, PrefetchDeclaresTheSameCellsSuiteUses)
{
    ExperimentConfig config;
    CellScheduler scheduler(config);
    scheduler.prefetch(smokeOptions());
    const size_t declared = scheduler.uniqueCells();
    EXPECT_EQ(declared, 7u);
    scheduler.suite(smokeOptions());
    EXPECT_EQ(scheduler.uniqueCells(), declared);
}

TEST(CellScheduler, ResultsAreIdenticalAcrossWorkerCounts)
{
    SuiteOptions narrowed = smokeOptions();
    narrowed.benchmarks = {"compress", "gcc", "xlisp"};

    ExperimentConfig config;
    CellScheduler serial(config, 1);
    CellScheduler parallel(config, 4);

    const auto serial_runs = serial.suite(narrowed);
    const auto parallel_runs = parallel.suite(narrowed);
    expectIdenticalRuns(serial_runs, parallel_runs);

    // And identical to the legacy pool in suite.cc running live.
    SuiteOptions legacy = narrowed;
    legacy.parallelism = 1;
    expectIdenticalRuns(serial_runs, runSuite(legacy));
}

TEST(CellScheduler, CellIdsAreStableAndSharedOnDedup)
{
    ExperimentConfig config;
    CellScheduler scheduler(config);
    SuiteOptions narrowed = smokeOptions();
    narrowed.benchmarks = {"compress", "gcc"};

    std::vector<size_t> first_ids, second_ids;
    scheduler.suite(narrowed, &first_ids);
    scheduler.suite(narrowed, &second_ids);
    EXPECT_EQ(first_ids, (std::vector<size_t>{0, 1}));
    EXPECT_EQ(second_ids, first_ids);

    const auto records = scheduler.records();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].workload, "compress");
    EXPECT_EQ(records[1].workload, "gcc");
    for (const auto &record : records) {
        EXPECT_TRUE(record.done);
        EXPECT_GT(record.wallMs, 0.0);
        EXPECT_EQ(record.predictors.size(), 5u);
        EXPECT_GT(record.predictors[0].second.total(), 0u);
    }
}

TEST(CellScheduler, WorkloadErrorsPropagateToEveryRequester)
{
    ExperimentConfig config;
    CellScheduler scheduler(config, 2);
    SuiteOptions bad = smokeOptions();
    bad.benchmarks = {"compress", "no-such-workload"};
    EXPECT_THROW(scheduler.suite(bad), std::exception);
    // The shared failing cell throws again for a second requester.
    EXPECT_THROW(scheduler.suite(bad), std::exception);
}

TEST(CellScheduler, BadPredictorSpecPropagates)
{
    ExperimentConfig config;
    CellScheduler scheduler(config);
    SuiteOptions bad;
    bad.predictors = {"not-a-spec"};
    bad.benchmarks = {"compress"};
    bad.config.scale = dryRunScale;
    EXPECT_THROW(scheduler.suite(bad), std::invalid_argument);
}

/**
 * The acceptance bar of the refactor: a multi-experiment run through
 * the cell scheduler — here the figure3 bank requested by two
 * consumers, as `vpexp figure3 figure4` would — must be no slower
 * than the legacy layout, where each binary ran its own runSuite over
 * live VM execution. The scheduler does strictly less work (one VM
 * pass per workload via the trace cache, one bank evaluation per
 * unique cell), so even on a noisy host the margin is ~2x; a generous
 * 1.25x fudge keeps the assertion robust while still catching any
 * regression that reruns shared cells.
 */
TEST(CellScheduler, MultiExperimentRunBeatsLegacySerialBinaries)
{
    const auto legacy_start = Clock::now();
    SuiteOptions legacy = smokeOptions();
    legacy.parallelism = 1;     // this host has few cores; compare
                                // like with like, serial vs serial
    const auto legacy_first = runSuite(legacy);
    const auto legacy_second = runSuite(legacy);
    const double legacy_ms = msSince(legacy_start);

    const auto sched_start = Clock::now();
    ExperimentConfig config;
    CellScheduler scheduler(config, 1);
    const auto sched_first = scheduler.suite(smokeOptions());
    const auto sched_second = scheduler.suite(smokeOptions());
    const double sched_ms = msSince(sched_start);

    expectIdenticalRuns(legacy_first, sched_first);
    expectIdenticalRuns(legacy_second, sched_second);
    EXPECT_EQ(scheduler.uniqueCells(), 7u);

    std::printf("[ scheduler] legacy 2x runSuite %.0f ms, "
                "cell-scheduled %.0f ms (dedup %zu of %zu requests)\n",
                legacy_ms, sched_ms,
                scheduler.requestedCells() - scheduler.uniqueCells(),
                scheduler.requestedCells());
    RecordProperty("legacy_ms", static_cast<int>(legacy_ms));
    RecordProperty("scheduler_ms", static_cast<int>(sched_ms));
    EXPECT_LE(sched_ms, legacy_ms * 1.25);
}

TEST(CellScheduler, RecordsCarryQueuedMsAndCounters)
{
    ExperimentConfig config;
    CellScheduler scheduler(config, 2);
    SuiteOptions narrowed = smokeOptions();
    narrowed.benchmarks = {"compress", "gcc"};
    scheduler.suite(narrowed);

    for (const auto &record : scheduler.records()) {
        ASSERT_TRUE(record.done);
        EXPECT_GE(record.queuedMs, 0.0);
        // Every cell's registry saw the replay-layer counters, and
        // they reconcile with the cell's own event count.
        EXPECT_EQ(record.counters.counter("replay.events"),
                  record.events);
        EXPECT_GT(record.counters.counter("replay.batches"), 0u);
        EXPECT_EQ(record.counters.counter("trace_cache.record"), 1u);
        const auto hist =
                record.counters.histograms.find("replay.batch_fill");
        ASSERT_NE(hist, record.counters.histograms.end());
        EXPECT_GT(hist->second.count, 0u);
    }

    const auto progress = scheduler.progress();
    EXPECT_EQ(progress.cellsDone, 2u);
    EXPECT_EQ(progress.cellsTotal, 2u);
    EXPECT_EQ(progress.tasksDone, progress.tasksTotal);
    EXPECT_GE(progress.tasksTotal, 2u);
}

TEST(CellScheduler, WindowedTelemetryNeverChangesTheStats)
{
    SuiteOptions narrowed = smokeOptions();
    narrowed.benchmarks = {"compress"};

    ExperimentConfig plain;
    CellScheduler unwindowed(plain, 1);
    const auto without = unwindowed.suite(narrowed);

    ExperimentConfig windowed_config;
    windowed_config.windowEvents = 4096;
    CellScheduler windowed(windowed_config, 1);
    const auto with = windowed.suite(narrowed);

    // Windowing only changes batch geometry, never the per-event
    // protocol: statistics must stay byte-identical.
    expectIdenticalRuns(without, with);

    // And the series itself reconciles: windows close at exact
    // multiples, per-member deltas sum to the cumulative totals.
    const auto records = windowed.records();
    ASSERT_EQ(records.size(), 1u);
    const auto &windows = records[0].windows;
    EXPECT_EQ(windows.windowEvents, 4096u);
    ASSERT_FALSE(windows.samples.empty());
    std::vector<uint64_t> eligible(records[0].predictors.size(), 0);
    std::vector<uint64_t> correct(records[0].predictors.size(), 0);
    for (size_t s = 0; s < windows.samples.size(); ++s) {
        const auto &sample = windows.samples[s];
        if (s + 1 < windows.samples.size())
            EXPECT_EQ(sample.endEvent % 4096, 0u);
        ASSERT_EQ(sample.members.size(), eligible.size());
        for (size_t m = 0; m < sample.members.size(); ++m) {
            eligible[m] += sample.members[m].eligible;
            correct[m] += sample.members[m].correct;
        }
    }
    for (size_t m = 0; m < eligible.size(); ++m) {
        EXPECT_EQ(eligible[m], records[0].predictors[m].second.total());
        EXPECT_EQ(correct[m], records[0].predictors[m].second.correct());
    }
}

TEST(NormalizeCellOptions, AppliesDryRunAndCanonicalises)
{
    ExperimentConfig config;
    config.dryRun = true;
    config.traceCacheDir = "/tmp/somewhere";

    SuiteOptions options;
    options.config.scale = 60;
    options.parallelism = 9;
    options.improvementA = 3;       // == improvementB: tracker off
    options.improvementB = 3;

    // A caller-set handle must not leak into the cell (it is not part
    // of cell identity; the scheduler installs its own).
    obs::Registry stray;
    obs::Instrumentation handle(&stray);
    options.instrumentation = &handle;

    const auto cell = normalizeCellOptions(options, config);
    EXPECT_EQ(cell.config.scale, dryRunScale);
    EXPECT_TRUE(cell.traceReplay);
    EXPECT_EQ(cell.traceCacheDir, "/tmp/somewhere");
    EXPECT_EQ(cell.parallelism, 0u);
    EXPECT_EQ(cell.improvementA, 0u);
    EXPECT_EQ(cell.improvementB, 0u);
    EXPECT_EQ(cell.instrumentation, nullptr);

    // Cells adopt the run-wide window, and windowing forces a serial
    // whole-trace replay (regions canonicalised away).
    ExperimentConfig windowed = config;
    windowed.windowEvents = 4096;
    windowed.regions = 8;
    const auto windowed_cell = normalizeCellOptions(options, windowed);
    EXPECT_EQ(windowed_cell.windowEvents, 4096u);
    EXPECT_EQ(windowed_cell.regions, 1u);

    // Without dry-run the requested scale survives.
    config.dryRun = false;
    EXPECT_EQ(normalizeCellOptions(options, config).config.scale, 60);
}

} // anonymous namespace
