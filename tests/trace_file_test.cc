/**
 * @file
 * Tests for the value-trace file format: round trips, streaming use
 * as a VM sink, replay equivalence, and corruption handling.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/fcm.hh"
#include "exp/suite.hh"
#include "masm/builder.hh"
#include "sim/driver.hh"
#include "synth/sequences.hh"
#include "vm/machine.hh"
#include "vm/trace_file.hh"

namespace {

using namespace vp;
using namespace vp::masm;
using namespace vp::masm::reg;
using vm::TraceEvent;

std::vector<TraceEvent>
sampleEvents(size_t n)
{
    synth::Rng rng(99);
    std::vector<TraceEvent> events;
    for (size_t i = 0; i < n; ++i) {
        TraceEvent event{};
        event.op = (i % 3 == 0) ? isa::Opcode::Add
                 : (i % 3 == 1) ? isa::Opcode::Ld
                                : isa::Opcode::Slli;
        event.cat = isa::opcodeCategory(event.op);
        event.pc = rng.range(500);
        event.value = rng.next() >> (rng.range(60));
        events.push_back(event);
    }
    return events;
}

TEST(TraceFile, StreamRoundTrip)
{
    const auto events = sampleEvents(1000);
    std::stringstream buf(std::ios::in | std::ios::out |
                          std::ios::binary);
    vm::TraceWriter writer(buf);
    for (const auto &event : events)
        writer.onValue(event);
    writer.finish();
    EXPECT_EQ(writer.eventCount(), events.size());

    buf.seekg(0);
    vm::TraceReader reader(buf);
    EXPECT_EQ(reader.eventCount(), events.size());
    TraceEvent event{};
    for (const auto &expected : events) {
        ASSERT_TRUE(reader.next(event));
        EXPECT_EQ(event.pc, expected.pc);
        EXPECT_EQ(event.value, expected.value);
        EXPECT_EQ(event.op, expected.op);
        EXPECT_EQ(event.cat, expected.cat);
    }
    EXPECT_FALSE(reader.next(event));
}

TEST(TraceFile, FileRoundTripHelpers)
{
    const auto events = sampleEvents(300);
    const std::string path = "test_roundtrip.vpt";
    vm::writeTraceFile(path, events);
    const auto back = vm::readTraceFile(path);
    std::remove(path.c_str());
    ASSERT_EQ(back.size(), events.size());
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(back[i].pc, events[i].pc);
        EXPECT_EQ(back[i].value, events[i].value);
    }
}

TEST(TraceFile, RecordedVmTraceReplaysIdentically)
{
    // Run a real program once live and once through a trace file;
    // the fcm predictor must see exactly the same stream.
    ProgramBuilder b("rec");
    const auto loop = b.newLabel();
    b.li(t0, 200);
    b.bind(loop);
    b.mul(t1, t0, t0);
    b.andi(t2, t1, 255);
    b.addi(t0, t0, -1);
    b.bnez(t0, loop);
    b.halt();
    const auto prog = b.build();

    // Live run into a predictor bank.
    sim::PredictorBank live;
    live.add(vp::exp::makePredictor("fcm2"));
    sim::runProgram(prog, live);

    // Recorded run.
    std::stringstream buf(std::ios::in | std::ios::out |
                          std::ios::binary);
    vm::TraceWriter writer(buf);
    vm::Machine machine;
    machine.setSink(&writer);
    ASSERT_TRUE(machine.run(prog).ok());
    writer.finish();

    buf.seekg(0);
    vm::TraceReader reader(buf);
    sim::PredictorBank replayed;
    replayed.add(vp::exp::makePredictor("fcm2"));
    const auto n = reader.replay(replayed);

    EXPECT_EQ(n, live.member(0).stats.total());
    EXPECT_EQ(replayed.member(0).stats.correct(),
              live.member(0).stats.correct());
}

TEST(TraceFile, RejectsGarbage)
{
    std::stringstream buf;
    buf << "not a trace at all";
    EXPECT_THROW(vm::TraceReader reader(buf), vm::TraceFileError);
}

TEST(TraceFile, RejectsTruncatedBody)
{
    const auto events = sampleEvents(50);
    std::stringstream buf(std::ios::in | std::ios::out |
                          std::ios::binary);
    vm::TraceWriter writer(buf);
    for (const auto &event : events)
        writer.onValue(event);
    writer.finish();

    // Chop the tail off.
    std::string data = buf.str();
    data.resize(data.size() - 4);
    std::stringstream cut(data, std::ios::in | std::ios::binary);
    vm::TraceReader reader(cut);
    TraceEvent event{};
    EXPECT_THROW(
            {
                while (reader.next(event)) {
                }
            },
            vm::TraceFileError);
}

TEST(TraceFile, RejectsNonPredictedOpcodeTags)
{
    // Handcraft a file whose single event claims to be a store.
    std::stringstream buf(std::ios::in | std::ios::out |
                          std::ios::binary);
    vm::TraceWriter writer(buf);
    TraceEvent good{};
    good.op = isa::Opcode::Add;
    good.cat = isa::Category::AddSub;
    writer.onValue(good);
    writer.finish();
    std::string data = buf.str();
    data[16] = static_cast<char>(isa::Opcode::Sd);  // first tag byte
    std::stringstream bad(data, std::ios::in | std::ios::binary);
    vm::TraceReader reader(bad);
    TraceEvent event{};
    EXPECT_THROW(reader.next(event), vm::TraceFileError);
}

TEST(TraceFile, MissingFileThrows)
{
    EXPECT_THROW(vm::readTraceFile("/nonexistent/x.vpt"),
                 vm::TraceFileError);
}

// ------------------------------------------- fuzz-ish round trips

/** Serialize events into an in-memory trace stream. */
std::string
serialize(const std::vector<TraceEvent> &events)
{
    std::stringstream buf(std::ios::in | std::ios::out |
                          std::ios::binary);
    vm::TraceWriter writer(buf);
    for (const auto &event : events)
        writer.onValue(event);
    writer.finish();
    return buf.str();
}

std::vector<TraceEvent>
deserialize(const std::string &data)
{
    std::stringstream buf(data, std::ios::in | std::ios::binary);
    vm::TraceReader reader(buf);
    std::vector<TraceEvent> events;
    TraceEvent event{};
    while (reader.next(event))
        events.push_back(event);
    return events;
}

TEST(TraceFileFuzz, BoundaryValuesRoundTrip)
{
    // The extremes the varint/zig-zag coding has to survive: value 0
    // and UINT64_MAX (the 10-byte LEB128 case), and PC deltas that
    // swing across the whole 64-bit range in both directions.
    std::vector<TraceEvent> events;
    const uint64_t pcs[] = {0, UINT64_MAX, 0, 1, UINT64_MAX - 1, 2,
                            0x8000000000000000ull, 0x7fffffffffffffffull};
    const uint64_t values[] = {0, UINT64_MAX, 1, UINT64_MAX - 1,
                               0x8000000000000000ull, 0, UINT64_MAX, 42};
    for (size_t i = 0; i < std::size(pcs); ++i) {
        TraceEvent event{};
        event.op = isa::Opcode::Add;
        event.cat = isa::opcodeCategory(event.op);
        event.pc = pcs[i];
        event.value = values[i];
        events.push_back(event);
    }

    const auto back = deserialize(serialize(events));
    ASSERT_EQ(back.size(), events.size());
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(back[i].pc, events[i].pc) << i;
        EXPECT_EQ(back[i].value, events[i].value) << i;
    }
}

TEST(TraceFileFuzz, RandomizedStreamsRoundTrip)
{
    // Seeded (deterministic) random streams: full-range PCs and
    // values of every magnitude, occasionally forced to the 0 and
    // UINT64_MAX boundaries.
    for (const uint64_t seed : {1u, 7u, 42u, 1234u, 99999u}) {
        SCOPED_TRACE(seed);
        synth::Rng rng(seed);
        std::vector<TraceEvent> events;
        const size_t n = 200 + rng.range(800);
        for (size_t i = 0; i < n; ++i) {
            TraceEvent event{};
            event.op = (i % 2 == 0) ? isa::Opcode::Add
                                    : isa::Opcode::Ld;
            event.cat = isa::opcodeCategory(event.op);
            event.pc = rng.next() >> rng.range(64);
            event.value = rng.next() >> rng.range(64);
            switch (rng.range(16)) {
              case 0: event.pc = 0; break;
              case 1: event.pc = UINT64_MAX; break;
              case 2: event.value = 0; break;
              case 3: event.value = UINT64_MAX; break;
              default: break;
            }
            events.push_back(event);
        }

        const auto back = deserialize(serialize(events));
        ASSERT_EQ(back.size(), events.size());
        for (size_t i = 0; i < events.size(); ++i) {
            EXPECT_EQ(back[i].pc, events[i].pc) << i;
            EXPECT_EQ(back[i].value, events[i].value) << i;
            EXPECT_EQ(back[i].op, events[i].op) << i;
        }
    }
}

TEST(TraceFileFuzz, TruncationAtEveryByteYieldsAPrefixThenThrows)
{
    // Chop a stream at every possible byte boundary: the reader must
    // never crash, never fabricate events, and always end in a
    // TraceFileError (a complete stream is the only clean exit).
    synth::Rng rng(2026);
    std::vector<TraceEvent> events;
    for (size_t i = 0; i < 40; ++i) {
        TraceEvent event{};
        event.op = isa::Opcode::Sub;
        event.cat = isa::opcodeCategory(event.op);
        event.pc = rng.next() >> rng.range(64);
        event.value = rng.next() >> rng.range(64);
        events.push_back(event);
    }
    const std::string data = serialize(events);

    for (size_t cut = 0; cut < data.size(); ++cut) {
        SCOPED_TRACE(cut);
        std::stringstream buf(data.substr(0, cut),
                              std::ios::in | std::ios::binary);
        std::vector<TraceEvent> seen;
        bool threw = false;
        try {
            vm::TraceReader reader(buf);
            TraceEvent event{};
            while (reader.next(event))
                seen.push_back(event);
        } catch (const vm::TraceFileError &) {
            threw = true;
        }
        EXPECT_TRUE(threw);
        ASSERT_LE(seen.size(), events.size());
        for (size_t i = 0; i < seen.size(); ++i) {
            EXPECT_EQ(seen[i].pc, events[i].pc);
            EXPECT_EQ(seen[i].value, events[i].value);
        }
    }

    // The untruncated stream round-trips cleanly.
    EXPECT_EQ(deserialize(data).size(), events.size());
}

} // anonymous namespace
