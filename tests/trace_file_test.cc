/**
 * @file
 * Tests for the value-trace file format: round trips, streaming use
 * as a VM sink, replay equivalence, and corruption handling.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/fcm.hh"
#include "exp/suite.hh"
#include "masm/builder.hh"
#include "sim/driver.hh"
#include "synth/sequences.hh"
#include "vm/machine.hh"
#include "vm/trace_file.hh"

namespace {

using namespace vp;
using namespace vp::masm;
using namespace vp::masm::reg;
using vm::TraceEvent;

std::vector<TraceEvent>
sampleEvents(size_t n)
{
    synth::Rng rng(99);
    std::vector<TraceEvent> events;
    for (size_t i = 0; i < n; ++i) {
        TraceEvent event{};
        event.op = (i % 3 == 0) ? isa::Opcode::Add
                 : (i % 3 == 1) ? isa::Opcode::Ld
                                : isa::Opcode::Slli;
        event.cat = isa::opcodeCategory(event.op);
        event.pc = rng.range(500);
        event.value = rng.next() >> (rng.range(60));
        events.push_back(event);
    }
    return events;
}

TEST(TraceFile, StreamRoundTrip)
{
    const auto events = sampleEvents(1000);
    std::stringstream buf(std::ios::in | std::ios::out |
                          std::ios::binary);
    vm::TraceWriter writer(buf);
    for (const auto &event : events)
        writer.onValue(event);
    writer.finish();
    EXPECT_EQ(writer.eventCount(), events.size());

    buf.seekg(0);
    vm::TraceReader reader(buf);
    EXPECT_EQ(reader.eventCount(), events.size());
    TraceEvent event{};
    for (const auto &expected : events) {
        ASSERT_TRUE(reader.next(event));
        EXPECT_EQ(event.pc, expected.pc);
        EXPECT_EQ(event.value, expected.value);
        EXPECT_EQ(event.op, expected.op);
        EXPECT_EQ(event.cat, expected.cat);
    }
    EXPECT_FALSE(reader.next(event));
}

TEST(TraceFile, FileRoundTripHelpers)
{
    const auto events = sampleEvents(300);
    const std::string path = "test_roundtrip.vpt";
    vm::writeTraceFile(path, events);
    const auto back = vm::readTraceFile(path);
    std::remove(path.c_str());
    ASSERT_EQ(back.size(), events.size());
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(back[i].pc, events[i].pc);
        EXPECT_EQ(back[i].value, events[i].value);
    }
}

TEST(TraceFile, RecordedVmTraceReplaysIdentically)
{
    // Run a real program once live and once through a trace file;
    // the fcm predictor must see exactly the same stream.
    ProgramBuilder b("rec");
    const auto loop = b.newLabel();
    b.li(t0, 200);
    b.bind(loop);
    b.mul(t1, t0, t0);
    b.andi(t2, t1, 255);
    b.addi(t0, t0, -1);
    b.bnez(t0, loop);
    b.halt();
    const auto prog = b.build();

    // Live run into a predictor bank.
    sim::PredictorBank live;
    live.add(vp::exp::makePredictor("fcm2"));
    sim::runProgram(prog, live);

    // Recorded run.
    std::stringstream buf(std::ios::in | std::ios::out |
                          std::ios::binary);
    vm::TraceWriter writer(buf);
    vm::Machine machine;
    machine.setSink(&writer);
    ASSERT_TRUE(machine.run(prog).ok());
    writer.finish();

    buf.seekg(0);
    vm::TraceReader reader(buf);
    sim::PredictorBank replayed;
    replayed.add(vp::exp::makePredictor("fcm2"));
    const auto n = reader.replay(replayed);

    EXPECT_EQ(n, live.member(0).stats.total());
    EXPECT_EQ(replayed.member(0).stats.correct(),
              live.member(0).stats.correct());
}

TEST(TraceFile, RejectsGarbage)
{
    std::stringstream buf;
    buf << "not a trace at all";
    EXPECT_THROW(vm::TraceReader reader(buf), vm::TraceFileError);
}

TEST(TraceFile, RejectsTruncatedBody)
{
    const auto events = sampleEvents(50);
    std::stringstream buf(std::ios::in | std::ios::out |
                          std::ios::binary);
    vm::TraceWriter writer(buf);
    for (const auto &event : events)
        writer.onValue(event);
    writer.finish();

    // Chop the tail off.
    std::string data = buf.str();
    data.resize(data.size() - 4);
    std::stringstream cut(data, std::ios::in | std::ios::binary);
    vm::TraceReader reader(cut);
    TraceEvent event{};
    EXPECT_THROW(
            {
                while (reader.next(event)) {
                }
            },
            vm::TraceFileError);
}

TEST(TraceFile, RejectsNonPredictedOpcodeTags)
{
    // Handcraft a file whose single event claims to be a store.
    std::stringstream buf(std::ios::in | std::ios::out |
                          std::ios::binary);
    vm::TraceWriter writer(buf);
    TraceEvent good{};
    good.op = isa::Opcode::Add;
    good.cat = isa::Category::AddSub;
    writer.onValue(good);
    writer.finish();
    std::string data = buf.str();
    data[16] = static_cast<char>(isa::Opcode::Sd);  // first tag byte
    std::stringstream bad(data, std::ios::in | std::ios::binary);
    vm::TraceReader reader(bad);
    TraceEvent event{};
    EXPECT_THROW(reader.next(event), vm::TraceFileError);
}

TEST(TraceFile, MissingFileThrows)
{
    EXPECT_THROW(vm::readTraceFile("/nonexistent/x.vpt"),
                 vm::TraceFileError);
}

// ------------------------------------------- fuzz-ish round trips

/** Serialize events into an in-memory trace stream. */
std::string
serialize(const std::vector<TraceEvent> &events)
{
    std::stringstream buf(std::ios::in | std::ios::out |
                          std::ios::binary);
    vm::TraceWriter writer(buf);
    for (const auto &event : events)
        writer.onValue(event);
    writer.finish();
    return buf.str();
}

std::vector<TraceEvent>
deserialize(const std::string &data)
{
    std::stringstream buf(data, std::ios::in | std::ios::binary);
    vm::TraceReader reader(buf);
    std::vector<TraceEvent> events;
    TraceEvent event{};
    while (reader.next(event))
        events.push_back(event);
    return events;
}

TEST(TraceFileFuzz, BoundaryValuesRoundTrip)
{
    // The extremes the varint/zig-zag coding has to survive: value 0
    // and UINT64_MAX (the 10-byte LEB128 case), and PC deltas that
    // swing across the whole 64-bit range in both directions.
    std::vector<TraceEvent> events;
    const uint64_t pcs[] = {0, UINT64_MAX, 0, 1, UINT64_MAX - 1, 2,
                            0x8000000000000000ull, 0x7fffffffffffffffull};
    const uint64_t values[] = {0, UINT64_MAX, 1, UINT64_MAX - 1,
                               0x8000000000000000ull, 0, UINT64_MAX, 42};
    for (size_t i = 0; i < std::size(pcs); ++i) {
        TraceEvent event{};
        event.op = isa::Opcode::Add;
        event.cat = isa::opcodeCategory(event.op);
        event.pc = pcs[i];
        event.value = values[i];
        events.push_back(event);
    }

    const auto back = deserialize(serialize(events));
    ASSERT_EQ(back.size(), events.size());
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(back[i].pc, events[i].pc) << i;
        EXPECT_EQ(back[i].value, events[i].value) << i;
    }
}

TEST(TraceFileFuzz, RandomizedStreamsRoundTrip)
{
    // Seeded (deterministic) random streams: full-range PCs and
    // values of every magnitude, occasionally forced to the 0 and
    // UINT64_MAX boundaries.
    for (const uint64_t seed : {1u, 7u, 42u, 1234u, 99999u}) {
        SCOPED_TRACE(seed);
        synth::Rng rng(seed);
        std::vector<TraceEvent> events;
        const size_t n = 200 + rng.range(800);
        for (size_t i = 0; i < n; ++i) {
            TraceEvent event{};
            event.op = (i % 2 == 0) ? isa::Opcode::Add
                                    : isa::Opcode::Ld;
            event.cat = isa::opcodeCategory(event.op);
            event.pc = rng.next() >> rng.range(64);
            event.value = rng.next() >> rng.range(64);
            switch (rng.range(16)) {
              case 0: event.pc = 0; break;
              case 1: event.pc = UINT64_MAX; break;
              case 2: event.value = 0; break;
              case 3: event.value = UINT64_MAX; break;
              default: break;
            }
            events.push_back(event);
        }

        const auto back = deserialize(serialize(events));
        ASSERT_EQ(back.size(), events.size());
        for (size_t i = 0; i < events.size(); ++i) {
            EXPECT_EQ(back[i].pc, events[i].pc) << i;
            EXPECT_EQ(back[i].value, events[i].value) << i;
            EXPECT_EQ(back[i].op, events[i].op) << i;
        }
    }
}

TEST(TraceFileFuzz, TruncationAtEveryByteYieldsAPrefixThenThrows)
{
    // Chop a stream at every possible byte boundary: the reader must
    // never crash, never fabricate events, and always end in a
    // TraceFileError (a complete stream is the only clean exit).
    synth::Rng rng(2026);
    std::vector<TraceEvent> events;
    for (size_t i = 0; i < 40; ++i) {
        TraceEvent event{};
        event.op = isa::Opcode::Sub;
        event.cat = isa::opcodeCategory(event.op);
        event.pc = rng.next() >> rng.range(64);
        event.value = rng.next() >> rng.range(64);
        events.push_back(event);
    }
    const std::string data = serialize(events);

    for (size_t cut = 0; cut < data.size(); ++cut) {
        SCOPED_TRACE(cut);
        std::stringstream buf(data.substr(0, cut),
                              std::ios::in | std::ios::binary);
        std::vector<TraceEvent> seen;
        bool threw = false;
        try {
            vm::TraceReader reader(buf);
            TraceEvent event{};
            while (reader.next(event))
                seen.push_back(event);
        } catch (const vm::TraceFileError &) {
            threw = true;
        }
        EXPECT_TRUE(threw);
        ASSERT_LE(seen.size(), events.size());
        for (size_t i = 0; i < seen.size(); ++i) {
            EXPECT_EQ(seen[i].pc, events[i].pc);
            EXPECT_EQ(seen[i].value, events[i].value);
        }
    }

    // The untruncated stream round-trips cleanly.
    EXPECT_EQ(deserialize(data).size(), events.size());
}

// ----------------------------------------- hardening (the PR's fixes)

/** A sink that accepts writes but refuses to seek — a pipe. */
class PipeOutBuf : public std::stringbuf
{
  public:
    PipeOutBuf() : std::stringbuf(std::ios::out) {}

  protected:
    std::streampos
    seekoff(std::streamoff, std::ios_base::seekdir,
            std::ios_base::openmode) override
    {
        return std::streampos(std::streamoff(-1));
    }

    std::streampos
    seekpos(std::streampos, std::ios_base::openmode) override
    {
        return std::streampos(std::streamoff(-1));
    }
};

/** A source that yields bytes but refuses to seek or tell. */
class PipeInBuf : public std::stringbuf
{
  public:
    explicit PipeInBuf(const std::string &data)
        : std::stringbuf(data, std::ios::in)
    {
    }

  protected:
    std::streampos
    seekoff(std::streamoff, std::ios_base::seekdir,
            std::ios_base::openmode) override
    {
        return std::streampos(std::streamoff(-1));
    }

    std::streampos
    seekpos(std::streampos, std::ios_base::openmode) override
    {
        return std::streampos(std::streamoff(-1));
    }
};

TEST(TraceFileHardening, Vpt1FinishThrowsOnNonSeekableSink)
{
    // Without the seekp check, finish() on a pipe silently left the
    // header count at 0 and replay dropped every event.
    PipeOutBuf pipe;
    std::ostream out(&pipe);
    vm::TraceWriter writer(out);
    for (const auto &event : sampleEvents(10))
        writer.onValue(event);
    EXPECT_THROW(writer.finish(), vm::TraceFileError);
}

TEST(TraceFileHardening, Vpt2FinishWorksOnNonSeekableSink)
{
    // The replacement for the pipe use case: VPT2 never seeks.
    PipeOutBuf pipe;
    std::ostream out(&pipe);
    const auto events = sampleEvents(100);
    vm::Vpt2Writer writer(out, 32);
    for (const auto &event : events)
        writer.onValue(event);
    writer.finish();
    EXPECT_EQ(writer.eventCount(), events.size());

    std::stringstream buf(pipe.str(), std::ios::in | std::ios::binary);
    vm::Vpt2Reader reader(buf);
    TraceEvent event{};
    size_t n = 0;
    while (reader.next(event))
        ++n;
    reader.expectEnd();
    EXPECT_EQ(n, events.size());
}

namespace varint {

void
append(std::string &out, uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<char>(0x80 | (value & 0x7f)));
        value >>= 7;
    }
    out.push_back(static_cast<char>(value));
}

} // namespace varint

std::string
vpt1Header(uint64_t count)
{
    std::string header = "VPT1";
    header.append(4, '\0');
    for (int i = 0; i < 8; ++i)
        header.push_back(static_cast<char>(count >> (8 * i)));
    return header;
}

TEST(TraceFileHardening, RejectsOverflowingFinalVarintByte)
{
    // A 10-byte varint's final byte sits at shift 63: only its lowest
    // bit fits in a uint64. 0x03 carries a second significant bit that
    // the old decoder silently shifted out, decoding a wrong value.
    std::string data = vpt1Header(1);
    data.push_back(static_cast<char>(isa::Opcode::Add));
    data.append(9, static_cast<char>(0xff));
    data.push_back(0x03);           // overflowing final pc-delta byte
    varint::append(data, 0);        // value

    std::stringstream buf(data, std::ios::in | std::ios::binary);
    vm::TraceReader reader(buf);
    TraceEvent event{};
    try {
        reader.next(event);
        FAIL() << "overflowing varint decoded without error";
    } catch (const vm::TraceFileError &error) {
        EXPECT_NE(std::string(error.what()).find("varint overflow"),
                  std::string::npos);
    }

    // The legitimate 10-byte encoding (final byte 0x01 = UINT64_MAX)
    // still decodes — only genuine overflow is rejected.
    std::string good = vpt1Header(1);
    good.push_back(static_cast<char>(isa::Opcode::Add));
    varint::append(good, vm::TraceEvent{}.pc);  // pc-delta 0
    good.append(9, static_cast<char>(0xff));
    good.push_back(0x01);                       // value = UINT64_MAX
    std::stringstream ok(good, std::ios::in | std::ios::binary);
    vm::TraceReader okReader(ok);
    ASSERT_TRUE(okReader.next(event));
    EXPECT_EQ(event.value, UINT64_MAX);
}

TEST(TraceFileHardening, AbsurdHeaderCountDoesNotPreallocate)
{
    // A forged header claiming 2^60 events must surface as a
    // TraceFileError, not a bad_alloc from reserve(2^60).
    const std::string path = "test_absurd_count.vpt";
    {
        std::ofstream out(path, std::ios::binary);
        out << vpt1Header(uint64_t(1) << 60);
    }
    EXPECT_THROW(vm::readTraceFile(path), vm::TraceFileError);
    std::remove(path.c_str());
}

TEST(TraceFileHardening, TrailingBytesAfterPromisedCountAreSurfaced)
{
    const auto events = sampleEvents(25);
    std::string data = serialize(events);
    data += "junk after the promised event count";

    std::stringstream buf(data, std::ios::in | std::ios::binary);
    const auto reader = vm::openTrace(buf);
    TraceEvent event{};
    size_t n = 0;
    while (reader->next(event))
        ++n;
    EXPECT_EQ(n, events.size());
    EXPECT_THROW(reader->expectEnd(), vm::TraceFileError);

    // A clean stream passes the same check.
    std::stringstream clean(serialize(events),
                            std::ios::in | std::ios::binary);
    const auto cleanReader = vm::openTrace(clean);
    while (cleanReader->next(event)) {
    }
    cleanReader->expectEnd();
}

TEST(TraceCacheHardening, TempFilesCleanedUpWhenRenameFails)
{
    namespace fs = std::filesystem;
    const fs::path dir =
            fs::temp_directory_path() / "vp-tmpclean-test";
    fs::remove_all(dir);
    fs::create_directories(dir);

    exp::SuiteOptions options;
    options.predictors = {"l"};
    options.traceReplay = true;
    options.traceCacheDir = dir.string();
    options.config.scale = 5;

    // Plant a directory where the recording should land: the final
    // rename must fail, and the error path must not leave the
    // .vpt.tmp.<pid>/.meta.tmp.<pid> partials behind.
    fs::create_directories(dir / "compress-ref-ref-s5.vpt");
    EXPECT_THROW(exp::runBenchmark("compress", options),
                 std::exception);

    for (const auto &entry : fs::directory_iterator(dir)) {
        EXPECT_EQ(entry.path().filename().string().find(".tmp."),
                  std::string::npos)
                << entry.path();
    }
    fs::remove_all(dir);
}

// ------------------------------------------------------ VPT2 format

std::string
serializeVpt2(const std::vector<TraceEvent> &events, size_t blockEvents,
              bool compress = true)
{
    std::stringstream buf(std::ios::in | std::ios::out |
                          std::ios::binary);
    vm::Vpt2Writer writer(buf, blockEvents, compress);
    for (const auto &event : events)
        writer.onValue(event);
    writer.finish();
    return buf.str();
}

std::vector<TraceEvent>
deserializeVpt2(const std::string &data)
{
    std::stringstream buf(data, std::ios::in | std::ios::binary);
    vm::Vpt2Reader reader(buf);
    std::vector<TraceEvent> events;
    TraceEvent event{};
    while (reader.next(event))
        events.push_back(event);
    reader.expectEnd();
    return events;
}

void
expectSameEvents(const std::vector<TraceEvent> &got,
                 const std::vector<TraceEvent> &expected)
{
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(got[i].pc, expected[i].pc) << i;
        EXPECT_EQ(got[i].value, expected[i].value) << i;
        EXPECT_EQ(got[i].op, expected[i].op) << i;
        EXPECT_EQ(got[i].cat, expected[i].cat) << i;
    }
}

TEST(Vpt2, RoundTripsAcrossBlockSizesAndCodecs)
{
    const auto events = sampleEvents(1000);
    for (const size_t block : {1u, 7u, 64u, 1000u, 4096u}) {
        for (const bool compress : {false, true}) {
            SCOPED_TRACE(testing::Message()
                         << "block " << block << " compress "
                         << compress);
            const auto data = serializeVpt2(events, block, compress);
            const auto back = deserializeVpt2(data);
            expectSameEvents(back, events);
        }
    }
}

TEST(Vpt2, EmptyTraceRoundTrips)
{
    const auto data = serializeVpt2({}, 64);
    EXPECT_TRUE(deserializeVpt2(data).empty());
}

TEST(Vpt2, BoundaryValuesRoundTrip)
{
    std::vector<TraceEvent> events;
    const uint64_t pcs[] = {0, UINT64_MAX, 0, 1, UINT64_MAX - 1, 2,
                            0x8000000000000000ull,
                            0x7fffffffffffffffull};
    const uint64_t values[] = {0, UINT64_MAX, 1, UINT64_MAX - 1,
                               0x8000000000000000ull, 0, UINT64_MAX,
                               42};
    for (size_t i = 0; i < std::size(pcs); ++i) {
        TraceEvent event{};
        event.op = isa::Opcode::Add;
        event.cat = isa::opcodeCategory(event.op);
        event.pc = pcs[i];
        event.value = values[i];
        events.push_back(event);
    }
    // Block size 3 forces the boundary values across block breaks,
    // exercising the per-block lastPc restart.
    expectSameEvents(deserializeVpt2(serializeVpt2(events, 3)), events);
}

TEST(Vpt2, RandomizedStreamsRoundTrip)
{
    for (const uint64_t seed : {1u, 7u, 42u, 1234u, 99999u}) {
        SCOPED_TRACE(seed);
        synth::Rng rng(seed);
        std::vector<TraceEvent> events;
        const size_t n = 200 + rng.range(800);
        for (size_t i = 0; i < n; ++i) {
            TraceEvent event{};
            event.op = (i % 2 == 0) ? isa::Opcode::Add
                                    : isa::Opcode::Ld;
            event.cat = isa::opcodeCategory(event.op);
            event.pc = rng.next() >> rng.range(64);
            event.value = rng.next() >> rng.range(64);
            events.push_back(event);
        }
        const auto back =
                deserializeVpt2(serializeVpt2(events, 100));
        expectSameEvents(back, events);
    }
}

TEST(Vpt2, OpenTraceAutoDetectsBothFormats)
{
    const auto events = sampleEvents(50);

    std::stringstream v1(serialize(events),
                         std::ios::in | std::ios::binary);
    EXPECT_EQ(vm::openTrace(v1)->eventCount(), events.size());

    std::stringstream v2(serializeVpt2(events, 16),
                         std::ios::in | std::ios::binary);
    EXPECT_EQ(vm::openTrace(v2)->eventCount(), events.size());

    std::stringstream junk("ABCD....", std::ios::in | std::ios::binary);
    EXPECT_THROW(vm::openTrace(junk), vm::TraceFileError);
}

TEST(Vpt2, SeeksToEveryBlockBoundaryAndArbitraryTargets)
{
    const auto events = sampleEvents(1000);
    const size_t block = 64;
    const auto data = serializeVpt2(events, block);
    std::stringstream buf(data, std::ios::in | std::ios::binary);
    vm::Vpt2Reader reader(buf);
    ASSERT_TRUE(reader.indexed());
    EXPECT_EQ(reader.blockCount(), (events.size() + block - 1) / block);

    TraceEvent event{};
    // Every block boundary, in a deliberately non-monotonic order
    // (backward seeks must work on an indexed reader).
    for (size_t b = reader.blockCount(); b-- > 0;) {
        const uint64_t target = b * block;
        reader.seekToEvent(target);
        EXPECT_EQ(reader.position(), target);
        ASSERT_TRUE(reader.next(event));
        EXPECT_EQ(event.pc, events[target].pc);
        EXPECT_EQ(event.value, events[target].value);
    }
    // Arbitrary mid-block targets.
    for (uint64_t target = 0; target < events.size(); target += 37) {
        reader.seekToEvent(target);
        ASSERT_TRUE(reader.next(event));
        EXPECT_EQ(event.pc, events[target].pc) << target;
        EXPECT_EQ(event.value, events[target].value) << target;
    }
    // Seek to the exact end: no events remain.
    reader.seekToEvent(events.size());
    EXPECT_FALSE(reader.next(event));
    EXPECT_THROW(reader.seekToEvent(events.size() + 1),
                 vm::TraceFileError);
}

TEST(Vpt2, StreamsSequentiallyWithoutSeeking)
{
    const auto events = sampleEvents(300);
    const auto data = serializeVpt2(events, 32);

    PipeInBuf pipe(data);
    std::istream in(&pipe);
    vm::Vpt2Reader reader(in);
    EXPECT_FALSE(reader.indexed());
    EXPECT_EQ(reader.eventCount(), 0u);     // trailer not read yet

    std::vector<TraceEvent> back;
    TraceEvent event{};
    while (reader.next(event))
        back.push_back(event);
    reader.expectEnd();
    expectSameEvents(back, events);
    EXPECT_EQ(reader.eventCount(), events.size());
}

TEST(Vpt2, NonSeekableStreamSurfacesTrailingGarbage)
{
    const auto events = sampleEvents(100);
    std::string data = serializeVpt2(events, 32);
    data += "zzz";

    PipeInBuf pipe(data);
    std::istream in(&pipe);
    vm::Vpt2Reader reader(in);
    TraceEvent event{};
    while (reader.next(event)) {
    }
    EXPECT_THROW(reader.expectEnd(), vm::TraceFileError);
}

TEST(Vpt2, IndexedOpenRejectsTrailingGarbage)
{
    // With random access the byte accounting is validated up front.
    const auto events = sampleEvents(100);
    std::string data = serializeVpt2(events, 32);
    data += "zzz";
    std::stringstream buf(data, std::ios::in | std::ios::binary);
    EXPECT_THROW(vm::Vpt2Reader reader(buf), vm::TraceFileError);
}

TEST(Vpt2Fuzz, TruncationAtEveryByteNeverFabricatesEvents)
{
    synth::Rng rng(2027);
    std::vector<TraceEvent> events;
    for (size_t i = 0; i < 120; ++i) {
        TraceEvent event{};
        event.op = isa::Opcode::Sub;
        event.cat = isa::opcodeCategory(event.op);
        event.pc = rng.next() >> rng.range(64);
        event.value = rng.next() >> rng.range(64);
        events.push_back(event);
    }
    const std::string data = serializeVpt2(events, 16);

    for (size_t cut = 0; cut < data.size(); ++cut) {
        SCOPED_TRACE(cut);

        // Indexed (seekable) open: the trailer/index validation must
        // reject every truncation outright or during decode.
        {
            std::stringstream buf(data.substr(0, cut),
                                  std::ios::in | std::ios::binary);
            std::vector<TraceEvent> seen;
            bool threw = false;
            try {
                vm::Vpt2Reader reader(buf);
                TraceEvent event{};
                while (reader.next(event))
                    seen.push_back(event);
                reader.expectEnd();
            } catch (const vm::TraceFileError &) {
                threw = true;
            }
            EXPECT_TRUE(threw);
            ASSERT_LE(seen.size(), events.size());
            expectSameEvents(seen, {events.begin(),
                                    events.begin() +
                                            static_cast<long>(
                                                    seen.size())});
        }

        // Streaming open: decoded events must be a prefix, and the
        // missing endmark/index/trailer must surface as an error.
        {
            PipeInBuf pipe(data.substr(0, cut));
            std::istream in(&pipe);
            std::vector<TraceEvent> seen;
            bool threw = false;
            try {
                vm::Vpt2Reader reader(in);
                TraceEvent event{};
                while (reader.next(event))
                    seen.push_back(event);
                reader.expectEnd();
            } catch (const vm::TraceFileError &) {
                threw = true;
            }
            EXPECT_TRUE(threw);
            ASSERT_LE(seen.size(), events.size());
            expectSameEvents(seen, {events.begin(),
                                    events.begin() +
                                            static_cast<long>(
                                                    seen.size())});
        }
    }

    expectSameEvents(deserializeVpt2(data), events);
}

TEST(Vpt2, FileHelpersRoundTrip)
{
    const auto events = sampleEvents(500);
    const std::string path = "test_roundtrip2.vpt";
    vm::writeTraceFileVpt2(path, events, 64);
    const auto back = vm::readTraceFile(path);    // auto-detects
    std::remove(path.c_str());
    expectSameEvents(back, events);
}

TEST(Vpt2, DeflateShrinksWorkloadTracesBelowVpt1)
{
    if (!vm::traceFileZlibAvailable())
        GTEST_SKIP() << "built without zlib; blocks are stored raw";

    // One VM execution per workload, both writers fed from the same
    // fan-out — the campaign-format size claim, pinned per workload.
    for (const auto &info : workloads::allWorkloads()) {
        SCOPED_TRACE(info.name);
        workloads::WorkloadConfig config;
        config.scale = 5;
        const auto prog = info.build(config);

        std::stringstream v1(std::ios::in | std::ios::out |
                             std::ios::binary);
        std::stringstream v2(std::ios::in | std::ios::out |
                             std::ios::binary);
        vm::TraceWriter w1(v1);
        vm::Vpt2Writer w2(v2);
        vm::FanoutSink fan;
        fan.add(&w1);
        fan.add(&w2);
        vm::Machine machine;
        machine.setSink(&fan);
        ASSERT_TRUE(machine.run(prog).ok());
        w1.finish();
        w2.finish();

        EXPECT_LT(v2.str().size(), v1.str().size())
                << "VPT2 (" << v2.str().size()
                << " bytes) not smaller than VPT1 ("
                << v1.str().size() << " bytes)";
    }
}

} // anonymous namespace
