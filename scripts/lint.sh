#!/usr/bin/env bash
# Static-analysis stage: vplint (always) plus clang-tidy (when the
# toolchain is available).
#
#   ./scripts/lint.sh [BUILD_DIR]
#
# vplint needs nothing but python3 and runs in seconds; it is a hard
# gate. clang-tidy needs clang and a compile_commands.json — the
# default build exports one (CMAKE_EXPORT_COMPILE_COMMANDS=ON). When
# clang-tidy is missing (the local gcc-only container) the tidy half
# is skipped with a note; CI installs clang-tidy so the gate is
# enforced there. Set VP_LINT_TIDY=0 to skip clang-tidy explicitly.
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"

echo "==> vplint (repo invariants)"
python3 tools/vplint

if [[ "${VP_LINT_TIDY:-1}" == "0" ]]; then
    echo "==> clang-tidy skipped (VP_LINT_TIDY=0)"
    exit 0
fi

tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy" >/dev/null 2>&1; then
    echo "==> clang-tidy not found; skipped (install clang-tidy to run locally)"
    exit 0
fi

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
    echo "==> $build_dir/compile_commands.json missing; configuring"
    cmake -B "$build_dir" -S . >/dev/null
fi

echo "==> clang-tidy (.clang-tidy checks over src/)"
# Headers are covered via HeaderFilterRegex in .clang-tidy; the
# translation units below pull in every header in src/.
mapfile -t sources < <(find src -name '*.cc' | sort)
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"
if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -clang-tidy-binary "$tidy" -p "$build_dir" \
        -quiet -j "$jobs" "${sources[@]}"
else
    "$tidy" -p "$build_dir" --quiet "${sources[@]}"
fi

echo "==> lint passed"
