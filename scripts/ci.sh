#!/usr/bin/env bash
# CI entry point: the tier-1 verify line from a clean checkout, once
# with default flags, once with -DVP_SANITIZE=ON, and once
# instrumented with -DVP_COVERAGE=ON followed by the per-directory
# line-coverage summary. Any failure fails the script.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

run_config() {
    local dir="$1"; shift
    rm -rf "$dir"
    cmake -B "$dir" -S . "$@"
    cmake --build "$dir" -j "$jobs"
    (cd "$dir" && ctest --output-on-failure -j "$jobs")
}

echo "==> default configuration"
run_config build

echo "==> sanitized configuration (ASan + UBSan)"
run_config build-asan -DVP_SANITIZE=ON

echo "==> coverage configuration (gcov instrumentation)"
run_config build-cov -DVP_COVERAGE=ON -DCMAKE_BUILD_TYPE=Debug
./scripts/coverage_summary.sh build-cov

echo "==> CI passed"
