#!/usr/bin/env bash
# CI entry point: the tier-1 verify line from a clean checkout, once
# with default flags, once with -DVP_SANITIZE=ON, and once
# instrumented with -DVP_COVERAGE=ON followed by the per-directory
# line-coverage summary. Any failure fails the script.
#
# Every registered test carries exactly one ctest label (unit |
# golden | smoke); set VP_CTEST_LABEL to restrict each ctest run to
# one label so CI can shard the suite across parallel jobs, e.g.
#   VP_CTEST_LABEL=unit ./scripts/ci.sh
# The smoke label covers smoke_test plus the sharded vpexp registry
# invocations (bench_smoke.vpexp_*), which exercise every registered
# experiment under --dry-run including the CSV/JSON writers.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

ctest_args=()
if [[ -n "${VP_CTEST_LABEL:-}" ]]; then
    ctest_args+=(-L "$VP_CTEST_LABEL")
fi

run_config() {
    local dir="$1"; shift
    rm -rf "$dir"
    cmake -B "$dir" -S . "$@"
    cmake --build "$dir" -j "$jobs"
    (cd "$dir" && ctest --output-on-failure -j "$jobs" \
                        ${ctest_args[@]+"${ctest_args[@]}"})
}

# Static analysis first: vplint needs no build and fails fast on
# invariant violations (hot-path allocation, undocumented counters,
# naked mutexes); the clang-tidy half runs when the toolchain is
# present (see scripts/lint.sh and the dedicated CI job).
echo "==> lint (vplint + clang-tidy when available)"
./scripts/lint.sh build

echo "==> default configuration"
run_config build

# Perf smoke: the batched-vs-scalar replay pairs, machine-readable.
# Runs on the unsharded invocation (or an explicit perf shard) against
# the Release build just produced; build/BENCH_hotpath.json is the
# artifact CI uploads. The hard regression gate is the ctest-side
# hotpath_guard_test; this step records the actual ratios.
if [[ -z "${VP_CTEST_LABEL:-}" || "${VP_CTEST_LABEL}" == "perf" ]]; then
    echo "==> perf smoke (batched hot path)"
    if [[ -x build/bench/perf_predictors ]]; then
        ./build/bench/perf_predictors --json \
            --benchmark_filter=BM_Replay \
            --benchmark_min_time=0.05 \
            > build/BENCH_hotpath.json
        echo "    wrote build/BENCH_hotpath.json"
    else
        echo "    perf_predictors not built (no google-benchmark); skipped"
    fi
    echo "==> perf smoke (trace campaign: VPT2 sizes + region replay)"
    ./build/bench/trace_campaign_bench --out build/BENCH_campaign.json
    echo "    wrote build/BENCH_campaign.json"

    # vpd server loadgen: the seven workload traces replayed as
    # concurrent loopback clients through both connection engines,
    # with the per-tenant byte-identity check against serial replay
    # built in (the binary exits nonzero on any divergence).
    echo "==> perf smoke (vpd server loadgen)"
    ./build/bench/vpd_loadgen --scale 5 --clients 1,4 \
        --out build/BENCH_vpd.json
    echo "    wrote build/BENCH_vpd.json"

    # Observability smoke: one suite campaign with per-cell counters,
    # windowed telemetry, and a Chrome trace-event timeline. The
    # resulting BENCH_results.json (counters + windows for all seven
    # workloads) and BENCH_trace.json are the artifacts CI uploads.
    echo "==> observability smoke (counters + trace timeline)"
    ./build/bench/vpexp figure5 --dry-run --window 8192 \
        --trace-json build/BENCH_trace.json \
        --out build/obs-smoke --format json > /dev/null
    cp build/obs-smoke/BENCH_results.json build/BENCH_results.json
    echo "    wrote build/BENCH_results.json and build/BENCH_trace.json"
fi

echo "==> sanitized configuration (ASan + UBSan)"
run_config build-asan -DVP_SANITIZE=ON

# ThreadSanitizer over the concurrent subsystems: the sharded bank
# map, both vpd server engines, the frame decoder under concurrent
# connections, and the obs registry shards. TSan and ASan cannot
# share a process, so this is its own configuration; benches and
# examples are skipped for build speed and the run is restricted to
# the multithreaded test binaries.
echo "==> thread-sanitized configuration (TSan)"
rm -rf build-tsan
cmake -B build-tsan -S . -DVP_TSAN=ON \
      -DVP_BUILD_BENCH=OFF -DVP_BUILD_EXAMPLES=OFF
cmake --build build-tsan -j "$jobs" \
      --target sharded_bank_test vpd_server_test net_protocol_test obs_test
(cd build-tsan && ctest --output-on-failure -j "$jobs" \
      -R "ShardedBank|VpdServer|NetProtocol|Registry|Snapshot|Histogram|Instrumentation|TraceLog")

echo "==> coverage configuration (gcov instrumentation)"
run_config build-cov -DVP_COVERAGE=ON -DCMAKE_BUILD_TYPE=Debug
./scripts/coverage_summary.sh build-cov

echo "==> CI passed"
