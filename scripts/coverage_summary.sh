#!/usr/bin/env bash
# Per-directory line-coverage summary for a -DVP_COVERAGE=ON build
# tree that has already run ctest.
#
# Usage: scripts/coverage_summary.sh <build-dir>
#
# Prefers gcovr (nicer per-file report) when installed; the
# per-directory aggregation below runs either way so CI always prints
# comparable numbers. Only src/**/*.cc implementation files are
# aggregated: each belongs to exactly one translation unit, so the
# counts are exact (headers instantiate per-TU and gcov's per-object
# .gcov files would double-count them).
set -euo pipefail

build="${1:?usage: coverage_summary.sh <build-dir>}"
repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

if ! find "$build" -name '*.gcda' -print -quit | grep -q .; then
    echo "no .gcda files under $build (build with -DVP_COVERAGE=ON and run ctest first)" >&2
    exit 1
fi

if command -v gcovr >/dev/null 2>&1; then
    echo "== gcovr (per file, src/ only) =="
    gcovr --root "$repo" --object-directory "$build" --filter 'src/' || true
    echo
fi

echo "== line coverage per directory (src/**/*.cc) =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# One gcov run per vp-library object keeps each source's .gcov file
# intact (a single batched run would overwrite shared names).
find "$build/CMakeFiles/vp.dir" -name '*.gcda' | while read -r gcda; do
    gcov -p -o "$(dirname "$gcda")" "$gcda" >/dev/null 2>&1 || true
    mv -f ./*.gcov "$tmp"/ 2>/dev/null || true
done

awk '
FNR == 1 { path = "" }
/^ *-: *0:Source:/ {
    split($0, parts, "Source:")
    path = parts[2]
    # Keep repo-relative src/ implementation files only.
    if (path !~ /\.cc$/ || path !~ /src\//) { path = ""; nextfile }
    sub(/^.*src\//, "src/", path)
    n = split(path, seg, "/")
    dir = seg[1] "/" seg[2]
    next
}
path != "" && /^ *[0-9]+\*?: *[0-9]+:/ { covered[dir]++; total[dir]++ }
path != "" && /^ *#####: *[0-9]+:/     { total[dir]++ }
END {
    printf "%-18s %10s %10s %8s\n", "directory", "covered", "lines", "pct"
    gt = gc = 0
    for (dir in total) {
        printf "%-18s %10d %10d %7.1f%%\n", dir, covered[dir], total[dir],
               100.0 * covered[dir] / total[dir]
        gt += total[dir]; gc += covered[dir]
    }
    printf "%-18s %10d %10d %7.1f%%\n", "total", gc, gt,
           gt ? 100.0 * gc / gt : 0
}' "$tmp"/*.gcov | sort
