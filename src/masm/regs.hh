/**
 * @file
 * Software register-usage conventions for VP ISA programs.
 *
 * Nothing in the hardware enforces these (except r0); they are the
 * calling convention the workload runtime and the assembler's symbolic
 * register names follow.
 */

#ifndef VP_MASM_REGS_HH
#define VP_MASM_REGS_HH

#include "isa/opcode.hh"

namespace vp::masm {

namespace reg {

constexpr int zero = 0;             ///< hardwired zero

// t0-t9: caller-saved temporaries.
constexpr int t0 = 1, t1 = 2, t2 = 3, t3 = 4, t4 = 5;
constexpr int t5 = 6, t6 = 7, t7 = 8, t8 = 9, t9 = 10;

// s0-s9: callee-saved values.
constexpr int s0 = 11, s1 = 12, s2 = 13, s3 = 14, s4 = 15;
constexpr int s5 = 16, s6 = 17, s7 = 18, s8 = 19, s9 = 20;

// a0-a5: arguments, v0-v1: return values.
constexpr int a0 = 21, a1 = 22, a2 = 23, a3 = 24, a4 = 25, a5 = 26;
constexpr int v0 = 27, v1 = 28;

constexpr int gp = 29;              ///< global pointer (rarely used)
constexpr int sp = isa::stackReg;   ///< stack pointer (r30)
constexpr int ra = isa::linkReg;    ///< return address (r31)

} // namespace reg

} // namespace vp::masm

#endif // VP_MASM_REGS_HH
