/**
 * @file
 * Type-safe in-process program builder.
 *
 * The seven mini-benchmarks in src/workloads are written against this
 * API. It provides one emit method per opcode, label management with
 * backpatching, a data-section allocator, and a handful of pseudo-ops
 * (li/la/call/ret/push/pop) that expand into real instructions.
 */

#ifndef VP_MASM_BUILDER_HH
#define VP_MASM_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "masm/regs.hh"

namespace vp::masm {

/** Opaque label handle; create with ProgramBuilder::newLabel(). */
struct Label
{
    int id = -1;
    bool valid() const { return id >= 0; }
};

/**
 * Builds a Program instruction by instruction.
 *
 * Typical use:
 * @code
 *   ProgramBuilder b("demo");
 *   auto loop = b.newLabel();
 *   b.li(reg::t0, 100);
 *   b.bind(loop);
 *   b.addi(reg::t0, reg::t0, -1);
 *   b.bnez(reg::t0, loop);
 *   b.halt();
 *   isa::Program prog = b.build();
 * @endcode
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name);

    // ------------------------------------------------------- labels
    /** Create an unbound label. */
    Label newLabel();

    /** Bind @p label to the current position. */
    void bind(Label label);

    /** Create a label bound to the current position. */
    Label here();

    /** Bind @p label and record it as a named code symbol. */
    void bindNamed(Label label, const std::string &name);

    // ------------------------------------------------------- data
    /** Reserve @p bytes of zeroed data; returns its address. */
    uint64_t allocData(size_t bytes, size_t align = 8);

    /** Append raw bytes to the data section; returns their address. */
    uint64_t addBytes(const std::vector<uint8_t> &bytes, size_t align = 1);

    /** Append 64-bit words; returns their address. */
    uint64_t addWords(const std::vector<int64_t> &words);

    /** Append a string (not NUL-terminated); returns its address. */
    uint64_t addString(const std::string &text);

    /** Record a named data symbol. */
    void nameData(const std::string &name, uint64_t addr);

    /** Current size of the data section in bytes. */
    size_t dataSize() const { return data_.size(); }

    // ------------------------------------------------- real opcodes
    void add(int rd, int rs1, int rs2);
    void addi(int rd, int rs1, int32_t imm);
    void sub(int rd, int rs1, int rs2);
    void mul(int rd, int rs1, int rs2);
    void mulh(int rd, int rs1, int rs2);
    void div(int rd, int rs1, int rs2);
    void rem(int rd, int rs1, int rs2);
    void and_(int rd, int rs1, int rs2);
    void andi(int rd, int rs1, int32_t imm);
    void or_(int rd, int rs1, int rs2);
    void ori(int rd, int rs1, int32_t imm);
    void xor_(int rd, int rs1, int rs2);
    void xori(int rd, int rs1, int32_t imm);
    void nor(int rd, int rs1, int rs2);
    void not_(int rd, int rs1);
    void sll(int rd, int rs1, int rs2);
    void slli(int rd, int rs1, int32_t imm);
    void srl(int rd, int rs1, int rs2);
    void srli(int rd, int rs1, int32_t imm);
    void sra(int rd, int rs1, int rs2);
    void srai(int rd, int rs1, int32_t imm);
    void slt(int rd, int rs1, int rs2);
    void slti(int rd, int rs1, int32_t imm);
    void sltu(int rd, int rs1, int rs2);
    void sltiu(int rd, int rs1, int32_t imm);
    void seq(int rd, int rs1, int rs2);
    void seqi(int rd, int rs1, int32_t imm);
    void sne(int rd, int rs1, int rs2);
    void snei(int rd, int rs1, int32_t imm);
    void lui(int rd, int32_t imm);
    void ld(int rd, int32_t offset, int base);
    void lw(int rd, int32_t offset, int base);
    void lh(int rd, int32_t offset, int base);
    void lbu(int rd, int32_t offset, int base);
    void lb(int rd, int32_t offset, int base);
    void min(int rd, int rs1, int rs2);
    void max(int rd, int rs1, int rs2);
    void abs_(int rd, int rs1);
    void neg(int rd, int rs1);
    void mov(int rd, int rs1);
    void sd(int rs2, int32_t offset, int base);
    void sw(int rs2, int32_t offset, int base);
    void sh(int rs2, int32_t offset, int base);
    void sb(int rs2, int32_t offset, int base);
    void beq(int rs1, int rs2, Label target);
    void bne(int rs1, int rs2, Label target);
    void blt(int rs1, int rs2, Label target);
    void bge(int rs1, int rs2, Label target);
    void bltu(int rs1, int rs2, Label target);
    void bgeu(int rs1, int rs2, Label target);
    void beqz(int rs1, Label target);
    void bnez(int rs1, Label target);
    void j(Label target);
    void jal(Label target);
    void jr(int rs1);
    void jalr(int rd, int rs1);
    void nop();
    void halt();

    // ------------------------------------------------- pseudo-ops
    /** Load an arbitrary 64-bit constant (1-7 real instructions). */
    void li(int rd, int64_t value);

    /** Load an address (data addresses always fit in 31 bits). */
    void la(int rd, uint64_t addr);

    /** Call a subroutine: jal through the link register. */
    void call(Label target) { jal(target); }

    /** Return from a subroutine. */
    void ret() { jr(reg::ra); }

    /** Push a register onto the stack. */
    void push(int rs);

    /** Pop the stack into a register. */
    void pop(int rd);

    // ------------------------------------------------- finalize
    /** Current code position (the PC the next emit will get). */
    uint64_t pc() const { return code_.size(); }

    /**
     * Resolve all labels and produce the Program.
     *
     * @throws std::logic_error on unbound labels that were referenced,
     * or if Program::validate() fails.
     */
    isa::Program build();

  private:
    void emit(const isa::Instr &instr);
    void emitBranch(isa::Opcode op, int rs1, int rs2, Label target);

    std::string name_;
    std::vector<isa::Instr> code_;
    std::vector<uint8_t> data_;
    std::vector<int64_t> labelPcs_;             // by label id, -1 unbound
    std::vector<std::pair<uint64_t, int>> fixups_;  // (pc, label id)
    std::map<std::string, uint64_t> codeSymbols_;
    std::map<std::string, uint64_t> dataSymbols_;
};

} // namespace vp::masm

#endif // VP_MASM_BUILDER_HH
