#include "masm/builder.hh"

#include <limits>
#include <stdexcept>

namespace vp::masm {

using isa::Instr;
using isa::Opcode;

ProgramBuilder::ProgramBuilder(std::string name) : name_(std::move(name))
{
}

Label
ProgramBuilder::newLabel()
{
    Label label{static_cast<int>(labelPcs_.size())};
    labelPcs_.push_back(-1);
    return label;
}

void
ProgramBuilder::bind(Label label)
{
    if (!label.valid() ||
        static_cast<size_t>(label.id) >= labelPcs_.size()) {
        throw std::logic_error("bind: invalid label");
    }
    if (labelPcs_[label.id] >= 0)
        throw std::logic_error("bind: label bound twice");
    labelPcs_[label.id] = static_cast<int64_t>(code_.size());
}

Label
ProgramBuilder::here()
{
    Label label = newLabel();
    bind(label);
    return label;
}

void
ProgramBuilder::bindNamed(Label label, const std::string &name)
{
    bind(label);
    codeSymbols_[name] = code_.size();
}

uint64_t
ProgramBuilder::allocData(size_t bytes, size_t align)
{
    while (data_.size() % align != 0)
        data_.push_back(0);
    const uint64_t addr = isa::defaultDataBase + data_.size();
    data_.insert(data_.end(), bytes, 0);
    return addr;
}

uint64_t
ProgramBuilder::addBytes(const std::vector<uint8_t> &bytes, size_t align)
{
    while (data_.size() % align != 0)
        data_.push_back(0);
    const uint64_t addr = isa::defaultDataBase + data_.size();
    data_.insert(data_.end(), bytes.begin(), bytes.end());
    return addr;
}

uint64_t
ProgramBuilder::addWords(const std::vector<int64_t> &words)
{
    while (data_.size() % 8 != 0)
        data_.push_back(0);
    const uint64_t addr = isa::defaultDataBase + data_.size();
    for (int64_t word : words) {
        for (int i = 0; i < 8; ++i)
            data_.push_back(static_cast<uint8_t>(
                    static_cast<uint64_t>(word) >> (8 * i)));
    }
    return addr;
}

uint64_t
ProgramBuilder::addString(const std::string &text)
{
    const uint64_t addr = isa::defaultDataBase + data_.size();
    data_.insert(data_.end(), text.begin(), text.end());
    return addr;
}

void
ProgramBuilder::nameData(const std::string &name, uint64_t addr)
{
    dataSymbols_[name] = addr;
}

void
ProgramBuilder::emit(const Instr &instr)
{
    code_.push_back(instr);
}

void
ProgramBuilder::emitBranch(Opcode op, int rs1, int rs2, Label target)
{
    if (!target.valid())
        throw std::logic_error("branch to invalid label");
    fixups_.emplace_back(code_.size(), target.id);
    emit(isa::makeB(op, rs1, rs2, 0));
}

// ------------------------------------------------------------------
// Real opcodes.
// ------------------------------------------------------------------

#define VP_EMIT_R(mname, opcode)                                        \
    void ProgramBuilder::mname(int rd, int rs1, int rs2)                \
    { emit(isa::makeR(Opcode::opcode, rd, rs1, rs2)); }

#define VP_EMIT_R2(mname, opcode)                                       \
    void ProgramBuilder::mname(int rd, int rs1)                         \
    { emit(isa::makeR2(Opcode::opcode, rd, rs1)); }

#define VP_EMIT_I(mname, opcode)                                        \
    void ProgramBuilder::mname(int rd, int rs1, int32_t imm)            \
    { emit(isa::makeI(Opcode::opcode, rd, rs1, imm)); }

#define VP_EMIT_LOAD(mname, opcode)                                     \
    void ProgramBuilder::mname(int rd, int32_t offset, int base)        \
    { emit(isa::makeMem(Opcode::opcode, rd, base, offset)); }

#define VP_EMIT_STORE(mname, opcode)                                    \
    void ProgramBuilder::mname(int rs2, int32_t offset, int base)       \
    { emit(isa::makeMem(Opcode::opcode, rs2, base, offset)); }

#define VP_EMIT_B(mname, opcode)                                        \
    void ProgramBuilder::mname(int rs1, int rs2, Label target)          \
    { emitBranch(Opcode::opcode, rs1, rs2, target); }

VP_EMIT_R(add, Add)
VP_EMIT_I(addi, Addi)
VP_EMIT_R(sub, Sub)
VP_EMIT_R(mul, Mul)
VP_EMIT_R(mulh, Mulh)
VP_EMIT_R(div, Div)
VP_EMIT_R(rem, Rem)
VP_EMIT_R(and_, And)
VP_EMIT_I(andi, Andi)
VP_EMIT_R(or_, Or)
VP_EMIT_I(ori, Ori)
VP_EMIT_R(xor_, Xor)
VP_EMIT_I(xori, Xori)
VP_EMIT_R(nor, Nor)
VP_EMIT_R2(not_, Not)
VP_EMIT_R(sll, Sll)
VP_EMIT_I(slli, Slli)
VP_EMIT_R(srl, Srl)
VP_EMIT_I(srli, Srli)
VP_EMIT_R(sra, Sra)
VP_EMIT_I(srai, Srai)
VP_EMIT_R(slt, Slt)
VP_EMIT_I(slti, Slti)
VP_EMIT_R(sltu, Sltu)
VP_EMIT_I(sltiu, Sltiu)
VP_EMIT_R(seq, Seq)
VP_EMIT_I(seqi, Seqi)
VP_EMIT_R(sne, Sne)
VP_EMIT_I(snei, Snei)
VP_EMIT_LOAD(ld, Ld)
VP_EMIT_LOAD(lw, Lw)
VP_EMIT_LOAD(lh, Lh)
VP_EMIT_LOAD(lbu, Lbu)
VP_EMIT_LOAD(lb, Lb)
VP_EMIT_R(min, Min)
VP_EMIT_R(max, Max)
VP_EMIT_R2(abs_, Abs)
VP_EMIT_R2(neg, Neg)
VP_EMIT_R2(mov, Mov)
VP_EMIT_STORE(sd, Sd)
VP_EMIT_STORE(sw, Sw)
VP_EMIT_STORE(sh, Sh)
VP_EMIT_STORE(sb, Sb)
VP_EMIT_B(beq, Beq)
VP_EMIT_B(bne, Bne)
VP_EMIT_B(blt, Blt)
VP_EMIT_B(bge, Bge)
VP_EMIT_B(bltu, Bltu)
VP_EMIT_B(bgeu, Bgeu)

#undef VP_EMIT_R
#undef VP_EMIT_R2
#undef VP_EMIT_I
#undef VP_EMIT_LOAD
#undef VP_EMIT_STORE
#undef VP_EMIT_B

void
ProgramBuilder::lui(int rd, int32_t imm)
{
    emit(isa::makeU(Opcode::Lui, rd, imm));
}

void
ProgramBuilder::beqz(int rs1, Label target)
{
    emitBranch(Opcode::Beqz, rs1, 0, target);
}

void
ProgramBuilder::bnez(int rs1, Label target)
{
    emitBranch(Opcode::Bnez, rs1, 0, target);
}

void
ProgramBuilder::j(Label target)
{
    if (!target.valid())
        throw std::logic_error("jump to invalid label");
    fixups_.emplace_back(code_.size(), target.id);
    emit(isa::makeJ(Opcode::J, 0));
}

void
ProgramBuilder::jal(Label target)
{
    if (!target.valid())
        throw std::logic_error("jal to invalid label");
    fixups_.emplace_back(code_.size(), target.id);
    emit(isa::Instr(Opcode::Jal, isa::linkReg, 0, 0, 0));
}

void
ProgramBuilder::jr(int rs1)
{
    emit(isa::Instr(Opcode::Jr, 0, static_cast<uint8_t>(rs1), 0, 0));
}

void
ProgramBuilder::jalr(int rd, int rs1)
{
    emit(isa::Instr(Opcode::Jalr, static_cast<uint8_t>(rd),
                    static_cast<uint8_t>(rs1), 0, 0));
}

void
ProgramBuilder::nop()
{
    emit(isa::Instr(Opcode::Nop, 0, 0, 0, 0));
}

void
ProgramBuilder::halt()
{
    emit(isa::Instr(Opcode::Halt, 0, 0, 0, 0));
}

// ------------------------------------------------------------------
// Pseudo-ops.
// ------------------------------------------------------------------

void
ProgramBuilder::li(int rd, int64_t value)
{
    if (value >= std::numeric_limits<int32_t>::min() &&
        value <= std::numeric_limits<int32_t>::max()) {
        addi(rd, reg::zero, static_cast<int32_t>(value));
        return;
    }
    // General 64-bit constant: four 16-bit chunks, high to low. The
    // sign extension introduced by the first addi is shifted out by
    // the three subsequent 16-bit shifts.
    const auto uval = static_cast<uint64_t>(value);
    addi(rd, reg::zero,
         static_cast<int32_t>(static_cast<int16_t>(uval >> 48)));
    slli(rd, rd, 16);
    ori(rd, rd, static_cast<int32_t>((uval >> 32) & 0xffff));
    slli(rd, rd, 16);
    ori(rd, rd, static_cast<int32_t>((uval >> 16) & 0xffff));
    slli(rd, rd, 16);
    ori(rd, rd, static_cast<int32_t>(uval & 0xffff));
}

void
ProgramBuilder::la(int rd, uint64_t addr)
{
    li(rd, static_cast<int64_t>(addr));
}

void
ProgramBuilder::push(int rs)
{
    addi(reg::sp, reg::sp, -8);
    sd(rs, 0, reg::sp);
}

void
ProgramBuilder::pop(int rd)
{
    ld(rd, 0, reg::sp);
    addi(reg::sp, reg::sp, 8);
}

isa::Program
ProgramBuilder::build()
{
    for (const auto &[pc, label_id] : fixups_) {
        const int64_t target = labelPcs_[label_id];
        if (target < 0) {
            throw std::logic_error(
                    "program '" + name_ + "': unbound label " +
                    std::to_string(label_id) + " referenced at pc " +
                    std::to_string(pc));
        }
        code_[pc].imm = static_cast<int32_t>(target);
    }

    isa::Program prog;
    prog.name = name_;
    prog.code = code_;
    prog.data = data_;
    prog.codeSymbols = codeSymbols_;
    prog.dataSymbols = dataSymbols_;

    const std::string diag = prog.validate();
    if (!diag.empty())
        throw std::logic_error("program '" + name_ + "': " + diag);
    return prog;
}

} // namespace vp::masm
