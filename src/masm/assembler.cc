#include "masm/assembler.hh"

#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "masm/builder.hh"

namespace vp::masm {

using isa::Format;
using isa::Opcode;

AsmError::AsmError(int line, const std::string &message)
    : std::runtime_error("line " + std::to_string(line) + ": " + message),
      line(line)
{
}

namespace {

/** Symbolic register names accepted in addition to rN. */
const std::map<std::string, int> &
regAliases()
{
    static const std::map<std::string, int> aliases = {
        {"zero", reg::zero},
        {"t0", reg::t0}, {"t1", reg::t1}, {"t2", reg::t2},
        {"t3", reg::t3}, {"t4", reg::t4}, {"t5", reg::t5},
        {"t6", reg::t6}, {"t7", reg::t7}, {"t8", reg::t8},
        {"t9", reg::t9},
        {"s0", reg::s0}, {"s1", reg::s1}, {"s2", reg::s2},
        {"s3", reg::s3}, {"s4", reg::s4}, {"s5", reg::s5},
        {"s6", reg::s6}, {"s7", reg::s7}, {"s8", reg::s8},
        {"s9", reg::s9},
        {"a0", reg::a0}, {"a1", reg::a1}, {"a2", reg::a2},
        {"a3", reg::a3}, {"a4", reg::a4}, {"a5", reg::a5},
        {"v0", reg::v0}, {"v1", reg::v1},
        {"gp", reg::gp}, {"sp", reg::sp}, {"ra", reg::ra},
    };
    return aliases;
}

/** One parsed operand token. */
struct Token
{
    std::string text;
};

/** Split an operand list on commas, trimming whitespace. */
std::vector<std::string>
splitOperands(const std::string &text)
{
    std::vector<std::string> parts;
    std::string current;
    bool in_string = false;
    for (char c : text) {
        if (c == '"')
            in_string = !in_string;
        if (c == ',' && !in_string) {
            parts.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    if (!current.empty() || !parts.empty())
        parts.push_back(current);

    for (auto &part : parts) {
        const auto begin = part.find_first_not_of(" \t");
        const auto end = part.find_last_not_of(" \t");
        part = begin == std::string::npos
                ? "" : part.substr(begin, end - begin + 1);
    }
    return parts;
}

class Assembler
{
  public:
    Assembler(const std::string &name, const std::string &source)
        : builder_(name), source_(source)
    {}

    isa::Program
    run()
    {
        std::istringstream in(source_);
        std::string line;
        while (std::getline(in, line)) {
            ++lineNo_;
            processLine(line);
        }
        try {
            return builder_.build();
        } catch (const std::logic_error &err) {
            throw AsmError(lineNo_, err.what());
        }
    }

  private:
    [[noreturn]] void
    fail(const std::string &message) const
    {
        throw AsmError(lineNo_, message);
    }

    static std::string
    stripComment(const std::string &line)
    {
        std::string out;
        bool in_string = false;
        for (char c : line) {
            if (c == '"')
                in_string = !in_string;
            if ((c == '#' || c == ';') && !in_string)
                break;
            out.push_back(c);
        }
        return out;
    }

    void
    processLine(const std::string &raw)
    {
        std::string line = stripComment(raw);

        // Peel off any leading "label:" definitions.
        while (true) {
            const auto colon = line.find(':');
            if (colon == std::string::npos)
                break;
            const auto head = line.substr(0, colon);
            // A colon inside an operand list (e.g. string) means no label.
            if (head.find_first_of(" \t\"(") != std::string::npos)
                break;
            defineLabel(head);
            line = line.substr(colon + 1);
        }

        std::istringstream in(line);
        std::string word;
        if (!(in >> word))
            return;

        std::string rest;
        std::getline(in, rest);

        if (word[0] == '.')
            directive(word, rest);
        else
            instruction(word, rest);
    }

    void
    defineLabel(const std::string &name)
    {
        if (name.empty())
            fail("empty label name");
        if (inData_) {
            if (dataSymbols_.count(name))
                fail("data symbol '" + name + "' redefined");
            // Bind to the *next* allocation: remember and patch on alloc.
            pendingDataLabels_.push_back(name);
        } else {
            auto label = codeLabel(name);
            if (boundCode_.count(name))
                fail("code label '" + name + "' redefined");
            builder_.bindNamed(label, name);
            boundCode_.insert(name);
        }
    }

    Label
    codeLabel(const std::string &name)
    {
        auto it = codeLabels_.find(name);
        if (it != codeLabels_.end())
            return it->second;
        Label label = builder_.newLabel();
        codeLabels_.emplace(name, label);
        return label;
    }

    void
    attachPendingData(uint64_t addr)
    {
        for (const auto &name : pendingDataLabels_) {
            dataSymbols_[name] = addr;
            builder_.nameData(name, addr);
        }
        pendingDataLabels_.clear();
    }

    int64_t
    parseInt(const std::string &text) const
    {
        std::string t = text;
        if (t.empty())
            fail("expected integer");
        if (t.size() >= 3 && t.front() == '\'' && t.back() == '\'') {
            if (t.size() == 3)
                return t[1];
            if (t.size() == 4 && t[1] == '\\') {
                switch (t[2]) {
                  case 'n': return '\n';
                  case 't': return '\t';
                  case '0': return 0;
                  case '\\': return '\\';
                  default: fail("bad character escape");
                }
            }
            fail("bad character literal " + text);
        }
        try {
            size_t pos = 0;
            const int64_t value = std::stoll(t, &pos, 0);
            if (pos != t.size())
                fail("bad integer '" + text + "'");
            return value;
        } catch (const std::exception &) {
            fail("bad integer '" + text + "'");
        }
    }

    /** Integer or previously defined data symbol. */
    int64_t
    parseIntOrSym(const std::string &text) const
    {
        if (!text.empty() && (std::isalpha(text[0]) || text[0] == '_')) {
            auto it = dataSymbols_.find(text);
            if (it == dataSymbols_.end())
                fail("unknown data symbol '" + text + "'");
            return static_cast<int64_t>(it->second);
        }
        return parseInt(text);
    }

    int
    parseReg(const std::string &text) const
    {
        if (text.empty())
            fail("expected register");
        auto it = regAliases().find(text);
        if (it != regAliases().end())
            return it->second;
        if (text[0] == 'r' || text[0] == 'R') {
            const std::string num = text.substr(1);
            if (!num.empty() &&
                num.find_first_not_of("0123456789") == std::string::npos) {
                const int r = std::stoi(num);
                if (r >= 0 && r < isa::numRegs)
                    return r;
            }
        }
        fail("bad register '" + text + "'");
    }

    /** Parse "offset(base)" or "sym(base)" or "sym". */
    std::pair<int32_t, int>
    parseMem(const std::string &text) const
    {
        const auto open = text.find('(');
        if (open == std::string::npos) {
            // Bare symbol/constant: absolute address, base r0.
            return {static_cast<int32_t>(parseIntOrSym(text)), reg::zero};
        }
        const auto close = text.find(')', open);
        if (close == std::string::npos)
            fail("missing ')' in memory operand");
        const std::string off = text.substr(0, open);
        const std::string base = text.substr(open + 1, close - open - 1);
        const int64_t offset = off.empty() ? 0 : parseIntOrSym(off);
        return {static_cast<int32_t>(offset), parseReg(base)};
    }

    std::string
    parseString(const std::string &text) const
    {
        const auto open = text.find('"');
        const auto close = text.rfind('"');
        if (open == std::string::npos || close <= open)
            fail("expected string literal");
        std::string out;
        for (size_t i = open + 1; i < close; ++i) {
            char c = text[i];
            if (c == '\\' && i + 1 < close) {
                ++i;
                switch (text[i]) {
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case '0': c = '\0'; break;
                  case '\\': c = '\\'; break;
                  case '"': c = '"'; break;
                  default: fail("bad string escape");
                }
            }
            out.push_back(c);
        }
        return out;
    }

    void
    directive(const std::string &word, const std::string &rest)
    {
        const auto ops = splitOperands(rest);
        if (word == ".data") {
            inData_ = true;
        } else if (word == ".text") {
            inData_ = false;
            if (!pendingDataLabels_.empty())
                fail("data label with no storage before .text");
        } else if (word == ".align") {
            if (ops.size() != 1)
                fail(".align takes one operand");
            const auto align = static_cast<size_t>(parseInt(ops[0]));
            attachPendingData(builder_.allocData(0, align));
        } else if (word == ".space") {
            if (ops.size() != 1)
                fail(".space takes one operand");
            const auto bytes = static_cast<size_t>(parseInt(ops[0]));
            attachPendingData(builder_.allocData(bytes, 1));
        } else if (word == ".word") {
            std::vector<int64_t> words;
            for (const auto &op : ops)
                words.push_back(parseIntOrSym(op));
            attachPendingData(builder_.addWords(words));
        } else if (word == ".byte") {
            std::vector<uint8_t> bytes;
            for (const auto &op : ops)
                bytes.push_back(static_cast<uint8_t>(parseInt(op)));
            attachPendingData(builder_.addBytes(bytes));
        } else if (word == ".ascii" || word == ".asciiz") {
            std::string text = parseString(rest);
            if (word == ".asciiz")
                text.push_back('\0');
            attachPendingData(builder_.addString(text));
        } else {
            fail("unknown directive " + word);
        }
    }

    void
    instruction(const std::string &mnemonic, const std::string &rest)
    {
        if (inData_)
            fail("instruction in .data section");
        const auto ops = splitOperands(rest);

        // Pseudo-instructions first.
        if (mnemonic == "li") {
            need(ops, 2);
            builder_.li(parseReg(ops[0]), parseIntOrSym(ops[1]));
            return;
        }
        if (mnemonic == "la") {
            need(ops, 2);
            builder_.la(parseReg(ops[0]),
                        static_cast<uint64_t>(parseIntOrSym(ops[1])));
            return;
        }
        if (mnemonic == "call") {
            need(ops, 1);
            builder_.call(codeLabel(ops[0]));
            return;
        }
        if (mnemonic == "ret") {
            builder_.ret();
            return;
        }
        if (mnemonic == "push") {
            need(ops, 1);
            builder_.push(parseReg(ops[0]));
            return;
        }
        if (mnemonic == "pop") {
            need(ops, 1);
            builder_.pop(parseReg(ops[0]));
            return;
        }
        if (mnemonic == "inc") {
            need(ops, 1);
            const int r = parseReg(ops[0]);
            builder_.addi(r, r, 1);
            return;
        }
        if (mnemonic == "dec") {
            need(ops, 1);
            const int r = parseReg(ops[0]);
            builder_.addi(r, r, -1);
            return;
        }

        const auto op = isa::opcodeFromName(mnemonic);
        if (!op)
            fail("unknown mnemonic '" + mnemonic + "'");

        realInstruction(*op, ops);
    }

    void
    need(const std::vector<std::string> &ops, size_t count) const
    {
        if (ops.size() != count) {
            fail("expected " + std::to_string(count) + " operand(s), got " +
                 std::to_string(ops.size()));
        }
    }

    void
    realInstruction(Opcode op, const std::vector<std::string> &ops)
    {
        using isa::Instr;
        switch (isa::opcodeFormat(op)) {
          case Format::R:
            need(ops, 3);
            emit(isa::makeR(op, parseReg(ops[0]), parseReg(ops[1]),
                            parseReg(ops[2])));
            break;
          case Format::R2:
            need(ops, 2);
            emit(isa::makeR2(op, parseReg(ops[0]), parseReg(ops[1])));
            break;
          case Format::I:
            need(ops, 3);
            emit(isa::makeI(op, parseReg(ops[0]), parseReg(ops[1]),
                            static_cast<int32_t>(parseIntOrSym(ops[2]))));
            break;
          case Format::U:
            need(ops, 2);
            emit(isa::makeU(op, parseReg(ops[0]),
                            static_cast<int32_t>(parseInt(ops[1]))));
            break;
          case Format::Mem: {
            need(ops, 2);
            const auto [offset, base] = parseMem(ops[1]);
            emit(isa::makeMem(op, parseReg(ops[0]), base, offset));
            break;
          }
          case Format::MemS: {
            need(ops, 2);
            const auto [offset, base] = parseMem(ops[1]);
            emit(isa::makeMem(op, parseReg(ops[0]), base, offset));
            break;
          }
          case Format::B:
            if (op == Opcode::Beqz || op == Opcode::Bnez) {
                need(ops, 2);
                branch(op, parseReg(ops[0]), 0, ops[1]);
            } else {
                need(ops, 3);
                branch(op, parseReg(ops[0]), parseReg(ops[1]), ops[2]);
            }
            break;
          case Format::J:
            need(ops, 1);
            builder_.j(codeLabel(ops[0]));
            break;
          case Format::JL:
            need(ops, 1);
            builder_.jal(codeLabel(ops[0]));
            break;
          case Format::JR:
            need(ops, 1);
            builder_.jr(parseReg(ops[0]));
            break;
          case Format::JLR:
            need(ops, 2);
            builder_.jalr(parseReg(ops[0]), parseReg(ops[1]));
            break;
          case Format::N:
            if (op == Opcode::Nop)
                builder_.nop();
            else
                builder_.halt();
            break;
        }
    }

    void
    branch(Opcode op, int rs1, int rs2, const std::string &target)
    {
        Label label = codeLabel(target);
        switch (op) {
          case Opcode::Beq: builder_.beq(rs1, rs2, label); break;
          case Opcode::Bne: builder_.bne(rs1, rs2, label); break;
          case Opcode::Blt: builder_.blt(rs1, rs2, label); break;
          case Opcode::Bge: builder_.bge(rs1, rs2, label); break;
          case Opcode::Bltu: builder_.bltu(rs1, rs2, label); break;
          case Opcode::Bgeu: builder_.bgeu(rs1, rs2, label); break;
          case Opcode::Beqz: builder_.beqz(rs1, label); break;
          case Opcode::Bnez: builder_.bnez(rs1, label); break;
          default: fail("not a branch");
        }
    }

    void
    emit(const isa::Instr &instr)
    {
        // Route raw instructions through the builder's typed methods
        // is unnecessary; append via a tiny shim.
        appendRaw(instr);
    }

    void
    appendRaw(const isa::Instr &instr)
    {
        // ProgramBuilder lacks a raw append on purpose (workloads should
        // use typed emits); the assembler reuses the typed API here.
        using isa::Opcode;
        switch (instr.op) {
#define VP_CASE_R(opcode, mname)                                        \
          case Opcode::opcode:                                          \
            builder_.mname(instr.rd, instr.rs1, instr.rs2); break;
#define VP_CASE_R2(opcode, mname)                                       \
          case Opcode::opcode:                                          \
            builder_.mname(instr.rd, instr.rs1); break;
#define VP_CASE_I(opcode, mname)                                        \
          case Opcode::opcode:                                          \
            builder_.mname(instr.rd, instr.rs1, instr.imm); break;
#define VP_CASE_LD(opcode, mname)                                       \
          case Opcode::opcode:                                          \
            builder_.mname(instr.rd, instr.imm, instr.rs1); break;
#define VP_CASE_ST(opcode, mname)                                       \
          case Opcode::opcode:                                          \
            builder_.mname(instr.rs2, instr.imm, instr.rs1); break;
            VP_CASE_R(Add, add)
            VP_CASE_I(Addi, addi)
            VP_CASE_R(Sub, sub)
            VP_CASE_R(Mul, mul)
            VP_CASE_R(Mulh, mulh)
            VP_CASE_R(Div, div)
            VP_CASE_R(Rem, rem)
            VP_CASE_R(And, and_)
            VP_CASE_I(Andi, andi)
            VP_CASE_R(Or, or_)
            VP_CASE_I(Ori, ori)
            VP_CASE_R(Xor, xor_)
            VP_CASE_I(Xori, xori)
            VP_CASE_R(Nor, nor)
            VP_CASE_R2(Not, not_)
            VP_CASE_R(Sll, sll)
            VP_CASE_I(Slli, slli)
            VP_CASE_R(Srl, srl)
            VP_CASE_I(Srli, srli)
            VP_CASE_R(Sra, sra)
            VP_CASE_I(Srai, srai)
            VP_CASE_R(Slt, slt)
            VP_CASE_I(Slti, slti)
            VP_CASE_R(Sltu, sltu)
            VP_CASE_I(Sltiu, sltiu)
            VP_CASE_R(Seq, seq)
            VP_CASE_I(Seqi, seqi)
            VP_CASE_R(Sne, sne)
            VP_CASE_I(Snei, snei)
            VP_CASE_LD(Ld, ld)
            VP_CASE_LD(Lw, lw)
            VP_CASE_LD(Lh, lh)
            VP_CASE_LD(Lbu, lbu)
            VP_CASE_LD(Lb, lb)
            VP_CASE_R(Min, min)
            VP_CASE_R(Max, max)
            VP_CASE_R2(Abs, abs_)
            VP_CASE_R2(Neg, neg)
            VP_CASE_R2(Mov, mov)
            VP_CASE_ST(Sd, sd)
            VP_CASE_ST(Sw, sw)
            VP_CASE_ST(Sh, sh)
            VP_CASE_ST(Sb, sb)
#undef VP_CASE_R
#undef VP_CASE_R2
#undef VP_CASE_I
#undef VP_CASE_LD
#undef VP_CASE_ST
          case Opcode::Lui:
            builder_.lui(instr.rd, instr.imm);
            break;
          default:
            fail("internal: unroutable opcode");
        }
    }

    ProgramBuilder builder_;
    const std::string &source_;
    int lineNo_ = 0;
    bool inData_ = false;
    std::map<std::string, Label> codeLabels_;
    std::set<std::string> boundCode_;
    std::map<std::string, uint64_t> dataSymbols_;
    std::vector<std::string> pendingDataLabels_;
};

} // anonymous namespace

isa::Program
assemble(const std::string &name, const std::string &source)
{
    return Assembler(name, source).run();
}

} // namespace vp::masm
