/**
 * @file
 * Text assembler for the VP ISA.
 *
 * Grammar (one statement per line, '#' or ';' starts a comment):
 *
 *   .data                      switch to the data section
 *   .text                      switch to the code section
 *   .align N                   align data to N bytes
 *   .space N                   reserve N zero bytes
 *   .word a, b, ...            64-bit little-endian words
 *   .byte a, b, ...            bytes
 *   .ascii "str"               string bytes (supports \n \t \0 \\ \")
 *   .asciiz "str"              string bytes plus a NUL
 *
 *   label:                     bind a label (code or data section)
 *   op operands                one instruction, e.g. addi r1, r2, -4
 *   ld r1, 8(r2)               memory operand syntax
 *   beq r1, r2, label          branches take label targets
 *
 * Pseudo-instructions: li rd, imm64; la rd, datasym; call label; ret;
 * push rs; pop rd; inc rd; dec rd.
 *
 * Data symbols must be defined before they are referenced (put .data
 * first); code labels may be referenced forward.
 */

#ifndef VP_MASM_ASSEMBLER_HH
#define VP_MASM_ASSEMBLER_HH

#include <stdexcept>
#include <string>

#include "isa/program.hh"

namespace vp::masm {

/** Error thrown on malformed assembly, carrying the line number. */
struct AsmError : std::runtime_error
{
    int line;
    AsmError(int line, const std::string &message);
};

/**
 * Assemble source text into a Program.
 *
 * @param name program name recorded in the result
 * @param source assembly text
 * @throws AsmError on syntax or semantic errors
 */
isa::Program assemble(const std::string &name, const std::string &source);

} // namespace vp::masm

#endif // VP_MASM_ASSEMBLER_HH
