/**
 * @file
 * The per-cell instrumentation handle: what the harness layers thread
 * through a replay so every observation point can stay a one-liner.
 *
 * A cell (one workload x predictor-bank run, see exp/experiment.hh)
 * gets at most one Instrumentation; a null pointer means "off" and
 * every helper below degenerates to nothing — the replay hot path
 * never sees the handle at all (tables and predictors keep plain
 * member counters that the harness *pulls* at cell boundaries), so
 * instrumentation off is byte- and time-identical to not having the
 * subsystem, which hotpath_guard_test pins.
 *
 * The handle bundles:
 *  - a Registry for the cell's counters/gauges/histograms (required);
 *  - an optional run-wide TraceLog for timeline spans.
 *
 * Region tasks of one cell run on different worker threads and share
 * the cell's handle concurrently; the registry's per-thread shards
 * make that safe without atomics.
 */

#ifndef VP_OBS_INSTRUMENTATION_HH
#define VP_OBS_INSTRUMENTATION_HH

#include "obs/registry.hh"
#include "obs/trace_log.hh"

namespace vp::obs {

class Instrumentation
{
  public:
    explicit Instrumentation(Registry *registry,
                             TraceLog *trace = nullptr)
        : registry_(registry), trace_(trace)
    {
    }

    Registry *registry() const { return registry_; }
    TraceLog *traceLog() const { return trace_; }

    void
    add(const std::string &name, uint64_t delta = 1)
    {
        if (registry_ != nullptr)
            registry_->add(name, delta);
    }

    void
    gauge(const std::string &name, uint64_t value)
    {
        if (registry_ != nullptr)
            registry_->gauge(name, value);
    }

    void
    record(const std::string &name, uint64_t value)
    {
        if (registry_ != nullptr)
            registry_->record(name, value);
    }

    /** A timeline span; inert when no trace log is attached. */
    TraceLog::Span
    span(std::string name, std::string category)
    {
        return TraceLog::span(trace_, std::move(name),
                              std::move(category));
    }

  private:
    Registry *registry_;
    TraceLog *trace_;
};

/** Null-safe helpers so call sites read as one line. */
inline void
add(Instrumentation *obs, const std::string &name, uint64_t delta = 1)
{
    if (obs != nullptr)
        obs->add(name, delta);
}

inline void
gauge(Instrumentation *obs, const std::string &name, uint64_t value)
{
    if (obs != nullptr)
        obs->gauge(name, value);
}

inline void
record(Instrumentation *obs, const std::string &name, uint64_t value)
{
    if (obs != nullptr)
        obs->record(name, value);
}

/** Span helper: inert when @p obs is null or has no trace log. */
inline TraceLog::Span
span(Instrumentation *obs, std::string name, std::string category)
{
    return TraceLog::span(obs != nullptr ? obs->traceLog() : nullptr,
                          std::move(name), std::move(category));
}

} // namespace vp::obs

#endif // VP_OBS_INSTRUMENTATION_HH
