/**
 * @file
 * Chrome trace-event timeline log.
 *
 * Records named spans (complete "ph":"X" events in the trace-event
 * format) and renders them as a JSON document that chrome://tracing
 * and Perfetto load directly:
 *
 *   { "displayTimeUnit": "ms",
 *     "traceEvents": [
 *       {"name":"cell gcc", "cat":"cell", "ph":"X", "pid":1,
 *        "tid":2, "ts":123.4, "dur":567.8, "args":{...}},
 *       ... ] }
 *
 * The vpexp driver creates one TraceLog per run (--trace-json FILE)
 * and the scheduler / suite layers record spans for cells, region
 * tasks, warm-up windows, trace-cache record/replay and report
 * generation through the obs::Instrumentation handle. Timestamps are
 * microseconds since the log's construction (steady clock); tids are
 * small per-thread integers assigned on first use, with thread_name
 * metadata so the timeline groups by worker.
 *
 * Thread-safe: spans complete at cell/region/report granularity
 * (hundreds per run), so a mutex per completed span is irrelevant to
 * replay performance and keeps the format code trivial.
 */

#ifndef VP_OBS_TRACE_LOG_HH
#define VP_OBS_TRACE_LOG_HH

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/mutex.hh"

namespace vp::obs {

class TraceLog
{
  public:
    using Clock = std::chrono::steady_clock;

    /** Optional key -> value annotations shown in the event's args. */
    using Args = std::vector<std::pair<std::string, std::string>>;

    TraceLog() : origin_(Clock::now()) {}
    TraceLog(const TraceLog &) = delete;
    TraceLog &operator=(const TraceLog &) = delete;

    /**
     * Record one complete span [@p start, @p end) on the calling
     * thread's timeline lane.
     */
    void complete(const std::string &name, const std::string &category,
                  Clock::time_point start, Clock::time_point end,
                  Args args = {});

    /**
     * RAII span: constructed at the start of the work, records the
     * complete event on destruction (or at close(), to attach args
     * computed during the work).
     */
    class Span
    {
      public:
        Span(TraceLog *log, std::string name, std::string category)
            : log_(log), name_(std::move(name)),
              category_(std::move(category)),
              start_(log ? Clock::now() : Clock::time_point{})
        {
        }

        Span(Span &&other) noexcept
            : log_(other.log_), name_(std::move(other.name_)),
              category_(std::move(other.category_)),
              start_(other.start_), args_(std::move(other.args_))
        {
            other.log_ = nullptr;
        }

        /** Closes the current span, then takes over @p other. */
        Span &
        operator=(Span &&other)
        {
            if (this != &other) {
                close();
                log_ = other.log_;
                name_ = std::move(other.name_);
                category_ = std::move(other.category_);
                start_ = other.start_;
                args_ = std::move(other.args_);
                other.log_ = nullptr;
            }
            return *this;
        }

        Span(const Span &) = delete;
        Span &operator=(const Span &) = delete;

        ~Span() { close(); }

        /** Annotate the span ("events" -> "81920", ...). */
        void
        arg(const std::string &key, const std::string &value)
        {
            if (log_ != nullptr)
                args_.emplace_back(key, value);
        }

        /** Record the span now instead of at destruction. */
        void
        close()
        {
            if (log_ == nullptr)
                return;
            log_->complete(name_, category_, start_, Clock::now(),
                           std::move(args_));
            log_ = nullptr;
        }

      private:
        TraceLog *log_;
        std::string name_;
        std::string category_;
        Clock::time_point start_;
        Args args_;
    };

    /**
     * Open a span on this log. A null @p log yields an inert span
     * (every method a no-op), so call sites need no null checks:
     * @code
     *   auto span = obs::TraceLog::span(log, "cell gcc", "cell");
     * @endcode
     */
    static Span
    span(TraceLog *log, std::string name, std::string category)
    {
        return Span(log, std::move(name), std::move(category));
    }

    size_t eventCount() const;

    /** Render the whole log as a chrome://tracing JSON document. */
    std::string render() const;

    /** render() to @p out. */
    void write(std::ostream &out) const;

  private:
    struct Event
    {
        std::string name;
        std::string category;
        double tsUs;        ///< microseconds since origin_
        double durUs;
        int tid;
        Args args;
    };

    /** Small per-thread lane id, assigned on first event. */
    int laneForThisThread() VP_REQUIRES(mutex_);

    Clock::time_point origin_;
    mutable util::Mutex mutex_;
    std::vector<Event> events_ VP_GUARDED_BY(mutex_);
    /** index = tid */
    std::vector<std::string> laneNames_ VP_GUARDED_BY(mutex_);
    std::map<std::thread::id, int> lanes_ VP_GUARDED_BY(mutex_);
};

} // namespace vp::obs

#endif // VP_OBS_TRACE_LOG_HH
