/**
 * @file
 * Metrics registry: named counters, gauges and log2-bucketed
 * histograms, sharded per thread so concurrent producers (the region
 * tasks of one scheduler cell, suite workers feeding one shared
 * registry) never touch an atomic or a lock on the increment path.
 *
 * Design:
 *
 *  - A Registry owns a list of Shards. Each thread lazily acquires
 *    its own Shard on first use (Registry::local(), one mutex hit per
 *    thread per registry, then lock-free) and increments plain
 *    uint64_t slots from then on.
 *  - snapshot() merges every shard into a Snapshot: counters and
 *    histograms sum, gauges keep the maximum (high-water semantics —
 *    the only merge that is deterministic under concurrent setters).
 *    Totals are exact provided every producer has finished (joined or
 *    otherwise synchronised) before the snapshot, which is how the
 *    cell scheduler uses it: a cell's registry is snapshot only after
 *    the promise fulfilling the cell has been set. obs_test pins the
 *    exactness under 1..8 worker threads.
 *  - Metric names are dotted paths ("fcm.vpt.evictions"); producers
 *    that emit the same name accumulate into one logical metric.
 *
 * Nothing here appears on the replay hot path: the predictors and
 * tables keep plain member counters (always on, a few adds per event
 * at most) and the harness pulls them into a Registry at cell
 * boundaries — see exp/suite.cc. The Instrumentation handle
 * (obs/instrumentation.hh) is the null-checked front door.
 */

#ifndef VP_OBS_REGISTRY_HH
#define VP_OBS_REGISTRY_HH

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.hh"

namespace vp::obs {

/**
 * Log2-bucketed histogram of uint64 samples.
 *
 * Bucket b counts samples whose bit width is b: bucket 0 holds the
 * value 0, bucket b >= 1 holds [2^(b-1), 2^b). UINT64_MAX lands in
 * bucket 64, so every representable value has a bucket and the
 * boundary cases (0, 1, UINT64_MAX) are distinguishable — obs_test
 * pins them.
 */
struct Histogram
{
    static constexpr int numBuckets = 65;

    std::array<uint64_t, numBuckets> buckets{};
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = UINT64_MAX;      ///< UINT64_MAX when empty
    uint64_t max = 0;

    /** The bucket @p value falls into: its bit width. */
    static int
    bucketOf(uint64_t value)
    {
        int b = 0;
        while (value != 0) {
            ++b;
            value >>= 1;
        }
        return b;
    }

    /** Inclusive lower bound of bucket @p b (0, 1, 2, 4, 8, ...). */
    static uint64_t
    bucketLow(int b)
    {
        return b == 0 ? 0 : uint64_t{1} << (b - 1);
    }

    void
    record(uint64_t value)
    {
        ++buckets[static_cast<size_t>(bucketOf(value))];
        ++count;
        sum += value;
        if (value < min)
            min = value;
        if (value > max)
            max = value;
    }

    /**
     * Record @p value @p weight times in one shot — how precomputed
     * distributions (e.g. a table's per-depth probe counts) import
     * into the registry without replaying every sample.
     */
    void
    record(uint64_t value, uint64_t weight)
    {
        if (weight == 0)
            return;
        buckets[static_cast<size_t>(bucketOf(value))] += weight;
        count += weight;
        sum += value * weight;
        if (value < min)
            min = value;
        if (value > max)
            max = value;
    }

    void
    merge(const Histogram &other)
    {
        for (int b = 0; b < numBuckets; ++b)
            buckets[static_cast<size_t>(b)] +=
                    other.buckets[static_cast<size_t>(b)];
        count += other.count;
        sum += other.sum;
        if (other.min < min)
            min = other.min;
        if (other.max > max)
            max = other.max;
    }

    double
    mean() const
    {
        return count ? static_cast<double>(sum) /
                               static_cast<double>(count)
                     : 0.0;
    }
};

/** Merged view of a registry (or of several, via merge()). */
struct Snapshot
{
    std::map<std::string, uint64_t> counters;       ///< sums
    std::map<std::string, uint64_t> gauges;         ///< maxima
    std::map<std::string, Histogram> histograms;

    bool
    empty() const
    {
        return counters.empty() && gauges.empty() && histograms.empty();
    }

    /** Sum counters/histograms, max gauges — same rules as shards. */
    void
    merge(const Snapshot &other)
    {
        for (const auto &[name, value] : other.counters)
            counters[name] += value;
        for (const auto &[name, value] : other.gauges) {
            auto [it, fresh] = gauges.try_emplace(name, value);
            if (!fresh && value > it->second)
                it->second = value;
        }
        for (const auto &[name, hist] : other.histograms)
            histograms[name].merge(hist);
    }

    /** Counter value, 0 when absent (telemetry is optional by design). */
    uint64_t
    counter(const std::string &name) const
    {
        const auto it = counters.find(name);
        return it == counters.end() ? 0 : it->second;
    }
};

/**
 * Thread-sharded metrics registry. See the file comment for the
 * threading contract; all name-keyed lookups happen on the producer's
 * own shard, so they are unsynchronised and allocation-light (each
 * shard touches only the names its thread emits).
 */
class Registry
{
  public:
    /** One thread's private slice of the registry. */
    class Shard
    {
      public:
        void
        add(const std::string &name, uint64_t delta)
        {
            counters_[name] += delta;
        }

        /** High-water gauge: keeps the largest value set. */
        void
        gauge(const std::string &name, uint64_t value)
        {
            auto [it, fresh] = gauges_.try_emplace(name, value);
            if (!fresh && value > it->second)
                it->second = value;
        }

        void
        record(const std::string &name, uint64_t value)
        {
            histograms_[name].record(value);
        }

        void
        record(const std::string &name, uint64_t value, uint64_t weight)
        {
            histograms_[name].record(value, weight);
        }

      private:
        friend class Registry;
        std::map<std::string, uint64_t> counters_;
        std::map<std::string, uint64_t> gauges_;
        std::map<std::string, Histogram> histograms_;
    };

    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /**
     * The calling thread's shard of this registry, created on first
     * use. The returned reference stays valid for the registry's
     * lifetime; only the creating thread may mutate it.
     */
    Shard &local();

    /** Convenience forwarding to local(). */
    void add(const std::string &name, uint64_t delta = 1)
    {
        local().add(name, delta);
    }

    void gauge(const std::string &name, uint64_t value)
    {
        local().gauge(name, value);
    }

    void record(const std::string &name, uint64_t value)
    {
        local().record(name, value);
    }

    void record(const std::string &name, uint64_t value, uint64_t weight)
    {
        local().record(name, value, weight);
    }

    /**
     * Merge every shard into one Snapshot. The caller must have
     * synchronised with every producer thread first (joined it, or
     * ordered through a promise/mutex as the cell scheduler does) —
     * shard slots are deliberately unsynchronised, so a snapshot
     * racing an increment is undefined like any other data race.
     */
    Snapshot snapshot() const;

  private:
    /** Guards the shard *list*; shard slots stay thread-owned and
     *  deliberately unannotated (see the class comment). */
    mutable util::Mutex mutex_;
    std::vector<std::unique_ptr<Shard>> shards_ VP_GUARDED_BY(mutex_);
    uint64_t id_ = nextId();        ///< process-unique (cache key)

    static uint64_t nextId();
};

} // namespace vp::obs

#endif // VP_OBS_REGISTRY_HH
