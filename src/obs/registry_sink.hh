/**
 * @file
 * core::CounterSink implemented over an obs::Registry shard: the
 * bridge the harness uses to pull a predictor bank's internal
 * counters (ValuePredictor::collectCounters) into a cell's registry.
 *
 * Header-only and trivially cheap — collection happens once per cell
 * or region task, never per event. The sink writes to one Shard, so
 * construct it with registry->local() on the thread doing the
 * collection (the Shard threading contract).
 */

#ifndef VP_OBS_REGISTRY_SINK_HH
#define VP_OBS_REGISTRY_SINK_HH

#include "core/predictor.hh"
#include "obs/registry.hh"

namespace vp::obs {

class RegistrySink : public core::CounterSink
{
  public:
    explicit RegistrySink(Registry::Shard &shard) : shard_(shard) {}

    void
    counter(const std::string &name, uint64_t value) override
    {
        shard_.add(name, value);
    }

    void
    gauge(const std::string &name, uint64_t value) override
    {
        shard_.gauge(name, value);
    }

    void
    distribution(const std::string &name, uint64_t value,
                 uint64_t count) override
    {
        shard_.record(name, value, count);
    }

  private:
    Registry::Shard &shard_;
};

} // namespace vp::obs

#endif // VP_OBS_REGISTRY_SINK_HH
