#include "obs/registry.hh"

#include <atomic>
#include <unordered_map>

namespace vp::obs {

uint64_t
Registry::nextId()
{
    // Process-unique, never reused: a thread's shard cache keyed by
    // this id can never resolve a stale entry for a registry that was
    // destroyed and whose address was recycled.
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

Registry::Shard &
Registry::local()
{
    // Per-thread cache: registry id -> this thread's shard. Entries
    // for destroyed registries linger (harmless: ids are unique, so
    // they can never be looked up again) until the thread exits; the
    // count is bounded by registries-ever-created, each entry a few
    // dozen bytes.
    thread_local std::unordered_map<uint64_t, Shard *> cache;
    const auto it = cache.find(id_);
    if (it != cache.end())
        return *it->second;

    const util::MutexLock lock(mutex_);
    shards_.push_back(std::make_unique<Shard>());
    Shard *shard = shards_.back().get();
    cache.emplace(id_, shard);
    return *shard;
}

Snapshot
Registry::snapshot() const
{
    Snapshot merged;
    const util::MutexLock lock(mutex_);
    for (const auto &shard : shards_) {
        for (const auto &[name, value] : shard->counters_)
            merged.counters[name] += value;
        for (const auto &[name, value] : shard->gauges_) {
            auto [it, fresh] = merged.gauges.try_emplace(name, value);
            if (!fresh && value > it->second)
                it->second = value;
        }
        for (const auto &[name, hist] : shard->histograms_)
            merged.histograms[name].merge(hist);
    }
    return merged;
}

} // namespace vp::obs
