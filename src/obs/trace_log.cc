#include "obs/trace_log.hh"

#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>
#include <thread>

namespace vp::obs {

namespace {

/** Escape @p text as the body of a JSON string literal. */
std::string
escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Fixed-point microseconds: trace viewers dislike exponents. */
std::string
us(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    return buf;
}

} // anonymous namespace

int
TraceLog::laneForThisThread()
{
    // VP_REQUIRES(mutex_). Lane per OS thread, first-event order;
    // events are span-granular (hundreds per run), so a map lookup
    // per completed span is cold-path cheap.
    const auto id = std::this_thread::get_id();
    const auto it = lanes_.find(id);
    if (it != lanes_.end())
        return it->second;
    const int lane = static_cast<int>(laneNames_.size());
    laneNames_.push_back("thread-" + std::to_string(lane));
    lanes_.emplace(id, lane);
    return lane;
}

void
TraceLog::complete(const std::string &name, const std::string &category,
                   Clock::time_point start, Clock::time_point end,
                   Args args)
{
    if (end < start)
        end = start;
    const util::MutexLock lock(mutex_);
    Event event;
    event.name = name;
    event.category = category;
    event.tsUs = std::chrono::duration<double, std::micro>(
                         start - origin_)
                         .count();
    event.durUs =
            std::chrono::duration<double, std::micro>(end - start)
                    .count();
    event.tid = laneForThisThread();
    event.args = std::move(args);
    events_.push_back(std::move(event));
}

size_t
TraceLog::eventCount() const
{
    const util::MutexLock lock(mutex_);
    return events_.size();
}

std::string
TraceLog::render() const
{
    const util::MutexLock lock(mutex_);
    std::ostringstream out;
    out << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
    bool first = true;
    for (size_t lane = 0; lane < laneNames_.size(); ++lane) {
        // Metadata events name the lanes so the viewer groups spans
        // by worker thread.
        out << (first ? "" : ",\n")
            << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
               "\"tid\": "
            << lane << ", \"args\": {\"name\": \""
            << escape(laneNames_[lane]) << "\"}}";
        first = false;
    }
    for (const Event &event : events_) {
        out << (first ? "" : ",\n") << "{\"name\": \""
            << escape(event.name) << "\", \"cat\": \""
            << escape(event.category)
            << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << event.tid
            << ", \"ts\": " << us(event.tsUs)
            << ", \"dur\": " << us(event.durUs);
        if (!event.args.empty()) {
            out << ", \"args\": {";
            for (size_t a = 0; a < event.args.size(); ++a) {
                out << (a ? ", " : "") << '"'
                    << escape(event.args[a].first) << "\": \""
                    << escape(event.args[a].second) << '"';
            }
            out << '}';
        }
        out << '}';
        first = false;
    }
    out << "\n]\n}\n";
    return out.str();
}

void
TraceLog::write(std::ostream &out) const
{
    out << render();
}

} // namespace vp::obs
