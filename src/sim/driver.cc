#include "sim/driver.hh"

#include <algorithm>
#include <stdexcept>

#include "obs/instrumentation.hh"
#include "vm/trace_file.hh"

namespace vp::sim {

size_t
PredictorBank::add(core::PredictorPtr predictor)
{
    members_.push_back(EvaluatedPredictor{std::move(predictor), {}});
    return members_.size() - 1;
}

void
PredictorBank::trackOverlap(int n)
{
    if (n <= 0 || n > core::OverlapTracker::maxPredictors ||
        static_cast<size_t>(n) > members_.size()) {
        throw std::invalid_argument("trackOverlap: bad predictor count");
    }
    overlap_ = std::make_unique<core::OverlapTracker>(n);
}

void
PredictorBank::trackImprovement(size_t index_a, size_t index_b)
{
    if (index_a >= members_.size() || index_b >= members_.size())
        throw std::invalid_argument("trackImprovement: bad index");
    improvement_.emplace();
    improveA_ = index_a;
    improveB_ = index_b;
}

void
PredictorBank::trackValues()
{
    values_.emplace();
}

void
PredictorBank::onValue(const vm::TraceEvent &event)
{
    scratchCorrect_.reset(1, members_.size());
    uint64_t *correct_bits = scratchCorrect_.row(0);

    for (size_t i = 0; i < members_.size(); ++i) {
        auto &member = members_[i];
        // predict() is not const — it can advance recency stamps and
        // confidence state — so warm-up still runs the full protocol
        // and only the accumulators below are gated.
        const auto pred = member.predictor->predict(event.pc);
        const bool correct = pred.valid && pred.value == event.value;
        if (!warmup_)
            member.stats.record(event.cat, pred.valid, correct);
        if (correct)
            core::bits::set(correct_bits, i);
        member.predictor->update(event.pc, event.value);
    }

    if (warmup_)
        return;

    if (overlap_) {
        uint32_t mask = 0;
        for (int i = 0; i < overlap_->numPredictors(); ++i) {
            if (core::bits::test(correct_bits, static_cast<size_t>(i)))
                mask |= 1u << i;
        }
        overlap_->record(event.cat, mask);
    }

    if (improvement_) {
        improvement_->record(event.pc, event.cat,
                             core::bits::test(correct_bits, improveA_),
                             core::bits::test(correct_bits, improveB_));
    }

    if (values_)
        values_->record(event.pc, event.cat, event.value);
}

void
PredictorBank::onBatch(vm::TraceSpan batch)
{
    const size_t n = batch.size();
    if (n == 0)
        return;

    // Deinterleave the events into parallel pc/value arrays so the
    // core layer consumes plain spans without depending on vm types.
    batchPcs_.resize(n);
    batchValues_.resize(n);
    for (size_t i = 0; i < n; ++i) {
        batchPcs_[i] = batch[i].pc;
        batchValues_[i] = batch[i].value;
    }

    batchValid_.reset(members_.size(), n);
    batchCorrect_.reset(members_.size(), n);

    // One virtual dispatch per (member, batch); each family's
    // override runs its devirtualised inner loop.
    for (size_t m = 0; m < members_.size(); ++m) {
        members_[m].predictor->evalBatch(batchPcs_.data(),
                                         batchValues_.data(), n,
                                         batchValid_.row(m),
                                         batchCorrect_.row(m));
    }

    // Statistics and trackers are pure accumulators over the outcome
    // bits, so feeding them member-major here produces exactly the
    // state the event-major scalar loop builds. Warm-up spans train
    // the tables (evalBatch above) but feed no accumulator.
    if (warmup_)
        return;

    for (size_t m = 0; m < members_.size(); ++m) {
        auto &member = members_[m];
        const uint64_t *valid = batchValid_.row(m);
        const uint64_t *correct = batchCorrect_.row(m);
        for (size_t i = 0; i < n; ++i) {
            member.stats.record(batch[i].cat, core::bits::test(valid, i),
                                core::bits::test(correct, i));
        }
    }

    if (overlap_) {
        for (size_t i = 0; i < n; ++i) {
            uint32_t mask = 0;
            for (int m = 0; m < overlap_->numPredictors(); ++m) {
                if (core::bits::test(
                            batchCorrect_.row(static_cast<size_t>(m)),
                            i)) {
                    mask |= 1u << m;
                }
            }
            overlap_->record(batch[i].cat, mask);
        }
    }

    if (improvement_) {
        const uint64_t *a = batchCorrect_.row(improveA_);
        const uint64_t *b = batchCorrect_.row(improveB_);
        for (size_t i = 0; i < n; ++i) {
            improvement_->record(batch[i].pc, batch[i].cat,
                                 core::bits::test(a, i),
                                 core::bits::test(b, i));
        }
    }

    if (values_) {
        for (const auto &event : batch)
            values_->record(event.pc, event.cat, event.value);
    }
}

void
PredictorBank::collectCounters(core::CounterSink &sink) const
{
    for (const auto &member : members_)
        member.predictor->collectCounters(sink);
}

int
PredictorBank::indexOf(const std::string &name) const
{
    for (size_t i = 0; i < members_.size(); ++i) {
        if (members_[i].predictor->name() == name)
            return static_cast<int>(i);
    }
    return -1;
}

void
replayTrace(const std::vector<vm::TraceEvent> &events,
            PredictorBank &bank)
{
    for (const auto &event : events)
        bank.onValue(event);
}

namespace {

/**
 * Close one telemetry window: sample every member's cumulative stats,
 * emit the delta against the previous boundary, advance the boundary.
 */
void
closeWindow(const PredictorBank &bank, WindowSeries &windows,
            uint64_t end_event,
            std::vector<WindowSample::Delta> &at_last_boundary)
{
    WindowSample sample;
    sample.endEvent = end_event;
    sample.members.resize(bank.size());
    for (size_t m = 0; m < bank.size(); ++m) {
        const core::PredictionStats &stats = bank.member(m).stats;
        WindowSample::Delta &prev = at_last_boundary[m];
        sample.members[m].eligible = stats.total() - prev.eligible;
        sample.members[m].predicted = stats.predicted() - prev.predicted;
        sample.members[m].correct = stats.correct() - prev.correct;
        prev = {stats.total(), stats.predicted(), stats.correct()};
    }
    windows.samples.push_back(std::move(sample));
}

} // anonymous namespace

uint64_t
replayTrace(vm::TraceBatchSource &source, PredictorBank &bank,
            obs::Instrumentation *obs, WindowSeries *windows)
{
    const uint64_t window_n =
            windows != nullptr ? windows->windowEvents : 0;
    std::vector<WindowSample::Delta> boundary(
            window_n != 0 ? bank.size() : 0);
    uint64_t n = 0;
    for (;;) {
        vm::TraceSpan span = source.nextBatch();
        if (span.empty())
            break;
        obs::add(obs, "replay.batches");
        obs::add(obs, "replay.events", span.size());
        obs::record(obs, "replay.batch_fill", span.size());
        while (!span.empty()) {
            size_t take = span.size();
            if (window_n != 0) {
                // Split at the boundary so windows close at exact
                // multiples of windowEvents regardless of how the
                // source batches events.
                const uint64_t room = window_n - n % window_n;
                take = static_cast<size_t>(
                        std::min<uint64_t>(take, room));
            }
            bank.onBatch(span.first(take));
            span = span.subspan(take);
            n += take;
            if (window_n != 0 && n % window_n == 0)
                closeWindow(bank, *windows, n, boundary);
        }
    }
    if (window_n != 0 && n % window_n != 0)
        closeWindow(bank, *windows, n, boundary);
    return n;
}

uint64_t
replayTrace(vm::TraceBatchSource &source, PredictorBank &bank)
{
    return replayTrace(source, bank, nullptr, nullptr);
}

uint64_t
replayTraceRegion(vm::TraceRegionReader &region, PredictorBank &bank,
                  obs::Instrumentation *obs)
{
    uint64_t n = 0;
    uint64_t warm = 0;
    // The reader serves every warm-up span before the first region
    // span, so one timeline span covers each phase; both are inert
    // when obs is null or has no trace log.
    auto timeline = obs::span(obs, "warmup", "replay");
    bool in_warmup = true;
    for (;;) {
        const vm::TraceSpan span = region.nextBatch();
        if (span.empty())
            break;
        if (in_warmup && !region.lastSpanWarmup()) {
            timeline.arg("events", std::to_string(warm));
            timeline = obs::span(obs, "region", "replay");
            in_warmup = false;
        }
        obs::add(obs, "replay.batches");
        obs::record(obs, "replay.batch_fill", span.size());
        bank.setWarmup(region.lastSpanWarmup());
        bank.onBatch(span);
        if (region.lastSpanWarmup()) {
            warm += span.size();
            obs::add(obs, "replay.warmup_events", span.size());
        } else {
            n += span.size();
            obs::add(obs, "replay.events", span.size());
        }
    }
    if (in_warmup)
        timeline.arg("events", std::to_string(warm));
    else
        timeline.arg("events", std::to_string(n));
    bank.setWarmup(false);
    return n;
}

void
replayTraceBatched(const std::vector<vm::TraceEvent> &events,
                   PredictorBank &bank, size_t batch)
{
    vm::VectorBatchSource source(events, batch);
    replayTrace(source, bank);
}

RunOutcome
runProgram(const isa::Program &prog, PredictorBank &bank,
           vm::MachineConfig config)
{
    vm::Machine machine(config);
    machine.setSink(&bank);

    RunOutcome outcome;
    outcome.workload = prog.name;
    outcome.vmResult = machine.run(prog);
    outcome.staticPredicted = prog.countPredictedStatic();
    for (int c = 0; c < isa::numCategories; ++c) {
        outcome.staticByCategory[c] =
                prog.countPredictedStatic(static_cast<isa::Category>(c));
    }

    if (!outcome.vmResult.ok()) {
        throw std::runtime_error(
                "workload '" + prog.name + "' did not halt cleanly: " +
                vm::exitReasonName(outcome.vmResult.reason) +
                (outcome.vmResult.diagnostic.empty()
                         ? "" : " (" + outcome.vmResult.diagnostic + ")"));
    }
    return outcome;
}

} // namespace vp::sim
