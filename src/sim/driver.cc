#include "sim/driver.hh"

#include <stdexcept>

namespace vp::sim {

size_t
PredictorBank::add(core::PredictorPtr predictor)
{
    members_.push_back(EvaluatedPredictor{std::move(predictor), {}});
    scratchCorrect_.resize(members_.size());
    return members_.size() - 1;
}

void
PredictorBank::trackOverlap(int n)
{
    if (n <= 0 || n > core::OverlapTracker::maxPredictors ||
        static_cast<size_t>(n) > members_.size()) {
        throw std::invalid_argument("trackOverlap: bad predictor count");
    }
    overlap_ = std::make_unique<core::OverlapTracker>(n);
}

void
PredictorBank::trackImprovement(size_t index_a, size_t index_b)
{
    if (index_a >= members_.size() || index_b >= members_.size())
        throw std::invalid_argument("trackImprovement: bad index");
    improvement_.emplace();
    improveA_ = index_a;
    improveB_ = index_b;
}

void
PredictorBank::trackValues()
{
    values_.emplace();
}

void
PredictorBank::onValue(const vm::TraceEvent &event)
{
    for (size_t i = 0; i < members_.size(); ++i) {
        auto &member = members_[i];
        const auto pred = member.predictor->predict(event.pc);
        const bool correct = pred.valid && pred.value == event.value;
        member.stats.record(event.cat, pred.valid, correct);
        scratchCorrect_[i] = correct;
        member.predictor->update(event.pc, event.value);
    }

    if (overlap_) {
        uint32_t mask = 0;
        for (int i = 0; i < overlap_->numPredictors(); ++i) {
            if (scratchCorrect_[i])
                mask |= 1u << i;
        }
        overlap_->record(event.cat, mask);
    }

    if (improvement_) {
        improvement_->record(event.pc, event.cat,
                             scratchCorrect_[improveA_],
                             scratchCorrect_[improveB_]);
    }

    if (values_)
        values_->record(event.pc, event.cat, event.value);
}

int
PredictorBank::indexOf(const std::string &name) const
{
    for (size_t i = 0; i < members_.size(); ++i) {
        if (members_[i].predictor->name() == name)
            return static_cast<int>(i);
    }
    return -1;
}

void
replayTrace(const std::vector<vm::TraceEvent> &events,
            PredictorBank &bank)
{
    for (const auto &event : events)
        bank.onValue(event);
}

RunOutcome
runProgram(const isa::Program &prog, PredictorBank &bank,
           vm::MachineConfig config)
{
    vm::Machine machine(config);
    machine.setSink(&bank);

    RunOutcome outcome;
    outcome.workload = prog.name;
    outcome.vmResult = machine.run(prog);
    outcome.staticPredicted = prog.countPredictedStatic();
    for (int c = 0; c < isa::numCategories; ++c) {
        outcome.staticByCategory[c] =
                prog.countPredictedStatic(static_cast<isa::Category>(c));
    }

    if (!outcome.vmResult.ok()) {
        throw std::runtime_error(
                "workload '" + prog.name + "' did not halt cleanly: " +
                vm::exitReasonName(outcome.vmResult.reason) +
                (outcome.vmResult.diagnostic.empty()
                         ? "" : " (" + outcome.vmResult.diagnostic + ")"));
    }
    return outcome;
}

} // namespace vp::sim
