/**
 * @file
 * Minimal fixed-width text-table formatter for experiment output.
 */

#ifndef VP_SIM_TABLE_HH
#define VP_SIM_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace vp::sim {

/**
 * Accumulates rows of cells and renders them with aligned columns.
 *
 * Used by every bench binary so the reproduced tables read like the
 * paper's tables.
 */
class TextTable
{
  public:
    /** Start a new row. */
    TextTable &row();

    /** Append a cell to the current row. */
    TextTable &cell(const std::string &text);
    TextTable &cell(const char *text) { return cell(std::string(text)); }

    /**
     * Append a pre-rendered cell with explicit alignment: numeric
     * cells right-align like the numeric overloads. Lets callers that
     * format numbers themselves (exp::ReportTable) keep the layout.
     */
    TextTable &cell(const std::string &text, bool numeric);

    /** Append a numeric cell with fixed decimals. */
    TextTable &cell(double value, int decimals = 1);
    TextTable &cell(uint64_t value);
    TextTable &cell(int64_t value);
    TextTable &cell(int value) { return cell(static_cast<int64_t>(value)); }

    /** Insert a horizontal rule after the current row. */
    TextTable &rule();

    /** Render with two spaces between columns; numbers right-aligned. */
    std::string render() const;

  private:
    struct Cell
    {
        std::string text;
        bool numeric = false;
    };

    std::vector<std::vector<Cell>> rows_;
    std::vector<size_t> rules_;     // row indices followed by a rule
};

} // namespace vp::sim

#endif // VP_SIM_TABLE_HH
