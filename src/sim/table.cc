#include "sim/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace vp::sim {

TextTable &
TextTable::row()
{
    rows_.emplace_back();
    return *this;
}

TextTable &
TextTable::cell(const std::string &text)
{
    if (rows_.empty())
        row();
    rows_.back().push_back(Cell{text, false});
    return *this;
}

TextTable &
TextTable::cell(const std::string &text, bool numeric)
{
    if (rows_.empty())
        row();
    rows_.back().push_back(Cell{text, numeric});
    return *this;
}

TextTable &
TextTable::cell(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    if (rows_.empty())
        row();
    rows_.back().push_back(Cell{buf, true});
    return *this;
}

TextTable &
TextTable::cell(uint64_t value)
{
    if (rows_.empty())
        row();
    rows_.back().push_back(Cell{std::to_string(value), true});
    return *this;
}

TextTable &
TextTable::cell(int64_t value)
{
    if (rows_.empty())
        row();
    rows_.back().push_back(Cell{std::to_string(value), true});
    return *this;
}

TextTable &
TextTable::rule()
{
    if (!rows_.empty())
        rules_.push_back(rows_.size() - 1);
    return *this;
}

std::string
TextTable::render() const
{
    // Column widths.
    std::vector<size_t> widths;
    for (const auto &row : rows_) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].text.size());
    }

    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;

    std::ostringstream out;
    for (size_t r = 0; r < rows_.size(); ++r) {
        const auto &row = rows_[r];
        for (size_t i = 0; i < row.size(); ++i) {
            const auto &cell = row[i];
            const size_t pad = widths[i] - cell.text.size();
            if (cell.numeric) {
                out << std::string(pad, ' ') << cell.text;
            } else {
                out << cell.text << std::string(pad, ' ');
            }
            if (i + 1 < row.size())
                out << "  ";
        }
        out << '\n';
        if (std::find(rules_.begin(), rules_.end(), r) != rules_.end())
            out << std::string(total ? total - 2 : 0, '-') << '\n';
    }
    return out.str();
}

} // namespace vp::sim
