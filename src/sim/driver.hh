/**
 * @file
 * Simulation driver: runs a program on the VM and evaluates a bank of
 * predictors (plus the profilers) against the resulting value trace in
 * a single pass.
 */

#ifndef VP_SIM_DRIVER_HH
#define VP_SIM_DRIVER_HH

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/improvement.hh"
#include "core/overlap.hh"
#include "core/predictor.hh"
#include "core/stats.hh"
#include "core/value_profile.hh"
#include "vm/machine.hh"
#include "vm/trace.hh"

namespace vp::vm {
class TraceRegionReader;
} // namespace vp::vm

namespace vp::obs {
class Instrumentation;
} // namespace vp::obs

namespace vp::sim {

/**
 * Reusable word-packed outcome rows: @c rows bit-vectors of @c n bits
 * each, in one contiguous allocation that is recycled across batches.
 * Replaces the bit-proxy overhead of std::vector<bool> on the replay
 * hot path; bits are addressed with core::bits helpers.
 */
class OutcomeBits
{
  public:
    /** Size to @p rows rows of @p n bits and clear every bit. */
    void
    reset(size_t rows, size_t n)
    {
        rowWords_ = core::bits::words(n);
        data_.assign(rows * rowWords_, 0);
    }

    uint64_t *row(size_t r) { return data_.data() + r * rowWords_; }

    const uint64_t *
    row(size_t r) const
    {
        return data_.data() + r * rowWords_;
    }

  private:
    std::vector<uint64_t> data_;
    size_t rowWords_ = 0;
};

/** One predictor under evaluation together with its statistics. */
struct EvaluatedPredictor
{
    core::PredictorPtr predictor;
    core::PredictionStats stats;
};

/**
 * A bank of predictors evaluated against one trace.
 *
 * The bank implements the paper's evaluation protocol per event:
 * every predictor is asked for a prediction, correctness is recorded,
 * and every predictor is immediately updated with the actual value.
 * Optionally an OverlapTracker (Figure 8), an ImprovementTracker
 * (Figure 9, comparing two named members of the bank) and a
 * ValueProfiler (Figure 10) observe the same pass.
 */
class PredictorBank : public vm::TraceSink
{
  public:
    /** Add a predictor; returns its index in the bank. */
    size_t add(core::PredictorPtr predictor);

    /** Enable overlap tracking over the first @p n predictors (<=8). */
    void trackOverlap(int n);

    /**
     * Enable Figure 9 improvement tracking comparing bank member
     * @p index_a (the "better" predictor, canonically fcm) against
     * member @p index_b (canonically stride).
     */
    void trackImprovement(size_t index_a, size_t index_b);

    /** Enable unique-value profiling (Figure 10). */
    void trackValues();

    /**
     * Warm-up mode: events still run the full evaluation protocol
     * (predict + update, so tables, recency stamps and confidence
     * counters train exactly as live), but statistics and trackers are
     * not fed. Region-parallel replay uses this for the window before
     * a region so mid-trace regions start from trained tables.
     */
    void setWarmup(bool warmup) { warmup_ = warmup; }
    bool warmup() const { return warmup_; }

    void onValue(const vm::TraceEvent &event) override;

    /**
     * Batched evaluation of a span of events: one virtual dispatch
     * per (predictor, batch) instead of two per (predictor, event),
     * then the trackers are fed per event from the outcome bit rows.
     * Bit-for-bit the same statistics and tracker state as the
     * per-event protocol — batched_equivalence_test pins this.
     */
    void onBatch(vm::TraceSpan batch) override;

    size_t size() const { return members_.size(); }
    const EvaluatedPredictor &member(size_t i) const { return members_[i]; }
    EvaluatedPredictor &member(size_t i) { return members_[i]; }

    /** Find a member by predictor name; -1 when absent. */
    int indexOf(const std::string &name) const;

    /**
     * Pull every member's internal counters into @p sink (see
     * ValuePredictor::collectCounters). Members share the sink, so
     * same-family members accumulate into one metric per name —
     * family prefixes keep different families apart.
     */
    void collectCounters(core::CounterSink &sink) const;

    const core::OverlapTracker *overlap() const { return overlap_.get(); }
    const core::ImprovementTracker *improvement() const
    {
        return improvement_ ? &*improvement_ : nullptr;
    }
    const core::ValueProfiler *values() const
    {
        return values_ ? &*values_ : nullptr;
    }

  private:
    std::vector<EvaluatedPredictor> members_;
    bool warmup_ = false;
    std::unique_ptr<core::OverlapTracker> overlap_;
    std::optional<core::ImprovementTracker> improvement_;
    size_t improveA_ = 0, improveB_ = 0;
    std::optional<core::ValueProfiler> values_;

    /** Scalar path: one row, one correctness bit per member. */
    OutcomeBits scratchCorrect_;

    /** Batch path: one row per member, one bit per event. */
    OutcomeBits batchValid_, batchCorrect_;
    std::vector<uint64_t> batchPcs_, batchValues_;
};

/** Everything produced by one simulated benchmark run. */
struct RunOutcome
{
    std::string workload;
    vm::RunResult vmResult;
    size_t staticPredicted = 0;     ///< static predicted instructions
    std::array<size_t, isa::numCategories> staticByCategory{};
};

/**
 * Run @p prog on a fresh machine with @p bank attached as the trace
 * sink.
 *
 * @throws std::runtime_error if the program does not halt cleanly
 * (workloads are deterministic; anything else is a bug).
 */
RunOutcome runProgram(const isa::Program &prog, PredictorBank &bank,
                      vm::MachineConfig config = {});

/**
 * Replay a recorded value trace into @p bank — the paper's original
 * trace-driven methodology: run the VM once, evaluate many predictor
 * banks against the same stream (see also vm::TraceReader::replay
 * for streaming straight from a trace file). This is the per-event
 * reference path the batched variants are tested against.
 */
void replayTrace(const std::vector<vm::TraceEvent> &events,
                 PredictorBank &bank);

/**
 * One windowed-telemetry sample: every bank member's statistics delta
 * over one window of events (exactly WindowSeries::windowEvents of
 * them, except possibly the final partial window).
 */
struct WindowSample
{
    /** Per-member delta over the window, bank order. */
    struct Delta
    {
        uint64_t eligible = 0;      ///< events graded in the window
        uint64_t predicted = 0;
        uint64_t correct = 0;
    };

    uint64_t endEvent = 0;          ///< events replayed at window close
    std::vector<Delta> members;
};

/**
 * Windowed replay telemetry: per-window coverage/accuracy series for
 * every bank member. Windows close at *exact* multiples of
 * windowEvents — replayTrace splits spans at the boundary, so the
 * series is independent of the source's batching. The final partial
 * window (if any) is emitted too; consumers can tell it apart by
 * endEvent % windowEvents != 0.
 */
struct WindowSeries
{
    uint64_t windowEvents = 0;      ///< 0 disables windowing
    std::vector<WindowSample> samples;
};

/**
 * Streaming batched replay: drain @p source span by span through
 * PredictorBank::onBatch. Memory stays bounded by the source's block
 * size regardless of trace length (pair with vm::ReaderBatchSource to
 * stream a trace file). Returns the number of events replayed.
 *
 * @param obs optional instrumentation: batch-fill histogram and
 *        replay event/batch counters (null = off, zero extra work
 *        beyond one branch per span).
 * @param windows optional windowed telemetry (windowEvents > 0):
 *        spans are split at exact window boundaries and every bank
 *        member's stats delta is sampled per window. Splitting only
 *        changes batch geometry, never the per-event protocol, so
 *        results are byte-identical with windowing on or off.
 */
uint64_t replayTrace(vm::TraceBatchSource &source, PredictorBank &bank,
                     obs::Instrumentation *obs,
                     WindowSeries *windows = nullptr);

/** Uninstrumented streaming replay (the pre-telemetry signature). */
uint64_t replayTrace(vm::TraceBatchSource &source, PredictorBank &bank);

/**
 * Replay one region of a recorded trace: warm-up spans train the bank
 * with statistics gated off (PredictorBank::setWarmup), region spans
 * count. Returns the number of region (non-warm-up) events replayed;
 * the bank is left with warm-up off.
 *
 * With @p obs, the warm-up window and the region body each get a
 * timeline span ("warmup" / "region", annotated with their event
 * counts) plus the same batch counters as replayTrace; null is off.
 */
uint64_t replayTraceRegion(vm::TraceRegionReader &region,
                           PredictorBank &bank,
                           obs::Instrumentation *obs = nullptr);

/**
 * Batched replay of an in-memory trace: zero-copy spans of @p batch
 * events each, dispatched through PredictorBank::onBatch.
 */
void replayTraceBatched(const std::vector<vm::TraceEvent> &events,
                        PredictorBank &bank, size_t batch = 64);

} // namespace vp::sim

#endif // VP_SIM_DRIVER_HH
