#include "exp/experiment.hh"

#include <chrono>
#include <sstream>
#include <stdexcept>

#include "obs/instrumentation.hh"
#include "workloads/workload.hh"

namespace vp::exp {

SuiteOptions
normalizeCellOptions(SuiteOptions options, const ExperimentConfig &config)
{
    if (config.dryRun)
        options.config.scale = dryRunScale;
    options.traceReplay = true;
    options.traceCacheDir = config.traceCacheDir;
    options.parallelism = 0;        // cells never fan out internally
    // The scheduler installs its own per-cell handle; a caller-set one
    // must not leak into the cell (it is not part of cell identity).
    options.instrumentation = nullptr;
    options.windowEvents = config.windowEvents;
    if (options.improvementA == options.improvementB) {
        // Equal indices mean "off" (runBenchmark ignores the values);
        // canonicalise so off-requests always share a dedup key.
        options.improvementA = options.improvementB = 0;
    }
    if (options.regions <= 1) {
        // Cells adopt the run-wide region split unless the suite
        // asked for its own.
        options.regions = std::max(1u, config.regions);
        options.warmupEvents = config.warmupEvents;
    }
    if (!regionReplayApplies(options)) {
        // Trackers hold per-static state that does not merge across
        // regions: those cells replay whole. Canonicalise the then-
        // unused warm-up so equal work shares a dedup key.
        options.regions = 1;
        options.warmupEvents = defaultWarmupEvents;
    }
    return options;
}

namespace {

/**
 * Dedup key of one cell: every normalized-options field that can
 * change a BenchmarkRun, plus the workload. The benchmarks list is
 * deliberately absent — a cell is one workload.
 */
std::string
cellKey(const std::string &workload, const SuiteOptions &options)
{
    std::ostringstream key;
    key << workload << '\x1f' << options.config.input << '\x1f'
        << options.config.flags << '\x1f' << options.config.scale
        << '\x1f' << options.overlap << '\x1f' << options.improvementA
        << '\x1f' << options.improvementB << '\x1f' << options.values
        << '\x1f' << options.traceReplay << '\x1f'
        << options.traceCacheDir << '\x1f' << options.regions << '\x1f'
        << options.warmupEvents << '\x1f' << options.windowEvents
        << '\x1f';
    for (const auto &spec : options.predictors)
        key << spec << '\x1e';
    return key.str();
}

std::vector<std::string>
cellWorkloads(const SuiteOptions &options)
{
    if (!options.benchmarks.empty())
        return options.benchmarks;
    std::vector<std::string> names;
    for (const auto &info : workloads::allWorkloads())
        names.push_back(info.name);
    return names;
}

} // anonymous namespace

CellScheduler::CellScheduler(const ExperimentConfig &config, unsigned jobs)
    : config_(config)
{
    workers_ = jobs;
    if (workers_ == 0) {
        workers_ = std::thread::hardware_concurrency();
        if (workers_ == 0)
            workers_ = 1;
    }
    threads_.reserve(workers_);
    for (unsigned t = 0; t < workers_; ++t)
        threads_.emplace_back([this] { workerLoop(); });
}

CellScheduler::~CellScheduler()
{
    {
        const util::MutexLock lock(mutex_);
        stop_ = true;
        // Abandon cells nobody will ever read (a failed run tears the
        // scheduler down with work still queued); their futures get
        // broken promises, but no waiter can exist at destruction.
        queue_.clear();
    }
    available_.notify_all();
    for (auto &thread : threads_)
        thread.join();
}

void
CellScheduler::workerLoop()
{
    for (;;) {
        std::packaged_task<void()> task;
        {
            const util::MutexLock lock(mutex_);
            // Predicate loop spelled out so the guarded reads stay in
            // this (annotated) scope — see util/mutex.hh.
            while (!stop_ && queue_.empty())
                available_.wait(mutex_);
            if (queue_.empty())
                return;     // stop requested and queue drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

/**
 * Per-cell observability: the registry every task of the cell feeds
 * and the Instrumentation handle the suite layer sees. Task closures
 * hold it by shared_ptr so it outlives the submit() call; the
 * scheduler snapshots the registry into the CellRecord only after the
 * cell's last task has finished (the promise-fulfilling task), which
 * is the synchronisation Registry::snapshot requires.
 */
struct CellScheduler::CellObs
{
    explicit CellObs(obs::TraceLog *log)
        : instrumentation(&registry, log)
    {
    }

    obs::Registry registry;
    obs::Instrumentation instrumentation;
};

/**
 * Shared state of one region-split cell: W region tasks feed it, the
 * last one to finish merges the partials (or picks the first error in
 * region order, so failures are deterministic under any scheduling)
 * and fulfills the cell's promise. The merging task keeps holding the
 * assembly mutex for the merge itself, so its exclusive access is
 * lock-provable rather than inferred from "remaining hit zero".
 */
struct CellScheduler::RegionAssembly
{
    std::string workload;
    SuiteOptions options;
    size_t cellId = 0;
    std::shared_ptr<CellObs> obs;
    std::chrono::steady_clock::time_point submitted;
    std::promise<BenchmarkRun> promise;

    util::Mutex mutex;
    bool started VP_GUARDED_BY(mutex) = false;
    std::chrono::steady_clock::time_point start VP_GUARDED_BY(mutex);
    unsigned remaining VP_GUARDED_BY(mutex) = 0;
    std::vector<RegionPartial> partials VP_GUARDED_BY(mutex);
    /** slot per region */
    std::vector<std::exception_ptr> errors VP_GUARDED_BY(mutex);
};

std::shared_future<BenchmarkRun>
CellScheduler::submit(const std::string &workload,
                      const SuiteOptions &options, size_t *id)
{
    const std::string key = cellKey(workload, options);
    const util::MutexLock lock(mutex_);
    ++requested_;
    if (const auto it = cells_.find(key); it != cells_.end()) {
        if (id)
            *id = it->second.first;
        return it->second.second;
    }

    const size_t cell_id = records_.size();
    CellRecord record;
    record.workload = workload;
    record.config = options.config;
    record.regions = regionReplayApplies(options) ? options.regions : 1;
    records_.push_back(std::move(record));

    using Clock = std::chrono::steady_clock;
    std::shared_future<BenchmarkRun> future;

    // Every cell gets its own registry; the run-wide trace log (when
    // the driver attached one) is shared. The handle is deliberately
    // absent from the dedup key — see normalizeCellOptions.
    auto cell_obs = std::make_shared<CellObs>(config_.traceLog);
    SuiteOptions cell_options = options;
    cell_options.instrumentation = &cell_obs->instrumentation;
    const auto submitted = Clock::now();

    if (regionReplayApplies(options)) {
        auto assembly = std::make_shared<RegionAssembly>();
        assembly->workload = workload;
        assembly->options = cell_options;
        assembly->cellId = cell_id;
        assembly->obs = cell_obs;
        assembly->submitted = submitted;
        {
            // No task can run before the queue_ insertions below, but
            // the guarded members still initialise under their lock.
            const util::MutexLock init(assembly->mutex);
            assembly->remaining = options.regions;
            assembly->partials.reserve(options.regions);
            assembly->errors.resize(options.regions);
        }
        future = assembly->promise.get_future().share();
        tasksTotal_ += options.regions;

        for (unsigned r = 0; r < options.regions; ++r) {
            queue_.emplace_back([this, assembly, r] {
                {
                    const util::MutexLock lock(assembly->mutex);
                    if (!assembly->started) {
                        assembly->started = true;
                        assembly->start = Clock::now();
                    }
                }
                RegionPartial partial;
                std::exception_ptr error;
                try {
                    partial = runBenchmarkRegion(assembly->workload,
                                                 assembly->options, r);
                } catch (...) {
                    error = std::current_exception();
                }
                bool last = false;
                {
                    const util::MutexLock lock(assembly->mutex);
                    if (error)
                        assembly->errors[r] = error;
                    else
                        assembly->partials.push_back(std::move(partial));
                    last = --assembly->remaining == 0;
                }
                {
                    const util::MutexLock lock(mutex_);
                    ++tasksDone_;
                }
                if (!last)
                    return;
                // The last region task merges. Every producer
                // published its partial under the assembly mutex
                // before the remaining count hit zero; holding the
                // (now uncontended) mutex for the merge makes the
                // exclusive access lock-provable instead of
                // join-ordered. Lock order is assembly->mutex before
                // mutex_ here; no path takes them the other way
                // around.
                const util::MutexLock merge_lock(assembly->mutex);
                for (auto &err : assembly->errors) {
                    if (err) {
                        assembly->promise.set_exception(err);
                        return;
                    }
                }
                try {
                    BenchmarkRun run = mergeRegionPartials(
                            assembly->workload, assembly->options,
                            std::move(assembly->partials));
                    const double ms =
                            std::chrono::duration<double, std::milli>(
                                    Clock::now() - assembly->start)
                                    .count();
                    const double queued =
                            std::chrono::duration<double, std::milli>(
                                    assembly->start - assembly->submitted)
                                    .count();
                    // Every region task has finished (remaining hit 0
                    // under the assembly mutex), so the snapshot sees
                    // quiesced shards.
                    obs::Snapshot counters =
                            assembly->obs->registry.snapshot();
                    {
                        const util::MutexLock lock(mutex_);
                        auto &rec = records_[assembly->cellId];
                        rec.wallMs = ms;
                        rec.queuedMs = queued;
                        rec.events = run.exec.predicted;
                        rec.predictors = run.predictors;
                        rec.counters = std::move(counters);
                        rec.done = true;
                        ++cellsDone_;
                    }
                    assembly->promise.set_value(std::move(run));
                } catch (...) {
                    assembly->promise.set_exception(
                            std::current_exception());
                }
            });
        }
        available_.notify_all();
    } else {
        auto promise = std::make_shared<std::promise<BenchmarkRun>>();
        future = promise->get_future().share();
        tasksTotal_ += 1;
        queue_.emplace_back([this, cell_id, workload, cell_options,
                             cell_obs, submitted, promise] {
            try {
                const auto start = Clock::now();
                BenchmarkRun run;
                {
                    auto timeline = cell_obs->instrumentation.span(
                            "cell " + workload, "cell");
                    run = runBenchmark(workload, cell_options);
                }
                const double ms =
                        std::chrono::duration<double, std::milli>(
                                Clock::now() - start)
                                .count();
                {
                    const util::MutexLock lock(mutex_);
                    auto &rec = records_[cell_id];
                    rec.wallMs = ms;
                    rec.queuedMs =
                            std::chrono::duration<double, std::milli>(
                                    start - submitted)
                                    .count();
                    rec.events = run.exec.predicted;
                    rec.predictors = run.predictors;
                    rec.windows = run.windows;
                    rec.counters = cell_obs->registry.snapshot();
                    rec.done = true;
                    ++cellsDone_;
                    ++tasksDone_;
                }
                promise->set_value(std::move(run));
            } catch (...) {
                {
                    const util::MutexLock lock(mutex_);
                    ++tasksDone_;
                }
                promise->set_exception(std::current_exception());
            }
        });
        available_.notify_one();
    }

    cells_.emplace(key, std::make_pair(cell_id, future));
    if (id)
        *id = cell_id;
    return future;
}

void
CellScheduler::prefetch(const SuiteOptions &options)
{
    const SuiteOptions cell = normalizeCellOptions(options, config_);
    for (const auto &workload : cellWorkloads(cell))
        submit(workload, cell, nullptr);
}

std::vector<BenchmarkRun>
CellScheduler::suite(const SuiteOptions &options,
                     std::vector<size_t> *cell_ids)
{
    const SuiteOptions cell = normalizeCellOptions(options, config_);
    const auto names = cellWorkloads(cell);

    std::vector<std::shared_future<BenchmarkRun>> futures;
    futures.reserve(names.size());
    for (const auto &workload : names) {
        size_t id = 0;
        futures.push_back(submit(workload, cell, &id));
        if (cell_ids)
            cell_ids->push_back(id);
    }

    std::vector<BenchmarkRun> runs;
    runs.reserve(futures.size());
    for (auto &future : futures)
        runs.push_back(future.get());
    return runs;
}

size_t
CellScheduler::requestedCells() const
{
    const util::MutexLock lock(mutex_);
    return requested_;
}

size_t
CellScheduler::uniqueCells() const
{
    const util::MutexLock lock(mutex_);
    return records_.size();
}

std::vector<CellScheduler::CellRecord>
CellScheduler::records() const
{
    const util::MutexLock lock(mutex_);
    return records_;
}

CellScheduler::Progress
CellScheduler::progress() const
{
    const util::MutexLock lock(mutex_);
    Progress progress;
    progress.cellsDone = cellsDone_;
    progress.cellsTotal = records_.size();
    progress.tasksDone = tasksDone_;
    progress.tasksTotal = tasksTotal_;
    return progress;
}

std::vector<BenchmarkRun>
ExperimentContext::suite(const SuiteOptions &options)
{
    std::vector<size_t> ids;
    auto runs = scheduler_.suite(options, &ids);
    for (const size_t id : ids) {
        bool seen = false;
        for (const size_t used : cellsUsed_)
            seen = seen || used == id;
        if (!seen)
            cellsUsed_.push_back(id);
    }
    return runs;
}

void
ExperimentRegistry::add(Experiment experiment)
{
    if (experiment.name.empty()) {
        throw std::invalid_argument(
                "experiment registration without a name");
    }
    if (!experiment.run) {
        throw std::invalid_argument(
                "experiment '" + experiment.name + "' has no run hook");
    }
    if (find(experiment.name) != nullptr) {
        throw std::invalid_argument("duplicate experiment name: " +
                                    experiment.name);
    }
    experiments_.push_back(std::move(experiment));
}

const Experiment *
ExperimentRegistry::find(const std::string &name) const
{
    for (const auto &experiment : experiments_) {
        if (experiment.name == name)
            return &experiment;
    }
    return nullptr;
}

} // namespace vp::exp
