#include "exp/experiment.hh"

#include <chrono>
#include <sstream>
#include <stdexcept>

#include "workloads/workload.hh"

namespace vp::exp {

SuiteOptions
normalizeCellOptions(SuiteOptions options, const ExperimentConfig &config)
{
    if (config.dryRun)
        options.config.scale = dryRunScale;
    options.traceReplay = true;
    options.traceCacheDir = config.traceCacheDir;
    options.parallelism = 0;        // cells never fan out internally
    if (options.improvementA == options.improvementB) {
        // Equal indices mean "off" (runBenchmark ignores the values);
        // canonicalise so off-requests always share a dedup key.
        options.improvementA = options.improvementB = 0;
    }
    return options;
}

namespace {

/**
 * Dedup key of one cell: every normalized-options field that can
 * change a BenchmarkRun, plus the workload. The benchmarks list is
 * deliberately absent — a cell is one workload.
 */
std::string
cellKey(const std::string &workload, const SuiteOptions &options)
{
    std::ostringstream key;
    key << workload << '\x1f' << options.config.input << '\x1f'
        << options.config.flags << '\x1f' << options.config.scale
        << '\x1f' << options.overlap << '\x1f' << options.improvementA
        << '\x1f' << options.improvementB << '\x1f' << options.values
        << '\x1f' << options.traceReplay << '\x1f'
        << options.traceCacheDir << '\x1f';
    for (const auto &spec : options.predictors)
        key << spec << '\x1e';
    return key.str();
}

std::vector<std::string>
cellWorkloads(const SuiteOptions &options)
{
    if (!options.benchmarks.empty())
        return options.benchmarks;
    std::vector<std::string> names;
    for (const auto &info : workloads::allWorkloads())
        names.push_back(info.name);
    return names;
}

} // anonymous namespace

CellScheduler::CellScheduler(const ExperimentConfig &config, unsigned jobs)
    : config_(config)
{
    workers_ = jobs;
    if (workers_ == 0) {
        workers_ = std::thread::hardware_concurrency();
        if (workers_ == 0)
            workers_ = 1;
    }
    threads_.reserve(workers_);
    for (unsigned t = 0; t < workers_; ++t)
        threads_.emplace_back([this] { workerLoop(); });
}

CellScheduler::~CellScheduler()
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
        // Abandon cells nobody will ever read (a failed run tears the
        // scheduler down with work still queued); their futures get
        // broken promises, but no waiter can exist at destruction.
        queue_.clear();
    }
    available_.notify_all();
    for (auto &thread : threads_)
        thread.join();
}

void
CellScheduler::workerLoop()
{
    for (;;) {
        std::packaged_task<BenchmarkRun()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            available_.wait(lock,
                            [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return;     // stop requested and queue drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

std::shared_future<BenchmarkRun>
CellScheduler::submit(const std::string &workload,
                      const SuiteOptions &options, size_t *id)
{
    const std::string key = cellKey(workload, options);
    const std::lock_guard<std::mutex> lock(mutex_);
    ++requested_;
    if (const auto it = cells_.find(key); it != cells_.end()) {
        if (id)
            *id = it->second.first;
        return it->second.second;
    }

    const size_t cell_id = records_.size();
    CellRecord record;
    record.workload = workload;
    record.config = options.config;
    records_.push_back(std::move(record));

    std::packaged_task<BenchmarkRun()> task(
            [this, cell_id, workload, options] {
                using Clock = std::chrono::steady_clock;
                const auto start = Clock::now();
                BenchmarkRun run = runBenchmark(workload, options);
                const double ms =
                        std::chrono::duration<double, std::milli>(
                                Clock::now() - start)
                                .count();
                {
                    const std::lock_guard<std::mutex> lock(mutex_);
                    records_[cell_id].wallMs = ms;
                    records_[cell_id].events = run.exec.predicted;
                    records_[cell_id].predictors = run.predictors;
                    records_[cell_id].done = true;
                }
                return run;
            });
    auto future = task.get_future().share();
    cells_.emplace(key, std::make_pair(cell_id, future));
    queue_.push_back(std::move(task));
    available_.notify_one();
    if (id)
        *id = cell_id;
    return future;
}

void
CellScheduler::prefetch(const SuiteOptions &options)
{
    const SuiteOptions cell = normalizeCellOptions(options, config_);
    for (const auto &workload : cellWorkloads(cell))
        submit(workload, cell, nullptr);
}

std::vector<BenchmarkRun>
CellScheduler::suite(const SuiteOptions &options,
                     std::vector<size_t> *cell_ids)
{
    const SuiteOptions cell = normalizeCellOptions(options, config_);
    const auto names = cellWorkloads(cell);

    std::vector<std::shared_future<BenchmarkRun>> futures;
    futures.reserve(names.size());
    for (const auto &workload : names) {
        size_t id = 0;
        futures.push_back(submit(workload, cell, &id));
        if (cell_ids)
            cell_ids->push_back(id);
    }

    std::vector<BenchmarkRun> runs;
    runs.reserve(futures.size());
    for (auto &future : futures)
        runs.push_back(future.get());
    return runs;
}

size_t
CellScheduler::requestedCells() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return requested_;
}

size_t
CellScheduler::uniqueCells() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return records_.size();
}

std::vector<CellScheduler::CellRecord>
CellScheduler::records() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return records_;
}

std::vector<BenchmarkRun>
ExperimentContext::suite(const SuiteOptions &options)
{
    std::vector<size_t> ids;
    auto runs = scheduler_.suite(options, &ids);
    for (const size_t id : ids) {
        bool seen = false;
        for (const size_t used : cellsUsed_)
            seen = seen || used == id;
        if (!seen)
            cellsUsed_.push_back(id);
    }
    return runs;
}

void
ExperimentRegistry::add(Experiment experiment)
{
    if (experiment.name.empty()) {
        throw std::invalid_argument(
                "experiment registration without a name");
    }
    if (!experiment.run) {
        throw std::invalid_argument(
                "experiment '" + experiment.name + "' has no run hook");
    }
    if (find(experiment.name) != nullptr) {
        throw std::invalid_argument("duplicate experiment name: " +
                                    experiment.name);
    }
    experiments_.push_back(std::move(experiment));
}

const Experiment *
ExperimentRegistry::find(const std::string &name) const
{
    for (const auto &experiment : experiments_) {
        if (experiment.name == name)
            return &experiment;
    }
    return nullptr;
}

} // namespace vp::exp
