/**
 * @file
 * Capacity sweep: bounded predictors from tiny tables up to (nearly)
 * the paper's unbounded idealisation.
 *
 * Section 5 of the paper leaves "realistic implementations" with
 * finite resources as future work; this experiment quantifies the gap.
 * Every family (last value, stride, fcm) runs at several total entry
 * budgets side by side with its unbounded counterpart, in a single
 * trace pass per workload, and the report shows accuracy converging
 * toward the idealised numbers as capacity grows.
 *
 * Shared between the registered `capacity` experiment (the vpexp
 * report) and the convergence assertions in
 * tests/bounded_equivalence_test.cc.
 */

#ifndef VP_EXP_CAPACITY_HH
#define VP_EXP_CAPACITY_HH

#include <string>
#include <vector>

#include "core/bounded_table.hh"
#include "exp/suite.hh"

namespace vp::exp {

/** Predictor families swept: "l", "s2", "fcm3". */
const std::vector<std::string> &capacityFamilies();

/** Total-entry budgets swept, smallest first. */
const std::vector<size_t> &capacitySweepPoints();

/**
 * Bounded spec string giving @p base a total budget of @p entries
 * (16-way LRU: high enough associativity that capacity, not set
 * conflicts, is the limiting factor the sweep measures — at 4 ways
 * conflict evictions alone cost compress ~0.3pp even at 1M entries).
 * Last value and stride spend the whole budget on their one table;
 * fcm splits it 1:3 between the VHT and the VPT (contexts far
 * outnumber static instructions).
 */
std::string boundedSpecFor(const std::string &base, size_t entries);

/**
 * boundedSpecFor with an explicit victim policy — the replacement-
 * policy study sweeps LRU vs FIFO vs deterministic-random over the
 * same capacity grid.
 */
std::string boundedSpecFor(const std::string &base, size_t entries,
                           core::Replacement policy);

/** The sweep's predictor bank: per family, unbounded + every budget. */
std::vector<std::string> capacitySweepSpecs();

/**
 * Accuracy surface from one suite run over capacitySweepSpecs().
 *
 * Index predictors as runs[w].predictors[specIndex(...)]: specs are
 * laid out family-major, unbounded first, then the budgets in
 * capacitySweepPoints() order.
 */
struct CapacitySweep
{
    std::vector<BenchmarkRun> runs;

    /** Index of @p family at budget capacitySweepPoints()[budget]. */
    static size_t specIndex(size_t family_index, size_t budget_index);
    static size_t unboundedIndex(size_t family_index);
};

/** The suite options the sweep feeds to runSuite: every spec from
 *  capacitySweepSpecs() banked, trackers off. Shared between
 *  runCapacitySweep and the registry's cell-scheduled experiments. */
SuiteOptions capacitySweepOptions(SuiteOptions base_options);

/** Run the whole sweep (one pass per workload, all specs banked). */
CapacitySweep runCapacitySweep(const SuiteOptions &base_options);

} // namespace vp::exp

#endif // VP_EXP_CAPACITY_HH
