#include "exp/spec.hh"

#include <cctype>
#include <stdexcept>

#include "core/bounded.hh"
#include "core/hybrid.hh"

namespace vp::exp {

// --------------------------------------------------------- geometry

core::BoundedTableConfig
TableGeometry::config() const
{
    core::BoundedTableConfig config;
    config.entries = entries;
    config.ways = ways;
    config.replacement = replacement;
    config.tagBits = tagBits;
    return config;
}

std::string
TableGeometry::canonicalSuffix() const
{
    std::string s = "x";
    s += ways == 0 ? "fa" : std::to_string(ways);
    if (replacement == core::Replacement::Random)
        s += "r";
    else if (replacement == core::Replacement::Fifo)
        s += "f";
    if (tagBits > 0) {
        s += "%";
        s += std::to_string(tagBits);
    }
    return s;
}

std::string
TableGeometry::canonical() const
{
    return std::to_string(entries) + canonicalSuffix();
}

// ----------------------------------------------------------- parser

namespace {

/** The two component specs the bare "hybrid" spelling stands for. */
std::vector<PredictorSpec>
defaultHybridComponents()
{
    PredictorSpec s2;
    s2.family = SpecFamily::Stride;
    PredictorSpec fcm3;
    fcm3.family = SpecFamily::Fcm;
    return {s2, fcm3};
}

/**
 * Cursor over one spec string. Every diagnostic names the absolute
 * position (0-based, into the *full* spec, components included) and
 * the offending token, so a failure inside a long hybrid composition
 * points at the exact character.
 */
class Cursor
{
  public:
    explicit Cursor(const std::string &text) : text_(text) {}

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
    bool atEnd() const { return pos_ >= text_.size(); }
    size_t pos() const { return pos_; }
    void advance() { ++pos_; }

    bool
    eat(char c)
    {
        if (peek() != c)
            return false;
        advance();
        return true;
    }

    /** The token starting at @p at: up to the next structural
     *  delimiter (or 16 chars), for diagnostics. */
    std::string
    tokenAt(size_t at) const
    {
        if (at >= text_.size())
            return "end of spec";
        size_t end = at;
        while (end < text_.size() && end - at < 16 &&
               text_[end] != ',' && text_[end] != ';' &&
               text_[end] != '(' && text_[end] != ')') {
            ++end;
        }
        return "\"" + text_.substr(at, end - at) + "\"";
    }

    [[noreturn]] void
    fail(const std::string &what, size_t at) const
    {
        throw std::invalid_argument("spec \"" + text_ + "\": " + what +
                                    " at position " +
                                    std::to_string(at) + ": " +
                                    tokenAt(at));
    }

    [[noreturn]] void
    fail(const std::string &what) const
    {
        fail(what, pos_);
    }

  private:
    const std::string &text_;
    size_t pos_ = 0;
};

size_t
parseNumber(Cursor &cursor, const char *what)
{
    const size_t start = cursor.pos();
    std::string digits;
    while (std::isdigit(static_cast<unsigned char>(cursor.peek()))) {
        digits += cursor.peek();
        cursor.advance();
    }
    if (digits.empty())
        cursor.fail(std::string("bad ") + what, start);
    try {
        return static_cast<size_t>(std::stoull(digits));
    } catch (const std::out_of_range &) {
        cursor.fail(std::string(what) + " overflows", start);
    }
}

/**
 * "<E>[/<P>]x<W|fa>[r|f][%<T>]" with every piece after the entry
 * count optional. @p vpt non-null allows the fcm VHT/VPT split.
 */
TableGeometry
parseGeometry(Cursor &cursor, std::optional<size_t> *vpt)
{
    TableGeometry geometry;
    geometry.entries = parseNumber(cursor, "entry count");
    if (cursor.peek() == '/') {
        const size_t at = cursor.pos();
        cursor.advance();
        if (vpt == nullptr)
            cursor.fail("vht/vpt split only applies to fcm", at);
        *vpt = parseNumber(cursor, "vpt entry count");
    }
    if (cursor.eat('x')) {
        if (cursor.peek() == 'f') {
            const size_t at = cursor.pos();
            cursor.advance();
            if (!cursor.eat('a'))
                cursor.fail("bad associativity (expected 'fa')", at);
            geometry.ways = 0;
        } else {
            const size_t at = cursor.pos();
            geometry.ways = parseNumber(cursor, "associativity");
            if (geometry.ways == 0) {
                // 0 is the internal fully-associative encoding; the
                // grammar reserves the explicit "fa" spelling for it.
                cursor.fail("ways must be positive (use 'xfa' for "
                            "fully associative)",
                            at);
            }
        }
    }
    if (cursor.peek() == 'r') {
        geometry.replacement = core::Replacement::Random;
        cursor.advance();
    } else if (cursor.peek() == 'f') {
        geometry.replacement = core::Replacement::Fifo;
        cursor.advance();
    }
    if (cursor.eat('%')) {
        const size_t at = cursor.pos();
        const size_t bits = parseNumber(cursor, "tag width");
        if (bits < 1 || bits > 63)
            cursor.fail("tag width must be in [1, 63]", at);
        geometry.tagBits = static_cast<int>(bits);
    }
    return geometry;
}

/** ":c<W>t<T>[r|d]" (the ':' already consumed). */
core::ConfidenceConfig
parseConfidence(Cursor &cursor)
{
    core::ConfidenceConfig config;
    if (!cursor.eat('c'))
        cursor.fail("bad confidence suffix (expected 'c<width>')");
    const size_t width_at = cursor.pos();
    const size_t width = parseNumber(cursor, "confidence width");
    if (width < 1 || width > 16)
        cursor.fail("confidence width must be in [1, 16]", width_at);
    config.width = static_cast<int>(width);
    if (!cursor.eat('t'))
        cursor.fail("bad confidence suffix (expected 't<threshold>')");
    const size_t threshold_at = cursor.pos();
    const size_t threshold = parseNumber(cursor, "confidence threshold");
    if (threshold > size_t{1} << 30)
        cursor.fail("confidence threshold overflows", threshold_at);
    config.threshold = static_cast<int>(threshold);
    if (cursor.peek() == 'r') {
        config.penalty = core::ConfidencePenalty::Reset;
        cursor.advance();
    } else if (cursor.peek() == 'd') {
        config.penalty = core::ConfidencePenalty::Decrement;
        cursor.advance();
    }
    return config;
}

/** The base family name: letters, digits and dashes. */
std::string
parseBaseName(Cursor &cursor)
{
    std::string name;
    while (std::isalnum(static_cast<unsigned char>(cursor.peek())) ||
           cursor.peek() == '-') {
        name += cursor.peek();
        cursor.advance();
    }
    return name;
}

PredictorSpec parsePredictor(Cursor &cursor, bool component);

/** "hybrid(" just consumed: components and optional chooser. */
void
parseHybridComposition(Cursor &cursor, PredictorSpec &spec)
{
    spec.components.push_back(parsePredictor(cursor, true));
    if (!cursor.eat(','))
        cursor.fail("expected ',' between hybrid components");
    spec.components.push_back(parsePredictor(cursor, true));
    if (cursor.eat(';')) {
        const size_t at = cursor.pos();
        if (!(cursor.eat('c') && cursor.eat('h') && cursor.eat('@')))
            cursor.fail("expected chooser \"ch@<geometry>\"", at);
        spec.chooser = parseGeometry(cursor, nullptr);
    }
    if (!cursor.eat(')'))
        cursor.fail("unterminated hybrid composition");
}

PredictorSpec
parsePredictor(Cursor &cursor, bool component)
{
    PredictorSpec spec;
    const size_t base_at = cursor.pos();
    const std::string base = parseBaseName(cursor);

    if (base == "l" || base == "l-sat" || base == "l-consec") {
        spec.family = SpecFamily::LastValue;
        if (base == "l-sat")
            spec.lv.policy = core::LvPolicy::SaturatingCounter;
        else if (base == "l-consec")
            spec.lv.policy = core::LvPolicy::Consecutive;
    } else if (base == "s" || base == "s-sat" || base == "s2") {
        spec.family = SpecFamily::Stride;
        if (base == "s")
            spec.stride.policy = core::StridePolicy::Simple;
        else if (base == "s-sat")
            spec.stride.policy = core::StridePolicy::SaturatingCounter;
    } else if (base.rfind("fcm", 0) == 0) {
        spec.family = SpecFamily::Fcm;
        const auto dash = base.find('-');
        const std::string num = base.substr(3, dash - 3);
        if (num.empty() ||
            num.find_first_not_of("0123456789") != std::string::npos) {
            cursor.fail("bad fcm order", base_at + 3);
        }
        try {
            spec.fcm.order = std::stoi(num);
        } catch (const std::out_of_range &) {
            cursor.fail("fcm order overflows", base_at + 3);
        }
        const std::string variant =
                dash == std::string::npos ? "" : base.substr(dash + 1);
        if (variant == "full") {
            spec.fcm.blending = core::FcmBlending::Full;
        } else if (variant == "pure") {
            spec.fcm.blending = core::FcmBlending::None;
        } else if (variant == "sat") {
            spec.fcm.counterMax = 16;
        } else if (!variant.empty()) {
            cursor.fail("unknown fcm variant", base_at + dash + 1);
        }
    } else if (base == "hybrid") {
        if (component) {
            cursor.fail("hybrid components must be simple predictors",
                        base_at);
        }
        spec.family = SpecFamily::Hybrid;
        if (cursor.eat('('))
            parseHybridComposition(cursor, spec);
        else
            spec.components = defaultHybridComponents();
    } else {
        cursor.fail("unknown predictor spec", base_at);
    }

    if (cursor.peek() == '@') {
        const size_t at = cursor.pos();
        cursor.advance();
        if (spec.family == SpecFamily::Hybrid) {
            cursor.fail("hybrid takes component budgets inside "
                        "\"hybrid(...)\", not '@'",
                        at);
        }
        std::optional<size_t> vpt;
        spec.table = parseGeometry(
                cursor,
                spec.family == SpecFamily::Fcm ? &vpt : nullptr);
        if (spec.family == SpecFamily::Fcm && !vpt) {
            cursor.fail("bounded fcm needs <vht>/<vpt> entry counts",
                        at);
        }
        spec.vptEntries = vpt;
    }

    if (cursor.eat(':'))
        spec.confidence = parseConfidence(cursor);

    // Whatever follows must be a delimiter the caller owns: the end
    // of the spec at top level, or ,;) inside a hybrid composition
    // (end-of-spec passes through so the composition parser reports
    // the missing ',' or ')' itself).
    const char next = cursor.peek();
    const bool terminated =
            component ? (next == ',' || next == ';' || next == ')' ||
                         cursor.atEnd())
                      : cursor.atEnd();
    if (!terminated)
        cursor.fail("unexpected trailing characters");
    return spec;
}

} // anonymous namespace

PredictorSpec
parseSpec(const std::string &text)
{
    Cursor cursor(text);
    return parsePredictor(cursor, false);
}

// -------------------------------------------------------- canonical

std::string
PredictorSpec::canonicalName() const
{
    std::string s;
    switch (family) {
      case SpecFamily::LastValue:
        s = core::lvPolicyName(lv.policy);
        break;
      case SpecFamily::Stride:
        s = core::stridePolicyName(stride.policy);
        break;
      case SpecFamily::Fcm:
        s = "fcm" + std::to_string(fcm.order);
        if (fcm.blending == core::FcmBlending::None)
            s += "-pure";
        else if (fcm.blending == core::FcmBlending::Full)
            s += "-full";
        else if (fcm.counterMax != 0)
            s += "-sat";
        break;
      case SpecFamily::Hybrid:
        if (!chooser && components == defaultHybridComponents()) {
            s = "hybrid";
        } else {
            s = "hybrid(" + components.at(0).canonicalName() + "," +
                components.at(1).canonicalName();
            if (chooser)
                s += ";ch@" + chooser->canonical();
            s += ")";
        }
        break;
    }
    if (table) {
        s += "@";
        if (vptEntries) {
            s += std::to_string(table->entries) + "/" +
                 std::to_string(*vptEntries) + table->canonicalSuffix();
        } else {
            s += table->canonical();
        }
    }
    if (confidence)
        s += core::confidenceSuffix(*confidence);
    return s;
}

// ------------------------------------------------------------ build

core::PredictorPtr
PredictorSpec::build() const
{
    using namespace core;
    PredictorPtr built;
    switch (family) {
      case SpecFamily::LastValue:
        built = table ? std::make_unique<BoundedLastValuePredictor>(
                                lv, table->config())
                      : PredictorPtr(
                                std::make_unique<LastValuePredictor>(lv));
        break;
      case SpecFamily::Stride:
        built = table ? std::make_unique<BoundedStridePredictor>(
                                stride, table->config())
                      : PredictorPtr(
                                std::make_unique<StridePredictor>(stride));
        break;
      case SpecFamily::Fcm:
        if (table) {
            BoundedFcmConfig config;
            config.fcm = fcm;
            config.vht = table->config();
            config.vpt = table->config();
            config.vpt.entries = *vptEntries;
            config.maxFollowers = 4;    // realistic per-entry budget
            built = std::make_unique<BoundedFcmPredictor>(config);
        } else {
            built = std::make_unique<FcmPredictor>(fcm);
        }
        break;
      case SpecFamily::Hybrid: {
        HybridChooser ch;
        if (chooser)
            ch.table = chooser->config();
        built = std::make_unique<HybridPredictor>(
                components.at(0).build(), components.at(1).build(), ch);
        break;
      }
    }
    if (confidence) {
        built = std::make_unique<ConfidencePredictor>(std::move(built),
                                                      *confidence);
    }
    return built;
}

// ------------------------------------------------------------- help

const char *
specGrammarHelp()
{
    return
"predictor spec grammar (typed model: src/exp/spec.hh)\n"
"\n"
"  spec       := base [\"@\" budget] [confidence]\n"
"  base       := \"l\" | \"l-sat\" | \"l-consec\"          last value\n"
"             |  \"s\" | \"s-sat\" | \"s2\"                stride\n"
"             |  \"fcm\"K [\"-full\"|\"-pure\"|\"-sat\"]     fcm, order K\n"
"             |  \"hybrid\"                            s2 + fcm3 chooser hybrid\n"
"             |  \"hybrid(\" spec \",\" spec [\";ch@\" geometry] \")\"\n"
"  budget     := geometry                            one table (lv/stride)\n"
"             |  V \"/\" P suffix                      fcm VHT/VPT split\n"
"  geometry   := E suffix\n"
"  suffix     := [\"x\" (W|\"fa\")] [\"r\"|\"f\"] [\"%\" T]\n"
"  confidence := \":c\" W \"t\" T [\"r\"|\"d\"]\n"
"\n"
"Budgets make a spec's tables finite (set-associative, E/V/P entry\n"
"counts, W ways, default 4, \"fa\" = fully associative; victim policy\n"
"LRU by default, \"r\" = deterministic-random, \"f\" = FIFO). \"%T\"\n"
"stores only the low T bits of each key as the tag, so distinct keys\n"
"may alias (the aliasing experiment's knob); omitted = full 64-bit\n"
"keys. Spec-built bounded fcm keeps at most 4 follower values per VPT\n"
"entry. A hybrid composes two simple component specs; \";ch@...\"\n"
"bounds the chooser table too, so chooser + components can share one\n"
"global hardware budget (the hybrid_split experiment). \":cWtT\"\n"
"gates any spec on a per-PC saturating confidence counter: width W\n"
"bits, predict only at counter >= T, miss penalty reset (\"r\", the\n"
"tacit default) or decrement (\"d\"); threshold 0 gates nothing.\n"
"\n"
"examples:\n"
"  l  s2  fcm3  fcm2-pure  hybrid          unbounded (the paper's models)\n"
"  l@1024x4  s2@256x2r  fcm3@256/1024x4    finite tables\n"
"  l@1024x4%8                              8-bit partial tags\n"
"  hybrid(s2@256x2,fcm3@256/1024x4;ch@512x4)   fully bounded hybrid\n"
"  fcm3@256/1024x4:c3t6                    bounded + confidence-gated\n";
}

} // namespace vp::exp
