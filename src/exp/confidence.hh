/**
 * @file
 * Confidence sweep: coverage vs accuracy-when-predicted as the gate
 * tightens, across every predictor family and all seven workloads.
 *
 * Section 4 of the paper notes that acting on value predictions costs
 * recovery on a miss, so a real machine trades coverage against
 * accuracy; this experiment quantifies that trade-off with the
 * ConfidencePredictor decorator (core/confidence.hh) over a counter
 * width x threshold grid, and scores each point with the
 * speculation-profit proxy at several misprediction costs.
 *
 * Shared between the registered `confidence` experiment (the vpexp
 * report) and the monotone-trade-off / profit assertions in
 * tests/confidence_test.cc.
 */

#ifndef VP_EXP_CONFIDENCE_HH
#define VP_EXP_CONFIDENCE_HH

#include <string>
#include <vector>

#include "exp/suite.hh"

namespace vp::exp {

/** Families swept: "l", "s2", "fcm1", "fcm2", "fcm3", "hybrid". */
const std::vector<std::string> &confidenceFamilies();

/** One estimator shape on the sweep grid. */
struct ConfidencePoint
{
    int width = 2;          ///< counter width in bits
    int threshold = 2;      ///< predict at counter >= threshold
};

/**
 * The width x threshold grid, width-major, thresholds ascending
 * within each width (1..2^w - 1; threshold 0 is the ungated column).
 */
const std::vector<ConfidencePoint> &confidenceSweepPoints();

/** Misprediction costs the profit tables report (units of one hit). */
const std::vector<double> &speculationCosts();

/** Gated spec string: base + ":c<w>t<t>" (reset penalty). */
std::string confidenceSpecFor(const std::string &base,
                              const ConfidencePoint &point);

/** The sweep's bank: per family, ungated + every grid point. */
std::vector<std::string> confidenceSweepSpecs();

/**
 * Gated-stats surface from one suite run over confidenceSweepSpecs().
 *
 * Index predictors as runs[w].predictors[specIndex(...)]: specs are
 * laid out family-major, ungated first, then the grid points in
 * confidenceSweepPoints() order.
 */
struct ConfidenceSweep
{
    std::vector<BenchmarkRun> runs;

    static size_t specIndex(size_t family_index, size_t point_index);
    static size_t ungatedIndex(size_t family_index);
};

/** The suite options the sweep feeds to runSuite: every spec from
 *  confidenceSweepSpecs() banked, trackers off. Shared between
 *  runConfidenceSweep and the registry's cell-scheduled experiments. */
SuiteOptions confidenceSweepOptions(SuiteOptions base_options);

/** Run the whole sweep (one pass per workload, all specs banked). */
ConfidenceSweep runConfidenceSweep(const SuiteOptions &base_options);

/** Mean coverage / accuracy-when-predicted / profit over the runs
 *  for predictor @p index (the paper's equal-weight averaging). */
double meanCoveragePct(const std::vector<BenchmarkRun> &runs,
                       size_t index);
double meanAccuracyWhenPredictedPct(const std::vector<BenchmarkRun> &runs,
                                    size_t index);
double meanProfit(const std::vector<BenchmarkRun> &runs, size_t index,
                  double cost);

} // namespace vp::exp

#endif // VP_EXP_CONFIDENCE_HH
