#include "exp/vpexp.hh"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "exp/confidence.hh"
#include "exp/experiment.hh"
#include "exp/report.hh"
#include "exp/spec.hh"
#include "obs/trace_log.hh"
#include "sim/table.hh"
#include "util/mutex.hh"

namespace vp::exp {

namespace {

namespace fs = std::filesystem;

const char *const usageText =
        "usage: vpexp [--list] [--all] [experiment ...]\n"
        "             [--dry-run] [--jobs N] [--out DIR]\n"
        "             [--format table,csv,json] [--trace-cache DIR]\n"
        "             [--regions W] [--warmup N] [--window N]\n"
        "             [--stats] [--progress] [--trace-json FILE]\n"
        "\n"
        "  --list         list registered experiments and exit\n"
        "  --spec-help    print the predictor spec grammar and exit\n"
        "  --all          run every registered experiment\n"
        "  --dry-run      shrink workloads to smoke scale\n"
        "  --jobs N       cell worker threads (default: hardware)\n"
        "  --regions W    split each cell's trace into W regions\n"
        "                 replayed as separate pool tasks, stats\n"
        "                 merged (default 1 = exact serial replay;\n"
        "                 W>1 drifts <=0.1pp at the default warmup)\n"
        "  --warmup N     events replayed before each region to train\n"
        "                 tables, excluded from stats (default 131072)\n"
        "  --window N     sample per-predictor coverage/accuracy every\n"
        "                 N events into each cell's windows series\n"
        "                 (JSON + windows.csv; forces serial replay)\n"
        "  --stats        print the merged instrumentation counters of\n"
        "                 every cell after the experiment tables\n"
        "  --progress     live cell/task completion line on stderr\n"
        "                 (only when stderr is a TTY)\n"
        "  --trace-json FILE\n"
        "                 write a Chrome trace-event timeline of the\n"
        "                 run (cells, regions, warm-up, trace-cache,\n"
        "                 reports) loadable in Perfetto\n"
        "  --out DIR      write <exp>.txt, <exp>.<table>.csv and\n"
        "                 BENCH_results.json under DIR\n"
        "  --format LIST  comma list of table,csv,json\n"
        "                 (default: table; all three with --out)\n"
        "  --trace-cache DIR\n"
        "                 share recorded workload traces across runs\n"
        "                 (you own invalidating it)\n";

struct DriverOptions
{
    std::vector<std::string> names;
    bool all = false;
    bool list = false;
    bool specHelp = false;
    bool dryRun = false;
    bool help = false;
    unsigned jobs = 0;
    unsigned regions = 1;
    uint64_t warmup = defaultWarmupEvents;
    uint64_t window = 0;
    bool stats = false;
    bool progress = false;
    std::string traceJson;
    std::string out;
    std::string formatList;     // raw --format value; empty = default
    std::string traceCacheDir;
    bool ok = true;
    std::string error;
};

/** Accept "--flag value" and "--flag=value". */
bool
takeValue(const std::string &arg, const char *flag, int argc,
          const char *const *argv, int &i, std::string &value,
          DriverOptions &options)
{
    const std::string name(flag);
    if (arg == name) {
        if (i + 1 >= argc) {
            options.ok = false;
            options.error = name + " needs a value";
            return true;
        }
        value = argv[++i];
        return true;
    }
    if (arg.rfind(name + "=", 0) == 0) {
        value = arg.substr(name.size() + 1);
        return true;
    }
    return false;
}

DriverOptions
parseArgs(int argc, const char *const *argv)
{
    DriverOptions options;
    for (int i = 1; i < argc && options.ok; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--list") {
            options.list = true;
        } else if (arg == "--spec-help") {
            options.specHelp = true;
        } else if (arg == "--all") {
            options.all = true;
        } else if (arg == "--dry-run") {
            options.dryRun = true;
        } else if (arg == "--help" || arg == "-h") {
            options.help = true;
        } else if (takeValue(arg, "--jobs", argc, argv, i, value,
                             options)) {
            if (!options.ok)
                break;
            try {
                size_t consumed = 0;
                const int jobs = std::stoi(value, &consumed);
                if (jobs < 0 || consumed != value.size())
                    throw std::invalid_argument(value);
                options.jobs = static_cast<unsigned>(jobs);
            } catch (const std::exception &) {
                options.ok = false;
                options.error = "bad --jobs value: " + value;
            }
        } else if (takeValue(arg, "--regions", argc, argv, i, value,
                             options)) {
            if (!options.ok)
                break;
            try {
                size_t consumed = 0;
                const int regions = std::stoi(value, &consumed);
                if (regions < 1 || consumed != value.size())
                    throw std::invalid_argument(value);
                options.regions = static_cast<unsigned>(regions);
            } catch (const std::exception &) {
                options.ok = false;
                options.error = "bad --regions value: " + value;
            }
        } else if (takeValue(arg, "--warmup", argc, argv, i, value,
                             options)) {
            if (!options.ok)
                break;
            try {
                size_t consumed = 0;
                const long long warmup = std::stoll(value, &consumed);
                if (warmup < 0 || consumed != value.size())
                    throw std::invalid_argument(value);
                options.warmup = static_cast<uint64_t>(warmup);
            } catch (const std::exception &) {
                options.ok = false;
                options.error = "bad --warmup value: " + value;
            }
        } else if (takeValue(arg, "--window", argc, argv, i, value,
                             options)) {
            if (!options.ok)
                break;
            try {
                size_t consumed = 0;
                const long long window = std::stoll(value, &consumed);
                if (window < 1 || consumed != value.size())
                    throw std::invalid_argument(value);
                options.window = static_cast<uint64_t>(window);
            } catch (const std::exception &) {
                options.ok = false;
                options.error = "bad --window value: " + value;
            }
        } else if (arg == "--stats") {
            options.stats = true;
        } else if (arg == "--progress") {
            options.progress = true;
        } else if (takeValue(arg, "--trace-json", argc, argv, i, value,
                             options)) {
            options.traceJson = value;
        } else if (takeValue(arg, "--out", argc, argv, i, value,
                             options)) {
            options.out = value;
        } else if (takeValue(arg, "--format", argc, argv, i, value,
                             options)) {
            options.formatList = value;
        } else if (takeValue(arg, "--trace-cache", argc, argv, i,
                             value, options)) {
            options.traceCacheDir = value;
        } else if (!arg.empty() && arg[0] == '-') {
            options.ok = false;
            options.error = "unknown option: " + arg;
        } else {
            options.names.push_back(arg);
        }
    }
    return options;
}

std::set<std::string>
parseFormats(const DriverOptions &options, bool &ok, std::string &error)
{
    std::set<std::string> formats;
    if (options.formatList.empty()) {
        formats.insert("table");
        if (!options.out.empty()) {
            formats.insert("csv");
            formats.insert("json");
        }
        return formats;
    }
    std::istringstream in(options.formatList);
    std::string format;
    while (std::getline(in, format, ',')) {
        if (format != "table" && format != "csv" && format != "json") {
            ok = false;
            error = "unknown --format: " + format +
                    " (expected table, csv or json)";
            return formats;
        }
        formats.insert(format);
    }
    if (formats.empty()) {
        ok = false;
        error = "empty --format list";
    }
    if (formats.count("csv") && options.out.empty()) {
        ok = false;
        error = "--format csv requires --out DIR";
    }
    return formats;
}

int
listExperiments(const ExperimentRegistry &registry)
{
    sim::TextTable table;
    table.row().cell("experiment").cell("description").rule();
    for (const auto &experiment : registry.all())
        table.row().cell(experiment.name).cell(experiment.description);
    std::printf("%s\n%zu experiments; run `vpexp <name> ...`, or "
                "`vpexp --all`.\n"
                "`vpexp --spec-help` documents the predictor spec "
                "grammar.\n",
                table.render().c_str(), registry.size());
    return 0;
}

/** Everything the writers need about one finished experiment. */
struct ExperimentOutcome
{
    const Experiment *experiment = nullptr;
    Report report;
    std::vector<size_t> cells;
    double wallMs = 0.0;
    bool ok = true;
    std::string error;
};

/**
 * One cell's counter snapshot as a JSON object: counters and gauges
 * as name -> value maps, histograms with their summary moments plus
 * the non-empty log2 buckets as [bucketLow, count] pairs.
 */
std::string
snapshotJson(const obs::Snapshot &snapshot)
{
    using report_writer::jsonEscape;
    using report_writer::jsonNumber;

    std::ostringstream out;
    out << "{\"counters\": {";
    bool first = true;
    for (const auto &[name, value] : snapshot.counters) {
        out << (first ? "" : ", ") << '"' << jsonEscape(name)
            << "\": " << value;
        first = false;
    }
    out << "}, \"gauges\": {";
    first = true;
    for (const auto &[name, value] : snapshot.gauges) {
        out << (first ? "" : ", ") << '"' << jsonEscape(name)
            << "\": " << value;
        first = false;
    }
    out << "}, \"histograms\": {";
    first = true;
    for (const auto &[name, hist] : snapshot.histograms) {
        out << (first ? "" : ", ") << '"' << jsonEscape(name)
            << "\": {\"count\": " << hist.count << ", \"sum\": "
            << hist.sum << ", \"min\": "
            << (hist.count ? hist.min : 0) << ", \"max\": " << hist.max
            << ", \"mean\": " << jsonNumber(hist.mean())
            << ", \"buckets\": [";
        bool first_bucket = true;
        for (int b = 0; b < obs::Histogram::numBuckets; ++b) {
            const uint64_t n = hist.buckets[static_cast<size_t>(b)];
            if (n == 0)
                continue;
            out << (first_bucket ? "" : ", ") << '['
                << obs::Histogram::bucketLow(b) << ", " << n << ']';
            first_bucket = false;
        }
        out << "]}";
        first = false;
    }
    out << "}}";
    return out.str();
}

/** One cell's windowed-telemetry series as a JSON object. */
std::string
windowsJson(const sim::WindowSeries &windows)
{
    std::ostringstream out;
    out << "{\"windowEvents\": " << windows.windowEvents
        << ", \"samples\": [";
    for (size_t s = 0; s < windows.samples.size(); ++s) {
        const auto &sample = windows.samples[s];
        out << (s ? ", " : "") << "{\"endEvent\": " << sample.endEvent
            << ", \"members\": [";
        for (size_t m = 0; m < sample.members.size(); ++m) {
            const auto &delta = sample.members[m];
            out << (m ? ", " : "") << "{\"eligible\": " << delta.eligible
                << ", \"predicted\": " << delta.predicted
                << ", \"correct\": " << delta.correct << '}';
        }
        out << "]}";
    }
    out << "]}";
    return out.str();
}

std::string
resultsJson(const std::vector<ExperimentOutcome> &outcomes,
            const CellScheduler &scheduler, const DriverOptions &options,
            double total_ms)
{
    using report_writer::jsonEscape;
    using report_writer::jsonNumber;

    std::ostringstream out;
    out << "{\n\"schema\": \"vpexp-results-v1\",\n";
    out << "\"dryRun\": " << (options.dryRun ? "true" : "false")
        << ",\n";
    out << "\"jobs\": " << scheduler.workers() << ",\n";
    out << "\"regions\": " << options.regions << ",\n";
    out << "\"warmupEvents\": " << options.warmup << ",\n";
    out << "\"windowEvents\": " << options.window << ",\n";
    out << "\"wallMs\": " << jsonNumber(total_ms) << ",\n";
    out << "\"uniqueCells\": " << scheduler.uniqueCells() << ",\n";
    out << "\"requestedCells\": " << scheduler.requestedCells()
        << ",\n";

    out << "\"experiments\": [\n";
    for (size_t e = 0; e < outcomes.size(); ++e) {
        const auto &outcome = outcomes[e];
        out << "  {\"name\": \""
            << jsonEscape(outcome.experiment->name) << "\", \"title\": \""
            << jsonEscape(outcome.experiment->title) << "\", \"ok\": "
            << (outcome.ok ? "true" : "false") << ", \"wallMs\": "
            << jsonNumber(outcome.wallMs) << ", \"cells\": [";
        for (size_t i = 0; i < outcome.cells.size(); ++i)
            out << (i ? ", " : "") << outcome.cells[i];
        out << "], \"report\": "
            << (outcome.ok ? report_writer::renderJson(outcome.report)
                           : "null");
        if (!outcome.ok)
            out << ", \"error\": \"" << jsonEscape(outcome.error)
                << '"';
        out << '}' << (e + 1 < outcomes.size() ? "," : "") << '\n';
    }
    out << "],\n";

    out << "\"cells\": [\n";
    const auto records = scheduler.records();
    for (size_t c = 0; c < records.size(); ++c) {
        const auto &record = records[c];
        out << "  {\"id\": " << c << ", \"workload\": \""
            << jsonEscape(record.workload) << "\", \"input\": \""
            << jsonEscape(record.config.input) << "\", \"flags\": \""
            << jsonEscape(record.config.flags) << "\", \"scale\": "
            << record.config.scale << ", \"done\": "
            << (record.done ? "true" : "false") << ", \"wallMs\": "
            << jsonNumber(record.wallMs) << ", \"queuedMs\": "
            << jsonNumber(record.queuedMs) << ", \"regions\": "
            << record.regions << ", \"events\": "
            << record.events << ", \"nsPerEvent\": "
            << jsonNumber(record.events
                                  ? record.wallMs * 1e6 /
                                            static_cast<double>(
                                                    record.events)
                                  : 0.0)
            << ", \"predictors\": [";
        for (size_t p = 0; p < record.predictors.size(); ++p) {
            const auto &[spec, stats] = record.predictors[p];
            out << (p ? ", " : "") << "{\"spec\": \""
                << jsonEscape(spec) << "\", \"eligible\": "
                << stats.total() << ", \"predicted\": "
                << stats.predicted() << ", \"correct\": "
                << stats.correct() << ", \"coverage\": "
                << jsonNumber(stats.coverage()) << ", \"accuracy\": "
                << jsonNumber(stats.accuracy())
                << ", \"accuracyWhenPredicted\": "
                << jsonNumber(stats.accuracyWhenPredicted());
            for (const double cost : speculationCosts()) {
                out << ", \"profitAtCost"
                    << static_cast<int>(cost) << "\": "
                    << jsonNumber(stats.profit(cost));
            }
            out << '}';
        }
        out << "], \"counters\": " << snapshotJson(record.counters);
        if (record.windows.windowEvents != 0)
            out << ", \"windows\": " << windowsJson(record.windows);
        out << '}' << (c + 1 < records.size() ? "," : "") << '\n';
    }
    out << "]\n}\n";
    return out.str();
}

/**
 * Windowed telemetry as one flat CSV (written as windows.csv under
 * --out): a row per (cell, window, predictor).
 */
std::string
windowsCsv(const std::vector<CellScheduler::CellRecord> &records)
{
    std::ostringstream out;
    out << "cell,workload,spec,endEvent,eligible,predicted,correct\n";
    for (size_t c = 0; c < records.size(); ++c) {
        const auto &record = records[c];
        for (const auto &sample : record.windows.samples) {
            for (size_t m = 0; m < sample.members.size(); ++m) {
                const auto &delta = sample.members[m];
                const std::string spec =
                        m < record.predictors.size()
                                ? record.predictors[m].first
                                : "";
                out << c << ',' << record.workload << ',' << spec << ','
                    << sample.endEvent << ',' << delta.eligible << ','
                    << delta.predicted << ',' << delta.correct << '\n';
            }
        }
    }
    return out.str();
}

/**
 * `--stats`: the run's instrumentation, merged across every cell
 * (counters/histograms sum, gauges keep their maximum) and printed as
 * text tables.
 */
void
printStatsTables(const std::vector<CellScheduler::CellRecord> &records)
{
    obs::Snapshot total;
    for (const auto &record : records)
        total.merge(record.counters);
    if (total.empty()) {
        std::printf("vpexp: no instrumentation counters collected\n");
        return;
    }

    sim::TextTable table;
    table.row().cell("metric").cell("value").rule();
    for (const auto &[name, value] : total.counters)
        table.row().cell(name).cell(std::to_string(value));
    for (const auto &[name, value] : total.gauges)
        table.row().cell(name + " (max)").cell(std::to_string(value));
    std::printf("instrumentation counters (%zu cells)\n\n%s",
                records.size(), table.render().c_str());

    if (!total.histograms.empty()) {
        sim::TextTable hists;
        hists.row().cell("histogram").cell("count").cell("mean")
                .cell("min").cell("max").rule();
        for (const auto &[name, hist] : total.histograms) {
            char mean[32];
            std::snprintf(mean, sizeof(mean), "%.2f", hist.mean());
            hists.row().cell(name).cell(std::to_string(hist.count))
                    .cell(mean)
                    .cell(std::to_string(hist.count ? hist.min : 0))
                    .cell(std::to_string(hist.max));
        }
        std::printf("\n%s", hists.render().c_str());
    }
    std::printf("\n");
}

/**
 * `--progress`: a live completion line on stderr, refreshed a few
 * times a second from CellScheduler::progress() by a tiny poller
 * thread. Only active when stderr is a terminal; clear() erases the
 * line so regular output can interleave cleanly.
 */
class ProgressMeter
{
  public:
    ProgressMeter(const CellScheduler &scheduler, bool enabled)
        : scheduler_(scheduler)
    {
        if (enabled && isatty(fileno(stderr)) != 0)
            thread_ = std::thread([this] { loop(); });
    }

    ~ProgressMeter() { stop(); }

    /** Erase the progress line (before printing to the terminal). */
    void
    clear()
    {
        if (!thread_.joinable())
            return;
        const util::MutexLock lock(mutex_);
        eraseLine();
    }

    void
    stop()
    {
        if (!thread_.joinable())
            return;
        {
            const util::MutexLock lock(mutex_);
            stop_ = true;
        }
        wake_.notify_all();
        thread_.join();
        eraseLine();
    }

  private:
    static void
    eraseLine()
    {
        std::fprintf(stderr, "\r\33[2K");
        std::fflush(stderr);
    }

    void
    loop()
    {
        // Manual predicate loop: a wait_for predicate lambda would
        // read stop_ from an unannotated scope (thread-safety
        // analysis treats lambda bodies as separate functions).
        const util::MutexLock lock(mutex_);
        while (!stop_) {
            const CellScheduler::Progress p = scheduler_.progress();
            std::fprintf(stderr,
                         "\r\33[2Kvpexp: %zu/%zu cells done "
                         "(%zu/%zu tasks)",
                         p.cellsDone, p.cellsTotal, p.tasksDone,
                         p.tasksTotal);
            std::fflush(stderr);
            wake_.wait_for(mutex_, std::chrono::milliseconds(200));
        }
    }

    const CellScheduler &scheduler_;
    util::Mutex mutex_;
    util::CondVar wake_;
    bool stop_ VP_GUARDED_BY(mutex_) = false;
    std::thread thread_;
};

bool
writeFile(const fs::path &path, const std::string &content)
{
    std::ofstream out(path, std::ios::trunc);
    out << content;
    out.close();    // surface flush-time errors (disk full) in state
    return static_cast<bool>(out);
}

} // anonymous namespace

int
vpexpMain(int argc, const char *const *argv)
{
    DriverOptions options = parseArgs(argc, argv);
    if (options.help) {
        std::fputs(usageText, stdout);
        return 0;
    }
    if (options.specHelp) {
        std::fputs(specGrammarHelp(), stdout);
        return 0;
    }
    if (options.ok && !options.list && !options.all &&
        options.names.empty()) {
        options.ok = false;
        options.error = "nothing to run (name experiments, or use "
                        "--all / --list)";
    }

    std::set<std::string> formats;
    if (options.ok)
        formats = parseFormats(options, options.ok, options.error);

    const auto &reg = registry();
    std::vector<const Experiment *> selected;
    if (options.ok && !options.list) {
        if (options.all) {
            for (const auto &experiment : reg.all())
                selected.push_back(&experiment);
        }
        for (const auto &name : options.names) {
            const Experiment *experiment = reg.find(name);
            if (experiment == nullptr) {
                options.ok = false;
                options.error = "unknown experiment: " + name +
                                " (see vpexp --list)";
                break;
            }
            bool already = false;
            for (const auto *chosen : selected)
                already = already || chosen == experiment;
            if (!already)
                selected.push_back(experiment);
        }
    }

    if (!options.ok) {
        std::fprintf(stderr, "vpexp: %s\n%s", options.error.c_str(),
                     usageText);
        return 2;
    }
    if (options.list)
        return listExperiments(reg);

    ExperimentConfig config;
    config.dryRun = options.dryRun;
    config.traceCacheDir = options.traceCacheDir;
    config.regions = options.regions;
    config.warmupEvents = options.warmup;
    config.windowEvents = options.window;

    std::optional<obs::TraceLog> traceLog;
    if (!options.traceJson.empty()) {
        traceLog.emplace();
        config.traceLog = &*traceLog;
    }

    using Clock = std::chrono::steady_clock;
    const auto run_start = Clock::now();
    CellScheduler scheduler(config, options.jobs);
    ProgressMeter meter(scheduler, options.progress);

    // Queue every declared cell of every selected experiment before
    // the first hook blocks: the worker pool then crunches the whole
    // multi-experiment grid at once (deduplicated across experiments).
    for (const auto *experiment : selected) {
        if (experiment->grid) {
            for (const auto &suite : experiment->grid(config))
                scheduler.prefetch(suite);
        }
    }

    const bool print_tables = formats.count("table") != 0;
    bool failed = false;
    std::vector<ExperimentOutcome> outcomes;
    outcomes.reserve(selected.size());
    for (const auto *experiment : selected) {
        ExperimentOutcome outcome;
        outcome.experiment = experiment;
        ExperimentContext ctx(config, scheduler);
        const auto start = Clock::now();
        try {
            auto span = obs::TraceLog::span(config.traceLog,
                                            "report " + experiment->name,
                                            "report");
            experiment->run(ctx);
        } catch (const std::exception &e) {
            outcome.ok = false;
            outcome.error = e.what();
            failed = true;
        }
        outcome.wallMs = std::chrono::duration<double, std::milli>(
                                 Clock::now() - start)
                                 .count();
        outcome.report = std::move(ctx.report());
        outcome.cells = ctx.cellsUsed();

        if (!outcome.ok) {
            meter.clear();
            std::fprintf(stderr, "vpexp: experiment %s failed: %s\n",
                         experiment->name.c_str(),
                         outcome.error.c_str());
        } else if (print_tables) {
            meter.clear();
            std::printf("%s\n\n%s",
                        experiment->title.c_str(),
                        report_writer::renderText(outcome.report)
                                .c_str());
        }
        outcomes.push_back(std::move(outcome));
    }
    const double total_ms = std::chrono::duration<double, std::milli>(
                                    Clock::now() - run_start)
                                    .count();
    meter.stop();

    if (options.stats)
        printStatsTables(scheduler.records());

    if (print_tables) {
        std::printf("vpexp: %zu experiment%s, %zu unique cell%s "
                    "(%zu requested, %zu deduplicated), %u worker%s, "
                    "%.0f ms\n",
                    selected.size(), selected.size() == 1 ? "" : "s",
                    scheduler.uniqueCells(),
                    scheduler.uniqueCells() == 1 ? "" : "s",
                    scheduler.requestedCells(),
                    scheduler.requestedCells() -
                            scheduler.uniqueCells(),
                    scheduler.workers(),
                    scheduler.workers() == 1 ? "" : "s", total_ms);
    }

    std::string json;
    if (formats.count("json"))
        json = resultsJson(outcomes, scheduler, options, total_ms);

    if (!options.out.empty()) {
        std::error_code ec;
        fs::create_directories(options.out, ec);
        if (ec) {
            std::fprintf(stderr, "vpexp: cannot create %s: %s\n",
                         options.out.c_str(),
                         ec.message().c_str());
            return 1;
        }
        const fs::path out(options.out);
        bool wrote = true;
        for (const auto &outcome : outcomes) {
            if (!outcome.ok)
                continue;
            const auto &name = outcome.experiment->name;
            if (formats.count("table")) {
                wrote = wrote &&
                        writeFile(out / (name + ".txt"),
                                  outcome.experiment->title + "\n\n" +
                                          report_writer::renderText(
                                                  outcome.report));
            }
            if (formats.count("csv")) {
                for (const auto &table : outcome.report.tables()) {
                    wrote = wrote &&
                            writeFile(out / (name + "." + table.id() +
                                             ".csv"),
                                      report_writer::renderCsv(table));
                }
            }
        }
        if (formats.count("json")) {
            wrote = wrote &&
                    writeFile(out / "BENCH_results.json", json);
        }
        if (options.window != 0) {
            wrote = wrote && writeFile(out / "windows.csv",
                                       windowsCsv(scheduler.records()));
        }
        if (!wrote) {
            std::fprintf(stderr, "vpexp: failed writing under %s\n",
                         options.out.c_str());
            return 1;
        }
    } else if (formats.count("json")) {
        std::fputs(json.c_str(), stdout);
    }

    if (traceLog) {
        if (!writeFile(fs::path(options.traceJson),
                       traceLog->render())) {
            std::fprintf(stderr, "vpexp: cannot write %s\n",
                         options.traceJson.c_str());
            return 1;
        }
    }

    return failed ? 1 : 0;
}

} // namespace vp::exp
