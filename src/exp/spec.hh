/**
 * @file
 * Typed predictor-spec model: the AST behind every predictor spec
 * string in the repo.
 *
 * The paper's §4.2 endpoint (a hybrid fcm+stride predictor with
 * choosing) and its §4.3 cost model both demand predictor
 * *composition* under a shared hardware budget. This module is the
 * abstraction that carries it: a PredictorSpec is a typed, composable
 * description — family + variant, optional TableGeometry per bounded
 * table (including partial-tag widths), an optional confidence gate,
 * and for hybrids a composition node holding two component specs plus
 * a chooser geometry. `parseSpec` turns a spec string into the AST
 * with position-precise diagnostics, `canonicalName` renders the
 * unique canonical spelling (parse -> canonical -> parse is the
 * identity, the property tests/spec_test.cc sweeps), and `build`
 * constructs the predictor. `exp::makePredictor` (suite.hh) is a thin
 * shim over parseSpec().build().
 *
 * The grammar itself is documented once, in specGrammarHelp() — the
 * text `vpexp --spec-help` and `vpsim list` print. Examples:
 *
 *   fcm3@256/1024x4:c3t6                bounded fcm, gated
 *   l@1024x4%8                          partial 8-bit tags
 *   hybrid(s2@256x2,fcm3@256/1024x4;ch@512x4)
 *                                       fully bounded hybrid
 */

#ifndef VP_EXP_SPEC_HH
#define VP_EXP_SPEC_HH

#include <optional>
#include <string>
#include <vector>

#include "core/bounded_table.hh"
#include "core/confidence.hh"
#include "core/fcm.hh"
#include "core/last_value.hh"
#include "core/predictor.hh"
#include "core/stride.hh"

namespace vp::exp {

/**
 * Geometry of one bounded table, exactly as the grammar spells it:
 * entry budget, associativity, victim policy, stored-tag width. The
 * reusable unit every bounded spec (lv/stride table, fcm VHT+VPT,
 * hybrid chooser — and, next, bounded confidence tables) shares.
 */
struct TableGeometry
{
    size_t entries = 0;

    /** Associativity; 0 = fully associative ("fa"). */
    size_t ways = 4;

    core::Replacement replacement = core::Replacement::Lru;

    /** Stored tag width in bits; 0 = full 64-bit keys (no aliasing). */
    int tagBits = 0;

    /** The core table configuration this geometry describes. */
    core::BoundedTableConfig config() const;

    /** Canonical "<E>x<W|fa>[r|f][%<T>]" (LRU is tacit). */
    std::string canonical() const;

    /** The part after the entry count ("x4r%8"), shared with the
     *  fcm "<V>/<P>x..." rendering. */
    std::string canonicalSuffix() const;

    friend bool operator==(const TableGeometry &,
                           const TableGeometry &) = default;
};

/** Predictor families the grammar names. */
enum class SpecFamily {
    LastValue,      ///< "l", "l-sat", "l-consec"
    Stride,         ///< "s", "s-sat", "s2"
    Fcm,            ///< "fcmK", "fcmK-full", "fcmK-pure", "fcmK-sat"
    Hybrid          ///< "hybrid", "hybrid(a,b[;ch@...])"
};

/**
 * One parsed predictor spec.
 *
 * Exactly one family payload is meaningful (lv/stride/fcm config, or
 * the component list for hybrids); the bounded geometry, vpt split
 * and confidence gate apply per family as the grammar allows.
 * Equality is structural — two specs compare equal iff they build
 * behaviourally identical predictors, which is what makes the
 * parse -> canonical -> parse round-trip testable.
 */
struct PredictorSpec
{
    SpecFamily family = SpecFamily::LastValue;

    core::LvConfig lv{};            ///< LastValue payload
    core::StrideConfig stride{};    ///< Stride payload
    core::FcmConfig fcm{};          ///< Fcm payload

    /** Bounded geometry; nullopt = unbounded. For fcm this is the
     *  VHT and @c vptEntries holds the VPT budget (same ways, policy
     *  and tag width — the grammar writes one suffix for both). */
    std::optional<TableGeometry> table;
    std::optional<size_t> vptEntries;

    /** Hybrid composition: exactly two component specs. */
    std::vector<PredictorSpec> components;

    /** Hybrid chooser geometry; nullopt = unbounded per-PC map. */
    std::optional<TableGeometry> chooser;

    /** Confidence gate (":c<W>t<T>[r|d]"); nullopt = ungated. */
    std::optional<core::ConfidenceConfig> confidence;

    /**
     * The canonical spelling: the unique string that parses back to
     * this spec. Round-trip guaranteed (and golden-pinned for every
     * registry spec): canonicalName(parseSpec(s)) == s whenever s is
     * already canonical, and parseSpec(canonicalName(x)) == x for
     * every parseable x.
     */
    std::string canonicalName() const;

    /**
     * Construct the predictor this spec describes.
     * @throws std::invalid_argument for geometries the tables reject
     * (ways not dividing entries, bounded fcm order above 8, ...).
     */
    core::PredictorPtr build() const;

    friend bool operator==(const PredictorSpec &,
                           const PredictorSpec &) = default;
};

/**
 * Parse @p text into a PredictorSpec.
 *
 * @throws std::invalid_argument naming the offending position and
 * token, e.g.: spec "l@abc": bad entry count at position 2: "abc".
 */
PredictorSpec parseSpec(const std::string &text);

/**
 * The spec grammar, documented once: the single source of truth that
 * `vpexp --spec-help` and `vpsim list` print and the README/suite.hh
 * docs reference.
 */
const char *specGrammarHelp();

} // namespace vp::exp

#endif // VP_EXP_SPEC_HH
