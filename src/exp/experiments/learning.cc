/**
 * @file
 * Synthetic-sequence experiments (no workload cells): Table 1 and
 * Figure 2 of the paper, converted from bench/exp_table1.cc and
 * bench/exp_figure2.cc into registrations.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/fcm.hh"
#include "core/last_value.hh"
#include "core/learning.hh"
#include "core/stride.hh"
#include "exp/experiments/modules.hh"
#include "synth/sequences.hh"

namespace vp::exp::experiments {

namespace {

using namespace vp::core;
using namespace vp::synth;

// ---------------------------------------------------------------------
// table1 — learning time (LT) and learning degree (LD) of the last
// value / stride / fcm models on the Section 1.1 sequence classes.
// Paper values: last value works only for C (LT 1, LD 100); stride
// learns C and S in <=2 values and gets (p-1)/p on RS; a pure order-o
// fcm learns any repeating sequence after one period plus its order.
// ---------------------------------------------------------------------

constexpr int table1FcmOrder = 2;
constexpr size_t table1Period = 6;

struct SequenceCase
{
    const char *name;
    std::vector<uint64_t> values;
};

std::vector<SequenceCase>
sequenceCases()
{
    return {
        {"C", constantSeq(5, 600)},
        {"S", strideSeq(1, 1, 600)},
        {"NS", nonStrideSeq(42, 600)},
        {"RS", repeatedStrideSeq(1, 1, table1Period, 600)},
        {"RNS", repeatedNonStrideSeq(7, table1Period, 600)},
    };
}

std::string
fmtLt(int64_t lt)
{
    return lt < 0 ? "-" : std::to_string(lt);
}

std::string
fmtLd(int64_t lt, double ld)
{
    if (lt < 0)
        return "-";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", 100.0 * ld);
    return buf;
}

void
runTable1(ExperimentContext &ctx)
{
    auto &report = ctx.report();
    report.textf("(last value; two-delta stride; pure order-%d fcm; "
                 "repeating period p = %zu)",
                 table1FcmOrder, table1Period);
    report.text("");

    auto &table = report.table("learning");
    table.row().cell("sequence")
         .cell("LV LT").cell("LV LD%")
         .cell("S2 LT").cell("S2 LD%")
         .cell("FCM LT").cell("FCM LD%")
         .cell("| paper (LV/S2/FCM)")
         .rule();

    const char *paper_rows[] = {
        "1,100 / 1,100 / o,100",
        "- / 2,100 / -",
        "- / - / -",
        "- / 2,(p-1)/p / p+o,100",
        "- / - / p+o,100",
    };

    int row_index = 0;
    for (const auto &seq_case : sequenceCases()) {
        LastValuePredictor lv;
        StridePredictor s2;
        FcmConfig fc;
        fc.order = table1FcmOrder;
        fc.blending = FcmBlending::None;
        FcmPredictor fcm(fc);

        const auto r_lv = analyzeLearning(lv, seq_case.values);
        const auto r_s2 = analyzeLearning(s2, seq_case.values);
        const auto r_fcm = analyzeLearning(fcm, seq_case.values);

        table.row().cell(seq_case.name);
        table.cell(fmtLt(r_lv.learningTime));
        table.cell(fmtLd(r_lv.learningTime, r_lv.learningDegree));
        table.cell(fmtLt(r_s2.learningTime));
        table.cell(fmtLd(r_s2.learningTime, r_s2.learningDegree));
        table.cell(fmtLt(r_fcm.learningTime));
        table.cell(fmtLd(r_fcm.learningTime, r_fcm.learningDegree));
        table.cell(paper_rows[row_index++]);
    }

    report.textf("notes: LT counts values observed before the first "
                 "correct prediction;\n"
                 "LD is %% correct after it. Low-LD rows correspond to "
                 "the paper's '-' cells\n"
                 "(predictor unsuited to the sequence). Expected here: "
                 "RS stride LD = %.0f%%,\n"
                 "fcm LT on RS/RNS = p+o = %zu.",
                 100.0 * (table1Period - 1) / table1Period,
                 table1Period + table1FcmOrder);
}

// ---------------------------------------------------------------------
// figure2 — computational vs context based prediction on a period-4
// repeated stride sequence. Paper result: the stride predictor learns
// after 2 values but keeps repeating the same mistake at each wrap
// (LD 75% at p=4); the order-2 fcm needs period+order = 6 values and
// then never misses.
// ---------------------------------------------------------------------

void
appendTrace(Report &report, const char *label,
            const std::vector<uint64_t> &seq,
            const LearningResult &result)
{
    char buf[32];
    std::string predictions;
    std::snprintf(buf, sizeof(buf), "%-24s", label);
    predictions = buf;
    for (size_t i = 0; i < seq.size(); ++i) {
        const auto &p = result.predictionAt[i];
        if (!p.valid) {
            predictions += "  .";
        } else {
            std::snprintf(buf, sizeof(buf), " %2llu",
                          static_cast<unsigned long long>(p.value));
            predictions += buf;
        }
    }
    report.text(predictions);

    std::snprintf(buf, sizeof(buf), "%-24s", "");
    std::string verdicts = buf;
    for (size_t i = 0; i < seq.size(); ++i) {
        verdicts += "  ";
        verdicts += result.correctAt[i] ? '=' : 'x';
    }
    report.text(verdicts);
}

void
runFigure2(ExperimentContext &ctx)
{
    auto &report = ctx.report();
    const size_t period = 4;
    const auto seq = repeatedStrideSeq(1, 1, period, 16);

    StridePredictor stride;
    FcmConfig fc;
    fc.order = 2;
    fc.blending = FcmBlending::None;
    FcmPredictor fcm(fc);

    const auto r_stride = analyzeLearning(stride, seq);
    const auto r_fcm = analyzeLearning(fcm, seq);

    report.textf("repeated stride, period = %zu", period);
    report.text("");

    char buf[32];
    std::snprintf(buf, sizeof(buf), "%-24s", "value sequence");
    std::string values = buf;
    for (const uint64_t v : seq) {
        std::snprintf(buf, sizeof(buf), " %2llu",
                      static_cast<unsigned long long>(v));
        values += buf;
    }
    report.text(values);
    report.text("");

    appendTrace(report, "stride (2-delta)", seq, r_stride);
    report.text("");
    appendTrace(report, "context (fcm order 2)", seq, r_fcm);

    report.textf("\nmeasured: stride LT=%lld LD=%.0f%%  (paper: 2, "
                 "75%%)",
                 static_cast<long long>(r_stride.learningTime),
                 100.0 * r_stride.learningDegree);
    report.textf("measured: fcm    LT=%lld LD=%.0f%%  (paper: "
                 "period+order=6, 100%%)",
                 static_cast<long long>(r_fcm.learningTime),
                 100.0 * r_fcm.learningDegree);
    report.text("('.' = no prediction, '=' correct, 'x' wrong; "
                "steady state: stride repeats\n"
                " the same mistake at each wrap, the context "
                "predictor never misses.)");
}

} // anonymous namespace

void
registerLearning(ExperimentRegistry &registry)
{
    registry.add(Experiment{
        "table1",
        "Table 1: Behavior of Prediction Models for Different "
        "Value Sequences",
        "learning time/degree of lv, s2 and pure fcm per sequence "
        "class (C, S, NS, RS, RNS)",
        nullptr,        // synthetic sequences, no workload cells
        runTable1,
    });
    registry.add(Experiment{
        "figure2",
        "Figure 2: Computational vs Context Based Prediction",
        "stride vs order-2 fcm traced value-by-value on a repeated "
        "stride sequence",
        nullptr,        // synthetic sequences, no workload cells
        runFigure2,
    });
}

} // namespace vp::exp::experiments
