/**
 * @file
 * The suite tables of the paper — Tables 2/3, 4, 5, 6 and 7 —
 * converted from the bench/exp_table*.cc binaries into registrations.
 */

#include <algorithm>
#include <string>
#include <vector>

#include "exp/experiments/modules.hh"
#include "exp/paper_data.hh"

namespace vp::exp::experiments {

namespace {

/** The counting bank tables 2/4/5 share: one cheap predictor. */
SuiteOptions
countingOptions()
{
    SuiteOptions options;
    options.predictors = {"l"};
    return options;
}

// ---------------------------------------------------------------------
// table2 — benchmark characteristics (with the Table 3 category
// definitions). Paper: predicted fractions range 62%-84%.
// ---------------------------------------------------------------------

void
runTable2(ExperimentContext &ctx)
{
    const auto runs = ctx.suite(countingOptions());
    auto &report = ctx.report();

    report.text("Table 3: Instruction Categories");
    report.text("");
    auto &cats = report.table("categories");
    cats.row().cell("Instruction Types").cell("Code").rule();
    cats.row().cell("Addition, Subtraction").cell("AddSub");
    cats.row().cell("Loads").cell("Loads");
    cats.row().cell("And, Or, Xor, Nor, Not").cell("Logic");
    cats.row().cell("Shifts").cell("Shift");
    cats.row().cell("Compare and Set").cell("Set");
    cats.row().cell("Multiply and Divide").cell("MultDiv");
    cats.row().cell("Load immediate").cell("Lui");
    cats.row().cell("Min/Max/Abs/Neg/Mov, Other").cell("Other");

    report.text("Table 2: Benchmark Characteristics");
    report.text("");
    auto &table = report.table("characteristics");
    table.row().cell("benchmark").cell("dyn instr (k)")
         .cell("predicted (k)").cell("predicted %")
         .cell("| paper %").rule();

    for (const auto &run : runs) {
        table.row().cell(run.name);
        table.cell(static_cast<uint64_t>(run.exec.retired / 1000));
        table.cell(static_cast<uint64_t>(run.exec.predicted / 1000));
        table.cell(100.0 * run.exec.predictedFraction(), 1);
        table.cell(paper::table2PredictedPct(run.name), 0);
    }

    report.text("shape check: paper predicted fractions span 62%-84%");
    for (const auto &run : runs) {
        const double pct = 100.0 * run.exec.predictedFraction();
        if (pct < 55.0 || pct > 92.0) {
            report.textf("  WARNING: %s predicted%% = %.1f outside a "
                         "plausible band",
                         run.name.c_str(), pct);
        }
    }
}

// ---------------------------------------------------------------------
// table4 — static count of predicted instructions by type. Absolute
// counts are incomparable to SPEC binaries; the shape check is the
// ranking: AddSub and Loads dominate the static mix.
// ---------------------------------------------------------------------

void
runTable4(ExperimentContext &ctx)
{
    const auto runs = ctx.suite(countingOptions());
    auto &report = ctx.report();

    auto &table = report.table("static_counts");
    table.row().cell("Type");
    for (const auto &run : runs)
        table.cell(run.name);
    table.rule();

    for (int c = 0; c < isa::numPredictedCategories; ++c) {
        const auto cat = static_cast<isa::Category>(c);
        table.row().cell(std::string(isa::categoryName(cat)));
        for (const auto &run : runs)
            table.cell(static_cast<uint64_t>(run.staticByCategory[c]));
    }
    table.rule();
    table.row().cell("total");
    for (const auto &run : runs)
        table.cell(static_cast<uint64_t>(run.staticPredicted));

    report.text("shape check (paper: AddSub + Loads are the two "
                "largest static categories):");
    for (const auto &run : runs) {
        const auto addsub =
                run.staticByCategory[int(isa::Category::AddSub)];
        const auto loads =
                run.staticByCategory[int(isa::Category::Loads)];
        size_t others = 0;
        for (int c = 2; c < isa::numPredictedCategories; ++c)
            others = std::max(others, run.staticByCategory[c]);
        report.textf("  %-9s AddSub=%zu Loads=%zu max(other)=%zu %s",
                     run.name.c_str(), addsub, loads, others,
                     (addsub + loads) > 2 * others ? "ok" : "CHECK");
    }
}

// ---------------------------------------------------------------------
// table5 — dynamic percentage of predicted instructions by type,
// beside the paper's exact values. Shape: AddSub and Loads carry the
// majority of dynamic predictions everywhere.
// ---------------------------------------------------------------------

void
runTable5(ExperimentContext &ctx)
{
    const auto runs = ctx.suite(countingOptions());
    auto &report = ctx.report();

    report.text("each cell: measured (paper)");
    report.text("");

    auto &table = report.table("dynamic_mix");
    table.row().cell("Type");
    for (const auto &run : runs)
        table.cell(run.name);
    table.rule();

    for (int c = 0; c < isa::numPredictedCategories; ++c) {
        const auto cat = static_cast<isa::Category>(c);
        const std::string cat_name(isa::categoryName(cat));
        table.row().cell(cat_name);
        for (const auto &run : runs) {
            char cell[64];
            const double measured =
                    100.0 * run.exec.categoryShare(cat);
            const double paper_pct =
                    paper::table5DynamicPct(run.name, cat_name);
            if (paper_pct > 0)
                std::snprintf(cell, sizeof(cell), "%.1f (%.1f)",
                              measured, paper_pct);
            else
                std::snprintf(cell, sizeof(cell), "%.1f", measured);
            table.cell(cell);
        }
    }

    report.text("shape checks:");
    for (const auto &run : runs) {
        const double addsub =
                100.0 * run.exec.categoryShare(isa::Category::AddSub);
        const double loads =
                100.0 * run.exec.categoryShare(isa::Category::Loads);
        report.textf("  %-9s AddSub+Loads = %.1f%% of predictions %s",
                     run.name.c_str(), addsub + loads,
                     addsub + loads > 50 ? "(majority, ok)"
                                         : "(CHECK)");
    }
}

// ---------------------------------------------------------------------
// table6 — sensitivity of gcc's order-2 fcm accuracy to different
// input files. Paper: 76.0%-78.6% across five .i files.
// ---------------------------------------------------------------------

const std::vector<std::string> &
table6Inputs()
{
    static const std::vector<std::string> inputs = {
        "jump.i", "emit-rtl.i", "gcc.i", "recog.i", "stmt.i",
    };
    return inputs;
}

SuiteOptions
table6Options(const std::string &input)
{
    SuiteOptions options;
    options.predictors = {"fcm2"};
    options.benchmarks = {"gcc"};
    options.config.input = input;
    return options;
}

void
runTable6(ExperimentContext &ctx)
{
    auto &report = ctx.report();
    auto &table = report.table("input_sensitivity");
    table.row().cell("file").cell("predictions (k)")
         .cell("correct %").cell("| paper %").rule();

    std::vector<double> accuracies;
    for (const auto &input : table6Inputs()) {
        const auto runs = ctx.suite(table6Options(input));
        const auto &run = runs.front();
        accuracies.push_back(run.accuracyPct(0));
        table.row().cell(input);
        table.cell(static_cast<uint64_t>(run.exec.predicted / 1000));
        table.cell(run.accuracyPct(0), 1);
        table.cell(paper::table6Accuracy(input), 1);
    }

    const auto [lo, hi] =
            std::minmax_element(accuracies.begin(), accuracies.end());
    report.textf("spread: %.1f points (paper: 2.6 points) — %s",
                 *hi - *lo,
                 *hi - *lo < 8.0 ? "small variation, as in the paper"
                                 : "CHECK: larger than expected");
}

// ---------------------------------------------------------------------
// table7 — sensitivity of gcc's order-2 fcm accuracy to compilation
// flags. Paper: accuracy varies little (75.3%-78.6%) while the
// prediction count varies by >4x.
// ---------------------------------------------------------------------

const std::vector<std::string> &
table7FlagSets()
{
    static const std::vector<std::string> flag_sets = {"none", "O1",
                                                       "O2", "ref"};
    return flag_sets;
}

SuiteOptions
table7Options(const std::string &flags)
{
    SuiteOptions options;
    options.predictors = {"fcm2"};
    options.benchmarks = {"gcc"};
    options.config.flags = flags;
    return options;
}

void
runTable7(ExperimentContext &ctx)
{
    auto &report = ctx.report();
    auto &table = report.table("flag_sensitivity");
    table.row().cell("flags").cell("predictions (k)")
         .cell("correct %").cell("| paper %").rule();

    std::vector<double> accuracies;
    std::vector<uint64_t> counts;
    for (const auto &flags : table7FlagSets()) {
        const auto runs = ctx.suite(table7Options(flags));
        const auto &run = runs.front();
        accuracies.push_back(run.accuracyPct(0));
        counts.push_back(run.exec.predicted);
        table.row().cell(flags);
        table.cell(static_cast<uint64_t>(run.exec.predicted / 1000));
        table.cell(run.accuracyPct(0), 1);
        table.cell(paper::table7Accuracy(flags), 1);
    }

    const auto [lo, hi] =
            std::minmax_element(accuracies.begin(), accuracies.end());
    report.textf("accuracy spread: %.1f points (paper: 3.3) — %s",
                 *hi - *lo,
                 *hi - *lo < 8.0 ? "small variation, as in the paper"
                                 : "CHECK: larger than expected");
    report.textf("work ratio none/ref: %.2fx (paper: runs differ "
                 "while accuracy barely moves)",
                 static_cast<double>(counts.front()) / counts.back());
}

} // anonymous namespace

void
registerTables(ExperimentRegistry &registry)
{
    const auto counting_grid = [](const ExperimentConfig &) {
        return std::vector<SuiteOptions>{countingOptions()};
    };
    registry.add(Experiment{
        "table2",
        "Tables 2 & 3: Benchmark Characteristics and Instruction "
        "Categories",
        "dynamic instruction counts, predicted fractions and the "
        "category definitions",
        counting_grid,
        runTable2,
    });
    registry.add(Experiment{
        "table4",
        "Table 4: Predicted Instructions - Static Count",
        "static count of predicted instructions by type",
        counting_grid,
        runTable4,
    });
    registry.add(Experiment{
        "table5",
        "Table 5: Predicted Instructions - Dynamic (%)",
        "dynamic share of predicted instructions by type vs the "
        "paper's values",
        counting_grid,
        runTable5,
    });
    registry.add(Experiment{
        "table6",
        "Table 6: Sensitivity of 126.gcc to Different Input Files "
        "(order-2 fcm)",
        "gcc fcm2 accuracy across five input files",
        [](const ExperimentConfig &) {
            std::vector<SuiteOptions> grid;
            for (const auto &input : table6Inputs())
                grid.push_back(table6Options(input));
            return grid;
        },
        runTable6,
    });
    registry.add(Experiment{
        "table7",
        "Table 7: Sensitivity of 126.gcc to Input Flags "
        "(input gcc.i, order-2 fcm)",
        "gcc fcm2 accuracy and work across code-generation flag "
        "sets",
        [](const ExperimentConfig &) {
            std::vector<SuiteOptions> grid;
            for (const auto &flags : table7FlagSets())
                grid.push_back(table7Options(flags));
            return grid;
        },
        runTable7,
    });
}

} // namespace vp::exp::experiments
