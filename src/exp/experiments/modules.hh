/**
 * @file
 * Internal wiring of the experiment modules: each translation unit in
 * src/exp/experiments/ registers its experiments through one of these
 * hooks, and experiments/all.cc assembles them into the process-wide
 * registry (exp::experiments()). Explicit registration — rather than
 * static-initializer self-registration — keeps the set deterministic
 * and safe against static libraries dropping unreferenced objects.
 */

#ifndef VP_EXP_EXPERIMENTS_MODULES_HH
#define VP_EXP_EXPERIMENTS_MODULES_HH

#include "exp/experiment.hh"

namespace vp::exp::experiments {

/** Synthetic-sequence studies: table1, figure2. */
void registerLearning(ExperimentRegistry &registry);

/** Suite figures: figure3 through figure11. */
void registerFigures(ExperimentRegistry &registry);

/** Suite tables: table2 (with table 3), table4 through table7. */
void registerTables(ExperimentRegistry &registry);

/** Extension studies: hybrid, ablations, capacity, confidence, and
 *  the replacement-policy sweep. */
void registerStudies(ExperimentRegistry &registry);

} // namespace vp::exp::experiments

#endif // VP_EXP_EXPERIMENTS_MODULES_HH
