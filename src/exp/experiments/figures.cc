/**
 * @file
 * The suite figures of the paper — Figures 3 through 11 — converted
 * from the bench/exp_figure*.cc binaries into registrations. The
 * category figures 4-7 share one helper (the old
 * bench/category_figure.hh, now reduced to a report builder).
 */

#include <string>
#include <vector>

#include "core/improvement.hh"
#include "core/overlap.hh"
#include "core/value_profile.hh"
#include "exp/experiments/modules.hh"
#include "exp/paper_data.hh"

namespace vp::exp::experiments {

namespace {

// ---------------------------------------------------------------------
// figure3 — overall prediction success of l / s2 / fcm1-3 per
// benchmark. Paper: l ~40%, s2 ~56%, fcm3 ~78%, with
// l < s2 < fcm1 < fcm2 < fcm3 throughout.
// ---------------------------------------------------------------------

SuiteOptions
figure3Options()
{
    SuiteOptions options;
    options.predictors = {"l", "s2", "fcm1", "fcm2", "fcm3"};
    return options;
}

void
runFigure3(ExperimentContext &ctx)
{
    const auto options = figure3Options();
    const auto runs = ctx.suite(options);
    auto &report = ctx.report();

    auto &table = report.table("accuracy");
    table.row().cell("benchmark");
    for (const auto &spec : options.predictors)
        table.cell(spec);
    table.cell("| paper fcm3");
    table.rule();

    for (const auto &run : runs) {
        table.row().cell(run.name);
        for (size_t i = 0; i < options.predictors.size(); ++i)
            table.cell(run.accuracyPct(i), 1);
        table.cell(paper::figure3Fcm3(run.name), 0);
    }
    table.rule();
    table.row().cell("mean");
    for (size_t i = 0; i < options.predictors.size(); ++i)
        table.cell(meanAccuracyPct(runs, i), 1);
    table.cell(paper::figure3Fcm3("mean"), 0);

    report.text("shape checks (paper: l < s2 < fcm1 < fcm2 < fcm3):");
    bool ordered = true;
    for (const auto &run : runs) {
        for (size_t i = 1; i < options.predictors.size(); ++i) {
            if (run.accuracyPct(i) + 1e-9 < run.accuracyPct(i - 1)) {
                report.textf("  ORDER VIOLATION in %s: %s (%.1f) < %s "
                             "(%.1f)",
                             run.name.c_str(),
                             options.predictors[i].c_str(),
                             run.accuracyPct(i),
                             options.predictors[i - 1].c_str(),
                             run.accuracyPct(i - 1));
                ordered = false;
            }
        }
    }
    if (ordered)
        report.text("  predictor ordering holds for every benchmark");
    report.textf("  fcm3 - s2 mean gap: %.1f points (paper: ~22)",
                 meanAccuracyPct(runs, 4) - meanAccuracyPct(runs, 1));
}

// ---------------------------------------------------------------------
// figures 4-7 — per-category prediction success, the old
// bench/category_figure.hh hoisted into the ReportWriter model.
// ---------------------------------------------------------------------

void
runCategoryFigure(ExperimentContext &ctx, isa::Category cat,
                  const char *paper_note)
{
    const auto options = figure3Options();
    const auto runs = ctx.suite(options);
    auto &report = ctx.report();

    auto &table = report.table("accuracy");
    table.row().cell("benchmark");
    for (const auto &spec : options.predictors)
        table.cell(spec);
    table.cell("dyn share%");
    table.rule();

    for (const auto &run : runs) {
        table.row().cell(run.name);
        for (size_t i = 0; i < options.predictors.size(); ++i)
            table.cell(run.accuracyPct(i, cat), 1);
        table.cell(100.0 * run.exec.categoryShare(cat), 1);
    }
    table.rule();
    table.row().cell("mean");
    for (size_t i = 0; i < options.predictors.size(); ++i)
        table.cell(meanAccuracyPct(runs, i, cat), 1);
    table.cell("");

    report.textf("paper: %s", paper_note);
}

Experiment
categoryFigure(const std::string &name, int figure_number,
               isa::Category cat, const std::string &description,
               const char *paper_note)
{
    return Experiment{
        name,
        "Figure " + std::to_string(figure_number) +
                ": Prediction Success for " +
                std::string(isa::categoryName(cat)) +
                " Instructions (% of predictions)",
        description,
        [](const ExperimentConfig &) {
            return std::vector<SuiteOptions>{figure3Options()};
        },
        [cat, paper_note](ExperimentContext &ctx) {
            runCategoryFigure(ctx, cat, paper_note);
        },
    };
}

// ---------------------------------------------------------------------
// figure8 — which subsets of {last value, stride, fcm3} predict each
// dynamic instruction correctly. Paper: ~18% predicted by none, ~40%
// by all three, >20% only by fcm.
// ---------------------------------------------------------------------

SuiteOptions
figure8Options()
{
    SuiteOptions options;
    options.predictors = {"l", "s2", "fcm3"};
    options.overlap = 3;
    return options;
}

void
runFigure8(ExperimentContext &ctx)
{
    static const char *bucket_names[8] = {"np", "l",  "s",  "ls",
                                          "f",  "lf", "sf", "lsf"};
    const auto runs = ctx.suite(figure8Options());
    auto &report = ctx.report();

    core::OverlapTracker all(3);
    for (const auto &run : runs)
        all.merge(*run.overlap);

    report.text("subset letters: l = last value, s = stride s2, "
                "f = fcm3; np = none correct");
    report.text("");

    auto &table = report.table("subsets");
    table.row().cell("subset").cell("All");
    for (const auto cat : reportedCategories())
        table.cell(std::string(isa::categoryName(cat)));
    table.rule();
    for (int mask = 0; mask < 8; ++mask) {
        table.row().cell(bucket_names[mask]);
        table.cell(100.0 * all.fraction(static_cast<uint32_t>(mask)),
                   1);
        for (const auto cat : reportedCategories()) {
            table.cell(100.0 * all.fraction(
                               cat, static_cast<uint32_t>(mask)),
                       1);
        }
    }

    const double np = 100.0 * all.fraction(0b000);
    const double lsf = 100.0 * all.fraction(0b111);
    const double f_only = 100.0 * all.fraction(0b100);
    const double not_f_comp = 100.0 * (all.fraction(0b001) +
                                       all.fraction(0b010) +
                                       all.fraction(0b011));
    const double l_only = 100.0 * all.fraction(0b001);

    report.text("summary vs paper:");
    report.textf("  np     = %5.1f%%  (paper ~%.0f%%)", np,
                 paper::Figure8::np);
    report.textf("  lsf    = %5.1f%%  (paper ~%.0f%%)", lsf,
                 paper::Figure8::lsf);
    report.textf("  f only = %5.1f%%  (paper >%.0f%%)", f_only,
                 paper::Figure8::fOnly);
    report.textf("  l/s/ls = %5.1f%%  (paper <5%%: computational "
                 "predictors add little beyond fcm)",
                 not_f_comp);
    report.textf("  l only = %5.1f%%  (paper: last value adds "
                 "almost nothing)",
                 l_only);
    report.textf("  oracle union(l,s,f) accuracy = %.1f%%",
                 100.0 * all.unionFraction(0b111));
}

// ---------------------------------------------------------------------
// figure9 — cumulative improvement of fcm over stride vs the
// percentage of static instructions. Paper: ~20% of statics account
// for ~97% of fcm's total improvement over stride.
// ---------------------------------------------------------------------

SuiteOptions
figure9Options()
{
    SuiteOptions options;
    options.predictors = {"s2", "fcm3"};
    options.improvementA = 1;       // fcm3 ...
    options.improvementB = 0;       // ... over s2
    return options;
}

double
curveValueAt(
        const std::vector<core::ImprovementTracker::CurvePoint> &curve,
        double static_pct)
{
    double best = 0.0;
    for (const auto &point : curve) {
        if (point.staticPct <= static_pct)
            best = point.improvementPct;
        else
            break;
    }
    return best;
}

void
runFigure9(ExperimentContext &ctx)
{
    const auto runs = ctx.suite(figure9Options());
    auto &report = ctx.report();

    report.text("rows: % of static instructions (sorted by "
                "improvement); cells: % of total improvement");
    report.text("");

    auto &table = report.table("improvement");
    table.row().cell("% statics");
    for (const auto &run : runs)
        table.cell(run.name);
    table.rule();

    for (double x : {5.0, 10.0, 15.0, 20.0, 30.0, 40.0, 60.0, 100.0}) {
        char label[16];
        std::snprintf(label, sizeof(label), "%.0f", x);
        table.row().cell(label);
        for (const auto &run : runs) {
            const auto curve = run.improvement->curve();
            table.cell(curveValueAt(curve, x), 1);
        }
    }

    report.text("statics needed for 90% / 97% of the improvement "
                "(paper: ~20% of statics -> ~97%):");
    for (const auto &run : runs) {
        report.textf("  %-9s %5.1f%% / %5.1f%%", run.name.c_str(),
                     run.improvement->staticPctForImprovement(0.90),
                     run.improvement->staticPctForImprovement(0.97));
    }
}

// ---------------------------------------------------------------------
// figure10 — unique values generated per static instruction. Paper:
// >=50% of statics generate one value; ~90% generate fewer than 64.
// ---------------------------------------------------------------------

SuiteOptions
figure10Options()
{
    SuiteOptions options;
    options.predictors = {"l"};
    options.values = true;
    return options;
}

void
runFigure10(ExperimentContext &ctx)
{
    const auto runs = ctx.suite(figure10Options());
    auto &report = ctx.report();

    // The paper aggregates over the whole suite; average the
    // per-benchmark distributions (arithmetic mean, as everywhere).
    auto averaged = [&](std::optional<isa::Category> cat) {
        core::ValueProfiler::Distribution mean{};
        for (const auto &run : runs) {
            const auto dist = run.values->distribution(cat);
            for (int i = 0; i < core::ValueProfiler::numBuckets; ++i) {
                mean.staticShare[i] +=
                        dist.staticShare[i] / runs.size();
                mean.dynamicShare[i] +=
                        dist.dynamicShare[i] / runs.size();
            }
        }
        return mean;
    };

    report.text("cells: % of static (s.) / dynamic (d.) instructions "
                "whose static generates <= N unique values");
    report.text("");

    auto &table = report.table("values");
    table.row().cell("values");
    table.cell("s.All");
    for (const auto cat : reportedCategories())
        table.cell("s." + std::string(isa::categoryName(cat)));
    table.cell("d.All");
    for (const auto cat : reportedCategories())
        table.cell("d." + std::string(isa::categoryName(cat)));
    table.rule();

    const auto all = averaged(std::nullopt);
    std::vector<core::ValueProfiler::Distribution> per_cat;
    for (const auto cat : reportedCategories())
        per_cat.push_back(averaged(cat));

    for (int bucket = 0; bucket < core::ValueProfiler::numBuckets;
         ++bucket) {
        table.row().cell(core::ValueProfiler::bucketLabel(bucket));
        table.cell(100.0 * all.staticShare[bucket], 1);
        for (const auto &dist : per_cat)
            table.cell(100.0 * dist.staticShare[bucket], 1);
        table.cell(100.0 * all.dynamicShare[bucket], 1);
        for (const auto &dist : per_cat)
            table.cell(100.0 * dist.dynamicShare[bucket], 1);
    }

    // The bullet list from Section 4.3.
    double s1 = 0, s64 = 0, d64 = 0, d4096 = 0;
    for (const auto &run : runs) {
        s1 += 100.0 * run.values->staticFractionAtMost(1) / runs.size();
        s64 += 100.0 * run.values->staticFractionAtMost(64) /
               runs.size();
        d64 += 100.0 * run.values->dynamicFractionAtMost(64) /
               runs.size();
        d4096 += 100.0 * run.values->dynamicFractionAtMost(4096) /
                 runs.size();
    }
    report.text("Section 4.3 bullets, measured vs paper:");
    report.textf("  statics generating one value:   %5.1f%%  "
                 "(paper >50%%; proxies lack cold code)",
                 s1);
    report.textf("  statics generating <64 values:  %5.1f%%  "
                 "(paper ~90%%)",
                 s64);
    report.textf("  dynamics from statics <64:      %5.1f%%  "
                 "(paper >50%%)",
                 d64);
    report.textf("  dynamics from statics <=4096:   %5.1f%%  "
                 "(paper >90%%)",
                 d4096);
}

// ---------------------------------------------------------------------
// figure11 — sensitivity of gcc's fcm accuracy to the predictor
// order, orders 1 through 8. Paper: ~71.5% (order 1) to ~83% (order
// 8) with clearly diminishing returns.
// ---------------------------------------------------------------------

SuiteOptions
figure11Options(int order)
{
    SuiteOptions options;
    options.predictors = {"fcm" + std::to_string(order)};
    options.benchmarks = {"gcc"};
    // A slightly reduced scale keeps the order-8 exact tables
    // affordable while using the same input.
    options.config.scale = 60;
    return options;
}

void
runFigure11(ExperimentContext &ctx)
{
    auto &report = ctx.report();
    auto &table = report.table("order_sensitivity");
    table.row().cell("order").cell("accuracy %").cell("gain")
         .cell("| paper %").rule();

    double previous = 0.0;
    std::vector<double> gains;
    for (int order = 1; order <= 8; ++order) {
        const auto runs = ctx.suite(figure11Options(order));
        const double acc = runs.front().accuracyPct(0);

        table.row().cell(order);
        table.cell(acc, 1);
        if (order == 1) {
            table.cell("");
        } else {
            table.cell(acc - previous, 2);
            gains.push_back(acc - previous);
        }
        table.cell(paper::figure11Accuracy(order), 1);
        previous = acc;
    }

    // Diminishing-returns check: later gains smaller than early ones.
    const double early = gains.front();
    const double late = gains.back();
    report.textf("gain order1->2: %.2f, order7->8: %.2f — %s", early,
                 late,
                 late < early ? "diminishing returns, as in the paper"
                              : "CHECK: no diminishing returns");
}

std::vector<SuiteOptions>
singleSuiteGrid(SuiteOptions options)
{
    return {std::move(options)};
}

} // anonymous namespace

void
registerFigures(ExperimentRegistry &registry)
{
    registry.add(Experiment{
        "figure3",
        "Figure 3: Prediction Success for All Instructions "
        "(% of predictions)",
        "overall accuracy of l, s2 and fcm1-3 per benchmark",
        [](const ExperimentConfig &) {
            return singleSuiteGrid(figure3Options());
        },
        runFigure3,
    });
    registry.add(categoryFigure(
            "figure4", 4, isa::Category::AddSub,
            "per-category success: add/subtract instructions",
            "add/subtract is the most stride-predictable category; "
            "stride clearly beats\nlast value here (the predictor "
            "operation matches the instruction), and fcm\nbeats "
            "both."));
    registry.add(categoryFigure(
            "figure5", 5, isa::Category::Loads,
            "per-category success: load instructions",
            "loads are harder than add/subtract for every predictor; "
            "stride gains over\nlast value are small because loaded "
            "values rarely stride."));
    registry.add(categoryFigure(
            "figure6", 6, isa::Category::Logic,
            "per-category success: logic instructions",
            "logical instructions are very predictable, especially "
            "by fcm (flag-like\nvalues recur in patterns); stride "
            "adds little over last value."));
    registry.add(categoryFigure(
            "figure7", 7, isa::Category::Shift,
            "per-category success: shift instructions",
            "shifts are the most difficult category to predict "
            "correctly; the stride\noperation does not match the "
            "shift functionality, so stride sits close to\nlast "
            "value (Section 4.1 suggests per-type computational "
            "predictors)."));
    registry.add(Experiment{
        "figure8",
        "Figure 8: Contribution of different Predictors "
        "(% of predictions)",
        "overlap of the correct sets of l, s2 and fcm3",
        [](const ExperimentConfig &) {
            return singleSuiteGrid(figure8Options());
        },
        runFigure8,
    });
    registry.add(Experiment{
        "figure9",
        "Figure 9: Cumulative Improvement of FCM over Stride",
        "per-static improvement concentration of fcm3 over s2",
        [](const ExperimentConfig &) {
            return singleSuiteGrid(figure9Options());
        },
        runFigure9,
    });
    registry.add(Experiment{
        "figure10",
        "Figure 10: Values and Instruction Behavior",
        "unique values per static instruction, static and dynamic "
        "views",
        [](const ExperimentConfig &) {
            return singleSuiteGrid(figure10Options());
        },
        runFigure10,
    });
    registry.add(Experiment{
        "figure11",
        "Figure 11: Sensitivity of 126.gcc to the FCM Order "
        "(input gcc.i)",
        "gcc accuracy for fcm orders 1 through 8",
        [](const ExperimentConfig &) {
            std::vector<SuiteOptions> grid;
            for (int order = 1; order <= 8; ++order)
                grid.push_back(figure11Options(order));
            return grid;
        },
        runFigure11,
    });
}

} // namespace vp::exp::experiments
