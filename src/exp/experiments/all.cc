#include "exp/experiments/modules.hh"

namespace vp::exp {

ExperimentRegistry &
registry()
{
    static ExperimentRegistry registry = [] {
        ExperimentRegistry r;
        experiments::registerLearning(r);
        experiments::registerFigures(r);
        experiments::registerTables(r);
        experiments::registerStudies(r);
        return r;
    }();
    return registry;
}

} // namespace vp::exp
