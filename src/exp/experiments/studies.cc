/**
 * @file
 * Extension studies beyond the paper's figures: the Section 4.2
 * hybrid, the hysteresis/blending ablations, the capacity and
 * confidence sweeps (converted from their bench binaries), the
 * replacement-policy study — the first experiment born inside the
 * registry rather than as a binary — and the two studies the typed
 * PredictorSpec grammar unlocked: hybrid_split (one global budget
 * shared by a composed hybrid's chooser/stride/fcm tables) and
 * aliasing (partial-tag widths vs full-key tables).
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/bounded.hh"
#include "core/overlap.hh"
#include "exp/capacity.hh"
#include "exp/confidence.hh"
#include "exp/experiments/modules.hh"

namespace vp::exp::experiments {

namespace {

// ---------------------------------------------------------------------
// hybrid — the chooser hybrid vs its components and the oracle union
// (Section 4.2: "use a stride predictor for most predictions, and
// use fcm prediction to get the remaining 20%").
// ---------------------------------------------------------------------

SuiteOptions
hybridOptions()
{
    SuiteOptions options;
    options.predictors = {"s2", "fcm3", "hybrid"};
    options.overlap = 2;            // s2 | fcm3 union = oracle
    return options;
}

void
runHybrid(ExperimentContext &ctx)
{
    const auto runs = ctx.suite(hybridOptions());
    auto &report = ctx.report();

    auto &table = report.table("accuracy");
    table.row().cell("benchmark").cell("s2").cell("fcm3")
         .cell("hybrid").cell("oracle").cell("hybrid-fcm3").rule();

    double mean_h = 0, mean_f = 0, mean_o = 0;
    for (const auto &run : runs) {
        const double s2 = run.accuracyPct(0);
        const double fcm3 = run.accuracyPct(1);
        const double hybrid = run.accuracyPct(2);
        const double oracle =
                100.0 * run.overlap->unionFraction(0b11);
        mean_h += hybrid / runs.size();
        mean_f += fcm3 / runs.size();
        mean_o += oracle / runs.size();
        table.row().cell(run.name);
        table.cell(s2, 1);
        table.cell(fcm3, 1);
        table.cell(hybrid, 1);
        table.cell(oracle, 1);
        table.cell(hybrid - fcm3, 1);
    }

    report.textf("mean: hybrid %.1f%% vs fcm3 %.1f%% vs oracle %.1f%%",
                 mean_h, mean_f, mean_o);
    report.text("shape: the chooser hybrid should recover most of "
                "the oracle gap over fcm3\nby delegating "
                "stride-friendly statics (fresh strides) to s2.");
}

// ---------------------------------------------------------------------
// ablation_blending — fcm blending with lazy exclusion (the paper's
// configuration) vs full blending vs none, and exact counts vs small
// saturating counters (Section 2.2).
// ---------------------------------------------------------------------

SuiteOptions
blendingOptions()
{
    SuiteOptions options;
    options.predictors = {"fcm3", "fcm3-full", "fcm3-pure",
                          "fcm3-sat"};
    return options;
}

void
runAblationBlending(ExperimentContext &ctx)
{
    const auto options = blendingOptions();
    const auto runs = ctx.suite(options);
    auto &report = ctx.report();

    report.text("fcm3 = lazy exclusion + exact counts (the paper's "
                "configuration)");
    report.text("");

    auto &table = report.table("accuracy");
    table.row().cell("benchmark").cell("lazy").cell("full")
         .cell("no-blend").cell("small-ctr").rule();
    for (const auto &run : runs) {
        table.row().cell(run.name);
        for (size_t i = 0; i < options.predictors.size(); ++i)
            table.cell(run.accuracyPct(i), 1);
    }
    table.rule();
    table.row().cell("mean");
    for (size_t i = 0; i < options.predictors.size(); ++i)
        table.cell(meanAccuracyPct(runs, i), 1);

    const double lazy = meanAccuracyPct(runs, 0);
    const double pure = meanAccuracyPct(runs, 2);
    report.textf("expectations: blending >> no blending (order-3 "
                 "contexts alone leave cold-start\nholes): lazy=%.1f "
                 "no-blend=%.1f %s; small counters track exact counts "
                 "closely\n(recency weighting rarely hurts).",
                 lazy, pure, lazy > pure ? "(ok)" : "(CHECK)");
}

// ---------------------------------------------------------------------
// ablation_hysteresis — hysteresis policies of the computational
// predictors (Section 2.1).
// ---------------------------------------------------------------------

SuiteOptions
hysteresisOptions()
{
    SuiteOptions options;
    options.predictors = {"l", "l-sat", "l-consec", "s", "s-sat",
                          "s2"};
    return options;
}

void
runAblationHysteresis(ExperimentContext &ctx)
{
    const auto options = hysteresisOptions();
    const auto runs = ctx.suite(options);
    auto &report = ctx.report();

    auto &table = report.table("accuracy");
    table.row().cell("benchmark");
    for (const auto &spec : options.predictors)
        table.cell(spec);
    table.rule();
    for (const auto &run : runs) {
        table.row().cell(run.name);
        for (size_t i = 0; i < options.predictors.size(); ++i)
            table.cell(run.accuracyPct(i), 1);
    }
    table.rule();
    table.row().cell("mean");
    for (size_t i = 0; i < options.predictors.size(); ++i)
        table.cell(meanAccuracyPct(runs, i), 1);

    const double s = meanAccuracyPct(runs, 3);
    const double s_sat = meanAccuracyPct(runs, 4);
    const double s2 = meanAccuracyPct(runs, 5);
    report.textf("expectations: two-delta (s2) >= saturating >= naive "
                 "stride on repeated\nstride sequences (one vs two "
                 "misses per period): s=%.1f s-sat=%.1f s2=%.1f %s",
                 s, s_sat, s2,
                 (s2 + 0.5 >= s_sat && s_sat + 0.5 >= s) ? "(ok)"
                                                         : "(CHECK)");
}

// ---------------------------------------------------------------------
// capacity — bounded predictor accuracy per total entry budget,
// converging to the unbounded idealisation (the §5 future work).
// ---------------------------------------------------------------------

void
runCapacity(ExperimentContext &ctx)
{
    CapacitySweep sweep;
    sweep.runs = ctx.suite(capacitySweepOptions({}));
    const auto &families = capacityFamilies();
    const auto &points = capacitySweepPoints();
    auto &report = ctx.report();

    report.text("(16-way LRU; fcm splits its budget 1:3 between VHT "
                "and VPT, 4 followers per entry)");
    report.text("");

    for (const auto &run : sweep.runs) {
        report.text(run.name);
        auto &table = report.table("accuracy_" + run.name);
        auto &header = table.row().cell("entries");
        for (const auto &family : families)
            header.cell(family);
        table.rule();
        for (size_t p = 0; p < points.size(); ++p) {
            auto &row = table.row().cell(
                    static_cast<uint64_t>(points[p]));
            for (size_t f = 0; f < families.size(); ++f)
                row.cell(run.accuracyPct(
                                 CapacitySweep::specIndex(f, p)),
                         2);
        }
        auto &last = table.row().cell("unbounded");
        for (size_t f = 0; f < families.size(); ++f)
            last.cell(run.accuracyPct(
                              CapacitySweep::unboundedIndex(f)),
                      2);
    }

    report.text("Suite mean (paper averaging rule)");
    auto &mean = report.table("accuracy_mean");
    auto &header = mean.row().cell("entries");
    for (const auto &family : families)
        header.cell(family);
    mean.rule();
    for (size_t p = 0; p < points.size(); ++p) {
        auto &row = mean.row().cell(static_cast<uint64_t>(points[p]));
        for (size_t f = 0; f < families.size(); ++f)
            row.cell(meanAccuracyPct(sweep.runs,
                                     CapacitySweep::specIndex(f, p)),
                     2);
    }
    auto &last = mean.row().cell("unbounded");
    for (size_t f = 0; f < families.size(); ++f)
        last.cell(meanAccuracyPct(sweep.runs,
                                  CapacitySweep::unboundedIndex(f)),
                  2);

    report.text("shape check: largest budget within 0.1pp of "
                "unbounded per workload");
    bool converged = true;
    for (const auto &run : sweep.runs) {
        for (size_t f = 0; f < families.size(); ++f) {
            const double bounded = run.accuracyPct(
                    CapacitySweep::specIndex(f, points.size() - 1));
            const double unbounded = run.accuracyPct(
                    CapacitySweep::unboundedIndex(f));
            const double gap = unbounded - bounded;
            if (gap > 0.1 || gap < -0.1) {
                report.textf("  WARNING: %s/%s gap %.3fpp at %zu "
                             "entries",
                             run.name.c_str(), families[f].c_str(),
                             gap, points.back());
                converged = false;
            }
        }
    }
    if (converged)
        report.text("  all families converged");
}

// ---------------------------------------------------------------------
// confidence — the gated coverage/accuracy/profit sweep (Section 4
// speculation control), per family over a width x threshold grid.
// ---------------------------------------------------------------------

std::string
pointLabel(const ConfidencePoint &point)
{
    // snprintf instead of "c" + to_string(...): GCC 12's -Wrestrict
    // false-positives on const char* + std::string&& (as in
    // isa/disasm.cc).
    char buf[32];
    std::snprintf(buf, sizeof(buf), "c%dt%d", point.width,
                  point.threshold);
    return buf;
}

void
runConfidence(ExperimentContext &ctx)
{
    ConfidenceSweep sweep;
    sweep.runs = ctx.suite(confidenceSweepOptions({}));
    const auto &families = confidenceFamilies();
    const auto &points = confidenceSweepPoints();
    auto &report = ctx.report();

    report.text("(cWtT = width W bits, predict at counter >= T, reset "
                "on miss; cov = %\nof eligible events predicted, acc "
                "= % correct of those)");
    report.text("");

    for (const auto &run : sweep.runs) {
        report.text(run.name);
        auto &table = report.table("gates_" + run.name);
        auto &header = table.row().cell("gate");
        for (const auto &family : families) {
            header.cell(family + " cov");
            header.cell("acc");
        }
        table.rule();
        auto &ungated = table.row().cell("none");
        for (size_t f = 0; f < families.size(); ++f) {
            const auto &stats =
                    run.predictors
                            .at(ConfidenceSweep::ungatedIndex(f))
                            .second;
            ungated.cell(100.0 * stats.coverage(), 1);
            ungated.cell(100.0 * stats.accuracyWhenPredicted(), 1);
        }
        for (size_t p = 0; p < points.size(); ++p) {
            auto &row = table.row().cell(pointLabel(points[p]));
            for (size_t f = 0; f < families.size(); ++f) {
                const auto &stats =
                        run.predictors
                                .at(ConfidenceSweep::specIndex(f, p))
                                .second;
                row.cell(100.0 * stats.coverage(), 1);
                row.cell(100.0 * stats.accuracyWhenPredicted(), 1);
            }
        }
    }

    report.text("Suite mean (paper averaging rule)");
    auto &mean = report.table("gates_mean");
    auto &header = mean.row().cell("gate");
    for (const auto &family : families) {
        header.cell(family + " cov");
        header.cell("acc");
    }
    mean.rule();
    auto &ungated = mean.row().cell("none");
    for (size_t f = 0; f < families.size(); ++f) {
        const size_t index = ConfidenceSweep::ungatedIndex(f);
        ungated.cell(meanCoveragePct(sweep.runs, index), 1);
        ungated.cell(meanAccuracyWhenPredictedPct(sweep.runs, index),
                     1);
    }
    for (size_t p = 0; p < points.size(); ++p) {
        auto &row = mean.row().cell(pointLabel(points[p]));
        for (size_t f = 0; f < families.size(); ++f) {
            const size_t index = ConfidenceSweep::specIndex(f, p);
            row.cell(meanCoveragePct(sweep.runs, index), 1);
            row.cell(meanAccuracyWhenPredictedPct(sweep.runs, index),
                     1);
        }
    }

    for (const double cost : speculationCosts()) {
        report.textf("Suite-mean profit per eligible event at "
                     "misprediction cost %.0f",
                     cost);
        auto &profit = report.table(
                "profit_cost" +
                std::to_string(static_cast<int>(cost)));
        auto &phead = profit.row().cell("gate");
        for (const auto &family : families)
            phead.cell(family);
        profit.rule();
        auto &pu = profit.row().cell("none");
        for (size_t f = 0; f < families.size(); ++f) {
            pu.cell(meanProfit(sweep.runs,
                               ConfidenceSweep::ungatedIndex(f), cost),
                    3);
        }
        for (size_t p = 0; p < points.size(); ++p) {
            auto &row = profit.row().cell(pointLabel(points[p]));
            for (size_t f = 0; f < families.size(); ++f) {
                row.cell(meanProfit(sweep.runs,
                                    ConfidenceSweep::specIndex(f, p),
                                    cost),
                         3);
            }
        }
    }

    report.text("shape check: a gated fcm3 point beats ungated fcm3 "
                "on profit at every cost >= 1");
    size_t fcm3 = 0;
    for (size_t f = 0; f < families.size(); ++f) {
        if (families[f] == "fcm3")
            fcm3 = f;
    }
    bool all_beat = true;
    for (const double cost : speculationCosts()) {
        const double base = meanProfit(
                sweep.runs, ConfidenceSweep::ungatedIndex(fcm3), cost);
        double best = base;
        std::string best_label = "none";
        for (size_t p = 0; p < points.size(); ++p) {
            const double gated = meanProfit(
                    sweep.runs, ConfidenceSweep::specIndex(fcm3, p),
                    cost);
            if (gated > best) {
                best = gated;
                best_label = pointLabel(points[p]);
            }
        }
        report.textf("  cost %.0f: ungated %.3f, best %s %.3f", cost,
                     base, best_label.c_str(), best);
        if (best_label == "none")
            all_beat = false;
    }
    report.text(all_beat
                        ? "  gating pays at every cost"
                        : "  WARNING: gating never beat ungated fcm3");
}

// ---------------------------------------------------------------------
// replacement — LRU vs FIFO vs deterministic-random victims across
// the capacity grid (the ROADMAP replacement-policy study; the first
// experiment registered directly in the framework). Where does the
// victim policy matter, and where does capacity dominate?
// ---------------------------------------------------------------------

const std::vector<core::Replacement> &
replacementPolicies()
{
    static const std::vector<core::Replacement> policies = {
        core::Replacement::Lru,
        core::Replacement::Fifo,
        core::Replacement::Random,
    };
    return policies;
}

const char *
policyName(core::Replacement policy)
{
    switch (policy) {
    case core::Replacement::Lru: return "lru";
    case core::Replacement::Fifo: return "fifo";
    case core::Replacement::Random: return "random";
    }
    return "?";
}

/**
 * Bank layout, family-major: unbounded first, then budgets x policies
 * (policy-minor). The LRU points reuse the exact capacity-sweep specs
 * (boundedSpecFor canonicalises LRU to no suffix), so a combined
 * `vpexp capacity replacement` run dedups nothing *across* cells but
 * shares each workload's recorded trace.
 */
std::vector<std::string>
replacementSweepSpecs()
{
    std::vector<std::string> specs;
    for (const auto &family : capacityFamilies()) {
        specs.push_back(family);
        for (const size_t entries : capacitySweepPoints()) {
            for (const auto policy : replacementPolicies())
                specs.push_back(
                        boundedSpecFor(family, entries, policy));
        }
    }
    return specs;
}

size_t
replacementSpecIndex(size_t family_index, size_t budget_index,
                     size_t policy_index)
{
    const size_t per_budget = replacementPolicies().size();
    const size_t stride = 1 + capacitySweepPoints().size() * per_budget;
    return family_index * stride + 1 + budget_index * per_budget +
           policy_index;
}

size_t
replacementUnboundedIndex(size_t family_index)
{
    const size_t per_budget = replacementPolicies().size();
    const size_t stride = 1 + capacitySweepPoints().size() * per_budget;
    return family_index * stride;
}

SuiteOptions
replacementOptions()
{
    SuiteOptions options;
    options.predictors = replacementSweepSpecs();
    return options;
}

void
runReplacement(ExperimentContext &ctx)
{
    const auto runs = ctx.suite(replacementOptions());
    const auto &families = capacityFamilies();
    const auto &points = capacitySweepPoints();
    const auto &policies = replacementPolicies();
    auto &report = ctx.report();

    report.text("(16-way tables on the capacity-sweep grid; cells: "
                "suite-mean accuracy %, paper averaging rule;\n"
                "spread = best policy - worst policy, gap = unbounded "
                "- best policy)");
    report.text("");

    // Where the policy matters most, per family: remembered while
    // printing the per-family tables, summarised after them.
    std::vector<double> max_spread(families.size(), 0.0);
    std::vector<size_t> max_spread_budget(families.size(), 0);

    for (size_t f = 0; f < families.size(); ++f) {
        report.text(families[f]);
        auto &table = report.table("policy_" + families[f]);
        auto &header = table.row().cell("entries");
        for (const auto policy : policies)
            header.cell(policyName(policy));
        header.cell("spread").cell("gap");
        table.rule();

        const double unbounded = meanAccuracyPct(
                runs, replacementUnboundedIndex(f));
        for (size_t p = 0; p < points.size(); ++p) {
            auto &row = table.row().cell(
                    static_cast<uint64_t>(points[p]));
            double best = 0.0, worst = 100.0;
            for (size_t pol = 0; pol < policies.size(); ++pol) {
                const double acc = meanAccuracyPct(
                        runs, replacementSpecIndex(f, p, pol));
                best = std::max(best, acc);
                worst = std::min(worst, acc);
                row.cell(acc, 2);
            }
            row.cell(best - worst, 2);
            row.cell(unbounded - best, 2);
            if (best - worst > max_spread[f]) {
                max_spread[f] = best - worst;
                max_spread_budget[f] = points[p];
            }
        }
        auto &last = table.row().cell("unbounded");
        for (size_t pol = 0; pol < policies.size(); ++pol)
            last.cell(unbounded, 2);
        last.cell("").cell("");
    }

    report.text("where the victim policy matters:");
    for (size_t f = 0; f < families.size(); ++f) {
        if (max_spread[f] > 0.0) {
            report.textf("  %-5s max policy spread %.2fpp at %zu "
                         "entries",
                         families[f].c_str(), max_spread[f],
                         max_spread_budget[f]);
        } else {
            report.textf("  %-5s policies never diverged on this grid",
                         families[f].c_str());
        }
    }
    report.text("expected shape: at tiny budgets *capacity* misses "
                "dominate and every policy is\nequally starved; at "
                "ample budgets nothing evicts and the policies "
                "converge to the\nunbounded column — the policy "
                "choice matters only in the conflict-bound middle\n"
                "of the grid, and LRU is never the worst of the "
                "three.");
}

// ---------------------------------------------------------------------
// hybrid_split — one global §4.3 budget shared by a bounded hybrid's
// chooser, stride, and fcm tables, swept over a ratio grid (the
// ROADMAP hybrid-budget-splits item, expressible only since the spec
// grammar grew composed hybrids: hybrid(s2@...,fcm3@...;ch@...)).
// ---------------------------------------------------------------------

/** One way to carve a global budget, in sixteenths. */
struct HybridSplit
{
    int chooser;
    int stride;
    int fcm;
};

const std::vector<HybridSplit> &
hybridSplits()
{
    // Chooser 1/16 .. 4/16, stride 2/16 .. 10/16, the rest to fcm
    // (which spends its share 1:3 VHT:VPT like the capacity sweep).
    static const std::vector<HybridSplit> splits = {
        {1, 3, 12}, {2, 2, 12}, {2, 6, 8}, {2, 10, 4}, {4, 4, 8},
    };
    return splits;
}

const std::vector<size_t> &
hybridSplitBudgets()
{
    // Sixteenths stay way-aligned (16-way tables) for budgets >= 4096.
    static const std::vector<size_t> budgets = {
        4096, 16384, 65536, 1048576,
    };
    return budgets;
}

std::string
splitLabel(const HybridSplit &split)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%d:%d:%d", split.chooser,
                  split.stride, split.fcm);
    return buf;
}

std::string
hybridSplitSpec(size_t budget, const HybridSplit &split)
{
    const size_t chooser = budget * split.chooser / 16;
    const size_t stride = budget * split.stride / 16;
    const size_t fcm = budget - chooser - stride;
    const size_t vht = fcm / 4;
    return "hybrid(s2@" + std::to_string(stride) + "x16,fcm3@" +
           std::to_string(vht) + "/" + std::to_string(fcm - vht) +
           "x16;ch@" + std::to_string(chooser) + "x16)";
}

/** Bank layout: unbounded hybrid first, then budgets x splits
 *  (split-minor). */
size_t
hybridSplitIndex(size_t budget_index, size_t split_index)
{
    return 1 + budget_index * hybridSplits().size() + split_index;
}

SuiteOptions
hybridSplitOptions()
{
    SuiteOptions options;
    options.predictors = {"hybrid"};
    for (const size_t budget : hybridSplitBudgets()) {
        for (const auto &split : hybridSplits())
            options.predictors.push_back(hybridSplitSpec(budget, split));
    }
    return options;
}

void
runHybridSplit(ExperimentContext &ctx)
{
    const auto runs = ctx.suite(hybridSplitOptions());
    const auto &splits = hybridSplits();
    const auto &budgets = hybridSplitBudgets();
    auto &report = ctx.report();

    report.text("(cells: suite-mean accuracy %, paper averaging rule; "
                "split = chooser:stride:fcm in\nsixteenths of one "
                "global entry budget; 16-way LRU tables, fcm share "
                "1:3 VHT:VPT)");
    report.text("");

    const double unbounded = meanAccuracyPct(runs, 0);
    auto &table = report.table("splits");
    auto &header = table.row().cell("split");
    for (const size_t budget : budgets)
        header.cell(static_cast<uint64_t>(budget));
    table.rule();
    std::vector<double> best(budgets.size(), 0.0);
    std::vector<size_t> best_split(budgets.size(), 0);
    for (size_t s = 0; s < splits.size(); ++s) {
        auto &row = table.row().cell(splitLabel(splits[s]));
        for (size_t b = 0; b < budgets.size(); ++b) {
            const double acc =
                    meanAccuracyPct(runs, hybridSplitIndex(b, s));
            if (acc > best[b]) {
                best[b] = acc;
                best_split[b] = s;
            }
            row.cell(acc, 2);
        }
    }
    table.rule();
    auto &last = table.row().cell("unbounded");
    for (size_t b = 0; b < budgets.size(); ++b)
        last.cell(unbounded, 2);

    for (size_t b = 0; b < budgets.size(); ++b) {
        report.textf("  %7zu entries: best split %s (%.2f%%, gap to "
                     "unbounded %.2fpp)",
                     budgets[b], splitLabel(splits[best_split[b]]).c_str(),
                     best[b], unbounded - best[b]);
    }
    const double gap = unbounded - best.back();
    report.textf("shape check: top-budget bounded hybrid within 0.1pp "
                 "of unbounded: %.3fpp %s",
                 gap, gap <= 0.1 ? "(ok)" : "(CHECK)");
    report.text("expected shape: at starved budgets the fcm-heavy "
                "splits win (contexts dominate\nthe working set) and "
                "a thin 1/16 chooser is enough; spending more than "
                "1/4 on the\nchooser never pays.");
}

// ---------------------------------------------------------------------
// aliasing — partial-tag widths vs the full-key baseline across the
// capacity grid (the ROADMAP partial-tags item): what does shrinking
// the stored tag cost, and where does constructive aliasing mask it?
// ---------------------------------------------------------------------

const std::vector<int> &
aliasingTagWidths()
{
    // Descending = tightening: 16 bits is near-lossless for
    // PC-indexed tables, 4 bits aliases aggressively everywhere.
    static const std::vector<int> widths = {16, 8, 4};
    return widths;
}

/** Bank layout, family-major: unbounded, then per budget the
 *  full-key baseline followed by the tag widths. */
std::vector<std::string>
aliasingSweepSpecs()
{
    std::vector<std::string> specs;
    for (const auto &family : capacityFamilies()) {
        specs.push_back(family);
        for (const size_t entries : capacitySweepPoints()) {
            const std::string base = boundedSpecFor(family, entries);
            specs.push_back(base);
            for (const int bits : aliasingTagWidths()) {
                std::string tagged = base;
                tagged += "%";
                tagged += std::to_string(bits);
                specs.push_back(std::move(tagged));
            }
        }
    }
    return specs;
}

size_t
aliasingSpecIndex(size_t family_index, size_t budget_index,
                  size_t variant_index)     // 0 = full key, then tags
{
    const size_t per_budget = 1 + aliasingTagWidths().size();
    const size_t stride = 1 + capacitySweepPoints().size() * per_budget;
    return family_index * stride + 1 + budget_index * per_budget +
           variant_index;
}

size_t
aliasingUnboundedIndex(size_t family_index)
{
    const size_t per_budget = 1 + aliasingTagWidths().size();
    const size_t stride = 1 + capacitySweepPoints().size() * per_budget;
    return family_index * stride;
}

SuiteOptions
aliasingOptions()
{
    SuiteOptions options;
    options.predictors = aliasingSweepSpecs();
    return options;
}

void
runAliasing(ExperimentContext &ctx)
{
    const auto runs = ctx.suite(aliasingOptions());
    const auto &families = capacityFamilies();
    const auto &points = capacitySweepPoints();
    const auto &widths = aliasingTagWidths();
    auto &report = ctx.report();

    report.text("(16-way LRU tables on the capacity-sweep grid; cells: "
                "suite-mean accuracy %,\npaper averaging rule; %T "
                "stores only the low T key bits as the tag, so\n"
                "distinct keys alias — constructively when the "
                "foreign entry happens to be\nright, destructively "
                "otherwise; drift = full-key - 4-bit column)");
    report.text("");

    // Where partial tags hurt most, per family.
    std::vector<double> max_drift(families.size(), 0.0);
    std::vector<size_t> max_drift_budget(families.size(), 0);

    for (size_t f = 0; f < families.size(); ++f) {
        report.text(families[f]);
        auto &table = report.table("tags_" + families[f]);
        auto &header = table.row().cell("entries").cell("full");
        for (const int bits : widths) {
            std::string label = "%";
            label += std::to_string(bits);
            header.cell(label);
        }
        header.cell("drift");
        table.rule();
        for (size_t p = 0; p < points.size(); ++p) {
            auto &row = table.row().cell(
                    static_cast<uint64_t>(points[p]));
            const double full = meanAccuracyPct(
                    runs, aliasingSpecIndex(f, p, 0));
            row.cell(full, 2);
            double narrowest = full;
            for (size_t w = 0; w < widths.size(); ++w) {
                narrowest = meanAccuracyPct(
                        runs, aliasingSpecIndex(f, p, 1 + w));
                row.cell(narrowest, 2);
            }
            row.cell(full - narrowest, 2);
            if (full - narrowest > max_drift[f]) {
                max_drift[f] = full - narrowest;
                max_drift_budget[f] = points[p];
            }
        }
        auto &last = table.row().cell("unbounded");
        last.cell(meanAccuracyPct(runs, aliasingUnboundedIndex(f)), 2);
        for (size_t w = 0; w <= widths.size(); ++w)
            last.cell("");
    }

    report.text("where partial tags hurt:");
    for (size_t f = 0; f < families.size(); ++f) {
        if (max_drift[f] > 0.0) {
            report.textf("  %-5s max 4-bit-tag drift %.2fpp at %zu "
                         "entries",
                         families[f].c_str(), max_drift[f],
                         max_drift_budget[f]);
        } else {
            report.textf("  %-5s 4-bit tags never lost to full keys "
                         "on this grid",
                         families[f].c_str());
        }
    }

    // Alias outcome anatomy, from the tables' own shadow counters
    // (core/bounded_table.hh): 4096 sequential static PCs — the
    // address stream a real PC-indexed table sees — on a 256-entry
    // table. Every second PC produces one shared constant (aliasing
    // among those entries is harmless), the rest per-PC values
    // (aliasing onto them mispredicts). No workload cells: the
    // stream is synthetic, like table1's.
    report.text("");
    report.text("alias outcomes, synthetic stream (4096 sequential "
                "statics, 256-entry 4-way lv\ntable; every 2nd PC a "
                "shared constant, the rest per-PC values):");
    auto &anatomy = report.table("alias_outcomes");
    anatomy.row().cell("tag").cell("aliased updates")
            .cell("constructive").cell("destructive").rule();
    for (const int bits : widths) {
        core::BoundedTableConfig geometry;
        geometry.entries = 256;
        geometry.ways = 4;
        geometry.tagBits = bits;
        core::BoundedLastValuePredictor lv({}, geometry);
        for (uint64_t round = 0; round < 8; ++round) {
            for (uint64_t pc = 0; pc < 4096; ++pc)
                lv.update(pc, pc % 2 == 0 ? 42 : pc * 7 + 1);
        }
        std::string label = "%";
        label += std::to_string(bits);
        auto &row = anatomy.row().cell(label);
        row.cell(static_cast<uint64_t>(lv.table().aliasedTouches()));
        row.cell(static_cast<uint64_t>(lv.table().aliasConstructive()));
        row.cell(static_cast<uint64_t>(lv.table().aliasDestructive()));
    }
    report.text("expected: narrower tags alias more; the "
                "constant-valued half of the stream\naliases "
                "constructively (the foreign entry already holds the "
                "right value), the\nper-PC half destructively.");

    report.text("expected shape: 16-bit tags track the full-key "
                "columns (PC working sets fit\n16 bits; fcm context "
                "hashes rarely collide in the low 16); 4-bit tags "
                "alias\nhard once capacity stops being the binding "
                "constraint — destructive aliasing\ngrows with the "
                "budget, the inverse of the capacity gap.");
}

} // anonymous namespace

void
registerStudies(ExperimentRegistry &registry)
{
    registry.add(Experiment{
        "hybrid",
        "Extension (Section 4.2): hybrid stride+fcm with a "
        "PC-indexed chooser",
        "chooser hybrid vs its components vs the oracle union",
        [](const ExperimentConfig &) {
            return std::vector<SuiteOptions>{hybridOptions()};
        },
        runHybrid,
    });
    registry.add(Experiment{
        "ablation_blending",
        "Ablation: fcm blending and counter policies "
        "(order 3, % correct)",
        "fcm lazy exclusion vs full vs no blending vs small "
        "counters",
        [](const ExperimentConfig &) {
            return std::vector<SuiteOptions>{blendingOptions()};
        },
        runAblationBlending,
    });
    registry.add(Experiment{
        "ablation_hysteresis",
        "Ablation: hysteresis policies of the computational "
        "predictors (% correct)",
        "last-value and stride update-policy variants side by side",
        [](const ExperimentConfig &) {
            return std::vector<SuiteOptions>{hysteresisOptions()};
        },
        runAblationHysteresis,
    });
    registry.add(Experiment{
        "capacity",
        "Capacity sweep: bounded predictor accuracy (%) per total "
        "entry budget",
        "bounded tables from 256 entries to the unbounded "
        "idealisation",
        [](const ExperimentConfig &) {
            return std::vector<SuiteOptions>{capacitySweepOptions({})};
        },
        runCapacity,
    });
    registry.add(Experiment{
        "confidence",
        "Confidence sweep: gating predictions on per-PC saturating "
        "counters",
        "coverage/accuracy/profit over a counter width x threshold "
        "grid",
        [](const ExperimentConfig &) {
            return std::vector<SuiteOptions>{
                confidenceSweepOptions({})};
        },
        runConfidence,
    });
    registry.add(Experiment{
        "replacement",
        "Replacement-policy study: LRU vs FIFO vs random victims "
        "across the capacity grid",
        "where the victim policy matters vs where capacity "
        "dominates",
        [](const ExperimentConfig &) {
            return std::vector<SuiteOptions>{replacementOptions()};
        },
        runReplacement,
    });
    registry.add(Experiment{
        "hybrid_split",
        "Hybrid budget splits: chooser/stride/fcm sharing one global "
        "entry budget (Section 4.3)",
        "bounded hybrid accuracy over a chooser:stride:fcm ratio "
        "grid per budget",
        [](const ExperimentConfig &) {
            return std::vector<SuiteOptions>{hybridSplitOptions()};
        },
        runHybridSplit,
    });
    registry.add(Experiment{
        "aliasing",
        "Partial tags: tag-width sweep vs full-key tables across "
        "the capacity grid",
        "constructive vs destructive aliasing as hardware tag "
        "widths shrink",
        [](const ExperimentConfig &) {
            return std::vector<SuiteOptions>{aliasingOptions()};
        },
        runAliasing,
    });
}

} // namespace vp::exp::experiments
