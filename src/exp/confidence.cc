#include "exp/confidence.hh"

namespace vp::exp {

const std::vector<std::string> &
confidenceFamilies()
{
    static const std::vector<std::string> families = {
        "l", "s2", "fcm1", "fcm2", "fcm3", "hybrid",
    };
    return families;
}

const std::vector<ConfidencePoint> &
confidenceSweepPoints()
{
    // Width-major, thresholds ascending: within one width the gate
    // only tightens, which is the monotone coverage/accuracy walk the
    // report shows and the tests assert. Width 3 is where the grid
    // stops paying: the threshold-7 points already decline most
    // events on the weaker families.
    static const std::vector<ConfidencePoint> points = [] {
        std::vector<ConfidencePoint> grid;
        for (const int width : {1, 2, 3}) {
            const int max = (1 << width) - 1;
            for (int threshold = 1; threshold <= max; ++threshold)
                grid.push_back({width, threshold});
        }
        return grid;
    }();
    return points;
}

const std::vector<double> &
speculationCosts()
{
    // 1 = a miss forfeits one hit (squash and refetch next cycle);
    // 4 and 8 approximate deeper recovery, where gating starts to
    // dominate raw coverage.
    static const std::vector<double> costs = {1.0, 4.0, 8.0};
    return costs;
}

std::string
confidenceSpecFor(const std::string &base, const ConfidencePoint &point)
{
    return base + ":c" + std::to_string(point.width) + "t" +
           std::to_string(point.threshold);
}

std::vector<std::string>
confidenceSweepSpecs()
{
    std::vector<std::string> specs;
    for (const auto &family : confidenceFamilies()) {
        specs.push_back(family);
        for (const auto &point : confidenceSweepPoints())
            specs.push_back(confidenceSpecFor(family, point));
    }
    return specs;
}

size_t
ConfidenceSweep::specIndex(size_t family_index, size_t point_index)
{
    const size_t stride = 1 + confidenceSweepPoints().size();
    return family_index * stride + 1 + point_index;
}

size_t
ConfidenceSweep::ungatedIndex(size_t family_index)
{
    const size_t stride = 1 + confidenceSweepPoints().size();
    return family_index * stride;
}

SuiteOptions
confidenceSweepOptions(SuiteOptions base_options)
{
    base_options.predictors = confidenceSweepSpecs();
    base_options.overlap = 0;
    base_options.improvementA = base_options.improvementB = 0;
    base_options.values = false;
    return base_options;
}

ConfidenceSweep
runConfidenceSweep(const SuiteOptions &base_options)
{
    ConfidenceSweep sweep;
    sweep.runs = runSuite(confidenceSweepOptions(base_options));
    return sweep;
}

namespace {

template <typename Fn>
double
meanOver(const std::vector<BenchmarkRun> &runs, Fn value)
{
    if (runs.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &run : runs)
        sum += value(run);
    return sum / static_cast<double>(runs.size());
}

} // anonymous namespace

double
meanCoveragePct(const std::vector<BenchmarkRun> &runs, size_t index)
{
    return meanOver(runs, [index](const BenchmarkRun &run) {
        return 100.0 * run.predictors.at(index).second.coverage();
    });
}

double
meanAccuracyWhenPredictedPct(const std::vector<BenchmarkRun> &runs,
                             size_t index)
{
    return meanOver(runs, [index](const BenchmarkRun &run) {
        return 100.0 *
               run.predictors.at(index).second.accuracyWhenPredicted();
    });
}

double
meanProfit(const std::vector<BenchmarkRun> &runs, size_t index,
           double cost)
{
    return meanOver(runs, [index, cost](const BenchmarkRun &run) {
        return run.predictors.at(index).second.profit(cost);
    });
}

} // namespace vp::exp
