/**
 * @file
 * The experiment framework: a declarative registry of every
 * table/figure/study reproduced from the paper, and the cell-level
 * scheduler that runs them.
 *
 * An Experiment is a registration, not a binary: a name, a
 * declarative grid of (predictor-spec x workload x config) cells, and
 * a reduce/report hook that turns resolved cells into a Report
 * (exp/report.hh). The single `vpexp` driver (bench/vpexp.cc) replaces
 * the 22 per-figure bench binaries; adding a new study is ~20 lines
 * in src/exp/experiments/.
 *
 * Scheduling is per *cell* — one (workload, predictor-bank) run —
 * generalising the per-workload std::async pool in suite.cc:
 *
 *  - identical cells requested by different experiments are
 *    deduplicated (figures 3-7 all bank {l, s2, fcm1-3}; tables 2/4/5
 *    all bank {l}) and their BenchmarkRun shared;
 *  - every cell replays the workload's recorded value trace
 *    (SuiteOptions::traceReplay), so distinct banks over the same
 *    workload pay for VM execution once per process;
 *  - a fixed worker pool (--jobs) crunches the prefetched grid of
 *    every selected experiment at once, so a multi-experiment run is
 *    never slower than running the legacy binaries serially.
 *
 * Results are byte-identical to a serial run regardless of the worker
 * count: cells are independent (fresh predictor bank per cell, the
 * invariant inherited from runSuite) and collected in request order.
 */

#ifndef VP_EXP_EXPERIMENT_HH
#define VP_EXP_EXPERIMENT_HH

#include <deque>
#include <functional>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "exp/report.hh"
#include "exp/suite.hh"
#include "obs/registry.hh"
#include "util/mutex.hh"

namespace vp::obs {
class TraceLog;
} // namespace vp::obs

namespace vp::exp {

/** Run-wide settings every cell and hook sees. */
struct ExperimentConfig
{
    /** Shrink every workload to smoke scale (the legacy --dry-run). */
    bool dryRun = false;

    /**
     * Trace-replay cache directory for all cells; empty = the
     * per-process temp cache (see SuiteOptions::traceCacheDir).
     */
    std::string traceCacheDir;

    /**
     * Split every cell's trace into this many regions replayed as
     * separate tasks on the worker pool, merging per-region stats
     * (`vpexp --regions`). Cells with trackers enabled fall back to a
     * single whole-trace task. 1 = today's serial replay,
     * byte-identical results.
     */
    unsigned regions = 1;

    /** Warm-up window per region (`vpexp --warmup`). */
    uint64_t warmupEvents = defaultWarmupEvents;

    /**
     * Windowed replay telemetry for every cell (`vpexp --window`):
     * close a statistics window every this many events (0 = off).
     * Part of a cell's identity — the series changes what a cell
     * computes — and it forces whole-trace serial replay (see
     * SuiteOptions::windowEvents).
     */
    uint64_t windowEvents = 0;

    /**
     * Run-wide timeline log (`vpexp --trace-json`); the scheduler
     * hands it to every cell's instrumentation so cell, region,
     * warm-up, trace-cache and report spans land on one timeline.
     * Owned by the driver, null = off. Not part of any cell's
     * identity.
     */
    obs::TraceLog *traceLog = nullptr;
};

/** The workload scale --dry-run shrinks to (same as smoke_test). */
constexpr int dryRunScale = 5;

/**
 * Canonicalise @p options for use as a cell: apply the dry-run scale,
 * force trace replay through @p config's cache, neutralise the fields
 * a cell run ignores (parallelism, disabled improvement pairs) so
 * equal work always yields equal dedup keys.
 */
SuiteOptions normalizeCellOptions(SuiteOptions options,
                                  const ExperimentConfig &config);

/**
 * The cell-level worker pool shared by every experiment in a run.
 *
 * Thread-safe: hooks may request suites from any thread; each unique
 * cell runs exactly once and its result is shared. Exceptions from a
 * cell (unknown workload, unbuildable predictor spec) rethrow from
 * every suite() that requested it, first failing workload in request
 * order.
 */
class CellScheduler
{
  public:
    /** Aggregate result of one unique cell, for machine output. */
    struct CellRecord
    {
        std::string workload;
        workloads::WorkloadConfig config;
        double wallMs = 0.0;

        /**
         * Queue wait: time between submit() and the first worker
         * picking up one of the cell's tasks. wallMs starts at that
         * pickup, so wallMs + queuedMs is the submit-to-done latency.
         */
        double queuedMs = 0.0;
        bool done = false;

        /** Dynamic eligible (predicted) events the cell replayed;
         *  wallMs * 1e6 / events is the cell's ns-per-event. */
        uint64_t events = 0;

        /** Regions the cell's replay was split into (1 = serial). */
        unsigned regions = 1;

        /** (spec, stats) per predictor, bank order. */
        std::vector<std::pair<std::string, core::PredictionStats>>
                predictors;

        /**
         * The cell's merged counters/gauges/histograms, snapshot
         * from its private registry after the cell finished (see
         * obs/registry.hh for the merge rules). Region-split cells
         * sum their per-region banks into one snapshot.
         */
        obs::Snapshot counters;

        /** Windowed telemetry (ExperimentConfig::windowEvents > 0). */
        sim::WindowSeries windows;
    };

    /** Scheduler-level completion counts, for live progress lines. */
    struct Progress
    {
        size_t cellsDone = 0;
        size_t cellsTotal = 0;      ///< unique cells submitted so far
        size_t tasksDone = 0;       ///< worker tasks (regions count)
        size_t tasksTotal = 0;
    };

    /** @p jobs worker threads; 0 = the hardware concurrency. */
    explicit CellScheduler(const ExperimentConfig &config,
                           unsigned jobs = 0);
    ~CellScheduler();

    CellScheduler(const CellScheduler &) = delete;
    CellScheduler &operator=(const CellScheduler &) = delete;

    /** Queue every cell of @p options without waiting for results. */
    void prefetch(const SuiteOptions &options);

    /**
     * Resolve every cell of @p options (benchmarks empty = all seven,
     * paper order) and return the runs in request order — the
     * cell-scheduled equivalent of runSuite. Appends the unique-cell
     * ids backing the result to @p cell_ids when given.
     */
    std::vector<BenchmarkRun> suite(const SuiteOptions &options,
                                    std::vector<size_t> *cell_ids =
                                            nullptr);

    unsigned workers() const { return workers_; }

    /** Cells requested via prefetch/suite, dedup hits included. */
    size_t requestedCells() const;

    /** Unique cells actually scheduled. */
    size_t uniqueCells() const;

    /** Snapshot of the per-cell records, id order. Records of cells
     *  still in flight have done == false. */
    std::vector<CellRecord> records() const;

    /** Completion counts at this instant (thread-safe). */
    Progress progress() const;

  private:
    struct RegionAssembly;
    struct CellObs;

    std::shared_future<BenchmarkRun> submit(const std::string &workload,
                                            const SuiteOptions &options,
                                            size_t *id);
    void workerLoop();

    ExperimentConfig config_;
    unsigned workers_ = 1;      ///< set once in the ctor, then read-only

    mutable util::Mutex mutex_;
    util::CondVar available_;
    bool stop_ VP_GUARDED_BY(mutex_) = false;
    /**
     * Unit of worker execution. A serial cell is one task fulfilling
     * its promise directly; a region-split cell enqueues one task per
     * region and the last region to finish merges and fulfills — no
     * task ever blocks on another task, so any worker count
     * (including 1) drains the queue without deadlock.
     */
    std::deque<std::packaged_task<void()>> queue_ VP_GUARDED_BY(mutex_);
    std::map<std::string,
             std::pair<size_t, std::shared_future<BenchmarkRun>>>
            cells_ VP_GUARDED_BY(mutex_);
    std::vector<CellRecord> records_ VP_GUARDED_BY(mutex_);
    size_t requested_ VP_GUARDED_BY(mutex_) = 0;
    size_t cellsDone_ VP_GUARDED_BY(mutex_) = 0;
    size_t tasksDone_ VP_GUARDED_BY(mutex_) = 0;
    size_t tasksTotal_ VP_GUARDED_BY(mutex_) = 0;
    std::vector<std::thread> threads_;      ///< ctor/dtor only
};

/**
 * What an experiment's run hook sees: the shared scheduler, the run
 * configuration, and the Report it fills in.
 */
class ExperimentContext
{
  public:
    ExperimentContext(const ExperimentConfig &config,
                      CellScheduler &scheduler)
        : config_(config), scheduler_(scheduler)
    {
    }

    const ExperimentConfig &config() const { return config_; }
    bool dryRun() const { return config_.dryRun; }

    /** Cell-scheduled suite run (see CellScheduler::suite). */
    std::vector<BenchmarkRun> suite(const SuiteOptions &options);

    Report &report() { return report_; }

    /** Unique-cell ids this context consumed, first-use order. */
    const std::vector<size_t> &cellsUsed() const { return cellsUsed_; }

  private:
    const ExperimentConfig &config_;
    CellScheduler &scheduler_;
    Report report_;
    std::vector<size_t> cellsUsed_;
};

/** One registered experiment. */
struct Experiment
{
    /** Registry key and CLI name: "figure3", "table1", "capacity". */
    std::string name;

    /** Heading printed above the report. */
    std::string title;

    /** One-liner for `vpexp --list`. */
    std::string description;

    /**
     * The declarative cell grid: every suite the run hook will
     * request, so the driver can prefetch all cells of all selected
     * experiments before any hook blocks on a result. Experiments
     * with no workload cells (synthetic-sequence studies) leave it
     * null or return {}.
     */
    std::function<std::vector<SuiteOptions>(const ExperimentConfig &)>
            grid;

    /** Reduce/report hook: consume resolved cells, fill the report. */
    std::function<void(ExperimentContext &)> run;
};

/** Name-keyed experiment collection, registration order preserved. */
class ExperimentRegistry
{
  public:
    /**
     * Register @p experiment.
     * @throws std::invalid_argument on an empty/duplicate name or a
     * missing run hook — the unique-name invariant the tests pin.
     */
    void add(Experiment experiment);

    /** Look up by name; nullptr when absent. */
    const Experiment *find(const std::string &name) const;

    const std::vector<Experiment> &all() const { return experiments_; }
    size_t size() const { return experiments_.size(); }

  private:
    std::vector<Experiment> experiments_;
};

/**
 * The process-wide registry holding every experiment of the paper
 * reproduction plus the extension studies (defined in
 * src/exp/experiments/, assembled in experiments/all.cc).
 */
ExperimentRegistry &registry();

} // namespace vp::exp

#endif // VP_EXP_EXPERIMENT_HH
