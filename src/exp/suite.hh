/**
 * @file
 * Suite harness shared by every experiment.
 *
 * Runs the canonical benchmark suite (the seven SPEC95int proxies)
 * against a configurable set of predictors in one trace pass per
 * benchmark, and returns plain-value results that the registered
 * experiments (src/exp/experiments/, via exp/experiment.hh) reduce
 * into reports.
 */

#ifndef VP_EXP_SUITE_HH
#define VP_EXP_SUITE_HH

#include <optional>
#include <string>
#include <vector>

#include "core/improvement.hh"
#include "core/overlap.hh"
#include "core/predictor.hh"
#include "core/stats.hh"
#include "core/value_profile.hh"
#include "sim/driver.hh"
#include "vm/exec_stats.hh"
#include "workloads/workload.hh"

namespace vp::obs {
class Instrumentation;
} // namespace vp::obs

namespace vp::exp {

/**
 * Default warm-up window for region-parallel replay: events replayed
 * (training tables, not counted) before a mid-trace region so the
 * region starts from trained state. 128k events is comfortably past
 * the point where every registry predictor's tables saturate — the
 * deepest (fcm3) needs ~100k before its drift vs a serial replay
 * falls under 0.1pp (region_replay_test pins the bound).
 */
constexpr uint64_t defaultWarmupEvents = 131072;

/**
 * Create a predictor from a spec string — a thin shim over the typed
 * PredictorSpec model: parseSpec(spec).build().
 *
 * The grammar (families, "@" capacity budgets with optional "%" tag
 * widths, "hybrid(a,b;ch@...)" compositions, ":cWtT" confidence
 * gates) is documented once in exp::specGrammarHelp() — see
 * exp/spec.hh, or run `vpexp --spec-help`.
 *
 * @throws std::invalid_argument for malformed specs, naming the
 * offending position and token.
 */
core::PredictorPtr makePredictor(const std::string &spec);

/** What to run and what to observe. */
struct SuiteOptions
{
    /** Predictor specs evaluated side by side on the same trace. */
    std::vector<std::string> predictors = {"l", "s2", "fcm1", "fcm2",
                                           "fcm3"};

    /** Benchmarks to run; empty = all seven, paper order. */
    std::vector<std::string> benchmarks;

    /** Workload input/flags/scale. */
    workloads::WorkloadConfig config;

    /** Track correct-set overlap over the first N predictors (0 off). */
    int overlap = 0;

    /**
     * Track per-static improvement of predictors[improvementA] over
     * predictors[improvementB] (Figure 9). Off when A == B.
     */
    size_t improvementA = 0;
    size_t improvementB = 0;

    /** Track unique values per static instruction (Figure 10). */
    bool values = false;

    /**
     * Worker threads for runSuite. 0 = auto (one per benchmark, up
     * to the hardware concurrency); 1 = serial reference behavior.
     * Each benchmark gets a fresh VM and predictor bank, so results
     * are identical to a serial run and always returned in request
     * (paper) order regardless of this setting.
     */
    unsigned parallelism = 0;

    /**
     * Record-once / replay-many: on the first run of a workload
     * configuration, execute the VM once and record its value trace
     * (vm::TraceWriter) plus an exec-stats sidecar to the cache
     * directory; every run — including that first one — then feeds
     * the predictor bank by replaying the file (vm::TraceReader), so
     * results are byte-identical to live execution (pinned by
     * suite_test) while repeated sweeps over the same workloads pay
     * for VM execution only once per process.
     */
    bool traceReplay = false;

    /**
     * Cache directory for traceReplay. Empty = a unique per-process
     * directory under the system temp dir, removed at process exit,
     * so a stale trace from an older binary is never replayed; set
     * it explicitly to share recordings across processes (then *you*
     * own invalidating it when workloads change).
     */
    std::string traceCacheDir;

    /**
     * Split the recorded trace into this many regions and merge the
     * per-region statistics (runBenchmark replays them serially; the
     * CellScheduler fans them out over its worker pool). Requires
     * traceReplay; falls back to a whole-trace replay when any
     * tracker (overlap / improvement / values) is enabled, because
     * trackers hold per-static state that does not merge. Region
     * results drift from serial replay only by the finite warm-up
     * window (≤0.1pp at the default; pinned by region_replay_test).
     */
    unsigned regions = 1;

    /** Warm-up window per region (events before the region trained
     *  into tables but excluded from statistics). */
    uint64_t warmupEvents = defaultWarmupEvents;

    /**
     * Windowed replay telemetry: close a statistics window every this
     * many events and record per-predictor coverage/accuracy deltas
     * into BenchmarkRun::windows (0 = off). Requires traceReplay and
     * forces a whole-trace serial replay (regionReplayApplies returns
     * false): windows are positions in the global event stream, which
     * region-parallel replay does not preserve. Never changes the
     * per-event protocol — stats with windowing on are byte-identical
     * to windowing off.
     */
    uint64_t windowEvents = 0;

    /**
     * Optional per-cell instrumentation handle (obs/instrumentation.hh):
     * the harness pulls predictor-table counters, trace I/O and cache
     * hit/miss/record counts into its registry and records timeline
     * spans on its trace log. Null = off (the default): no counter is
     * read, no name is formatted, replay is byte- and time-identical.
     * Not part of a cell's identity — two runs differing only here are
     * the same experiment (see exp/experiment.hh cell keys).
     */
    obs::Instrumentation *instrumentation = nullptr;
};

/** Results for one benchmark. */
struct BenchmarkRun
{
    std::string name;
    vm::ExecStats exec;
    size_t staticPredicted = 0;
    std::array<size_t, isa::numCategories> staticByCategory{};

    /** (spec, stats) per predictor, in SuiteOptions order. */
    std::vector<std::pair<std::string, core::PredictionStats>> predictors;

    std::optional<core::OverlapTracker> overlap;
    std::optional<core::ImprovementTracker> improvement;
    std::optional<core::ValueProfiler> values;

    /** Windowed telemetry (SuiteOptions::windowEvents > 0 only). */
    sim::WindowSeries windows;

    /** Accuracy (in percent) of the predictor at @p index. */
    double accuracyPct(size_t index) const;
    double accuracyPct(size_t index, isa::Category cat) const;
};

/** Run one benchmark under the given options. */
BenchmarkRun runBenchmark(const std::string &name,
                          const SuiteOptions &options);

/** One region of a trace split into W contiguous pieces. */
struct TraceRegion
{
    uint64_t begin = 0;
    uint64_t end = 0;       ///< exclusive
};

/**
 * Partition @p events into @p regions contiguous [begin, end) pieces
 * whose sizes differ by at most one event (the first `events % regions`
 * regions get the extra one). Regions beyond the event count are
 * empty.
 */
std::vector<TraceRegion> planTraceRegions(uint64_t events,
                                          unsigned regions);

/**
 * True when @p options replay region by region: traceReplay on,
 * regions > 1, and no tracker enabled (trackers hold per-static state
 * that cannot be merged across regions).
 */
bool regionReplayApplies(const SuiteOptions &options);

/** Per-region statistics, merged by mergeRegionPartials. */
struct RegionPartial
{
    unsigned region = 0;        ///< region index in [0, regions)
    uint64_t events = 0;        ///< non-warm-up events replayed
    /** One PredictionStats per predictor, SuiteOptions order. */
    std::vector<core::PredictionStats> stats;
};

/**
 * Replay one region of @p name's recorded trace (recording it first
 * if the cache is cold) with the options' warm-up window, and return
 * the per-predictor statistics of the region alone.
 */
RegionPartial runBenchmarkRegion(const std::string &name,
                                 const SuiteOptions &options,
                                 unsigned region);

/**
 * Merge per-region partials (any order; one per region) into the
 * BenchmarkRun a serial whole-trace replay would produce — exec stats
 * from the recording sidecar, static counts from the program, and
 * per-predictor statistics summed region by region.
 */
BenchmarkRun mergeRegionPartials(const std::string &name,
                                 const SuiteOptions &options,
                                 std::vector<RegionPartial> partials);

/** Run all requested benchmarks. */
std::vector<BenchmarkRun> runSuite(const SuiteOptions &options);

/**
 * Arithmetic mean of per-benchmark accuracies (percent) for predictor
 * @p index, the paper's averaging rule ("each benchmark effectively
 * contributes the same number of total predictions").
 */
double meanAccuracyPct(const std::vector<BenchmarkRun> &runs,
                       size_t index);

double meanAccuracyPct(const std::vector<BenchmarkRun> &runs,
                       size_t index, isa::Category cat);

/** The per-category codes the paper reports figures for. */
const std::vector<isa::Category> &reportedCategories();

} // namespace vp::exp

#endif // VP_EXP_SUITE_HH
