#include "exp/report.hh"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <sstream>

#include "sim/table.hh"

namespace vp::exp {

ReportTable &
ReportTable::row()
{
    rows_.emplace_back();
    return *this;
}

ReportTable &
ReportTable::cell(const std::string &text)
{
    if (rows_.empty())
        row();
    rows_.back().push_back(Cell{text, false, 0.0});
    return *this;
}

ReportTable &
ReportTable::cell(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    if (rows_.empty())
        row();
    rows_.back().push_back(Cell{buf, true, value});
    return *this;
}

ReportTable &
ReportTable::cell(uint64_t value)
{
    if (rows_.empty())
        row();
    rows_.back().push_back(
            Cell{std::to_string(value), true, static_cast<double>(value)});
    return *this;
}

ReportTable &
ReportTable::cell(int64_t value)
{
    if (rows_.empty())
        row();
    rows_.back().push_back(
            Cell{std::to_string(value), true, static_cast<double>(value)});
    return *this;
}

ReportTable &
ReportTable::rule()
{
    if (!rows_.empty())
        rules_.push_back(rows_.size() - 1);
    return *this;
}

void
Report::text(const std::string &line)
{
    size_t start = 0;
    for (;;) {
        const auto nl = line.find('\n', start);
        blocks_.push_back(
                Block{false, line.substr(start, nl - start), 0});
        if (nl == std::string::npos)
            break;
        start = nl + 1;
    }
}

void
Report::textf(const char *format, ...)
{
    va_list args;
    va_start(args, format);
    va_list probe;
    va_copy(probe, args);
    const int needed = std::vsnprintf(nullptr, 0, format, probe);
    va_end(probe);
    std::string line(needed > 0 ? needed : 0, '\0');
    if (needed > 0)
        std::vsnprintf(line.data(), line.size() + 1, format, args);
    va_end(args);
    text(line);
}

ReportTable &
Report::table(const std::string &id)
{
    blocks_.push_back(Block{true, "", tables_.size()});
    tables_.emplace_back(id);
    return tables_.back();
}

namespace report_writer {

std::string
renderText(const Report &report)
{
    std::ostringstream out;
    for (const auto &block : report.blocks()) {
        if (!block.isTable) {
            out << block.text << '\n';
            continue;
        }
        const auto &table = report.tables()[block.tableIndex];
        sim::TextTable text;
        for (size_t r = 0; r < table.rows().size(); ++r) {
            text.row();
            for (const auto &cell : table.rows()[r])
                text.cell(cell.text, cell.numeric);
            for (const size_t rule : table.rules()) {
                if (rule == r)
                    text.rule();
            }
        }
        out << text.render() << '\n';
    }
    return out.str();
}

std::string
renderCsv(const ReportTable &table)
{
    std::ostringstream out;
    for (const auto &row : table.rows()) {
        for (size_t i = 0; i < row.size(); ++i) {
            if (i)
                out << ',';
            const auto &text = row[i].text;
            if (text.find_first_of(",\"\n") != std::string::npos) {
                out << '"';
                for (const char c : text) {
                    if (c == '"')
                        out << '"';
                    out << c;
                }
                out << '"';
            } else {
                out << text;
            }
        }
        out << '\n';
    }
    return out.str();
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const unsigned char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", value);
    return buf;
}

std::string
renderJson(const Report &report)
{
    std::ostringstream out;
    out << "{\"notes\": [";
    bool first = true;
    for (const auto &block : report.blocks()) {
        if (block.isTable)
            continue;
        if (!first)
            out << ", ";
        first = false;
        out << '"' << jsonEscape(block.text) << '"';
    }
    out << "], \"tables\": {";
    for (size_t t = 0; t < report.tables().size(); ++t) {
        const auto &table = report.tables()[t];
        if (t)
            out << ", ";
        out << '"' << jsonEscape(table.id()) << "\": [";
        for (size_t r = 0; r < table.rows().size(); ++r) {
            if (r)
                out << ", ";
            out << '[';
            const auto &row = table.rows()[r];
            for (size_t i = 0; i < row.size(); ++i) {
                if (i)
                    out << ", ";
                if (row[i].numeric)
                    out << jsonNumber(row[i].value);
                else
                    out << '"' << jsonEscape(row[i].text) << '"';
            }
            out << ']';
        }
        out << ']';
    }
    out << "}}";
    return out.str();
}

} // namespace report_writer

} // namespace vp::exp
