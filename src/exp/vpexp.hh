/**
 * @file
 * The `vpexp` driver: one CLI over the experiment registry, replacing
 * the 22 per-figure bench binaries.
 *
 *   vpexp --list                        what can run
 *   vpexp figure5 table1 --out results/ run two experiments, write
 *                                       text + CSV + BENCH_results.json
 *   vpexp --all --dry-run               smoke the whole registry
 *   vpexp --all --jobs 4 --format json  machine-readable to stdout
 *
 * Exit codes: 0 success, 1 an experiment failed, 2 usage error — the
 * uniform contract the legacy binaries' hand-rolled parsers only
 * approximated.
 *
 * Lives in the library (not bench/vpexp.cc, which is a two-line
 * main()) so the driver tests exercise parsing, listing, output
 * selection and report writing in-process.
 */

#ifndef VP_EXP_VPEXP_HH
#define VP_EXP_VPEXP_HH

namespace vp::exp {

/** Run the vpexp CLI against the process-wide experiment registry. */
int vpexpMain(int argc, const char *const *argv);

} // namespace vp::exp

#endif // VP_EXP_VPEXP_HH
