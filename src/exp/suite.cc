#include "exp/suite.hh"

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>

#include <unistd.h>

#include "core/bounded.hh"
#include "core/confidence.hh"
#include "core/fcm.hh"
#include "core/hybrid.hh"
#include "core/last_value.hh"
#include "core/stride.hh"
#include "sim/driver.hh"
#include "vm/trace_file.hh"

namespace vp::exp {

namespace {

std::optional<core::LvConfig>
lvConfigFor(const std::string &spec)
{
    using namespace core;
    LvConfig config;
    if (spec == "l")
        return config;
    if (spec == "l-sat") {
        config.policy = LvPolicy::SaturatingCounter;
        return config;
    }
    if (spec == "l-consec") {
        config.policy = LvPolicy::Consecutive;
        return config;
    }
    return std::nullopt;
}

std::optional<core::StrideConfig>
strideConfigFor(const std::string &spec)
{
    using namespace core;
    StrideConfig config;
    if (spec == "s") {
        config.policy = StridePolicy::Simple;
        return config;
    }
    if (spec == "s-sat") {
        config.policy = StridePolicy::SaturatingCounter;
        return config;
    }
    if (spec == "s2")
        return config;
    return std::nullopt;
}

std::optional<core::FcmConfig>
fcmConfigFor(const std::string &spec)
{
    using namespace core;
    if (spec.rfind("fcm", 0) != 0)
        return std::nullopt;
    const auto rest = spec.substr(3);
    const auto dash = rest.find('-');
    const std::string num = rest.substr(0, dash);
    const std::string variant =
            dash == std::string::npos ? "" : rest.substr(dash + 1);
    if (num.empty() ||
        num.find_first_not_of("0123456789") != std::string::npos) {
        return std::nullopt;
    }
    FcmConfig config;
    try {
        config.order = std::stoi(num);
    } catch (const std::out_of_range &) {
        // Keep makePredictor's invalid_argument-only contract.
        throw std::invalid_argument("fcm order overflows in spec: " +
                                    spec);
    }
    if (variant == "full") {
        config.blending = FcmBlending::Full;
    } else if (variant == "pure") {
        config.blending = FcmBlending::None;
    } else if (variant == "sat") {
        config.counterMax = 16;
    } else if (!variant.empty()) {
        throw std::invalid_argument("unknown fcm variant: " + spec);
    }
    return config;
}

size_t
parseEntryCount(const std::string &text, const std::string &spec)
{
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos) {
        throw std::invalid_argument("bad entry count in spec: " + spec);
    }
    try {
        return static_cast<size_t>(std::stoull(text));
    } catch (const std::out_of_range &) {
        // Keep makePredictor's invalid_argument-only contract.
        throw std::invalid_argument("entry count overflows in spec: " +
                                    spec);
    }
}

/** Parsed "<E>[/<P>][x<W|fa>][r|f]" capacity suffix. */
struct ParsedBudget
{
    size_t entries = 0;
    std::optional<size_t> vptEntries;
    size_t ways = 4;
    core::Replacement replacement = core::Replacement::Lru;
};

ParsedBudget
parseBudget(std::string text, const std::string &spec)
{
    ParsedBudget budget;
    if (!text.empty() && (text.back() == 'r' || text.back() == 'f')) {
        budget.replacement = text.back() == 'r'
                                     ? core::Replacement::Random
                                     : core::Replacement::Fifo;
        text.pop_back();
    }
    if (const auto x = text.find('x'); x != std::string::npos) {
        const std::string ways = text.substr(x + 1);
        if (ways == "fa") {
            budget.ways = 0;
        } else {
            budget.ways = parseEntryCount(ways, spec);
            if (budget.ways == 0) {
                // 0 is the internal fully-associative encoding; the
                // grammar reserves the explicit "fa" spelling for it.
                throw std::invalid_argument(
                        "ways must be positive (use 'xfa' for fully "
                        "associative): " + spec);
            }
        }
        text = text.substr(0, x);
    }
    if (const auto slash = text.find('/'); slash != std::string::npos) {
        budget.vptEntries =
                parseEntryCount(text.substr(slash + 1), spec);
        text = text.substr(0, slash);
    }
    budget.entries = parseEntryCount(text, spec);
    return budget;
}

core::PredictorPtr
makeBoundedPredictor(const std::string &base, const ParsedBudget &budget,
                     const std::string &spec)
{
    using namespace core;
    BoundedTableConfig table;
    table.entries = budget.entries;
    table.ways = budget.ways;
    table.replacement = budget.replacement;

    if (const auto lv = lvConfigFor(base)) {
        if (budget.vptEntries) {
            throw std::invalid_argument(
                    "vht/vpt split only applies to fcm: " + spec);
        }
        return std::make_unique<BoundedLastValuePredictor>(*lv, table);
    }
    if (const auto stride = strideConfigFor(base)) {
        if (budget.vptEntries) {
            throw std::invalid_argument(
                    "vht/vpt split only applies to fcm: " + spec);
        }
        return std::make_unique<BoundedStridePredictor>(*stride, table);
    }
    if (const auto fcm = fcmConfigFor(base)) {
        if (!budget.vptEntries) {
            throw std::invalid_argument(
                    "bounded fcm needs <vht>/<vpt> entry counts: " +
                    spec);
        }
        BoundedFcmConfig config;
        config.fcm = *fcm;
        config.vht = table;
        config.vpt = table;
        config.vpt.entries = *budget.vptEntries;
        config.maxFollowers = 4;    // realistic per-entry budget
        return std::make_unique<BoundedFcmPredictor>(config);
    }
    throw std::invalid_argument("unknown predictor spec: " + spec);
}

int
parseConfidenceInt(const std::string &text, const std::string &spec)
{
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos) {
        throw std::invalid_argument("bad confidence suffix in spec: " +
                                    spec);
    }
    try {
        const int value = std::stoi(text);
        return value;
    } catch (const std::out_of_range &) {
        // Keep makePredictor's invalid_argument-only contract.
        throw std::invalid_argument(
                "confidence parameter overflows in spec: " + spec);
    }
}

/** Parse "c<W>t<T>[r|d]" (the part after the ':'). */
core::ConfidenceConfig
parseConfidence(std::string text, const std::string &spec)
{
    using namespace core;
    ConfidenceConfig config;
    if (!text.empty() && (text.back() == 'r' || text.back() == 'd')) {
        config.penalty = text.back() == 'd' ? ConfidencePenalty::Decrement
                                            : ConfidencePenalty::Reset;
        text.pop_back();
    }
    if (text.empty() || text.front() != 'c') {
        throw std::invalid_argument("bad confidence suffix in spec: " +
                                    spec);
    }
    const auto t = text.find('t');
    if (t == std::string::npos) {
        throw std::invalid_argument("bad confidence suffix in spec: " +
                                    spec);
    }
    config.width = parseConfidenceInt(text.substr(1, t - 1), spec);
    config.threshold = parseConfidenceInt(text.substr(t + 1), spec);
    if (config.width < 1 || config.width > 16) {
        throw std::invalid_argument(
                "confidence width must be in [1, 16]: " + spec);
    }
    return config;
}

} // anonymous namespace

core::PredictorPtr
makePredictor(const std::string &spec)
{
    using namespace core;

    if (const auto colon = spec.find(':'); colon != std::string::npos) {
        return std::make_unique<ConfidencePredictor>(
                makePredictor(spec.substr(0, colon)),
                parseConfidence(spec.substr(colon + 1), spec));
    }

    if (const auto at = spec.find('@'); at != std::string::npos) {
        return makeBoundedPredictor(spec.substr(0, at),
                                    parseBudget(spec.substr(at + 1),
                                                spec),
                                    spec);
    }

    if (const auto lv = lvConfigFor(spec))
        return std::make_unique<LastValuePredictor>(*lv);
    if (const auto stride = strideConfigFor(spec))
        return std::make_unique<StridePredictor>(*stride);
    if (spec == "hybrid")
        return std::make_unique<HybridPredictor>();
    if (const auto fcm = fcmConfigFor(spec))
        return std::make_unique<FcmPredictor>(*fcm);

    throw std::invalid_argument("unknown predictor spec: " + spec);
}

double
BenchmarkRun::accuracyPct(size_t index) const
{
    return 100.0 * predictors.at(index).second.accuracy();
}

double
BenchmarkRun::accuracyPct(size_t index, isa::Category cat) const
{
    return 100.0 * predictors.at(index).second.accuracy(cat);
}

namespace {

namespace fs = std::filesystem;

/**
 * The default trace cache: a mkdtemp-unique directory (PID reuse must
 * not resurrect a previous binary's recordings) removed when the
 * process exits, so the temp dir does not accumulate one cache per
 * run.
 */
const fs::path &
processTraceCacheDir()
{
    static const struct ProcessDir
    {
        fs::path path;

        ProcessDir()
        {
            std::string templ =
                    (fs::temp_directory_path() / "vp-traces-XXXXXX")
                            .string();
            if (::mkdtemp(templ.data()) == nullptr) {
                throw std::runtime_error(
                        "cannot create trace cache directory: " + templ);
            }
            path = templ;
        }

        ~ProcessDir()
        {
            std::error_code ec;       // best effort; never throw here
            fs::remove_all(path, ec);
        }
    } dir;
    return dir.path;
}

/**
 * Trace-cache layout: one <workload>-<input>-<flags>-s<scale>.vpt
 * trace plus a .meta sidecar holding the dynamic ExecStats the replay
 * path cannot recompute without executing the VM.
 */
fs::path
traceCacheBase(const std::string &name, const SuiteOptions &options)
{
    const fs::path dir = options.traceCacheDir.empty()
                                 ? processTraceCacheDir()
                                 : fs::path(options.traceCacheDir);
    fs::create_directories(dir);
    return dir / (name + "-" + options.config.input + "-" +
                  options.config.flags + "-s" +
                  std::to_string(options.config.scale));
}

/** One mutex per cache entry so parallel suite workers record
 *  different workloads concurrently but never the same one twice. */
std::mutex &
traceCacheMutex(const fs::path &base)
{
    static std::mutex table_mutex;
    static std::map<std::string, std::mutex> table;
    const std::lock_guard<std::mutex> lock(table_mutex);
    return table[base.string()];
}

bool
readTraceMeta(const fs::path &path, vm::ExecStats &stats)
{
    std::ifstream in(path);
    std::string magic;
    if (!(in >> magic) || magic != "VPMETA1")
        return false;
    if (!(in >> stats.retired >> stats.predicted))
        return false;
    for (int c = 0; c < isa::numCategories; ++c) {
        if (!(in >> stats.byCategory[c]))
            return false;
    }
    return true;
}

/** Run the VM once, stream the trace to disk, write the sidecar.
 *  Both files land via rename so readers never see partial writes;
 *  the tmp names carry the PID so two processes cold-starting a
 *  *shared* cache dir never interleave writes — each renames a
 *  complete recording and last-writer-wins. */
void
recordTrace(const isa::Program &prog, const fs::path &base)
{
    const std::string pid = std::to_string(::getpid());
    const fs::path vpt_tmp = base.string() + ".vpt.tmp." + pid;
    const fs::path meta_tmp = base.string() + ".meta.tmp." + pid;

    vm::RunResult result;
    {
        std::ofstream out(vpt_tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            throw std::runtime_error("cannot write trace cache file: " +
                                     vpt_tmp.string());
        }
        vm::TraceWriter writer(out);
        vm::Machine machine;
        machine.setSink(&writer);
        result = machine.run(prog);
        if (!result.ok()) {
            throw std::runtime_error(
                    "workload '" + prog.name +
                    "' did not halt cleanly: " +
                    vm::exitReasonName(result.reason) +
                    (result.diagnostic.empty()
                             ? "" : " (" + result.diagnostic + ")"));
        }
        writer.finish();
        if (!out) {
            throw std::runtime_error("failed writing trace cache file: " +
                                     vpt_tmp.string());
        }
    }
    {
        std::ofstream meta(meta_tmp, std::ios::trunc);
        meta << "VPMETA1\n"
             << result.stats.retired << " " << result.stats.predicted
             << "\n";
        for (int c = 0; c < isa::numCategories; ++c)
            meta << result.stats.byCategory[c] << "\n";
        if (!meta) {
            throw std::runtime_error("cannot write trace cache meta: " +
                                     meta_tmp.string());
        }
    }
    fs::rename(vpt_tmp, fs::path(base.string() + ".vpt"));
    fs::rename(meta_tmp, fs::path(base.string() + ".meta"));
}

/**
 * The record-once/replay-many path of runBenchmark: ensure the
 * workload's trace is on disk (executing the VM only if it is not,
 * or if the cache is unreadable), then replay the file into @p bank.
 */
sim::RunOutcome
replayedOutcome(const isa::Program &prog, const std::string &name,
                const SuiteOptions &options, sim::PredictorBank &bank)
{
    const fs::path base = traceCacheBase(name, options);
    const fs::path vpt = base.string() + ".vpt";
    const fs::path meta = base.string() + ".meta";

    sim::RunOutcome outcome;
    outcome.workload = prog.name;
    {
        const std::lock_guard<std::mutex> lock(traceCacheMutex(base));
        if (!fs::exists(vpt) ||
            !readTraceMeta(meta, outcome.vmResult.stats)) {
            recordTrace(prog, base);
            if (!readTraceMeta(meta, outcome.vmResult.stats)) {
                throw std::runtime_error(
                        "unreadable trace cache meta: " + meta.string());
            }
        }
    }

    std::ifstream in(vpt, std::ios::binary);
    if (!in) {
        throw std::runtime_error("cannot open trace cache file: " +
                                 vpt.string());
    }
    vm::TraceReader reader(in);
    reader.replay(bank);

    outcome.staticPredicted = prog.countPredictedStatic();
    for (int c = 0; c < isa::numCategories; ++c) {
        outcome.staticByCategory[c] =
                prog.countPredictedStatic(static_cast<isa::Category>(c));
    }
    return outcome;
}

} // anonymous namespace

BenchmarkRun
runBenchmark(const std::string &name, const SuiteOptions &options)
{
    const auto &info = workloads::findWorkload(name);
    const auto prog = info.build(options.config);

    sim::PredictorBank bank;
    for (const auto &spec : options.predictors)
        bank.add(makePredictor(spec));
    if (options.overlap > 0)
        bank.trackOverlap(options.overlap);
    if (options.improvementA != options.improvementB)
        bank.trackImprovement(options.improvementA, options.improvementB);
    if (options.values)
        bank.trackValues();

    const auto outcome =
            options.traceReplay
                    ? replayedOutcome(prog, name, options, bank)
                    : sim::runProgram(prog, bank);

    BenchmarkRun run;
    run.name = name;
    run.exec = outcome.vmResult.stats;
    run.staticPredicted = outcome.staticPredicted;
    run.staticByCategory = outcome.staticByCategory;
    for (size_t i = 0; i < options.predictors.size(); ++i) {
        run.predictors.emplace_back(options.predictors[i],
                                    bank.member(i).stats);
    }
    if (bank.overlap())
        run.overlap = *bank.overlap();
    if (bank.improvement())
        run.improvement = *bank.improvement();
    if (bank.values())
        run.values = *bank.values();
    return run;
}

namespace {

size_t
suiteWorkerCount(const SuiteOptions &options, size_t jobs)
{
    size_t workers = options.parallelism;
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
    return std::min(workers, jobs);
}

} // anonymous namespace

std::vector<BenchmarkRun>
runSuite(const SuiteOptions &options)
{
    std::vector<std::string> names = options.benchmarks;
    if (names.empty()) {
        for (const auto &info : workloads::allWorkloads())
            names.push_back(info.name);
    }

    std::vector<BenchmarkRun> runs(names.size());
    const size_t workers = suiteWorkerCount(options, names.size());
    if (workers <= 1) {
        for (size_t i = 0; i < names.size(); ++i)
            runs[i] = runBenchmark(names[i], options);
        return runs;
    }

    // Every benchmark is independent (fresh PredictorBank + VM), so
    // workers pull the next index and write their own slot: results
    // land in request order with no synchronization on the data.
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::vector<std::exception_ptr> errors(names.size());
    auto worker = [&] {
        for (size_t i = next.fetch_add(1);
             i < names.size() && !failed.load();
             i = next.fetch_add(1)) {
            try {
                runs[i] = runBenchmark(names[i], options);
            } catch (...) {
                errors[i] = std::current_exception();
                failed.store(true);     // fail fast, as in serial mode
            }
        }
    };
    std::vector<std::future<void>> pool;
    pool.reserve(workers);
    for (size_t t = 0; t < workers; ++t)
        pool.push_back(std::async(std::launch::async, worker));
    for (auto &f : pool)
        f.get();
    // Rethrow the first failure in request order so the error does
    // not depend on thread scheduling.
    for (const auto &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
    return runs;
}

double
meanAccuracyPct(const std::vector<BenchmarkRun> &runs, size_t index)
{
    if (runs.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &run : runs)
        sum += run.accuracyPct(index);
    return sum / static_cast<double>(runs.size());
}

double
meanAccuracyPct(const std::vector<BenchmarkRun> &runs, size_t index,
                isa::Category cat)
{
    if (runs.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &run : runs)
        sum += run.accuracyPct(index, cat);
    return sum / static_cast<double>(runs.size());
}

const std::vector<isa::Category> &
reportedCategories()
{
    static const std::vector<isa::Category> cats = {
        isa::Category::AddSub, isa::Category::Loads,
        isa::Category::Logic, isa::Category::Shift,
        isa::Category::Set,
    };
    return cats;
}

} // namespace vp::exp
