#include "exp/suite.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <stdexcept>
#include <thread>

#include <unistd.h>

#include "exp/spec.hh"
#include "obs/instrumentation.hh"
#include "obs/registry_sink.hh"
#include "sim/driver.hh"
#include "util/mutex.hh"
#include "vm/trace_file.hh"

namespace vp::exp {

core::PredictorPtr
makePredictor(const std::string &spec)
{
    // The grammar and construction live in the typed PredictorSpec
    // model (exp/spec.hh); this shim keeps the historic entry point.
    return parseSpec(spec).build();
}

double
BenchmarkRun::accuracyPct(size_t index) const
{
    return 100.0 * predictors.at(index).second.accuracy();
}

double
BenchmarkRun::accuracyPct(size_t index, isa::Category cat) const
{
    return 100.0 * predictors.at(index).second.accuracy(cat);
}

namespace {

namespace fs = std::filesystem;

/**
 * The default trace cache: a mkdtemp-unique directory (PID reuse must
 * not resurrect a previous binary's recordings) removed when the
 * process exits, so the temp dir does not accumulate one cache per
 * run.
 */
const fs::path &
processTraceCacheDir()
{
    static const struct ProcessDir
    {
        fs::path path;

        ProcessDir()
        {
            std::string templ =
                    (fs::temp_directory_path() / "vp-traces-XXXXXX")
                            .string();
            if (::mkdtemp(templ.data()) == nullptr) {
                throw std::runtime_error(
                        "cannot create trace cache directory: " + templ);
            }
            path = templ;
        }

        ~ProcessDir()
        {
            std::error_code ec;       // best effort; never throw here
            fs::remove_all(path, ec);
        }
    } dir;
    return dir.path;
}

/**
 * Trace-cache layout: one <workload>-<input>-<flags>-s<scale>.vpt
 * trace plus a .meta sidecar holding the dynamic ExecStats the replay
 * path cannot recompute without executing the VM.
 */
fs::path
traceCacheBase(const std::string &name, const SuiteOptions &options)
{
    const fs::path dir = options.traceCacheDir.empty()
                                 ? processTraceCacheDir()
                                 : fs::path(options.traceCacheDir);
    fs::create_directories(dir);
    return dir / (name + "-" + options.config.input + "-" +
                  options.config.flags + "-s" +
                  std::to_string(options.config.scale));
}

/** One mutex per cache entry so parallel suite workers record
 *  different workloads concurrently but never the same one twice.
 *  The table is append-only and node-based, so a returned reference
 *  stays valid while other entries are created. */
util::Mutex &
traceCacheMutex(const fs::path &base)
{
    static util::Mutex table_mutex;
    static std::map<std::string, util::Mutex> table;
    const util::MutexLock lock(table_mutex);
    return table[base.string()];
}

bool
readTraceMeta(const fs::path &path, vm::ExecStats &stats)
{
    std::ifstream in(path);
    std::string magic;
    if (!(in >> magic) || magic != "VPMETA1")
        return false;
    if (!(in >> stats.retired >> stats.predicted))
        return false;
    for (int c = 0; c < isa::numCategories; ++c) {
        if (!(in >> stats.byCategory[c]))
            return false;
    }
    return true;
}

/** Run the VM once, stream the trace to disk, write the sidecar.
 *  Both files land via rename so readers never see partial writes;
 *  the tmp names carry the PID so two processes cold-starting a
 *  *shared* cache dir never interleave writes — each renames a
 *  complete recording and last-writer-wins. If anything throws
 *  between write and rename, both tmp files are removed before the
 *  error propagates (a shared cache dir must not accumulate orphans).
 */
void
recordTrace(const isa::Program &prog, const fs::path &base)
{
    const std::string pid = std::to_string(::getpid());
    const fs::path vpt_tmp = base.string() + ".vpt.tmp." + pid;
    const fs::path meta_tmp = base.string() + ".meta.tmp." + pid;

    try {
        vm::RunResult result;
        {
            std::ofstream out(vpt_tmp,
                              std::ios::binary | std::ios::trunc);
            if (!out) {
                throw std::runtime_error(
                        "cannot write trace cache file: " +
                        vpt_tmp.string());
            }
            // VPT2: blocked + deflated + seekable, which is what the
            // region replay path needs; readers auto-detect, so a
            // shared cache dir holding old VPT1 recordings still
            // replays fine.
            vm::Vpt2Writer writer(out);
            vm::Machine machine;
            machine.setSink(&writer);
            result = machine.run(prog);
            if (!result.ok()) {
                throw std::runtime_error(
                        "workload '" + prog.name +
                        "' did not halt cleanly: " +
                        vm::exitReasonName(result.reason) +
                        (result.diagnostic.empty()
                                 ? ""
                                 : " (" + result.diagnostic + ")"));
            }
            writer.finish();
            if (!out) {
                throw std::runtime_error(
                        "failed writing trace cache file: " +
                        vpt_tmp.string());
            }
        }
        {
            std::ofstream meta(meta_tmp, std::ios::trunc);
            meta << "VPMETA1\n"
                 << result.stats.retired << " "
                 << result.stats.predicted << "\n";
            for (int c = 0; c < isa::numCategories; ++c)
                meta << result.stats.byCategory[c] << "\n";
            if (!meta) {
                throw std::runtime_error(
                        "cannot write trace cache meta: " +
                        meta_tmp.string());
            }
        }
        fs::rename(vpt_tmp, fs::path(base.string() + ".vpt"));
        fs::rename(meta_tmp, fs::path(base.string() + ".meta"));
    } catch (...) {
        std::error_code ec;         // best effort; keep the real error
        fs::remove(vpt_tmp, ec);
        fs::remove(meta_tmp, ec);
        throw;
    }
}

/**
 * Ensure the workload's trace and sidecar are on disk (executing the
 * VM only if the cache is cold or unreadable); fills @p stats from
 * the sidecar and returns the cache base path.
 */
fs::path
ensureTraceRecorded(const isa::Program &prog, const std::string &name,
                    const SuiteOptions &options, vm::ExecStats &stats)
{
    const fs::path base = traceCacheBase(name, options);
    const fs::path vpt = base.string() + ".vpt";
    const fs::path meta = base.string() + ".meta";

    obs::Instrumentation *obs = options.instrumentation;
    const util::MutexLock lock(traceCacheMutex(base));
    if (!fs::exists(vpt) || !readTraceMeta(meta, stats)) {
        obs::add(obs, "trace_cache.miss");
        obs::add(obs, "trace_cache.record");
        auto span = obs::span(obs, "record " + name, "trace-cache");
        recordTrace(prog, base);
        span.close();
        if (!readTraceMeta(meta, stats)) {
            throw std::runtime_error("unreadable trace cache meta: " +
                                     meta.string());
        }
    } else {
        obs::add(obs, "trace_cache.hit");
    }
    return base;
}

/** Open a cached trace with the cache path in any error message. */
std::ifstream
openCachedTrace(const fs::path &vpt)
{
    std::ifstream in(vpt, std::ios::binary);
    if (!in) {
        throw std::runtime_error("cannot open trace cache file: " +
                                 vpt.string());
    }
    return in;
}

/** Pull a cursor's cumulative I/O work into the cell's registry. */
void
collectTraceIo(const vm::TraceCursor &cursor, obs::Instrumentation *obs)
{
    const vm::TraceIoStats io = cursor.ioStats();
    obs::add(obs, "trace.io.blocks", io.blocksRead);
    obs::add(obs, "trace.io.raw_bytes", io.rawBytes);
    obs::add(obs, "trace.io.enc_bytes", io.encBytes);
    obs::add(obs, "trace.io.deflated_blocks", io.deflatedBlocks);
    obs::add(obs, "trace.io.seeks", io.seeks);
}

/** Pull every bank member's internal counters into the registry. */
void
collectBankCounters(const sim::PredictorBank &bank,
                    obs::Instrumentation *obs)
{
    if (obs == nullptr || obs->registry() == nullptr)
        return;
    obs::RegistrySink sink(obs->registry()->local());
    bank.collectCounters(sink);
}

/**
 * The record-once/replay-many path of runBenchmark: ensure the
 * workload's trace is on disk (executing the VM only if it is not,
 * or if the cache is unreadable), then replay the file into @p bank.
 */
sim::RunOutcome
replayedOutcome(const isa::Program &prog, const std::string &name,
                const SuiteOptions &options, sim::PredictorBank &bank,
                sim::WindowSeries *windows)
{
    sim::RunOutcome outcome;
    outcome.workload = prog.name;
    const fs::path base = ensureTraceRecorded(prog, name, options,
                                              outcome.vmResult.stats);
    const fs::path vpt = base.string() + ".vpt";
    obs::Instrumentation *obs = options.instrumentation;

    std::ifstream in = openCachedTrace(vpt);
    try {
        // Stream the file through the batched hot path: bounded
        // memory (one block in flight) and one virtual dispatch per
        // (predictor, block) instead of two per event.
        const auto cursor = vm::openTrace(in);
        vm::ReaderBatchSource source(*cursor);
        auto span = obs::span(obs, "replay " + name, "replay");
        const uint64_t events =
                sim::replayTrace(source, bank, obs, windows);
        span.arg("events", std::to_string(events));
        span.close();
        // A cached trace with bytes beyond its promised event count
        // is corrupt (a partial overwrite, a concatenated file): the
        // stats above would silently describe a truncated stream.
        cursor->expectEnd();
        collectTraceIo(*cursor, obs);
    } catch (const vm::TraceFileError &error) {
        throw std::runtime_error("corrupt trace cache file " +
                                 vpt.string() + ": " + error.what());
    }

    outcome.staticPredicted = prog.countPredictedStatic();
    for (int c = 0; c < isa::numCategories; ++c) {
        outcome.staticByCategory[c] =
                prog.countPredictedStatic(static_cast<isa::Category>(c));
    }
    return outcome;
}

} // anonymous namespace

std::vector<TraceRegion>
planTraceRegions(uint64_t events, unsigned regions)
{
    if (regions == 0)
        regions = 1;
    std::vector<TraceRegion> plan(regions);
    const uint64_t base = events / regions;
    const uint64_t rem = events % regions;
    uint64_t begin = 0;
    for (unsigned r = 0; r < regions; ++r) {
        const uint64_t size = base + (r < rem ? 1 : 0);
        plan[r] = TraceRegion{begin, begin + size};
        begin += size;
    }
    return plan;
}

bool
regionReplayApplies(const SuiteOptions &options)
{
    // Windowed telemetry also forces the serial whole-trace path:
    // windows are positions in the global event stream, which the
    // per-region statistics merge does not preserve.
    return options.traceReplay && options.regions > 1 &&
           options.overlap == 0 &&
           options.improvementA == options.improvementB &&
           !options.values && options.windowEvents == 0;
}

RegionPartial
runBenchmarkRegion(const std::string &name, const SuiteOptions &options,
                   unsigned region)
{
    if (!options.traceReplay) {
        throw std::invalid_argument(
                "runBenchmarkRegion requires traceReplay");
    }
    if (region >= std::max(1u, options.regions))
        throw std::invalid_argument("region index out of range");

    const auto &info = workloads::findWorkload(name);
    const auto prog = info.build(options.config);

    vm::ExecStats stats;
    const fs::path base =
            ensureTraceRecorded(prog, name, options, stats);
    const fs::path vpt = base.string() + ".vpt";

    sim::PredictorBank bank;
    for (const auto &spec : options.predictors)
        bank.add(makePredictor(spec));

    RegionPartial partial;
    partial.region = region;
    obs::Instrumentation *obs = options.instrumentation;
    std::ifstream in = openCachedTrace(vpt);
    try {
        const auto cursor = vm::openTrace(in);
        const auto plan = planTraceRegions(cursor->eventCount(),
                                           options.regions);
        const TraceRegion &r = plan.at(region);
        if (r.begin < r.end) {
            auto span = obs::span(obs,
                                  "region " + name + " #" +
                                          std::to_string(region),
                                  "region");
            vm::TraceRegionReader reader(*cursor, r.begin, r.end,
                                         options.warmupEvents);
            partial.events = sim::replayTraceRegion(reader, bank, obs);
            span.arg("events", std::to_string(partial.events));
        }
        collectTraceIo(*cursor, obs);
    } catch (const vm::TraceFileError &error) {
        throw std::runtime_error("corrupt trace cache file " +
                                 vpt.string() + ": " + error.what());
    }
    // Each region task trains its own fresh bank, so the per-cell
    // registry accumulates the *sum* of the region banks' counters
    // (same-name accumulation — the registry's documented semantics).
    collectBankCounters(bank, obs);

    partial.stats.reserve(bank.size());
    for (size_t i = 0; i < bank.size(); ++i)
        partial.stats.push_back(bank.member(i).stats);
    return partial;
}

BenchmarkRun
mergeRegionPartials(const std::string &name, const SuiteOptions &options,
                    std::vector<RegionPartial> partials)
{
    const unsigned regions = std::max(1u, options.regions);
    if (partials.size() != regions) {
        throw std::invalid_argument(
                "mergeRegionPartials: wrong partial count");
    }
    std::sort(partials.begin(), partials.end(),
              [](const RegionPartial &a, const RegionPartial &b) {
                  return a.region < b.region;
              });
    for (unsigned r = 0; r < regions; ++r) {
        if (partials[r].region != r ||
            partials[r].stats.size() != options.predictors.size()) {
            throw std::invalid_argument(
                    "mergeRegionPartials: inconsistent partials");
        }
    }

    const auto &info = workloads::findWorkload(name);
    const auto prog = info.build(options.config);

    BenchmarkRun run;
    run.name = name;
    ensureTraceRecorded(prog, name, options, run.exec);
    run.staticPredicted = prog.countPredictedStatic();
    for (int c = 0; c < isa::numCategories; ++c) {
        run.staticByCategory[c] =
                prog.countPredictedStatic(static_cast<isa::Category>(c));
    }
    for (size_t i = 0; i < options.predictors.size(); ++i) {
        core::PredictionStats merged;
        for (const auto &partial : partials)
            merged.merge(partial.stats[i]);
        run.predictors.emplace_back(options.predictors[i], merged);
    }
    return run;
}

BenchmarkRun
runBenchmark(const std::string &name, const SuiteOptions &options)
{
    if (options.windowEvents != 0 && !options.traceReplay) {
        throw std::invalid_argument(
                "windowed telemetry requires trace replay");
    }
    if (regionReplayApplies(options)) {
        // The region path replayed serially — this is the reference
        // semantics the CellScheduler's parallel fan-out reproduces
        // exactly (stats merge is associative over regions).
        std::vector<RegionPartial> partials;
        partials.reserve(options.regions);
        for (unsigned r = 0; r < options.regions; ++r)
            partials.push_back(runBenchmarkRegion(name, options, r));
        return mergeRegionPartials(name, options, std::move(partials));
    }

    const auto &info = workloads::findWorkload(name);
    const auto prog = info.build(options.config);

    sim::PredictorBank bank;
    for (const auto &spec : options.predictors)
        bank.add(makePredictor(spec));
    if (options.overlap > 0)
        bank.trackOverlap(options.overlap);
    if (options.improvementA != options.improvementB)
        bank.trackImprovement(options.improvementA, options.improvementB);
    if (options.values)
        bank.trackValues();

    sim::WindowSeries windows;
    windows.windowEvents = options.windowEvents;
    const auto outcome =
            options.traceReplay
                    ? replayedOutcome(prog, name, options, bank,
                                      options.windowEvents != 0
                                              ? &windows
                                              : nullptr)
                    : sim::runProgram(prog, bank);
    collectBankCounters(bank, options.instrumentation);

    BenchmarkRun run;
    run.name = name;
    run.windows = std::move(windows);
    run.exec = outcome.vmResult.stats;
    run.staticPredicted = outcome.staticPredicted;
    run.staticByCategory = outcome.staticByCategory;
    for (size_t i = 0; i < options.predictors.size(); ++i) {
        run.predictors.emplace_back(options.predictors[i],
                                    bank.member(i).stats);
    }
    if (bank.overlap())
        run.overlap = *bank.overlap();
    if (bank.improvement())
        run.improvement = *bank.improvement();
    if (bank.values())
        run.values = *bank.values();
    return run;
}

namespace {

size_t
suiteWorkerCount(const SuiteOptions &options, size_t jobs)
{
    size_t workers = options.parallelism;
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
    return std::min(workers, jobs);
}

} // anonymous namespace

std::vector<BenchmarkRun>
runSuite(const SuiteOptions &options)
{
    std::vector<std::string> names = options.benchmarks;
    if (names.empty()) {
        for (const auto &info : workloads::allWorkloads())
            names.push_back(info.name);
    }

    std::vector<BenchmarkRun> runs(names.size());
    const size_t workers = suiteWorkerCount(options, names.size());
    if (workers <= 1) {
        for (size_t i = 0; i < names.size(); ++i)
            runs[i] = runBenchmark(names[i], options);
        return runs;
    }

    // Every benchmark is independent (fresh PredictorBank + VM), so
    // workers pull the next index and write their own slot: results
    // land in request order with no synchronization on the data.
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::vector<std::exception_ptr> errors(names.size());
    auto worker = [&] {
        for (size_t i = next.fetch_add(1);
             i < names.size() && !failed.load();
             i = next.fetch_add(1)) {
            try {
                runs[i] = runBenchmark(names[i], options);
            } catch (...) {
                errors[i] = std::current_exception();
                failed.store(true);     // fail fast, as in serial mode
            }
        }
    };
    std::vector<std::future<void>> pool;
    pool.reserve(workers);
    for (size_t t = 0; t < workers; ++t)
        pool.push_back(std::async(std::launch::async, worker));
    for (auto &f : pool)
        f.get();
    // Rethrow the first failure in request order so the error does
    // not depend on thread scheduling.
    for (const auto &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
    return runs;
}

double
meanAccuracyPct(const std::vector<BenchmarkRun> &runs, size_t index)
{
    if (runs.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &run : runs)
        sum += run.accuracyPct(index);
    return sum / static_cast<double>(runs.size());
}

double
meanAccuracyPct(const std::vector<BenchmarkRun> &runs, size_t index,
                isa::Category cat)
{
    if (runs.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &run : runs)
        sum += run.accuracyPct(index, cat);
    return sum / static_cast<double>(runs.size());
}

const std::vector<isa::Category> &
reportedCategories()
{
    static const std::vector<isa::Category> cats = {
        isa::Category::AddSub, isa::Category::Loads,
        isa::Category::Logic, isa::Category::Shift,
        isa::Category::Set,
    };
    return cats;
}

} // namespace vp::exp
