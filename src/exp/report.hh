/**
 * @file
 * Structured experiment reports and the writers that render them.
 *
 * Every experiment in the registry (exp/experiment.hh) produces a
 * Report instead of printing: an ordered sequence of text lines and
 * named tables. The ReportWriter renders the same Report three ways —
 * the human text tables the legacy bench binaries printed (via
 * sim::TextTable, whose formatting this layer hoists from the old
 * bench/category_figure.hh), CSV (one file per table), and JSON — so
 * the numbers exist exactly once and every output format agrees by
 * construction.
 */

#ifndef VP_EXP_REPORT_HH
#define VP_EXP_REPORT_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace vp::exp {

/**
 * One table of an experiment report.
 *
 * Builder API mirrors sim::TextTable (row/cell/rule) so converting a
 * legacy bench binary is mechanical; numeric cells remember the value
 * alongside the rendered text so the JSON writer can emit real
 * numbers while text and CSV stay digit-identical to the legacy
 * output.
 */
class ReportTable
{
  public:
    struct Cell
    {
        std::string text;       ///< rendered exactly as text/CSV show it
        bool numeric = false;   ///< right-align in text; raw in JSON
        double value = 0.0;     ///< numeric payload when numeric
    };

    explicit ReportTable(std::string id) : id_(std::move(id)) {}

    /** Machine name ("accuracy", "profit_cost4"); CSV file suffix. */
    const std::string &id() const { return id_; }

    ReportTable &row();
    ReportTable &cell(const std::string &text);
    ReportTable &cell(const char *text) { return cell(std::string(text)); }
    ReportTable &cell(double value, int decimals = 1);
    ReportTable &cell(uint64_t value);
    ReportTable &cell(int64_t value);
    ReportTable &cell(int value) { return cell(static_cast<int64_t>(value)); }

    /** Horizontal rule after the current row (text rendering only). */
    ReportTable &rule();

    const std::vector<std::vector<Cell>> &rows() const { return rows_; }
    const std::vector<size_t> &rules() const { return rules_; }

  private:
    std::string id_;
    std::vector<std::vector<Cell>> rows_;
    std::vector<size_t> rules_;
};

/**
 * An experiment's complete output: text lines and tables, in the
 * order they should read.
 */
class Report
{
  public:
    struct Block
    {
        bool isTable = false;
        std::string text;       ///< one line, no trailing newline
        size_t tableIndex = 0;  ///< into tables() when isTable
    };

    /** Append one text line ('\n'-separated input splits to lines). */
    void text(const std::string &line);

    /** printf-style convenience for the legacy printf-heavy reports. */
    void textf(const char *format, ...)
            __attribute__((format(printf, 2, 3)));

    /** Append a table block; the returned reference stays valid for
     *  the Report's lifetime (deque-backed), so hooks may hold
     *  several tables open and fill them row by row. */
    ReportTable &table(const std::string &id);

    const std::vector<Block> &blocks() const { return blocks_; }
    const std::deque<ReportTable> &tables() const { return tables_; }
    bool empty() const { return blocks_.empty(); }

  private:
    std::vector<Block> blocks_;
    std::deque<ReportTable> tables_;
};

/** Renderers; all pure functions of the Report. */
namespace report_writer {

/** The human output: text lines verbatim, tables via sim::TextTable. */
std::string renderText(const Report &report);

/** One table as RFC-4180-ish CSV (rules skipped, cells quoted as
 *  needed); numbers appear digit-identical to the text rendering. */
std::string renderCsv(const ReportTable &table);

/** One report as a JSON object {"tables": {...}, "notes": [...]};
 *  numeric cells emit as JSON numbers. */
std::string renderJson(const Report &report);

/** Escape @p text as the inside of a JSON string literal. */
std::string jsonEscape(const std::string &text);

/** Format @p value the way JSON output should carry doubles. */
std::string jsonNumber(double value);

} // namespace report_writer

} // namespace vp::exp

#endif // VP_EXP_REPORT_HH
