/**
 * @file
 * Reference values read off the paper's tables and figures, for
 * side-by-side output in the experiment binaries.
 *
 * Bar-chart values (Figures 3-8, 10, 11) are approximate readings of
 * the published charts; table values (Tables 2, 4-7) are exact.
 */

#ifndef VP_EXP_PAPER_DATA_HH
#define VP_EXP_PAPER_DATA_HH

#include <string>

namespace vp::exp::paper {

/** Figure 3: overall fcm3 accuracy per benchmark (approx, percent). */
inline double
figure3Fcm3(const std::string &benchmark)
{
    if (benchmark == "compress") return 76;
    if (benchmark == "gcc") return 78;
    if (benchmark == "go") return 56;
    if (benchmark == "ijpeg") return 71;
    if (benchmark == "m88ksim") return 91;
    if (benchmark == "perl") return 85;
    if (benchmark == "xlisp") return 87;
    return 78;      // mean
}

/** Figure 3: overall accuracy ranges the paper states in the text. */
struct Figure3Ranges
{
    static constexpr double lastValueMean = 40;
    static constexpr double strideMean = 56;
    static constexpr double fcm3Mean = 78;
};

/** Table 2: percentage of dynamic instructions predicted. */
inline double
table2PredictedPct(const std::string &benchmark)
{
    if (benchmark == "compress") return 71;
    if (benchmark == "gcc") return 68;
    if (benchmark == "go") return 80;
    if (benchmark == "ijpeg") return 84;
    if (benchmark == "m88ksim") return 70;
    if (benchmark == "perl") return 65;
    if (benchmark == "xlisp") return 62;
    return 71;
}

/** Table 5: dynamic percentage per predicted instruction type. */
inline double
table5DynamicPct(const std::string &benchmark, const std::string &type)
{
    struct Row { const char *b, *t; double v; };
    static const Row rows[] = {
        {"compress", "AddSub", 42.6}, {"compress", "Loads", 20.5},
        {"compress", "Logic", 3.1},   {"compress", "Shift", 17.4},
        {"compress", "Set", 7.4},
        {"gcc", "AddSub", 38.9}, {"gcc", "Loads", 38.6},
        {"gcc", "Logic", 3.1},   {"gcc", "Shift", 7.7},
        {"gcc", "Set", 5.4},
        {"go", "AddSub", 42.1}, {"go", "Loads", 26.2},
        {"go", "Logic", 0.5},   {"go", "Shift", 13.3},
        {"go", "Set", 4.9},
        {"ijpeg", "AddSub", 52.4}, {"ijpeg", "Loads", 21.4},
        {"ijpeg", "Logic", 1.9},   {"ijpeg", "Shift", 16.4},
        {"ijpeg", "Set", 4.2},
        {"m88ksim", "AddSub", 42.6}, {"m88ksim", "Loads", 24.8},
        {"m88ksim", "Logic", 5.0},   {"m88ksim", "Shift", 3.2},
        {"m88ksim", "Set", 15.2},
        {"perl", "AddSub", 34.1}, {"perl", "Loads", 43.1},
        {"perl", "Logic", 3.1},   {"perl", "Shift", 8.2},
        {"perl", "Set", 5.6},
        {"xlisp", "AddSub", 36.1}, {"xlisp", "Loads", 48.6},
        {"xlisp", "Logic", 3.4},   {"xlisp", "Shift", 3.2},
        {"xlisp", "Set", 3.2},
    };
    for (const auto &row : rows) {
        if (benchmark == row.b && type == row.t)
            return row.v;
    }
    return 0.0;
}

/** Figure 8 (overall): paper's stated slice sizes (approx, percent). */
struct Figure8
{
    static constexpr double np = 18;    ///< no predictor correct
    static constexpr double lsf = 40;   ///< all three correct
    static constexpr double fOnly = 20; ///< only fcm correct
};

/** Table 6: gcc order-2 fcm accuracy per input file. */
inline double
table6Accuracy(const std::string &input)
{
    if (input == "jump.i") return 76.5;
    if (input == "emit-rtl.i") return 76.0;
    if (input == "gcc.i") return 77.1;
    if (input == "recog.i") return 78.6;
    if (input == "stmt.i") return 77.8;
    return 77.0;
}

/** Table 7: gcc order-2 fcm accuracy per flags setting. */
inline double
table7Accuracy(const std::string &flags)
{
    if (flags == "none") return 78.6;
    if (flags == "O1") return 75.3;
    if (flags == "O2") return 76.9;
    return 77.1;    // ref flags
}

/** Figure 11: gcc fcm accuracy by order 1..8 (approx, percent). */
inline double
figure11Accuracy(int order)
{
    static const double values[] = {71.5, 77.0, 79.5, 81.0,
                                    82.0, 82.6, 83.0, 83.3};
    if (order >= 1 && order <= 8)
        return values[order - 1];
    return 0.0;
}

} // namespace vp::exp::paper

#endif // VP_EXP_PAPER_DATA_HH
