#include "exp/capacity.hh"

namespace vp::exp {

const std::vector<std::string> &
capacityFamilies()
{
    static const std::vector<std::string> families = {"l", "s2", "fcm3"};
    return families;
}

const std::vector<size_t> &
capacitySweepPoints()
{
    // 256 entries (a few KB of state) up to 1M entries, the point
    // where every workload's full-scale working set fits (compress
    // allocates ~460k fcm3 contexts) and the bounded predictors match
    // the unbounded ones to within measurement noise.
    static const std::vector<size_t> points = {
        256, 1024, 4096, 16384, 65536, 262144, 1048576,
    };
    return points;
}

std::string
boundedSpecFor(const std::string &base, size_t entries)
{
    if (base.rfind("fcm", 0) == 0) {
        const size_t vht = entries / 4;
        const size_t vpt = entries - vht;
        return base + "@" + std::to_string(vht) + "/" +
               std::to_string(vpt) + "x16";
    }
    return base + "@" + std::to_string(entries) + "x16";
}

std::vector<std::string>
capacitySweepSpecs()
{
    std::vector<std::string> specs;
    for (const auto &family : capacityFamilies()) {
        specs.push_back(family);
        for (const size_t entries : capacitySweepPoints())
            specs.push_back(boundedSpecFor(family, entries));
    }
    return specs;
}

size_t
CapacitySweep::specIndex(size_t family_index, size_t budget_index)
{
    const size_t stride = 1 + capacitySweepPoints().size();
    return family_index * stride + 1 + budget_index;
}

size_t
CapacitySweep::unboundedIndex(size_t family_index)
{
    const size_t stride = 1 + capacitySweepPoints().size();
    return family_index * stride;
}

CapacitySweep
runCapacitySweep(const SuiteOptions &base_options)
{
    SuiteOptions options = base_options;
    options.predictors = capacitySweepSpecs();
    options.overlap = 0;
    options.improvementA = options.improvementB = 0;
    options.values = false;

    CapacitySweep sweep;
    sweep.runs = runSuite(options);
    return sweep;
}

} // namespace vp::exp
