#include "exp/capacity.hh"

namespace vp::exp {

const std::vector<std::string> &
capacityFamilies()
{
    static const std::vector<std::string> families = {"l", "s2", "fcm3"};
    return families;
}

const std::vector<size_t> &
capacitySweepPoints()
{
    // 256 entries (a few KB of state) up to 1M entries, the point
    // where every workload's full-scale working set fits (compress
    // allocates ~460k fcm3 contexts) and the bounded predictors match
    // the unbounded ones to within measurement noise.
    static const std::vector<size_t> points = {
        256, 1024, 4096, 16384, 65536, 262144, 1048576,
    };
    return points;
}

std::string
boundedSpecFor(const std::string &base, size_t entries)
{
    return boundedSpecFor(base, entries, core::Replacement::Lru);
}

std::string
boundedSpecFor(const std::string &base, size_t entries,
               core::Replacement policy)
{
    std::string suffix;
    if (policy == core::Replacement::Random)
        suffix = "r";
    else if (policy == core::Replacement::Fifo)
        suffix = "f";
    if (base.rfind("fcm", 0) == 0) {
        const size_t vht = entries / 4;
        const size_t vpt = entries - vht;
        return base + "@" + std::to_string(vht) + "/" +
               std::to_string(vpt) + "x16" + suffix;
    }
    return base + "@" + std::to_string(entries) + "x16" + suffix;
}

std::vector<std::string>
capacitySweepSpecs()
{
    std::vector<std::string> specs;
    for (const auto &family : capacityFamilies()) {
        specs.push_back(family);
        for (const size_t entries : capacitySweepPoints())
            specs.push_back(boundedSpecFor(family, entries));
    }
    return specs;
}

size_t
CapacitySweep::specIndex(size_t family_index, size_t budget_index)
{
    const size_t stride = 1 + capacitySweepPoints().size();
    return family_index * stride + 1 + budget_index;
}

size_t
CapacitySweep::unboundedIndex(size_t family_index)
{
    const size_t stride = 1 + capacitySweepPoints().size();
    return family_index * stride;
}

SuiteOptions
capacitySweepOptions(SuiteOptions base_options)
{
    base_options.predictors = capacitySweepSpecs();
    base_options.overlap = 0;
    base_options.improvementA = base_options.improvementB = 0;
    base_options.values = false;
    return base_options;
}

CapacitySweep
runCapacitySweep(const SuiteOptions &base_options)
{
    CapacitySweep sweep;
    sweep.runs = runSuite(capacitySweepOptions(base_options));
    return sweep;
}

} // namespace vp::exp
