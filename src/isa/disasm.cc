#include "isa/disasm.hh"

#include <sstream>

namespace vp::isa {

namespace {

std::string
reg(int r)
{
    // Built up in place: `"r" + std::to_string(r)` trips a GCC 12
    // -Wrestrict false positive (PR105651) at -O2/-O3, and src/ is
    // compiled with -Werror.
    std::string name = "r";
    name += std::to_string(r);
    return name;
}

} // anonymous namespace

std::string
disassemble(const Instr &instr)
{
    std::ostringstream out;
    out << opcodeName(instr.op);
    const auto fmt = opcodeFormat(instr.op);
    switch (fmt) {
      case Format::R:
        out << ' ' << reg(instr.rd) << ", " << reg(instr.rs1) << ", "
            << reg(instr.rs2);
        break;
      case Format::R2:
        out << ' ' << reg(instr.rd) << ", " << reg(instr.rs1);
        break;
      case Format::I:
        out << ' ' << reg(instr.rd) << ", " << reg(instr.rs1) << ", "
            << instr.imm;
        break;
      case Format::U:
        out << ' ' << reg(instr.rd) << ", " << instr.imm;
        break;
      case Format::Mem:
        out << ' ' << reg(instr.rd) << ", " << instr.imm << '('
            << reg(instr.rs1) << ')';
        break;
      case Format::MemS:
        out << ' ' << reg(instr.rs2) << ", " << instr.imm << '('
            << reg(instr.rs1) << ')';
        break;
      case Format::B:
        out << ' ' << reg(instr.rs1) << ", " << reg(instr.rs2) << ", "
            << instr.imm;
        break;
      case Format::J:
        out << ' ' << instr.imm;
        break;
      case Format::JL:
        out << ' ' << reg(instr.rd) << ", " << instr.imm;
        break;
      case Format::JR:
        out << ' ' << reg(instr.rs1);
        break;
      case Format::JLR:
        out << ' ' << reg(instr.rd) << ", " << reg(instr.rs1);
        break;
      case Format::N:
        break;
    }
    return out.str();
}

std::string
disassemble(const Program &prog)
{
    // Invert the code symbol table so labels print at their targets.
    std::map<uint64_t, std::string> labels;
    for (const auto &[name, pc] : prog.codeSymbols)
        labels.emplace(pc, name);

    std::ostringstream out;
    for (size_t pc = 0; pc < prog.code.size(); ++pc) {
        auto it = labels.find(pc);
        if (it != labels.end())
            out << it->second << ":\n";
        out << "  " << pc << ":\t" << disassemble(prog.code[pc]) << '\n';
    }
    return out.str();
}

} // namespace vp::isa
