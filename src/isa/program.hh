/**
 * @file
 * Program container: code, initial data image, and symbols.
 */

#ifndef VP_ISA_PROGRAM_HH
#define VP_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/instr.hh"

namespace vp::isa {

/** Default base address of the data segment. */
constexpr uint64_t defaultDataBase = 0x1000;

/**
 * A fully linked program, ready to run on the VM.
 *
 * Static instruction identity (the "PC" used by every predictor table)
 * is simply the index into @c code. The data image is copied into VM
 * memory at @c dataBase before execution; the area beyond the image is
 * available as heap, and the stack grows downward from the top of the
 * configured memory.
 */
struct Program
{
    std::string name;

    /** Code section; the PC of instruction i is i. */
    std::vector<Instr> code;

    /** Base address at which @c data is loaded. */
    uint64_t dataBase = defaultDataBase;

    /** Initial data image. */
    std::vector<uint8_t> data;

    /** First address past the static data image (start of heap). */
    uint64_t dataEnd() const { return dataBase + data.size(); }

    /**
     * Symbol table: labels map to instruction indices, data symbols
     * map to absolute addresses. Kept for disassembly and debugging.
     */
    std::map<std::string, uint64_t> codeSymbols;
    std::map<std::string, uint64_t> dataSymbols;

    /** Number of static instructions. */
    size_t size() const { return code.size(); }

    /** Count static instructions eligible for value prediction. */
    size_t countPredictedStatic() const;

    /** Count static predicted instructions in a given category. */
    size_t countPredictedStatic(Category cat) const;

    /**
     * Validate structural invariants: all branch/jump targets within
     * the code section and all register numbers legal.
     *
     * @return an empty string when valid, else a diagnostic.
     */
    std::string validate() const;
};

} // namespace vp::isa

#endif // VP_ISA_PROGRAM_HH
