#include "isa/encoding.hh"

namespace vp::isa {

uint64_t
encode(const Instr &instr)
{
    uint64_t word = 0;
    word |= static_cast<uint64_t>(instr.op);
    word |= static_cast<uint64_t>(instr.rd) << 8;
    word |= static_cast<uint64_t>(instr.rs1) << 16;
    word |= static_cast<uint64_t>(instr.rs2) << 24;
    word |= static_cast<uint64_t>(static_cast<uint32_t>(instr.imm)) << 32;
    return word;
}

std::optional<Instr>
decode(uint64_t word)
{
    const auto op_raw = static_cast<uint8_t>(word & 0xff);
    if (op_raw >= numOpcodes)
        return std::nullopt;

    Instr instr;
    instr.op = static_cast<Opcode>(op_raw);
    instr.rd = static_cast<uint8_t>((word >> 8) & 0xff);
    instr.rs1 = static_cast<uint8_t>((word >> 16) & 0xff);
    instr.rs2 = static_cast<uint8_t>((word >> 24) & 0xff);
    instr.imm = static_cast<int32_t>(
            static_cast<uint32_t>((word >> 32) & 0xffffffffull));

    if (instr.rd >= numRegs || instr.rs1 >= numRegs || instr.rs2 >= numRegs)
        return std::nullopt;

    return instr;
}

std::vector<uint64_t>
encodeAll(const std::vector<Instr> &code)
{
    std::vector<uint64_t> words;
    words.reserve(code.size());
    for (const auto &instr : code)
        words.push_back(encode(instr));
    return words;
}

std::optional<std::vector<Instr>>
decodeAll(const std::vector<uint64_t> &words)
{
    std::vector<Instr> code;
    code.reserve(words.size());
    for (const auto word : words) {
        auto instr = decode(word);
        if (!instr)
            return std::nullopt;
        code.push_back(*instr);
    }
    return code;
}

} // namespace vp::isa
