#include "isa/opcode.hh"

#include <array>

namespace vp::isa {

namespace {

struct OpInfo
{
    std::string_view name;
    Category cat;
    Format fmt;
    bool writesReg;
};

constexpr std::array<OpInfo, numOpcodes> opTable = {{
    // AddSub
    {"add",   Category::AddSub,  Format::R,    true},
    {"addi",  Category::AddSub,  Format::I,    true},
    {"sub",   Category::AddSub,  Format::R,    true},
    // MultDiv
    {"mul",   Category::MultDiv, Format::R,    true},
    {"mulh",  Category::MultDiv, Format::R,    true},
    {"div",   Category::MultDiv, Format::R,    true},
    {"rem",   Category::MultDiv, Format::R,    true},
    // Logic
    {"and",   Category::Logic,   Format::R,    true},
    {"andi",  Category::Logic,   Format::I,    true},
    {"or",    Category::Logic,   Format::R,    true},
    {"ori",   Category::Logic,   Format::I,    true},
    {"xor",   Category::Logic,   Format::R,    true},
    {"xori",  Category::Logic,   Format::I,    true},
    {"nor",   Category::Logic,   Format::R,    true},
    {"not",   Category::Logic,   Format::R2,   true},
    // Shift
    {"sll",   Category::Shift,   Format::R,    true},
    {"slli",  Category::Shift,   Format::I,    true},
    {"srl",   Category::Shift,   Format::R,    true},
    {"srli",  Category::Shift,   Format::I,    true},
    {"sra",   Category::Shift,   Format::R,    true},
    {"srai",  Category::Shift,   Format::I,    true},
    // Set
    {"slt",   Category::Set,     Format::R,    true},
    {"slti",  Category::Set,     Format::I,    true},
    {"sltu",  Category::Set,     Format::R,    true},
    {"sltiu", Category::Set,     Format::I,    true},
    {"seq",   Category::Set,     Format::R,    true},
    {"seqi",  Category::Set,     Format::I,    true},
    {"sne",   Category::Set,     Format::R,    true},
    {"snei",  Category::Set,     Format::I,    true},
    // Lui
    {"lui",   Category::Lui,     Format::U,    true},
    // Loads
    {"ld",    Category::Loads,   Format::Mem,  true},
    {"lw",    Category::Loads,   Format::Mem,  true},
    {"lh",    Category::Loads,   Format::Mem,  true},
    {"lbu",   Category::Loads,   Format::Mem,  true},
    {"lb",    Category::Loads,   Format::Mem,  true},
    // Other
    {"min",   Category::Other,   Format::R,    true},
    {"max",   Category::Other,   Format::R,    true},
    {"abs",   Category::Other,   Format::R2,   true},
    {"neg",   Category::Other,   Format::R2,   true},
    {"mov",   Category::Other,   Format::R2,   true},
    // Stores
    {"sd",    Category::Store,   Format::MemS, false},
    {"sw",    Category::Store,   Format::MemS, false},
    {"sh",    Category::Store,   Format::MemS, false},
    {"sb",    Category::Store,   Format::MemS, false},
    // Branches
    {"beq",   Category::Branch,  Format::B,    false},
    {"bne",   Category::Branch,  Format::B,    false},
    {"blt",   Category::Branch,  Format::B,    false},
    {"bge",   Category::Branch,  Format::B,    false},
    {"bltu",  Category::Branch,  Format::B,    false},
    {"bgeu",  Category::Branch,  Format::B,    false},
    {"beqz",  Category::Branch,  Format::B,    false},
    {"bnez",  Category::Branch,  Format::B,    false},
    // Jumps. jal/jalr write the link register, but the Jump category is
    // excluded from prediction, following Section 3 of the paper.
    {"j",     Category::Jump,    Format::J,    false},
    {"jal",   Category::Jump,    Format::JL,   true},
    {"jr",    Category::Jump,    Format::JR,   false},
    {"jalr",  Category::Jump,    Format::JLR,  true},
    // System
    {"nop",   Category::System,  Format::N,    false},
    {"halt",  Category::System,  Format::N,    false},
}};

constexpr std::array<std::string_view, numCategories> catNames = {{
    "AddSub", "Loads", "Logic", "Shift", "Set", "MultDiv", "Lui", "Other",
    "Store", "Branch", "Jump", "System",
}};

} // anonymous namespace

std::string_view
categoryName(Category cat)
{
    return catNames[static_cast<int>(cat)];
}

std::optional<Category>
categoryFromName(std::string_view name)
{
    for (int i = 0; i < numCategories; ++i) {
        if (catNames[i] == name)
            return static_cast<Category>(i);
    }
    return std::nullopt;
}

std::string_view
opcodeName(Opcode op)
{
    return opTable[static_cast<int>(op)].name;
}

std::optional<Opcode>
opcodeFromName(std::string_view name)
{
    for (int i = 0; i < numOpcodes; ++i) {
        if (opTable[i].name == name)
            return static_cast<Opcode>(i);
    }
    return std::nullopt;
}

Category
opcodeCategory(Opcode op)
{
    return opTable[static_cast<int>(op)].cat;
}

Format
opcodeFormat(Opcode op)
{
    return opTable[static_cast<int>(op)].fmt;
}

bool
opcodeWritesReg(Opcode op)
{
    return opTable[static_cast<int>(op)].writesReg;
}

} // namespace vp::isa
