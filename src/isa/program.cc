#include "isa/program.hh"

#include <sstream>

namespace vp::isa {

size_t
Program::countPredictedStatic() const
{
    size_t n = 0;
    for (const auto &instr : code) {
        if (instr.predicted())
            ++n;
    }
    return n;
}

size_t
Program::countPredictedStatic(Category cat) const
{
    size_t n = 0;
    for (const auto &instr : code) {
        if (instr.predicted() && instr.category() == cat)
            ++n;
    }
    return n;
}

std::string
Program::validate() const
{
    std::ostringstream err;
    for (size_t pc = 0; pc < code.size(); ++pc) {
        const auto &instr = code[pc];
        if (instr.rd >= numRegs || instr.rs1 >= numRegs ||
            instr.rs2 >= numRegs) {
            err << "pc " << pc << ": register out of range";
            return err.str();
        }
        const auto fmt = opcodeFormat(instr.op);
        const bool is_cti = fmt == Format::B || fmt == Format::J ||
                fmt == Format::JL;
        if (is_cti) {
            if (instr.imm < 0 ||
                static_cast<size_t>(instr.imm) >= code.size()) {
                err << "pc " << pc << ": control target " << instr.imm
                    << " outside code section of size " << code.size();
                return err.str();
            }
        }
    }
    return "";
}

} // namespace vp::isa
