/**
 * @file
 * Opcode and instruction-category definitions for the VP ISA.
 *
 * The VP ISA is a 64-bit MIPS-like register machine modelled on the
 * SimpleScalar PISA used by Sazeides & Smith (MICRO-30, 1997). The
 * instruction categories mirror Table 3 of the paper; they drive the
 * per-category breakdowns in Figures 4-7 and Tables 4-5.
 */

#ifndef VP_ISA_OPCODE_HH
#define VP_ISA_OPCODE_HH

#include <cstdint>
#include <optional>
#include <string_view>

namespace vp::isa {

/** Number of general purpose registers. Register 0 is hardwired to 0. */
constexpr int numRegs = 32;

/** Conventional link register written by jal/jalr. */
constexpr int linkReg = 31;

/** Conventional stack pointer register used by the workload runtime. */
constexpr int stackReg = 30;

/**
 * Instruction categories, matching Table 3 of the paper.
 *
 * The first eight categories cover instructions that write a general
 * purpose register and are therefore *predicted*; the remaining ones
 * (stores, branches, jumps, system) are executed but never predicted,
 * exactly as in Section 3 of the paper. Note that jal/jalr write the
 * link register but fall in the Jump category and are excluded, again
 * following the paper ("stores, branches and jumps are not predicted").
 */
enum class Category : uint8_t {
    AddSub,
    Loads,
    Logic,
    Shift,
    Set,
    MultDiv,
    Lui,
    Other,
    Store,
    Branch,
    Jump,
    System,
    NumCategories
};

/** Number of categories that are eligible for value prediction. */
constexpr int numPredictedCategories = 8;

/** Total number of categories (predicted + unpredicted). */
constexpr int numCategories = static_cast<int>(Category::NumCategories);

/** @return true if instructions of this category are value-predicted. */
constexpr bool
isPredictedCategory(Category cat)
{
    return static_cast<int>(cat) < numPredictedCategories;
}

/** Short display code for a category (e.g. "AddSub"), as in Table 3. */
std::string_view categoryName(Category cat);

/** Parse a category display code. */
std::optional<Category> categoryFromName(std::string_view name);

/**
 * Operand format of an instruction.
 *
 * Determines which of the rd/rs1/rs2/imm fields are meaningful and how
 * the assembler parses the operand list.
 */
enum class Format : uint8_t {
    R,      ///< rd, rs1, rs2
    R2,     ///< rd, rs1 (unary register op)
    I,      ///< rd, rs1, imm
    U,      ///< rd, imm
    Mem,    ///< rd, imm(rs1) for loads
    MemS,   ///< rs2, imm(rs1) for stores
    B,      ///< rs1, rs2, target (imm)
    J,      ///< target (imm)
    JL,     ///< rd, target (imm) -- jal
    JR,     ///< rs1 -- jr
    JLR,    ///< rd, rs1 -- jalr
    N       ///< no operands
};

/**
 * The opcode set.
 *
 * Register-writing opcodes are grouped by paper category. The set is
 * deliberately MIPS-flavoured: it is rich enough to compile realistic
 * integer kernels (hashing, compression, table walks, DCT) while
 * remaining small enough to interpret at tens of millions of
 * instructions per second.
 */
enum class Opcode : uint8_t {
    // AddSub
    Add, Addi, Sub,
    // MultDiv
    Mul, Mulh, Div, Rem,
    // Logic
    And, Andi, Or, Ori, Xor, Xori, Nor, Not,
    // Shift
    Sll, Slli, Srl, Srli, Sra, Srai,
    // Set
    Slt, Slti, Sltu, Sltiu, Seq, Seqi, Sne, Snei,
    // Lui
    Lui,
    // Loads
    Ld, Lw, Lh, Lbu, Lb,
    // Other register-writing ops ("Floating, Jump, Other" analog)
    Min, Max, Abs, Neg, Mov,
    // Stores
    Sd, Sw, Sh, Sb,
    // Branches
    Beq, Bne, Blt, Bge, Bltu, Bgeu, Beqz, Bnez,
    // Jumps
    J, Jal, Jr, Jalr,
    // System
    Nop, Halt,
    NumOpcodes
};

/** Total number of opcodes. */
constexpr int numOpcodes = static_cast<int>(Opcode::NumOpcodes);

/** Mnemonic for an opcode (e.g. "addi"). */
std::string_view opcodeName(Opcode op);

/** Parse a mnemonic; returns nullopt for unknown mnemonics. */
std::optional<Opcode> opcodeFromName(std::string_view name);

/** Category of an opcode, per Table 3 of the paper. */
Category opcodeCategory(Opcode op);

/** Operand format of an opcode. */
Format opcodeFormat(Opcode op);

/** @return true if the opcode writes a general purpose register. */
bool opcodeWritesReg(Opcode op);

/**
 * @return true if the opcode's result is eligible for value prediction
 * (writes a GPR and is in a predicted category).
 */
inline bool
opcodePredicted(Opcode op)
{
    return opcodeWritesReg(op) && isPredictedCategory(opcodeCategory(op));
}

} // namespace vp::isa

#endif // VP_ISA_OPCODE_HH
