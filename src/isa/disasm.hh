/**
 * @file
 * Disassembler for VP ISA instructions and programs.
 */

#ifndef VP_ISA_DISASM_HH
#define VP_ISA_DISASM_HH

#include <string>

#include "isa/program.hh"

namespace vp::isa {

/** Render one instruction in assembler syntax (e.g. "addi r5, r5, 1"). */
std::string disassemble(const Instr &instr);

/**
 * Render a whole program, one instruction per line, prefixed with the
 * PC and annotated with known code symbols.
 */
std::string disassemble(const Program &prog);

} // namespace vp::isa

#endif // VP_ISA_DISASM_HH
