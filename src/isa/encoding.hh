/**
 * @file
 * Fixed-width 64-bit binary encoding of VP ISA instructions.
 *
 * Layout (little-endian field order from bit 0):
 *   [ 7: 0] opcode
 *   [15: 8] rd
 *   [23:16] rs1
 *   [31:24] rs2
 *   [63:32] imm (two's complement 32-bit)
 *
 * The encoding exists so that programs can round-trip through a flat
 * binary image (tests exercise this), mirroring how SimpleScalar
 * consumed compiled binaries.
 */

#ifndef VP_ISA_ENCODING_HH
#define VP_ISA_ENCODING_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "isa/instr.hh"

namespace vp::isa {

/** Pack an instruction into its 64-bit binary form. */
uint64_t encode(const Instr &instr);

/**
 * Decode a 64-bit word into an instruction.
 *
 * @return nullopt if the opcode field is out of range or a register
 * field exceeds numRegs.
 */
std::optional<Instr> decode(uint64_t word);

/** Encode a whole code section. */
std::vector<uint64_t> encodeAll(const std::vector<Instr> &code);

/**
 * Decode a whole code section.
 *
 * @return nullopt if any word fails to decode.
 */
std::optional<std::vector<Instr>> decodeAll(
        const std::vector<uint64_t> &words);

} // namespace vp::isa

#endif // VP_ISA_ENCODING_HH
