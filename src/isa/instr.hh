/**
 * @file
 * Decoded instruction representation.
 */

#ifndef VP_ISA_INSTR_HH
#define VP_ISA_INSTR_HH

#include <cstdint>

#include "isa/opcode.hh"

namespace vp::isa {

/**
 * A decoded instruction.
 *
 * The VM interprets instructions in this decoded form; the packed
 * 64-bit binary encoding lives in encoding.hh. Branch and jump targets
 * are absolute instruction indices stored in @c imm.
 */
struct Instr
{
    Opcode op = Opcode::Nop;
    uint8_t rd = 0;     ///< destination register
    uint8_t rs1 = 0;    ///< first source register
    uint8_t rs2 = 0;    ///< second source register
    int32_t imm = 0;    ///< immediate / displacement / target

    Instr() = default;

    Instr(Opcode op, uint8_t rd, uint8_t rs1, uint8_t rs2, int32_t imm)
        : op(op), rd(rd), rs1(rs1), rs2(rs2), imm(imm)
    {}

    bool operator==(const Instr &other) const = default;

    /** Category of this instruction (Table 3 of the paper). */
    Category category() const { return opcodeCategory(op); }

    /** True if this instruction's result is value-predicted. */
    bool predicted() const { return opcodePredicted(op); }
};

// --- Convenience constructors used by the program builder and tests ---

inline Instr
makeR(Opcode op, int rd, int rs1, int rs2)
{
    return Instr(op, static_cast<uint8_t>(rd), static_cast<uint8_t>(rs1),
                 static_cast<uint8_t>(rs2), 0);
}

inline Instr
makeR2(Opcode op, int rd, int rs1)
{
    return Instr(op, static_cast<uint8_t>(rd), static_cast<uint8_t>(rs1),
                 0, 0);
}

inline Instr
makeI(Opcode op, int rd, int rs1, int32_t imm)
{
    return Instr(op, static_cast<uint8_t>(rd), static_cast<uint8_t>(rs1),
                 0, imm);
}

inline Instr
makeU(Opcode op, int rd, int32_t imm)
{
    return Instr(op, static_cast<uint8_t>(rd), 0, 0, imm);
}

inline Instr
makeMem(Opcode op, int reg, int base, int32_t offset)
{
    // For loads `reg` is rd; for stores it is rs2 (the stored value).
    if (opcodeFormat(op) == Format::MemS) {
        return Instr(op, 0, static_cast<uint8_t>(base),
                     static_cast<uint8_t>(reg), offset);
    }
    return Instr(op, static_cast<uint8_t>(reg), static_cast<uint8_t>(base),
                 0, offset);
}

inline Instr
makeB(Opcode op, int rs1, int rs2, int32_t target)
{
    return Instr(op, 0, static_cast<uint8_t>(rs1),
                 static_cast<uint8_t>(rs2), target);
}

inline Instr
makeJ(Opcode op, int32_t target)
{
    return Instr(op, 0, 0, 0, target);
}

} // namespace vp::isa

#endif // VP_ISA_INSTR_HH
