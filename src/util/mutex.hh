/**
 * @file
 * Annotated mutex wrappers: the only lock vocabulary src/ uses.
 *
 * vp::util::Mutex is std::mutex carrying the VP_CAPABILITY annotation,
 * MutexLock is the scoped holder Clang's Thread Safety Analysis can
 * reason about, and CondVar is a condition variable that waits on a
 * Mutex directly so predicates stay in the annotated caller. tools/
 * vplint enforces that no naked std::mutex / std::lock_guard /
 * std::unique_lock appears outside src/util/ — every lock in the tree
 * goes through these types, which is what makes `-DVP_THREAD_SAFETY=ON`
 * (clang, -Wthread-safety -Werror) a whole-tree proof rather than a
 * spot check.
 *
 * Zero-cost: the wrappers are header-only forwarding shims around the
 * std primitives; off Clang the annotations vanish entirely (see
 * thread_annotations.hh) and the generated code is identical to the
 * std::lock_guard code it replaced.
 *
 * Condition-variable convention: write the predicate loop in the
 * caller —
 * @code
 *   MutexLock lock(mutex_);
 *   while (!ready_)        // guarded access, analysed in this scope
 *       cv_.wait(mutex_);
 * @endcode
 * rather than passing a lambda predicate. A lambda body is analysed
 * as a separate unannotated function, so a `[this] { return ready_; }`
 * predicate would read the guarded member outside any visible lock.
 */

#ifndef VP_UTIL_MUTEX_HH
#define VP_UTIL_MUTEX_HH

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hh"

namespace vp::util {

/** std::mutex as an annotated capability. */
class VP_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() VP_ACQUIRE()
    {
        mutex_.lock();
    }

    void
    unlock() VP_RELEASE()
    {
        mutex_.unlock();
    }

    bool
    try_lock() VP_TRY_ACQUIRE(true)
    {
        return mutex_.try_lock();
    }

  private:
    friend class CondVar;
    std::mutex mutex_;
};

/**
 * Scoped lock over one Mutex — the annotated std::lock_guard.
 *
 * The adopt form takes over a mutex the caller already holds (e.g.
 * after a counted try_lock/lock sequence) and still releases at scope
 * exit.
 */
class VP_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) VP_ACQUIRE(mutex) : mutex_(mutex)
    {
        mutex_.lock();
    }

    MutexLock(Mutex &mutex, std::adopt_lock_t) VP_REQUIRES(mutex)
        : mutex_(mutex)
    {
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    ~MutexLock() VP_RELEASE() { mutex_.unlock(); }

  private:
    Mutex &mutex_;
};

/**
 * Condition variable waiting on a Mutex the caller holds (via
 * MutexLock). Built on condition_variable_any, which unlocks/relocks
 * the Mutex through its annotated lock()/unlock() — those calls live
 * in system-header template code, outside the analysis.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

    /** Atomically release @p mutex, sleep, reacquire. Spurious
     *  wake-ups happen; loop on the predicate in the caller. */
    void
    wait(Mutex &mutex) VP_REQUIRES(mutex)
    {
        cv_.wait(mutex.mutex_);
    }

    /** wait() with a timeout; returns false on timeout. */
    template <class Rep, class Period>
    bool
    wait_for(Mutex &mutex,
             const std::chrono::duration<Rep, Period> &timeout)
            VP_REQUIRES(mutex)
    {
        return cv_.wait_for(mutex.mutex_, timeout) ==
               std::cv_status::no_timeout;
    }

  private:
    std::condition_variable_any cv_;
};

} // namespace vp::util

#endif // VP_UTIL_MUTEX_HH
