/**
 * @file
 * Clang Thread Safety Analysis annotation macros.
 *
 * The repo's concurrency invariants — "every BoundedTable touch, even
 * a const PREDICT peek, happens under the stripe lock", "the obs
 * registry shard list is guarded, the shards themselves are
 * thread-owned" — used to live in header comments and a TSan CI
 * configuration that can only see the interleavings a run happens to
 * take. These macros move them into the compiler: under Clang,
 * `-Wthread-safety` (the `-DVP_THREAD_SAFETY=ON` CMake configuration
 * turns it on with -Werror) proves at compile time that every access
 * to a VP_GUARDED_BY member happens while its capability is held, on
 * every path, taken or not.
 *
 * Conventions (enforced by tools/vplint and the annotated CI build):
 *
 *  - Mutex-protected members carry VP_GUARDED_BY(mutex_) at the
 *    declaration; the mutex itself is a vp::util::Mutex
 *    (util/mutex.hh), never a naked std::mutex.
 *  - Functions that expect the caller to hold a lock carry
 *    VP_REQUIRES(mutex_); functions that lock on the caller's behalf
 *    carry VP_ACQUIRE/VP_RELEASE.
 *  - Thread-owned state (an epoll loop's connection map, a registry
 *    shard after local()) is deliberately unannotated, with a comment
 *    naming the owning thread — absence of an annotation plus a
 *    confinement comment is the convention for "no lock by design".
 *
 * Off Clang every macro expands to nothing, so gcc builds (and the
 * generated code everywhere) are byte-for-byte unaffected: the
 * analysis is purely static and zero-cost at runtime.
 *
 * Reference: "Thread Safety Analysis" (clang documentation); the
 * macro set mirrors the capability vocabulary popularized by abseil's
 * thread_annotations.h, under a VP_ prefix.
 */

#ifndef VP_UTIL_THREAD_ANNOTATIONS_HH
#define VP_UTIL_THREAD_ANNOTATIONS_HH

#if defined(__clang__) && !defined(VP_NO_THREAD_SAFETY_ANNOTATIONS)
#define VP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define VP_THREAD_ANNOTATION(x)
#endif

/** Marks a class as a lockable capability ("mutex", "role", ...). */
#define VP_CAPABILITY(x) VP_THREAD_ANNOTATION(capability(x))

/** Marks an RAII class that acquires in its ctor, releases in its
 *  dtor (vp::util::MutexLock). */
#define VP_SCOPED_CAPABILITY VP_THREAD_ANNOTATION(scoped_lockable)

/** The member may only be touched while holding @p x. */
#define VP_GUARDED_BY(x) VP_THREAD_ANNOTATION(guarded_by(x))

/** The pointee may only be touched while holding @p x. */
#define VP_PT_GUARDED_BY(x) VP_THREAD_ANNOTATION(pt_guarded_by(x))

/** Lock-ordering declarations (deadlock prevention). */
#define VP_ACQUIRED_BEFORE(...) \
    VP_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define VP_ACQUIRED_AFTER(...) \
    VP_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** The caller must hold the capabilities (exclusive / shared). */
#define VP_REQUIRES(...) \
    VP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define VP_REQUIRES_SHARED(...) \
    VP_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** The function acquires the capabilities and does not release them. */
#define VP_ACQUIRE(...) \
    VP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define VP_ACQUIRE_SHARED(...) \
    VP_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/** The function releases capabilities the caller holds. */
#define VP_RELEASE(...) \
    VP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define VP_RELEASE_SHARED(...) \
    VP_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/** try_lock-style: acquires only when returning @p ret. */
#define VP_TRY_ACQUIRE(...) \
    VP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** The caller must NOT hold the capabilities (self-deadlock guard). */
#define VP_EXCLUDES(...) VP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Runtime assertion that the capability is held (fatal if not). */
#define VP_ASSERT_CAPABILITY(x) \
    VP_THREAD_ANNOTATION(assert_capability(x))

/** The function returns a reference to the capability. */
#define VP_RETURN_CAPABILITY(x) VP_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: disable the analysis for one function. Every use
 *  must carry a comment justifying why the analysis cannot see the
 *  synchronisation (thread confinement, join-ordering, ...). */
#define VP_NO_THREAD_SAFETY_ANALYSIS \
    VP_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // VP_UTIL_THREAD_ANNOTATIONS_HH
