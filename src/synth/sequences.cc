#include "synth/sequences.hh"

#include <algorithm>

namespace vp::synth {

std::string
seqClassName(SeqClass cls)
{
    switch (cls) {
      case SeqClass::Constant: return "C";
      case SeqClass::Stride: return "S";
      case SeqClass::NonStride: return "NS";
      case SeqClass::RepeatedStride: return "RS";
      case SeqClass::RepeatedNonStride: return "RNS";
    }
    return "?";
}

std::vector<uint64_t>
constantSeq(uint64_t value, size_t length)
{
    return std::vector<uint64_t>(length, value);
}

std::vector<uint64_t>
strideSeq(uint64_t start, int64_t delta, size_t length)
{
    std::vector<uint64_t> seq;
    seq.reserve(length);
    uint64_t value = start;
    for (size_t i = 0; i < length; ++i) {
        seq.push_back(value);
        value += static_cast<uint64_t>(delta);
    }
    return seq;
}

std::vector<uint64_t>
nonStrideSeq(uint64_t seed, size_t length)
{
    Rng rng(seed);
    std::vector<uint64_t> seq;
    seq.reserve(length);
    while (seq.size() < length) {
        const uint64_t value = rng.next();
        // Guarantee the tail never degenerates into a stride (or a
        // repeat of the previous value).
        if (seq.size() >= 2) {
            const uint64_t d_prev = seq.back() - seq[seq.size() - 2];
            if (value - seq.back() == d_prev)
                continue;
        }
        if (!seq.empty() && value == seq.back())
            continue;
        seq.push_back(value);
    }
    return seq;
}

std::vector<uint64_t>
repeatedStrideSeq(uint64_t start, int64_t delta, size_t period,
                  size_t length)
{
    return repeatPattern(strideSeq(start, delta, period), length);
}

std::vector<uint64_t>
repeatedNonStrideSeq(uint64_t seed, size_t period, size_t length)
{
    return repeatPattern(nonStrideSeq(seed, period), length);
}

std::vector<uint64_t>
repeatPattern(const std::vector<uint64_t> &pattern, size_t length)
{
    std::vector<uint64_t> seq;
    seq.reserve(length);
    if (pattern.empty())
        return seq;
    for (size_t i = 0; i < length; ++i)
        seq.push_back(pattern[i % pattern.size()]);
    return seq;
}

std::vector<uint64_t>
concatSeq(const std::vector<std::vector<uint64_t>> &parts)
{
    std::vector<uint64_t> seq;
    for (const auto &part : parts)
        seq.insert(seq.end(), part.begin(), part.end());
    return seq;
}

std::vector<uint64_t>
interleaveSeq(const std::vector<std::vector<uint64_t>> &parts)
{
    std::vector<uint64_t> seq;
    if (parts.empty())
        return seq;
    size_t max_len = 0;
    for (const auto &part : parts)
        max_len = std::max(max_len, part.size());
    for (size_t i = 0; i < max_len; ++i) {
        for (const auto &part : parts) {
            if (i < part.size())
                seq.push_back(part[i]);
        }
    }
    return seq;
}

} // namespace vp::synth
