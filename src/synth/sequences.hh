/**
 * @file
 * Synthetic value-sequence generators (Section 1.1 of the paper).
 *
 * The paper classifies value sequences as Constant (C), Stride (S),
 * Non-Stride (NS), Repeated Stride (RS) and Repeated Non-Stride (RNS),
 * and analyzes predictor behaviour on each (Table 1, Figure 2). These
 * generators produce exactly those classes, plus compositions, for the
 * analytical experiments and the property-based test suites.
 */

#ifndef VP_SYNTH_SEQUENCES_HH
#define VP_SYNTH_SEQUENCES_HH

#include <cstdint>
#include <string>
#include <vector>

namespace vp::synth {

/** Sequence class tags mirroring the paper's taxonomy. */
enum class SeqClass { Constant, Stride, NonStride, RepeatedStride,
                      RepeatedNonStride };

/** Display name ("C", "S", "NS", "RS", "RNS"). */
std::string seqClassName(SeqClass cls);

/** Constant sequence: v v v v ... */
std::vector<uint64_t> constantSeq(uint64_t value, size_t length);

/** Stride sequence: start, start+delta, start+2*delta, ... */
std::vector<uint64_t> strideSeq(uint64_t start, int64_t delta,
                                size_t length);

/**
 * Non-stride sequence: pseudo-random values with no repeating pattern
 * (deterministic in @p seed). Consecutive deltas are guaranteed
 * non-constant.
 */
std::vector<uint64_t> nonStrideSeq(uint64_t seed, size_t length);

/**
 * Repeated stride: a stride run of @p period values repeated until
 * @p length values are produced, e.g. 1 2 3 1 2 3 ...
 */
std::vector<uint64_t> repeatedStrideSeq(uint64_t start, int64_t delta,
                                        size_t period, size_t length);

/**
 * Repeated non-stride: a fixed random pattern of @p period values
 * repeated, e.g. 1 -13 -99 7 1 -13 -99 7 ...
 */
std::vector<uint64_t> repeatedNonStrideSeq(uint64_t seed, size_t period,
                                           size_t length);

/** Repeat an explicit pattern until @p length values are produced. */
std::vector<uint64_t> repeatPattern(const std::vector<uint64_t> &pattern,
                                    size_t length);

/**
 * Compose sequences by concatenation (phases of program behaviour:
 * e.g. a stride phase followed by a constant phase).
 */
std::vector<uint64_t> concatSeq(
        const std::vector<std::vector<uint64_t>> &parts);

/**
 * Interleave sequences round-robin, modelling a static instruction
 * fed by alternating control paths.
 */
std::vector<uint64_t> interleaveSeq(
        const std::vector<std::vector<uint64_t>> &parts);

/**
 * xorshift64* PRNG used across synthetic generators and workload
 * input generation; tiny, fast, and deterministic everywhere.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    uint64_t
    next()
    {
        uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform value in [0, bound). bound must be > 0. */
    uint64_t range(uint64_t bound) { return next() % bound; }

    /** Uniform value in [lo, hi]. */
    int64_t
    between(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
                range(static_cast<uint64_t>(hi - lo + 1)));
    }

  private:
    uint64_t state_;
};

} // namespace vp::synth

#endif // VP_SYNTH_SEQUENCES_HH
