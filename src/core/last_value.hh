/**
 * @file
 * Last-value predictors (Section 2.1 of the paper).
 */

#ifndef VP_CORE_LAST_VALUE_HH
#define VP_CORE_LAST_VALUE_HH

#include <cstdint>
#include <unordered_map>

#include "core/predictor.hh"

namespace vp::core {

/**
 * Replacement/hysteresis policy for the last-value table.
 *
 * The paper's main experiments use AlwaysUpdate ("last value prediction
 * (l) with an always-update policy (no hysteresis)"); the other two are
 * the hysteresis variants Section 2.1 describes and are evaluated in
 * the hysteresis ablation bench.
 */
enum class LvPolicy {
    /** Stored value is unconditionally replaced by the actual value. */
    AlwaysUpdate,

    /**
     * A saturating counter is incremented on success and decremented
     * on failure; the stored value is replaced only when the counter
     * is below a threshold. Changes prediction after (possibly
     * inconsistent) incorrect behaviour.
     */
    SaturatingCounter,

    /**
     * The prediction changes to a new value only after that value has
     * been observed a given number of times in succession.
     */
    Consecutive
};

/** Tuning knobs for the hysteresis variants. */
struct LvConfig
{
    LvPolicy policy = LvPolicy::AlwaysUpdate;

    /** SaturatingCounter: replace when counter < threshold. */
    int counterMax = 3;
    int counterThreshold = 1;

    /** Consecutive: replace after this many consecutive sightings. */
    int consecutiveRequired = 2;

    friend bool operator==(const LvConfig &, const LvConfig &) = default;
};

/**
 * One last-value table entry.
 *
 * Shared between the unbounded predictor below and the bounded
 * (set-associative) variant so that, absent capacity evictions, the
 * two are identical by construction.
 */
struct LvEntry
{
    uint64_t value = 0;
    int counter = 0;            ///< SaturatingCounter state
    uint64_t candidate = 0;     ///< Consecutive state
    int candidateRun = 0;
};

/** Initialize a freshly allocated entry from the first observed value. */
void lvInitEntry(LvEntry &entry, uint64_t actual, const LvConfig &config);

/** Train an existing entry with the value actually produced. */
void lvTrainEntry(LvEntry &entry, uint64_t actual, const LvConfig &config);

/** Spec name ("l", "l-sat", "l-consec") for a policy. */
const char *lvPolicyName(LvPolicy policy);

/**
 * Last-value predictor: the trivial identity computation on the
 * previous value. Useful only for constant sequences (Table 1).
 */
class LastValuePredictor : public ValuePredictor
{
  public:
    explicit LastValuePredictor(LvConfig config = {});

    Prediction predict(uint64_t pc) const override;
    void update(uint64_t pc, uint64_t actual) override;
    std::string name() const override;
    void reset() override;
    size_t tableEntries() const override { return table_.size(); }

    void evalBatch(const uint64_t *pcs, const uint64_t *values,
                   size_t n, uint64_t *valid,
                   uint64_t *correct) override
    {
        trainBatch(pcs, values, n, valid, correct);
    }

    /**
     * Devirtualised batch loop: one hash probe per event (the
     * separate predict()/update() pair pays two), same predictions
     * and table state.
     */
    void trainBatch(const uint64_t *pcs, const uint64_t *values,
                    size_t n, uint64_t *valid, uint64_t *correct);

  private:
    LvConfig config_;
    std::unordered_map<uint64_t, LvEntry> table_;
};

} // namespace vp::core

#endif // VP_CORE_LAST_VALUE_HH
