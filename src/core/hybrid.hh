/**
 * @file
 * Hybrid predictor with a PC-indexed chooser.
 *
 * Section 4.2 of the paper concludes that "a hybrid fcm-stride
 * predictor with choosing seems to be a good approach"; this is that
 * predictor, built as an extension study (the paper itself stops at
 * the suggestion). The class composes *any* two ValuePredictor
 * components — the paper's s2 + fcm3 by default, bounded variants for
 * the §4.3 shared-budget studies — and the chooser itself can run on
 * a finite BoundedTable so a composed hybrid's chooser, stride, and
 * fcm tables can share one global hardware budget.
 */

#ifndef VP_CORE_HYBRID_HH
#define VP_CORE_HYBRID_HH

#include <optional>
#include <unordered_map>
#include <vector>

#include "core/bounded_table.hh"
#include "core/fcm.hh"
#include "core/predictor.hh"
#include "core/stride.hh"

namespace vp::core {

/** Legacy hybrid configuration: the paper's s2 + fcm components. */
struct HybridConfig
{
    StrideConfig stride;
    FcmConfig fcm;

    /**
     * Chooser: a per-PC signed counter; >= 0 selects the FCM
     * component, < 0 the stride component. Incremented when only FCM
     * is correct, decremented when only stride is correct.
     */
    int chooserMax = 7;

    /** Initial chooser bias (0 = start on FCM). */
    int chooserInit = 0;
};

/** Chooser shape for component-composed hybrids. */
struct HybridChooser
{
    /** Counter saturation (the range is [-max - 1, max]). */
    int max = 7;

    /** Initial bias (0 = start on the second component). */
    int init = 0;

    /**
     * Chooser table geometry; nullopt keeps the unbounded per-PC map
     * (the idealised chooser the legacy `hybrid` spec uses). A
     * bounded chooser evicts under pressure — an evicted PC restarts
     * from @c init — which is exactly the finite-resource cost the
     * hybrid_split experiment charges against the shared budget.
     */
    std::optional<BoundedTableConfig> table;
};

/**
 * McFarling-style chooser hybrid of two component predictors.
 *
 * Both components are always trained; the chooser learns, per static
 * instruction, which component to believe (counter >= 0 selects the
 * *second* component, historically the fcm side). This implements the
 * "choose among the two component predictors via the PC address"
 * approach sketched in Section 4.2.
 */
class HybridPredictor : public ValuePredictor
{
  public:
    /** The paper's hybrid: s2 + fcm3 with an unbounded chooser. */
    explicit HybridPredictor(HybridConfig config = {});

    /**
     * Composed hybrid over arbitrary components. @p first is chosen
     * when the counter is negative, @p second otherwise.
     * @throws std::invalid_argument when a component is null.
     */
    HybridPredictor(PredictorPtr first, PredictorPtr second,
                    HybridChooser chooser = {});

    Prediction predict(uint64_t pc) const override;
    void update(uint64_t pc, uint64_t actual) override;
    std::string name() const override;
    void reset() override;

    /**
     * Batched evaluation: each component grades the whole batch with
     * its own evalBatch (components never see the chooser, so their
     * per-event pre-update gradings are exactly what the scalar
     * update() recomputes), then a sequential chooser pass replays
     * the scalar counter protocol and derives the hybrid's bits.
     * One chooser touch per event instead of a peek plus a touch.
     */
    void evalBatch(const uint64_t *pcs, const uint64_t *values,
                   size_t n, uint64_t *valid,
                   uint64_t *correct) override;

    /** Chooser entries + both components (honest §4.3 accounting). */
    size_t tableEntries() const override;

    /** Live chooser counters (bounded: table occupancy). */
    size_t chooserEntries() const;

    /** Fraction of dynamic choices that selected the second (fcm)
     *  component. */
    double fcmChoiceFraction() const;

    /** Times a PC's chooser counter crossed the preference boundary
     *  (component selection flipped on the next prediction). */
    uint64_t chooserFlips() const { return chooserFlips_; }

    /** Chooser counters under "hybrid.chooser." plus both components'
     *  own dumps (their family prefixes). */
    void collectCounters(CounterSink &sink) const override;

  private:
    /** One bounded-chooser counter (init applied on insert). */
    struct ChooserEntry
    {
        int counter = 0;
    };

    /** Current counter for @p pc without touching recency. */
    int counterFor(uint64_t pc) const;

    PredictorPtr first_;        ///< chosen when counter < 0
    PredictorPtr second_;       ///< chosen when counter >= 0
    HybridChooser chooser_;
    std::unordered_map<uint64_t, int> mapChooser_;      // unbounded
    std::optional<BoundedTable<ChooserEntry>> boundedChooser_;
    uint64_t choseSecond_ = 0;
    uint64_t choices_ = 0;
    uint64_t chooserFlips_ = 0;
    std::vector<uint64_t> scratch_;     ///< component bit rows
};

} // namespace vp::core

#endif // VP_CORE_HYBRID_HH
