/**
 * @file
 * Hybrid stride+FCM predictor with a PC-indexed chooser.
 *
 * Section 4.2 of the paper concludes that "a hybrid fcm-stride
 * predictor with choosing seems to be a good approach"; this is that
 * predictor, built as an extension study (the paper itself stops at
 * the suggestion).
 */

#ifndef VP_CORE_HYBRID_HH
#define VP_CORE_HYBRID_HH

#include <unordered_map>

#include "core/fcm.hh"
#include "core/predictor.hh"
#include "core/stride.hh"

namespace vp::core {

/** Hybrid configuration. */
struct HybridConfig
{
    StrideConfig stride;
    FcmConfig fcm;

    /**
     * Chooser: a per-PC signed counter; >= 0 selects the FCM
     * component, < 0 the stride component. Incremented when only FCM
     * is correct, decremented when only stride is correct.
     */
    int chooserMax = 7;

    /** Initial chooser bias (0 = start on FCM). */
    int chooserInit = 0;
};

/**
 * McFarling-style chooser hybrid of the paper's s2 and fcm predictors.
 *
 * Both components are always trained; the chooser learns, per static
 * instruction, which component to believe. This implements the
 * "choose among the two component predictors via the PC address"
 * approach sketched in Section 4.2.
 */
class HybridPredictor : public ValuePredictor
{
  public:
    explicit HybridPredictor(HybridConfig config = {});

    Prediction predict(uint64_t pc) const override;
    void update(uint64_t pc, uint64_t actual) override;
    std::string name() const override;
    void reset() override;
    size_t tableEntries() const override;

    /** Fraction of dynamic choices that selected the FCM component. */
    double fcmChoiceFraction() const;

  private:
    HybridConfig config_;
    StridePredictor stride_;
    FcmPredictor fcm_;
    std::unordered_map<uint64_t, int> chooser_;
    uint64_t choseFcm_ = 0;
    uint64_t choices_ = 0;
};

} // namespace vp::core

#endif // VP_CORE_HYBRID_HH
