#include "core/predictor.hh"

namespace vp::core {

void
ValuePredictor::evalBatch(const uint64_t *pcs, const uint64_t *values,
                          size_t n, uint64_t *valid, uint64_t *correct)
{
    for (size_t i = 0; i < n; ++i) {
        const Prediction pred = predict(pcs[i]);
        if (pred.valid) {
            bits::set(valid, i);
            if (pred.value == values[i])
                bits::set(correct, i);
        }
        update(pcs[i], values[i]);
    }
}

void
ValuePredictor::collectCounters(CounterSink &sink) const
{
    // Unbounded reference predictors: nothing finite to report.
    (void)sink;
}

} // namespace vp::core
