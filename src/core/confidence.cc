#include "core/confidence.hh"

#include <stdexcept>
#include <string>

namespace vp::core {

std::string
confidenceSuffix(const ConfidenceConfig &config)
{
    std::string s = ":c";
    s += std::to_string(config.width);
    s += "t";
    s += std::to_string(config.threshold);
    if (config.penalty == ConfidencePenalty::Decrement)
        s += "d";
    return s;
}

ConfidencePredictor::ConfidencePredictor(PredictorPtr inner,
                                         ConfidenceConfig config)
    : inner_(std::move(inner)), config_(config)
{
    if (inner_ == nullptr)
        throw std::invalid_argument("confidence needs a predictor");
    if (config_.width < 1 || config_.width > 16) {
        throw std::invalid_argument(
                "confidence width must be in [1, 16]");
    }
    if (config_.threshold < 0)
        throw std::invalid_argument("confidence threshold must be >= 0");
}

Prediction
ConfidencePredictor::predict(uint64_t pc) const
{
    const Prediction inner = inner_->predict(pc);
    lastPc_ = pc;
    lastInner_ = inner;
    lastFresh_ = true;
    if (!inner.valid || counter(pc) < config_.threshold)
        return Prediction::none();
    return inner;
}

void
ConfidencePredictor::update(uint64_t pc, uint64_t actual)
{
    // Grade the *inner* prediction, not the gated one: the counter
    // tracks how trustworthy the table currently is at this PC, which
    // is exactly the quantity the gate thresholds. Grading the gated
    // prediction instead would freeze the counter below threshold.
    // The predict-then-update protocol just computed it; fall back to
    // a fresh lookup only when update() is called on its own.
    const Prediction inner = lastFresh_ && lastPc_ == pc
                                     ? lastInner_
                                     : inner_->predict(pc);
    lastFresh_ = false;
    const bool hit = inner.valid && inner.value == actual;

    int &count = counters_[pc];
    // An inner prediction the gate suppressed: the coverage the
    // machine paid for caution. Judged on the pre-update counter,
    // exactly what predict() gated on.
    gatedDeclines_ += inner.valid && count < config_.threshold;
    if (hit) {
        if (count < config_.maxCount())
            ++count;
    } else if (config_.penalty == ConfidencePenalty::Reset) {
        count = 0;
    } else if (count > 0) {
        --count;
    }

    inner_->update(pc, actual);
}

void
ConfidencePredictor::evalBatch(const uint64_t *pcs,
                               const uint64_t *values, size_t n,
                               uint64_t *valid, uint64_t *correct)
{
    const size_t words = bits::words(n);
    scratch_.assign(2 * words, 0);
    uint64_t *inner_valid = scratch_.data();
    uint64_t *inner_correct = inner_valid + words;

    inner_->evalBatch(pcs, values, n, inner_valid, inner_correct);
    lastFresh_ = false;

    for (size_t i = 0; i < n; ++i) {
        const bool hit = bits::test(inner_correct, i);
        int &count = counters_[pcs[i]];
        gatedDeclines_ += bits::test(inner_valid, i) &&
                          count < config_.threshold;

        // Gate on the counter as it stood before this event, exactly
        // like the scalar predict()-then-update() pair.
        if (bits::test(inner_valid, i) && count >= config_.threshold) {
            bits::set(valid, i);
            if (hit)
                bits::set(correct, i);
        }

        if (hit) {
            if (count < config_.maxCount())
                ++count;
        } else if (config_.penalty == ConfidencePenalty::Reset) {
            count = 0;
        } else if (count > 0) {
            --count;
        }
    }
}

std::string
ConfidencePredictor::name() const
{
    return inner_->name() + confidenceSuffix(config_);
}

void
ConfidencePredictor::reset()
{
    counters_.clear();
    lastFresh_ = false;
    gatedDeclines_ = 0;
    inner_->reset();
}

size_t
ConfidencePredictor::tableEntries() const
{
    return inner_->tableEntries() + counters_.size();
}

int
ConfidencePredictor::counter(uint64_t pc) const
{
    const auto it = counters_.find(pc);
    return it == counters_.end() ? 0 : it->second;
}

void
ConfidencePredictor::collectCounters(CounterSink &sink) const
{
    sink.counter("confidence.gated_declines", gatedDeclines_);
    sink.gauge("confidence.counters", counters_.size());
    inner_->collectCounters(sink);
}

} // namespace vp::core
