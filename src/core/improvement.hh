/**
 * @file
 * Per-static-instruction improvement profile (Figure 9 of the paper).
 */

#ifndef VP_CORE_IMPROVEMENT_HH
#define VP_CORE_IMPROVEMENT_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "isa/opcode.hh"

namespace vp::core {

/**
 * Tracks, per static PC, how often each of two predictors (canonically
 * FCM vs stride) was correct, and derives the cumulative-improvement
 * curve of Figure 9: sort static instructions by (fcm correct - stride
 * correct) descending and plot the running fraction of total
 * improvement against the running fraction of static instructions.
 */
class ImprovementTracker
{
  public:
    /** Record one dynamic event. */
    void
    record(uint64_t pc, isa::Category cat, bool a_correct, bool b_correct)
    {
        auto &cell = table_[pc];
        cell.cat = cat;
        ++cell.total;
        if (a_correct)
            ++cell.aCorrect;
        if (b_correct)
            ++cell.bCorrect;
    }

    /** One point of the cumulative curve. */
    struct CurvePoint
    {
        double staticPct;       ///< % of static instructions consumed
        double improvementPct;  ///< % of total improvement accumulated
    };

    /**
     * Cumulative improvement curve over static instructions of
     * category @p cat (or all predicted categories when nullopt).
     *
     * The x axis covers *all* static instructions seen, so the curve
     * flattens once the instructions where A beats B are exhausted,
     * and can dip if B beats A on the tail — exactly the shape of
     * Figure 9.
     */
    std::vector<CurvePoint> curve(
            std::optional<isa::Category> cat = std::nullopt) const;

    /**
     * Smallest % of static instructions accounting for at least
     * @p improvement_fraction of the total improvement.
     */
    double staticPctForImprovement(double improvement_fraction) const;

    /** Number of distinct static instructions observed. */
    size_t staticCount() const { return table_.size(); }

  private:
    struct Cell
    {
        isa::Category cat = isa::Category::Other;
        uint64_t total = 0;
        uint64_t aCorrect = 0;
        uint64_t bCorrect = 0;
    };

    std::unordered_map<uint64_t, Cell> table_;
};

} // namespace vp::core

#endif // VP_CORE_IMPROVEMENT_HH
