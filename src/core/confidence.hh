/**
 * @file
 * Confidence estimation: gating predictions on per-instruction
 * saturating confidence counters.
 *
 * The paper measures *predictability* with always-predict semantics
 * (every eligible event counts against the predictor, Section 3), but
 * its Section 4 notes that a real machine speculates: a misprediction
 * costs recovery, so the machine must decide *when* to trust the
 * table. This decorator is that decision logic, factored out of the
 * predictors themselves: it wraps any ValuePredictor (unbounded or
 * bounded, any family, the hybrid) and converts low-confidence
 * predictions into declines, trading coverage (fraction of eligible
 * events actually predicted) against accuracy when predicting.
 *
 * The estimator is a per-static-instruction saturating up/down
 * counter, keyed by full PC exactly like the bounded last-value and
 * stride tables key their entries, so gating composes with finite
 * budgets unchanged. A correct inner prediction increments the
 * counter; anything else (a wrong value, or the inner predictor
 * declining) applies the miss penalty — either a reset to zero (the
 * classic "n strikes" estimator) or a decrement (slower to lose
 * trust). The wrapped predictor is always trained, so gating never
 * changes what the tables learn, only what the machine acts on.
 */

#ifndef VP_CORE_CONFIDENCE_HH
#define VP_CORE_CONFIDENCE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/predictor.hh"

namespace vp::core {

/** What a miss (wrong or declined inner prediction) does. */
enum class ConfidencePenalty {
    Reset,          ///< counter drops to 0
    Decrement       ///< counter loses 1
};

/** Estimator shape: counter width, gate threshold, miss penalty. */
struct ConfidenceConfig
{
    /**
     * Counter width in bits; the counter saturates at 2^width - 1.
     * Width 1 with threshold 1 is the minimal predict-after-one-hit
     * estimator. Must be in [1, 16].
     */
    int width = 2;

    /**
     * Predict only when the counter is >= this. 0 gates nothing (the
     * decorator is then observationally identical to the wrapped
     * predictor); anything above the saturation ceiling never
     * predicts.
     */
    int threshold = 2;

    ConfidencePenalty penalty = ConfidencePenalty::Reset;

    /** Saturation ceiling 2^width - 1. */
    int maxCount() const { return (1 << width) - 1; }

    friend bool operator==(const ConfidenceConfig &,
                           const ConfidenceConfig &) = default;
};

/** Render ":c<width>t<threshold>[d]" (Reset, the default, is tacit). */
std::string confidenceSuffix(const ConfidenceConfig &config);

/**
 * Confidence-gated view of another predictor.
 *
 * predict() forwards to the wrapped predictor and declines unless the
 * PC's confidence counter has reached the threshold. update() grades
 * the inner prediction against the actual value to train the counter,
 * then trains the wrapped predictor as usual. The gate never changes
 * table contents, so two decorators differing only in threshold see
 * identical counter streams — which is why raising the threshold can
 * only shrink the predicted set (the coverage/accuracy monotonicity
 * the vpexp confidence experiment demonstrates).
 */
class ConfidencePredictor : public ValuePredictor
{
  public:
    explicit ConfidencePredictor(PredictorPtr inner,
                                 ConfidenceConfig config = {});

    Prediction predict(uint64_t pc) const override;
    void update(uint64_t pc, uint64_t actual) override;
    std::string name() const override;
    void reset() override;

    /**
     * Batched evaluation: the inner predictor grades the whole batch
     * (one virtual dispatch), then a sequential pass applies the gate
     * and trains the counters exactly as the scalar pair would.
     */
    void evalBatch(const uint64_t *pcs, const uint64_t *values,
                   size_t n, uint64_t *valid,
                   uint64_t *correct) override;

    /** Inner table entries plus live confidence counters. */
    size_t tableEntries() const override;

    const ConfidenceConfig &config() const { return config_; }

    /** Current counter for @p pc (0 when never seen). */
    int counter(uint64_t pc) const;

    /** The wrapped predictor (for tests and reports). */
    const ValuePredictor &inner() const { return *inner_; }

    /** Inner predictions the gate suppressed (coverage given up). */
    uint64_t gatedDeclines() const { return gatedDeclines_; }

    /** "confidence.*" counters plus the inner predictor's dump. */
    void collectCounters(CounterSink &sink) const override;

  private:
    PredictorPtr inner_;
    ConfidenceConfig config_;
    std::unordered_map<uint64_t, int> counters_;
    uint64_t gatedDeclines_ = 0;

    /**
     * The last inner prediction, so the predict-then-update protocol
     * grades the counter without paying for a second inner lookup
     * (fcm predicts are the hottest path in the sweep). Invalidated
     * by update()/reset(): inner state changed.
     */
    mutable uint64_t lastPc_ = 0;
    mutable Prediction lastInner_{};
    mutable bool lastFresh_ = false;

    std::vector<uint64_t> scratch_;     ///< inner bit rows
};

} // namespace vp::core

#endif // VP_CORE_CONFIDENCE_HH
