/**
 * @file
 * Stride predictors (Section 2.1 of the paper).
 */

#ifndef VP_CORE_STRIDE_HH
#define VP_CORE_STRIDE_HH

#include <cstdint>
#include <unordered_map>

#include "core/predictor.hh"

namespace vp::core {

/** Stride-update policy. */
enum class StridePolicy {
    /** Stride recomputed from the last two values on every update. */
    Simple,

    /**
     * Saturating-counter hysteresis [Gonzalez & Gonzalez 97]: the
     * stride is replaced only when a success/failure counter falls
     * below a threshold. One misprediction per repeated-stride
     * iteration instead of two.
     */
    SaturatingCounter,

    /**
     * The two-delta method [Eickemeyer & Vassiliadis 93]: stride s1
     * always tracks the latest difference; the prediction stride s2 is
     * replaced only when the same s1 occurs twice in a row. This is
     * the "s2" predictor used throughout the paper's evaluation.
     */
    TwoDelta
};

/** Tuning knobs for the stride variants. */
struct StrideConfig
{
    StridePolicy policy = StridePolicy::TwoDelta;

    /** SaturatingCounter: replace stride when counter < threshold. */
    int counterMax = 3;
    int counterThreshold = 1;

    friend bool operator==(const StrideConfig &,
                           const StrideConfig &) = default;
};

/**
 * One stride table entry.
 *
 * Shared between the unbounded predictor below and the bounded
 * (set-associative) variant so that, absent capacity evictions, the
 * two are identical by construction.
 */
struct StrideEntry
{
    uint64_t last = 0;
    int64_t s1 = 0;         ///< most recent delta
    int64_t s2 = 0;         ///< prediction delta
    bool haveDelta = false;
    int counter = 0;        ///< SaturatingCounter state
};

/** The value an entry predicts: last + prediction stride. */
inline uint64_t
stridePredictValue(const StrideEntry &entry)
{
    return entry.last + static_cast<uint64_t>(entry.s2);
}

/** Initialize a freshly allocated entry from the first observed value. */
void strideInitEntry(StrideEntry &entry, uint64_t actual,
                     const StrideConfig &config);

/** Train an existing entry with the value actually produced. */
void strideTrainEntry(StrideEntry &entry, uint64_t actual,
                      const StrideConfig &config);

/** Spec name ("s", "s-sat", "s2") for a policy. */
const char *stridePolicyName(StridePolicy policy);

/**
 * Stride predictor: predicts last value + stride.
 *
 * After a single observed value the stride is still zero, so the
 * predictor degenerates to last-value until a first delta is seen;
 * the first delta initializes both strides (so a pure stride sequence
 * is predicted correctly from the third value on, matching the
 * learning time of 2 in Table 1 of the paper).
 */
class StridePredictor : public ValuePredictor
{
  public:
    explicit StridePredictor(StrideConfig config = {});

    Prediction predict(uint64_t pc) const override;
    void update(uint64_t pc, uint64_t actual) override;
    std::string name() const override;
    void reset() override;
    size_t tableEntries() const override { return table_.size(); }

    void evalBatch(const uint64_t *pcs, const uint64_t *values,
                   size_t n, uint64_t *valid,
                   uint64_t *correct) override
    {
        trainBatch(pcs, values, n, valid, correct);
    }

    /** Devirtualised batch loop: one hash probe per event. */
    void trainBatch(const uint64_t *pcs, const uint64_t *values,
                    size_t n, uint64_t *valid, uint64_t *correct);

  private:
    StrideConfig config_;
    std::unordered_map<uint64_t, StrideEntry> table_;
};

} // namespace vp::core

#endif // VP_CORE_STRIDE_HH
