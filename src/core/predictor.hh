/**
 * @file
 * Abstract value-predictor interface.
 *
 * All predictors in the study follow the paper's restricted model
 * (Section 2): the only input used to access prediction tables is the
 * program counter of the instruction being predicted, and tables are
 * updated with the value the instruction actually produced, immediately
 * after the prediction is made.
 */

#ifndef VP_CORE_PREDICTOR_HH
#define VP_CORE_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <string>

namespace vp::core {

/** Outcome of a table lookup. */
struct Prediction
{
    bool valid = false;     ///< false: predictor declines (cold entry)
    uint64_t value = 0;     ///< predicted value when valid

    static Prediction none() { return {}; }

    static Prediction
    of(uint64_t value)
    {
        return {true, value};
    }
};

/**
 * Interface implemented by every predictor model.
 *
 * The simulation protocol per dynamic instruction is:
 * @code
 *   Prediction p = pred.predict(pc);
 *   bool correct = p.valid && p.value == actual;
 *   pred.update(pc, actual);       // immediate update (Section 3)
 * @endcode
 *
 * Implementations use unbounded, alias-free tables: each static PC has
 * its own entry. predict() must not mutate observable state; all
 * learning happens in update().
 */
class ValuePredictor
{
  public:
    virtual ~ValuePredictor() = default;

    /** Look up a prediction for the instruction at @p pc. */
    virtual Prediction predict(uint64_t pc) const = 0;

    /** Train the table with the value actually produced at @p pc. */
    virtual void update(uint64_t pc, uint64_t actual) = 0;

    /** Human-readable name ("l", "s2", "fcm3", ...). */
    virtual std::string name() const = 0;

    /** Discard all learned state. */
    virtual void reset() = 0;

    /**
     * Approximate number of table entries currently allocated, for
     * the cost discussions in Section 4.3 of the paper.
     */
    virtual size_t tableEntries() const = 0;
};

using PredictorPtr = std::unique_ptr<ValuePredictor>;

} // namespace vp::core

#endif // VP_CORE_PREDICTOR_HH
