/**
 * @file
 * Abstract value-predictor interface.
 *
 * All predictors in the study follow the paper's restricted model
 * (Section 2): the only input used to access prediction tables is the
 * program counter of the instruction being predicted, and tables are
 * updated with the value the instruction actually produced, immediately
 * after the prediction is made.
 */

#ifndef VP_CORE_PREDICTOR_HH
#define VP_CORE_PREDICTOR_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace vp::core {

/**
 * Word-packed bit rows used by the batched evaluation path: bit i of
 * a row lives in word i/64. Plain uint64_t words instead of
 * std::vector<bool> keeps the hot loop free of proxy references and
 * lets the evaluation harness combine per-predictor outcome rows with
 * whole-word reads.
 */
namespace bits {

/** Words needed for @p n bits. */
constexpr size_t
words(size_t n)
{
    return (n + 63) / 64;
}

inline void
set(uint64_t *row, size_t i)
{
    row[i >> 6] |= uint64_t{1} << (i & 63);
}

inline bool
test(const uint64_t *row, size_t i)
{
    return (row[i >> 6] >> (i & 63)) & 1;
}

} // namespace bits

/** Outcome of a table lookup. */
struct Prediction
{
    bool valid = false;     ///< false: predictor declines (cold entry)
    uint64_t value = 0;     ///< predicted value when valid

    static Prediction none() { return {}; }

    static Prediction
    of(uint64_t value)
    {
        return {true, value};
    }
};

/**
 * Interface implemented by every predictor model.
 *
 * The simulation protocol per dynamic instruction is:
 * @code
 *   Prediction p = pred.predict(pc);
 *   bool correct = p.valid && p.value == actual;
 *   pred.update(pc, actual);       // immediate update (Section 3)
 * @endcode
 *
 * Implementations use unbounded, alias-free tables: each static PC has
 * its own entry. predict() must not mutate observable state; all
 * learning happens in update().
 */
class ValuePredictor
{
  public:
    virtual ~ValuePredictor() = default;

    /** Look up a prediction for the instruction at @p pc. */
    virtual Prediction predict(uint64_t pc) const = 0;

    /** Train the table with the value actually produced at @p pc. */
    virtual void update(uint64_t pc, uint64_t actual) = 0;

    /** Human-readable name ("l", "s2", "fcm3", ...). */
    virtual std::string name() const = 0;

    /** Discard all learned state. */
    virtual void reset() = 0;

    /**
     * Approximate number of table entries currently allocated, for
     * the cost discussions in Section 4.3 of the paper.
     */
    virtual size_t tableEntries() const = 0;

    /**
     * Evaluate one batch of events: for each i in [0, n) run the
     * per-event protocol (predict @p pcs[i], grade against
     * @p values[i], update) and set bit i of @p valid / @p correct
     * when the prediction was made / correct. Both rows are
     * caller-zeroed (bits::words(n) words each).
     *
     * The default loops the virtual predict/update pair, so every
     * predictor is batch-correct by construction; the families
     * override it with devirtualised loops that also skip redundant
     * table probes the separate predict()/update() calls must repeat.
     * Overrides must preserve the scalar path's observable semantics
     * exactly — same predictions, same table state, same replacement
     * decisions — which batched_equivalence_test pins; only probe
     * *counts* (BoundedTable::aliasedPeeks, a simulator-side
     * diagnostic) may drop when a duplicate lookup is elided.
     */
    virtual void evalBatch(const uint64_t *pcs, const uint64_t *values,
                           size_t n, uint64_t *valid, uint64_t *correct);

    /**
     * Dump internal counters (evictions, occupancy, probe depths,
     * chooser flips, ...) into @p sink under dotted, family-prefixed
     * names ("fcm.vpt.evictions"). Purely observational: must not
     * change predictor state. The default emits nothing — unbounded
     * reference predictors have no finite resources worth counting.
     */
    virtual void collectCounters(class CounterSink &sink) const;
};

using PredictorPtr = std::unique_ptr<ValuePredictor>;

/**
 * Receiver for a predictor's internal counters (collectCounters()).
 *
 * A pure interface so core stays free of any metrics dependency: the
 * harness implements it over the obs registry (exp/suite.cc), tests
 * implement it over a plain map. Collection happens once per cell at
 * replay end — never on the per-event path — so implementations can
 * be as slow as they like.
 */
class CounterSink
{
  public:
    virtual ~CounterSink() = default;

    /** Monotonic count ("fcm.vpt.evictions" -> 1234). Same-name calls
     *  accumulate. */
    virtual void counter(const std::string &name, uint64_t value) = 0;

    /** Level sample ("fcm.vpt.occupancy"); same-name calls keep the
     *  maximum (high-water semantics). */
    virtual void gauge(const std::string &name, uint64_t value) = 0;

    /** Import @p count samples of @p value into the named
     *  distribution (e.g. a probe-depth histogram bucket). */
    virtual void distribution(const std::string &name, uint64_t value,
                              uint64_t count) = 0;
};

} // namespace vp::core

#endif // VP_CORE_PREDICTOR_HH
