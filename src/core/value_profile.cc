#include "core/value_profile.hh"

#include <optional>
#include <string>

namespace vp::core {

const std::array<uint64_t, ValueProfiler::numBuckets - 1> &
ValueProfiler::bucketBounds()
{
    static const std::array<uint64_t, numBuckets - 1> bounds = {
        1, 4, 16, 64, 256, 1024, 4096, 16384, 65536,
    };
    return bounds;
}

std::string
ValueProfiler::bucketLabel(int index)
{
    if (index < numBuckets - 1)
        return std::to_string(bucketBounds()[index]);
    return ">65536";
}

int
ValueProfiler::bucketFor(uint64_t unique_values)
{
    const auto &bounds = bucketBounds();
    for (int i = 0; i < numBuckets - 1; ++i) {
        if (unique_values <= bounds[i])
            return i;
    }
    return numBuckets - 1;
}

ValueProfiler::Distribution
ValueProfiler::distribution(std::optional<isa::Category> cat) const
{
    Distribution dist;
    uint64_t static_total = 0;
    uint64_t dyn_total = 0;
    std::array<uint64_t, numBuckets> static_counts{};
    std::array<uint64_t, numBuckets> dyn_counts{};

    for (const auto &[pc, cell] : table_) {
        if (cat && cell.cat != *cat)
            continue;
        const int bucket = bucketFor(cell.values.size());
        ++static_counts[bucket];
        dyn_counts[bucket] += cell.dynCount;
        ++static_total;
        dyn_total += cell.dynCount;
    }

    for (int i = 0; i < numBuckets; ++i) {
        dist.staticShare[i] = static_total
                ? static_cast<double>(static_counts[i]) / static_total
                : 0.0;
        dist.dynamicShare[i] = dyn_total
                ? static_cast<double>(dyn_counts[i]) / dyn_total
                : 0.0;
    }
    return dist;
}

double
ValueProfiler::staticFractionAtMost(uint64_t bound) const
{
    uint64_t n = 0, total = 0;
    for (const auto &[pc, cell] : table_) {
        ++total;
        if (cell.values.size() <= bound)
            ++n;
    }
    return total ? static_cast<double>(n) / total : 0.0;
}

double
ValueProfiler::dynamicFractionAtMost(uint64_t bound) const
{
    uint64_t n = 0, total = 0;
    for (const auto &[pc, cell] : table_) {
        total += cell.dynCount;
        if (cell.values.size() <= bound)
            n += cell.dynCount;
    }
    return total ? static_cast<double>(n) / total : 0.0;
}

} // namespace vp::core
