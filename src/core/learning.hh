/**
 * @file
 * Learning-time / learning-degree analysis (Table 1, Figure 2).
 */

#ifndef VP_CORE_LEARNING_HH
#define VP_CORE_LEARNING_HH

#include <cstdint>
#include <vector>

#include "core/predictor.hh"

namespace vp::core {

/**
 * Result of running a predictor over a single value sequence.
 *
 * Learning Time (LT) is "the number of values that have to be observed
 * before the first correct prediction"; Learning Degree (LD) is "the
 * percentage of correct predictions following the first correct
 * prediction" (Section 2.3 of the paper).
 */
struct LearningResult
{
    /** Values observed before the first correct prediction; -1 never. */
    int64_t learningTime = -1;

    /** Correct fraction among predictions after the first correct. */
    double learningDegree = 0.0;

    /** Overall accuracy across the whole sequence. */
    double accuracy = 0.0;

    /** Per-step correctness, for plotting Figure 2 style traces. */
    std::vector<bool> correctAt;

    /** Per-step predictions (invalid encoded as no-prediction). */
    std::vector<Prediction> predictionAt;
};

/**
 * Feed @p sequence through @p predictor at a single synthetic PC,
 * using the paper's predict-then-update protocol, and measure LT/LD.
 */
LearningResult analyzeLearning(ValuePredictor &predictor,
                               const std::vector<uint64_t> &sequence,
                               uint64_t pc = 0);

} // namespace vp::core

#endif // VP_CORE_LEARNING_HH
