/**
 * @file
 * Huge-page-backed allocator for the large flat table arrays.
 *
 * The bounded tables back megabytes of hot, randomly-probed state
 * with plain vectors. On 4 KiB pages such a table costs a TLB miss on
 * nearly every probe, and — worse for the batched replay path — a
 * software prefetch whose target misses the TLB is silently dropped
 * by the hardware, so the prefetch pipeline never hides the misses it
 * was built to hide. Backing the arrays with 2 MiB huge pages shrinks
 * a tens-of-MB table to a handful of TLB entries, making both the
 * demand loads and the prefetches reliable.
 *
 * This is a hint-only facility with a three-step ladder: an explicit
 * hugetlb mapping when the administrator has reserved a pool
 * (vm.nr_hugepages — the only mechanism that works on kernels where
 * transparent huge pages are configured but never granted, as in some
 * microVMs), else anonymous memory with MADV_HUGEPAGE, else plain
 * pages. Every rung has identical observable behaviour.
 */

#ifndef VP_CORE_HUGEPAGE_HH
#define VP_CORE_HUGEPAGE_HH

#include <cstddef>
#include <cstdlib>
#include <new>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace vp::core {

/**
 * Minimal std::allocator replacement that requests huge pages for
 * allocations of at least one huge page. All instances
 * compare equal (the allocator is stateless), so vectors using it can
 * be swapped/moved freely.
 */
template <typename T>
struct HugePageAllocator
{
    using value_type = T;

    static constexpr std::size_t hugePage = 2u << 20;

    HugePageAllocator() = default;

    template <typename U>
    HugePageAllocator(const HugePageAllocator<U> &)
    {
    }

    T *
    allocate(std::size_t n)
    {
        const std::size_t bytes = n * sizeof(T);
        if (bytes < hugePage)
            return static_cast<T *>(::operator new(bytes));
        const std::size_t rounded =
                (bytes + hugePage - 1) & ~(hugePage - 1);
#if defined(__linux__)
        // Preallocated huge pages first (vm.nr_hugepages pool; the
        // mmap fails upfront when the pool is too small), then
        // transparent huge pages as a hint, then plain pages.
        void *p = mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
        if (p == MAP_FAILED) {
            p = mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
            if (p == MAP_FAILED)
                throw std::bad_alloc();
            madvise(p, rounded, MADV_HUGEPAGE);
        }
        return static_cast<T *>(p);
#else
        if (void *p = std::aligned_alloc(hugePage, rounded))
            return static_cast<T *>(p);
        throw std::bad_alloc();
#endif
    }

    void
    deallocate(T *p, std::size_t n) noexcept
    {
        const std::size_t bytes = n * sizeof(T);
        if (bytes < hugePage) {
            ::operator delete(p);
            return;
        }
        const std::size_t rounded =
                (bytes + hugePage - 1) & ~(hugePage - 1);
#if defined(__linux__)
        munmap(p, rounded);
#else
        (void)rounded;
        std::free(p);
#endif
    }
};

template <typename T, typename U>
bool
operator==(const HugePageAllocator<T> &, const HugePageAllocator<U> &)
{
    return true;
}

template <typename T, typename U>
bool
operator!=(const HugePageAllocator<T> &, const HugePageAllocator<U> &)
{
    return false;
}

} // namespace vp::core

#endif // VP_CORE_HUGEPAGE_HH
