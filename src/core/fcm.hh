/**
 * @file
 * Finite context method (FCM) predictors (Section 2.2 of the paper).
 */

#ifndef VP_CORE_FCM_HH
#define VP_CORE_FCM_HH

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/predictor.hh"

namespace vp::core {

/** How predictions of different orders are combined. */
enum class FcmBlending {
    /**
     * No blending: only the exact order-k context is consulted. An
     * order-k predictor then needs a full-length history before it can
     * match anything (used for the Table 1 / Figure 2 analyses).
     */
    None,

    /**
     * Blending with *lazy exclusion* (the paper's configuration): the
     * longest matching context of orders k..0 supplies the prediction,
     * and only the tables of that order and higher are updated.
     */
    LazyExclusion,

    /** Full blending: all orders 0..k are updated on every value. */
    Full
};

/** FCM configuration. */
struct FcmConfig
{
    /** Context length k: number of preceding values used. */
    int order = 3;

    FcmBlending blending = FcmBlending::LazyExclusion;

    /**
     * Counter ceiling. 0 means exact (unbounded) counts, the paper's
     * idealized configuration. A small positive value (say 15) enables
     * the text-compression trick: counts are allowed to reach the
     * ceiling, and when one would exceed it all counters of that
     * context are halved, weighting recent history more heavily.
     */
    uint32_t counterMax = 0;

    friend bool operator==(const FcmConfig &, const FcmConfig &) = default;
};

/**
 * Follower frequencies for one context.
 *
 * Shared between the unbounded predictor below and the bounded
 * two-level variant so the counting/halving/tie-break behaviour is
 * identical by construction.
 */
struct FcmFollowers
{
    struct Cell
    {
        uint64_t value;
        uint32_t count;
        uint64_t seq;       ///< recency stamp for tie-breaking
    };

    /** Typically 1-2 distinct followers; linear scan is right. */
    std::vector<Cell> cells;

    /**
     * Record one occurrence of @p value following this context.
     *
     * @p counter_max is the FcmConfig ceiling (0 = exact counts):
     * when a count would exceed it, every counter is halved (zeros
     * pruned, except the cell just bumped, which stays at >= 1).
     * @p max_followers bounds the number of distinct follower cells
     * kept (0 = unbounded); when full, a new follower replaces the
     * lowest-count (ties: least recent) cell.
     */
    void bump(uint64_t value, uint64_t seq, uint32_t counter_max,
              uint32_t max_followers = 0);

    /** Best follower: max count, ties to the most recent. */
    const Cell *best() const;
};

/**
 * Order-k finite context method predictor.
 *
 * Per static PC the predictor keeps the k most recent values (the
 * context) and, for every order j <= k, an exact table mapping each
 * observed length-j value pattern to the frequency of each value that
 * followed it. Contexts are matched by full concatenation of history
 * values, so there is no aliasing between contexts (Section 3).
 *
 * The predicted value is the one with the maximum count under the
 * longest matching context; ties go to the most recently observed
 * value. Cold entries decline to predict (counted as incorrect by the
 * evaluation harness, consistent with the paper's accounting).
 */
class FcmPredictor : public ValuePredictor
{
  public:
    explicit FcmPredictor(FcmConfig config = {});

    Prediction predict(uint64_t pc) const override;
    void update(uint64_t pc, uint64_t actual) override;
    std::string name() const override;
    void reset() override;
    size_t tableEntries() const override;

  private:
    /**
     * Hash for a concatenated value context. Transparent so lookups
     * can use a std::span view of the history without allocating.
     */
    struct KeyHash
    {
        using is_transparent = void;

        size_t
        operator()(std::span<const uint64_t> key) const
        {
            // Mixed FNV-ish hash over whole values.
            uint64_t hash = 1469598103934665603ull;
            for (uint64_t v : key) {
                hash ^= v;
                hash *= 1099511628211ull;
                hash ^= hash >> 29;
            }
            return static_cast<size_t>(hash);
        }

        size_t
        operator()(const std::vector<uint64_t> &key) const
        {
            return (*this)(std::span<const uint64_t>(key));
        }
    };

    /** Transparent equality over exact value concatenations. */
    struct KeyEqual
    {
        using is_transparent = void;

        bool
        operator()(std::span<const uint64_t> a,
                   std::span<const uint64_t> b) const
        {
            return a.size() == b.size() &&
                   std::equal(a.begin(), a.end(), b.begin());
        }

        bool
        operator()(const std::vector<uint64_t> &a,
                   std::span<const uint64_t> b) const
        {
            return (*this)(std::span<const uint64_t>(a), b);
        }

        bool
        operator()(std::span<const uint64_t> a,
                   const std::vector<uint64_t> &b) const
        {
            return (*this)(a, std::span<const uint64_t>(b));
        }

        bool
        operator()(const std::vector<uint64_t> &a,
                   const std::vector<uint64_t> &b) const
        {
            return (*this)(std::span<const uint64_t>(a),
                           std::span<const uint64_t>(b));
        }
    };

    using ContextTable = std::unordered_map<std::vector<uint64_t>,
                                            FcmFollowers, KeyHash, KeyEqual>;

    /** All prediction state for one static instruction. */
    struct PcState
    {
        /** Most recent values, oldest first, up to `order` of them. */
        std::vector<uint64_t> history;

        /** tables[j]: contexts of length j (j = 0 is a single entry). */
        std::vector<ContextTable> tables;
    };

    /** View of the length-j context (newest history values). */
    static std::span<const uint64_t> contextKey(const PcState &state,
                                                int j);

    /**
     * Longest order with a context match, or -1 if none (not even the
     * order-0 table has been trained).
     */
    int longestMatch(const PcState &state) const;

    FcmConfig config_;
    std::unordered_map<uint64_t, PcState> table_;
    uint64_t seq_ = 0;
};

} // namespace vp::core

#endif // VP_CORE_FCM_HH
