/**
 * @file
 * Finite context method (FCM) predictors (Section 2.2 of the paper).
 */

#ifndef VP_CORE_FCM_HH
#define VP_CORE_FCM_HH

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/predictor.hh"

namespace vp::core {

/** How predictions of different orders are combined. */
enum class FcmBlending {
    /**
     * No blending: only the exact order-k context is consulted. An
     * order-k predictor then needs a full-length history before it can
     * match anything (used for the Table 1 / Figure 2 analyses).
     */
    None,

    /**
     * Blending with *lazy exclusion* (the paper's configuration): the
     * longest matching context of orders k..0 supplies the prediction,
     * and only the tables of that order and higher are updated.
     */
    LazyExclusion,

    /** Full blending: all orders 0..k are updated on every value. */
    Full
};

/** FCM configuration. */
struct FcmConfig
{
    /** Context length k: number of preceding values used. */
    int order = 3;

    FcmBlending blending = FcmBlending::LazyExclusion;

    /**
     * Counter ceiling. 0 means exact (unbounded) counts, the paper's
     * idealized configuration. A small positive value (say 15) enables
     * the text-compression trick: counts are allowed to reach the
     * ceiling, and when one would exceed it all counters of that
     * context are halved, weighting recent history more heavily.
     */
    uint32_t counterMax = 0;

    friend bool operator==(const FcmConfig &, const FcmConfig &) = default;
};

/**
 * Follower frequencies for one context.
 *
 * Shared between the unbounded predictor below and the bounded
 * two-level variant so the counting/halving/tie-break behaviour is
 * identical by construction.
 */
struct FcmFollowers
{
    struct Cell
    {
        uint64_t value;
        uint32_t count;
        uint64_t seq;       ///< recency stamp for tie-breaking
    };

    /**
     * Small-buffer cell sequence: the first kInline cells live inside
     * the followers object itself, spilling to the heap only beyond
     * that. Real contexts almost always have 1-2 distinct followers,
     * so keeping them inline means a bounded VPT entry carries its
     * cells in the same (huge-page-backed, prefetchable) table array —
     * a detached heap block per context would cost the hot replay loop
     * one more dependent cache-and-TLB miss per event.
     */
    class CellList
    {
      public:
        static constexpr uint32_t kInline = 2;

        CellList() = default;
        CellList(const CellList &other) { copyFrom(other); }
        CellList(CellList &&other) noexcept { moveFrom(other); }

        CellList &
        operator=(const CellList &other)
        {
            if (this != &other) {
                clear();
                copyFrom(other);
            }
            return *this;
        }

        CellList &
        operator=(CellList &&other) noexcept
        {
            if (this != &other) {
                clear();
                moveFrom(other);
            }
            return *this;
        }

        ~CellList() { delete[] heap_; }

        Cell *data() { return heap_ != nullptr ? heap_ : inline_; }
        const Cell *
        data() const
        {
            return heap_ != nullptr ? heap_ : inline_;
        }

        Cell *begin() { return data(); }
        Cell *end() { return data() + size_; }
        const Cell *begin() const { return data(); }
        const Cell *end() const { return data() + size_; }

        uint32_t size() const { return size_; }
        bool empty() const { return size_ == 0; }

        void
        push_back(const Cell &cell)
        {
            if (size_ == cap_)
                grow();
            data()[size_++] = cell;
        }

        /** Drop every cell matching @p pred, preserving order. */
        template <typename Pred>
        void
        eraseIf(Pred pred)
        {
            Cell *d = data();
            uint32_t kept = 0;
            for (uint32_t i = 0; i < size_; ++i) {
                if (!pred(d[i]))
                    d[kept++] = d[i];
            }
            size_ = kept;
        }

        void
        clear()
        {
            delete[] heap_;
            heap_ = nullptr;
            size_ = 0;
            cap_ = kInline;
        }

      private:
        void
        grow()
        {
            const uint32_t new_cap = cap_ * 2;
            Cell *bigger = new Cell[new_cap];
            const Cell *d = data();
            for (uint32_t i = 0; i < size_; ++i)
                bigger[i] = d[i];
            delete[] heap_;
            heap_ = bigger;
            cap_ = new_cap;
        }

        void
        copyFrom(const CellList &other)
        {
            size_ = other.size_;
            if (size_ > kInline) {
                heap_ = new Cell[other.cap_];
                cap_ = other.cap_;
            }
            const Cell *src = other.data();
            Cell *dst = data();
            for (uint32_t i = 0; i < size_; ++i)
                dst[i] = src[i];
        }

        void
        moveFrom(CellList &other) noexcept
        {
            heap_ = other.heap_;
            size_ = other.size_;
            cap_ = other.cap_;
            if (heap_ == nullptr) {
                for (uint32_t i = 0; i < size_; ++i)
                    inline_[i] = other.inline_[i];
            }
            other.heap_ = nullptr;
            other.size_ = 0;
            other.cap_ = kInline;
        }

        Cell inline_[kInline];
        Cell *heap_ = nullptr;
        uint32_t size_ = 0;
        uint32_t cap_ = kInline;
    };

    /** Typically 1-2 distinct followers; linear scan is right. */
    CellList cells;

    /**
     * Record one occurrence of @p value following this context.
     *
     * @p counter_max is the FcmConfig ceiling (0 = exact counts):
     * when a count would exceed it, every counter is halved (zeros
     * pruned, except the cell just bumped, which stays at >= 1).
     * @p max_followers bounds the number of distinct follower cells
     * kept (0 = unbounded); when full, a new follower replaces the
     * lowest-count (ties: least recent) cell.
     */
    void bump(uint64_t value, uint64_t seq, uint32_t counter_max,
              uint32_t max_followers = 0);

    /** Best follower: max count, ties to the most recent. */
    const Cell *best() const;
};

/**
 * Order-k finite context method predictor.
 *
 * Per static PC the predictor keeps the k most recent values (the
 * context) and, for every order j <= k, an exact table mapping each
 * observed length-j value pattern to the frequency of each value that
 * followed it. Contexts are matched by full concatenation of history
 * values, so there is no aliasing between contexts (Section 3).
 *
 * The predicted value is the one with the maximum count under the
 * longest matching context; ties go to the most recently observed
 * value. Cold entries decline to predict (counted as incorrect by the
 * evaluation harness, consistent with the paper's accounting).
 */
class FcmPredictor : public ValuePredictor
{
  public:
    explicit FcmPredictor(FcmConfig config = {});

    Prediction predict(uint64_t pc) const override;
    void update(uint64_t pc, uint64_t actual) override;
    std::string name() const override;
    void reset() override;
    size_t tableEntries() const override;

    void evalBatch(const uint64_t *pcs, const uint64_t *values,
                   size_t n, uint64_t *valid,
                   uint64_t *correct) override
    {
        trainBatch(pcs, values, n, valid, correct);
    }

    /**
     * Devirtualised batch loop. The separate predict()/update() pair
     * scans the context tables twice per event (longest match for the
     * prediction, longest match again for the lazy-exclusion training
     * floor); here one scan serves both, which is legitimate because
     * nothing mutates the PC's state between the two scalar calls.
     */
    void trainBatch(const uint64_t *pcs, const uint64_t *values,
                    size_t n, uint64_t *valid, uint64_t *correct);

  private:
    /**
     * Hash for a concatenated value context. Transparent so lookups
     * can use a std::span view of the history without allocating.
     */
    struct KeyHash
    {
        using is_transparent = void;

        size_t
        operator()(std::span<const uint64_t> key) const
        {
            // Mixed FNV-ish hash over whole values.
            uint64_t hash = 1469598103934665603ull;
            for (uint64_t v : key) {
                hash ^= v;
                hash *= 1099511628211ull;
                hash ^= hash >> 29;
            }
            return static_cast<size_t>(hash);
        }

        size_t
        operator()(const std::vector<uint64_t> &key) const
        {
            return (*this)(std::span<const uint64_t>(key));
        }
    };

    /** Transparent equality over exact value concatenations. */
    struct KeyEqual
    {
        using is_transparent = void;

        bool
        operator()(std::span<const uint64_t> a,
                   std::span<const uint64_t> b) const
        {
            return a.size() == b.size() &&
                   std::equal(a.begin(), a.end(), b.begin());
        }

        bool
        operator()(const std::vector<uint64_t> &a,
                   std::span<const uint64_t> b) const
        {
            return (*this)(std::span<const uint64_t>(a), b);
        }

        bool
        operator()(std::span<const uint64_t> a,
                   const std::vector<uint64_t> &b) const
        {
            return (*this)(a, std::span<const uint64_t>(b));
        }

        bool
        operator()(const std::vector<uint64_t> &a,
                   const std::vector<uint64_t> &b) const
        {
            return (*this)(std::span<const uint64_t>(a),
                           std::span<const uint64_t>(b));
        }
    };

    using ContextTable = std::unordered_map<std::vector<uint64_t>,
                                            FcmFollowers, KeyHash, KeyEqual>;

    /** All prediction state for one static instruction. */
    struct PcState
    {
        /** Most recent values, oldest first, up to `order` of them. */
        std::vector<uint64_t> history;

        /** tables[j]: contexts of length j (j = 0 is a single entry). */
        std::vector<ContextTable> tables;
    };

    /** View of the length-j context (newest history values). */
    static std::span<const uint64_t> contextKey(const PcState &state,
                                                int j);

    /**
     * Longest order with a context match, or -1 if none (not even the
     * order-0 table has been trained). When a match is found and
     * @p followers is non-null it receives the matched follower set,
     * saving the caller a second table probe.
     */
    int longestMatch(const PcState &state,
                     const FcmFollowers **followers = nullptr) const;

    FcmConfig config_;
    std::unordered_map<uint64_t, PcState> table_;
    uint64_t seq_ = 0;
};

} // namespace vp::core

#endif // VP_CORE_FCM_HH
