/**
 * @file
 * Finite-capacity, set-associative prediction table.
 *
 * The paper deliberately simulates unbounded tables to expose inherent
 * value predictability (Section 3) and leaves "realistic
 * implementations with finite resources" as future work (Section 5).
 * This template is that finite resource: a fixed entry budget organised
 * as hash-indexed sets with LRU, FIFO or random replacement, used by
 * the bounded variants of every predictor family (core/bounded.hh).
 *
 * Keys are 64-bit (a PC, or a precomputed context hash). By default
 * they are matched in full, so there are no false tag matches —
 * capacity pressure shows up purely as conflict/capacity evictions,
 * which is the effect the capacity sweep experiment measures. Setting
 * BoundedTableConfig::tagBits > 0 instead matches only the low
 * tagBits of the key, as a real hardware table storing partial tags
 * would: two keys with the same truncated tag *alias* onto one entry.
 * The table keeps the full key as shadow (simulator-only) metadata so
 * aliasing is observable — see aliasedPeeks()/aliasedTouches() and
 * the constructive/destructive outcome counters the bounded
 * predictors feed via noteAliasOutcome() — without affecting the
 * hardware behaviour being modelled.
 */

#ifndef VP_CORE_BOUNDED_TABLE_HH
#define VP_CORE_BOUNDED_TABLE_HH

#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace vp::core {

/** Victim selection within a full set. */
enum class Replacement {
    Lru,        ///< evict the least recently touched entry
    Random,     ///< evict a deterministic pseudo-random way
    Fifo        ///< evict the least recently *inserted* entry
};

/** Geometry and policy of one bounded table. */
struct BoundedTableConfig
{
    /** Total entry budget. Must be a positive multiple of @c ways. */
    size_t entries = 1024;

    /**
     * Set associativity. 0 selects a fully associative organisation
     * (the idealised configuration the equivalence tests use: with
     * enough entries it never evicts and is exactly the unbounded
     * table). Otherwise must divide @c entries.
     */
    size_t ways = 4;

    Replacement replacement = Replacement::Lru;

    /** Seed for the Random replacement stream (deterministic). */
    uint64_t seed = 0x9e3779b97f4a7c15ull;

    /**
     * Stored tag width in bits. 0 (the default) stores the full
     * 64-bit key — no false matches. 1..63 matches only the low
     * tagBits of the key, so distinct keys with equal truncated tags
     * alias onto one entry (constructive when the foreign entry
     * happens to predict correctly, destructive otherwise). Tag width
     * does not change the entry count the table reports: it shrinks
     * the per-entry tag cost, which is the §4.3 trade the aliasing
     * experiment measures.
     */
    int tagBits = 0;
};

/**
 * Fixed-capacity key -> Entry map organised as sets x ways.
 *
 * The set-associative mode stores slots in one flat array indexed by
 * a mixed hash of the key — the bounded predictors' hot path touches
 * no node-based containers at all. The fully associative mode (ways
 * == 0) keeps an exact key -> slot index on the side so lookups stay
 * O(1) even with large entry counts; it exists for verification and
 * idealised sweeps, not as a hardware proposal.
 *
 * The access protocol mirrors the predictor interface: predict() uses
 * the const @c peek() (no LRU motion, so prediction never mutates
 * observable state), update() uses @c touch() which inserts, evicts
 * and refreshes recency.
 */
template <typename Entry>
class BoundedTable
{
  public:
    explicit BoundedTable(BoundedTableConfig config = {})
        : config_(config), rng_(config.seed | 1)
    {
        if (config_.entries == 0)
            throw std::invalid_argument("bounded table needs entries > 0");
        if (config_.ways != 0 &&
            (config_.ways > config_.entries ||
             config_.entries % config_.ways != 0)) {
            throw std::invalid_argument(
                    "bounded table ways must divide entries");
        }
        if (config_.tagBits < 0 || config_.tagBits > 63) {
            throw std::invalid_argument(
                    "bounded table tag width must be in [0, 63]");
        }
        if (config_.tagBits > 0)
            tagMask_ = (uint64_t{1} << config_.tagBits) - 1;
        slots_.resize(config_.entries);
        if (fullyAssociative()) {
            index_.reserve(config_.entries);
        } else {
            sets_ = config_.entries / config_.ways;
            setMask_ = (sets_ & (sets_ - 1)) == 0 ? sets_ - 1 : 0;
        }
    }

    bool fullyAssociative() const { return config_.ways == 0; }
    size_t capacity() const { return config_.entries; }
    size_t size() const { return live_; }
    uint64_t evictions() const { return evictions_; }
    const BoundedTableConfig &config() const { return config_; }

    /** Lookups served by an entry whose full key differed (partial
     *  tags only; simulator-side shadow accounting). */
    uint64_t aliasedPeeks() const { return aliasedPeeks_; }

    /** Touches that re-trained (and re-bound) a foreign entry. */
    uint64_t aliasedTouches() const { return aliasedTouches_; }

    /** Aliased predictions that happened to be correct / wrong, as
     *  classified by the owning predictor via noteAliasOutcome(). */
    uint64_t aliasConstructive() const { return aliasConstructive_; }
    uint64_t aliasDestructive() const { return aliasDestructive_; }

    /**
     * Classify one aliased access: the foreign entry's prediction
     * turned out @p correct (constructive) or not (destructive —
     * declines count as wrong, the paper's accounting). Called by the
     * bounded predictors, which know the entry -> prediction mapping
     * the table itself cannot.
     */
    void
    noteAliasOutcome(bool correct)
    {
        if (correct)
            ++aliasConstructive_;
        else
            ++aliasDestructive_;
    }

    /** Look up @p key without touching recency; nullptr on miss. */
    const Entry *
    peek(uint64_t key) const
    {
        if (fullyAssociative()) {
            const auto it = index_.find(tagOf(key));
            if (it == index_.end())
                return nullptr;
            const Slot &slot = slots_[it->second];
            if (slot.key != key)
                ++aliasedPeeks_;
            return &slot.entry;
        }
        const size_t base = setBase(key);
        for (size_t w = 0; w < config_.ways; ++w) {
            const Slot &slot = slots_[base + w];
            if (slot.valid && tagOf(slot.key) == tagOf(key)) {
                if (slot.key != key)
                    ++aliasedPeeks_;
                return &slot.entry;
            }
        }
        return nullptr;
    }

    /**
     * Find-or-allocate @p key, evicting if its set is full, and mark
     * it most recently used. @p inserted reports whether the entry is
     * freshly (re)initialised — the caller must then treat it as
     * cold. With partial tags a foreign entry whose truncated tag
     * matches is a *hit* (inserted == false, hardware cannot tell);
     * @p aliased, when given, reports that case so the caller can
     * classify the outcome, and the shadow key is re-bound to @p key
     * (the last trainer owns the entry).
     */
    Entry &
    touch(uint64_t key, bool &inserted, bool *aliased = nullptr)
    {
        ++tick_;
        Slot *slot = fullyAssociative() ? touchFa(key, inserted)
                                        : touchSet(key, inserted);
        slot->stamp = tick_;
        if (inserted) {
            slot->entry = Entry{};
            slot->key = key;
            slot->valid = true;
            slot->insertStamp = tick_;
        } else if (slot->key != key) {
            ++aliasedTouches_;
            slot->key = key;
            if (aliased != nullptr)
                *aliased = true;
        }
        return slot->entry;
    }

    /** Discard all entries (the budget itself is immutable). */
    void
    clear()
    {
        for (auto &slot : slots_)
            slot = Slot{};
        index_.clear();
        live_ = 0;
        evictions_ = 0;
        aliasedPeeks_ = 0;
        aliasedTouches_ = 0;
        aliasConstructive_ = 0;
        aliasDestructive_ = 0;
        tick_ = 0;
        rng_ = config_.seed | 1;
    }

  private:
    struct Slot
    {
        uint64_t key = 0;
        uint64_t stamp = 0;         ///< last touch (LRU victim order)
        uint64_t insertStamp = 0;   ///< allocation (FIFO victim order)
        bool valid = false;
        Entry entry{};
    };

    /** The age a full set's victim scan minimises for this policy. */
    uint64_t
    victimStamp(const Slot &slot) const
    {
        return config_.replacement == Replacement::Fifo
                       ? slot.insertStamp
                       : slot.stamp;
    }

    /** The stored tag: the low tagBits of @p key (full key when 0). */
    uint64_t
    tagOf(uint64_t key) const
    {
        return tagMask_ != 0 ? key & tagMask_ : key;
    }

    size_t
    setBase(uint64_t key) const
    {
        // Hardware-style indexing: fold the high key bits into the
        // low ones and take the low bits. Small sequential keys (PCs)
        // land in adjacent sets — the locality a real PC-indexed
        // table has — while already-hashed context keys stay spread.
        // A power-of-two set count (the common case) masks instead
        // of dividing.
        const uint64_t folded = key ^ (key >> 32) ^ (key >> 16);
        const size_t set = setMask_ != 0
                ? static_cast<size_t>(folded & setMask_)
                : static_cast<size_t>(folded % sets_);
        return set * config_.ways;
    }

    uint64_t
    nextRandom()
    {
        // xorshift64: deterministic across runs and platforms.
        rng_ ^= rng_ << 13;
        rng_ ^= rng_ >> 7;
        rng_ ^= rng_ << 17;
        return rng_;
    }

    Slot *
    touchSet(uint64_t key, bool &inserted)
    {
        const size_t base = setBase(key);
        Slot *invalid = nullptr;
        Slot *oldest = &slots_[base];
        for (size_t w = 0; w < config_.ways; ++w) {
            Slot &slot = slots_[base + w];
            if (slot.valid && tagOf(slot.key) == tagOf(key)) {
                inserted = false;
                return &slot;
            }
            if (!slot.valid && invalid == nullptr)
                invalid = &slot;
            if (victimStamp(slot) < victimStamp(*oldest))
                oldest = &slots_[base + w];
        }
        inserted = true;
        if (invalid != nullptr) {
            ++live_;
            return invalid;
        }
        ++evictions_;
        if (config_.replacement == Replacement::Random)
            return &slots_[base + nextRandom() % config_.ways];
        return oldest;
    }

    Slot *
    touchFa(uint64_t key, bool &inserted)
    {
        const auto it = index_.find(tagOf(key));
        if (it != index_.end()) {
            inserted = false;
            return &slots_[it->second];
        }
        inserted = true;
        size_t victim;
        if (live_ < config_.entries) {
            victim = live_++;
        } else {
            ++evictions_;
            if (config_.replacement == Replacement::Random) {
                victim = nextRandom() % config_.entries;
            } else {
                victim = 0;
                for (size_t i = 1; i < config_.entries; ++i) {
                    if (victimStamp(slots_[i]) <
                        victimStamp(slots_[victim])) {
                        victim = i;
                    }
                }
            }
            index_.erase(tagOf(slots_[victim].key));
        }
        index_.emplace(tagOf(key), victim);
        return &slots_[victim];
    }

    BoundedTableConfig config_;
    std::vector<Slot> slots_;
    std::unordered_map<uint64_t, size_t> index_;    // fa: tag -> slot
    size_t sets_ = 0;                               // set-assoc mode
    size_t setMask_ = 0;                            // sets_ - 1 if pow2
    uint64_t tagMask_ = 0;                          // 0 = full-key tags
    size_t live_ = 0;
    uint64_t evictions_ = 0;
    // Shadow aliasing accounting; peek() is const on *observable*
    // state, so the peek-side counter is mutable like an rng would be.
    mutable uint64_t aliasedPeeks_ = 0;
    uint64_t aliasedTouches_ = 0;
    uint64_t aliasConstructive_ = 0;
    uint64_t aliasDestructive_ = 0;
    uint64_t tick_ = 0;
    uint64_t rng_;
};

} // namespace vp::core

#endif // VP_CORE_BOUNDED_TABLE_HH
