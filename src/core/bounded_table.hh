/**
 * @file
 * Finite-capacity, set-associative prediction table.
 *
 * The paper deliberately simulates unbounded tables to expose inherent
 * value predictability (Section 3) and leaves "realistic
 * implementations with finite resources" as future work (Section 5).
 * This template is that finite resource: a fixed entry budget organised
 * as hash-indexed sets with LRU, FIFO or random replacement, used by
 * the bounded variants of every predictor family (core/bounded.hh).
 *
 * Keys are 64-bit (a PC, or a precomputed context hash). By default
 * they are matched in full, so there are no false tag matches —
 * capacity pressure shows up purely as conflict/capacity evictions,
 * which is the effect the capacity sweep experiment measures. Setting
 * BoundedTableConfig::tagBits > 0 instead matches only the low
 * tagBits of the key, as a real hardware table storing partial tags
 * would: two keys with the same truncated tag *alias* onto one entry.
 * The table keeps the full key as shadow (simulator-only) metadata so
 * aliasing is observable — see aliasedPeeks()/aliasedTouches() and
 * the constructive/destructive outcome counters the bounded
 * predictors feed via noteAliasOutcome() — without affecting the
 * hardware behaviour being modelled.
 *
 * Thread-safety contract: none. The table mutates on every touch,
 * including const-looking peeks (LRU recency stamps, the mutable
 * aliasedPeeks_ and probe-depth counters), so a table — and any
 * predictor built on one — must be confined to a single thread or
 * held under one lock for reads and writes alike. That is the
 * contract net::ShardedBankMap codifies: every bank touch, even a
 * PREDICT query, happens under its stripe mutex.
 */

#ifndef VP_CORE_BOUNDED_TABLE_HH
#define VP_CORE_BOUNDED_TABLE_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "core/hugepage.hh"

namespace vp::core {

/** Victim selection within a full set. */
enum class Replacement {
    Lru,        ///< evict the least recently touched entry
    Random,     ///< evict a deterministic pseudo-random way
    Fifo        ///< evict the least recently *inserted* entry
};

/**
 * Point-in-time counter dump of one BoundedTable, pulled by the
 * harness at cell boundaries (obs/registry.hh imports it; nothing
 * here runs on the replay hot path). All counts are cumulative since
 * construction or the last clear().
 */
struct BoundedTableTelemetry
{
    /** Probes that examined exactly d ways land in probeDepth[d]
     *  (d >= 1; depths beyond 8 clamp into the last slot). A hit in
     *  way w examined w + 1 ways; a miss examined the whole set. */
    static constexpr size_t maxDepth = 8;

    size_t capacity = 0;
    size_t live = 0;                    ///< occupied entries
    uint64_t evictions = 0;
    uint64_t aliasedPeeks = 0;
    uint64_t aliasedTouches = 0;
    uint64_t aliasConstructive = 0;
    uint64_t aliasDestructive = 0;
    uint64_t probes = 0;                ///< total recorded probes
    std::array<uint64_t, maxDepth + 1> probeDepth{};
    uint64_t hintedTouches = 0;         ///< touchHinted() calls
    uint64_t hintedTouchHits = 0;       ///< ... whose hint was trusted
};

/** Geometry and policy of one bounded table. */
struct BoundedTableConfig
{
    /** Total entry budget. Must be a positive multiple of @c ways. */
    size_t entries = 1024;

    /**
     * Set associativity. 0 selects a fully associative organisation
     * (the idealised configuration the equivalence tests use: with
     * enough entries it never evicts and is exactly the unbounded
     * table). Otherwise must divide @c entries.
     */
    size_t ways = 4;

    Replacement replacement = Replacement::Lru;

    /** Seed for the Random replacement stream (deterministic). */
    uint64_t seed = 0x9e3779b97f4a7c15ull;

    /**
     * Stored tag width in bits. 0 (the default) stores the full
     * 64-bit key — no false matches. 1..63 matches only the low
     * tagBits of the key, so distinct keys with equal truncated tags
     * alias onto one entry (constructive when the foreign entry
     * happens to predict correctly, destructive otherwise). Tag width
     * does not change the entry count the table reports: it shrinks
     * the per-entry tag cost, which is the §4.3 trade the aliasing
     * experiment measures.
     */
    int tagBits = 0;
};

/**
 * Fixed-capacity key -> Entry map organised as sets x ways.
 *
 * The set-associative mode stores slots in a structure-of-arrays
 * layout — keys, recency stamps, validity and entry payloads in
 * parallel flat arrays — so the hot probe loop walks a dense run of
 * 8-byte keys (one cache line covers a whole set and its neighbours)
 * and the payload array is only dereferenced on a hit or a victim.
 * prefetch() issues a software prefetch of a key's set, which batched
 * replay uses to overlap the next events' table misses with the
 * current event's work. The fully associative mode (ways == 0) keeps
 * an exact key -> slot index on the side so lookups stay O(1) even
 * with large entry counts; it exists for verification and idealised
 * sweeps, not as a hardware proposal.
 *
 * The access protocol mirrors the predictor interface: predict() uses
 * the const @c peek() (no LRU motion, so prediction never mutates
 * observable state), update() uses @c touch() which inserts, evicts
 * and refreshes recency.
 */
template <typename Entry>
class BoundedTable
{
  public:
    explicit BoundedTable(BoundedTableConfig config = {})
        : config_(config), rng_(config.seed | 1)
    {
        if (config_.entries == 0)
            throw std::invalid_argument("bounded table needs entries > 0");
        if (config_.ways != 0 &&
            (config_.ways > config_.entries ||
             config_.entries % config_.ways != 0)) {
            throw std::invalid_argument(
                    "bounded table ways must divide entries");
        }
        if (config_.tagBits < 0 || config_.tagBits > 63) {
            throw std::invalid_argument(
                    "bounded table tag width must be in [0, 63]");
        }
        if (config_.tagBits > 0)
            tagMask_ = (uint64_t{1} << config_.tagBits) - 1;
        keys_.resize(config_.entries);
        stamps_.resize(config_.entries);
        insertStamps_.resize(config_.entries);
        valid_.resize(config_.entries);
        entries_.resize(config_.entries);
        if (fullyAssociative()) {
            index_.reserve(config_.entries);
        } else {
            sets_ = config_.entries / config_.ways;
            setMask_ = (sets_ & (sets_ - 1)) == 0 ? sets_ - 1 : 0;
        }
    }

    bool fullyAssociative() const { return config_.ways == 0; }
    size_t capacity() const { return config_.entries; }
    size_t size() const { return live_; }
    uint64_t evictions() const { return evictions_; }
    const BoundedTableConfig &config() const { return config_; }

    /** Lookups served by an entry whose full key differed (partial
     *  tags only; simulator-side shadow accounting). */
    uint64_t aliasedPeeks() const { return aliasedPeeks_; }

    /** Touches that re-trained (and re-bound) a foreign entry. */
    uint64_t aliasedTouches() const { return aliasedTouches_; }

    /** Aliased predictions that happened to be correct / wrong, as
     *  classified by the owning predictor via noteAliasOutcome(). */
    uint64_t aliasConstructive() const { return aliasConstructive_; }
    uint64_t aliasDestructive() const { return aliasDestructive_; }

    /** Dump every counter the table keeps (see the struct's doc). */
    BoundedTableTelemetry
    telemetry() const
    {
        BoundedTableTelemetry t;
        t.capacity = config_.entries;
        t.live = live_;
        t.evictions = evictions_;
        t.aliasedPeeks = aliasedPeeks_;
        t.aliasedTouches = aliasedTouches_;
        t.aliasConstructive = aliasConstructive_;
        t.aliasDestructive = aliasDestructive_;
        t.probes = probes_;
        t.probeDepth = probeDepth_;
        t.hintedTouches = hintedTouches_;
        t.hintedTouchHits = hintedTouchHits_;
        return t;
    }

    /**
     * Classify one aliased access: the foreign entry's prediction
     * turned out @p correct (constructive) or not (destructive —
     * declines count as wrong, the paper's accounting). Called by the
     * bounded predictors, which know the entry -> prediction mapping
     * the table itself cannot.
     */
    void
    noteAliasOutcome(bool correct)
    {
        if (correct)
            ++aliasConstructive_;
        else
            ++aliasDestructive_;
    }

    /** Look up @p key without touching recency; nullptr on miss. */
    const Entry *
    peek(uint64_t key) const
    {
        if (fullyAssociative()) {
            noteProbe(1);
            const auto it = index_.find(tagOf(key));
            if (it == index_.end())
                return nullptr;
            if (keys_[it->second] != key)
                ++aliasedPeeks_;
            return &entries_[it->second];
        }
        const size_t base = setBase(key);
        const int w = hitWay(base, key);
        noteProbe(probedWays(w));
        if (w < 0)
            return nullptr;
        const size_t s = base + static_cast<size_t>(w);
        if (keys_[s] != key)
            ++aliasedPeeks_;
        return &entries_[s];
    }

    /**
     * peek() that also reports the matched slot index, so a caller
     * that goes on to train the same key can re-touch the slot via
     * touchAt() instead of paying a second full probe. Identical
     * observable behaviour (including alias accounting) to peek();
     * @p slot is only meaningful when the return value is non-null.
     */
    const Entry *
    peekSlot(uint64_t key, size_t &slot) const
    {
        if (fullyAssociative()) {
            noteProbe(1);
            const auto it = index_.find(tagOf(key));
            if (it == index_.end())
                return nullptr;
            if (keys_[it->second] != key)
                ++aliasedPeeks_;
            slot = it->second;
            return &entries_[it->second];
        }
        const size_t base = setBase(key);
        const int w = hitWay(base, key);
        noteProbe(probedWays(w));
        if (w < 0)
            return nullptr;
        const size_t s = base + static_cast<size_t>(w);
        if (keys_[s] != key)
            ++aliasedPeeks_;
        slot = s;
        return &entries_[s];
    }

    /**
     * Touch a slot a peekSlot() of @p key just returned, with no
     * intervening table mutation: skips the probe, but performs
     * exactly the recency/rebinding work touch(key) would — the two
     * are interchangeable under that precondition. The entry is by
     * construction live and tag-matching, so this is never an insert.
     */
    Entry &
    touchAt(size_t slot, uint64_t key, bool *aliased = nullptr)
    {
        ++tick_;
        stamps_[slot] = tick_;
        if (keys_[slot] != key) {
            ++aliasedTouches_;
            keys_[slot] = key;
            if (aliased != nullptr)
                *aliased = true;
        }
        return entries_[slot];
    }

    /**
     * Software-prefetch the set @p key indexes (keys and payloads) so
     * a later peek()/touch() of the same key finds it in cache. Pure
     * hint: never changes any state, observable or otherwise. Batched
     * replay sweeps this over a whole batch before probing, so the
     * per-event miss chains overlap instead of serialising.
     */
    void
    prefetch(uint64_t key) const
    {
#if defined(__GNUC__) || defined(__clang__)
        if (fullyAssociative())
            return;
        // No stamp-line prefetch: the hit path only *stores* to the
        // stamp array (absorbed by the store buffer, not latency
        // critical), and spending a fill-buffer slot per probe on it
        // starves the prefetches that do feed dependent loads.
        const size_t base = setBase(key);
        __builtin_prefetch(keys_.data() + base);
        __builtin_prefetch(valid_.data() + base);
        // The payload span of a whole set can cross several cache
        // lines (ways * sizeof(Entry) bytes) and which way will hit is
        // unknowable before the probe, so fetch them all. Callers with
        // large entries avoid this blanket fetch by pairing
        // prefetchKeys() with a probeSlot()/prefetchEntryAt() stage
        // that fetches exactly the hit way's lines.
        const auto *first =
                reinterpret_cast<const char *>(entries_.data() + base);
        const size_t span = config_.ways * sizeof(Entry);
        for (size_t off = 0; off < span; off += 64)
            __builtin_prefetch(first + off);
#else
        (void)key;
#endif
    }

    /** prefetch() restricted to the probe metadata (key and valid
     *  lines) — pair with probeSlot() + prefetchEntryAt() to fetch
     *  the one payload way that will actually be read. */
    void
    prefetchKeys(uint64_t key) const
    {
#if defined(__GNUC__) || defined(__clang__)
        if (fullyAssociative())
            return;
        const size_t base = setBase(key);
        __builtin_prefetch(keys_.data() + base);
        __builtin_prefetch(valid_.data() + base);
#else
        (void)key;
#endif
    }

    /**
     * Pure probe: the slot @p key currently hits, or SIZE_MAX. No
     * recency motion, no alias accounting — a prefetch-planning hint
     * whose answer may be stale by use time, so consumers must
     * re-validate (touchHinted() does).
     */
    size_t
    probeSlot(uint64_t key) const
    {
        if (fullyAssociative()) {
            const auto it = index_.find(tagOf(key));
            return it == index_.end() ? SIZE_MAX : it->second;
        }
        const size_t base = setBase(key);
        const int w = hitWay(base, key);
        return w < 0 ? SIZE_MAX : base + static_cast<size_t>(w);
    }

    /** Software-prefetch exactly slot @p slot's payload lines. */
    void
    prefetchEntryAt(size_t slot) const
    {
#if defined(__GNUC__) || defined(__clang__)
        const auto *first =
                reinterpret_cast<const char *>(entries_.data() + slot);
        for (size_t off = 0; off < sizeof(Entry); off += 64)
            __builtin_prefetch(first + off);
#else
        (void)slot;
#endif
    }

    /**
     * touch() with a slot hint from an earlier probeSlot(). The hint
     * is trusted only if the slot still holds a live, tag-matching
     * entry (intervening touches may have evicted or rebound it);
     * otherwise this falls back to a full touch(). Either way the
     * outcome is exactly what touch(key) would have produced.
     */
    Entry &
    touchHinted(uint64_t key, size_t slot, bool &inserted,
                bool *aliased = nullptr)
    {
        ++hintedTouches_;
        if (slot != SIZE_MAX && !fullyAssociative() && valid_[slot] &&
            tagOf(keys_[slot]) == tagOf(key)) {
            ++hintedTouchHits_;
            inserted = false;
            return touchAt(slot, key, aliased);
        }
        return touch(key, inserted, aliased);
    }

    /**
     * Find-or-allocate @p key, evicting if its set is full, and mark
     * it most recently used. @p inserted reports whether the entry is
     * freshly (re)initialised — the caller must then treat it as
     * cold. With partial tags a foreign entry whose truncated tag
     * matches is a *hit* (inserted == false, hardware cannot tell);
     * @p aliased, when given, reports that case so the caller can
     * classify the outcome, and the shadow key is re-bound to @p key
     * (the last trainer owns the entry).
     */
    Entry &
    touch(uint64_t key, bool &inserted, bool *aliased = nullptr)
    {
        ++tick_;
        const size_t s = fullyAssociative() ? touchFa(key, inserted)
                                            : touchSet(key, inserted);
        stamps_[s] = tick_;
        if (inserted) {
            entries_[s] = Entry{};
            keys_[s] = key;
            valid_[s] = 1;
            insertStamps_[s] = tick_;
        } else if (keys_[s] != key) {
            ++aliasedTouches_;
            keys_[s] = key;
            if (aliased != nullptr)
                *aliased = true;
        }
        return entries_[s];
    }

    /** Discard all entries (the budget itself is immutable). */
    void
    clear()
    {
        std::fill(keys_.begin(), keys_.end(), 0);
        std::fill(stamps_.begin(), stamps_.end(), 0);
        std::fill(insertStamps_.begin(), insertStamps_.end(), 0);
        std::fill(valid_.begin(), valid_.end(), 0);
        std::fill(entries_.begin(), entries_.end(), Entry{});
        index_.clear();
        live_ = 0;
        evictions_ = 0;
        aliasedPeeks_ = 0;
        aliasedTouches_ = 0;
        aliasConstructive_ = 0;
        aliasDestructive_ = 0;
        probes_ = 0;
        probeDepth_.fill(0);
        hintedTouches_ = 0;
        hintedTouchHits_ = 0;
        tick_ = 0;
        rng_ = config_.seed | 1;
    }

  private:
    /** Ways a probe examined: w + 1 on a hit in way w, the whole set
     *  on a miss (FA mode reports 1 — its index lookup is O(1)). */
    size_t
    probedWays(int hit) const
    {
        return hit >= 0 ? static_cast<size_t>(hit) + 1 : config_.ways;
    }

    /** Fold one probe of @p depth ways into the depth distribution.
     *  Two plain increments amid the probe's own cache traffic; the
     *  counters are always on (no mode flag, so replay is identical
     *  with or without a consumer) and pulled via telemetry(). */
    void
    noteProbe(size_t depth) const
    {
        ++probes_;
        ++probeDepth_[std::min(depth, BoundedTableTelemetry::maxDepth)];
    }

    /** The age slot @p s's victim scan minimises for this policy. */
    uint64_t
    victimStamp(size_t s) const
    {
        return config_.replacement == Replacement::Fifo
                       ? insertStamps_[s]
                       : stamps_[s];
    }

    /** The stored tag: the low tagBits of @p key (full key when 0). */
    uint64_t
    tagOf(uint64_t key) const
    {
        return tagMask_ != 0 ? key & tagMask_ : key;
    }

    /**
     * First way of @p key's set whose live tag matches, or -1. The
     * 4-way layout (the default geometry everywhere) is resolved
     * branchlessly — the matching way is data-dependent, so a
     * short-circuiting scan pays a mispredicted branch on nearly
     * every probe.
     */
    int
    hitWay(size_t base, uint64_t key) const
    {
        const uint64_t tag = tagOf(key);
        if (config_.ways == 4) {
            unsigned mask = 0;
            for (unsigned w = 0; w < 4; ++w) {
                mask |= static_cast<unsigned>(
                                valid_[base + w] != 0 &&
                                tagOf(keys_[base + w]) == tag)
                        << w;
            }
            return mask != 0 ? std::countr_zero(mask) : -1;
        }
        for (size_t w = 0; w < config_.ways; ++w) {
            if (valid_[base + w] && tagOf(keys_[base + w]) == tag)
                return static_cast<int>(w);
        }
        return -1;
    }

    size_t
    setBase(uint64_t key) const
    {
        // Hardware-style indexing: fold the high key bits into the
        // low ones and take the low bits. Small sequential keys (PCs)
        // land in adjacent sets — the locality a real PC-indexed
        // table has — while already-hashed context keys stay spread.
        // A power-of-two set count (the common case) masks instead
        // of dividing.
        const uint64_t folded = key ^ (key >> 32) ^ (key >> 16);
        const size_t set = setMask_ != 0
                ? static_cast<size_t>(folded & setMask_)
                : static_cast<size_t>(folded % sets_);
        return set * config_.ways;
    }

    uint64_t
    nextRandom()
    {
        // xorshift64: deterministic across runs and platforms.
        rng_ ^= rng_ << 13;
        rng_ ^= rng_ >> 7;
        rng_ ^= rng_ << 17;
        return rng_;
    }

    /** Find-or-victimise in @p key's set; returns the slot index. */
    size_t
    touchSet(uint64_t key, bool &inserted)
    {
        // Hit detection first, touching only the key/valid arrays: the
        // common steady-state case then never loads the set's stamps
        // (the victim scan below does), which keeps the hot probe to
        // two cache lines.
        const size_t base = setBase(key);
        const int hit = hitWay(base, key);
        noteProbe(probedWays(hit));
        if (hit >= 0) {
            inserted = false;
            return base + static_cast<size_t>(hit);
        }
        inserted = true;
        size_t oldest = base;
        for (size_t w = 0; w < config_.ways; ++w) {
            const size_t s = base + w;
            if (!valid_[s]) {
                ++live_;
                return s;
            }
            if (victimStamp(s) < victimStamp(oldest))
                oldest = s;
        }
        ++evictions_;
        if (config_.replacement == Replacement::Random)
            return base + nextRandom() % config_.ways;
        return oldest;
    }

    size_t
    touchFa(uint64_t key, bool &inserted)
    {
        noteProbe(1);
        const auto it = index_.find(tagOf(key));
        if (it != index_.end()) {
            inserted = false;
            return it->second;
        }
        inserted = true;
        size_t victim;
        if (live_ < config_.entries) {
            victim = live_++;
        } else {
            ++evictions_;
            if (config_.replacement == Replacement::Random) {
                victim = nextRandom() % config_.entries;
            } else {
                victim = 0;
                for (size_t i = 1; i < config_.entries; ++i) {
                    if (victimStamp(i) < victimStamp(victim))
                        victim = i;
                }
            }
            index_.erase(tagOf(keys_[victim]));
        }
        index_.emplace(tagOf(key), victim);
        return victim;
    }

    /** Backing store for the flat slot arrays: huge-page-backed when
     *  large, so random probes (and the batched path's software
     *  prefetches) don't drown in TLB misses. */
    template <typename T>
    using Array = std::vector<T, HugePageAllocator<T>>;

    BoundedTableConfig config_;
    // Structure-of-arrays slot storage (see the class comment): the
    // probe loop reads keys_/valid_ only; entries_ is touched on hits
    // and victims, stamps on recency updates and victim scans.
    Array<uint64_t> keys_;
    Array<uint64_t> stamps_;                ///< last touch (LRU order)
    Array<uint64_t> insertStamps_;          ///< allocation (FIFO order)
    Array<uint8_t> valid_;
    Array<Entry> entries_;
    std::unordered_map<uint64_t, size_t> index_;    // fa: tag -> slot
    size_t sets_ = 0;                               // set-assoc mode
    size_t setMask_ = 0;                            // sets_ - 1 if pow2
    uint64_t tagMask_ = 0;                          // 0 = full-key tags
    size_t live_ = 0;
    uint64_t evictions_ = 0;
    // Shadow aliasing accounting; peek() is const on *observable*
    // state, so the peek-side counter is mutable like an rng would be.
    mutable uint64_t aliasedPeeks_ = 0;
    uint64_t aliasedTouches_ = 0;
    uint64_t aliasConstructive_ = 0;
    uint64_t aliasDestructive_ = 0;
    // Probe-depth distribution (mutable: const peeks probe too).
    mutable uint64_t probes_ = 0;
    mutable std::array<uint64_t, BoundedTableTelemetry::maxDepth + 1>
            probeDepth_{};
    uint64_t hintedTouches_ = 0;
    uint64_t hintedTouchHits_ = 0;
    uint64_t tick_ = 0;
    uint64_t rng_;
};

} // namespace vp::core

#endif // VP_CORE_BOUNDED_TABLE_HH
