#include "core/last_value.hh"

#include <algorithm>

namespace vp::core {

LastValuePredictor::LastValuePredictor(LvConfig config) : config_(config)
{
}

Prediction
LastValuePredictor::predict(uint64_t pc) const
{
    auto it = table_.find(pc);
    if (it == table_.end())
        return Prediction::none();
    return Prediction::of(it->second.value);
}

void
LastValuePredictor::update(uint64_t pc, uint64_t actual)
{
    auto [it, inserted] = table_.try_emplace(pc);
    Entry &entry = it->second;

    if (inserted) {
        entry.value = actual;
        entry.counter = config_.counterThreshold;
        entry.candidate = actual;
        entry.candidateRun = 1;
        return;
    }

    switch (config_.policy) {
      case LvPolicy::AlwaysUpdate:
        entry.value = actual;
        break;

      case LvPolicy::SaturatingCounter:
        if (actual == entry.value) {
            entry.counter = std::min(entry.counter + 1, config_.counterMax);
        } else {
            entry.counter = std::max(entry.counter - 1, 0);
            if (entry.counter < config_.counterThreshold)
                entry.value = actual;
        }
        break;

      case LvPolicy::Consecutive:
        if (actual == entry.value) {
            entry.candidateRun = 0;
        } else if (actual == entry.candidate) {
            if (++entry.candidateRun >= config_.consecutiveRequired) {
                entry.value = actual;
                entry.candidateRun = 0;
            }
        } else {
            entry.candidate = actual;
            entry.candidateRun = 1;
        }
        break;
    }
}

std::string
LastValuePredictor::name() const
{
    switch (config_.policy) {
      case LvPolicy::AlwaysUpdate: return "l";
      case LvPolicy::SaturatingCounter: return "l-sat";
      case LvPolicy::Consecutive: return "l-consec";
    }
    return "l";
}

void
LastValuePredictor::reset()
{
    table_.clear();
}

} // namespace vp::core
