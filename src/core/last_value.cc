#include "core/last_value.hh"

#include <algorithm>

namespace vp::core {

void
lvInitEntry(LvEntry &entry, uint64_t actual, const LvConfig &config)
{
    entry.value = actual;
    entry.counter = config.counterThreshold;
    entry.candidate = actual;
    entry.candidateRun = 1;
}

void
lvTrainEntry(LvEntry &entry, uint64_t actual, const LvConfig &config)
{
    switch (config.policy) {
      case LvPolicy::AlwaysUpdate:
        entry.value = actual;
        break;

      case LvPolicy::SaturatingCounter:
        if (actual == entry.value) {
            entry.counter = std::min(entry.counter + 1, config.counterMax);
        } else {
            entry.counter = std::max(entry.counter - 1, 0);
            if (entry.counter < config.counterThreshold)
                entry.value = actual;
        }
        break;

      case LvPolicy::Consecutive:
        if (actual == entry.value) {
            entry.candidateRun = 0;
        } else if (actual == entry.candidate) {
            if (++entry.candidateRun >= config.consecutiveRequired) {
                entry.value = actual;
                entry.candidateRun = 0;
            }
        } else {
            entry.candidate = actual;
            entry.candidateRun = 1;
        }
        break;
    }
}

const char *
lvPolicyName(LvPolicy policy)
{
    switch (policy) {
      case LvPolicy::AlwaysUpdate: return "l";
      case LvPolicy::SaturatingCounter: return "l-sat";
      case LvPolicy::Consecutive: return "l-consec";
    }
    return "l";
}

LastValuePredictor::LastValuePredictor(LvConfig config) : config_(config)
{
}

Prediction
LastValuePredictor::predict(uint64_t pc) const
{
    auto it = table_.find(pc);
    if (it == table_.end())
        return Prediction::none();
    return Prediction::of(it->second.value);
}

void
LastValuePredictor::update(uint64_t pc, uint64_t actual)
{
    auto [it, inserted] = table_.try_emplace(pc);
    if (inserted)
        lvInitEntry(it->second, actual, config_);
    else
        lvTrainEntry(it->second, actual, config_);
}

void
LastValuePredictor::trainBatch(const uint64_t *pcs,
                               const uint64_t *values, size_t n,
                               uint64_t *valid, uint64_t *correct)
{
    for (size_t i = 0; i < n; ++i) {
        auto [it, inserted] = table_.try_emplace(pcs[i]);
        if (inserted) {
            // Cold entry: the scalar predict() would have declined.
            lvInitEntry(it->second, values[i], config_);
            continue;
        }
        bits::set(valid, i);
        if (it->second.value == values[i])
            bits::set(correct, i);
        lvTrainEntry(it->second, values[i], config_);
    }
}

std::string
LastValuePredictor::name() const
{
    return lvPolicyName(config_.policy);
}

void
LastValuePredictor::reset()
{
    table_.clear();
}

} // namespace vp::core
