#include "core/stride.hh"

#include <algorithm>

namespace vp::core {

void
strideInitEntry(StrideEntry &entry, uint64_t actual,
                const StrideConfig &config)
{
    entry.last = actual;
    entry.counter = config.counterThreshold;
}

void
strideTrainEntry(StrideEntry &entry, uint64_t actual,
                 const StrideConfig &config)
{
    const int64_t delta = static_cast<int64_t>(actual - entry.last);

    switch (config.policy) {
      case StridePolicy::Simple:
        entry.s1 = entry.s2 = delta;
        entry.haveDelta = true;
        break;

      case StridePolicy::SaturatingCounter: {
        const bool correct = stridePredictValue(entry) == actual;
        if (correct) {
            entry.counter = std::min(entry.counter + 1, config.counterMax);
        } else {
            entry.counter = std::max(entry.counter - 1, 0);
            if (entry.counter < config.counterThreshold)
                entry.s2 = delta;
        }
        entry.s1 = delta;
        entry.haveDelta = true;
        break;
      }

      case StridePolicy::TwoDelta:
        if (!entry.haveDelta) {
            // First delta initializes both strides.
            entry.s1 = entry.s2 = delta;
            entry.haveDelta = true;
        } else {
            if (delta == entry.s1)
                entry.s2 = delta;
            entry.s1 = delta;
        }
        break;
    }

    entry.last = actual;
}

const char *
stridePolicyName(StridePolicy policy)
{
    switch (policy) {
      case StridePolicy::Simple: return "s";
      case StridePolicy::SaturatingCounter: return "s-sat";
      case StridePolicy::TwoDelta: return "s2";
    }
    return "s2";
}

StridePredictor::StridePredictor(StrideConfig config) : config_(config)
{
}

Prediction
StridePredictor::predict(uint64_t pc) const
{
    auto it = table_.find(pc);
    if (it == table_.end())
        return Prediction::none();
    return Prediction::of(stridePredictValue(it->second));
}

void
StridePredictor::update(uint64_t pc, uint64_t actual)
{
    auto [it, inserted] = table_.try_emplace(pc);
    if (inserted)
        strideInitEntry(it->second, actual, config_);
    else
        strideTrainEntry(it->second, actual, config_);
}

void
StridePredictor::trainBatch(const uint64_t *pcs, const uint64_t *values,
                            size_t n, uint64_t *valid, uint64_t *correct)
{
    for (size_t i = 0; i < n; ++i) {
        auto [it, inserted] = table_.try_emplace(pcs[i]);
        if (inserted) {
            strideInitEntry(it->second, values[i], config_);
            continue;
        }
        bits::set(valid, i);
        if (stridePredictValue(it->second) == values[i])
            bits::set(correct, i);
        strideTrainEntry(it->second, values[i], config_);
    }
}

std::string
StridePredictor::name() const
{
    return stridePolicyName(config_.policy);
}

void
StridePredictor::reset()
{
    table_.clear();
}

} // namespace vp::core
