#include "core/stride.hh"

#include <algorithm>

namespace vp::core {

StridePredictor::StridePredictor(StrideConfig config) : config_(config)
{
}

Prediction
StridePredictor::predict(uint64_t pc) const
{
    auto it = table_.find(pc);
    if (it == table_.end())
        return Prediction::none();
    const Entry &entry = it->second;
    return Prediction::of(entry.last + static_cast<uint64_t>(entry.s2));
}

void
StridePredictor::update(uint64_t pc, uint64_t actual)
{
    auto [it, inserted] = table_.try_emplace(pc);
    Entry &entry = it->second;

    if (inserted) {
        entry.last = actual;
        entry.counter = config_.counterThreshold;
        return;
    }

    const int64_t delta = static_cast<int64_t>(actual - entry.last);

    switch (config_.policy) {
      case StridePolicy::Simple:
        entry.s1 = entry.s2 = delta;
        entry.haveDelta = true;
        break;

      case StridePolicy::SaturatingCounter: {
        const bool correct =
                entry.last + static_cast<uint64_t>(entry.s2) == actual;
        if (correct) {
            entry.counter = std::min(entry.counter + 1, config_.counterMax);
        } else {
            entry.counter = std::max(entry.counter - 1, 0);
            if (entry.counter < config_.counterThreshold)
                entry.s2 = delta;
        }
        entry.s1 = delta;
        entry.haveDelta = true;
        break;
      }

      case StridePolicy::TwoDelta:
        if (!entry.haveDelta) {
            // First delta initializes both strides.
            entry.s1 = entry.s2 = delta;
            entry.haveDelta = true;
        } else {
            if (delta == entry.s1)
                entry.s2 = delta;
            entry.s1 = delta;
        }
        break;
    }

    entry.last = actual;
}

std::string
StridePredictor::name() const
{
    switch (config_.policy) {
      case StridePolicy::Simple: return "s";
      case StridePolicy::SaturatingCounter: return "s-sat";
      case StridePolicy::TwoDelta: return "s2";
    }
    return "s2";
}

void
StridePredictor::reset()
{
    table_.clear();
}

} // namespace vp::core
