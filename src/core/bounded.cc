#include "core/bounded.hh"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace vp::core {

std::string
boundedSuffixTail(const BoundedTableConfig &config)
{
    // Built with += (GCC 12's -Wrestrict misfires on the
    // char* + std::string&& operator chain).
    std::string s = "x";
    s += config.ways == 0 ? "fa" : std::to_string(config.ways);
    if (config.replacement == Replacement::Random)
        s += "r";
    else if (config.replacement == Replacement::Fifo)
        s += "f";
    if (config.tagBits > 0) {
        s += "%";
        s += std::to_string(config.tagBits);
    }
    return s;
}

std::string
boundedSuffix(const BoundedTableConfig &config)
{
    std::string s = "@";
    s += std::to_string(config.entries);
    s += boundedSuffixTail(config);
    return s;
}

// ------------------------------------------------------ last value

BoundedLastValuePredictor::BoundedLastValuePredictor(
        LvConfig config, BoundedTableConfig table)
    : config_(config), table_(table)
{
}

Prediction
BoundedLastValuePredictor::predict(uint64_t pc) const
{
    const LvEntry *entry = table_.peek(pc);
    if (entry == nullptr)
        return Prediction::none();
    return Prediction::of(entry->value);
}

void
BoundedLastValuePredictor::update(uint64_t pc, uint64_t actual)
{
    bool inserted = false;
    bool aliased = false;
    LvEntry &entry = table_.touch(pc, inserted, &aliased);
    if (aliased) {
        // The foreign entry just served this PC's prediction
        // (predict() matched the same partial tag): classify it.
        table_.noteAliasOutcome(entry.value == actual);
    }
    if (inserted)
        lvInitEntry(entry, actual, config_);
    else
        lvTrainEntry(entry, actual, config_);
}

std::string
BoundedLastValuePredictor::name() const
{
    return lvPolicyName(config_.policy) + boundedSuffix(table_.config());
}

void
BoundedLastValuePredictor::reset()
{
    table_.clear();
}

// ---------------------------------------------------------- stride

BoundedStridePredictor::BoundedStridePredictor(StrideConfig config,
                                               BoundedTableConfig table)
    : config_(config), table_(table)
{
}

Prediction
BoundedStridePredictor::predict(uint64_t pc) const
{
    const StrideEntry *entry = table_.peek(pc);
    if (entry == nullptr)
        return Prediction::none();
    return Prediction::of(stridePredictValue(*entry));
}

void
BoundedStridePredictor::update(uint64_t pc, uint64_t actual)
{
    bool inserted = false;
    bool aliased = false;
    StrideEntry &entry = table_.touch(pc, inserted, &aliased);
    if (aliased)
        table_.noteAliasOutcome(stridePredictValue(entry) == actual);
    if (inserted)
        strideInitEntry(entry, actual, config_);
    else
        strideTrainEntry(entry, actual, config_);
}

std::string
BoundedStridePredictor::name() const
{
    return stridePolicyName(config_.policy) +
           boundedSuffix(table_.config());
}

void
BoundedStridePredictor::reset()
{
    table_.clear();
}

// ------------------------------------------------------------- fcm

BoundedFcmPredictor::BoundedFcmPredictor(BoundedFcmConfig config)
    : config_(config), vht_(config.vht), vpt_(config.vpt)
{
    if (config_.fcm.order < 0 || config_.fcm.order > maxOrder) {
        throw std::invalid_argument(
                "bounded fcm order must be in [0, " +
                std::to_string(maxOrder) + "]");
    }
}

uint64_t
BoundedFcmPredictor::contextKey(uint64_t pc, int j, const VhtEntry &entry)
{
    // FNV-1a style mix over (pc, order, the j newest history values);
    // the same whole-value mixing as the unbounded predictor's
    // KeyHash, with pc and j folded in because the VPT is shared
    // across PCs and orders.
    uint64_t hash = 1469598103934665603ull;
    const auto fold = [&hash](uint64_t v) {
        hash ^= v;
        hash *= 1099511628211ull;
        hash ^= hash >> 29;
    };
    fold(pc);
    fold(static_cast<uint64_t>(j) + 1);
    for (int i = entry.len - j; i < entry.len; ++i)
        fold(entry.history[static_cast<size_t>(i)]);
    return hash;
}

int
BoundedFcmPredictor::longestMatch(uint64_t pc, const VhtEntry &entry) const
{
    const int max_order =
            std::min<int>(config_.fcm.order, entry.len);
    const int min_order = config_.fcm.blending == FcmBlending::None
                                  ? config_.fcm.order
                                  : 0;
    for (int j = max_order; j >= min_order; --j) {
        const FcmFollowers *followers =
                vpt_.peek(contextKey(pc, j, entry));
        if (followers != nullptr && !followers->cells.empty())
            return j;
    }
    return -1;
}

Prediction
BoundedFcmPredictor::predict(uint64_t pc) const
{
    const VhtEntry *entry = vht_.peek(pc);
    if (entry == nullptr)
        return Prediction::none();

    if (config_.fcm.blending == FcmBlending::None &&
        entry->len < config_.fcm.order) {
        return Prediction::none();
    }

    const int match = longestMatch(pc, *entry);
    if (match < 0)
        return Prediction::none();

    const FcmFollowers *followers =
            vpt_.peek(contextKey(pc, match, *entry));
    const auto *best = followers->best();
    if (best == nullptr)
        return Prediction::none();
    return Prediction::of(best->value);
}

void
BoundedFcmPredictor::update(uint64_t pc, uint64_t actual)
{
    bool inserted = false;
    VhtEntry &entry = vht_.touch(pc, inserted);

    // Which orders to train (mirrors FcmPredictor::update).
    int lowest = 0;
    switch (config_.fcm.blending) {
      case FcmBlending::None:
        lowest = config_.fcm.order;
        break;
      case FcmBlending::Full:
        lowest = 0;
        break;
      case FcmBlending::LazyExclusion: {
        const int match = longestMatch(pc, entry);
        lowest = match < 0 ? 0 : match;
        break;
      }
    }

    ++seq_;
    const int max_order = std::min<int>(config_.fcm.order, entry.len);
    for (int j = max_order; j >= lowest; --j) {
        bool vpt_inserted = false;
        bool vpt_aliased = false;
        FcmFollowers &followers = vpt_.touch(contextKey(pc, j, entry),
                                             vpt_inserted, &vpt_aliased);
        if (vpt_aliased) {
            // What the foreign context would have predicted, before
            // this training bump pollutes it.
            const auto *best = followers.best();
            vpt_.noteAliasOutcome(best != nullptr &&
                                  best->value == actual);
        }
        followers.bump(actual, seq_, config_.fcm.counterMax,
                       config_.maxFollowers);
    }

    // Slide the history window.
    if (entry.len == config_.fcm.order) {
        if (entry.len > 0) {
            std::copy(entry.history.begin() + 1,
                      entry.history.begin() + entry.len,
                      entry.history.begin());
            entry.history[static_cast<size_t>(entry.len - 1)] = actual;
        }
    } else {
        entry.history[entry.len] = actual;
        ++entry.len;
    }
}

std::string
BoundedFcmPredictor::name() const
{
    std::string base = "fcm" + std::to_string(config_.fcm.order);
    switch (config_.fcm.blending) {
      case FcmBlending::None: base += "-pure"; break;
      case FcmBlending::Full: base += "-full"; break;
      case FcmBlending::LazyExclusion: break;
    }
    std::string s = base + "@" + std::to_string(vht_.capacity()) + "/" +
                    std::to_string(vpt_.capacity());
    s += boundedSuffixTail(vpt_.config());
    return s;
}

void
BoundedFcmPredictor::reset()
{
    vht_.clear();
    vpt_.clear();
    seq_ = 0;
}

} // namespace vp::core
