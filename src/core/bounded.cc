#include "core/bounded.hh"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace vp::core {

namespace {

/**
 * Prefetch distance for the batched loops, in events. The hardware
 * keeps only a dozen or so line fills in flight, so issuing a batch's
 * prefetches as one burst just drops most of them; instead each
 * processed event prefetches its first-level table set a fixed
 * distance ahead, keeping the miss queue full without overflowing it.
 */
constexpr size_t kPrefetchAhead = 24;

} // anonymous namespace

std::string
boundedSuffixTail(const BoundedTableConfig &config)
{
    // Built with += (GCC 12's -Wrestrict misfires on the
    // char* + std::string&& operator chain).
    std::string s = "x";
    s += config.ways == 0 ? "fa" : std::to_string(config.ways);
    if (config.replacement == Replacement::Random)
        s += "r";
    else if (config.replacement == Replacement::Fifo)
        s += "f";
    if (config.tagBits > 0) {
        s += "%";
        s += std::to_string(config.tagBits);
    }
    return s;
}

std::string
boundedSuffix(const BoundedTableConfig &config)
{
    std::string s = "@";
    s += std::to_string(config.entries);
    s += boundedSuffixTail(config);
    return s;
}

void
emitTableCounters(const BoundedTableTelemetry &telemetry,
                  const std::string &prefix, CounterSink &sink)
{
    sink.gauge(prefix + "capacity", telemetry.capacity);
    sink.gauge(prefix + "occupancy", telemetry.live);
    sink.counter(prefix + "evictions", telemetry.evictions);
    sink.counter(prefix + "aliased_peeks", telemetry.aliasedPeeks);
    sink.counter(prefix + "aliased_touches", telemetry.aliasedTouches);
    sink.counter(prefix + "alias_constructive",
                 telemetry.aliasConstructive);
    sink.counter(prefix + "alias_destructive",
                 telemetry.aliasDestructive);
    sink.counter(prefix + "probes", telemetry.probes);
    sink.counter(prefix + "hinted_touches", telemetry.hintedTouches);
    sink.counter(prefix + "hinted_touch_hits",
                 telemetry.hintedTouchHits);
    for (size_t d = 0; d < telemetry.probeDepth.size(); ++d) {
        sink.distribution(prefix + "probe_depth", d,
                          telemetry.probeDepth[d]);
    }
}

// ------------------------------------------------------ last value

BoundedLastValuePredictor::BoundedLastValuePredictor(
        LvConfig config, BoundedTableConfig table)
    : config_(config), table_(table)
{
}

Prediction
BoundedLastValuePredictor::predict(uint64_t pc) const
{
    const LvEntry *entry = table_.peek(pc);
    if (entry == nullptr)
        return Prediction::none();
    return Prediction::of(entry->value);
}

void
BoundedLastValuePredictor::update(uint64_t pc, uint64_t actual)
{
    bool inserted = false;
    bool aliased = false;
    LvEntry &entry = table_.touch(pc, inserted, &aliased);
    if (aliased) {
        // The foreign entry just served this PC's prediction
        // (predict() matched the same partial tag): classify it.
        table_.noteAliasOutcome(entry.value == actual);
    }
    if (inserted)
        lvInitEntry(entry, actual, config_);
    else
        lvTrainEntry(entry, actual, config_);
}

void
BoundedLastValuePredictor::trainBatch(const uint64_t *pcs,
                                      const uint64_t *values, size_t n,
                                      uint64_t *valid, uint64_t *correct)
{
    // Pipelined prefetch: each event prefetches the set a fixed
    // lookahead distance ahead, so the table misses overlap
    // (memory-level parallelism the one-event-at-a-time protocol
    // cannot express) without flooding the miss queue.
    for (size_t i = 0; i < n; ++i) {
        if (i + kPrefetchAhead < n)
            table_.prefetch(pcs[i + kPrefetchAhead]);

        bool inserted = false;
        bool aliased = false;
        LvEntry &entry = table_.touch(pcs[i], inserted, &aliased);
        if (inserted) {
            // The scalar peek() would have missed: no prediction.
            lvInitEntry(entry, values[i], config_);
            continue;
        }
        // The entry (own or tag-aliased foreign) is exactly what the
        // scalar predict() peeked: grade it before training it.
        const bool hit = entry.value == values[i];
        bits::set(valid, i);
        if (hit)
            bits::set(correct, i);
        if (aliased)
            table_.noteAliasOutcome(hit);
        lvTrainEntry(entry, values[i], config_);
    }
}

std::string
BoundedLastValuePredictor::name() const
{
    return lvPolicyName(config_.policy) + boundedSuffix(table_.config());
}

void
BoundedLastValuePredictor::reset()
{
    table_.clear();
}

void
BoundedLastValuePredictor::collectCounters(CounterSink &sink) const
{
    emitTableCounters(table_.telemetry(), "lv.", sink);
}

// ---------------------------------------------------------- stride

BoundedStridePredictor::BoundedStridePredictor(StrideConfig config,
                                               BoundedTableConfig table)
    : config_(config), table_(table)
{
}

Prediction
BoundedStridePredictor::predict(uint64_t pc) const
{
    const StrideEntry *entry = table_.peek(pc);
    if (entry == nullptr)
        return Prediction::none();
    return Prediction::of(stridePredictValue(*entry));
}

void
BoundedStridePredictor::update(uint64_t pc, uint64_t actual)
{
    bool inserted = false;
    bool aliased = false;
    StrideEntry &entry = table_.touch(pc, inserted, &aliased);
    if (aliased)
        table_.noteAliasOutcome(stridePredictValue(entry) == actual);
    if (inserted)
        strideInitEntry(entry, actual, config_);
    else
        strideTrainEntry(entry, actual, config_);
}

void
BoundedStridePredictor::trainBatch(const uint64_t *pcs,
                                   const uint64_t *values, size_t n,
                                   uint64_t *valid, uint64_t *correct)
{
    // Pipelined set prefetch; see BoundedLastValuePredictor.
    for (size_t i = 0; i < n; ++i) {
        if (i + kPrefetchAhead < n)
            table_.prefetch(pcs[i + kPrefetchAhead]);

        bool inserted = false;
        bool aliased = false;
        StrideEntry &entry = table_.touch(pcs[i], inserted, &aliased);
        if (inserted) {
            strideInitEntry(entry, values[i], config_);
            continue;
        }
        const bool hit = stridePredictValue(entry) == values[i];
        bits::set(valid, i);
        if (hit)
            bits::set(correct, i);
        if (aliased)
            table_.noteAliasOutcome(hit);
        strideTrainEntry(entry, values[i], config_);
    }
}

std::string
BoundedStridePredictor::name() const
{
    return stridePolicyName(config_.policy) +
           boundedSuffix(table_.config());
}

void
BoundedStridePredictor::reset()
{
    table_.clear();
}

void
BoundedStridePredictor::collectCounters(CounterSink &sink) const
{
    emitTableCounters(table_.telemetry(), "stride.", sink);
}

// ------------------------------------------------------------- fcm

BoundedFcmPredictor::BoundedFcmPredictor(BoundedFcmConfig config)
    : config_(config), vht_(config.vht), vpt_(config.vpt)
{
    if (config_.fcm.order < 0 || config_.fcm.order > maxOrder) {
        throw std::invalid_argument(
                "bounded fcm order must be in [0, " +
                std::to_string(maxOrder) + "]");
    }
}

uint64_t
BoundedFcmPredictor::contextKey(uint64_t pc, int j, const VhtEntry &entry)
{
    // FNV-1a style mix over (pc, order, the j newest history values);
    // the same whole-value mixing as the unbounded predictor's
    // KeyHash, with pc and j folded in because the VPT is shared
    // across PCs and orders.
    uint64_t hash = 1469598103934665603ull;
    const auto fold = [&hash](uint64_t v) {
        hash ^= v;
        hash *= 1099511628211ull;
        hash ^= hash >> 29;
    };
    fold(pc);
    fold(static_cast<uint64_t>(j) + 1);
    for (int i = entry.len - j; i < entry.len; ++i)
        fold(entry.history[static_cast<size_t>(i)]);
    return hash;
}

int
BoundedFcmPredictor::longestMatch(uint64_t pc, const VhtEntry &entry) const
{
    const int max_order =
            std::min<int>(config_.fcm.order, entry.len);
    const int min_order = config_.fcm.blending == FcmBlending::None
                                  ? config_.fcm.order
                                  : 0;
    for (int j = max_order; j >= min_order; --j) {
        const FcmFollowers *followers =
                vpt_.peek(contextKey(pc, j, entry));
        if (followers != nullptr && !followers->cells.empty())
            return j;
    }
    return -1;
}

Prediction
BoundedFcmPredictor::predict(uint64_t pc) const
{
    const VhtEntry *entry = vht_.peek(pc);
    if (entry == nullptr)
        return Prediction::none();

    if (config_.fcm.blending == FcmBlending::None &&
        entry->len < config_.fcm.order) {
        return Prediction::none();
    }

    const int match = longestMatch(pc, *entry);
    if (match < 0)
        return Prediction::none();

    const FcmFollowers *followers =
            vpt_.peek(contextKey(pc, match, *entry));
    const auto *best = followers->best();
    if (best == nullptr)
        return Prediction::none();
    return Prediction::of(best->value);
}

void
BoundedFcmPredictor::update(uint64_t pc, uint64_t actual)
{
    bool inserted = false;
    VhtEntry &entry = vht_.touch(pc, inserted);

    // Which orders to train (mirrors FcmPredictor::update).
    int lowest = 0;
    switch (config_.fcm.blending) {
      case FcmBlending::None:
        lowest = config_.fcm.order;
        break;
      case FcmBlending::Full:
        lowest = 0;
        break;
      case FcmBlending::LazyExclusion: {
        const int match = longestMatch(pc, entry);
        lowest = match < 0 ? 0 : match;
        break;
      }
    }

    ++seq_;
    const int max_order = std::min<int>(config_.fcm.order, entry.len);
    for (int j = max_order; j >= lowest; --j) {
        bool vpt_inserted = false;
        bool vpt_aliased = false;
        FcmFollowers &followers = vpt_.touch(contextKey(pc, j, entry),
                                             vpt_inserted, &vpt_aliased);
        if (vpt_aliased) {
            // What the foreign context would have predicted, before
            // this training bump pollutes it.
            const auto *best = followers.best();
            vpt_.noteAliasOutcome(best != nullptr &&
                                  best->value == actual);
        }
        followers.bump(actual, seq_, config_.fcm.counterMax,
                       config_.maxFollowers);
    }

    // Slide the history window.
    if (entry.len == config_.fcm.order) {
        if (entry.len > 0) {
            std::copy(entry.history.begin() + 1,
                      entry.history.begin() + entry.len,
                      entry.history.begin());
            entry.history[static_cast<size_t>(entry.len - 1)] = actual;
        }
    } else {
        entry.history[entry.len] = actual;
        ++entry.len;
    }
}

void
BoundedFcmPredictor::trainBatch(const uint64_t *pcs,
                                const uint64_t *values, size_t n,
                                uint64_t *valid, uint64_t *correct)
{
    // The batched win is twofold. First, eliminating repeated work:
    // the scalar predict()/update() pair probes the VHT twice and
    // scans the VPT twice per event, while this loop pays one VHT
    // touch and — in the steady-state common case where the top-order
    // context hits under lazy exclusion — exactly one VPT probe,
    // re-touched in place via the slot the match scan returned.
    // Second, a two-stage software pipeline: the VHT stage of event i
    // touches the VHT, computes the top-order context key, snapshots
    // the pre-slide history and issues the VPT-set prefetch; the VPT
    // stage (the scan/grade/train work) runs kStage events later,
    // when that set is resident. The reorder is sound because the two
    // stages mutate different tables: every VHT operation still
    // happens in event order, and so does every VPT operation, so the
    // observable state is byte-identical to the scalar interleaving
    // (the scan reads the snapshot, which is exactly the history the
    // scalar scan would have seen).
    const int min_order = config_.fcm.blending == FcmBlending::None
                                  ? config_.fcm.order
                                  : 0;

    /** Per-event state handed from the VHT stage to the VPT stage. */
    struct Staged
    {
        VhtEntry pre;       ///< history *before* this event's slide
        uint64_t topKey;    ///< context key of order min(order, pre.len)
        size_t index;       ///< event index (bitset position)
        bool inserted;      ///< VHT touch allocated a fresh entry
    };
    constexpr size_t kStage = 8;
    Staged stage[kStage];

    // A VhtEntry set spans several cache lines and only one way will
    // be read; blanket-prefetching the whole span wastes fill-buffer
    // slots. Instead the probe stage runs kStage events ahead of the
    // touch: by then the key/valid lines (prefetched at
    // kPrefetchAhead) are resident, so a pure probe finds the hit way
    // cheaply and prefetches exactly its payload lines. The slot hint
    // it records may go stale — an intervening touch can evict or
    // rebind the way — so touchHinted() re-validates the tag and
    // falls back to a full probe, keeping the outcome byte-identical
    // to an unhinted touch.
    struct Probe
    {
        size_t event;       ///< event index the hint belongs to
        size_t slot;        ///< hit slot, or SIZE_MAX on miss
    };
    Probe probe[kStage];
    for (auto &p : probe)
        p.event = SIZE_MAX;

    const auto probeStage = [&](size_t i) {
        Probe &pr = probe[i % kStage];
        pr.event = i;
        pr.slot = vht_.probeSlot(pcs[i]);
        if (pr.slot != SIZE_MAX)
            vht_.prefetchEntryAt(pr.slot);
    };

    const auto vhtStage = [&](size_t i) {
        if (i + kPrefetchAhead < n)
            vht_.prefetchKeys(pcs[i + kPrefetchAhead]);
        Staged &st = stage[i % kStage];
        st.index = i;
        st.inserted = false;
        const Probe &pr = probe[i % kStage];
        VhtEntry &entry = vht_.touchHinted(
                pcs[i], pr.event == i ? pr.slot : SIZE_MAX, st.inserted);
        st.pre = entry;
        const int max_order = std::min<int>(config_.fcm.order, entry.len);
        if (max_order >= min_order) {
            st.topKey = contextKey(pcs[i], max_order, entry);
            vpt_.prefetch(st.topKey);
        }
        // Slide the history window now; the VPT stage reads st.pre.
        if (entry.len == config_.fcm.order) {
            if (entry.len > 0) {
                std::copy(entry.history.begin() + 1,
                          entry.history.begin() + entry.len,
                          entry.history.begin());
                entry.history[static_cast<size_t>(entry.len - 1)] =
                        values[i];
            }
        } else {
            entry.history[entry.len] = values[i];
            ++entry.len;
        }
    };

    const auto vptStage = [&](const Staged &st) {
        const size_t i = st.index;
        const uint64_t pc = pcs[i];
        const int max_order =
                std::min<int>(config_.fcm.order, st.pre.len);

        // Lazy longest-first scan, stopping at the first hit like the
        // scalar longestMatch(). One scan serves both the prediction
        // and the lazy-exclusion training floor (nothing mutates this
        // PC's state between the scalar predict() and update() scans,
        // so they always agree). Keys are remembered down to where the
        // scan stopped; Full blending recomputes the rest on demand.
        uint64_t keys[maxOrder + 1] = {};
        int match = -1;
        int scanned = max_order + 1;
        size_t matchSlot = 0;
        const FcmFollowers *matched = nullptr;
        for (int j = max_order; j >= min_order; --j) {
            keys[j] = j == max_order ? st.topKey
                                     : contextKey(pc, j, st.pre);
            scanned = j;
            const FcmFollowers *followers =
                    vpt_.peekSlot(keys[j], matchSlot);
            if (followers != nullptr && !followers->cells.empty()) {
                match = j;
                matched = followers;
                break;
            }
        }

        // A fresh VHT entry means the scalar predict() missed the VHT
        // peek and declined; the scan above still ran because the
        // scalar update() recomputes it for the training floor.
        if (!st.inserted && matched != nullptr) {
            const auto *best = matched->best();
            if (best != nullptr) {
                bits::set(valid, i);
                if (best->value == values[i])
                    bits::set(correct, i);
            }
        }

        int lowest = 0;
        switch (config_.fcm.blending) {
          case FcmBlending::None:
            lowest = config_.fcm.order;
            break;
          case FcmBlending::Full:
            lowest = 0;
            break;
          case FcmBlending::LazyExclusion:
            lowest = match < 0 ? 0 : match;
            break;
        }

        ++seq_;
        if (match == max_order && lowest == max_order &&
            matched != nullptr) {
            // Steady-state fast path: the only order to train is the
            // one the scan just matched, and nothing has mutated the
            // VPT since — re-touch the matched slot directly instead
            // of probing its set again.
            bool vpt_aliased = false;
            FcmFollowers &followers =
                    vpt_.touchAt(matchSlot, keys[max_order],
                                 &vpt_aliased);
            if (vpt_aliased) {
                const auto *best = followers.best();
                vpt_.noteAliasOutcome(best != nullptr &&
                                      best->value == values[i]);
            }
            followers.bump(values[i], seq_, config_.fcm.counterMax,
                           config_.maxFollowers);
        } else {
            for (int j = max_order; j >= lowest; --j) {
                const uint64_t key = j >= scanned
                        ? keys[j]
                        : contextKey(pc, j, st.pre);
                bool vpt_inserted = false;
                bool vpt_aliased = false;
                FcmFollowers &followers =
                        vpt_.touch(key, vpt_inserted, &vpt_aliased);
                if (vpt_aliased) {
                    const auto *best = followers.best();
                    vpt_.noteAliasOutcome(best != nullptr &&
                                          best->value == values[i]);
                }
                followers.bump(values[i], seq_, config_.fcm.counterMax,
                               config_.maxFollowers);
            }
        }
    };

    // probeStage(i + kStage) must run after vhtStage(i): both land on
    // the same ring cell, and the touch consumes the hint before the
    // next event's probe overwrites it.
    for (size_t i = 0; i < n; ++i) {
        if (i >= kStage)
            vptStage(stage[i % kStage]);
        vhtStage(i);
        if (i + kStage < n)
            probeStage(i + kStage);
    }
    for (size_t i = n > kStage ? n - kStage : 0; i < n; ++i)
        vptStage(stage[i % kStage]);
}

std::string
BoundedFcmPredictor::name() const
{
    std::string base = "fcm" + std::to_string(config_.fcm.order);
    switch (config_.fcm.blending) {
      case FcmBlending::None: base += "-pure"; break;
      case FcmBlending::Full: base += "-full"; break;
      case FcmBlending::LazyExclusion: break;
    }
    std::string s = base + "@" + std::to_string(vht_.capacity()) + "/" +
                    std::to_string(vpt_.capacity());
    s += boundedSuffixTail(vpt_.config());
    return s;
}

void
BoundedFcmPredictor::reset()
{
    vht_.clear();
    vpt_.clear();
    seq_ = 0;
}

void
BoundedFcmPredictor::collectCounters(CounterSink &sink) const
{
    emitTableCounters(vht_.telemetry(), "fcm.vht.", sink);
    emitTableCounters(vpt_.telemetry(), "fcm.vpt.", sink);
}

} // namespace vp::core
