#include "core/learning.hh"

namespace vp::core {

LearningResult
analyzeLearning(ValuePredictor &predictor,
                const std::vector<uint64_t> &sequence, uint64_t pc)
{
    LearningResult result;
    result.correctAt.reserve(sequence.size());
    result.predictionAt.reserve(sequence.size());

    uint64_t correct_total = 0;
    uint64_t after_first = 0;
    uint64_t after_first_correct = 0;

    for (size_t i = 0; i < sequence.size(); ++i) {
        const uint64_t actual = sequence[i];
        const Prediction pred = predictor.predict(pc);
        const bool correct = pred.valid && pred.value == actual;

        result.predictionAt.push_back(pred);
        result.correctAt.push_back(correct);

        if (correct) {
            ++correct_total;
            if (result.learningTime < 0) {
                // i values were observed before this prediction.
                result.learningTime = static_cast<int64_t>(i);
            } else {
                ++after_first_correct;
            }
        }
        if (result.learningTime >= 0 &&
            i > static_cast<size_t>(result.learningTime)) {
            ++after_first;
        }

        predictor.update(pc, actual);
    }

    result.accuracy = sequence.empty()
            ? 0.0
            : static_cast<double>(correct_total) / sequence.size();
    result.learningDegree = after_first
            ? static_cast<double>(after_first_correct) / after_first
            : 0.0;
    return result;
}

} // namespace vp::core
