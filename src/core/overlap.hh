/**
 * @file
 * Correct-set overlap tracking (Figure 8 of the paper).
 */

#ifndef VP_CORE_OVERLAP_HH
#define VP_CORE_OVERLAP_HH

#include <array>
#include <cstdint>
#include <vector>

#include "isa/opcode.hh"

namespace vp::core {

/**
 * Tracks, per dynamic prediction, which subset of up to 8 predictors
 * predicted it correctly.
 *
 * For the paper's Figure 8 the predictors are (bit 0) last value,
 * (bit 1) stride s2, (bit 2) fcm order 3; bucket 0 is "np" (no
 * predictor correct), bucket 7 is "lsf" (all three), etc.
 */
class OverlapTracker
{
  public:
    static constexpr int maxPredictors = 8;

    explicit OverlapTracker(int num_predictors)
        : numPredictors_(num_predictors),
          buckets_(size_t(1) << num_predictors)
    {
        for (auto &per_cat : catBuckets_)
            per_cat.resize(size_t(1) << num_predictors);
    }

    int numPredictors() const { return numPredictors_; }

    /** Record one event; bit i of @p mask = predictor i was correct. */
    void
    record(isa::Category cat, uint32_t mask)
    {
        ++total_;
        ++buckets_[mask];
        ++catBuckets_[static_cast<int>(cat)][mask];
        ++catTotals_[static_cast<int>(cat)];
    }

    uint64_t total() const { return total_; }
    uint64_t bucket(uint32_t mask) const { return buckets_[mask]; }

    uint64_t
    bucket(isa::Category cat, uint32_t mask) const
    {
        return catBuckets_[static_cast<int>(cat)][mask];
    }

    uint64_t
    total(isa::Category cat) const
    {
        return catTotals_[static_cast<int>(cat)];
    }

    /** Fraction of events in bucket @p mask. */
    double
    fraction(uint32_t mask) const
    {
        return total_ ? static_cast<double>(buckets_[mask]) / total_ : 0.0;
    }

    double
    fraction(isa::Category cat, uint32_t mask) const
    {
        const auto t = total(cat);
        return t ? static_cast<double>(bucket(cat, mask)) / t : 0.0;
    }

    /** Fraction of events where at least one predictor in @p set hit. */
    double
    unionFraction(uint32_t set) const
    {
        if (!total_)
            return 0.0;
        uint64_t n = 0;
        for (uint32_t mask = 0; mask < buckets_.size(); ++mask) {
            if (mask & set)
                n += buckets_[mask];
        }
        return static_cast<double>(n) / total_;
    }

    void
    merge(const OverlapTracker &other)
    {
        total_ += other.total_;
        for (size_t i = 0; i < buckets_.size(); ++i)
            buckets_[i] += other.buckets_[i];
        for (int c = 0; c < isa::numCategories; ++c) {
            catTotals_[c] += other.catTotals_[c];
            for (size_t i = 0; i < buckets_.size(); ++i)
                catBuckets_[c][i] += other.catBuckets_[c][i];
        }
    }

  private:
    int numPredictors_;
    uint64_t total_ = 0;
    std::vector<uint64_t> buckets_;
    std::array<std::vector<uint64_t>, isa::numCategories> catBuckets_;
    std::array<uint64_t, isa::numCategories> catTotals_{};
};

} // namespace vp::core

#endif // VP_CORE_OVERLAP_HH
