#include "core/fcm.hh"

#include <algorithm>
#include <stdexcept>

namespace vp::core {

FcmPredictor::FcmPredictor(FcmConfig config) : config_(config)
{
    if (config_.order < 0)
        throw std::invalid_argument("fcm order must be non-negative");
}

void
FcmFollowers::bump(uint64_t value, uint64_t seq, uint32_t counter_max,
                   uint32_t max_followers)
{
    for (auto &cell : cells) {
        if (cell.value == value) {
            ++cell.count;
            cell.seq = seq;
            // Halve when a count would exceed (not reach) the
            // ceiling: counts can then saturate at counter_max
            // exactly, as a counter_max-wide hardware counter would,
            // and the just-bumped cell (now >= 2) always survives
            // the pruning — even with counter_max == 1.
            if (counter_max != 0 && cell.count > counter_max) {
                // Text-compression style rescaling: halve everything,
                // weighting recent behaviour more heavily.
                for (auto &c : cells)
                    c.count /= 2;
                cells.eraseIf(
                        [](const Cell &c) { return c.count == 0; });
            }
            return;
        }
    }
    if (max_followers != 0 && cells.size() >= max_followers) {
        // Follower list is at its capacity budget: replace the
        // weakest cell (lowest count, ties to the least recent).
        auto victim = cells.begin();
        for (auto it = cells.begin() + 1; it != cells.end(); ++it) {
            if (it->count < victim->count ||
                (it->count == victim->count && it->seq < victim->seq)) {
                victim = it;
            }
        }
        *victim = Cell{value, 1, seq};
        return;
    }
    cells.push_back(Cell{value, 1, seq});
}

const FcmFollowers::Cell *
FcmFollowers::best() const
{
    const Cell *best = nullptr;
    for (const auto &cell : cells) {
        if (best == nullptr || cell.count > best->count ||
            (cell.count == best->count && cell.seq > best->seq)) {
            best = &cell;
        }
    }
    return best;
}

std::span<const uint64_t>
FcmPredictor::contextKey(const PcState &state, int j)
{
    // Precondition: j <= state.history.size(), guaranteed by callers.
    return std::span<const uint64_t>(state.history)
            .last(static_cast<size_t>(j));
}

int
FcmPredictor::longestMatch(const PcState &state,
                           const FcmFollowers **followers) const
{
    const int max_order = std::min<int>(
            config_.order, static_cast<int>(state.history.size()));
    const int min_order =
            config_.blending == FcmBlending::None ? config_.order : 0;

    for (int j = max_order; j >= min_order; --j) {
        if (j >= static_cast<int>(state.tables.size()))
            continue;
        const auto &table = state.tables[j];
        auto it = table.find(contextKey(state, j));
        if (it != table.end() && !it->second.cells.empty()) {
            if (followers != nullptr)
                *followers = &it->second;
            return j;
        }
    }
    return -1;
}

Prediction
FcmPredictor::predict(uint64_t pc) const
{
    auto it = table_.find(pc);
    if (it == table_.end())
        return Prediction::none();
    const PcState &state = it->second;

    if (config_.blending == FcmBlending::None &&
        static_cast<int>(state.history.size()) < config_.order) {
        return Prediction::none();
    }

    const int match = longestMatch(state);
    if (match < 0)
        return Prediction::none();

    const auto it2 = state.tables[match].find(contextKey(state, match));
    const auto *best = it2->second.best();
    if (best == nullptr)
        return Prediction::none();
    return Prediction::of(best->value);
}

void
FcmPredictor::update(uint64_t pc, uint64_t actual)
{
    PcState &state = table_[pc];
    if (state.tables.empty())
        state.tables.resize(config_.order + 1);

    // Determine which orders to train. Lazy exclusion trains the
    // matched order and everything above it; full blending (and the
    // no-blending configuration) trains all orders it uses.
    int lowest = 0;
    switch (config_.blending) {
      case FcmBlending::None:
        lowest = config_.order;
        break;
      case FcmBlending::Full:
        lowest = 0;
        break;
      case FcmBlending::LazyExclusion: {
        const int match = longestMatch(state);
        lowest = match < 0 ? 0 : match;
        break;
      }
    }

    ++seq_;
    const int max_order = std::min<int>(
            config_.order, static_cast<int>(state.history.size()));
    for (int j = max_order; j >= lowest; --j) {
        auto &table = state.tables[j];
        const auto key = contextKey(state, j);
        auto it = table.find(key);
        if (it == table.end()) {
            it = table.emplace(std::vector<uint64_t>(key.begin(),
                                                     key.end()),
                               FcmFollowers{}).first;
        }
        it->second.bump(actual, seq_, config_.counterMax);
    }

    // Slide the history window.
    state.history.push_back(actual);
    if (static_cast<int>(state.history.size()) > config_.order)
        state.history.erase(state.history.begin());
}

void
FcmPredictor::trainBatch(const uint64_t *pcs, const uint64_t *values,
                         size_t n, uint64_t *valid, uint64_t *correct)
{
    for (size_t i = 0; i < n; ++i) {
        auto [pit, inserted] = table_.try_emplace(pcs[i]);
        PcState &state = pit->second;
        if (state.tables.empty())
            state.tables.resize(config_.order + 1);

        // A single context scan serves both the prediction and the
        // lazy-exclusion training floor: nothing mutates this PC's
        // state between the scalar predict() and update() scans, so
        // they always agree. On a fresh PC the scan trivially misses,
        // matching the scalar predict() table miss.
        const FcmFollowers *followers = nullptr;
        const int match = longestMatch(state, &followers);

        if (!inserted && match >= 0) {
            const auto *best = followers->best();
            if (best != nullptr) {
                bits::set(valid, i);
                if (best->value == values[i])
                    bits::set(correct, i);
            }
        }

        int lowest = 0;
        switch (config_.blending) {
          case FcmBlending::None:
            lowest = config_.order;
            break;
          case FcmBlending::Full:
            lowest = 0;
            break;
          case FcmBlending::LazyExclusion:
            lowest = match < 0 ? 0 : match;
            break;
        }

        ++seq_;
        const int max_order = std::min<int>(
                config_.order, static_cast<int>(state.history.size()));
        for (int j = max_order; j >= lowest; --j) {
            auto &table = state.tables[j];
            const auto key = contextKey(state, j);
            auto it = table.find(key);
            if (it == table.end()) {
                it = table.emplace(std::vector<uint64_t>(key.begin(),
                                                         key.end()),
                                   FcmFollowers{}).first;
            }
            it->second.bump(values[i], seq_, config_.counterMax);
        }

        state.history.push_back(values[i]);
        if (static_cast<int>(state.history.size()) > config_.order)
            state.history.erase(state.history.begin());
    }
}

std::string
FcmPredictor::name() const
{
    std::string base = "fcm" + std::to_string(config_.order);
    switch (config_.blending) {
      case FcmBlending::None: return base + "-pure";
      case FcmBlending::Full: return base + "-full";
      case FcmBlending::LazyExclusion: return base;
    }
    return base;
}

void
FcmPredictor::reset()
{
    table_.clear();
    seq_ = 0;
}

size_t
FcmPredictor::tableEntries() const
{
    size_t n = 0;
    for (const auto &[pc, state] : table_) {
        for (const auto &table : state.tables)
            n += table.size();
    }
    return n;
}

} // namespace vp::core
