#include "core/improvement.hh"

#include <algorithm>
#include <optional>

namespace vp::core {

std::vector<ImprovementTracker::CurvePoint>
ImprovementTracker::curve(std::optional<isa::Category> cat) const
{
    // Collect the per-static improvement deltas for the category.
    std::vector<int64_t> deltas;
    deltas.reserve(table_.size());
    int64_t total_improvement = 0;
    for (const auto &[pc, cell] : table_) {
        if (cat && cell.cat != *cat)
            continue;
        const int64_t delta = static_cast<int64_t>(cell.aCorrect) -
                static_cast<int64_t>(cell.bCorrect);
        deltas.push_back(delta);
        if (delta > 0)
            total_improvement += delta;
    }

    std::sort(deltas.begin(), deltas.end(), std::greater<>());

    std::vector<CurvePoint> points;
    points.reserve(deltas.size() + 1);
    points.push_back({0.0, 0.0});
    if (deltas.empty() || total_improvement == 0)
        return points;

    int64_t running = 0;
    for (size_t i = 0; i < deltas.size(); ++i) {
        running += deltas[i];
        points.push_back({
            100.0 * static_cast<double>(i + 1) / deltas.size(),
            100.0 * static_cast<double>(running) / total_improvement,
        });
    }
    return points;
}

double
ImprovementTracker::staticPctForImprovement(
        double improvement_fraction) const
{
    const auto points = curve();
    for (const auto &point : points) {
        if (point.improvementPct >= 100.0 * improvement_fraction)
            return point.staticPct;
    }
    return 100.0;
}

} // namespace vp::core
