/**
 * @file
 * Finite-budget variants of the three predictor families.
 *
 * The paper's predictors are idealised: every static instruction gets
 * its own alias-free entry (Section 3), which answers "how predictable
 * are values" but not "what accuracy does a 64KB table buy". These
 * classes answer the second question: the same prediction algorithms
 * (shared entry/follower logic, so the bounded and unbounded variants
 * are identical whenever nothing is evicted) running on fixed-capacity
 * set-associative tables (core/bounded_table.hh).
 *
 * The FCM variant follows the classic two-level organisation the
 * paper's Section 4.3 cost discussion sketches: a VHT (value history
 * table, PC -> the last k values) feeding a VPT (value prediction
 * table, hashed context -> follower frequencies). Context keys hash
 * the PC, the order and the history values into 64 bits, so distinct
 * contexts alias only through table-capacity pressure.
 */

#ifndef VP_CORE_BOUNDED_HH
#define VP_CORE_BOUNDED_HH

#include <array>
#include <cstdint>

#include "core/bounded_table.hh"
#include "core/fcm.hh"
#include "core/last_value.hh"
#include "core/predictor.hh"
#include "core/stride.hh"

namespace vp::core {

/** Render "@<entries>x<ways>[r|f][%<tag>]" (ways 0 prints as "fa"). */
std::string boundedSuffix(const BoundedTableConfig &config);

/** The entry-count-less tail of boundedSuffix ("x4r%8") — shared
 *  with the fcm "@<vht>/<vpt>x..." rendering. */
std::string boundedSuffixTail(const BoundedTableConfig &config);

/**
 * Emit one table's telemetry() dump into @p sink under @p prefix
 * (e.g. "fcm.vpt." -> "fcm.vpt.evictions", "fcm.vpt.occupancy",
 * "fcm.vpt.probe_depth", ...). Shared by every bounded family's
 * collectCounters() so metric names stay uniform across predictors.
 */
void emitTableCounters(const BoundedTableTelemetry &telemetry,
                       const std::string &prefix, CounterSink &sink);

/** Bounded last-value predictor: LvEntry logic on a BoundedTable. */
class BoundedLastValuePredictor : public ValuePredictor
{
  public:
    explicit BoundedLastValuePredictor(LvConfig config = {},
                                       BoundedTableConfig table = {});

    Prediction predict(uint64_t pc) const override;
    void update(uint64_t pc, uint64_t actual) override;
    std::string name() const override;
    void reset() override;
    size_t tableEntries() const override { return table_.size(); }

    void evalBatch(const uint64_t *pcs, const uint64_t *values,
                   size_t n, uint64_t *valid,
                   uint64_t *correct) override
    {
        trainBatch(pcs, values, n, valid, correct);
    }

    /**
     * Devirtualised batch loop: one table touch per event instead of
     * a peek plus a touch. Identical observable state — peek() never
     * moves recency, and the prediction is read from the entry before
     * it is trained — though the elided peeks mean the aliasedPeeks()
     * diagnostic no longer accumulates.
     */
    void trainBatch(const uint64_t *pcs, const uint64_t *values,
                    size_t n, uint64_t *valid, uint64_t *correct);

    uint64_t evictions() const { return table_.evictions(); }

    /** Table counters under "lv." (see emitTableCounters). */
    void collectCounters(CounterSink &sink) const override;

    /** The underlying table (eviction and aliasing counters). */
    const BoundedTable<LvEntry> &table() const { return table_; }

  private:
    LvConfig config_;
    BoundedTable<LvEntry> table_;
};

/** Bounded stride predictor: StrideEntry logic on a BoundedTable. */
class BoundedStridePredictor : public ValuePredictor
{
  public:
    explicit BoundedStridePredictor(StrideConfig config = {},
                                    BoundedTableConfig table = {});

    Prediction predict(uint64_t pc) const override;
    void update(uint64_t pc, uint64_t actual) override;
    std::string name() const override;
    void reset() override;
    size_t tableEntries() const override { return table_.size(); }

    void evalBatch(const uint64_t *pcs, const uint64_t *values,
                   size_t n, uint64_t *valid,
                   uint64_t *correct) override
    {
        trainBatch(pcs, values, n, valid, correct);
    }

    /** Devirtualised batch loop: one table touch per event (see
     *  BoundedLastValuePredictor::trainBatch). */
    void trainBatch(const uint64_t *pcs, const uint64_t *values,
                    size_t n, uint64_t *valid, uint64_t *correct);

    uint64_t evictions() const { return table_.evictions(); }

    /** Table counters under "stride." (see emitTableCounters). */
    void collectCounters(CounterSink &sink) const override;

    /** The underlying table (eviction and aliasing counters). */
    const BoundedTable<StrideEntry> &table() const { return table_; }

  private:
    StrideConfig config_;
    BoundedTable<StrideEntry> table_;
};

/** Bounded two-level FCM configuration. */
struct BoundedFcmConfig
{
    /** Prediction algorithm (order, blending, counter ceiling). */
    FcmConfig fcm;

    /** VHT geometry: PC -> the last `order` values. */
    BoundedTableConfig vht = {.entries = 1024, .ways = 4,
                              .replacement = Replacement::Lru,
                              .seed = 0x9e3779b97f4a7c15ull};

    /** VPT geometry: hashed (PC, order, context) -> followers. */
    BoundedTableConfig vpt = {.entries = 4096, .ways = 4,
                              .replacement = Replacement::Lru,
                              .seed = 0x9e3779b97f4a7c15ull};

    /**
     * Distinct follower values kept per VPT entry (0 = unbounded,
     * the configuration that is exactly equivalent to the idealised
     * predictor when the tables are large enough; the capacity sweep
     * uses a small value as a real implementation would).
     */
    uint32_t maxFollowers = 0;
};

/**
 * Bounded order-k FCM: split VHT/VPT, both finite.
 *
 * Prediction and training mirror FcmPredictor (longest matching
 * context of orders k..0, lazy-exclusion/full/no blending, shared
 * FcmFollowers counting), so with fully associative tables that are
 * never full the per-event behaviour is identical to the unbounded
 * predictor — the property bounded_equivalence_test pins. Under
 * pressure, VHT evictions lose a PC's history and VPT evictions lose
 * learned contexts, which is precisely the finite-resource cost the
 * capacity sweep measures.
 */
class BoundedFcmPredictor : public ValuePredictor
{
  public:
    /** Histories are inline arrays; orders above this are rejected. */
    static constexpr int maxOrder = 8;

    explicit BoundedFcmPredictor(BoundedFcmConfig config = {});

    Prediction predict(uint64_t pc) const override;
    void update(uint64_t pc, uint64_t actual) override;
    std::string name() const override;
    void reset() override;
    size_t tableEntries() const override
    {
        return vht_.size() + vpt_.size();
    }

    void evalBatch(const uint64_t *pcs, const uint64_t *values,
                   size_t n, uint64_t *valid,
                   uint64_t *correct) override
    {
        trainBatch(pcs, values, n, valid, correct);
    }

    /**
     * Devirtualised batch loop: one VHT touch and one VPT context
     * scan per event (the scalar pair pays a VHT peek + touch and two
     * scans), and in the steady-state case the matched VPT slot is
     * re-touched in place rather than probed a second time for
     * training. Identical observable state; only the aliasedPeeks()
     * diagnostics diverge because duplicate peeks are elided.
     */
    void trainBatch(const uint64_t *pcs, const uint64_t *values,
                    size_t n, uint64_t *valid, uint64_t *correct);

    uint64_t vhtEvictions() const { return vht_.evictions(); }
    uint64_t vptEvictions() const { return vpt_.evictions(); }

    /** VPT aliasing counters (partial tags; see BoundedTable). */
    uint64_t vptAliasedTouches() const { return vpt_.aliasedTouches(); }
    uint64_t vptAliasConstructive() const
    {
        return vpt_.aliasConstructive();
    }
    uint64_t vptAliasDestructive() const
    {
        return vpt_.aliasDestructive();
    }

    /** Both tables' counters, under "fcm.vht." and "fcm.vpt.". */
    void collectCounters(CounterSink &sink) const override;

  private:
    /** Most recent values, oldest first. */
    struct VhtEntry
    {
        std::array<uint64_t, maxOrder> history{};
        uint8_t len = 0;
    };

    /** 64-bit key for the order-j context of @p pc. */
    static uint64_t contextKey(uint64_t pc, int j, const VhtEntry &entry);

    /** Longest order whose context is present in the VPT; -1 none. */
    int longestMatch(uint64_t pc, const VhtEntry &entry) const;

    BoundedFcmConfig config_;
    BoundedTable<VhtEntry> vht_;
    BoundedTable<FcmFollowers> vpt_;
    uint64_t seq_ = 0;
};

} // namespace vp::core

#endif // VP_CORE_BOUNDED_HH
