/**
 * @file
 * Accuracy accounting for one predictor over one trace.
 */

#ifndef VP_CORE_STATS_HH
#define VP_CORE_STATS_HH

#include <array>
#include <cstdint>

#include "isa/opcode.hh"

namespace vp::core {

/**
 * Per-predictor prediction counts, overall and per category.
 *
 * "Accuracy" is correct predictions over *all* prediction-eligible
 * dynamic instructions, so events where a predictor declines (cold
 * entry, or a confidence gate below threshold) count against it — the
 * same accounting as the paper's figures.
 *
 * Declines are additionally tracked as not-predicted, which yields
 * the gated triple the confidence study (Section 4 speculation
 * control) reports:
 *
 *  - coverage():             predicted / eligible events
 *  - accuracyWhenPredicted() correct / predicted events
 *  - profit(cost):           correct - cost x incorrect predictions,
 *                            a speculation-profit proxy where @p cost
 *                            is the misprediction recovery penalty in
 *                            units of a correct prediction's gain.
 */
class PredictionStats
{
  public:
    void
    record(isa::Category cat, bool predicted, bool correct)
    {
        ++total_;
        ++catTotal_[static_cast<int>(cat)];
        if (predicted) {
            ++predicted_;
            ++catPredicted_[static_cast<int>(cat)];
        }
        if (correct) {
            ++correct_;
            ++catCorrect_[static_cast<int>(cat)];
        }
    }

    uint64_t total() const { return total_; }
    uint64_t predicted() const { return predicted_; }
    uint64_t correct() const { return correct_; }

    uint64_t
    total(isa::Category cat) const
    {
        return catTotal_[static_cast<int>(cat)];
    }

    uint64_t
    predicted(isa::Category cat) const
    {
        return catPredicted_[static_cast<int>(cat)];
    }

    uint64_t
    correct(isa::Category cat) const
    {
        return catCorrect_[static_cast<int>(cat)];
    }

    /** Overall accuracy in [0,1]: correct over all eligible events. */
    double
    accuracy() const
    {
        return total_ ? static_cast<double>(correct_) / total_ : 0.0;
    }

    /** Per-category accuracy in [0,1]. */
    double
    accuracy(isa::Category cat) const
    {
        const auto t = total(cat);
        return t ? static_cast<double>(correct(cat)) / t : 0.0;
    }

    /** Fraction of eligible events actually predicted, in [0,1]. */
    double
    coverage() const
    {
        return total_ ? static_cast<double>(predicted_) / total_ : 0.0;
    }

    double
    coverage(isa::Category cat) const
    {
        const auto t = total(cat);
        return t ? static_cast<double>(predicted(cat)) / t : 0.0;
    }

    /** Accuracy over predicted events only; 0 when nothing predicted. */
    double
    accuracyWhenPredicted() const
    {
        return predicted_ ? static_cast<double>(correct_) / predicted_
                          : 0.0;
    }

    double
    accuracyWhenPredicted(isa::Category cat) const
    {
        const auto p = predicted(cat);
        return p ? static_cast<double>(correct(cat)) / p : 0.0;
    }

    /**
     * Speculation-profit proxy: correct - @p cost x incorrect, where
     * incorrect counts *acted-on* wrong predictions (predicted but
     * not correct) — declines are free. Expressed per eligible event
     * so it is comparable across workloads; always-correct gives 1,
     * never-predicting gives 0, and an always-predicting predictor
     * goes negative once its error rate exceeds 1 / (1 + cost).
     */
    double
    profit(double cost) const
    {
        if (!total_)
            return 0.0;
        const double wrong =
                static_cast<double>(predicted_ - correct_);
        return (static_cast<double>(correct_) - cost * wrong) /
               static_cast<double>(total_);
    }

    void
    merge(const PredictionStats &other)
    {
        total_ += other.total_;
        predicted_ += other.predicted_;
        correct_ += other.correct_;
        for (int i = 0; i < isa::numCategories; ++i) {
            catTotal_[i] += other.catTotal_[i];
            catPredicted_[i] += other.catPredicted_[i];
            catCorrect_[i] += other.catCorrect_[i];
        }
    }

  private:
    uint64_t total_ = 0;
    uint64_t predicted_ = 0;
    uint64_t correct_ = 0;
    std::array<uint64_t, isa::numCategories> catTotal_{};
    std::array<uint64_t, isa::numCategories> catPredicted_{};
    std::array<uint64_t, isa::numCategories> catCorrect_{};
};

} // namespace vp::core

#endif // VP_CORE_STATS_HH
