/**
 * @file
 * Accuracy accounting for one predictor over one trace.
 */

#ifndef VP_CORE_STATS_HH
#define VP_CORE_STATS_HH

#include <array>
#include <cstdint>

#include "isa/opcode.hh"

namespace vp::core {

/**
 * Per-predictor prediction counts, overall and per category.
 *
 * "Accuracy" is correct predictions over *all* prediction-eligible
 * dynamic instructions, so events where a cold predictor declines
 * count against it — the same accounting as the paper's figures.
 */
class PredictionStats
{
  public:
    void
    record(isa::Category cat, bool correct)
    {
        ++total_;
        ++catTotal_[static_cast<int>(cat)];
        if (correct) {
            ++correct_;
            ++catCorrect_[static_cast<int>(cat)];
        }
    }

    uint64_t total() const { return total_; }
    uint64_t correct() const { return correct_; }

    uint64_t
    total(isa::Category cat) const
    {
        return catTotal_[static_cast<int>(cat)];
    }

    uint64_t
    correct(isa::Category cat) const
    {
        return catCorrect_[static_cast<int>(cat)];
    }

    /** Overall accuracy in [0,1]. */
    double
    accuracy() const
    {
        return total_ ? static_cast<double>(correct_) / total_ : 0.0;
    }

    /** Per-category accuracy in [0,1]. */
    double
    accuracy(isa::Category cat) const
    {
        const auto t = total(cat);
        return t ? static_cast<double>(correct(cat)) / t : 0.0;
    }

    void
    merge(const PredictionStats &other)
    {
        total_ += other.total_;
        correct_ += other.correct_;
        for (int i = 0; i < isa::numCategories; ++i) {
            catTotal_[i] += other.catTotal_[i];
            catCorrect_[i] += other.catCorrect_[i];
        }
    }

  private:
    uint64_t total_ = 0;
    uint64_t correct_ = 0;
    std::array<uint64_t, isa::numCategories> catTotal_{};
    std::array<uint64_t, isa::numCategories> catCorrect_{};
};

} // namespace vp::core

#endif // VP_CORE_STATS_HH
