#include "core/hybrid.hh"

#include <algorithm>
#include <stdexcept>

#include "core/bounded.hh"

namespace vp::core {

HybridPredictor::HybridPredictor(HybridConfig config)
    : HybridPredictor(std::make_unique<StridePredictor>(config.stride),
                      std::make_unique<FcmPredictor>(config.fcm),
                      HybridChooser{config.chooserMax,
                                    config.chooserInit, std::nullopt})
{
}

HybridPredictor::HybridPredictor(PredictorPtr first, PredictorPtr second,
                                 HybridChooser chooser)
    : first_(std::move(first)), second_(std::move(second)),
      chooser_(chooser)
{
    if (first_ == nullptr || second_ == nullptr)
        throw std::invalid_argument("hybrid needs two components");
    if (chooser_.table)
        boundedChooser_.emplace(*chooser_.table);
}

int
HybridPredictor::counterFor(uint64_t pc) const
{
    if (boundedChooser_) {
        const ChooserEntry *entry = boundedChooser_->peek(pc);
        return entry == nullptr ? chooser_.init : entry->counter;
    }
    const auto it = mapChooser_.find(pc);
    return it == mapChooser_.end() ? chooser_.init : it->second;
}

Prediction
HybridPredictor::predict(uint64_t pc) const
{
    const Prediction from_second = second_->predict(pc);
    const Prediction from_first = first_->predict(pc);

    const bool prefer_second = counterFor(pc) >= 0;

    if (prefer_second && from_second.valid)
        return from_second;
    if (!prefer_second && from_first.valid)
        return from_first;
    // Preferred component declined; fall back to the other one.
    return prefer_second ? from_first : from_second;
}

void
HybridPredictor::update(uint64_t pc, uint64_t actual)
{
    const Prediction from_second = second_->predict(pc);
    const Prediction from_first = first_->predict(pc);
    const bool second_ok =
            from_second.valid && from_second.value == actual;
    const bool first_ok = from_first.valid && from_first.value == actual;

    int *counter = nullptr;
    if (boundedChooser_) {
        bool inserted = false;
        ChooserEntry &entry = boundedChooser_->touch(pc, inserted);
        if (inserted)
            entry.counter = chooser_.init;
        counter = &entry.counter;
    } else {
        counter = &mapChooser_.try_emplace(pc, chooser_.init)
                           .first->second;
    }

    ++choices_;
    const bool prefer_second = *counter >= 0;
    if (prefer_second)
        ++choseSecond_;

    // Train the chooser only when the components disagree in outcome.
    if (second_ok && !first_ok)
        *counter = std::min(*counter + 1, chooser_.max);
    else if (first_ok && !second_ok)
        *counter = std::max(*counter - 1, -chooser_.max - 1);

    chooserFlips_ += (*counter >= 0) != prefer_second;

    first_->update(pc, actual);
    second_->update(pc, actual);
}

void
HybridPredictor::evalBatch(const uint64_t *pcs, const uint64_t *values,
                           size_t n, uint64_t *valid, uint64_t *correct)
{
    const size_t words = bits::words(n);
    scratch_.assign(4 * words, 0);
    uint64_t *first_valid = scratch_.data();
    uint64_t *first_correct = first_valid + words;
    uint64_t *second_valid = first_correct + words;
    uint64_t *second_correct = second_valid + words;

    second_->evalBatch(pcs, values, n, second_valid, second_correct);
    first_->evalBatch(pcs, values, n, first_valid, first_correct);

    // The selection loop prefetches the chooser set a fixed distance
    // ahead of its probe — far enough to cover the miss, near enough
    // that the handful of in-flight lines never overflows the
    // hardware's fill queue (a whole-batch burst would drop most of
    // its prefetches).
    // The loop body is kept branch-free on everything derived from
    // the outcome bits: which component was right is close to random
    // per event, so training the counter or grading the choice behind
    // an `if` costs a mispredict every few events — more than the
    // whole arithmetic. Only the structural branches (bounded vs map
    // chooser, fresh insert) remain, and those predict perfectly.
    constexpr size_t kChooserAhead = 24;
    for (size_t i = 0; i < n; ++i) {
        if (boundedChooser_ && i + kChooserAhead < n)
            boundedChooser_->prefetch(pcs[i + kChooserAhead]);
        const bool second_ok = bits::test(second_correct, i);
        const bool first_ok = bits::test(first_correct, i);

        int *counter = nullptr;
        if (boundedChooser_) {
            bool inserted = false;
            ChooserEntry &entry = boundedChooser_->touch(pcs[i],
                                                         inserted);
            if (inserted)
                entry.counter = chooser_.init;
            counter = &entry.counter;
        } else {
            counter = &mapChooser_.try_emplace(pcs[i], chooser_.init)
                               .first->second;
        }

        const bool prefer_second = *counter >= 0;
        ++choices_;
        choseSecond_ += prefer_second;

        // Train the chooser only when the components disagree in
        // outcome: +1 / -1 / 0 collapses to a clamped delta.
        const int delta = static_cast<int>(second_ok) -
                          static_cast<int>(first_ok);
        *counter = std::clamp(*counter + delta, -chooser_.max - 1,
                              chooser_.max);
        chooserFlips_ += (*counter >= 0) != prefer_second;

        // The hybrid's own grade: the preferred component if it
        // predicted, else the fallback (mirrors predict()).
        const bool chose_second = prefer_second
                                          ? bits::test(second_valid, i)
                                          : !bits::test(first_valid, i);
        const bool sel_valid = bits::test(
                chose_second ? second_valid : first_valid, i);
        const bool sel_ok = chose_second ? second_ok : first_ok;
        const uint64_t bit = uint64_t{1} << (i % 64);
        valid[i / 64] |= sel_valid ? bit : 0;
        correct[i / 64] |= (sel_valid && sel_ok) ? bit : 0;
    }
}

std::string
HybridPredictor::name() const
{
    std::string s = "hyb(" + first_->name() + "+" + second_->name();
    if (chooser_.table)
        s += ";ch" + boundedSuffix(*chooser_.table);
    s += ")";
    return s;
}

void
HybridPredictor::reset()
{
    first_->reset();
    second_->reset();
    mapChooser_.clear();
    if (boundedChooser_)
        boundedChooser_->clear();
    choseSecond_ = 0;
    choices_ = 0;
    chooserFlips_ = 0;
}

size_t
HybridPredictor::chooserEntries() const
{
    return boundedChooser_ ? boundedChooser_->size()
                           : mapChooser_.size();
}

size_t
HybridPredictor::tableEntries() const
{
    return first_->tableEntries() + second_->tableEntries() +
           chooserEntries();
}

double
HybridPredictor::fcmChoiceFraction() const
{
    return choices_ ? static_cast<double>(choseSecond_) / choices_ : 0.0;
}

void
HybridPredictor::collectCounters(CounterSink &sink) const
{
    sink.counter("hybrid.chooser.choices", choices_);
    sink.counter("hybrid.chooser.chose_second", choseSecond_);
    sink.counter("hybrid.chooser.flips", chooserFlips_);
    sink.gauge("hybrid.chooser.entries", chooserEntries());
    if (boundedChooser_) {
        emitTableCounters(boundedChooser_->telemetry(),
                          "hybrid.chooser.", sink);
    }
    // Components report under their own family prefixes; two
    // same-family components accumulate into one metric (the sink's
    // documented same-name semantics).
    first_->collectCounters(sink);
    second_->collectCounters(sink);
}

} // namespace vp::core
