#include "core/hybrid.hh"

#include <algorithm>

namespace vp::core {

HybridPredictor::HybridPredictor(HybridConfig config)
    : config_(config), stride_(config.stride), fcm_(config.fcm)
{
}

Prediction
HybridPredictor::predict(uint64_t pc) const
{
    const Prediction from_fcm = fcm_.predict(pc);
    const Prediction from_stride = stride_.predict(pc);

    auto it = chooser_.find(pc);
    const int counter = it == chooser_.end() ? config_.chooserInit
                                             : it->second;
    const bool prefer_fcm = counter >= 0;

    if (prefer_fcm && from_fcm.valid)
        return from_fcm;
    if (!prefer_fcm && from_stride.valid)
        return from_stride;
    // Preferred component declined; fall back to the other one.
    return prefer_fcm ? from_stride : from_fcm;
}

void
HybridPredictor::update(uint64_t pc, uint64_t actual)
{
    const Prediction from_fcm = fcm_.predict(pc);
    const Prediction from_stride = stride_.predict(pc);
    const bool fcm_ok = from_fcm.valid && from_fcm.value == actual;
    const bool stride_ok =
            from_stride.valid && from_stride.value == actual;

    auto [it, inserted] = chooser_.try_emplace(pc, config_.chooserInit);
    int &counter = it->second;

    ++choices_;
    if (counter >= 0)
        ++choseFcm_;

    // Train the chooser only when the components disagree in outcome.
    if (fcm_ok && !stride_ok)
        counter = std::min(counter + 1, config_.chooserMax);
    else if (stride_ok && !fcm_ok)
        counter = std::max(counter - 1, -config_.chooserMax - 1);

    stride_.update(pc, actual);
    fcm_.update(pc, actual);
}

std::string
HybridPredictor::name() const
{
    return "hyb(" + stride_.name() + "+" + fcm_.name() + ")";
}

void
HybridPredictor::reset()
{
    stride_.reset();
    fcm_.reset();
    chooser_.clear();
    choseFcm_ = 0;
    choices_ = 0;
}

size_t
HybridPredictor::tableEntries() const
{
    return stride_.tableEntries() + fcm_.tableEntries() + chooser_.size();
}

double
HybridPredictor::fcmChoiceFraction() const
{
    return choices_ ? static_cast<double>(choseFcm_) / choices_ : 0.0;
}

} // namespace vp::core
