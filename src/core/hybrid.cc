#include "core/hybrid.hh"

#include <algorithm>
#include <stdexcept>

#include "core/bounded.hh"

namespace vp::core {

HybridPredictor::HybridPredictor(HybridConfig config)
    : HybridPredictor(std::make_unique<StridePredictor>(config.stride),
                      std::make_unique<FcmPredictor>(config.fcm),
                      HybridChooser{config.chooserMax,
                                    config.chooserInit, std::nullopt})
{
}

HybridPredictor::HybridPredictor(PredictorPtr first, PredictorPtr second,
                                 HybridChooser chooser)
    : first_(std::move(first)), second_(std::move(second)),
      chooser_(chooser)
{
    if (first_ == nullptr || second_ == nullptr)
        throw std::invalid_argument("hybrid needs two components");
    if (chooser_.table)
        boundedChooser_.emplace(*chooser_.table);
}

int
HybridPredictor::counterFor(uint64_t pc) const
{
    if (boundedChooser_) {
        const ChooserEntry *entry = boundedChooser_->peek(pc);
        return entry == nullptr ? chooser_.init : entry->counter;
    }
    const auto it = mapChooser_.find(pc);
    return it == mapChooser_.end() ? chooser_.init : it->second;
}

Prediction
HybridPredictor::predict(uint64_t pc) const
{
    const Prediction from_second = second_->predict(pc);
    const Prediction from_first = first_->predict(pc);

    const bool prefer_second = counterFor(pc) >= 0;

    if (prefer_second && from_second.valid)
        return from_second;
    if (!prefer_second && from_first.valid)
        return from_first;
    // Preferred component declined; fall back to the other one.
    return prefer_second ? from_first : from_second;
}

void
HybridPredictor::update(uint64_t pc, uint64_t actual)
{
    const Prediction from_second = second_->predict(pc);
    const Prediction from_first = first_->predict(pc);
    const bool second_ok =
            from_second.valid && from_second.value == actual;
    const bool first_ok = from_first.valid && from_first.value == actual;

    int *counter = nullptr;
    if (boundedChooser_) {
        bool inserted = false;
        ChooserEntry &entry = boundedChooser_->touch(pc, inserted);
        if (inserted)
            entry.counter = chooser_.init;
        counter = &entry.counter;
    } else {
        counter = &mapChooser_.try_emplace(pc, chooser_.init)
                           .first->second;
    }

    ++choices_;
    if (*counter >= 0)
        ++choseSecond_;

    // Train the chooser only when the components disagree in outcome.
    if (second_ok && !first_ok)
        *counter = std::min(*counter + 1, chooser_.max);
    else if (first_ok && !second_ok)
        *counter = std::max(*counter - 1, -chooser_.max - 1);

    first_->update(pc, actual);
    second_->update(pc, actual);
}

std::string
HybridPredictor::name() const
{
    std::string s = "hyb(" + first_->name() + "+" + second_->name();
    if (chooser_.table)
        s += ";ch" + boundedSuffix(*chooser_.table);
    s += ")";
    return s;
}

void
HybridPredictor::reset()
{
    first_->reset();
    second_->reset();
    mapChooser_.clear();
    if (boundedChooser_)
        boundedChooser_->clear();
    choseSecond_ = 0;
    choices_ = 0;
}

size_t
HybridPredictor::chooserEntries() const
{
    return boundedChooser_ ? boundedChooser_->size()
                           : mapChooser_.size();
}

size_t
HybridPredictor::tableEntries() const
{
    return first_->tableEntries() + second_->tableEntries() +
           chooserEntries();
}

double
HybridPredictor::fcmChoiceFraction() const
{
    return choices_ ? static_cast<double>(choseSecond_) / choices_ : 0.0;
}

} // namespace vp::core
