#include "workloads/layout.hh"

namespace vp::workloads {

uint64_t
inputSeed(const std::string &workload, const std::string &input)
{
    // FNV-1a over "workload/input".
    uint64_t hash = 1469598103934665603ull;
    auto mix = [&hash](const std::string &text) {
        for (char c : text) {
            hash ^= static_cast<uint8_t>(c);
            hash *= 1099511628211ull;
        }
    };
    mix(workload);
    mix("/");
    mix(input);
    return hash ? hash : 1;
}

CodegenOptions
CodegenOptions::fromFlags(const std::string &flags)
{
    CodegenOptions opts;
    if (flags == "none") {
        opts.registerCache = false;
        opts.tableDispatch = false;
        opts.unroll = false;
        opts.strengthReduce = false;
    } else if (flags == "O1") {
        opts.registerCache = true;
        opts.tableDispatch = false;
        opts.unroll = false;
    } else if (flags == "O2") {
        opts.registerCache = true;
        opts.tableDispatch = true;
        opts.unroll = false;
    }
    // "ref" (and anything else) keeps the tuned defaults.
    return opts;
}

} // namespace vp::workloads
