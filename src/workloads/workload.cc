#include "workloads/workload.hh"

#include <stdexcept>

namespace vp::workloads {

const std::vector<WorkloadInfo> &
allWorkloads()
{
    static const std::vector<WorkloadInfo> registry = {
        {"compress", "LZW compression of English-like text",
         buildCompress},
        {"gcc", "expression compiler: tokenize, parse, constant-fold",
         buildGcc},
        {"go", "Go board evaluation with capture scans", buildGo},
        {"ijpeg", "8x8 block DCT image codec", buildIjpeg},
        {"m88ksim", "CPU simulator interpreting a guest program",
         buildM88ksim},
        {"perl", "string hashing and scrabble dictionary scoring",
         buildPerl},
        {"xlisp", "N-queens over cons cells (the '7 queens' input)",
         buildXlisp},
    };
    return registry;
}

const WorkloadInfo &
findWorkload(const std::string &name)
{
    for (const auto &info : allWorkloads()) {
        if (info.name == name)
            return info;
    }
    throw std::out_of_range("unknown workload: " + name);
}

} // namespace vp::workloads
