/**
 * @file
 * Workload registry: the seven SPEC95int-proxy mini-benchmarks.
 *
 * The paper evaluates on integer SPEC95 (compress, gcc, go, ijpeg,
 * m88ksim, perl, xlisp) compiled for SimpleScalar. We reproduce each
 * benchmark's computational core as a program for the VP ISA; each
 * mini-benchmark mirrors its namesake's dominant kernels and therefore
 * its characteristic value-sequence behaviour (see DESIGN.md for the
 * substitution argument).
 */

#ifndef VP_WORKLOADS_WORKLOAD_HH
#define VP_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace vp::workloads {

/**
 * Workload build configuration.
 *
 * @c input names the input data set (the analog of SPEC's input
 * files; Table 6 varies this for gcc). @c flags names the code
 * generation variant (the analog of compiler flags; Table 7 varies
 * this for gcc): "ref" is the tuned default, "none" disables register
 * caching and table-driven dispatch, "O1" and "O2" sit in between.
 * @c scale multiplies the amount of work (percent; 100 = default).
 */
struct WorkloadConfig
{
    std::string input = "ref";
    std::string flags = "ref";
    int scale = 100;

    /** Scale a default iteration/size count. */
    size_t
    scaled(size_t base) const
    {
        const size_t scaled = base * static_cast<size_t>(scale) / 100;
        return scaled == 0 ? 1 : scaled;
    }
};

/** Factory signature for one workload. */
using WorkloadFn =
        std::function<isa::Program(const WorkloadConfig &)>;

/** Registry entry. */
struct WorkloadInfo
{
    std::string name;           ///< "compress", "gcc", ...
    std::string description;
    WorkloadFn build;
};

/** All seven workloads in the paper's order. */
const std::vector<WorkloadInfo> &allWorkloads();

/** Look up one workload by name; throws std::out_of_range if absent. */
const WorkloadInfo &findWorkload(const std::string &name);

// Individual builders (exposed for targeted tests).
isa::Program buildCompress(const WorkloadConfig &config);
isa::Program buildGcc(const WorkloadConfig &config);
isa::Program buildGo(const WorkloadConfig &config);
isa::Program buildIjpeg(const WorkloadConfig &config);
isa::Program buildM88ksim(const WorkloadConfig &config);
isa::Program buildPerl(const WorkloadConfig &config);
isa::Program buildXlisp(const WorkloadConfig &config);

} // namespace vp::workloads

#endif // VP_WORKLOADS_WORKLOAD_HH
