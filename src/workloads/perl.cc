/**
 * @file
 * "perl" workload: string hashing and dictionary scoring.
 *
 * Mirrors 134.perl running scrabbl.in: the hot path is perl's hash
 * table (compute a string hash, walk a bucket chain, compare strings)
 * plus per-letter score accumulation. Load-dominated with byte-wise
 * string loops, matching perl's 43% load share in Table 5.
 *
 * Phase 1 inserts the dictionary into a chained hash table (built by
 * the VM program itself, not the host). Phase 2 streams candidate
 * words, looks each up, and scores hits with a letter-value table.
 *
 * Word storage: [len:1][chars:len] records, concatenated; an offset
 * table gives the start of each record.
 */

#include "masm/builder.hh"
#include "synth/sequences.hh"
#include "workloads/inputs.hh"
#include "workloads/layout.hh"
#include "workloads/workload.hh"

namespace vp::workloads {

using namespace vp::masm;
using namespace vp::masm::reg;

isa::Program
buildPerl(const WorkloadConfig &config)
{
    const uint64_t seed = inputSeed("perl", config.input);
    const size_t dict_words = 600;
    const size_t candidates = config.scaled(950);
    // The scrabble driver rescoring the same racks: the candidate
    // list is processed three times, like scrabbl.in's repeated
    // board evaluations.
    const int passes = 3;
    constexpr int buckets = 1024;

    ProgramBuilder b("perl");

    // ---- Host-side input preparation.
    const auto dict = makeWords(seed, dict_words);
    synth::Rng rng(seed ^ 0x5ca1ab1e);

    // Packed dictionary records + offsets.
    std::vector<uint8_t> dict_blob;
    std::vector<int64_t> dict_off;
    for (const auto &word : dict) {
        dict_off.push_back(static_cast<int64_t>(dict_blob.size()));
        dict_blob.push_back(static_cast<uint8_t>(word.size()));
        dict_blob.insert(dict_blob.end(), word.begin(), word.end());
    }

    // Candidate stream: a hot working set of rack words dominates
    // (the same racks get rescored versus many board positions), and
    // each chosen word is tried at a burst of consecutive positions —
    // so its whole scoring computation repeats back to back, which is
    // exactly the "value locality" Lipasti & Shen observed in perl.
    const auto fresh = makeWords(seed ^ 0xff, 300);
    std::vector<std::string> working_set;
    for (int i = 0; i < 90; ++i)
        working_set.push_back(dict[rng.range(dict.size())]);
    std::vector<uint8_t> cand_blob;
    std::vector<int64_t> cand_off;
    while (cand_off.size() < candidates) {
        const uint64_t draw = rng.range(100);
        const std::string &word = draw < 70
                ? working_set[rng.range(working_set.size())]
                : (draw < 88 ? dict[rng.range(dict.size())]
                             : fresh[rng.range(fresh.size())]);
        const auto offset = static_cast<int64_t>(cand_blob.size());
        cand_blob.push_back(static_cast<uint8_t>(word.size()));
        cand_blob.insert(cand_blob.end(), word.begin(), word.end());
        const uint64_t burst = 1 + rng.range(4);    // 1..4 positions
        for (uint64_t k = 0; k < burst && cand_off.size() < candidates;
             ++k) {
            cand_off.push_back(offset);
        }
    }
    // Passes: replicate the offset list so the VM rescans the stream.
    const size_t offs_per_pass = cand_off.size();
    for (int p = 1; p < passes; ++p) {
        for (size_t i = 0; i < offs_per_pass; ++i)
            cand_off.push_back(cand_off[i]);
    }

    // Scrabble letter values for 'a'..'z'.
    static const int letter_score[26] = {
        1, 3, 3, 2, 1, 4, 2, 4, 1, 8, 5, 1, 3,
        1, 1, 3, 10, 1, 1, 1, 1, 4, 4, 8, 4, 10,
    };
    std::vector<uint8_t> scores(32, 0);
    for (int i = 0; i < 26; ++i)
        scores[i] = static_cast<uint8_t>(letter_score[i]);

    const uint64_t dict_addr = b.addBytes(dict_blob, 8);
    const uint64_t dict_off_addr = b.addWords(dict_off);
    const uint64_t cand_addr = b.addBytes(cand_blob, 8);
    const uint64_t cand_off_addr = b.addWords(cand_off);
    const uint64_t score_addr = b.addBytes(scores, 8);
    const uint64_t bucket_addr = b.allocData(buckets * 8, 8);
    const uint64_t chain_addr = b.allocData(dict_words * 8, 8);
    // Interpreter-style globals, reloaded in the hot loop the way
    // perl reloads its interpreter state: [0] dict blob ptr,
    // [8] bucket ptr, [16] score-table ptr, [24] words-processed.
    const uint64_t globals = b.allocData(32, 8);
    const uint64_t result = b.allocData(16, 8);
    b.nameData("result", result);

    // Register plan:
    //   s0 dict blob     s1 dict offsets   s2 candidate blob
    //   s3 cand offsets  s4 buckets        s5 chain links
    //   s6 score table   s7 total score    s8 hit count
    //   gp loop index
    const auto insert_loop = b.newLabel();
    const auto lookup_loop = b.newLabel();
    const auto chain_walk = b.newLabel();
    const auto chain_next = b.newLabel();
    const auto word_hit = b.newLabel();
    const auto word_miss = b.newLabel();
    const auto next_candidate = b.newLabel();
    const auto finish = b.newLabel();
    const auto hash_fn = b.newLabel();
    const auto hash_loop = b.newLabel();
    const auto hash_done = b.newLabel();
    const auto equal_fn = b.newLabel();
    const auto eq_loop = b.newLabel();
    const auto eq_no = b.newLabel();
    const auto eq_yes = b.newLabel();
    const auto score_fn = b.newLabel();
    const auto score_loop = b.newLabel();
    const auto score_done = b.newLabel();
    const auto eq_ret_score = b.newLabel();

    b.la(s0, dict_addr);
    b.la(s1, dict_off_addr);
    b.la(s2, cand_addr);
    b.la(s3, cand_off_addr);
    b.la(s4, bucket_addr);
    b.la(s5, chain_addr);
    b.la(s6, score_addr);
    b.li(s7, 0);
    b.li(s8, 0);
    b.la(a5, globals);
    b.sd(s0, 0, a5);
    b.sd(s4, 8, a5);
    b.sd(s6, 16, a5);
    b.sd(zero, 24, a5);

    // ---- Phase 1: insert dictionary words into the hash table.
    //      bucket[h] holds index+1; chain[i] holds next index+1.
    b.li(gp, 0);
    b.bind(insert_loop);
    b.slli(t0, gp, 3);
    b.add(t0, s1, t0);
    b.ld(t1, 0, t0);                // record offset
    b.add(a0, s0, t1);              // record address
    b.call(hash_fn);                // v0 = hash
    b.slli(t2, v0, 3);
    b.add(t2, s4, t2);              // &bucket[h]
    b.ld(t3, 0, t2);                // old head
    b.slli(t4, gp, 3);
    b.add(t4, s5, t4);
    b.sd(t3, 0, t4);                // chain[i] = old head
    b.addi(t5, gp, 1);
    b.sd(t5, 0, t2);                // bucket[h] = i+1
    b.addi(gp, gp, 1);
    b.slti(t6, gp, static_cast<int32_t>(dict_words));
    b.bnez(t6, insert_loop);

    // ---- Phase 2: look up and score each candidate (all passes).
    b.li(gp, 0);
    b.bind(lookup_loop);
    b.slti(t0, gp,
           static_cast<int32_t>(candidates * passes));
    b.beqz(t0, finish);
    // Interpreter boilerplate: reload globals, bump the word counter.
    b.la(t9, globals);
    b.ld(s0, 0, t9);                // invariant reloads
    b.ld(s4, 8, t9);
    b.ld(s6, 16, t9);
    b.ld(t8, 24, t9);
    b.addi(t8, t8, 1);
    b.sd(t8, 24, t9);
    b.slli(t0, gp, 3);
    b.add(t0, s3, t0);
    b.ld(t1, 0, t0);
    b.add(s9, s2, t1);              // s9 = candidate record address
    b.mov(a0, s9);
    b.call(hash_fn);
    b.slli(t2, v0, 3);
    b.add(t2, s4, t2);
    b.ld(t3, 0, t2);                // chain head (index+1)

    b.bind(chain_walk);
    b.beqz(t3, word_miss);
    b.addi(t4, t3, -1);             // dict index
    b.slli(t5, t4, 3);
    b.add(t5, s1, t5);
    b.ld(t6, 0, t5);                // dict record offset
    b.add(a0, s0, t6);
    b.mov(a1, s9);
    b.call(equal_fn);               // v0 = equal?
    b.bnez(v0, word_hit);
    b.bind(chain_next);
    b.slli(t5, t4, 3);
    b.add(t5, s5, t5);
    b.ld(t3, 0, t5);                // next in chain
    b.j(chain_walk);

    b.bind(word_hit);
    b.mov(a0, s9);
    b.call(score_fn);               // v0 = word score
    b.add(s7, s7, v0);
    b.addi(s8, s8, 1);
    b.j(next_candidate);

    b.bind(word_miss);
    // Misses cost a penalty point, to keep the score data-dependent.
    b.addi(s7, s7, -1);

    b.bind(next_candidate);
    b.addi(gp, gp, 1);
    b.j(lookup_loop);

    b.bind(finish);
    b.la(t0, result);
    b.sd(s7, 0, t0);
    b.sd(s8, 8, t0);
    b.halt();

    // ---- hash_fn(a0 = record addr) -> v0 in [0, buckets).
    //      h = h*31 + c, done as (h<<5) - h + c.
    b.bind(hash_fn);
    b.lbu(a1, 0, a0);               // length
    b.addi(a2, a0, 1);              // first char
    b.add(a3, a2, a1);              // end
    b.li(v0, 0);
    b.bind(hash_loop);
    b.bge(a2, a3, hash_done);
    // Interpreter overhead per character, as perl's runtime has: a
    // reload of the magic/locale state and a UTF8-mode flag test.
    b.la(t9, globals);
    b.ld(t9, 16, t9);               // locale table reload (invariant)
    b.lbu(a4, 0, a2);
    b.sltiu(t8, a4, 128);           // byte mode check (always 1)
    b.slli(a5, v0, 5);
    b.sub(a5, a5, v0);
    b.add(v0, a5, a4);
    b.addi(a2, a2, 1);
    b.j(hash_loop);
    b.bind(hash_done);
    b.andi(v0, v0, buckets - 1);
    b.ret();

    // ---- equal_fn(a0, a1 = record addrs) -> v0 boolean.
    b.bind(equal_fn);
    b.lbu(a2, 0, a0);
    b.lbu(a3, 0, a1);
    b.bne(a2, a3, eq_no);
    b.li(a4, 0);                    // char index
    b.bind(eq_loop);
    b.bge(a4, a2, eq_yes);
    b.la(t9, globals);
    b.ld(t9, 16, t9);               // casefold table reload
    b.add(a5, a0, a4);
    b.lbu(v0, 1, a5);
    b.add(a5, a1, a4);
    b.lbu(v1, 1, a5);
    b.bne(v0, v1, eq_no);
    b.addi(a4, a4, 1);
    b.j(eq_loop);
    b.bind(eq_yes);
    b.li(v0, 1);
    b.ret();
    b.bind(eq_no);
    b.li(v0, 0);
    b.ret();

    // ---- score_fn(a0 = record addr) -> v0 scrabble score.
    //      Score = sum of letter values, doubled for 7+ letter words.
    b.bind(score_fn);
    b.lbu(a1, 0, a0);
    b.addi(a2, a0, 1);
    b.add(a3, a2, a1);
    b.li(v0, 0);
    b.bind(score_loop);
    b.bge(a2, a3, score_done);
    b.la(t9, globals);
    b.ld(t9, 16, t9);               // score-rules reload (invariant)
    b.lbu(a4, 0, a2);
    b.sltiu(t8, a4, 123);           // ascii lowercase check (always 1)
    b.addi(a4, a4, -'a');
    b.add(a4, s6, a4);
    b.lbu(a5, 0, a4);
    b.add(v0, v0, a5);
    b.addi(a2, a2, 1);
    b.j(score_loop);
    b.bind(score_done);
    b.slti(a4, a1, 7);
    b.bnez(a4, eq_ret_score);
    b.slli(v0, v0, 1);              // bingo bonus
    b.bind(eq_ret_score);
    b.ret();

    return b.build();
}

} // namespace vp::workloads
